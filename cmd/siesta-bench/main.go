// Command siesta-bench regenerates the paper's evaluation: every table and
// figure of §3, printed as text tables with the paper's reference numbers
// alongside. It is a thin wrapper over the shared driver also reachable as
// `siesta bench -exp ...` (see EXPERIMENTS.md).
//
// Usage:
//
//	siesta-bench [-exp table3|fig4|fig5|fig6|fig7|fig8|fig9|ablations|all] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"siesta/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table3, fig4, fig5, fig6, fig7, fig8, fig9, ablations, or all")
	quick := flag.Bool("quick", false, "trim rank ladders and iterations for a fast pass")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	if err := experiments.RunCLI(cfg, *exp, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "siesta-bench: %v\n", err)
		os.Exit(1)
	}
}
