// Command siesta-bench regenerates the paper's evaluation: every table and
// figure of §3, printed as text tables with the paper's reference numbers
// alongside.
//
// Usage:
//
//	siesta-bench [-exp table3|fig4|fig5|fig6|fig7|fig8|fig9|all] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"siesta/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table3, fig4, fig5, fig6, fig7, fig8, fig9, ablations, or all")
	quick := flag.Bool("quick", false, "trim rank ladders and iterations for a fast pass")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	want := strings.Split(*exp, ",")
	run := func(name string) bool {
		if *exp == "all" {
			return true
		}
		for _, w := range want {
			if strings.TrimSpace(w) == name {
				return true
			}
		}
		return false
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "siesta-bench: %s: %v\n", name, err)
		os.Exit(1)
	}

	if run("table3") {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			fail("table3", err)
		}
		fmt.Println("=== Table 3: Specification of generated proxy-apps ===")
		fmt.Print(experiments.FormatTable3(rows))
		fmt.Println()
	}
	if run("fig4") {
		rows, err := experiments.Fig4(cfg)
		if err != nil {
			fail("fig4", err)
		}
		fmt.Print(experiments.FormatRates("=== Figure 4: single computation event vs MINIME ===", rows))
		fmt.Println()
	}
	if run("fig5") {
		rows, err := experiments.Fig5(cfg)
		if err != nil {
			fail("fig5", err)
		}
		fmt.Print(experiments.FormatRates("=== Figure 5: computation event sequence vs MINIME ===", rows))
		fmt.Println()
	}
	var sum6 experiments.Fig6Summary
	var have6 bool
	if run("fig6") {
		rows, sum, err := experiments.Fig6(cfg)
		if err != nil {
			fail("fig6", err)
		}
		sum6, have6 = sum, true
		fmt.Println("=== Figure 6: proxy-app execution time (and Pilgrim, §3.4.1) ===")
		fmt.Print(experiments.FormatFig6(rows, sum))
		fmt.Println()
	}
	var sum7 experiments.EnvSummary
	var have7 bool
	if run("fig7") {
		rows, sum, err := experiments.Fig7(cfg)
		if err != nil {
			fail("fig7", err)
		}
		sum7, have7 = sum, true
		fmt.Print(experiments.FormatEnvRows(
			"=== Figure 7: robustness to MPI implementation changes ===", rows,
			fmt.Sprintf("mean %%error: Siesta %.2f%%, ScalaBench %.2f%%  (paper: 5.78%%, 33.58%%)",
				sum.Siesta*100, sum.ScalaBench*100)))
		fmt.Println()
	}
	var sum8 experiments.EnvSummary
	var have8 bool
	if run("fig8") {
		rows, sum, err := experiments.Fig8(cfg)
		if err != nil {
			fail("fig8", err)
		}
		sum8, have8 = sum, true
		fmt.Print(experiments.FormatEnvRows(
			"=== Figure 8: portability between platforms A and C ===", rows,
			fmt.Sprintf("mean %%error: Siesta %.2f%%, ScalaBench %.2f%%  (paper: 6.83%%, 18.11%%)",
				sum.Siesta*100, sum.ScalaBench*100)))
		fmt.Println()
	}
	if run("ablations") {
		a, err := experiments.Ablations(cfg)
		if err != nil {
			fail("ablations", err)
		}
		fmt.Println("=== Ablations (beyond the paper; see DESIGN.md §4) ===")
		fmt.Print(experiments.FormatAblations(a))
		fmt.Println()
	}
	var sum9B experiments.EnvSummary
	var have9 bool
	if run("fig9") {
		rows, sameA, portedB, err := experiments.Fig9(cfg)
		if err != nil {
			fail("fig9", err)
		}
		sum9B, have9 = portedB, true
		fmt.Print(experiments.FormatEnvRows(
			"=== Figure 9: BT and CG on platforms A and B ===", rows,
			fmt.Sprintf("mean %%error on A: Siesta %.2f%%, ScalaBench %.2f%%; ported to B: Siesta %.2f%%, ScalaBench %.2f%%  (paper on B: 13.68%%, 70.44%%)",
				sameA.Siesta*100, sameA.ScalaBench*100, portedB.Siesta*100, portedB.ScalaBench*100)))
		fmt.Println()
	}
	if have6 && have7 && have8 && have9 {
		fmt.Println("=== Recap: mean time errors vs paper ===")
		fmt.Printf("%-34s %10s %10s\n", "experiment", "measured", "paper")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig6 Siesta", sum6.Siesta*100, "5.30%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig6 Siesta-scaled", sum6.SiestaScaled*100, "9.31%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig6 ScalaBench", sum6.ScalaBench*100, "13.13%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "§3.4.1 Pilgrim", sum6.Pilgrim*100, "84.30%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig7 Siesta (impl change)", sum7.Siesta*100, "5.78%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig7 ScalaBench", sum7.ScalaBench*100, "33.58%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig8 Siesta (A↔C)", sum8.Siesta*100, "6.83%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig8 ScalaBench", sum8.ScalaBench*100, "18.11%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig9 Siesta (ported to B)", sum9B.Siesta*100, "13.68%")
		fmt.Printf("%-34s %9.2f%% %10s\n", "Fig9 ScalaBench (ported to B)", sum9B.ScalaBench*100, "70.44%")
	}
}
