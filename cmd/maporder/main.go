// Command maporder runs the maporder static analyzer (map-iteration-order
// determinism checking) over Go package directories. It is the hermetic
// stand-in for `go vet -vettool`: the analyzer depends only on the standard
// library, so CI can run it without fetching golang.org/x/tools.
//
// Usage:
//
//	maporder [dir ...]
//	(default: internal/merge internal/codegen internal/check
//	 internal/statics internal/core internal/fleet)
//
// Non-test .go files of each directory are parsed as one package. Exits
// non-zero if any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"

	"siesta/internal/analysis/maporder"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{
			"internal/merge", "internal/codegen", "internal/check",
			"internal/statics", "internal/core", "internal/fleet",
		}
	}
	failed := false
	for _, dir := range dirs {
		findings, err := runDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maporder: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func runDir(dir string) ([]maporder.Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []maporder.Finding
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pkg := pkgs[name]
		files := make([]*ast.File, 0, len(pkg.Files))
		paths := make([]string, 0, len(pkg.Files))
		for path := range pkg.Files {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			files = append(files, pkg.Files[path])
		}
		out = append(out, maporder.MapOrder.Run(&maporder.Pass{
			Fset: fset, Files: files, PkgName: name,
		})...)
	}
	return out, nil
}
