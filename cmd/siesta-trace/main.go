// Command siesta-trace inspects encoded traces: it prints per-rank event
// listings, function histograms, compression statistics, and (with -gen) the
// grammar a trace compresses to. It reads traces written by `siesta -trace`.
//
// Usage:
//
//	siesta-trace -in trace.bin [-rank N] [-head M] [-summary] [-gen]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"siesta/internal/merge"
	"siesta/internal/trace"
)

func main() {
	in := flag.String("in", "", "encoded trace file (required)")
	rank := flag.Int("rank", -1, "print this rank's event sequence (-1 = none)")
	head := flag.Int("head", 40, "max events to print per rank")
	summary := flag.Bool("summary", true, "print the trace summary")
	gen := flag.Bool("gen", false, "run grammar extraction and print its statistics")
	otf := flag.String("otf", "", "write an OTF-style text export to this file")
	diff := flag.String("diff", "", "compare against this second encoded trace")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta-trace: %v\n", err)
		os.Exit(1)
	}
	if *in == "" {
		die(fmt.Errorf("-in is required"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		die(err)
	}
	tr, err := trace.Decode(data)
	if err != nil {
		die(err)
	}

	if *summary {
		fmt.Printf("trace: %d ranks, platform %s, impl %s\n", tr.NumRanks, tr.Platform, tr.Impl)
		fmt.Printf("events: %d total, %d unique records across rank tables, raw size %d bytes\n",
			tr.TotalEvents(), tr.TotalUniqueRecords(), tr.RawSize())
		hist := tr.FuncHistogram()
		for _, f := range tr.SortedFuncs() {
			fmt.Printf("  %-16s %8d\n", f, hist[f])
		}
	}

	if *rank >= 0 {
		if *rank >= len(tr.Ranks) {
			die(fmt.Errorf("rank %d out of range (trace has %d)", *rank, tr.NumRanks))
		}
		rt := tr.Ranks[*rank]
		fmt.Printf("rank %d: %d events, %d unique records, %d computation clusters\n",
			rt.Rank, len(rt.Events), len(rt.Table), len(rt.Clusters))
		n := len(rt.Events)
		if n > *head {
			n = *head
		}
		for i := 0; i < n; i++ {
			r := rt.Table[rt.Events[i]]
			fmt.Printf("  %5d %s\n", i, describe(r))
		}
		if n < len(rt.Events) {
			fmt.Printf("  ... %d more\n", len(rt.Events)-n)
		}
	}

	if *diff != "" {
		other, err := os.ReadFile(*diff)
		if err != nil {
			die(err)
		}
		tr2, err := trace.Decode(other)
		if err != nil {
			die(err)
		}
		diffTraces(tr, tr2)
	}

	if *otf != "" {
		out, err := os.Create(*otf)
		if err != nil {
			die(err)
		}
		if err := tr.WriteText(out); err != nil {
			die(err)
		}
		if err := out.Close(); err != nil {
			die(err)
		}
		fmt.Printf("text export written to %s\n", *otf)
	}

	if *gen {
		prog, err := merge.Build(tr, merge.Options{})
		if err != nil {
			die(err)
		}
		st := prog.Stats()
		fmt.Printf("grammar: %d terminals, %d clusters, %d rules (%d symbols), %d main group(s) (%d symbols)\n",
			st.Terminals, st.Clusters, st.Rules, st.RuleSymbols, st.MainGroups, st.MainSymbols)
		fmt.Printf("encoded: %d bytes (%.1f× below raw)\n",
			st.EncodedBytes, float64(tr.RawSize())/float64(st.EncodedBytes))
	}
}

// diffTraces prints a structural comparison of two traces.
func diffTraces(a, b *trace.Trace) {
	fmt.Printf("diff: %d vs %d ranks, %d vs %d events, %d vs %d raw bytes\n",
		a.NumRanks, b.NumRanks, a.TotalEvents(), b.TotalEvents(), a.RawSize(), b.RawSize())
	ha, hb := a.FuncHistogram(), b.FuncHistogram()
	funcs := map[string]bool{}
	for f := range ha {
		funcs[f] = true
	}
	for f := range hb {
		funcs[f] = true
	}
	var names []string
	for f := range funcs {
		names = append(names, f)
	}
	sort.Strings(names)
	same := true
	for _, f := range names {
		if ha[f] != hb[f] {
			fmt.Printf("  %-20s %8d vs %8d\n", f, ha[f], hb[f])
			same = false
		}
	}
	if same {
		fmt.Println("  function histograms identical")
	}
	n := a.NumRanks
	if b.NumRanks < n {
		n = b.NumRanks
	}
	mismatched := 0
	for r := 0; r < n; r++ {
		ra, rb := a.Ranks[r], b.Ranks[r]
		if len(ra.Events) != len(rb.Events) {
			fmt.Printf("  rank %d: %d vs %d events\n", r, len(ra.Events), len(rb.Events))
			mismatched++
			continue
		}
		for i := range ra.Events {
			if ra.Table[ra.Events[i]].KeyString() != rb.Table[rb.Events[i]].KeyString() {
				fmt.Printf("  rank %d: first divergence at event %d (%s vs %s)\n",
					r, i, ra.Table[ra.Events[i]].Func, rb.Table[rb.Events[i]].Func)
				mismatched++
				break
			}
		}
	}
	if mismatched == 0 {
		fmt.Println("  per-rank event sequences identical")
	}
}

// describe renders one record compactly.
func describe(r *trace.Record) string {
	switch {
	case r.IsCompute():
		return fmt.Sprintf("MPI_Compute(cluster=%d)", r.ComputeCluster)
	case r.Func == "MPI_Send" || r.Func == "MPI_Isend":
		return fmt.Sprintf("%s(dest=me+%d, tag=%d, bytes=%d, comm=%d)", r.Func, r.DestRel, r.Tag, r.Bytes, r.CommPool)
	case r.Func == "MPI_Recv" || r.Func == "MPI_Irecv":
		src := fmt.Sprintf("me+%d", r.SrcRel)
		if r.SrcRel == trace.Wildcard {
			src = "ANY"
		}
		return fmt.Sprintf("%s(src=%s, tag=%d, comm=%d)", r.Func, src, r.Tag, r.CommPool)
	case r.Func == "MPI_Sendrecv":
		return fmt.Sprintf("MPI_Sendrecv(dest=me+%d, tag=%d, bytes=%d, src=me+%d, rtag=%d, comm=%d)",
			r.DestRel, r.Tag, r.Bytes, r.SrcRel, r.RecvTag, r.CommPool)
	case r.Func == "MPI_Wait":
		return fmt.Sprintf("MPI_Wait(req=%d)", r.ReqPool)
	case r.Func == "MPI_Waitall":
		return fmt.Sprintf("MPI_Waitall(reqs=%v)", r.ReqPools)
	default:
		if r.Root != trace.NoRank {
			return fmt.Sprintf("%s(bytes=%d, root=%d, comm=%d)", r.Func, r.Bytes, r.Root, r.CommPool)
		}
		return fmt.Sprintf("%s(bytes=%d, comm=%d)", r.Func, r.Bytes, r.CommPool)
	}
}
