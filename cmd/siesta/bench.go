package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"siesta/internal/apps"
	"siesta/internal/blocks"
	"siesta/internal/core"
	"siesta/internal/experiments"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/trace"
)

// benchResult is one serial-vs-parallel timing pair for a pipeline stage at
// a rank count. Speedup > 1 means the parallel run was faster. For the
// "search" stage the pair is cold solve vs memoized re-solve, and for the
// "overlap" stage it is overlap-disabled vs overlapped simulation runs at
// the same worker count. The alloc fields are mean heap allocations per
// run of each leg, so allocation-pressure regressions show up next to the
// timings they cause.
type benchResult struct {
	Name           string  `json:"name"`
	Ranks          int     `json:"ranks"`
	SerialNS       int64   `json:"serial_ns"`
	ParallelNS     int64   `json:"parallel_ns"`
	Speedup        float64 `json:"speedup"`
	SerialAllocs   uint64  `json:"serial_allocs"`
	ParallelAllocs uint64  `json:"parallel_allocs"`
}

// benchReport is the BENCH_9.json shape: enough context to compare runs
// across machines plus the stage timings.
type benchReport struct {
	App         string        `json:"app"`
	Iters       int           `json:"iters"`
	WorkScale   float64       `json:"work_scale"`
	Parallelism int           `json:"parallelism"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Reps        int           `json:"reps"`
	Results     []benchResult `json:"results"`
}

// runBench implements the `siesta bench` verb. By default it times the
// parallelized synthesis stages (globalize, merge build, proxy search,
// end-to-end synthesize) serial vs parallel across rank counts and writes a
// JSON report, tracking the repo's perf trajectory (BENCH_9.json, CI-generated). With
// -exp it instead regenerates the paper's evaluation tables through the
// shared experiments driver (same as the siesta-bench command); see
// EXPERIMENTS.md.
func runBench(args []string) {
	fs := flag.NewFlagSet("siesta bench", flag.ExitOnError)
	appName := fs.String("app", "CG", "application to benchmark")
	ranksList := fs.String("ranks", "8,32,64", "comma-separated rank counts")
	iters := fs.Int("iters", 2, "iteration override (0 = application default)")
	workScale := fs.Float64("work-scale", 0.05, "per-rank computation volume multiplier")
	reps := fs.Int("reps", 3, "repetitions per measurement (best-of)")
	parallel := fs.Int("parallel", 0, "parallel worker count (0 = GOMAXPROCS)")
	jsonOut := fs.String("json", "", "write the JSON report to this file (default stdout)")
	pprofOut := fs.String("pprof", "", "write a CPU profile covering the stage benchmarks to this file")
	exp := fs.String("exp", "", "regenerate paper experiments instead: table3, fig4..fig9, ablations, or all")
	quick := fs.Bool("quick", false, "with -exp: trim rank ladders and iterations for a fast pass")
	seed := fs.Uint64("seed", 1, "with -exp: base random seed")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta bench: %v\n", err)
		os.Exit(1)
	}

	if *exp != "" {
		cfg := experiments.Config{Quick: *quick, Seed: *seed}
		if err := experiments.RunCLI(cfg, *exp, os.Stdout); err != nil {
			die(err)
		}
		return
	}

	par := *parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// Honesty gate: a report claiming parallel speedups measured on a
	// single-P runtime is meaningless — the "parallel" legs were timesliced
	// onto one core. Print to stdout if you must, but never persist it as
	// a BENCH_*.json other runs will be compared against.
	if *jsonOut != "" && par > 1 && runtime.GOMAXPROCS(0) < 2 {
		die(fmt.Errorf("refusing to write %s: -parallel %d claimed but GOMAXPROCS is 1, so the parallel legs cannot run concurrently; rerun on multicore hardware or pass -parallel 1", *jsonOut, par))
	}
	spec, err := apps.ByName(*appName)
	if err != nil {
		die(err)
	}
	var ranks []int
	for _, f := range strings.Split(*ranksList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			die(fmt.Errorf("bad -ranks entry %q", f))
		}
		ranks = append(ranks, n)
	}

	rep := benchReport{
		App: spec.Name, Iters: *iters, WorkScale: *workScale,
		Parallelism: par, GOMAXPROCS: runtime.GOMAXPROCS(0), Reps: *reps,
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// bestOf times fn (which must be repeatable) and keeps the fastest run,
	// also reporting the mean heap allocations one run performs (Mallocs is
	// a monotonic counter, so the delta over the reps is exact).
	bestOf := func(fn func()) (int64, uint64) {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		best := int64(-1)
		for i := 0; i < *reps; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start).Nanoseconds(); best < 0 || d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&ms1)
		return best, (ms1.Mallocs - ms0.Mallocs) / uint64(*reps)
	}
	record := func(name string, nRanks int, serial, parallel int64, serialAllocs, parallelAllocs uint64) {
		sp := 0.0
		if parallel > 0 {
			sp = float64(serial) / float64(parallel)
		}
		rep.Results = append(rep.Results, benchResult{
			Name: name, Ranks: nRanks, SerialNS: serial, ParallelNS: parallel, Speedup: sp,
			SerialAllocs: serialAllocs, ParallelAllocs: parallelAllocs,
		})
		fmt.Fprintf(os.Stderr, "%-10s ranks=%-3d serial=%-12s parallel=%-12s speedup=%.2fx allocs=%d/%d\n",
			name, nRanks, time.Duration(serial), time.Duration(parallel), sp, serialAllocs, parallelAllocs)
	}

	for _, nRanks := range ranks {
		params := apps.Params{Ranks: nRanks, Iters: *iters, WorkScale: *workScale}
		fn, err := spec.Build(params)
		if err != nil {
			die(fmt.Errorf("%s at %d ranks: %w", spec.Name, nRanks, err))
		}

		// One traced run feeds the stage benchmarks.
		rec := trace.NewRecorder(nRanks, trace.Config{})
		w := mpi.NewWorld(mpi.Config{
			Platform: platform.A, Impl: netmodel.OpenMPI, Size: nRanks,
			NoiseSigma: 0.004, RunVariation: 0.02, Seed: 1, Interceptor: rec,
		})
		if _, err := w.Run(fn); err != nil {
			die(fmt.Errorf("traced run at %d ranks: %w", nRanks, err))
		}
		tr := rec.Trace(platform.A.Name, netmodel.OpenMPI.Name)

		// Stage 1: terminal-table merge (tree reduction).
		serial, serialAllocs := bestOf(func() { merge.GlobalizeParallel(tr, 0.05, 1).Release() })
		parallelNS, parAllocs := bestOf(func() { merge.GlobalizeParallel(tr, 0.05, par).Release() })
		record("globalize", nRanks, serial, parallelNS, serialAllocs, parAllocs)

		// Stage 2: full merge build (globalize + grammars + rule merge).
		serial, serialAllocs = bestOf(func() {
			if _, err := merge.Build(tr, merge.Options{Parallelism: 1}); err != nil {
				die(err)
			}
		})
		parallelNS, parAllocs = bestOf(func() {
			if _, err := merge.Build(tr, merge.Options{Parallelism: par}); err != nil {
				die(err)
			}
		})
		record("build", nRanks, serial, parallelNS, serialAllocs, parAllocs)

		// Stage 3: computation-proxy search, cold QP solve vs memoized.
		prog, err := merge.Build(tr, merge.Options{Parallelism: par})
		if err != nil {
			die(err)
		}
		bm := blocks.MeasureB(platform.A, nil)
		targets := make([]perfmodel.Counters, 0, len(prog.Clusters))
		for _, cl := range prog.Clusters {
			targets = append(targets, cl.Target())
		}
		cold, coldAllocs := bestOf(func() {
			for _, t := range targets {
				if _, err := blocks.Search(bm, t); err != nil {
					die(err)
				}
			}
		})
		warmMemo := blocks.NewMemo(0)
		solveMemo := func() {
			for _, t := range targets {
				if _, err := blocks.CachedSearch(warmMemo, bm, t); err != nil {
					die(err)
				}
			}
		}
		solveMemo() // prime
		warm, warmAllocs := bestOf(solveMemo)
		record("search", nRanks, cold, warm, coldAllocs, warmAllocs)

		// Stage 4: the whole pipeline. Each run gets a private search memo
		// so the serial run cannot pre-warm the cache for the parallel one:
		// the pair isolates what parallelism alone buys.
		synth := func(p int, noOverlap bool) {
			if _, err := core.Synthesize(fn, core.Options{
				Ranks: nRanks, Seed: 1, Parallelism: p,
				DisableOverlap: noOverlap,
				SearchMemo:     blocks.NewMemo(0),
			}); err != nil {
				die(err)
			}
		}
		serial, serialAllocs = bestOf(func() { synth(1, false) })
		parallelNS, parAllocs = bestOf(func() { synth(par, false) })
		record("synthesize", nRanks, serial, parallelNS, serialAllocs, parAllocs)

		// Stage 5: overlap ablation — same worker count both legs, the only
		// difference is whether the baseline/traced runs (and the B-matrix
		// warmup) overlap. This isolates the overlap's contribution from
		// everything else Parallelism buys.
		seqNS, seqAllocs := bestOf(func() { synth(par, true) })
		ovlNS, ovlAllocs := bestOf(func() { synth(par, false) })
		record("overlap", nRanks, seqNS, ovlNS, seqAllocs, ovlAllocs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if *jsonOut == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", *jsonOut)
}
