// The analyze verb runs the static communication-cost analyzer over a
// merged program: exact per-rank traffic totals, the P×P volume matrix,
// per-communicator collective stats, compute-cluster costs and the
// critical-path lower bound — all folded out of the grammar, no replay.
// Input is either an encoded program (-prog, as written by `siesta -prog`)
// or a built-in application traced on the spot (-app/-ranks). See
// DESIGN.md §12.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"siesta/internal/apps"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/platform"
	"siesta/internal/statics"
	"siesta/internal/trace"
)

func runAnalyze(args []string) {
	fs := flag.NewFlagSet("siesta analyze", flag.ExitOnError)
	progFile := fs.String("prog", "", "encoded merged program (SIESTA-PROG1) to analyze")
	appName := fs.String("app", "", "built-in application to trace and analyze (alternative to -prog)")
	ranks := fs.Int("ranks", 8, "number of MPI ranks (with -app)")
	iters := fs.Int("iters", 0, "iteration override (0 = application default; with -app)")
	platName := fs.String("platform", "", "cost-model platform: A, B or C (default: the program's recorded platform)")
	seed := fs.Uint64("seed", 1, "virtual-noise seed for the traced run (with -app)")
	asJSON := fs.Bool("json", false, "emit the full analysis report as JSON")
	exact := fs.Bool("exact-bytes", false, "embedded check requires matched pairs to carry identical byte counts")
	absolute := fs.Bool("absolute-ranks", false, "partner fields carry comm-local absolute ranks")
	maxDiags := fs.Int("max-diags", 0, "embedded check diagnostic cap (0 = default 100)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta analyze: %v\n", err)
		os.Exit(1)
	}
	if err := setupLogging(*logLevel); err != nil {
		die(err)
	}
	if (*progFile == "") == (*appName == "") {
		die(fmt.Errorf("need exactly one of -prog or -app"))
	}

	var prog *merge.Program
	exactBytes := *exact
	switch {
	case *progFile != "":
		data, err := os.ReadFile(*progFile)
		if err != nil {
			die(err)
		}
		if prog, err = merge.Decode(data); err != nil {
			die(err)
		}
	default:
		spec, err := apps.ByName(*appName)
		if err != nil {
			die(err)
		}
		fn, err := spec.Build(apps.Params{Ranks: *ranks, Iters: *iters})
		if err != nil {
			die(err)
		}
		rec := trace.NewRecorder(*ranks, trace.Config{})
		w := mpi.NewWorld(mpi.Config{Size: *ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: *seed})
		if _, err := w.Run(fn); err != nil {
			die(err)
		}
		if prog, err = merge.Build(rec.Trace("A", "openmpi"), merge.Options{}); err != nil {
			die(err)
		}
		// A freshly traced program records real transfer sizes on both
		// sides, so the stricter byte gate is sound.
		exactBytes = true
	}

	var plat *platform.Platform
	if *platName != "" {
		var err error
		if plat, err = platform.ByName(*platName); err != nil {
			die(err)
		}
	}

	rep, err := statics.Analyze(prog, plat, statics.Options{
		ExactBytes:     exactBytes,
		AbsoluteRanks:  *absolute,
		MaxDiagnostics: *maxDiags,
	})
	if err != nil {
		die(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			die(err)
		}
	} else {
		fmt.Print(rep.String())
	}
	if rep.Check != nil && rep.Check.HasErrors() {
		os.Exit(1)
	}
}
