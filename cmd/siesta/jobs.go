package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"siesta/internal/durable"
)

// runJobs implements the `siesta jobs` verb: offline inspection of a
// `siesta serve -state-dir` journal. It replays the write-ahead log
// read-only (no lock, no tail truncation — safe against a live server)
// and prints the per-job durable state: pending jobs are exactly what
// the next serve incarnation will re-admit.
func runJobs(args []string) {
	fs := flag.NewFlagSet("siesta jobs", flag.ExitOnError)
	stateDir := fs.String("state-dir", "", "state directory of a siesta serve instance (required)")
	asJSON := fs.Bool("json", false, "emit machine-readable job states instead of a table")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta jobs: %v\n", err)
		os.Exit(1)
	}
	if *stateDir == "" {
		die(fmt.Errorf("-state-dir is required"))
	}

	path := filepath.Join(*stateDir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		die(err)
	}
	recs, valid := durable.Replay(data)
	states, order := durable.Reduce(recs)

	if *asJSON {
		out := make([]*durable.JobState, 0, len(order))
		for _, id := range order {
			out = append(out, states[id])
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			die(err)
		}
		if int64(len(data)) > valid {
			fmt.Fprintf(os.Stderr, "siesta jobs: journal has a torn tail: %d of %d bytes valid\n",
				valid, len(data))
		}
		return
	}

	fmt.Printf("journal %s: %d records, %d jobs\n", path, len(recs), len(order))
	if int64(len(data)) > valid {
		fmt.Printf("torn tail: %d trailing bytes ignored (%d of %d valid)\n",
			int64(len(data))-valid, valid, len(data))
	}
	if len(order) == 0 {
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "JOB\tSTATUS\tATTEMPTS\tCHECKPOINT\tENQUEUED\tERROR")
	for _, id := range order {
		st := states[id]
		status := "pending"
		switch st.Terminal {
		case durable.TypeDone:
			status = "done"
		case durable.TypeFailed:
			status = "failed"
		}
		ckpt := st.CheckpointPhase
		if ckpt == "" {
			ckpt = "-"
		}
		enq := "-"
		if !st.Enqueued.IsZero() {
			enq = st.Enqueued.Format("2006-01-02 15:04:05")
		}
		errMsg := st.Error
		if errMsg == "" {
			errMsg = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\n", id, status, st.Attempts, ckpt, enq, errMsg)
	}
	w.Flush()
}
