// Command siesta is the end-to-end proxy-app synthesizer CLI: it traces one
// of the built-in MPI applications on the simulated runtime, extracts the
// grammar, searches computation proxies, and emits the generated C proxy-app
// plus a fidelity report comparing the proxy replay against the original.
//
// Usage:
//
//	siesta -app CG -ranks 8 [-iters N] [-scale 10] [-platform A] [-impl openmpi]
//	       [-o proxy.c] [-trace trace.bin] [-prog prog.bin] [-report]
//	       [--faults "crash:rank=3@call=100"] [--deadline 30s] [-parallel N]
//
//	siesta check [-prog prog.bin] [-trace trace.bin] [-exact-bytes]
//	       [-absolute-ranks] [-max-diags N] [-json]
//
//	siesta analyze [-prog prog.bin | -app CG -ranks 8] [-platform A]
//	       [-exact-bytes] [-json]
//
//	siesta serve [-addr 127.0.0.1:8080] [-workers N] [-queue N]
//	       [-job-timeout 120s] [-cache-size N] [-max-parallel N]
//
//	siesta gateway [-addr 127.0.0.1:8090] [-registry URL] [-ttl 3s]
//	       [-route-refresh 500ms]
//
//	siesta worker [-addr 127.0.0.1:8081] [-registry http://127.0.0.1:8090]
//	       [-advertise URL] [-id NAME] [-heartbeat 1s] [-state-dir DIR]
//
//	siesta bench [-app CG] [-ranks 8,32,64] [-reps 3] [-json BENCH_9.json] [-pprof cpu.pprof]
//	siesta bench -exp table3|fig4..fig9|ablations|all [-quick] [-seed N]
//
//	siesta trace -app CG -n 16 [-o run.trace.json] [-format chrome|jsonl]
//	       [-replay=false] [-iters N] [-platform A] [-impl openmpi] [-seed N]
//
//	siesta jobs -state-dir DIR [-json]
//
//	siesta upload -trace run.bin [-server http://127.0.0.1:8080] [-chunk 65536]
//	       [-spill-high-water N] [-platform A] [-impl openmpi] [-seed N]
//	       [-parallel N] [-wait 10m] [-o proxy.c] [-json]
//
// The check verb runs the static communication verifier over an encoded
// program (written by -prog) or a raw trace (written by -trace; it is merged
// first) and exits non-zero if any error-severity diagnostic is found. With
// -json it emits the structured reports instead of the table; exit codes are
// unchanged.
//
// The analyze verb runs the static communication-cost analyzer: exact
// per-rank traffic totals, the P×P byte-volume matrix, per-communicator
// collective stats, compute-cluster costs and the critical-path lower bound,
// all derived from the grammar without replaying anything. See DESIGN.md
// §12.
//
// The serve verb exposes the whole pipeline as an HTTP service: POST
// /v1/synthesize queues jobs onto a bounded worker pool, finished proxies are
// kept in a content-addressed artifact cache, and GET /metrics reports
// service counters in Prometheus text format. See DESIGN.md §8.
//
// The gateway and worker verbs scale serve horizontally: workers register
// with the gateway's embedded registry and heartbeat within a TTL, and the
// gateway consistent-hash-routes each request by its artifact cache key to
// the owning worker, failing jobs over (resuming from their replicated
// phase-boundary checkpoint) when a worker dies. See DESIGN.md §13.
//
// The bench verb times the parallelized synthesis stages serial vs
// parallel across rank counts and writes a JSON report; synthesis itself
// is parallel by default and byte-identical at any -parallel value. See
// DESIGN.md §9. With -exp it regenerates the paper's evaluation tables
// instead (see EXPERIMENTS.md).
//
// The trace verb runs one observed synthesis and exports it for
// chrome://tracing / Perfetto: pipeline phase spans in wall-clock time plus
// per-rank virtual-time timelines (MPI calls, computation regions, message
// edges) for the baseline run and the proxy replay. See DESIGN.md §10.
//
// The jobs verb inspects a `siesta serve -state-dir` journal offline: it
// replays the write-ahead log and prints each job's durable state (pending
// jobs are what the next serve incarnation will re-admit). See DESIGN.md
// §11.
//
// The upload verb streams an encoded trace to a serve or gateway instance
// over the chunked ingest API (POST /v1/traces): per-rank CRC-framed chunk
// streams, uploaded round-robin interleaved, with grammar inference running
// server-side while chunks arrive. The resulting proxy is byte-identical
// to a one-shot trace_base64 upload. See DESIGN.md §15.
//
// All verbs take -log-level (debug, info, warn, error) for structured
// log/slog diagnostics on stderr.
//
// The list of applications comes from the paper's Table 3; run with
// -list to enumerate them.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"siesta/internal/apps"
	"siesta/internal/check"
	"siesta/internal/codegen"
	"siesta/internal/core"
	"siesta/internal/extrapolate"
	"siesta/internal/fault"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/obs"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/proxy"
	"siesta/internal/trace"
	"siesta/internal/vtime"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "check" {
		runCheck(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "gateway" {
		runGateway(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		runWorker(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "jobs" {
		runJobs(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "upload" {
		runUpload(os.Args[2:])
		return
	}
	appName := flag.String("app", "CG", "application to synthesize a proxy for")
	ranks := flag.Int("ranks", 8, "number of MPI ranks")
	iters := flag.Int("iters", 0, "iteration override (0 = application default)")
	scale := flag.Float64("scale", 1, "shrink factor (10 = Siesta-scaled)")
	platName := flag.String("platform", "A", "generation platform: A, B or C")
	implName := flag.String("impl", "openmpi", "MPI implementation: openmpi, mpich, mvapich")
	outC := flag.String("o", "", "write the generated C proxy-app to this file")
	outTrace := flag.String("trace", "", "write the encoded trace to this file")
	outProg := flag.String("prog", "", "write the encoded merged program to this file (input for `siesta check`)")
	report := flag.Bool("report", true, "print the fidelity report")
	list := flag.Bool("list", false, "list available applications and exit")
	extrap := flag.Int("extrapolate", 0, "re-target the proxy to this rank count (fully SPMD programs only)")
	seed := flag.Uint64("seed", 1, "random seed")
	faultSpec := flag.String("faults", "", `fault-injection plan applied to every run, e.g. "crash:rank=3@call=100;straggler:rank=1,factor=4"`)
	deadlineSpec := flag.String("deadline", "", "virtual-time budget per run (e.g. 30s); exceeding it aborts with a deadlock report")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole synthesis (0 = unlimited)")
	parallel := flag.Int("parallel", 0, "synthesis parallelism (0 = GOMAXPROCS, 1 = sequential; never changes the output)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	flag.Parse()

	if *list {
		for _, s := range apps.All() {
			fmt.Printf("%-10s %s\n", s.Name, s.Description)
		}
		return
	}

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta: %v\n", err)
		os.Exit(1)
	}
	if err := setupLogging(*logLevel); err != nil {
		die(err)
	}

	spec, err := apps.ByName(*appName)
	if err != nil {
		die(err)
	}
	plat, err := platform.ByName(*platName)
	if err != nil {
		die(err)
	}
	impl, err := netmodel.ByName(*implName)
	if err != nil {
		die(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: *ranks, Iters: *iters})
	if err != nil {
		die(err)
	}
	var plan *fault.Plan
	if *faultSpec != "" {
		if plan, err = fault.Parse(*faultSpec); err != nil {
			die(err)
		}
		if plan.Seed == 0 {
			plan.Seed = *seed
		}
	}
	var deadline vtime.Duration
	if *deadlineSpec != "" {
		if deadline, err = fault.ParseDeadline(*deadlineSpec); err != nil {
			die(err)
		}
	}

	opts := core.Options{
		Platform: plat, Impl: impl, Ranks: *ranks, Scale: *scale, Seed: *seed,
		Faults: plan, Deadline: deadline, Parallelism: *parallel,
	}
	// At debug verbosity, phase transitions are logged through a tracer
	// (timelines off — this verb only wants the span stream).
	if debugEnabled() {
		opts.Tracer = obs.New().WithoutTimelines()
		opts.Tracer.SetObserver(phaseLogger)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}

	res, err := core.Synthesize(fn, opts)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			die(fmt.Errorf("synthesis exceeded the %v wall-clock budget: %w", *timeout, err))
		}
		die(err)
	}

	if *outTrace != "" {
		if err := os.WriteFile(*outTrace, res.Trace.Encode(), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("trace written to %s (%d bytes encoded, %d bytes raw equivalent)\n",
			*outTrace, len(res.Trace.Encode()), res.Trace.RawSize())
	}
	if *outProg != "" {
		if err := os.WriteFile(*outProg, res.Program.Encode(), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("encoded program written to %s (%d bytes)\n", *outProg, len(res.Program.Encode()))
	}
	if *outC != "" {
		if err := os.WriteFile(*outC, []byte(res.Generated.CSource()), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("generated C proxy-app written to %s\n", *outC)
	}

	if *report {
		printReport(res, *scale)
	}

	if *extrap > 0 {
		prog, err := extrapolate.Extrapolate(res.Program, *extrap)
		if err != nil {
			die(err)
		}
		gen, err := codegen.Generate(prog, codegen.Options{Platform: plat})
		if err != nil {
			die(err)
		}
		prox, err := proxy.New(gen).Run(mpi.Config{
			Platform: plat, Impl: impl, Seed: *seed + 2, NoiseSigma: 0.004, RunVariation: 0.02,
		})
		if err != nil {
			die(err)
		}
		// Compare against a real run at the new scale.
		fnBig, err := spec.Build(apps.Params{Ranks: *extrap, Iters: *iters})
		if err != nil {
			die(err)
		}
		w := mpi.NewWorld(mpi.Config{
			Platform: plat, Impl: impl, Size: *extrap,
			Seed: *seed + 3, NoiseSigma: 0.004, RunVariation: 0.02,
		})
		orig, err := w.Run(fnBig)
		if err != nil {
			die(err)
		}
		fmt.Printf("extrapolated to %d ranks (weak-scaling: per-rank behaviour preserved):\n", *extrap)
		fmt.Printf("  proxy %.6gs vs original-at-%d-ranks %.6gs (error %.2f%%)\n",
			float64(prox.ExecTime), *extrap, float64(orig.ExecTime),
			core.TimeError(float64(prox.ExecTime), float64(orig.ExecTime))*100)
	}
}

// runCheck implements the `siesta check` verb: it lints an encoded program
// and/or a raw trace from disk with the static verifier and exits non-zero
// when any error-severity diagnostic is found.
func runCheck(args []string) {
	fs := flag.NewFlagSet("siesta check", flag.ExitOnError)
	progFile := fs.String("prog", "", "encoded merged program (SIESTA-PROG1) to verify")
	traceFile := fs.String("trace", "", "encoded trace to merge and verify")
	exact := fs.Bool("exact-bytes", false, "require matched send/recv pairs to carry identical byte counts")
	absolute := fs.Bool("absolute-ranks", false, "partner fields carry comm-local absolute ranks (trace recorded with AbsoluteRanks)")
	maxDiags := fs.Int("max-diags", 0, "diagnostic cap (0 = default 100)")
	asJSON := fs.Bool("json", false, "emit structured reports as JSON instead of the table")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta check: %v\n", err)
		os.Exit(1)
	}
	if *progFile == "" && *traceFile == "" {
		die(fmt.Errorf("need -prog and/or -trace"))
	}
	opts := check.Options{ExactBytes: *exact, AbsoluteRanks: *absolute, MaxDiagnostics: *maxDiags}

	// checkResult pairs one input with its report; -json emits the list so
	// the diagnostic shape matches the "check" object inside `siesta
	// analyze -json` output.
	type checkResult struct {
		Input  string        `json:"input"`
		Report *check.Report `json:"report"`
	}
	var results []checkResult

	failed := false
	verify := func(label string, p *merge.Program) {
		rep, err := check.Verify(p, opts)
		if err != nil {
			die(fmt.Errorf("%s: %w", label, err))
		}
		if *asJSON {
			results = append(results, checkResult{Input: label, Report: rep})
		} else {
			fmt.Printf("%s: %s\n", label, rep.Summary())
			for _, d := range rep.Diags {
				fmt.Println("  " + d.String())
			}
		}
		failed = failed || rep.HasErrors()
	}

	if *progFile != "" {
		data, err := os.ReadFile(*progFile)
		if err != nil {
			die(err)
		}
		p, err := merge.Decode(data)
		if err != nil {
			die(err)
		}
		verify(*progFile, p)
	}
	if *traceFile != "" {
		data, err := os.ReadFile(*traceFile)
		if err != nil {
			die(err)
		}
		tr, err := trace.Decode(data)
		if err != nil {
			die(err)
		}
		p, err := merge.Build(tr, merge.Options{})
		if err != nil {
			die(err)
		}
		verify(*traceFile, p)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			die(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printReport(res *core.Result, scale float64) {
	st := res.Program.Stats()
	fmt.Printf("=== synthesis report: %d ranks on platform %s / %s ===\n",
		res.Opts.Ranks, res.Opts.Platform.Name, res.Opts.Impl.Name)
	fmt.Printf("trace:   %d events, raw size %d bytes, tracing overhead %.2f%%\n",
		res.Trace.TotalEvents(), res.Trace.RawSize(), res.Overhead*100)
	fmt.Printf("grammar: %d terminals, %d computation clusters, %d rules, %d main group(s), size_C %d bytes\n",
		st.Terminals, st.Clusters, st.Rules, st.MainGroups, res.Generated.SizeC)

	prox, err := res.RunProxy(nil, nil)
	if err != nil {
		fmt.Printf("proxy replay failed: %v\n", err)
		return
	}
	origT := float64(res.BaselineRun.ExecTime)
	proxT := float64(prox.ExecTime)
	fmt.Printf("time:    original %.6gs, proxy %.6gs", origT, proxT)
	if scale > 1 {
		fmt.Printf(", reported (×%.0f) %.6gs", scale, float64(res.Proxy.ReportedTime(prox)))
		fmt.Printf(", time error %.2f%%\n",
			core.TimeError(float64(res.Proxy.ReportedTime(prox)), origT)*100)
	} else {
		fmt.Printf(", time error %.2f%%\n", core.TimeError(proxT, origT)*100)
	}
	comp := prox
	if scale > 1 {
		comp = core.ScaleBack(prox, scale)
	}
	fmt.Printf("error:   mean relative replay error %.2f%% across %d metrics and %d ranks\n",
		core.ReplayError(res.BaselineRun, comp)*100, int(perfmodel.NumMetrics)+1, res.Opts.Ranks)

	o, p := res.BaselineRun.TotalCompute(), comp.TotalCompute()
	fmt.Printf("rates:   IPC %.3f→%.3f  CMR %.4f→%.4f  BMR %.4f→%.4f\n",
		o.IPC(), p.IPC(), o.CMR(), p.CMR(), o.BMR(), p.BMR())
}
