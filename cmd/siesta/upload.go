package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"siesta/internal/server"
	"siesta/internal/server/cache"
	"siesta/internal/trace"
)

// runUpload implements the `siesta upload` verb: stream an encoded trace
// (the bytes `siesta -trace` writes) to a serve/gateway instance over the
// chunked ingest API instead of one trace_base64 POST. Each rank's stream
// is cut into -chunk byte pieces and the ranks are uploaded round-robin
// interleaved, so the server's memory high-water tracks the chunk size,
// not the trace size — and by the streaming equivalence contract the
// resulting artifact is byte-identical to the one-shot path.
func runUpload(args []string) {
	fs := flag.NewFlagSet("siesta upload", flag.ExitOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8080", "siesta serve or gateway base URL")
	tracePath := fs.String("trace", "", "encoded trace file to upload (required; written by `siesta -trace`)")
	chunkSize := fs.Int("chunk", 64<<10, "upload chunk size in bytes")
	spillHW := fs.Int("spill-high-water", 0, "server-side per-rank resident terminal-table byte budget; 0 = never spill")
	platName := fs.String("platform", "", "generation platform: A, B or C (server default when empty)")
	implName := fs.String("impl", "", "MPI implementation: openmpi, mpich, mvapich (server default when empty)")
	seed := fs.Uint64("seed", 0, "synthesis seed")
	parallel := fs.Int("parallel", 0, "requested synthesis parallelism (0 = server default)")
	wait := fs.Duration("wait", 10*time.Minute, "how long to poll for the synthesis job to settle")
	outC := fs.String("o", "", "write the generated C proxy-app to this file")
	asJSON := fs.Bool("json", false, "emit the commit response and final artifact stats as JSON")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta upload: %v\n", err)
		os.Exit(1)
	}
	if *tracePath == "" {
		die(fmt.Errorf("-trace is required"))
	}
	if *chunkSize <= 0 {
		die(fmt.Errorf("-chunk must be positive"))
	}
	raw, err := os.ReadFile(*tracePath)
	if err != nil {
		die(err)
	}
	tr, err := trace.Decode(raw)
	if err != nil {
		die(fmt.Errorf("%s: %w", *tracePath, err))
	}

	// Chunk-encode every rank and pre-declare the content digest, so the
	// open response already carries the cache key (and a gateway routes
	// the session to the worker whose cache owns it).
	streams := make([][]byte, len(tr.Ranks))
	content := sha256.New()
	var total int
	for r, rt := range tr.Ranks {
		streams[r] = trace.ChunkEncodeRank(rt)
		sum := sha256.Sum256(streams[r])
		content.Write(sum[:])
		total += len(streams[r])
	}

	hc := &http.Client{Timeout: 30 * time.Second}
	base := *serverURL
	openReq := server.TraceOpenRequest{
		NumRanks:       len(tr.Ranks),
		Platform:       *platName,
		Impl:           *implName,
		Seed:           *seed,
		Parallelism:    *parallel,
		ContentSHA256:  hex.EncodeToString(content.Sum(nil)),
		SpillHighWater: *spillHW,
	}
	var open server.TraceOpenResponse
	if err := postJSONInto(hc, base+"/v1/traces", openReq, &open); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "session %s: %d ranks, %d bytes in %d-byte chunks (key %s)\n",
		open.ID, open.NumRanks, total, *chunkSize, open.CacheKey)

	// Round-robin across ranks: the adversarial interleaving the server's
	// equivalence contract absorbs, and the one that keeps every rank's
	// incremental grammar advancing together.
	offs := make([]int, len(streams))
	for {
		progress := false
		for r, stream := range streams {
			if offs[r] >= len(stream) {
				continue
			}
			end := offs[r] + *chunkSize
			if end > len(stream) {
				end = len(stream)
			}
			url := fmt.Sprintf("%s/v1/traces/%s/ranks/%d", base, open.ID, r)
			req, rerr := http.NewRequest(http.MethodPut, url, bytes.NewReader(stream[offs[r]:end]))
			if rerr != nil {
				die(rerr)
			}
			resp, rerr := hc.Do(req)
			if rerr != nil {
				die(rerr)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				die(fmt.Errorf("rank %d chunk: %s: %s", r, resp.Status, bytes.TrimSpace(body)))
			}
			offs[r] = end
			progress = true
		}
		if !progress {
			break
		}
	}

	var commit server.TraceCommitResponse
	if err := postJSONInto(hc, base+"/v1/traces/"+open.ID+"/commit", nil, &commit); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "committed: job %s cached=%t spill: %d/%d terminals on disk (%d bytes)\n",
		commit.Job.ID, commit.Cached, commit.Spill.Spilled, commit.Spill.Records, commit.Spill.SpilledBytes)

	// Poll to a terminal state (a cache hit is already done).
	view := commit.Job
	deadline := time.Now().Add(*wait)
	for view.Status != server.StatusDone && view.Status != server.StatusFailed && view.Status != server.StatusCanceled {
		if time.Now().After(deadline) {
			die(fmt.Errorf("job %s still %s after %v", view.ID, view.Status, *wait))
		}
		time.Sleep(200 * time.Millisecond)
		if err := getJSONInto(hc, base+"/v1/jobs/"+view.ID, &view); err != nil {
			die(err)
		}
	}
	if view.Status != server.StatusDone {
		die(fmt.Errorf("job %s settled %s: %s", view.ID, view.Status, view.Error))
	}
	var art cache.Artifact
	if err := getJSONInto(hc, base+commit.ArtifactURL, &art); err != nil {
		die(err)
	}

	if *outC != "" {
		if err := os.WriteFile(*outC, []byte(art.CSource), 0o644); err != nil {
			die(err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"job":       view,
			"cache_key": commit.CacheKey,
			"cached":    commit.Cached,
			"spill":     commit.Spill,
			"artifact": map[string]any{
				"terminals": art.Terminals, "rules": art.Rules,
				"size_c": art.SizeC, "ranks": art.Ranks,
			},
		}); err != nil {
			die(err)
		}
		return
	}
	fmt.Printf("proxy ready: %d ranks, %d terminals, %d rules, %d bytes of C\n",
		art.Ranks, art.Terminals, art.Rules, art.SizeC)
	if *outC != "" {
		fmt.Printf("wrote %s\n", *outC)
	}
}

func postJSONInto(hc *http.Client, url string, body any, v any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(http.MethodPost, url, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, v)
}

func getJSONInto(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, v)
}
