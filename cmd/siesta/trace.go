package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/netmodel"
	"siesta/internal/obs"
	"siesta/internal/platform"
)

// runTrace implements the `siesta trace` verb: one observed synthesis run
// exported as a trace file. The output carries the pipeline's wall-clock
// phase spans plus per-rank virtual-time timelines for the baseline run and
// the proxy replay — message edges, collective barriers, computation
// regions — in Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev) or compact JSONL.
func runTrace(args []string) {
	fs := flag.NewFlagSet("siesta trace", flag.ExitOnError)
	appName := fs.String("app", "CG", "application to trace")
	ranks := fs.Int("ranks", 8, "number of MPI ranks")
	n := fs.Int("n", 0, "alias for -ranks")
	iters := fs.Int("iters", 0, "iteration override (0 = application default)")
	platName := fs.String("platform", "A", "generation platform: A, B or C")
	implName := fs.String("impl", "openmpi", "MPI implementation: openmpi, mpich, mvapich")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "pipeline worker count (0 = GOMAXPROCS; >1 overlaps the baseline and traced runs)")
	out := fs.String("o", "run.trace.json", "output file (\"-\" = stdout)")
	format := fs.String("format", "chrome", "output format: chrome (trace_event JSON) or jsonl")
	replay := fs.Bool("replay", true, "also run the generated proxy and record its replay timeline")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta trace: %v\n", err)
		os.Exit(1)
	}
	if err := setupLogging(*logLevel); err != nil {
		die(err)
	}
	if *format != "chrome" && *format != "jsonl" {
		die(fmt.Errorf("unknown -format %q (want chrome or jsonl)", *format))
	}
	if *n > 0 {
		*ranks = *n
	}

	spec, err := apps.ByName(*appName)
	if err != nil {
		die(err)
	}
	plat, err := platform.ByName(*platName)
	if err != nil {
		die(err)
	}
	impl, err := netmodel.ByName(*implName)
	if err != nil {
		die(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: *ranks, Iters: *iters})
	if err != nil {
		die(err)
	}

	tracer := obs.New()
	tracer.SetObserver(phaseLogger)
	res, err := core.Synthesize(fn, core.Options{
		Platform: plat, Impl: impl, Ranks: *ranks, Seed: *seed, Tracer: tracer,
		Parallelism: *parallel,
	})
	if err != nil {
		die(err)
	}
	if *replay {
		if _, err := res.RunProxy(nil, nil); err != nil {
			die(fmt.Errorf("proxy replay: %w", err))
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "chrome":
		err = tracer.WriteChromeTrace(w)
	case "jsonl":
		err = tracer.WriteJSONL(w)
	}
	if err != nil {
		die(err)
	}
	if *out != "-" {
		events := 0
		for _, tl := range tracer.Timelines() {
			events += len(tl.Events())
		}
		slog.Info("trace written", "file", *out, "format", *format,
			"phases", len(tracer.Phases()), "timelines", len(tracer.Timelines()),
			"timeline_events", events)
	}
}
