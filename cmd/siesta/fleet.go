package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"siesta/internal/fleet"
	"siesta/internal/server"
)

// runGateway implements the `siesta gateway` verb: the fleet's routing
// front door. It embeds the worker registry by default (point workers'
// -registry at the gateway address) and consistent-hash-routes every
// synthesize request by its artifact cache key to the worker that owns it,
// failing jobs over — with their replicated phase-boundary checkpoint —
// when a worker dies. See DESIGN.md §13.
func runGateway(args []string) {
	fs := flag.NewFlagSet("siesta gateway", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address")
	registryURL := fs.String("registry", "", "external registry base URL (empty = embed the registry in this process)")
	ttl := fs.Duration("ttl", fleet.DefaultTTL, "embedded registry heartbeat TTL; a worker silent this long is dropped")
	refresh := fs.Duration("route-refresh", 500*time.Millisecond, "route-table refresh and failover-scan interval")
	logLevel := fs.String("log-level", "", "route gateway events through slog at this verbosity (debug, info, warn, error)")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta gateway: %v\n", err)
		os.Exit(1)
	}
	if *logLevel != "" {
		if err := setupLogging(*logLevel); err != nil {
			die(err)
		}
	}

	gw := fleet.NewGateway(fleet.GatewayConfig{
		RegistryURL:  *registryURL,
		TTL:          *ttl,
		RouteRefresh: *refresh,
		LogWriter:    os.Stderr,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go gw.Run(ctx)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	role := "embedded registry"
	if *registryURL != "" {
		role = "registry " + *registryURL
	}
	fmt.Fprintf(os.Stderr, "siesta gateway: listening on %s (%s, ttl %v)\n", *addr, role, *ttl)

	select {
	case err := <-errCh:
		die(err)
	case <-ctx.Done():
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "siesta gateway: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "siesta gateway: bye")
}

// runWorker implements the `siesta worker` verb: one fleet synthesis node.
// It wraps the `siesta serve` service with fleet membership — registration
// and heartbeats against the registry, the peer API for artifact and
// checkpoint exchange — and advertises itself at -advertise (defaulting to
// the listen address). See DESIGN.md §13.
func runWorker(args []string) {
	fs := flag.NewFlagSet("siesta worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8081", "listen address")
	advertise := fs.String("advertise", "", "base URL peers reach this worker at (default http://<addr>)")
	id := fs.String("id", "", "stable worker identity on the hash ring (default the advertise address)")
	registryURL := fs.String("registry", "http://127.0.0.1:8090", "registry base URL (the gateway, unless running a standalone registry)")
	heartbeat := fs.Duration("heartbeat", time.Second, "registration refresh cadence; must be well inside the registry TTL")
	workers := fs.Int("workers", 2, "synthesis worker-pool size")
	queue := fs.Int("queue", 16, "job queue depth (a full queue answers 429)")
	jobTimeout := fs.Duration("job-timeout", 120*time.Second, "per-job wall-clock budget")
	cacheSize := fs.Int("cache-size", 128, "artifact cache entry budget")
	maxParallel := fs.Int("max-parallel", 0, "per-job synthesis parallelism cap (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "shutdown budget for in-flight jobs before hard cancel")
	stateDir := fs.String("state-dir", "", "directory for the job journal, phase checkpoints, and disk artifact cache (empty = in-memory only; checkpoints still replicate to peers)")
	maxRetries := fs.Int("max-retries", 3, "in-process retry budget for transient durability failures")
	logLevel := fs.String("log-level", "", "route job events through slog at this verbosity (debug, info, warn, error) instead of the raw JSON stream")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta worker: %v\n", err)
		os.Exit(1)
	}

	adv := *advertise
	if adv == "" {
		adv = "http://" + *addr
	}
	wid := *id
	if wid == "" {
		wid = adv
	}
	scfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		CacheSize:      *cacheSize,
		MaxParallelism: *maxParallel,
		LogWriter:      os.Stderr,
		StateDir:       *stateDir,
		MaxRetries:     *maxRetries,
	}
	if *logLevel != "" {
		if err := setupLogging(*logLevel); err != nil {
			die(err)
		}
	}

	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:           wid,
		AdvertiseURL: adv,
		RegistryURL:  *registryURL,
		Heartbeat:    *heartbeat,
		Server:       scfg,
	})
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: w.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go w.Run(ctx)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "siesta worker: %s listening on %s, registering with %s\n",
		wid, *addr, *registryURL)

	select {
	case err := <-errCh:
		die(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "siesta worker: draining...")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "siesta worker: http shutdown: %v\n", err)
	}
	if err := w.Close(drainCtx); err != nil {
		die(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "siesta worker: drained, bye")
}
