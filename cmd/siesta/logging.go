package main

import (
	"fmt"
	"log/slog"
	"os"
	"strings"

	"siesta/internal/obs"
)

// setupLogging installs the process-wide slog default logger: text records
// on stderr at the requested level. Every verb accepts -log-level, so all
// CLI diagnostics share one structured stream.
func setupLogging(level string) error {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))
	return nil
}

// debugEnabled reports whether the default logger emits Debug records.
func debugEnabled() bool {
	return slog.Default().Enabled(nil, slog.LevelDebug)
}

// phaseLogger is an obs observer that logs every pipeline phase transition
// through slog: Debug on start, Info with the duration on end.
func phaseLogger(ev obs.PhaseEvent) {
	if ev.End {
		slog.Info("phase done", "phase", ev.Name, "dur", ev.Dur)
		return
	}
	slog.Debug("phase start", "phase", ev.Name)
}
