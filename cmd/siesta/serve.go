package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"siesta/internal/server"
)

// runServe implements the `siesta serve` verb: it exposes the synthesis
// pipeline as an HTTP service with a bounded job queue, a worker pool, a
// content-addressed artifact cache, and a /metrics endpoint. SIGINT/SIGTERM
// trigger a graceful drain: the listener stops accepting, queued jobs run to
// completion, and only then does the process exit.
func runServe(args []string) {
	fs := flag.NewFlagSet("siesta serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 2, "synthesis worker-pool size")
	queue := fs.Int("queue", 16, "job queue depth (a full queue answers 429)")
	jobTimeout := fs.Duration("job-timeout", 120*time.Second, "per-job wall-clock budget")
	cacheSize := fs.Int("cache-size", 128, "artifact cache entry budget")
	maxParallel := fs.Int("max-parallel", 0, "per-job synthesis parallelism cap (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "shutdown budget for in-flight jobs before hard cancel")
	logLevel := fs.String("log-level", "", "route job events through slog at this verbosity (debug, info, warn, error) instead of the raw JSON stream")
	stateDir := fs.String("state-dir", "", "directory for the job journal, phase checkpoints, and disk artifact cache; enables crash recovery (empty = in-memory only)")
	maxRetries := fs.Int("max-retries", 3, "in-process retry budget for transient durability failures (also the cap on a request's max_retries field)")
	fs.Parse(args)

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "siesta serve: %v\n", err)
		os.Exit(1)
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		CacheSize:      *cacheSize,
		MaxParallelism: *maxParallel,
		LogWriter:      os.Stderr,
		StateDir:       *stateDir,
		MaxRetries:     *maxRetries,
	}
	if *logLevel != "" {
		if err := setupLogging(*logLevel); err != nil {
			die(err)
		}
		cfg.Logger = slog.Default()
		cfg.LogWriter = nil // one stream: slog replaces the raw JSON lines
	}
	svc, err := server.New(cfg)
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "siesta serve: listening on %s (%d workers, queue %d)\n",
		*addr, *workers, *queue)

	select {
	case err := <-errCh:
		die(err) // bind failure etc.
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	fmt.Fprintln(os.Stderr, "siesta serve: draining...")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "siesta serve: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		die(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "siesta serve: drained, bye")
}
