package siesta

import (
	"fmt"
	"runtime"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/baselines/minime"
	"siesta/internal/blocks"
	"siesta/internal/core"
	"siesta/internal/experiments"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/sequitur"
	"siesta/internal/trace"
)

// Benchmarks regenerating the paper's evaluation. Each benchmark runs the
// corresponding experiment driver and reports the experiment's headline
// error statistics as custom metrics, so `go test -bench` output doubles as
// a results table. The quick configuration (trimmed rank ladders) keeps a
// full -bench=. pass in CI time; run cmd/siesta-bench for the full ladders.

var benchCfg = experiments.Config{Quick: true, Seed: 1}

// BenchmarkTable3 regenerates Table 3 (proxy-app specification: trace size,
// size_C, overhead, error).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var meanErr, meanOv float64
		for _, r := range rows {
			meanErr += r.Error
			meanOv += r.Overhead
		}
		b.ReportMetric(meanErr/float64(len(rows))*100, "%replay-error")
		b.ReportMetric(meanOv/float64(len(rows))*100, "%overhead")
	}
}

// BenchmarkFig4 regenerates Figure 4 (single computation event vs MINIME).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var m, s float64
		for _, r := range rows {
			m += r.MINIMEError
			s += r.SiestaError
		}
		b.ReportMetric(m/float64(len(rows))*100, "%minime-err")
		b.ReportMetric(s/float64(len(rows))*100, "%siesta-err")
	}
}

// BenchmarkFig5 regenerates Figure 5 (computation event sequences vs MINIME).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var m, s float64
		for _, r := range rows {
			m += r.MINIMEError
			s += r.SiestaError
		}
		b.ReportMetric(m/float64(len(rows))*100, "%minime-err")
		b.ReportMetric(s/float64(len(rows))*100, "%siesta-err")
	}
}

// BenchmarkFig6 regenerates Figure 6 (execution-time comparison, including
// the Pilgrim number quoted in §3.4.1).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.Siesta*100, "%siesta")
		b.ReportMetric(sum.SiestaScaled*100, "%siesta-scaled")
		b.ReportMetric(sum.ScalaBench*100, "%scalabench")
		b.ReportMetric(sum.Pilgrim*100, "%pilgrim")
	}
}

// BenchmarkFig7 regenerates Figure 7 (robustness to MPI implementation
// changes).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.Fig7(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.Siesta*100, "%siesta")
		b.ReportMetric(sum.ScalaBench*100, "%scalabench")
	}
}

// BenchmarkFig8 regenerates Figure 8 (portability between platforms A and C).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.Fig8(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.Siesta*100, "%siesta")
		b.ReportMetric(sum.ScalaBench*100, "%scalabench")
	}
}

// BenchmarkFig9 regenerates Figure 9 (BT/CG ported from platform A to B).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, ported, err := experiments.Fig9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ported.Siesta*100, "%siesta-onB")
		b.ReportMetric(ported.ScalaBench*100, "%scalabench-onB")
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ----------

// benchTrace records one MG trace for the ablations.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	spec, err := apps.ByName("MG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 6, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(8, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: 8, Interceptor: rec, Seed: 2})
	if _, err := w.Run(fn); err != nil {
		b.Fatal(err)
	}
	return rec.Trace("A", "openmpi")
}

// BenchmarkAblationRunLength compares grammar sizes with and without the
// Sequitur run-length extension.
func BenchmarkAblationRunLength(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, err := merge.Build(tr, merge.Options{})
		if err != nil {
			b.Fatal(err)
		}
		without, err := merge.Build(tr, merge.Options{DisableRunLength: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(with.Encode())), "B-with-RLE")
		b.ReportMetric(float64(len(without.Encode())), "B-without-RLE")
	}
}

// BenchmarkAblationMainMerge compares program sizes with and without the
// LCS-based main-rule merge.
func BenchmarkAblationMainMerge(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, err := merge.Build(tr, merge.Options{})
		if err != nil {
			b.Fatal(err)
		}
		without, err := merge.Build(tr, merge.Options{DisableMainMerge: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(with.Encode())), "B-merged")
		b.ReportMetric(float64(len(without.Encode())), "B-unmerged")
	}
}

// BenchmarkAblationClusterThreshold sweeps the computation-event clustering
// threshold and reports the resulting cluster counts.
func BenchmarkAblationClusterThreshold(b *testing.B) {
	spec, err := apps.ByName("StirTurb")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 8, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.01, 0.05, 0.20} {
			rec := trace.NewRecorder(8, trace.Config{ClusterThreshold: th})
			w := mpi.NewWorld(mpi.Config{Size: 8, Interceptor: rec, NoiseSigma: 0.004, Seed: 3})
			if _, err := w.Run(fn); err != nil {
				b.Fatal(err)
			}
			tr := rec.Trace("A", "openmpi")
			n := 0
			for _, rt := range tr.Ranks {
				n += len(rt.Clusters)
			}
			switch th {
			case 0.01:
				b.ReportMetric(float64(n), "clusters@1%")
			case 0.05:
				b.ReportMetric(float64(n), "clusters@5%")
			case 0.20:
				b.ReportMetric(float64(n), "clusters@20%")
			}
		}
	}
}

// BenchmarkAblationQPvsMINIME runs both computation-proxy searches on the
// same target and reports both six-metric errors.
func BenchmarkAblationQPvsMINIME(b *testing.B) {
	p := platform.A
	target := perfmodel.Measure(p, perfmodel.Kernel{
		IntOps: 4e6, FPOps: 8e6, DivOps: 2e5, Loads: 5e6, Stores: 2e6,
		Branches: 3e6, RandBranches: 2e5, MissLines: 4e5,
	})
	bm := blocks.MeasureB(p, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combo, err := blocks.Search(bm, target)
		if err != nil {
			b.Fatal(err)
		}
		mini := minime.Synthesize(p, target, minime.Options{})
		b.ReportMetric(combo.Counters(p).RelError(target)*100, "%qp-err")
		b.ReportMetric(mini.Counters(p).RelError(target)*100, "%minime-err")
	}
}

// BenchmarkAblationRelativeRanks quantifies §2.2's relative-rank encoding:
// unique p2p records across ranks with and without it.
func BenchmarkAblationRelativeRanks(b *testing.B) {
	spec, err := apps.ByName("Sweep3d")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 16, Iters: 2, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	count := func(absolute bool) int {
		rec := trace.NewRecorder(16, trace.Config{AbsoluteRanks: absolute})
		w := mpi.NewWorld(mpi.Config{Size: 16, Interceptor: rec, Seed: 4})
		if _, err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
		keys := map[string]bool{}
		for _, rt := range rec.Trace("A", "openmpi").Ranks {
			for _, r := range rt.Table {
				keys[r.KeyString()] = true
			}
		}
		return len(keys)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(count(false)), "records-relative")
		b.ReportMetric(float64(count(true)), "records-absolute")
	}
}

// --- component microbenchmarks ---------------------------------------------

// BenchmarkSequitur measures grammar inference throughput on a periodic
// trace-like sequence.
func BenchmarkSequitur(b *testing.B) {
	phrase := []int{0, 1, 2, 1, 3, 4, 4, 5}
	tokens := make([]int, 0, 8*4096)
	for i := 0; i < 4096; i++ {
		tokens = append(tokens, phrase...)
	}
	b.SetBytes(int64(len(tokens)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := sequitur.New()
		bu.AppendAll(tokens)
		if bu.Grammar().NumSymbols() > 64 {
			b.Fatal("grammar blew up")
		}
	}
}

// BenchmarkQPSearch measures one constrained computation-proxy search.
func BenchmarkQPSearch(b *testing.B) {
	p := platform.A
	bm := blocks.MeasureB(p, nil)
	target := perfmodel.Measure(p, perfmodel.Kernel{
		IntOps: 1e7, FPOps: 5e6, Loads: 8e6, Stores: 3e6, Branches: 3e6, MissLines: 5e5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blocks.Search(bm, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPIRuntime measures simulated runtime throughput in MPI calls per
// second on a communication-heavy ring.
func BenchmarkMPIRuntime(b *testing.B) {
	const ranks, iters = 8, 200
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(mpi.Config{Size: ranks})
		_, err := w.Run(func(r *mpi.Rank) {
			c := r.World()
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			for it := 0; it < iters; it++ {
				r.Sendrecv(c, next, 0, 1024, prev, 0)
				r.Allreduce(c, 8, mpi.OpSum)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ranks*iters*2), "calls/op")
}

// BenchmarkEndToEnd measures one full synthesis (trace → grammar → QP →
// proxy) for CG at 8 ranks.
func BenchmarkEndToEnd(b *testing.B) {
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 4, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Synthesize(fn, core.Options{Ranks: 8, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel-pipeline benchmarks (DESIGN.md §9) ----------------------------

// pipelineTrace records one CG trace at the given rank count for the
// parallel-stage benchmarks.
func pipelineTrace(b *testing.B, ranks int) *trace.Trace {
	b.Helper()
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 1})
	if _, err := w.Run(fn); err != nil {
		b.Fatal(err)
	}
	return rec.Trace("A", "openmpi")
}

// BenchmarkGlobalize times the tree-reduction terminal-table merge serial
// vs parallel across the paper's rank ladder. The two variants produce
// byte-identical output (see internal/core/determinism_test.go); only the
// wall time may differ.
func BenchmarkGlobalize(b *testing.B) {
	for _, ranks := range []int{8, 32, 64} {
		tr := pipelineTrace(b, ranks)
		for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("ranks=%d/par=%d", ranks, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					merge.GlobalizeParallel(tr, 0.05, par)
				}
			})
		}
	}
}

// BenchmarkMergeBuild times the full trace merge (globalize + per-rank
// Sequitur + rule interning + main-rule grouping) serial vs parallel.
func BenchmarkMergeBuild(b *testing.B) {
	for _, ranks := range []int{8, 32, 64} {
		tr := pipelineTrace(b, ranks)
		for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("ranks=%d/par=%d", ranks, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := merge.Build(tr, merge.Options{Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSearchMemoized compares cold QP proxy searches against memoized
// re-solves over the cluster targets of a merged CG trace.
func BenchmarkSearchMemoized(b *testing.B) {
	tr := pipelineTrace(b, 8)
	prog, err := merge.Build(tr, merge.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bm := blocks.MeasureB(platform.A, nil)
	targets := make([]perfmodel.Counters, 0, len(prog.Clusters))
	for _, cl := range prog.Clusters {
		targets = append(targets, cl.Target())
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tgt := range targets {
				if _, err := blocks.Search(bm, tgt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		m := blocks.NewMemo(0)
		for _, tgt := range targets { // prime outside the timed region
			if _, err := blocks.CachedSearch(m, bm, tgt); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tgt := range targets {
				if _, err := blocks.CachedSearch(m, bm, tgt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSynthesizeParallelism times the whole pipeline at Parallelism 1
// vs GOMAXPROCS. Fresh memos per run keep the serial leg from pre-warming
// the cache for the parallel one.
func BenchmarkSynthesizeParallelism(b *testing.B) {
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 2, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Synthesize(fn, core.Options{
					Ranks: 8, Seed: 1, Parallelism: par, SearchMemo: blocks.NewMemo(0),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracingOverhead measures the recorder's relative slowdown after
// the buffer-reuse work and fails if it leaves the paper's Table 3 range
// (the same <~8%, tolerance 12%, bound the experiment suite enforces).
func BenchmarkTracingOverhead(b *testing.B) {
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 4, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(fn, core.Options{Ranks: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Overhead < 0 || res.Overhead > 0.12 {
			b.Fatalf("tracing overhead %.2f%% out of the paper's range", res.Overhead*100)
		}
		b.ReportMetric(res.Overhead*100, "%overhead")
	}
}

// BenchmarkProxyReplay measures proxy replay speed separately from
// generation.
func BenchmarkProxyReplay(b *testing.B) {
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 4, WorkScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(fn, core.Options{Ranks: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.RunProxy(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
