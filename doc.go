// Package siesta is a from-scratch Go reproduction of "Siesta: Synthesizing
// Proxy Applications for MPI Programs" (CLUSTER 2024): a framework that
// traces an MPI program's communication and computation events, compresses
// the trace into context-free grammars (space-optimized Sequitur plus
// SPMD-aware inter-process merging), searches linear combinations of
// predefined code blocks that mimic each computation phase's hardware
// counters via a constrained quadratic program, and generates a synthetic
// proxy application with the same performance characteristics.
//
// Because Go has no MPI bindings, the repository includes a complete
// simulated substrate: an in-process MPI runtime with virtual time
// (internal/mpi), analytic hardware and network models for the paper's three
// platforms and three MPI implementations (internal/platform,
// internal/perfmodel, internal/netmodel), skeleton reimplementations of the
// nine evaluated MPI programs (internal/apps), and reimplementations of the
// compared systems MINIME, ScalaBench and Pilgrim (internal/baselines).
//
// Entry points:
//
//   - internal/core.Synthesize — the full pipeline as a library call
//   - cmd/siesta — trace + generate + report CLI
//   - cmd/siesta-bench — regenerate every table and figure of the paper
//   - cmd/siesta-trace — trace inspection
//   - examples/ — runnable scenarios
//
// The benchmarks in this directory (bench_test.go) wrap the evaluation
// drivers of internal/experiments, one per table/figure, plus the ablations
// called out in DESIGN.md.
package siesta
