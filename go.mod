module siesta

go 1.22
