package proxy

import (
	"errors"
	"strings"
	"testing"

	"siesta/internal/mpi"
	"siesta/internal/trace"
)

// execOne runs a single-rank world and hands the rank to fn, returning
// whatever error fn produced from the replayer.
func execOne(t *testing.T, fn func(r *mpi.Rank, rp *Replayer) error) error {
	t.Helper()
	var got error
	w := mpi.NewWorld(mpi.Config{Size: 1})
	if _, err := w.Run(func(r *mpi.Rank) {
		got = fn(r, NewReplayer(r.World()))
	}); err != nil {
		t.Fatalf("world run itself failed: %v", err)
	}
	return got
}

func TestExecCommDivergence(t *testing.T) {
	cases := []struct {
		name   string
		rec    trace.Record
		reason string
	}{
		{
			name:   "computation record",
			rec:    trace.Record{Func: "MPI_Compute"},
			reason: "computation record",
		},
		{
			name:   "dangling communicator",
			rec:    trace.Record{Func: "MPI_Barrier", CommPool: 9},
			reason: "dangling communicator pool id 9",
		},
		{
			name:   "unsupported function",
			rec:    trace.Record{Func: "MPI_Win_lock"},
			reason: "unsupported function",
		},
		{
			name:   "wait on dangling request",
			rec:    trace.Record{Func: "MPI_Wait", ReqPool: 3},
			reason: "dangling request pool id 3",
		},
		{
			name:   "start on dangling request",
			rec:    trace.Record{Func: "MPI_Start", ReqPool: 5},
			reason: "dangling request pool id 5",
		},
		{
			name:   "write to dangling file",
			rec:    trace.Record{Func: "MPI_File_write_at", FilePool: 2, Bytes: 64},
			reason: "dangling file pool id 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := execOne(t, func(r *mpi.Rank, rp *Replayer) error {
				return rp.ExecComm(r, &tc.rec)
			})
			var div *DivergenceError
			if !errors.As(err, &div) {
				t.Fatalf("ExecComm returned %v, want a DivergenceError", err)
			}
			if !strings.Contains(div.Reason, tc.reason) {
				t.Errorf("reason %q, want it to mention %q", div.Reason, tc.reason)
			}
		})
	}
}

func TestExecCommLenientOnMissingRequests(t *testing.T) {
	// Waitall, Testall, Test and Request_free tolerate missing pool ids:
	// trace compression may have dropped completed-request bookkeeping.
	err := execOne(t, func(r *mpi.Rank, rp *Replayer) error {
		for _, rec := range []trace.Record{
			{Func: "MPI_Waitall", ReqPools: []int{1, 2}},
			{Func: "MPI_Testall", ReqPools: []int{3}},
			{Func: "MPI_Test", ReqPool: 4},
			{Func: "MPI_Request_free", ReqPool: 5},
		} {
			if err := rp.ExecComm(r, &rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("lenient operations diverged: %v", err)
	}
}

func TestDivergencePropagatesThroughRun(t *testing.T) {
	// A divergence raised mid-replay must come back out of World.Run as a
	// wrapped error, not a process panic.
	w := mpi.NewWorld(mpi.Config{Size: 1})
	_, err := w.Run(func(r *mpi.Rank) {
		rp := NewReplayer(r.World())
		rec := trace.Record{Func: "MPI_Barrier", CommPool: 4}
		if err := rp.ExecComm(r, &rec); err != nil {
			panic(err)
		}
	})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("run returned %v, want a wrapped DivergenceError", err)
	}
	if div.Rank != 0 || div.Func != "MPI_Barrier" {
		t.Errorf("divergence %+v, want rank 0 / MPI_Barrier", div)
	}
}
