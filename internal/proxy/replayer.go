package proxy

import (
	"siesta/internal/mpi"
	"siesta/internal/trace"
)

// Replayer replays communication records on the simulated runtime for one
// rank, maintaining the handle pools (communicators, requests) that the
// trace layer's pool renaming presumes. It is shared by the Siesta proxy
// executor and the baseline replayers (ScalaBench, Pilgrim).
type Replayer struct {
	comms map[int]*mpi.Comm
	reqs  map[int]*mpi.Request
	files map[int]*mpi.File
}

// NewReplayer starts a replay session with the world communicator bound to
// pool id 0.
func NewReplayer(world *mpi.Comm) *Replayer {
	return &Replayer{
		comms: map[int]*mpi.Comm{0: world},
		reqs:  map[int]*mpi.Request{},
		files: map[int]*mpi.File{},
	}
}

// decodeRel turns a relative-rank encoding back into a comm rank for this
// process.
func decodeRel(c *mpi.Comm, me, rel int) int {
	switch rel {
	case trace.Wildcard:
		return mpi.AnySource
	case trace.NoRank:
		return mpi.ProcNull
	}
	return (me + rel) % c.Size()
}

func decodeTag(tag int) int {
	if tag == trace.Wildcard {
		return mpi.AnyTag
	}
	if tag == trace.NoRank {
		return 0
	}
	return tag
}

// ExecComm replays one communication record. It returns a *DivergenceError
// when the record cannot be executed faithfully — it references a handle
// pool id the replay never created, is a computation record (those are the
// caller's business; different replayers price them differently), or names
// an unsupported function. Handle-lenient operations (Waitall, Testall,
// Test, Request_free) skip missing requests silently, matching the trace
// layer's compression, which may drop completed-request bookkeeping;
// handle-strict ones (Wait, Waitany, Start, File ops) diverge.
func (rp *Replayer) ExecComm(r *mpi.Rank, rec *trace.Record) error {
	if rec.IsCompute() {
		return divergef(r.Rank(), rec.Func, "ExecComm called with a computation record")
	}
	c, ok := rp.comms[rec.CommPool]
	if !ok {
		return divergef(r.Rank(), rec.Func, "dangling communicator pool id %d", rec.CommPool)
	}
	me := c.RankOf(r.Rank())
	switch rec.Func {
	case "MPI_Send":
		r.Send(c, decodeRel(c, me, rec.DestRel), rec.Tag, rec.Bytes)
	case "MPI_Ssend":
		r.Ssend(c, decodeRel(c, me, rec.DestRel), rec.Tag, rec.Bytes)
	case "MPI_Probe":
		r.Probe(c, decodeRel(c, me, rec.SrcRel), decodeTag(rec.Tag))
	case "MPI_Iprobe":
		r.Iprobe(c, decodeRel(c, me, rec.SrcRel), decodeTag(rec.Tag))
	case "MPI_Recv":
		r.Recv(c, decodeRel(c, me, rec.SrcRel), decodeTag(rec.Tag))
	case "MPI_Isend":
		rp.reqs[rec.ReqPool] = r.Isend(c, decodeRel(c, me, rec.DestRel), rec.Tag, rec.Bytes)
	case "MPI_Irecv":
		rp.reqs[rec.ReqPool] = r.Irecv(c, decodeRel(c, me, rec.SrcRel), decodeTag(rec.Tag))
	case "MPI_Wait":
		req, ok := rp.reqs[rec.ReqPool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling request pool id %d", rec.ReqPool)
		}
		r.Wait(req)
		if !req.Persistent() {
			delete(rp.reqs, rec.ReqPool)
		}
	case "MPI_Waitall":
		reqs := make([]*mpi.Request, 0, len(rec.ReqPools))
		for _, q := range rec.ReqPools {
			if req, ok := rp.reqs[q]; ok {
				reqs = append(reqs, req)
				if !req.Persistent() {
					delete(rp.reqs, q)
				}
			}
		}
		r.Waitall(reqs)
	case "MPI_Test":
		if req, ok := rp.reqs[rec.ReqPool]; ok {
			if done, _ := r.Test(req); done {
				delete(rp.reqs, rec.ReqPool)
			}
		}
	case "MPI_Waitany":
		// Replay deterministically waits on the request the trace saw
		// complete; the others stay pending.
		req, ok := rp.reqs[rec.ReqPool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling request pool id %d", rec.ReqPool)
		}
		r.Wait(req)
		delete(rp.reqs, rec.ReqPool)
	case "MPI_Testall":
		reqs := make([]*mpi.Request, 0, len(rec.ReqPools))
		for _, q := range rec.ReqPools {
			if req, ok := rp.reqs[q]; ok {
				reqs = append(reqs, req)
			}
		}
		if r.Testall(reqs) {
			for _, q := range rec.ReqPools {
				delete(rp.reqs, q)
			}
		}
	case "MPI_Sendrecv":
		r.Sendrecv(c, decodeRel(c, me, rec.DestRel), rec.Tag, rec.Bytes,
			decodeRel(c, me, rec.SrcRel), decodeTag(rec.RecvTag))
	case "MPI_Barrier":
		r.Barrier(c)
	case "MPI_Bcast":
		r.Bcast(c, rec.Root, rec.Bytes)
	case "MPI_Reduce":
		r.Reduce(c, rec.Root, rec.Bytes, mpi.ReduceOp(rec.Op))
	case "MPI_Allreduce":
		r.Allreduce(c, rec.Bytes, mpi.ReduceOp(rec.Op))
	case "MPI_Scan":
		r.Scan(c, rec.Bytes, mpi.ReduceOp(rec.Op))
	case "MPI_Exscan":
		r.Exscan(c, rec.Bytes, mpi.ReduceOp(rec.Op))
	case "MPI_Reduce_scatter":
		r.ReduceScatter(c, rec.Bytes, mpi.ReduceOp(rec.Op))
	case "MPI_Gather":
		r.Gather(c, rec.Root, rec.Bytes)
	case "MPI_Gatherv":
		r.Gatherv(c, rec.Root, rec.Bytes)
	case "MPI_Scatter":
		r.Scatter(c, rec.Root, rec.Bytes)
	case "MPI_Allgather":
		r.Allgather(c, rec.Bytes)
	case "MPI_Allgatherv":
		r.Allgatherv(c, rec.Bytes)
	case "MPI_Alltoall":
		r.Alltoall(c, rec.Bytes)
	case "MPI_Alltoallv":
		counts := rec.Counts
		if len(counts) != c.Size() {
			counts = make([]int, c.Size())
			copy(counts, rec.Counts)
		}
		if err := r.Alltoallv(c, counts); err != nil {
			return divergef(r.Rank(), rec.Func, "%v", err)
		}
	case "MPI_Comm_split":
		nc := r.CommSplit(c, rec.Color, rec.Key)
		if rec.NewCommPool >= 0 && nc != nil {
			rp.comms[rec.NewCommPool] = nc
		}
	case "MPI_Comm_dup":
		nc := r.CommDup(c)
		if rec.NewCommPool >= 0 {
			rp.comms[rec.NewCommPool] = nc
		}
	case "MPI_Comm_free":
		r.CommFree(c)
		delete(rp.comms, rec.CommPool)
	case "MPI_Ibarrier":
		rp.reqs[rec.ReqPool] = r.Ibarrier(c)
	case "MPI_Ibcast":
		rp.reqs[rec.ReqPool] = r.Ibcast(c, rec.Root, rec.Bytes)
	case "MPI_Iallreduce":
		rp.reqs[rec.ReqPool] = r.Iallreduce(c, rec.Bytes, mpi.ReduceOp(rec.Op))
	case "MPI_Send_init":
		rp.reqs[rec.ReqPool] = r.SendInit(c, decodeRel(c, me, rec.DestRel), rec.Tag, rec.Bytes)
	case "MPI_Recv_init":
		rp.reqs[rec.ReqPool] = r.RecvInit(c, decodeRel(c, me, rec.SrcRel), decodeTag(rec.Tag))
	case "MPI_Start":
		req, ok := rp.reqs[rec.ReqPool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling request pool id %d", rec.ReqPool)
		}
		r.Start(req)
	case "MPI_Request_free":
		if req, ok := rp.reqs[rec.ReqPool]; ok {
			r.RequestFree(req)
			delete(rp.reqs, rec.ReqPool)
		}
	case "MPI_File_open":
		rp.files[rec.FilePool] = r.FileOpen(c, rec.FileName)
	case "MPI_File_close":
		f, ok := rp.files[rec.FilePool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling file pool id %d", rec.FilePool)
		}
		r.FileClose(f)
		delete(rp.files, rec.FilePool)
	case "MPI_File_write_at":
		f, ok := rp.files[rec.FilePool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling file pool id %d", rec.FilePool)
		}
		r.FileWriteAt(f, rec.OffsetRel+me*rec.Bytes, rec.Bytes)
	case "MPI_File_read_at":
		f, ok := rp.files[rec.FilePool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling file pool id %d", rec.FilePool)
		}
		r.FileReadAt(f, rec.OffsetRel+me*rec.Bytes, rec.Bytes)
	case "MPI_File_write_at_all":
		f, ok := rp.files[rec.FilePool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling file pool id %d", rec.FilePool)
		}
		r.FileWriteAtAll(f, rec.OffsetRel+me*rec.Bytes, rec.Bytes)
	case "MPI_File_read_at_all":
		f, ok := rp.files[rec.FilePool]
		if !ok {
			return divergef(r.Rank(), rec.Func, "dangling file pool id %d", rec.FilePool)
		}
		r.FileReadAtAll(f, rec.OffsetRel+me*rec.Bytes, rec.Bytes)
	default:
		return divergef(r.Rank(), rec.Func, "unsupported function")
	}
	return nil
}
