// Package proxy executes generated proxy-apps on the simulated MPI runtime.
// It is the in-simulation equivalent of compiling and running the generated
// C program: the merged grammar is walked per rank, communication terminals
// replay the recorded MPI calls (with pool-renamed handles and decoded
// relative ranks), and computation terminals replay their searched block
// combinations — or recorded sleep times, or nothing, for the ablation and
// baseline modes.
package proxy

import (
	"fmt"

	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/vtime"
)

// Mode selects how computation events are replayed.
type Mode int

const (
	// ComputeBlocks replays the searched block combinations (Siesta).
	ComputeBlocks Mode = iota
	// SleepReplay advances the clock by the recorded mean duration — the
	// platform-insensitive strategy of sleep-based generators.
	SleepReplay
	// NoCompute skips computation events entirely (communication-only
	// replay, as Pilgrim does).
	NoCompute
)

// App is a runnable proxy application.
type App struct {
	Gen  *codegen.Generated
	Mode Mode
}

// New returns a proxy app in ComputeBlocks mode.
func New(gen *codegen.Generated) *App { return &App{Gen: gen} }

// RankFunc returns the SPMD function that replays the proxy on each rank.
// Divergence between the generated program and what the runtime can replay
// surfaces as a *DivergenceError panic, which mpi.World.Run absorbs into a
// wrapped error return (so errors.As still finds it).
func (a *App) RankFunc() func(*mpi.Rank) {
	prog := a.Gen.Prog
	return func(r *mpi.Rank) {
		rp := NewReplayer(r.World())
		var main *merge.Main
		for i := range prog.Mains {
			if prog.Mains[i].Ranks.Contains(r.Rank()) {
				main = &prog.Mains[i]
				break
			}
		}
		if main == nil {
			panic(&DivergenceError{Rank: r.Rank(), Reason: "no main rule covers this rank"})
		}
		for _, ms := range main.Body {
			if ms.Ranks.Contains(r.Rank()) {
				if err := a.execSym(r, rp, ms.Sym); err != nil {
					panic(err)
				}
			}
		}
	}
}

// Run executes the proxy in the given environment. The config's Size is
// forced to the program's rank count.
func (a *App) Run(cfg mpi.Config) (*mpi.RunResult, error) {
	cfg.Size = a.Gen.Prog.NumRanks
	w := mpi.NewWorld(cfg)
	res, err := w.Run(a.RankFunc())
	if err != nil {
		return nil, fmt.Errorf("proxy: replay failed: %w", err)
	}
	return res, nil
}

// ReportedTime converts a proxy execution time into the reported estimate:
// scaled proxies multiply back by the scaling factor (paper §3.4.1).
func (a *App) ReportedTime(res *mpi.RunResult) vtime.Duration {
	return vtime.Duration(float64(res.ExecTime) * a.Gen.Scale)
}

func (a *App) execSym(r *mpi.Rank, rp *Replayer, s merge.Sym) error {
	for c := 0; c < s.Count; c++ {
		if s.IsRule {
			for _, inner := range a.Gen.Prog.Rules[s.Ref] {
				if err := a.execSym(r, rp, inner); err != nil {
					return err
				}
			}
			continue
		}
		rec := a.Gen.Prog.Terminals[s.Ref]
		if rec.IsCompute() {
			switch a.Mode {
			case ComputeBlocks:
				r.Compute(a.Gen.Combos[rec.ComputeCluster].Kernel(r.Platform()))
			case SleepReplay:
				r.Elapse(vtime.Duration(a.Gen.SleepTimes[rec.ComputeCluster]))
			case NoCompute:
			}
			continue
		}
		if err := rp.ExecComm(r, rec); err != nil {
			return err
		}
	}
	return nil
}
