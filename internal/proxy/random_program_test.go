package proxy

import (
	"testing"

	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/trace"
)

// TestRandomProgramsRoundTrip drives randomly generated programs through
// trace → merge (lossless self-check) → codegen → replay and verifies
// call-count and execution-time fidelity. This is the pipeline's
// property-based end-to-end harness.
func TestRandomProgramsRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(string(rune('A'+seed-1)), func(t *testing.T) {
			t.Parallel()
			ranks := 4 + int(seed%3)*2 // 4, 6 or 8
			fn := RandomProgram(seed, 12)
			rec := trace.NewRecorder(ranks, trace.Config{})
			w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: uint64(seed)})
			orig, err := w.Run(fn)
			if err != nil {
				t.Fatalf("seed %d: original run: %v", seed, err)
			}
			tr := rec.Trace("A", "openmpi")
			prog, err := merge.Build(tr, merge.Options{})
			if err != nil {
				t.Fatalf("seed %d: merge: %v", seed, err)
			}
			gen, err := codegen.Generate(prog, codegen.Options{})
			if err != nil {
				t.Fatalf("seed %d: codegen: %v", seed, err)
			}
			res, err := New(gen).Run(mpi.Config{Seed: uint64(seed) + 100})
			if err != nil {
				t.Fatalf("seed %d: replay: %v", seed, err)
			}
			for i := range orig.Ranks {
				if res.Ranks[i].Calls != orig.Ranks[i].Calls {
					t.Errorf("seed %d rank %d: %d calls vs %d",
						seed, i, res.Ranks[i].Calls, orig.Ranks[i].Calls)
				}
			}
			if rel := relErr(float64(res.ExecTime), float64(orig.ExecTime)); rel > 0.30 {
				t.Errorf("seed %d: time error %.1f%% (proxy %v, orig %v)",
					seed, rel*100, res.ExecTime, orig.ExecTime)
			}
			// The generated C must be at least structurally sane.
			src := gen.CSource()
			open, close := 0, 0
			for _, ch := range src {
				switch ch {
				case '{':
					open++
				case '}':
					close++
				}
			}
			if open != close {
				t.Errorf("seed %d: unbalanced braces in generated C", seed)
			}
		})
	}
}
