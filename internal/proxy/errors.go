package proxy

import "fmt"

// DivergenceError reports that a replayed trace diverged from what the
// recorded program structure promises: a record references a handle the
// replay never created, names a function the runtime does not implement, or
// otherwise cannot be executed faithfully. It signals a bug in the
// trace/merge/codegen pipeline (or a corrupted trace), not in the replayed
// application, so the replayer surfaces it as a structured error instead of
// crashing the process.
type DivergenceError struct {
	Rank   int    // rank whose replay diverged
	Func   string // MPI function of the offending record ("" if structural)
	Reason string
}

func (e *DivergenceError) Error() string {
	if e.Func == "" {
		return fmt.Sprintf("proxy: replay diverged on rank %d: %s", e.Rank, e.Reason)
	}
	return fmt.Sprintf("proxy: replay diverged on rank %d in %s: %s", e.Rank, e.Func, e.Reason)
}

// divergef builds a DivergenceError for one record.
func divergef(rank int, fn, format string, args ...any) *DivergenceError {
	return &DivergenceError{Rank: rank, Func: fn, Reason: fmt.Sprintf(format, args...)}
}
