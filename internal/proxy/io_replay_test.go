package proxy

import (
	"strings"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/trace"
)

// TestBTIOPipeline runs the I/O-extended BT through the whole pipeline: the
// checkpoint writes must be traced (file pool renaming, relative offsets),
// merged losslessly, replayed with the same I/O cost, and emitted as MPI-IO
// calls in the generated C.
func TestBTIOPipeline(t *testing.T) {
	const ranks = 9
	spec, err := apps.ByName("BTIO")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 8, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 17})
	orig, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace("A", "openmpi")
	h := tr.FuncHistogram()
	for _, f := range []string{"MPI_File_open", "MPI_File_write_at_all", "MPI_File_read_at_all", "MPI_File_close"} {
		if h[f] == 0 {
			t.Errorf("trace lacks %s", f)
		}
	}

	prog, err := merge.Build(tr, merge.Options{}) // lossless self-check inside
	if err != nil {
		t.Fatal(err)
	}
	// Relative offset encoding: the per-rank block writes of one
	// checkpoint must merge into a single terminal across all ranks.
	writeTerminals := 0
	for _, r := range prog.Terminals {
		if r.Func == "MPI_File_write_at_all" {
			writeTerminals++
		}
	}
	checkpoints := h["MPI_File_write_at_all"] / ranks
	if writeTerminals != checkpoints {
		t.Errorf("%d write terminals for %d checkpoints — relative offsets did not merge across ranks",
			writeTerminals, checkpoints)
	}

	gen, err := codegen.Generate(prog, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(gen).Run(mpi.Config{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Ranks {
		if res.Ranks[i].Calls != orig.Ranks[i].Calls {
			t.Errorf("rank %d: %d calls vs %d", i, res.Ranks[i].Calls, orig.Ranks[i].Calls)
		}
	}
	rel := relErr(float64(res.ExecTime), float64(orig.ExecTime))
	if rel > 0.15 {
		t.Errorf("BTIO replay time error %.1f%%", rel*100)
	}

	src := gen.CSource()
	for _, want := range []string{"MPI_File_open", "MPI_File_write_at_all", "MPI_File_close", "file_pool"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C lacks %s", want)
		}
	}
}

// TestIOTraceCodecRoundTrip ensures the new record fields survive
// serialization.
func TestIOTraceCodecRoundTrip(t *testing.T) {
	const ranks = 4
	spec, err := apps.ByName("BTIO")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 4, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, Seed: 2})
	if _, err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace("A", "openmpi")
	got, err := trace.Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Ranks {
		for j := range tr.Ranks[i].Table {
			a, b := tr.Ranks[i].Table[j], got.Ranks[i].Table[j]
			if a.KeyString() != b.KeyString() {
				t.Fatalf("rank %d record %d mismatch after codec round trip", i, j)
			}
		}
	}
}
