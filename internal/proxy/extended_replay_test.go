package proxy

import (
	"testing"

	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/trace"
)

// extendedFull exercises the runtime surface beyond the paper's nine
// programs: synchronous sends, probes, waitany, testall, prefix scans and
// reduce-scatter — everything the tracer and replayer must carry through
// the grammar pipeline.
func extendedFull(r *mpi.Rank) {
	c := r.World()
	next := (r.Rank() + 1) % r.Size()
	prev := (r.Rank() - 1 + r.Size()) % r.Size()
	k := perfmodel.Kernel{IntOps: 2e6, FPOps: 1e6, Loads: 1e6, Stores: 4e5, Branches: 8e5, MissLines: 5e4}

	// Persistent halo pair, reused across iterations.
	psend := r.SendInit(c, next, 8, 1024)
	precv := r.RecvInit(c, prev, 8)

	for it := 0; it < 4; it++ {
		r.Compute(k)
		rq := r.Irecv(c, prev, 1)
		r.Ssend(c, next, 1, 2048)
		r.Wait(rq)

		r.Start(precv)
		r.Start(psend)
		r.Wait(psend)
		r.Wait(precv)

		r.Send(c, next, 2, 512)
		r.Probe(c, prev, 2)
		r.Recv(c, prev, 2)

		// Waitany over two staged receives.
		a := r.Irecv(c, prev, 3)
		b := r.Irecv(c, next, 4)
		r.Isend(c, next, 3, 256)
		r.Isend(c, prev, 4, 256)
		idx, _ := r.Waitany([]*mpi.Request{a, b})
		rest := a
		if idx == 0 {
			rest = b
		}
		for !r.Testall([]*mpi.Request{rest}) {
			r.Compute(perfmodel.Kernel{IntOps: 1e5})
		}

		r.Scan(c, 64, mpi.OpSum)
		r.Exscan(c, 32, mpi.OpSum)
		r.ReduceScatter(c, 16, mpi.OpMax)
	}
	r.RequestFree(psend)
	r.RequestFree(precv)
}

func TestExtendedCallsRoundTripPipeline(t *testing.T) {
	const ranks = 6
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 77})
	orig, err := w.Run(extendedFull)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace("A", "openmpi")
	h := tr.FuncHistogram()
	for _, f := range []string{"MPI_Ssend", "MPI_Probe", "MPI_Waitany", "MPI_Testall",
		"MPI_Scan", "MPI_Exscan", "MPI_Reduce_scatter",
		"MPI_Send_init", "MPI_Recv_init", "MPI_Start", "MPI_Request_free"} {
		if h[f] == 0 {
			t.Errorf("trace lacks %s events", f)
		}
	}

	prog, err := merge.Build(tr, merge.Options{}) // self-checks losslessness
	if err != nil {
		t.Fatal(err)
	}
	gen, err := codegen.Generate(prog, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(gen).Run(mpi.Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("proxy did nothing")
	}
	rel := relErr(float64(res.ExecTime), float64(orig.ExecTime))
	if rel > 0.25 {
		t.Errorf("extended replay time error %.1f%% (proxy %v, orig %v)",
			rel*100, res.ExecTime, orig.ExecTime)
	}

	// And the generated C must mention the extended calls.
	src := gen.CSource()
	for _, want := range []string{"MPI_Ssend", "MPI_Probe", "MPI_Scan", "MPI_Exscan", "MPI_Reduce_scatter"} {
		if !containsStr(src, want) {
			t.Errorf("generated C lacks %s", want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
