package proxy

import (
	"math/rand"

	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
)

// RandomProgram generates a deterministic, deadlock-free, rank-symmetric
// SPMD program from a seed: a random sequence of phases drawn from the
// whole traced call surface (computation, collectives, ring exchanges,
// non-blocking halos, synchronous sends, persistent pairs, prefix scans,
// communicator duplication, MPI-IO), with nested repetition to give the
// grammar stage real loop structure. Safety by construction: every
// point-to-point phase posts receives before synchronous sends, and every
// rank executes the identical sequence. It powers the pipeline's
// property-based harnesses — replay fidelity here, and the static
// verifier's clean corpus in internal/check.
func RandomProgram(seed int64, phases int) func(*mpi.Rank) {
	type phase struct {
		kind   int
		bytes  int
		offset int
		reps   int
	}
	rng := rand.New(rand.NewSource(seed))
	plan := make([]phase, phases)
	for i := range plan {
		plan[i] = phase{
			kind:   rng.Intn(14),
			bytes:  1 << (4 + rng.Intn(14)), // 16 B – 128 KB
			offset: 1 + rng.Intn(3),
			reps:   1 + rng.Intn(4),
		}
	}
	kernels := make([]perfmodel.Kernel, 4)
	for i := range kernels {
		base := int64(1+rng.Intn(20)) * 100_000
		kernels[i] = perfmodel.Kernel{
			IntOps:    base * 2,
			FPOps:     base * int64(1+rng.Intn(3)),
			Loads:     base * 2,
			Stores:    base / 2,
			Branches:  base,
			MissLines: base / int64(8+rng.Intn(16)),
		}
	}

	return func(r *mpi.Rank) {
		c := r.World()
		P := r.Size()
		dup := r.CommDup(c)
		f := r.FileOpen(c, "random.chk")
		writes := 0
		for pi, ph := range plan {
			off := ph.offset % P
			if off == 0 {
				off = 1
			}
			next := (r.Rank() + off) % P
			prev := (r.Rank() - off + P) % P
			for rep := 0; rep < ph.reps; rep++ {
				switch ph.kind {
				case 0:
					r.Compute(kernels[pi%len(kernels)])
				case 1:
					r.Barrier(c)
				case 2:
					r.Bcast(c, 0, ph.bytes)
				case 3:
					r.Allreduce(dup, ph.bytes%1024+8, mpi.OpSum)
				case 4:
					r.Sendrecv(c, next, pi, ph.bytes, prev, pi)
				case 5: // non-blocking halo
					reqs := []*mpi.Request{
						r.Irecv(c, prev, 100+pi),
						r.Irecv(c, next, 200+pi),
						r.Isend(c, next, 100+pi, ph.bytes),
						r.Isend(c, prev, 200+pi, ph.bytes),
					}
					r.Waitall(reqs)
				case 6: // synchronous ring: post receive first
					rq := r.Irecv(c, prev, 300+pi)
					r.Ssend(c, next, 300+pi, ph.bytes)
					r.Wait(rq)
				case 7:
					r.Scan(c, ph.bytes%512+8, mpi.OpSum)
				case 8:
					r.ReduceScatter(c, ph.bytes%512+8, mpi.OpMax)
				case 9:
					r.Alltoall(c, ph.bytes%4096+16)
				case 10: // persistent pair for this phase
					ps := r.SendInit(c, next, 400+pi, ph.bytes)
					pr := r.RecvInit(c, prev, 400+pi)
					for k := 0; k < 2; k++ {
						r.Start(pr)
						r.Start(ps)
						r.Wait(ps)
						r.Wait(pr)
					}
					r.RequestFree(ps)
					r.RequestFree(pr)
				case 11:
					r.FileWriteAtAll(f, (writes*P+r.Rank())*ph.bytes, ph.bytes)
					writes++
				case 12: // non-blocking barrier overlapped with compute
					rq := r.Ibarrier(c)
					r.Compute(kernels[(pi+1)%len(kernels)])
					r.Wait(rq)
				case 13: // non-blocking allreduce + bcast pair
					ra := r.Iallreduce(c, ph.bytes%256+8, mpi.OpSum)
					rb := r.Ibcast(c, 0, ph.bytes%1024+8)
					r.Waitall([]*mpi.Request{ra, rb})
				}
			}
		}
		r.FileClose(f)
		r.CommFree(dup)
		r.Allreduce(c, 8, mpi.OpSum)
	}
}
