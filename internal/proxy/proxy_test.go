package proxy

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
	"siesta/internal/trace"
)

// synth traces an app and generates a proxy for it.
func synth(t *testing.T, name string, ranks, iters int, scale float64) (*codegen.Generated, *mpi.RunResult, *trace.Trace) {
	t.Helper()
	spec, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: iters, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 21})
	orig, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace("A", "openmpi")
	prog, err := merge.Build(tr, merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := codegen.Options{Scale: scale}
	if scale > 1 {
		opts.CommSamples = codegen.CollectCommSamples(tr)
	}
	gen, err := codegen.Generate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return gen, orig, tr
}

func TestProxyReplaysAllApps(t *testing.T) {
	for _, name := range []string{"CG", "MG", "IS", "BT", "SP", "Sweep3d", "Sedov", "Sod", "StirTurb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ranks := 8
			if name == "BT" || name == "SP" {
				ranks = 9
			}
			gen, orig, _ := synth(t, name, ranks, 3, 1)
			app := New(gen)
			res, err := app.Run(mpi.Config{Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecTime <= 0 {
				t.Fatal("proxy consumed no virtual time")
			}
			// Call-count fidelity: lossless communication replay means
			// the proxy issues exactly as many MPI calls per rank.
			for i := range orig.Ranks {
				if res.Ranks[i].Calls != orig.Ranks[i].Calls {
					t.Errorf("rank %d: proxy made %d calls, original %d",
						i, res.Ranks[i].Calls, orig.Ranks[i].Calls)
				}
			}
		})
	}
}

func TestProxyTimeCloseToOriginal(t *testing.T) {
	gen, orig, _ := synth(t, "CG", 8, 4, 1)
	res, err := New(gen).Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rel := relErr(float64(res.ExecTime), float64(orig.ExecTime))
	if rel > 0.15 {
		t.Errorf("proxy time error %.1f%% too large (proxy %v, orig %v)", rel*100, res.ExecTime, orig.ExecTime)
	}
}

func TestProxyCountersCloseToOriginal(t *testing.T) {
	gen, orig, _ := synth(t, "MG", 8, 4, 1)
	res, err := New(gen).Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	o, p := orig.TotalCompute(), res.TotalCompute()
	if e := p.RelError(o); e > 0.15 {
		t.Errorf("counter error %.1f%% too large\norig %v\nprox %v", e*100, o, p)
	}
}

func TestScaledProxyIsFaster(t *testing.T) {
	gen1, orig, _ := synth(t, "CG", 8, 4, 1)
	gen10, _, _ := synth(t, "CG", 8, 4, 10)
	r1, err := New(gen1).Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := New(gen10).Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r10.ExecTime >= r1.ExecTime {
		t.Fatalf("scaled proxy (%v) should be faster than unscaled (%v)", r10.ExecTime, r1.ExecTime)
	}
	// Reported (scaled-back) time should approximate the original.
	app10 := New(gen10)
	reported := float64(app10.ReportedTime(r10))
	if rel := relErr(reported, float64(orig.ExecTime)); rel > 0.35 {
		t.Errorf("scaled-back time error %.1f%% (reported %.4g, orig %.4g)", rel*100, reported, float64(orig.ExecTime))
	}
}

func TestSleepReplayInsensitiveToPlatform(t *testing.T) {
	gen, _, _ := synth(t, "CG", 8, 3, 1)
	sleep := &App{Gen: gen, Mode: SleepReplay}
	ra, err := sleep.Run(mpi.Config{Platform: platform.A, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sleep.Run(mpi.Config{Platform: platform.B, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Sleep replay's computation time is fixed; only communication varies.
	// The block-replay proxy must move much more across platforms.
	blocksApp := New(gen)
	ba, err := blocksApp.Run(mpi.Config{Platform: platform.A, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := blocksApp.Run(mpi.Config{Platform: platform.B, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sleepShift := relErr(float64(rb.ExecTime), float64(ra.ExecTime))
	blockShift := relErr(float64(bb.ExecTime), float64(ba.ExecTime))
	if blockShift <= sleepShift {
		t.Errorf("block replay should track platforms more than sleep replay: %.2f vs %.2f", blockShift, sleepShift)
	}
}

func TestNoComputeModeUndershoots(t *testing.T) {
	gen, orig, _ := synth(t, "CG", 8, 3, 1)
	nc := &App{Gen: gen, Mode: NoCompute}
	res, err := nc.Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.ExecTime) > 0.7*float64(orig.ExecTime) {
		t.Errorf("comm-only replay should grossly undershoot: %v vs %v", res.ExecTime, orig.ExecTime)
	}
}

func TestProxyRunsUnderOtherImplementations(t *testing.T) {
	gen, _, _ := synth(t, "MG", 8, 3, 1)
	app := New(gen)
	var times []float64
	for _, im := range netmodel.All {
		res, err := app.Run(mpi.Config{Impl: im, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", im.Name, err)
		}
		times = append(times, float64(res.ExecTime))
	}
	if times[0] == times[1] && times[1] == times[2] {
		t.Error("implementation change should move proxy time")
	}
}

func TestProxyDeterministic(t *testing.T) {
	gen, _, _ := synth(t, "IS", 8, 3, 1)
	app := New(gen)
	r1, err := app.Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := app.Run(mpi.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Errorf("same seed, different times: %v vs %v", r1.ExecTime, r2.ExecTime)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}
