package scalabench

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/mpi"
	"siesta/internal/platform"
	"siesta/internal/trace"
)

func traceApp(t *testing.T, name string, ranks, iters int) (*trace.Trace, *mpi.RunResult) {
	t.Helper()
	spec, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: iters, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 31})
	orig, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace("A", "openmpi"), orig
}

func TestGenerateAndReplayCG(t *testing.T) {
	tr, orig := traceApp(t, "CG", 8, 3)
	p, err := Generate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(mpi.Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// On the generation environment the sleep replay should land in the
	// right ballpark (the paper reports 13.13% mean error).
	rel := relErr(float64(res.ExecTime), float64(orig.ExecTime))
	if rel > 0.35 {
		t.Errorf("same-environment error %.1f%% too large (%v vs %v)", rel*100, res.ExecTime, orig.ExecTime)
	}
}

func TestRejectsCommunicatorOps(t *testing.T) {
	tr, _ := traceApp(t, "Sedov", 8, 3) // FLASH dups communicators
	if _, err := Generate(tr, Options{}); err == nil {
		t.Fatal("FLASH traces must be rejected (paper: ScalaBench crashes on FLASH)")
	}
}

func TestRanksCapacityLimit(t *testing.T) {
	tr, _ := traceApp(t, "CG", 8, 2)
	if _, err := Generate(tr, Options{MaxRanks: 4}); err == nil {
		t.Fatal("capacity limit should reject large traces")
	}
	if _, err := Generate(tr, Options{MaxRanks: 8}); err != nil {
		t.Fatalf("within capacity should pass: %v", err)
	}
}

func TestSleepReplayIsPlatformFrozen(t *testing.T) {
	// The Fig. 9 mechanism: ScalaBench's compute time does not change
	// across platforms, so its A→B shift is far smaller than the
	// original program's.
	tr, _ := traceApp(t, "CG", 8, 3)
	p, err := Generate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := p.Run(mpi.Config{Platform: platform.A, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.Run(mpi.Config{Platform: platform.B, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := apps.ByName("CG")
	fn, _ := spec.Build(apps.Params{Ranks: 8, Iters: 3, WorkScale: 0.05})
	wb := mpi.NewWorld(mpi.Config{Platform: platform.B, Size: 8, Seed: 31})
	origB, err := wb.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	proxyShift := relErr(float64(rb.ExecTime), float64(ra.ExecTime))
	// Original B time is much larger than proxy-on-B time.
	if float64(rb.ExecTime) > 0.8*float64(origB.ExecTime) {
		t.Errorf("sleep replay on B (%v) should undershoot original on B (%v)", rb.ExecTime, origB.ExecTime)
	}
	if proxyShift > 1.0 {
		t.Errorf("sleep replay shifted %.2f× across platforms — compute should be frozen", proxyShift)
	}
}

func TestHistogramDistortsVolumes(t *testing.T) {
	tr, _ := traceApp(t, "MG", 8, 3)
	p, err := Generate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At least one replayed communication volume must differ from its
	// original (lossy histogram), while orders of magnitude survive.
	distorted := false
	for rank, prog := range p.mains {
		origRT := tr.Ranks[rank]
		j := 0
		for i, id := range origRT.Events {
			_ = i
			orig := origRT.Table[id]
			s := prog[j]
			j++
			if orig.IsCompute() || s.rec == nil {
				continue
			}
			if s.rec.Bytes != orig.Bytes {
				distorted = true
				if orig.Bytes > 0 {
					ratio := float64(s.rec.Bytes) / float64(orig.Bytes)
					if ratio < 0.4 || ratio > 2.5 {
						t.Errorf("volume distorted too far: %d -> %d", orig.Bytes, s.rec.Bytes)
					}
				}
			}
		}
	}
	if !distorted {
		t.Log("note: no volume differed (all sizes unique per bucket) — acceptable but unusual")
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram()
	h.add(600)
	h.add(1000) // same power-of-two bucket [512, 1023]
	h.add(100000)
	if m := h.mean(700); m != 800 {
		t.Errorf("bucket mean = %v, want 800", m)
	}
	if m := h.mean(99999); m != 100000 {
		t.Errorf("lone bucket mean = %v", m)
	}
	if m := h.mean(3); m != 3 {
		t.Errorf("empty bucket should pass through, got %v", m)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

func TestRSDCompression(t *testing.T) {
	tr, _ := traceApp(t, "CG", 8, 4)
	p, err := Generate(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CompressedSteps() >= p.RawSteps()/3 {
		t.Errorf("RSD compression too weak on a periodic trace: %d vs %d steps",
			p.CompressedSteps(), p.RawSteps())
	}
	// RSD expansion must preserve per-rank step counts (the replay runs
	// from the compressed form).
	for rank, rs := range p.compressed {
		n := 0
		for _, r := range rs {
			n += len(r.body) * r.count
		}
		if n != len(p.mains[rank]) {
			t.Fatalf("rank %d: RSD expands to %d steps, want %d", rank, n, len(p.mains[rank]))
		}
	}
}

func TestCompressRSDBasics(t *testing.T) {
	a := step{sleep: 1}
	b := step{sleep: 2}
	// (a b)×3 a
	in := []step{a, b, a, b, a, b, a}
	out := compressRSD(in, 8)
	total := 0
	for _, r := range out {
		total += len(r.body) * r.count
	}
	if total != len(in) {
		t.Fatalf("expansion %d != %d", total, len(in))
	}
	if len(out) == 0 || out[0].count != 3 || len(out[0].body) != 2 {
		t.Errorf("expected leading (a b)×3, got %+v", out)
	}
}
