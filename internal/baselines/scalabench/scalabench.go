// Package scalabench reimplements the ScalaBench proxy-app generator the
// paper compares against in §3.4 (Wu, Deshpande & Mueller, IPDPS 2012,
// built on ScalaTrace). The defining design choices — and the failure modes
// the paper's experiments expose — are reproduced faithfully:
//
//   - Communication parameters are compressed *lossily*: message volumes
//     are pooled into power-of-two histogram buckets per MPI function, and
//     replay uses bucket means. The original communication pattern cannot
//     be exactly restored, so changing the MPI implementation (which
//     reprices the distorted volumes, flips eager/rendezvous decisions,
//     etc.) moves the replay away from the original (Fig. 7).
//
//   - Computation is recorded as wall-clock intervals and replayed by
//     sleeping for the recorded (histogram-compressed) time. Sleeps do not
//     speed up or slow down with the hardware, so porting the proxy to a
//     different platform leaves its compute time frozen (Figs. 8–9).
//
//   - Communicator management operations (MPI_Comm_split/dup/free) are not
//     supported by the replay coordinator; traces containing them fail at
//     generation time, which is why the paper shows no ScalaBench bars for
//     the FLASH problems.
package scalabench

import (
	"fmt"
	"math"
	"math/bits"

	"siesta/internal/mpi"
	"siesta/internal/proxy"
	"siesta/internal/trace"
	"siesta/internal/vtime"
)

// Options tunes the generator.
type Options struct {
	// MaxRanks emulates the replay coordinator's capacity limit; traces
	// from more ranks fail at generation, as the paper observed for SP at
	// its two largest configurations. 0 disables the limit.
	MaxRanks int
}

// step is one replay action on one rank.
type step struct {
	rec   *trace.Record // nil for compute steps
	sleep float64       // sleep duration for compute steps
}

// rsd is a regular section descriptor: a body of steps repeated Count
// times — ScalaTrace's compression primitive.
type rsd struct {
	body  []step
	count int
}

// Proxy is a generated ScalaBench replay.
type Proxy struct {
	NumRanks int
	mains    [][]step
	// compressed holds the RSD form of each rank's program, which is what
	// ScalaTrace would store; CompressedSteps reports its size.
	compressed [][]rsd
}

// CompressedSteps reports the total step count of the RSD-compressed
// representation across ranks (the storage ScalaTrace would keep).
func (p *Proxy) CompressedSteps() int {
	n := 0
	for _, rs := range p.compressed {
		for _, r := range rs {
			n += len(r.body)
		}
	}
	return n
}

// RawSteps reports the uncompressed step count across ranks.
func (p *Proxy) RawSteps() int {
	n := 0
	for _, m := range p.mains {
		n += len(m)
	}
	return n
}

// stepEqual compares two steps for RSD matching: same record pointer (the
// distorted records are interned per rank) or both sleeps with equal
// (histogram-bucketed) durations.
func stepEqual(a, b step) bool {
	if (a.rec == nil) != (b.rec == nil) {
		return false
	}
	if a.rec != nil {
		return a.rec == b.rec
	}
	return a.sleep == b.sleep
}

// compressRSD greedily folds immediately repeating windows into RSDs, the
// power-RSD construction of ScalaTrace (single level, window-bounded).
func compressRSD(steps []step, maxWindow int) []rsd {
	var out []rsd
	i := 0
	for i < len(steps) {
		bestW, bestReps := 0, 0
		for w := 1; w <= maxWindow && i+2*w <= len(steps); w++ {
			reps := 1
			for i+(reps+1)*w <= len(steps) {
				match := true
				for k := 0; k < w; k++ {
					if !stepEqual(steps[i+k], steps[i+reps*w+k]) {
						match = false
						break
					}
				}
				if !match {
					break
				}
				reps++
			}
			if reps > 1 && reps*w > bestReps*bestW {
				bestW, bestReps = w, reps
			}
		}
		if bestReps > 1 {
			out = append(out, rsd{body: steps[i : i+bestW], count: bestReps})
			i += bestW * bestReps
		} else {
			// Extend the previous literal RSD if possible.
			if len(out) > 0 && out[len(out)-1].count == 1 {
				out[len(out)-1].body = append(out[len(out)-1].body, steps[i])
			} else {
				out = append(out, rsd{body: steps[i : i+1], count: 1})
			}
			i++
		}
	}
	return out
}

// histogram pools values into power-of-two buckets and answers bucket means.
type histogram struct {
	sum   map[int]float64
	count map[int]int
}

func newHistogram() *histogram {
	return &histogram{sum: map[int]float64{}, count: map[int]int{}}
}

// bucketOf pools values into power-of-four ranges: ScalaTrace's "relaxed
// iterative matching criteria" merge events whose parameters are merely
// similar, so the effective histogram resolution is coarse.
func bucketOf(v float64) int {
	if v <= 0 {
		return -1
	}
	return bits.Len64(uint64(v)) / 2
}

func (h *histogram) add(v float64) {
	b := bucketOf(v)
	h.sum[b] += v
	h.count[b]++
}

func (h *histogram) mean(v float64) float64 {
	b := bucketOf(v)
	if h.count[b] == 0 {
		return v
	}
	return h.sum[b] / float64(h.count[b])
}

// Generate builds a ScalaBench proxy from a trace.
func Generate(tr *trace.Trace, opts Options) (*Proxy, error) {
	if opts.MaxRanks > 0 && tr.NumRanks > opts.MaxRanks {
		return nil, fmt.Errorf("scalabench: replay coordinator supports at most %d ranks, trace has %d",
			opts.MaxRanks, tr.NumRanks)
	}
	// Reject communicator management up front (ScalaTrace limitation).
	for _, rt := range tr.Ranks {
		for _, r := range rt.Table {
			switch r.Func {
			case "MPI_Comm_split", "MPI_Comm_dup", "MPI_Comm_free":
				return nil, fmt.Errorf("scalabench: cannot compress communicator operation %s", r.Func)
			}
		}
	}

	// Pass 1: build the per-function volume histograms and the compute
	// interval histogram over the whole job.
	volumes := map[string]*histogram{}
	sleeps := newHistogram()
	for _, rt := range tr.Ranks {
		if len(rt.Durs) != len(rt.Events) {
			return nil, fmt.Errorf("scalabench: trace has no timing information")
		}
		for i, id := range rt.Events {
			r := rt.Table[id]
			if r.IsCompute() {
				sleeps.add(rt.Durs[i])
				continue
			}
			if r.Bytes > 0 {
				h := volumes[r.Func]
				if h == nil {
					h = newHistogram()
					volumes[r.Func] = h
				}
				h.add(float64(r.Bytes))
			}
		}
	}

	// Pass 2: emit per-rank replay programs with histogram-mean volumes
	// and histogram-mean sleeps.
	p := &Proxy{NumRanks: tr.NumRanks, mains: make([][]step, tr.NumRanks)}
	for _, rt := range tr.Ranks {
		distorted := make([]*trace.Record, len(rt.Table))
		for id, r := range rt.Table {
			if r.IsCompute() || r.Bytes == 0 {
				distorted[id] = r
				continue
			}
			c := r.Clone()
			c.Bytes = int(math.Round(volumes[r.Func].mean(float64(r.Bytes))))
			if len(c.Counts) > 0 {
				// v-collectives lose their per-destination shape:
				// the histogram keeps only the total.
				per := c.Bytes / len(c.Counts)
				for j := range c.Counts {
					c.Counts[j] = per
				}
			}
			distorted[id] = c
		}
		prog := make([]step, 0, len(rt.Events))
		for i, id := range rt.Events {
			r := distorted[id]
			if r.IsCompute() {
				prog = append(prog, step{sleep: sleeps.mean(rt.Durs[i])})
			} else {
				prog = append(prog, step{rec: r})
			}
		}
		p.mains[rt.Rank] = prog
		p.compressed = append(p.compressed, compressRSD(prog, 64))
	}
	return p, nil
}

// Run replays the proxy in the given environment.
func (p *Proxy) Run(cfg mpi.Config) (*mpi.RunResult, error) {
	cfg.Size = p.NumRanks
	w := mpi.NewWorld(cfg)
	res, err := w.Run(func(r *mpi.Rank) {
		// Replay from the RSD form, as the generated benchmark would.
		rp := proxy.NewReplayer(r.World())
		for _, sec := range p.compressed[r.Rank()] {
			for rep := 0; rep < sec.count; rep++ {
				for _, s := range sec.body {
					if s.rec == nil {
						r.Elapse(vtime.Duration(s.sleep))
					} else if err := rp.ExecComm(r, s.rec); err != nil {
						panic(err)
					}
				}
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("scalabench: replay failed: %w", err)
	}
	return res, nil
}
