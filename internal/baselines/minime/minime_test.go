package minime

import (
	"testing"

	"siesta/internal/blocks"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
)

// appTarget is a realistic whole-program computation aggregate.
func appTarget(p *platform.Platform) perfmodel.Counters {
	k := perfmodel.Kernel{
		IntOps: 4e6, FPOps: 8e6, DivOps: 2e5, Loads: 5e6, Stores: 2e6,
		Branches: 3e6, RandBranches: 2e5, MissLines: 4e5,
	}
	return perfmodel.Measure(p, k)
}

func TestSynthesizeMatchesRates(t *testing.T) {
	p := platform.A
	target := appTarget(p)
	c := Synthesize(p, target, Options{})
	if !c.Valid() {
		t.Fatalf("combination violates constraints: %+v", c)
	}
	got := c.Counters(p)
	if e := RateError(got, target); e > 0.25 {
		t.Errorf("rate error %.3f too large\n got %v\nwant %v", e, got, target)
	}
	// Instruction budget approximately honoured.
	if rel := got[perfmodel.INS] / target[perfmodel.INS]; rel < 0.5 || rel > 2 {
		t.Errorf("INS scale off by %.2f×", rel)
	}
}

func TestSiestaBeatsMinimeOnSixMetrics(t *testing.T) {
	// The Fig. 4 relationship: on the six-metric (absolute counter)
	// comparison, Siesta's QP must beat MINIME's rate-chasing loop.
	p := platform.A
	target := appTarget(p)
	mini := Synthesize(p, target, Options{})
	bm := blocks.MeasureB(p, nil)
	siesta, err := blocks.Search(bm, target)
	if err != nil {
		t.Fatal(err)
	}
	eMini := mini.Counters(p).RelError(target)
	eSiesta := siesta.Counters(p).RelError(target)
	if eSiesta >= eMini {
		t.Errorf("Siesta (%.4f) should beat MINIME (%.4f) on six-metric error", eSiesta, eMini)
	}
}

func TestSiestaAtLeastComparableOnRates(t *testing.T) {
	// Fig. 4 shows Siesta "slightly better" even on MINIME's own metrics.
	p := platform.A
	target := appTarget(p)
	mini := Synthesize(p, target, Options{})
	bm := blocks.MeasureB(p, nil)
	siesta, err := blocks.Search(bm, target)
	if err != nil {
		t.Fatal(err)
	}
	eMini := RateError(mini.Counters(p), target)
	eSiesta := RateError(siesta.Counters(p), target)
	if eSiesta > eMini*1.5 {
		t.Errorf("Siesta rate error %.4f should be comparable to MINIME's %.4f", eSiesta, eMini)
	}
}

func TestZeroTarget(t *testing.T) {
	c := Synthesize(platform.A, perfmodel.Counters{}, Options{})
	if c.Total() != 0 {
		t.Errorf("zero target should synthesize nothing, got %+v", c)
	}
}

func TestRateError(t *testing.T) {
	a := appTarget(platform.A)
	if RateError(a, a) != 0 {
		t.Error("self rate error should be 0")
	}
	var zero perfmodel.Counters
	if RateError(a, zero) != 0 {
		t.Error("zero reference should contribute nothing")
	}
}

func TestSequenceAccumulation(t *testing.T) {
	// Fig. 5: mimicking each event separately and summing, Siesta's
	// absolute-counter fits add up; MINIME's rate-only fits drift.
	p := platform.A
	events := []perfmodel.Kernel{
		{IntOps: 1e6, FPOps: 2e6, Loads: 1e6, Stores: 4e5, Branches: 8e5, MissLines: 1e5},
		{IntOps: 3e6, DivOps: 1e5, Loads: 2e6, Stores: 8e5, Branches: 1.1e6, RandBranches: 1e5, MissLines: 2e4},
		{IntOps: 5e5, FPOps: 4e6, Loads: 1.5e6, Stores: 5e5, Branches: 1.2e6, MissLines: 3e5},
	}
	bm := blocks.MeasureB(p, nil)
	var origSum, miniSum, siestaSum perfmodel.Counters
	for _, k := range events {
		target := perfmodel.Measure(p, k)
		origSum.Add(target)
		miniSum.Add(Synthesize(p, target, Options{}).Counters(p))
		sc, err := blocks.Search(bm, target)
		if err != nil {
			t.Fatal(err)
		}
		siestaSum.Add(sc.Counters(p))
	}
	eMini := RateError(miniSum, origSum)
	eSiesta := RateError(siestaSum, origSum)
	if eSiesta >= eMini {
		t.Errorf("summed sequence: Siesta (%.4f) should beat MINIME (%.4f)", eSiesta, eMini)
	}
}
