// Package minime reimplements the MINIME-style computation synthesizer the
// paper compares against in §3.3 (Deniz et al., IEEE TC 2015). MINIME
// synthesizes benchmarks by iteratively adjusting code-block repetition
// counts until the synthetic code's Instructions-Per-Cycle, Cache Miss Rate
// and Branch Misprediction Rate match the target program's. Unlike Siesta's
// one-shot constrained QP over six absolute counters, MINIME's loop greedily
// chases the three *rates*, which converges to coarser local optima — the
// gap Figures 4 and 5 measure.
package minime

import (
	"math"

	"siesta/internal/blocks"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
)

// Options tunes the iterative search.
type Options struct {
	MaxIters int     // default 60
	Tol      float64 // rate convergence tolerance, default 2%
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 300
	}
	if o.Tol == 0 {
		o.Tol = 0.02
	}
	return o
}

// RateError is the mean relative error over the three MINIME metrics (IPC,
// CMR, BMR) — the similarity measure of Figures 4 and 5.
func RateError(c, ref perfmodel.Counters) float64 {
	sum, n := 0.0, 0
	for _, pair := range [][2]float64{
		{c.IPC(), ref.IPC()},
		{c.CMR(), ref.CMR()},
		{c.BMR(), ref.BMR()},
	} {
		if pair[1] == 0 {
			continue
		}
		sum += math.Abs(pair[0]-pair[1]) / pair[1]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Synthesize runs the MINIME-style iterative search for a block combination
// whose rates match the target's, scaled to the target's instruction count.
func Synthesize(p *platform.Platform, target perfmodel.Counters, opts Options) blocks.Combination {
	opts = opts.withDefaults()
	var c blocks.Combination
	if target[perfmodel.INS] <= 0 {
		return c
	}

	// Seed: enough of block 1 to reach the instruction budget.
	b1 := perfmodel.Measure(p, blocks.Kernel(0, p))
	c.Counts[0] = int64(target[perfmodel.INS] / b1[perfmodel.INS])
	if c.Counts[0] < 1 {
		c.Counts[0] = 1
	}
	c.Counts[10] = c.Counts[0]

	for iter := 0; iter < opts.MaxIters; iter++ {
		cur := c.Counters(p)
		eIPC := relErr(cur.IPC(), target.IPC())
		eCMR := relErr(cur.CMR(), target.CMR())
		eBMR := relErr(cur.BMR(), target.BMR())
		if eIPC < opts.Tol && eCMR < opts.Tol && eBMR < opts.Tol {
			break
		}
		// Greedy: attack the worst rate with the block that moves it,
		// stepping proportionally to the remaining error.
		prop := func(base int64, err float64) int64 {
			s := int64(float64(base) * err / 4)
			if s < 1 {
				s = 1
			}
			return s
		}
		dec := func(i int, by int64) {
			c.Counts[i] -= by
			if c.Counts[i] < 0 {
				c.Counts[i] = 0
			}
		}
		switch worst(eIPC, eCMR, eBMR) {
		case 0: // IPC
			if cur.IPC() > target.IPC() {
				c.Counts[2] += prop(c.Counts[2]+c.Total()/16, eIPC) // block3: divisions drag IPC down
			} else if c.Counts[2] > 0 {
				dec(2, prop(c.Counts[2], eIPC))
			} else {
				c.Counts[1] += prop(c.Counts[1]+1, eIPC) // block2: dense adds push IPC up
			}
		case 1: // CMR
			if cur.CMR() < target.CMR() {
				c.Counts[6] += prop(c.Counts[6]+1, eCMR) // block7: cache misses
			} else if c.Counts[6] > 0 {
				dec(6, prop(c.Counts[6], eCMR))
			} else {
				c.Counts[1] += prop(c.Counts[1]+1, eCMR) // dilute
			}
		case 2: // BMR
			if cur.BMR() < target.BMR() {
				c.Counts[4] += prop(c.Counts[4]+1, eBMR) // block5: random branches
			} else if c.Counts[4] > 0 {
				dec(4, prop(c.Counts[4], eBMR))
			} else {
				c.Counts[0] += prop(c.Counts[0]+1, eBMR) // dilute with predictable work
			}
		}
		normalizeWrapper(&c)
	}

	// Rescale to the instruction budget (rates are scale-invariant).
	cur := c.Counters(p)
	if cur[perfmodel.INS] > 0 {
		f := target[perfmodel.INS] / cur[perfmodel.INS]
		for i := range c.Counts {
			c.Counts[i] = int64(math.Round(float64(c.Counts[i]) * f))
		}
	}
	normalizeWrapper(&c)
	return c
}

// normalizeWrapper restores the structural constraint x₁₁ ≥ Σx₁..₉.
func normalizeWrapper(c *blocks.Combination) {
	var wrapped int64
	for i := 0; i < 9; i++ {
		wrapped += c.Counts[i]
	}
	if c.Counts[10] < wrapped {
		c.Counts[10] = wrapped
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(a-b) / math.Abs(b)
}

func worst(a, b, c float64) int {
	switch {
	case a >= b && a >= c:
		return 0
	case b >= c:
		return 1
	default:
		return 2
	}
}
