package pilgrim

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/mpi"
	"siesta/internal/trace"
)

func traceApp(t *testing.T, name string, ranks, iters int) (*trace.Trace, *mpi.RunResult) {
	t.Helper()
	spec, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: iters, WorkScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 51})
	orig, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace("A", "openmpi"), orig
}

func TestCommunicationReplayIsLossless(t *testing.T) {
	tr, orig := traceApp(t, "MG", 8, 3)
	p, err := Generate(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(mpi.Config{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	// Same number of MPI calls per rank: the communication is lossless.
	for i := range orig.Ranks {
		if res.Ranks[i].Calls != orig.Ranks[i].Calls {
			t.Errorf("rank %d: %d calls vs original %d", i, res.Ranks[i].Calls, orig.Ranks[i].Calls)
		}
	}
}

func TestExecutionTimeGrosslyUnderestimates(t *testing.T) {
	// The paper quotes 84.30% mean time error for Pilgrim: no computation
	// fill means the replay runs mostly on communication time.
	tr, orig := traceApp(t, "CG", 8, 4)
	p, err := Generate(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(mpi.Config{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	errFrac := (float64(orig.ExecTime) - float64(res.ExecTime)) / float64(orig.ExecTime)
	if errFrac < 0.5 {
		t.Errorf("Pilgrim replay should underestimate by a lot, got %.1f%% (proxy %v, orig %v)",
			errFrac*100, res.ExecTime, orig.ExecTime)
	}
	if res.TotalCompute()[0] != 0 {
		t.Error("Pilgrim proxies must not execute computation")
	}
}

func TestSizeBytes(t *testing.T) {
	tr, _ := traceApp(t, "IS", 8, 5)
	p, err := Generate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeBytes() <= 0 {
		t.Error("size should be positive")
	}
	if p.SizeBytes() >= tr.RawSize() {
		t.Error("compressed size should beat the raw trace")
	}
}

func TestHandlesFlash(t *testing.T) {
	// Unlike ScalaBench, Pilgrim handles communicator operations.
	tr, _ := traceApp(t, "Sod", 8, 3)
	p, err := Generate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(mpi.Config{Seed: 61}); err != nil {
		t.Fatal(err)
	}
}
