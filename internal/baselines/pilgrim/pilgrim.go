// Package pilgrim reimplements the Pilgrim proxy-app generator the paper
// compares against in §3.4.1 (Wang, Balaji & Snir, SC'21). Pilgrim's
// strength is near-lossless grammar compression of the *communication*
// trace; its proxy generation replays the MPI calls exactly but — as the
// paper stresses — "without filling in the execution time of the
// computation part", so its proxies grossly under-run the original programs
// (the quoted 84.30% mean execution-time error).
//
// This reimplementation reuses Siesta's grammar pipeline for the lossless
// communication representation (both tools are Sequitur-based) and replays
// with computation disabled — precisely the failure mode the paper
// measures.
package pilgrim

import (
	"fmt"

	"siesta/internal/blocks"
	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// Proxy is a generated Pilgrim replay.
type Proxy struct {
	Prog *merge.Program
	app  *proxy.App
}

// Generate builds a Pilgrim proxy: grammar-compressed lossless
// communication, no computation fill.
func Generate(tr *trace.Trace) (*Proxy, error) {
	prog, err := merge.Build(tr, merge.Options{})
	if err != nil {
		return nil, fmt.Errorf("pilgrim: %w", err)
	}
	gen := &codegen.Generated{
		Prog:       prog,
		Combos:     make([]blocks.Combination, len(prog.Clusters)),
		SleepTimes: make([]float64, len(prog.Clusters)),
		Scale:      1,
	}
	return &Proxy{
		Prog: prog,
		app:  &proxy.App{Gen: gen, Mode: proxy.NoCompute},
	}, nil
}

// SizeBytes reports the compressed representation size.
func (p *Proxy) SizeBytes() int { return len(p.Prog.Encode()) }

// Run replays the proxy (communication only) in the given environment.
func (p *Proxy) Run(cfg mpi.Config) (*mpi.RunResult, error) {
	res, err := p.app.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("pilgrim: %w", err)
	}
	return res, nil
}
