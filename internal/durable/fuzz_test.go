package durable

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// fuzzFrame builds one well-formed frame around payload.
func fuzzFrame(payload []byte) []byte {
	out := make([]byte, frameHdr+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHdr:], payload)
	return out
}

// FuzzReplay asserts the journal decoder's recovery contract on arbitrary
// bytes: it never panics, never reports a valid offset past the input,
// every returned record re-encodes as a decodable JSON object, and the
// valid prefix re-replays to the identical record list (idempotence).
func FuzzReplay(f *testing.F) {
	rec := func(t Type, job string) []byte {
		b, _ := json.Marshal(Record{Seq: 1, Type: t, Job: job})
		return b
	}
	// Seed the obvious shapes: empty, bare magic, clean journals, torn
	// tails, bit flips, oversized lengths, interleaved partial frames.
	f.Add([]byte{})
	f.Add([]byte(journalMagic))
	f.Add([]byte("NOTMAGIC"))
	clean := append([]byte(journalMagic), fuzzFrame(rec(TypeEnqueued, "j-1"))...)
	clean = append(clean, fuzzFrame(rec(TypeDone, "j-1"))...)
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(journalMagic)+frameHdr+1] ^= 0x08
	f.Add(flipped)
	over := append([]byte(journalMagic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(over)
	interleaved := append([]byte(journalMagic), fuzzFrame(rec(TypeStarted, "j-2"))...)
	interleaved = append(interleaved, 0, 0, 0, 9, 1, 2) // partial header+frame
	interleaved = append(interleaved, fuzzFrame(rec(TypeDone, "j-2"))...)
	f.Add(interleaved)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := Replay(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if len(recs) > 0 && valid < int64(len(journalMagic)) {
			t.Fatalf("records without a valid magic prefix")
		}
		for i, r := range recs {
			if r.Type == "" {
				t.Fatalf("record %d replayed with empty type", i)
			}
		}
		// Idempotence: replaying the declared-valid prefix yields the
		// same records and consumes it fully.
		again, validAgain := Replay(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("re-replay of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(recs), valid)
		}
		// Reduce must tolerate whatever replay produced.
		states, order := Reduce(recs)
		if len(states) != len(order) {
			t.Fatalf("reduce: %d states, %d ordered ids", len(states), len(order))
		}
		// LiveRecords output must itself be journal-appendable (valid
		// type+job), the compaction path's precondition.
		for _, lr := range LiveRecords(recs) {
			if lr.Type == "" || lr.Job == "" {
				t.Fatalf("live record missing type/job: %+v", lr)
			}
		}
	})
}
