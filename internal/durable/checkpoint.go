package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CheckpointStore keeps one opaque checkpoint blob per job under
// <state-dir>/checkpoints. Blobs are written atomically — temp file,
// fsync, rename, directory fsync — so a crash mid-save leaves either the
// previous checkpoint or the new one, never a torn blob. The blob's
// contents (a core.Checkpoint encoding) are opaque at this layer; interior
// corruption is caught by the checkpoint decoder's CRC-free but
// length-checked codec plus the options-fingerprint match on resume.
type CheckpointStore struct {
	dir    string
	nosync bool
}

// NewCheckpointStore creates (if needed) and returns the store rooted at
// dir.
func NewCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// fileFor maps a job id to its blob filename, rejecting ids that could
// escape the store directory.
func (s *CheckpointStore) fileFor(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return "", fmt.Errorf("durable: invalid checkpoint id %q", id)
	}
	return id + ".ckpt", nil
}

// Save atomically persists blob as the job's current checkpoint and
// returns the filename (relative to the store directory) for journaling.
func (s *CheckpointStore) Save(id string, blob []byte) (string, error) {
	name, err := s.fileFor(id)
	if err != nil {
		return "", err
	}
	final := filepath.Join(s.dir, name)
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("durable: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return "", fmt.Errorf("durable: checkpoint write: %w", err)
	}
	if !s.nosync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return "", fmt.Errorf("durable: checkpoint sync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("durable: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("durable: checkpoint rename: %w", err)
	}
	if !s.nosync {
		if err := syncDir(s.dir); err != nil {
			return "", err
		}
	}
	return name, nil
}

// Load returns the job's current checkpoint blob; os.ErrNotExist when the
// job has none.
func (s *CheckpointStore) Load(id string) ([]byte, error) {
	name, err := s.fileFor(id)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(s.dir, name))
}

// Delete removes the job's checkpoint; deleting a missing checkpoint is
// not an error (settled jobs are cleaned opportunistically).
func (s *CheckpointStore) Delete(id string) error {
	name, err := s.fileFor(id)
	if err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: checkpoint delete: %w", err)
	}
	return nil
}
