// Package durable is the synthesis service's crash-durability layer: a
// write-ahead job journal and an atomic checkpoint-blob store, both living
// under one operator-chosen state directory. The design follows the proxy
// checkpointing idea from "DMTCP Checkpoint/Restart of MPI Programs via
// Proxies" (PAPERS.md): instead of snapshotting a whole process image, the
// service persists only the canonical, replayable state — journal records
// describing job intent and outcome, and encoded pipeline state at phase
// boundaries — and rebuilds everything else on restart.
//
// Journal format (version 1):
//
//	file   := magic frame*
//	magic  := "SIESTAW1" (8 bytes)
//	frame  := len(uint32 BE) crc(uint32 BE, IEEE over payload) payload
//	payload:= one JSON-encoded Record
//
// Every append is fsync'd before it is acknowledged, so an acknowledged
// record survives power loss. Replay scans frames from the start and stops
// at the first invalid one — short header, length past EOF, CRC mismatch,
// or undecodable payload — which makes a torn or truncated tail (the only
// corruption an fsync'd append-only file can suffer) recover to exactly
// the fully-written prefix. Open then truncates the torn tail so new
// appends start on a clean frame boundary.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Type classifies a journal record.
type Type string

// The journal's record vocabulary. One job's life is a subsequence
// enqueued → started* → checkpoint* → (done | failed); a job whose journal
// ends without a terminal record was in flight when the process died and
// is re-admitted on replay.
const (
	TypeEnqueued   Type = "enqueued"
	TypeStarted    Type = "started"
	TypeCheckpoint Type = "checkpoint"
	TypeDone       Type = "done"
	TypeFailed     Type = "failed"
)

// Record is one journal entry. Which payload fields are meaningful depends
// on Type: enqueued carries the original request and cache key, checkpoint
// carries the phase and blob filename, failed carries the error.
type Record struct {
	Seq  uint64    `json:"seq"`
	Type Type      `json:"type"`
	Job  string    `json:"job"`
	Time time.Time `json:"ts"`

	// Request is the verbatim JSON synthesis request (enqueued), replayed
	// through the normal admission path on recovery.
	Request json.RawMessage `json:"request,omitempty"`
	// Key is the content-addressed artifact cache key (enqueued).
	Key string `json:"key,omitempty"`
	// Phase names the completed pipeline phase a checkpoint covers.
	Phase string `json:"phase,omitempty"`
	// File is the checkpoint blob's filename within the state directory.
	File string `json:"file,omitempty"`
	// Attempt is the 1-based execution attempt (started, failed).
	Attempt int `json:"attempt,omitempty"`
	// Error is the terminal failure message (failed).
	Error string `json:"error,omitempty"`
}

const (
	journalMagic = "SIESTAW1"
	// maxFrame bounds one record's payload; a corrupt length field must
	// not make replay attempt an absurd allocation. Requests embed
	// uploaded traces (bounded at 16 MiB by the HTTP layer), so 64 MiB
	// leaves generous headroom.
	maxFrame = 64 << 20
	frameHdr = 8 // uint32 length + uint32 CRC
)

// Replay decodes the longest valid prefix of journal bytes (magic
// included). It never fails: corruption anywhere — bad magic, torn frame,
// CRC mismatch, undecodable payload — simply ends the scan, and valid is
// the byte offset appends may resume from. A bad record is never returned.
func Replay(data []byte) (recs []Record, valid int64) {
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return nil, 0
	}
	off := int64(len(journalMagic))
	for {
		rest := data[off:]
		if len(rest) < frameHdr {
			return recs, off
		}
		n := binary.BigEndian.Uint32(rest[:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if n > maxFrame || int64(n) > int64(len(rest)-frameHdr) {
			return recs, off
		}
		payload := rest[frameHdr : frameHdr+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Type == "" {
			return recs, off
		}
		recs = append(recs, rec)
		off += frameHdr + int64(n)
	}
}

// Journal is an append-only, fsync'd record log. Append is safe for
// concurrent use; Open recovers the valid prefix and truncates any torn
// tail before the first append.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	nextSeq uint64
	nosync  bool // tests only: skip fsync for speed
}

// Open opens (or creates) the journal at path, replays its valid prefix,
// truncates any torn tail, and positions the file for appending. The
// returned records are everything that was fully written before the last
// shutdown or crash.
func Open(path string) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: create journal: %w", err)
		}
		if _, err := f.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: write journal magic: %w", err)
		}
		if err := syncFileAndDir(f, path); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Journal{f: f, path: path, nextSeq: 1}, nil, nil
	case err != nil:
		return nil, nil, fmt.Errorf("durable: read journal: %w", err)
	}
	if len(data) >= len(journalMagic) && string(data[:len(journalMagic)]) != journalMagic {
		return nil, nil, fmt.Errorf("durable: %s is not a siesta journal (bad magic)", path)
	}
	if len(data) < len(journalMagic) {
		// A crash during creation can leave a short magic; rewrite it.
		if err := os.WriteFile(path, []byte(journalMagic), 0o644); err != nil {
			return nil, nil, fmt.Errorf("durable: repair journal header: %w", err)
		}
		data = []byte(journalMagic)
	}
	recs, valid := Replay(data)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open journal: %w", err)
	}
	// Drop the torn tail so the next frame starts on a clean boundary.
	if int64(len(data)) > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: seek journal: %w", err)
	}
	j := &Journal{f: f, path: path, nextSeq: 1}
	for _, r := range recs {
		if r.Seq >= j.nextSeq {
			j.nextSeq = r.Seq + 1
		}
	}
	return j, recs, nil
}

// noSync disables fsync on this journal. Tests only — an unsynced journal
// still recovers cleanly from process death, just not from power loss.
func (j *Journal) noSync() { j.nosync = true }

// Append assigns the record a sequence number and timestamp, frames it,
// writes it, and fsyncs before returning. When Append returns nil the
// record is durable.
func (j *Journal) Append(rec *Record) error {
	if rec.Type == "" || rec.Job == "" {
		return fmt.Errorf("durable: record needs type and job (got %q, %q)", rec.Type, rec.Job)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: journal is closed")
	}
	rec.Seq = j.nextSeq
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encode record: %w", err)
	}
	frame := make([]byte, frameHdr+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHdr:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("durable: append record: %w", err)
	}
	if !j.nosync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: sync journal: %w", err)
		}
	}
	j.nextSeq++
	return nil
}

// Compact atomically rewrites the journal to contain exactly recs (in the
// given order, keeping their sequence numbers), dropping everything else.
// The server calls it at startup after replay so records for settled jobs
// do not accumulate forever. The write is crash-safe: a new journal is
// written beside the old one, fsync'd, and renamed over it.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: journal is closed")
	}
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if _, err := f.WriteString(journalMagic); err != nil {
		f.Close()
		return fmt.Errorf("durable: compact: %w", err)
	}
	maxSeq := uint64(0)
	for i := range recs {
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			f.Close()
			return fmt.Errorf("durable: compact encode: %w", err)
		}
		var hdr [frameHdr]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := f.Write(hdr[:]); err == nil {
			_, err = f.Write(payload)
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("durable: compact write: %w", err)
		}
		if recs[i].Seq > maxSeq {
			maxSeq = recs[i].Seq
		}
	}
	if !j.nosync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: compact sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: compact close: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("durable: compact rename: %w", err)
	}
	if !j.nosync {
		if err := syncDir(filepath.Dir(j.path)); err != nil {
			return err
		}
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: reopen compacted journal: %w", err)
	}
	old.Close()
	j.f = nf
	if maxSeq >= j.nextSeq {
		j.nextSeq = maxSeq + 1
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if !j.nosync {
		f.Sync()
	}
	return f.Close()
}

// syncFileAndDir fsyncs a freshly created file and its directory entry.
func syncFileAndDir(f *os.File, path string) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
