package durable

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for i := range recs {
		if err := j.Append(&recs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	j.noSync()
	appendAll(t, j,
		Record{Type: TypeEnqueued, Job: "j-000001", Key: "abc", Request: json.RawMessage(`{"app":"CG","ranks":8}`)},
		Record{Type: TypeStarted, Job: "j-000001", Attempt: 1},
		Record{Type: TypeCheckpoint, Job: "j-000001", Phase: "trace", File: "j-000001.ckpt"},
		Record{Type: TypeDone, Job: "j-000001"},
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	if recs[0].Type != TypeEnqueued || string(recs[0].Request) != `{"app":"CG","ranks":8}` {
		t.Errorf("enqueued payload did not round-trip: %+v", recs[0])
	}
	if recs[2].Phase != "trace" || recs[2].File != "j-000001.ckpt" {
		t.Errorf("checkpoint payload did not round-trip: %+v", recs[2])
	}
	// Appends after reopen continue the sequence.
	if err := j2.Append(&Record{Type: TypeEnqueued, Job: "j-000002"}); err != nil {
		t.Fatal(err)
	}
	if _, recs, _ := reopen(t, path); len(recs) != 5 || recs[4].Seq != 5 {
		t.Fatalf("after reopen+append: %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}
}

func reopen(t *testing.T, path string) (*Journal, []Record, error) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs, err
}

// journalBytes builds a valid journal image with n trivial records.
func journalBytes(t *testing.T, n int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.noSync()
	for i := 0; i < n; i++ {
		appendAll(t, j, Record{Type: TypeStarted, Job: "j-000001", Attempt: i + 1})
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReplayTruncatedTail(t *testing.T) {
	data := journalBytes(t, 3)
	full, valid := Replay(data)
	if len(full) != 3 || valid != int64(len(data)) {
		t.Fatalf("clean replay: %d records, valid %d of %d", len(full), valid, len(data))
	}
	// Every proper prefix recovers exactly the fully-framed records.
	for cut := len(data) - 1; cut >= 0; cut-- {
		recs, valid := Replay(data[:cut])
		if valid > int64(cut) {
			t.Fatalf("cut %d: valid offset %d past input", cut, valid)
		}
		for _, r := range recs {
			if r.Type != TypeStarted || r.Job != "j-000001" {
				t.Fatalf("cut %d: replayed corrupt record %+v", cut, r)
			}
		}
		if len(recs) > 3 {
			t.Fatalf("cut %d: more records than written", cut)
		}
	}
}

func TestReplayBitFlippedCRC(t *testing.T) {
	data := journalBytes(t, 3)
	// Flip one bit in the middle record's payload: replay must stop
	// before it and keep only the first record.
	recs, _ := Replay(data)
	_ = recs
	// Locate frame boundaries by re-scanning.
	off := len(journalMagic)
	frameEnds := []int{}
	for off+frameHdr <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += frameHdr + n
		frameEnds = append(frameEnds, off)
	}
	if len(frameEnds) != 3 {
		t.Fatalf("expected 3 frames, found %d", len(frameEnds))
	}
	corrupt := append([]byte(nil), data...)
	corrupt[frameEnds[0]+frameHdr+2] ^= 0x40 // inside record 2's payload
	got, valid := Replay(corrupt)
	if len(got) != 1 {
		t.Fatalf("replay after bit flip returned %d records, want 1", len(got))
	}
	if valid != int64(frameEnds[0]) {
		t.Fatalf("valid offset %d, want %d (end of record 1)", valid, frameEnds[0])
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	data := journalBytes(t, 2)
	// Simulate a crash mid-append: a partial third frame of garbage.
	torn := append(append([]byte(nil), data...), 0x00, 0x00, 0x00, 0x10, 0xde, 0xad)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.noSync()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	// The torn tail must be gone and the next append must frame cleanly.
	appendAll(t, j, Record{Type: TypeDone, Job: "j-000001"})
	j.Close()
	_, recs, _ = reopen(t, path)
	if len(recs) != 3 || recs[2].Type != TypeDone {
		t.Fatalf("after truncate+append: %+v", recs)
	}
}

func TestReplayInterleavedPartialFrame(t *testing.T) {
	data := journalBytes(t, 2)
	// Claim a frame longer than the remaining bytes: replay must stop at
	// the boundary, not read past the end.
	off := len(journalMagic)
	n := int(binary.BigEndian.Uint32(data[off : off+4]))
	end1 := off + frameHdr + n
	bogus := append([]byte(nil), data[:end1]...)
	var hdr [frameHdr]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1<<20)) // length far past EOF
	binary.BigEndian.PutUint32(hdr[4:8], 0)
	bogus = append(bogus, hdr[:]...)
	bogus = append(bogus, data[end1:]...) // a valid frame drowned after the bad header
	recs, valid := Replay(bogus)
	if len(recs) != 1 || valid != int64(end1) {
		t.Fatalf("interleaved partial frame: %d records, valid %d (want 1, %d)", len(recs), valid, end1)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.noSync()
	appendAll(t, j,
		Record{Type: TypeEnqueued, Job: "j-000001", Request: json.RawMessage(`{"app":"CG"}`)},
		Record{Type: TypeDone, Job: "j-000001"},
		Record{Type: TypeEnqueued, Job: "j-000002", Request: json.RawMessage(`{"app":"LU"}`), Key: "k2"},
		Record{Type: TypeStarted, Job: "j-000002", Attempt: 1},
		Record{Type: TypeCheckpoint, Job: "j-000002", Phase: "merge", File: "j-000002.ckpt"},
	)
	_, recs, _ := reopen(t, path)
	live := LiveRecords(recs)
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends land after the rewritten records.
	appendAll(t, j, Record{Type: TypeDone, Job: "j-000002"})
	j.Close()

	_, recs, _ = reopen(t, path)
	states, order := Reduce(recs)
	if len(order) != 1 || order[0] != "j-000002" {
		t.Fatalf("compacted journal folds to jobs %v, want [j-000002]", order)
	}
	st := states["j-000002"]
	if st.Pending() || st.Attempts != 1 || st.CheckpointPhase != "merge" || st.Key != "k2" {
		t.Fatalf("compacted state: %+v", st)
	}
}

func TestReduce(t *testing.T) {
	recs := []Record{
		{Type: TypeEnqueued, Job: "a", Key: "ka", Request: json.RawMessage(`{}`)},
		{Type: TypeEnqueued, Job: "b", Key: "kb", Request: json.RawMessage(`{}`)},
		{Type: TypeStarted, Job: "a", Attempt: 1},
		{Type: TypeCheckpoint, Job: "a", Phase: "trace", File: "a.ckpt"},
		{Type: TypeStarted, Job: "a", Attempt: 2},
		{Type: TypeCheckpoint, Job: "a", Phase: "merge", File: "a.ckpt"},
		{Type: TypeFailed, Job: "b", Error: "boom"},
	}
	states, order := Reduce(recs)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order %v", order)
	}
	a, b := states["a"], states["b"]
	if !a.Pending() || a.Attempts != 2 || a.CheckpointPhase != "merge" {
		t.Fatalf("a: %+v", a)
	}
	if b.Pending() || b.Terminal != TypeFailed || b.Error != "boom" {
		t.Fatalf("b: %+v", b)
	}
}

func TestCheckpointStore(t *testing.T) {
	st, err := NewCheckpointStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("../evil", []byte("x")); err == nil {
		t.Fatal("path traversal id accepted")
	}
	name, err := st.Save("j-000001", []byte("blob-v1"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "j-000001.ckpt" {
		t.Fatalf("name %q", name)
	}
	// Overwrite is atomic replace.
	if _, err := st.Save("j-000001", []byte("blob-v2")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("j-000001")
	if err != nil || string(got) != "blob-v2" {
		t.Fatalf("load: %q, %v", got, err)
	}
	if err := st.Delete("j-000001"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("j-000001"); err != nil {
		t.Fatal("double delete should be a no-op")
	}
	if _, err := st.Load("j-000001"); !os.IsNotExist(err) {
		t.Fatalf("load after delete: %v", err)
	}
	// No stray temp files survive saves.
	ents, _ := os.ReadDir(filepath.Join(t.TempDir()))
	_ = ents
}

func TestCrcMatchesButPayloadGarbage(t *testing.T) {
	// A CRC-valid frame whose payload is not a decodable record must end
	// replay (never surface a bad record).
	data := journalBytes(t, 1)
	payload := []byte(`{"seq":2,"type":"","job":""}`) // decodes but fails validation
	var hdr [frameHdr]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	bad := append(append([]byte(nil), data...), hdr[:]...)
	bad = append(bad, payload...)
	recs, valid := Replay(bad)
	if len(recs) != 1 || valid != int64(len(data)) {
		t.Fatalf("garbage payload: %d records, valid %d", len(recs), valid)
	}
}
