package durable

import (
	"encoding/json"
	"time"
)

// JobState is the per-job fold of a journal: everything the service needs
// to decide, after a restart, whether a job is settled, resumable, or has
// exhausted its attempts. It is also what `siesta jobs` prints.
type JobState struct {
	ID      string          `json:"id"`
	Request json.RawMessage `json:"request,omitempty"`
	Key     string          `json:"key,omitempty"`

	Enqueued time.Time `json:"enqueued,omitempty"`
	// Attempts counts started records: how many times a worker has picked
	// the job up, across all process incarnations.
	Attempts int `json:"attempts"`

	// CheckpointPhase/CheckpointFile describe the most recent checkpoint;
	// empty when the job never reached a phase boundary.
	CheckpointPhase string `json:"checkpoint_phase,omitempty"`
	CheckpointFile  string `json:"checkpoint_file,omitempty"`

	// Terminal is TypeDone or TypeFailed once the job settled, "" while it
	// is still pending (queued or in flight at crash time).
	Terminal Type      `json:"terminal,omitempty"`
	Error    string    `json:"error,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

// Pending reports whether the job still owes a terminal record — the
// replay-time definition of "must be re-admitted".
func (s *JobState) Pending() bool { return s.Terminal == "" }

// Reduce folds replayed records into per-job states, returning the states
// and the job IDs in first-appearance (admission) order. Records for a job
// whose enqueued record was lost to corruption still fold (the job is
// unrecoverable without its request, but the inspector should show it).
func Reduce(recs []Record) (map[string]*JobState, []string) {
	states := make(map[string]*JobState)
	var order []string
	get := func(id string) *JobState {
		st, ok := states[id]
		if !ok {
			st = &JobState{ID: id}
			states[id] = st
			order = append(order, id)
		}
		return st
	}
	for _, r := range recs {
		st := get(r.Job)
		switch r.Type {
		case TypeEnqueued:
			st.Request = r.Request
			st.Key = r.Key
			st.Enqueued = r.Time
		case TypeStarted:
			st.Attempts++
			if r.Attempt > st.Attempts {
				st.Attempts = r.Attempt
			}
		case TypeCheckpoint:
			st.CheckpointPhase = r.Phase
			st.CheckpointFile = r.File
		case TypeDone, TypeFailed:
			st.Terminal = r.Type
			st.Error = r.Error
			st.Finished = r.Time
		}
	}
	return states, order
}

// LiveRecords rebuilds the minimal record set a compacted journal needs:
// for every pending job, its enqueued record plus its latest checkpoint
// record (attempt history collapses into one synthetic started record per
// past attempt so the attempt budget survives compaction). Settled jobs
// vanish.
func LiveRecords(recs []Record) []Record {
	states, order := Reduce(recs)
	var out []Record
	for _, id := range order {
		st := states[id]
		if !st.Pending() || len(st.Request) == 0 {
			continue
		}
		out = append(out, Record{
			Type: TypeEnqueued, Job: id, Time: st.Enqueued,
			Request: st.Request, Key: st.Key,
		})
		for a := 1; a <= st.Attempts; a++ {
			out = append(out, Record{Type: TypeStarted, Job: id, Attempt: a, Time: st.Enqueued})
		}
		if st.CheckpointFile != "" {
			out = append(out, Record{
				Type: TypeCheckpoint, Job: id,
				Phase: st.CheckpointPhase, File: st.CheckpointFile,
			})
		}
	}
	for i := range out {
		out[i].Seq = uint64(i + 1)
	}
	return out
}
