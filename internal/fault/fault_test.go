package fault

import (
	"testing"

	"siesta/internal/vtime"
)

func TestParseCrash(t *testing.T) {
	p, err := Parse("crash:rank=3@call=100")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 {
		t.Fatalf("got %d crashes", len(p.Crashes))
	}
	c := p.Crashes[0]
	if c.Rank != 3 || c.AtCall != 100 || c.Silent {
		t.Errorf("crash = %+v", c)
	}
	if _, ok := p.CrashAt(3, 100, 0); !ok {
		t.Error("CrashAt(3, 100) should fire")
	}
	if _, ok := p.CrashAt(3, 99, 0); ok {
		t.Error("CrashAt(3, 99) should not fire")
	}
	if _, ok := p.CrashAt(2, 100, 0); ok {
		t.Error("CrashAt(2, 100) should not fire")
	}
}

func TestParseAllKinds(t *testing.T) {
	spec := "crash:rank=1,time=2s,silent; drop:src=0,dst=1,tag=7,prob=0.5; " +
		"delay:src=*,dst=2,factor=3,add=1ms; straggler:rank=2,factor=4; chaos:drop=0.01,delay=0.02,crash=0.001"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || !p.Crashes[0].Silent || p.Crashes[0].AtTime != 2 {
		t.Errorf("crashes = %+v", p.Crashes)
	}
	if len(p.Drops) != 1 || p.Drops[0].Prob != 0.5 || p.Drops[0].Match.Tag != 7 {
		t.Errorf("drops = %+v", p.Drops)
	}
	if len(p.Delays) != 1 || p.Delays[0].Match.Src != Any || p.Delays[0].Add != vtime.Duration(1e-3) {
		t.Errorf("delays = %+v", p.Delays)
	}
	if got := p.SlowdownFor(2); got != 4 {
		t.Errorf("SlowdownFor(2) = %v", got)
	}
	if got := p.SlowdownFor(0); got != 1 {
		t.Errorf("SlowdownFor(0) = %v", got)
	}
	if p.Chaos == nil || p.Chaos.CrashProb != 0.001 {
		t.Errorf("chaos = %+v", p.Chaos)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                        // no faults
		"crash:call=5",            // missing rank
		"crash:rank=1",            // missing trigger
		"straggler:rank=1",        // missing factor
		"delay:src=0",             // no factor or add
		"warp:rank=1",             // unknown kind
		"drop:src=0,src=1",        // duplicate key
		"drop:badness=1",          // unknown key
		"crash:rank=x,call=1",     // bad int
		"straggler:rank=1,factor", // bare non-bool
		"drop:prob=1.5",           // probability above 1
		"chaos:crash=-0.1",        // probability below 0
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestMatchWildcards(t *testing.T) {
	m := Match{Src: Any, Dst: 3, Tag: Any}
	if !m.Matches(9, 3, 42) {
		t.Error("wildcard src/tag should match")
	}
	if m.Matches(9, 4, 42) {
		t.Error("dst mismatch should not match")
	}
}

func TestDropDeterminism(t *testing.T) {
	p := &Plan{Seed: 7, Drops: []Drop{{Match: Match{Src: Any, Dst: Any, Tag: Any}, Prob: 0.3}}}
	for n := 0; n < 1000; n++ {
		a := p.DropMessage(0, 1, 5, n)
		b := p.DropMessage(0, 1, 5, n)
		if a != b {
			t.Fatalf("non-deterministic drop decision at n=%d", n)
		}
	}
	// A different seed must give a different decision sequence.
	q := &Plan{Seed: 8, Drops: p.Drops}
	same := 0
	for n := 0; n < 1000; n++ {
		if p.DropMessage(0, 1, 5, n) == q.DropMessage(0, 1, 5, n) {
			same++
		}
	}
	if same == 1000 {
		t.Error("seeds 7 and 8 produced identical drop sequences")
	}
}

func TestDropProbability(t *testing.T) {
	p := &Plan{Seed: 11, Chaos: &Chaos{DropProb: 0.25}}
	hits := 0
	const trials = 10000
	for n := 0; n < trials; n++ {
		if p.DropMessage(2, 3, 0, n) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.2 || got > 0.3 {
		t.Errorf("chaos drop rate %v, want ~0.25", got)
	}
}

func TestDelayFor(t *testing.T) {
	p := &Plan{Delays: []Delay{{Match: Match{Src: 0, Dst: 1, Tag: Any}, Factor: 2, Add: 0.5}}}
	if got := p.DelayFor(0, 1, 9, 0, 1); got != 2.5 {
		t.Errorf("DelayFor = %v, want 2.5", got)
	}
	if got := p.DelayFor(1, 0, 9, 0, 1); got != 1 {
		t.Errorf("unmatched DelayFor = %v, want 1", got)
	}
}

func TestEmptyPlan(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan should be empty")
	}
	if p.DropMessage(0, 1, 0, 0) || p.DelayFor(0, 1, 0, 0, 1) != 1 || p.SlowdownFor(0) != 1 {
		t.Error("nil plan should inject nothing")
	}
	if _, ok := p.CrashAt(0, 1, 0); ok {
		t.Error("nil plan should not crash")
	}
	if !(&Plan{Seed: 3}).Empty() {
		t.Error("seed-only plan should be empty")
	}
}

func TestParseDeadline(t *testing.T) {
	if d, err := ParseDeadline("30s"); err != nil || d != 30 {
		t.Errorf("ParseDeadline(30s) = %v, %v", d, err)
	}
	if d, err := ParseDeadline("2.5"); err != nil || d != 2.5 {
		t.Errorf("ParseDeadline(2.5) = %v, %v", d, err)
	}
	if _, err := ParseDeadline("-1s"); err == nil {
		t.Error("negative deadline should fail")
	}
	if _, err := ParseDeadline("bogus"); err == nil {
		t.Error("bad deadline should fail")
	}
}
