// Package fault describes fault-injection plans for the simulated MPI
// runtime: rank crashes (fail-stop, loud or silent), message drops and
// delays selected by (source, destination, tag) matchers, per-rank
// computation stragglers, and a seeded random chaos mode. A Plan is pure
// configuration — the mpi package consults it at well-defined points
// (call entry, message routing, computation regions) — and every decision
// is a deterministic function of the plan, its seed, and the message or
// call coordinates, never of goroutine scheduling. Two runs with the same
// plan and seed therefore inject exactly the same faults and produce
// bit-identical traces.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"siesta/internal/vtime"
)

// Any matches every rank or tag in a matcher field.
const Any = -1

// Crash kills one rank fail-stop. The rank stops executing at the trigger
// point; with Silent false the whole job aborts with an MPI-style
// process-failure error (MPI_ERRORS_ARE_FATAL), with Silent true the rank
// just disappears and the survivors run on — typically into the deadlock
// detector, which then names the dead rank's peers.
type Crash struct {
	Rank   int
	AtCall int        // trigger when the rank begins its Nth MPI call (1-based); 0 disables
	AtTime vtime.Time // trigger at the first call at-or-after this virtual time; 0 disables
	Silent bool
}

// Match selects point-to-point messages by source world rank, destination
// world rank and tag; Any wildcards a field.
type Match struct {
	Src, Dst, Tag int
}

// Matches reports whether the matcher selects a (src, dst, tag) message.
func (m Match) Matches(src, dst, tag int) bool {
	return (m.Src == Any || m.Src == src) &&
		(m.Dst == Any || m.Dst == dst) &&
		(m.Tag == Any || m.Tag == tag)
}

// Drop discards matched messages. Prob is the per-message drop
// probability; 0 or less means drop every match.
type Drop struct {
	Match Match
	Prob  float64
}

// Delay stretches matched messages: wire time is multiplied by Factor
// (values <= 0 mean 1) and then extended by Add.
type Delay struct {
	Match  Match
	Factor float64
	Add    vtime.Duration
}

// Straggler slows one rank's computation regions by Factor (> 1 is
// slower), modelling a thermally-throttled or contended node.
type Straggler struct {
	Rank   int
	Factor float64
}

// Chaos injects random faults everywhere: each message is dropped with
// probability DropProb or delayed by DelayFactor with probability
// DelayProb, and each MPI call kills its rank with probability CrashProb.
// All draws are deterministic in the plan seed.
type Chaos struct {
	DropProb    float64
	DelayProb   float64
	DelayFactor float64 // wire-time multiplier for chaos delays; <= 0 means 3
	CrashProb   float64
}

// Plan is one fault-injection configuration. The zero value injects
// nothing. Plans are immutable once handed to a world and may be shared
// across runs and ranks.
type Plan struct {
	Seed       uint64
	Crashes    []Crash
	Drops      []Drop
	Delays     []Delay
	Stragglers []Straggler
	Chaos      *Chaos
}

// Empty reports whether the plan injects nothing, so the runtime can skip
// all fault bookkeeping.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Drops) == 0 &&
		len(p.Delays) == 0 && len(p.Stragglers) == 0 && p.Chaos == nil)
}

// CrashAt reports whether the plan kills rank at its call-th MPI call
// (1-based) issued at virtual time now.
func (p *Plan) CrashAt(rank, call int, now vtime.Time) (Crash, bool) {
	if p == nil {
		return Crash{}, false
	}
	for _, c := range p.Crashes {
		if c.Rank != rank {
			continue
		}
		if c.AtCall > 0 && call == c.AtCall {
			return c, true
		}
		if c.AtCall == 0 && c.AtTime > 0 && now >= c.AtTime {
			return c, true
		}
	}
	if ch := p.Chaos; ch != nil && ch.CrashProb > 0 {
		if p.roll(0xc4a5, uint64(rank), uint64(call)) < ch.CrashProb {
			return Crash{Rank: rank, AtCall: call}, true
		}
	}
	return Crash{}, false
}

// DropMessage reports whether the n-th message (per source-destination
// channel, in send order) on (src, dst, tag) is dropped.
func (p *Plan) DropMessage(src, dst, tag, n int) bool {
	if p == nil {
		return false
	}
	for i, d := range p.Drops {
		if !d.Match.Matches(src, dst, tag) {
			continue
		}
		if d.Prob <= 0 || p.roll(0xd209^uint64(i), key(src, dst, tag), uint64(n)) < d.Prob {
			return true
		}
	}
	if ch := p.Chaos; ch != nil && ch.DropProb > 0 {
		if p.roll(0xcd09, key(src, dst, tag), uint64(n)) < ch.DropProb {
			return true
		}
	}
	return false
}

// DelayFor returns the adjusted wire time for the n-th message on
// (src, dst, tag); with no matching delay rule it returns wire unchanged.
func (p *Plan) DelayFor(src, dst, tag, n int, wire vtime.Duration) vtime.Duration {
	if p == nil {
		return wire
	}
	for _, d := range p.Delays {
		if !d.Match.Matches(src, dst, tag) {
			continue
		}
		if d.Factor > 0 {
			wire = vtime.Duration(float64(wire) * d.Factor)
		}
		wire += d.Add
	}
	if ch := p.Chaos; ch != nil && ch.DelayProb > 0 {
		if p.roll(0xce1a, key(src, dst, tag), uint64(n)) < ch.DelayProb {
			f := ch.DelayFactor
			if f <= 0 {
				f = 3
			}
			wire = vtime.Duration(float64(wire) * f)
		}
	}
	return wire
}

// SlowdownFor returns the computation slowdown factor for a rank (1 when
// the rank is not a straggler). Multiple matching entries compound.
func (p *Plan) SlowdownFor(rank int) float64 {
	f := 1.0
	if p == nil {
		return f
	}
	for _, s := range p.Stragglers {
		if s.Rank == rank && s.Factor > 0 {
			f *= s.Factor
		}
	}
	return f
}

// key folds a message coordinate into one hash word. Tags may be negative
// (wildcards never reach here, but user tags are arbitrary ints), so the
// fold uses two's-complement bit patterns directly.
func key(src, dst, tag int) uint64 {
	return uint64(uint32(src))<<40 ^ uint64(uint32(dst))<<20 ^ uint64(uint32(tag))
}

// roll draws a deterministic uniform in [0, 1) from the plan seed and the
// given coordinates, via splitmix64 finalization.
func (p *Plan) roll(stream uint64, coords ...uint64) float64 {
	x := p.Seed ^ stream*0x9e3779b97f4a7c15
	for _, c := range coords {
		x ^= c + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = mix64(x)
	}
	return float64(x>>11) / float64(1<<53)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Parse builds a plan from a CLI spec: one or more faults separated by
// ';', each of the form kind:key=value[,key=value...] (an '@' also
// separates keys, so crash:rank=3@call=100 reads naturally). Kinds:
//
//	crash:rank=R[,call=N][,time=D][,silent]
//	drop:[src=R][,dst=R][,tag=T][,prob=P]
//	delay:[src=R][,dst=R][,tag=T][,factor=F][,add=D]
//	straggler:rank=R,factor=F
//	chaos:[drop=P][,delay=P][,crash=P][,factor=F]
//
// R and T accept '*' for any; durations D use Go syntax ("30s", "2ms").
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, _ := strings.Cut(item, ":")
		kv, err := parseArgs(strings.ReplaceAll(rest, "@", ","))
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", item, err)
		}
		switch kind {
		case "crash":
			c := Crash{Rank: -1}
			if err := kv.apply(map[string]func(string) error{
				"rank":   func(v string) error { return parseInt(v, &c.Rank) },
				"call":   func(v string) error { return parseInt(v, &c.AtCall) },
				"time":   func(v string) error { return parseTime(v, &c.AtTime) },
				"silent": func(v string) error { return parseBool(v, &c.Silent) },
			}); err != nil {
				return nil, fmt.Errorf("fault: %q: %w", item, err)
			}
			if c.Rank < 0 {
				return nil, fmt.Errorf("fault: %q: crash needs rank=R", item)
			}
			if c.AtCall <= 0 && c.AtTime <= 0 {
				return nil, fmt.Errorf("fault: %q: crash needs call=N or time=D", item)
			}
			p.Crashes = append(p.Crashes, c)
		case "drop":
			d := Drop{Match: Match{Src: Any, Dst: Any, Tag: Any}}
			if err := kv.apply(map[string]func(string) error{
				"src":  func(v string) error { return parseRank(v, &d.Match.Src) },
				"dst":  func(v string) error { return parseRank(v, &d.Match.Dst) },
				"tag":  func(v string) error { return parseRank(v, &d.Match.Tag) },
				"prob": func(v string) error { return parseProb(v, &d.Prob) },
			}); err != nil {
				return nil, fmt.Errorf("fault: %q: %w", item, err)
			}
			p.Drops = append(p.Drops, d)
		case "delay":
			d := Delay{Match: Match{Src: Any, Dst: Any, Tag: Any}}
			var add vtime.Time
			if err := kv.apply(map[string]func(string) error{
				"src":    func(v string) error { return parseRank(v, &d.Match.Src) },
				"dst":    func(v string) error { return parseRank(v, &d.Match.Dst) },
				"tag":    func(v string) error { return parseRank(v, &d.Match.Tag) },
				"factor": func(v string) error { return parseFloat(v, &d.Factor) },
				"add":    func(v string) error { return parseTime(v, &add) },
			}); err != nil {
				return nil, fmt.Errorf("fault: %q: %w", item, err)
			}
			d.Add = vtime.Duration(add)
			if d.Factor <= 0 && d.Add <= 0 {
				return nil, fmt.Errorf("fault: %q: delay needs factor=F or add=D", item)
			}
			p.Delays = append(p.Delays, d)
		case "straggler":
			s := Straggler{Rank: -1}
			if err := kv.apply(map[string]func(string) error{
				"rank":   func(v string) error { return parseInt(v, &s.Rank) },
				"factor": func(v string) error { return parseFloat(v, &s.Factor) },
			}); err != nil {
				return nil, fmt.Errorf("fault: %q: %w", item, err)
			}
			if s.Rank < 0 || s.Factor <= 0 {
				return nil, fmt.Errorf("fault: %q: straggler needs rank=R and factor=F", item)
			}
			p.Stragglers = append(p.Stragglers, s)
		case "chaos":
			ch := &Chaos{}
			if err := kv.apply(map[string]func(string) error{
				"drop":   func(v string) error { return parseProb(v, &ch.DropProb) },
				"delay":  func(v string) error { return parseProb(v, &ch.DelayProb) },
				"crash":  func(v string) error { return parseProb(v, &ch.CrashProb) },
				"factor": func(v string) error { return parseFloat(v, &ch.DelayFactor) },
			}); err != nil {
				return nil, fmt.Errorf("fault: %q: %w", item, err)
			}
			p.Chaos = ch
		default:
			return nil, fmt.Errorf("fault: unknown kind %q (want crash, drop, delay, straggler or chaos)", kind)
		}
	}
	if p.Empty() {
		return nil, fmt.Errorf("fault: spec %q defines no faults", spec)
	}
	return p, nil
}

// args is a parsed key=value list preserving flag-style bare keys.
type args map[string]string

func parseArgs(s string) (args, error) {
	kv := args{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, found := strings.Cut(part, "=")
		if !found {
			v = "true" // bare flag, e.g. "silent"
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func (kv args) apply(fields map[string]func(string) error) error {
	for k, v := range kv {
		set, ok := fields[k]
		if !ok {
			return fmt.Errorf("unknown key %q", k)
		}
		if err := set(v); err != nil {
			return fmt.Errorf("key %q: %w", k, err)
		}
	}
	return nil
}

func parseInt(v string, out *int) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	*out = n
	return nil
}

func parseRank(v string, out *int) error {
	if v == "*" || v == "any" {
		*out = Any
		return nil
	}
	return parseInt(v, out)
}

func parseFloat(v string, out *float64) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	*out = f
	return nil
}

// parseProb parses a probability and rejects values outside [0, 1].
func parseProb(v string, out *float64) error {
	if err := parseFloat(v, out); err != nil {
		return err
	}
	if *out < 0 || *out > 1 {
		return fmt.Errorf("probability %v outside [0, 1]", *out)
	}
	return nil
}

func parseBool(v string, out *bool) error {
	b, err := strconv.ParseBool(v)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

func parseTime(v string, out *vtime.Time) error {
	d, err := time.ParseDuration(v)
	if err != nil {
		// Bare numbers are virtual seconds.
		f, ferr := strconv.ParseFloat(v, 64)
		if ferr != nil {
			return err
		}
		*out = vtime.Time(f)
		return nil
	}
	*out = vtime.Time(d.Seconds())
	return nil
}

// ParseDeadline reads a --deadline value: Go duration syntax or bare
// virtual seconds.
func ParseDeadline(v string) (vtime.Duration, error) {
	var t vtime.Time
	if err := parseTime(v, &t); err != nil {
		return 0, fmt.Errorf("fault: bad deadline %q: %w", v, err)
	}
	if t <= 0 {
		return 0, fmt.Errorf("fault: deadline %q must be positive", v)
	}
	return vtime.Duration(t), nil
}
