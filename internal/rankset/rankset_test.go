package rankset

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(3, 1, 200)
	if !s.Contains(1) || !s.Contains(3) || !s.Contains(200) || s.Contains(2) || s.Contains(-1) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Ranks(); !reflect.DeepEqual(got, []int{1, 3, 200}) {
		t.Fatalf("Ranks = %v", got)
	}
}

func TestEmpty(t *testing.T) {
	s := New()
	if !s.Empty() || s.Len() != 0 || len(s.Ranks()) != 0 {
		t.Fatal("empty set misbehaves")
	}
	var zero Set
	if !zero.Empty() {
		t.Fatal("zero value should be empty")
	}
}

func TestUnionEqual(t *testing.T) {
	a, b := New(1, 2), New(2, 65)
	u := a.Union(b)
	if !reflect.DeepEqual(u.Ranks(), []int{1, 2, 65}) {
		t.Fatalf("union = %v", u.Ranks())
	}
	if !a.Equal(New(2, 1)) {
		t.Fatal("Equal ignores order")
	}
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	// Different word lengths, same content.
	c := New(1)
	d := New(1, 100)
	d2 := New(100)
	_ = d2
	if c.Equal(d) {
		t.Fatal("length-padding equality bug")
	}
}

func TestRange(t *testing.T) {
	s := Range(4, 8)
	if !reflect.DeepEqual(s.Ranks(), []int{4, 5, 6, 7}) {
		t.Fatalf("Range = %v", s.Ranks())
	}
}

func TestIntervals(t *testing.T) {
	s := New(0, 1, 2, 5, 7, 8)
	want := [][2]int{{0, 2}, {5, 5}, {7, 8}}
	if got := s.Intervals(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Intervals = %v", got)
	}
	if s.String() != "{0-2,5,7-8}" {
		t.Fatalf("String = %s", s.String())
	}
}

func TestClone(t *testing.T) {
	a := New(1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone aliases storage")
	}
}

func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rank should panic")
		}
	}()
	New(-1)
}

func TestUnionCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(), New()
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalsCoverExactlyProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		s := New()
		for _, x := range xs {
			s.Add(int(x))
		}
		covered := map[int]bool{}
		for _, iv := range s.Intervals() {
			if iv[0] > iv[1] {
				return false
			}
			for r := iv[0]; r <= iv[1]; r++ {
				if covered[r] {
					return false // overlap
				}
				covered[r] = true
			}
		}
		for r := 0; r < 256; r++ {
			if covered[r] != s.Contains(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
