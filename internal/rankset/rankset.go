// Package rankset provides a compact bitset over process ranks, used for the
// rank-list attributes that the inter-process merge attaches to main-rule
// symbols (paper §2.6.2) and that code generation turns into branch
// conditions (§2.7).
package rankset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a bitset of ranks. The zero value is an empty set.
type Set struct {
	words []uint64
}

// New returns a set containing the given ranks.
func New(ranks ...int) *Set {
	s := &Set{}
	for _, r := range ranks {
		s.Add(r)
	}
	return s
}

// Single returns {r}.
func Single(r int) *Set { return New(r) }

// Range returns {lo, …, hi-1}.
func Range(lo, hi int) *Set {
	s := &Set{}
	for r := lo; r < hi; r++ {
		s.Add(r)
	}
	return s
}

// Add inserts rank r.
func (s *Set) Add(r int) {
	if r < 0 {
		panic(fmt.Sprintf("rankset: negative rank %d", r))
	}
	w := r / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (r % 64)
}

// Contains reports whether r is in the set.
func (s *Set) Contains(r int) bool {
	if r < 0 {
		return false
	}
	w := r / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(r%64)) != 0
}

// Union returns s ∪ o as a new set.
func (s *Set) Union(o *Set) *Set {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	out := &Set{words: make([]uint64, n)}
	for i := range out.words {
		if i < len(s.words) {
			out.words[i] |= s.words[i]
		}
		if i < len(o.words) {
			out.words[i] |= o.words[i]
		}
	}
	return out
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Len reports the number of ranks in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.Len() == 0 }

// Ranks lists the members in ascending order.
func (s *Set) Ranks() []int {
	var out []int
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...)}
}

// Intervals returns the set as maximal [lo, hi] inclusive runs — what the
// code generator compiles into "rank >= lo && rank <= hi" conditions.
func (s *Set) Intervals() [][2]int {
	var out [][2]int
	ranks := s.Ranks()
	for i := 0; i < len(ranks); {
		j := i
		for j+1 < len(ranks) && ranks[j+1] == ranks[j]+1 {
			j++
		}
		out = append(out, [2]int{ranks[i], ranks[j]})
		i = j + 1
	}
	return out
}

// String renders the set compactly, e.g. "{0-3,7}".
func (s *Set) String() string {
	var parts []string
	for _, iv := range s.Intervals() {
		if iv[0] == iv[1] {
			parts = append(parts, fmt.Sprintf("%d", iv[0]))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", iv[0], iv[1]))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}
