package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matFromRows(rows [][]float64) *Matrix {
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := matFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At/Set wrong")
	}
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec: %v", y)
	}
	r := m.Residual([]float64{1, 1}, []float64{3, 7})
	if r[0] != 0 || r[1] != 0 {
		t.Fatalf("Residual: %v", r)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases data")
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1, 2})
}

func TestNNLSExactNonnegativeSolution(t *testing.T) {
	// Identity system: solution is b clamped at zero.
	a := matFromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	x, err := NNLS(a, []float64{3, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 0, 5}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// Unconstrained solution would be negative; NNLS must clamp to 0.
	a := matFromRows([][]float64{{1}, {1}})
	x, err := NNLS(a, []float64{-1, -2})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 {
		t.Fatalf("x = %v, want 0", x)
	}
}

func TestNNLSOverdetermined(t *testing.T) {
	a := matFromRows([][]float64{{1, 1}, {1, 2}, {1, 3}})
	b := []float64{6, 9, 12} // exact: x = (3, 3)
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-6 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("x = %v, want (3,3)", x)
	}
}

func TestNNLSUnderdeterminedWideMatrix(t *testing.T) {
	// 2 equations, 5 unknowns — the shape of the paper's problem
	// (6 metrics, 11 blocks). Any solution must fit exactly.
	a := matFromRows([][]float64{
		{1, 2, 0, 1, 3},
		{0, 1, 4, 2, 1},
	})
	b := []float64{10, 8}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res := a.ResidualNorm2(x, b); res > 1e-10 {
		t.Fatalf("residual %v too large; x = %v", res, x)
	}
	for _, v := range x {
		if v < 0 {
			t.Fatalf("negative component in %v", x)
		}
	}
}

func TestNNLSCollinearColumns(t *testing.T) {
	// Duplicated columns — the "non-orthogonal blocks" case the paper
	// says the search must tolerate.
	a := matFromRows([][]float64{
		{1, 1, 2},
		{2, 2, 1},
	})
	b := []float64{4, 5}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res := a.ResidualNorm2(x, b); res > 1e-6 {
		t.Fatalf("residual %v too large for consistent system; x = %v", res, x)
	}
}

func TestNNLSZeroRHS(t *testing.T) {
	a := matFromRows([][]float64{{1, 2}, {3, 4}})
	x, err := NNLS(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("x = %v, want zeros", x)
	}
}

// TestNNLSKKTProperty checks the optimality conditions on random problems:
// the result is feasible, and no feasible perturbation improves it much.
func TestNNLSKKTProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 2+rng.Intn(5), 2+rng.Intn(6)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.Float64() * 10
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.Float64() * 100
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: infeasible x = %v", trial, x)
			}
		}
		base := a.ResidualNorm2(x, b)
		// Probe coordinate steps: no feasible move should beat base
		// meaningfully (allowing tolerance for the ridge).
		const h = 1e-4
		for j := 0; j < cols; j++ {
			for _, dir := range []float64{h, -h} {
				xp := append([]float64(nil), x...)
				xp[j] += dir
				if xp[j] < 0 {
					continue
				}
				if a.ResidualNorm2(xp, b) < base-1e-6*(1+base) {
					t.Fatalf("trial %d: coordinate step improves objective — not optimal", trial)
				}
			}
		}
	}
}

func TestWeightedNNLSMatchesRelativeObjective(t *testing.T) {
	// With wildly different target magnitudes, the weighted solve must
	// balance relative (not absolute) errors.
	a := matFromRows([][]float64{
		{1e6, 0},
		{0, 1},
	})
	targets := []float64{2e6, 3}
	x, err := WeightedNNLS(a, targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("x = %v, want (2,3)", x)
	}
}

func TestWeightedNNLSSkipsZeroTargets(t *testing.T) {
	a := matFromRows([][]float64{
		{1, 0},
		{0, 1},
	})
	// Second target is zero: its row drops out of the objective, so the
	// solver is free there, but the first row must still be fit.
	x, err := WeightedNNLS(a, []float64{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-6 {
		t.Fatalf("x = %v, want x0=5", x)
	}
}

func TestWeightedNNLSDimensionError(t *testing.T) {
	if _, err := WeightedNNLS(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := NNLS(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestNNLSFeasibilityProperty(t *testing.T) {
	// Property: for random small systems, NNLS always returns finite,
	// non-negative solutions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewMatrix(3, 4)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		x, err := NNLS(a, b)
		if err != nil {
			return false
		}
		for _, v := range x {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNNLSExtremeColumnScales(t *testing.T) {
	// Columns spanning 16 orders of magnitude: the normalization must
	// keep the solver convergent and exact on a consistent system.
	a := matFromRows([][]float64{
		{1e-8, 0, 2e8},
		{0, 3e-8, 1e8},
	})
	want := []float64{2e8, 1e8, 1e-8}
	b := a.MulVec(want)
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res := a.ResidualNorm2(x, b); res > 1e-12*(1+normSq(b)) {
		t.Fatalf("residual %v too large; x = %v", res, x)
	}
}

func normSq(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

func TestNNLSZeroColumns(t *testing.T) {
	a := matFromRows([][]float64{
		{0, 1},
		{0, 2},
	})
	x, err := NNLS(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-1) > 1e-8 {
		t.Fatalf("x = %v, want x1=1", x)
	}
}
