// Package qp solves the constrained convex quadratic programs at the heart
// of Siesta's computation-proxy search (paper §2.4). The search problem
//
//	min_x  Σᵢ (1/tᵢ²)(bᵢ·x − tᵢ)²   s.t.  x ≥ 0,  x₁₁ ≥ Σ_{i=1..9} xᵢ
//
// is reduced to non-negative least squares by row scaling (the 1/tᵢ weights)
// and variable substitution (x₁₁ = s + Σx₁..₉, s ≥ 0), and the NNLS core is
// a dense Lawson–Hanson active-set solver with a ridge-stabilised normal-
// equation inner solve, which tolerates the non-orthogonality of the
// predefined code blocks that the paper calls out.
package qp

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConverge reports that the active-set iteration failed to terminate
// within its iteration budget.
var ErrNoConverge = errors.New("qp: NNLS did not converge")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("qp: MulVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Residual returns b − m·x.
func (m *Matrix) Residual(x, b []float64) []float64 {
	y := m.MulVec(x)
	r := make([]float64, len(b))
	for i := range b {
		r[i] = b[i] - y[i]
	}
	return r
}

// ResidualNorm2 returns ‖b − m·x‖².
func (m *Matrix) ResidualNorm2(x, b []float64) float64 {
	r := m.Residual(x, b)
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s
}

// solveSPD solves the symmetric positive-definite system G z = c in place by
// Cholesky decomposition, returning false if G is not numerically SPD.
func solveSPD(g [][]float64, c []float64) ([]float64, bool) {
	n := len(c)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := g[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// forward solve L y = c
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := c[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * y[k]
		}
		y[i] = sum / l[i][i]
	}
	// back solve Lᵀ z = y
	z := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	return z, true
}

// lsqSubset solves the unconstrained least squares min ‖A_P z − b‖ over the
// column subset P via ridge-stabilised normal equations.
func lsqSubset(a *Matrix, b []float64, p []int) []float64 {
	k := len(p)
	g := make([][]float64, k)
	for i := range g {
		g[i] = make([]float64, k)
	}
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			var s float64
			for r := 0; r < a.Rows; r++ {
				s += a.At(r, p[i]) * a.At(r, p[j])
			}
			g[i][j] = s
			g[j][i] = s
		}
		var s float64
		for r := 0; r < a.Rows; r++ {
			s += a.At(r, p[i]) * b[r]
		}
		c[i] = s
	}
	// Ridge escalation: the code blocks are deliberately non-orthogonal, so
	// the Gram matrix can be near-singular; escalate regularisation until
	// Cholesky succeeds. The ridge must scale with the Gram matrix itself
	// (weighted systems can have very small entries), never with an
	// absolute floor that might dominate the problem.
	var maxDiag float64
	for i := 0; i < k; i++ {
		if g[i][i] > maxDiag {
			maxDiag = g[i][i]
		}
	}
	ridge := 1e-12 * maxDiag
	if ridge <= 0 {
		ridge = 1e-300
	}
	for try := 0; try < 20; try++ {
		gr := make([][]float64, k)
		for i := range gr {
			gr[i] = append([]float64(nil), g[i]...)
			gr[i][i] += ridge
		}
		if z, ok := solveSPD(gr, c); ok {
			return z
		}
		ridge *= 100
	}
	// Degenerate beyond recovery: return zeros (caller's descent test
	// rejects non-improving steps).
	return make([]float64, k)
}

// NNLS solves min ‖A x − b‖² subject to x ≥ 0. The solver combines an
// active-set warm start (an unconstrained ridge solve clamped to the
// feasible set) with accelerated projected gradient descent (FISTA with
// adaptive restart), which converges unconditionally on this convex problem
// — including the deliberately collinear columns the paper's code blocks
// produce — where naive Lawson–Hanson active-set iterations can cycle. The
// returned x has length A.Cols.
func NNLS(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("qp: NNLS rhs length %d != rows %d", len(b), a.Rows)
	}
	n := a.Cols

	// Normalize columns to unit 2-norm: the paper's weighted systems mix
	// column scales across four orders of magnitude, which would cripple
	// first-order convergence. x ≥ 0 is invariant under positive column
	// scaling, so the solution denormalizes exactly.
	norms := make([]float64, n)
	an := NewMatrix(a.Rows, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < a.Rows; i++ {
			s += a.At(i, j) * a.At(i, j)
		}
		norms[j] = math.Sqrt(s)
		if norms[j] == 0 {
			norms[j] = 1 // zero column: coefficient is irrelevant
		}
		for i := 0; i < a.Rows; i++ {
			an.Set(i, j, a.At(i, j)/norms[j])
		}
	}

	// Lipschitz constant of the gradient: 2·λmax(AᵀA) via power iteration.
	lam := gramSpectralRadius(an)
	if lam <= 0 {
		return make([]float64, n), nil // zero matrix: anything fits equally
	}
	step := 1 / (2 * lam)

	// Warm start: clamped unconstrained ridge least squares.
	all := make([]int, n)
	for j := range all {
		all[j] = j
	}
	x := lsqSubset(an, b, all)
	for j := range x {
		if x[j] < 0 || math.IsNaN(x[j]) || math.IsInf(x[j], 0) {
			x[j] = 0
		}
	}

	grad := func(v []float64) []float64 {
		r := an.Residual(v, b)
		g := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < an.Rows; i++ {
				s += an.At(i, j) * r[i]
			}
			g[j] = -2 * s
		}
		return g
	}
	// Gradient scale at the origin, for the relative stopping criterion.
	gradScale := 0.0
	for _, v := range grad(make([]float64, n)) {
		if av := math.Abs(v); av > gradScale {
			gradScale = av
		}
	}
	if gradScale == 0 {
		return make([]float64, n), nil
	}
	converged := func(v []float64) bool {
		// Projected gradient must vanish: g_j ≈ 0 where v_j > 0,
		// g_j ≥ 0 where v_j = 0.
		for j, gj := range grad(v) {
			pg := gj
			if v[j] <= 0 && pg > 0 {
				pg = 0
			}
			if math.Abs(pg) > 1e-9*gradScale {
				return false
			}
		}
		return true
	}

	// FISTA with adaptive restart.
	y := append([]float64(nil), x...)
	tMom := 1.0
	prevObj := an.ResidualNorm2(x, b)
	const maxIters = 500000
	for iter := 0; iter < maxIters; iter++ {
		g := grad(y)
		xNew := make([]float64, n)
		for j := 0; j < n; j++ {
			v := y[j] - step*g[j]
			if v < 0 {
				v = 0
			}
			xNew[j] = v
		}
		tNew := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
		for j := 0; j < n; j++ {
			y[j] = xNew[j] + (tMom-1)/tNew*(xNew[j]-x[j])
			if y[j] < 0 {
				y[j] = 0
			}
		}
		obj := an.ResidualNorm2(xNew, b)
		if obj > prevObj { // restart momentum on non-monotonicity
			copy(y, xNew)
			tNew = 1
		}
		x, tMom, prevObj = xNew, tNew, obj
		if iter%64 == 63 && converged(x) {
			break
		}
	}
	if !converged(x) {
		return nil, ErrNoConverge
	}
	for j := range x {
		x[j] /= norms[j]
	}
	return x, nil
}

// gramSpectralRadius estimates λmax(AᵀA) by power iteration.
func gramSpectralRadius(a *Matrix) float64 {
	n := a.Cols
	v := make([]float64, n)
	for j := range v {
		v[j] = 1
	}
	var lambda float64
	for it := 0; it < 200; it++ {
		// w = Aᵀ(A v)
		av := a.MulVec(v)
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < a.Rows; i++ {
				s += a.At(i, j) * av[i]
			}
			w[j] = s
		}
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		lambda = norm
		for j := range w {
			v[j] = w[j] / norm
		}
	}
	return lambda
}

func matrixScale(a *Matrix, b []float64) float64 {
	s := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > s {
			s = av
		}
	}
	for _, v := range b {
		if av := math.Abs(v); av > s {
			s = av
		}
	}
	if s == 0 {
		return 1
	}
	return s
}

func passiveSet(passive []bool) []int {
	var p []int
	for j, in := range passive {
		if in {
			p = append(p, j)
		}
	}
	return p
}

func allPositive(z []float64, tol float64) bool {
	for _, v := range z {
		if v <= tol {
			return false
		}
	}
	return true
}

// WeightedNNLS solves the paper's relative-error objective: it scales row i
// of A and entry i of b by 1/tᵢ (skipping rows whose target is zero) and
// runs NNLS.
func WeightedNNLS(a *Matrix, t []float64) ([]float64, error) {
	if len(t) != a.Rows {
		return nil, fmt.Errorf("qp: target length %d != rows %d", len(t), a.Rows)
	}
	aw := a.Clone()
	bw := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		wgt := 0.0
		if t[i] != 0 {
			wgt = 1 / t[i]
		}
		for j := 0; j < a.Cols; j++ {
			aw.Set(i, j, a.At(i, j)*wgt)
		}
		bw[i] = t[i] * wgt // 1 for nonzero targets, 0 otherwise
	}
	return NNLS(aw, bw)
}
