package mpi

import (
	"siesta/internal/vtime"
)

// This file implements the MPI-IO subset the paper's §2.1 points at when it
// notes that "the process of I/O trace is similar to that of communication
// trace" and can be handled "via further engineering efforts": collective
// file open/close, independent read/write at explicit offsets, and
// collective write_at_all/read_at_all, priced by a shared parallel-
// filesystem model.

// Parallel filesystem model: a single shared store per job. Independent
// operations get one client stream's bandwidth; collective operations
// aggregate into the full filesystem bandwidth (the two-phase I/O effect).
const (
	fsLatencySec     = 100e-6 // per-operation latency
	fsStreamBwBps    = 1.2e9  // one client stream
	fsAggregateBwBps = 6.0e9  // whole filesystem, collective access
)

// File is an open simulated MPI file handle.
type File struct {
	id     int
	name   string
	comm   *Comm
	closed bool
}

// ID reports the runtime file handle id (dense per communicator creation
// order, like communicator ids, so the trace layer's pool renaming can
// reproduce it).
func (f *File) ID() int { return f.id }

// Name reports the file's name.
func (f *File) Name() string { return f.name }

// FileOpen opens a file collectively on the communicator.
func (r *Rank) FileOpen(c *Comm, name string) *File {
	call := &Call{Func: "MPI_File_open", Comm: c, FileName: name}
	r.beginCall(call)
	slot := r.collective(c, 0 /* barrier-priced */, 0, [2]int{}, false)
	// The first rank past the barrier allocates the group's handle; file
	// ids are dense in open order, so the trace layer's pool renaming
	// reproduces them.
	w := r.world
	w.mu.Lock()
	if slot.sharedFile == nil {
		slot.sharedFile = &File{id: w.nextFileID, name: name, comm: c}
		w.nextFileID++
	}
	f := slot.sharedFile
	w.mu.Unlock()
	r.clock.Advance(vtime.Duration(fsLatencySec)) // open round trip
	call.File = f
	r.endCall(call)
	return f
}

// checkOpen raises an MPI_ERR_FILE error (as a typed panic absorbed by
// World.Run) if the file is nil or already closed, reading the shared flag
// under the world lock.
func (r *Rank) checkOpen(fn string, f *File) {
	if f == nil {
		panic(mpiErrorf(ErrFile, r.rank, fn, "operation on nil file"))
	}
	r.world.mu.Lock()
	closed := f.closed
	r.world.mu.Unlock()
	if closed {
		panic(mpiErrorf(ErrFile, r.rank, fn, "operation on closed file %q", f.name))
	}
}

// FileClose closes the file collectively.
func (r *Rank) FileClose(f *File) {
	call := &Call{Func: "MPI_File_close", Comm: f.comm, File: f}
	r.beginCall(call)
	r.collective(f.comm, 0, 0, [2]int{}, false)
	r.clock.Advance(vtime.Duration(fsLatencySec / 2))
	// Every rank of the collective marks the shared handle closed; guard
	// the write so concurrent closers do not race.
	r.world.mu.Lock()
	f.closed = true
	r.world.mu.Unlock()
	r.endCall(call)
}

// FileWriteAt writes bytes at an explicit offset, independently.
func (r *Rank) FileWriteAt(f *File, offset, bytes int) {
	r.fileIndependent("MPI_File_write_at", f, offset, bytes)
}

// FileReadAt reads bytes at an explicit offset, independently.
func (r *Rank) FileReadAt(f *File, offset, bytes int) {
	r.fileIndependent("MPI_File_read_at", f, offset, bytes)
}

func (r *Rank) fileIndependent(fn string, f *File, offset, bytes int) {
	r.checkOpen(fn, f)
	call := &Call{Func: fn, Comm: f.comm, File: f, Offset: offset, Bytes: bytes}
	r.beginCall(call)
	// An independent stream contends with every other rank of the job for
	// the filesystem's aggregate bandwidth.
	bw := fsStreamBwBps
	if shared := fsAggregateBwBps / float64(r.world.cfg.Size); shared < bw {
		bw = shared
	}
	cost := fsLatencySec + float64(bytes)/bw
	r.clock.Advance(vtime.Duration(cost * r.world.commJitter))
	r.endCall(call)
}

// FileWriteAtAll writes collectively: all ranks of the file's communicator
// participate, and the aggregated transfer uses the filesystem's full
// bandwidth (two-phase collective I/O).
func (r *Rank) FileWriteAtAll(f *File, offset, bytes int) {
	r.fileCollective("MPI_File_write_at_all", f, offset, bytes)
}

// FileReadAtAll reads collectively.
func (r *Rank) FileReadAtAll(f *File, offset, bytes int) {
	r.fileCollective("MPI_File_read_at_all", f, offset, bytes)
}

func (r *Rank) fileCollective(fn string, f *File, offset, bytes int) {
	r.checkOpen(fn, f)
	call := &Call{Func: fn, Comm: f.comm, File: f, Offset: offset, Bytes: bytes}
	r.beginCall(call)
	c := f.comm
	seq := r.seqs[c.id]
	r.seqs[c.id] = seq + 1
	w := r.world
	w.mu.Lock()
	if w.aborted() {
		// Same guard as the blocking collective path: a slot created
		// after failLocked would never complete.
		w.mu.Unlock()
		r.abortIfFailed()
	}
	key := collKey{commID: c.id, seq: seq}
	slot := w.collectiveSlot(c, seq, 0)
	slot.arrived++
	if t := r.clock.Now(); t > slot.maxIn {
		slot.maxIn = t
	}
	slot.maxBytes += bytes // aggregate volume
	if slot.arrived == slot.expected {
		total := float64(slot.maxBytes)
		cost := fsLatencySec + total/fsAggregateBwBps
		slot.outTime = slot.maxIn.Add(vtime.Duration(cost * w.commJitter))
		delete(w.colls, key)
		slot.completed = true
		close(slot.done)
	} else {
		w.blockLocked(r, collPendingOp(r, c, seq, slot),
			func() bool { return slot.completed })
		w.checkDeadlockLocked()
	}
	w.mu.Unlock()
	<-slot.done
	w.mu.Lock()
	w.resumeLocked(r)
	w.mu.Unlock()
	r.abortIfFailed()
	r.clock.AdvanceTo(slot.outTime)
	r.endCall(call)
}
