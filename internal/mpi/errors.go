package mpi

import (
	"errors"
	"fmt"
	"strings"
)

// ErrClass mirrors the MPI error classes the simulated runtime can raise.
type ErrClass int

// Error classes, named after their MPI counterparts.
const (
	ErrOther      ErrClass = iota // MPI_ERR_OTHER
	ErrArg                        // MPI_ERR_ARG: invalid argument
	ErrCount                      // MPI_ERR_COUNT: invalid count vector
	ErrRank                       // MPI_ERR_RANK: invalid rank
	ErrRequest                    // MPI_ERR_REQUEST: invalid request handle
	ErrComm                       // MPI_ERR_COMM: invalid communicator use
	ErrFile                       // MPI_ERR_FILE: invalid file handle
	ErrDims                       // MPI_ERR_DIMS: invalid topology dimensions
	ErrProcFailed                 // MPIX_ERR_PROC_FAILED: a process died (ULFM)
)

var errClassNames = map[ErrClass]string{
	ErrOther:      "MPI_ERR_OTHER",
	ErrArg:        "MPI_ERR_ARG",
	ErrCount:      "MPI_ERR_COUNT",
	ErrRank:       "MPI_ERR_RANK",
	ErrRequest:    "MPI_ERR_REQUEST",
	ErrComm:       "MPI_ERR_COMM",
	ErrFile:       "MPI_ERR_FILE",
	ErrDims:       "MPI_ERR_DIMS",
	ErrProcFailed: "MPIX_ERR_PROC_FAILED",
}

func (c ErrClass) String() string {
	if s, ok := errClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ErrClass(%d)", int(c))
}

// MPIError is a structured runtime error with an MPI-style error class,
// the analogue of a nonzero MPI return code under MPI_ERRORS_RETURN. API
// misuse that previously panicked the whole process now surfaces as an
// MPIError flowing through World.Run's error return.
type MPIError struct {
	Class ErrClass
	Rank  int    // world rank that raised it; -1 when not rank-specific
	Op    string // the MPI call, e.g. "MPI_Alltoallv"; may be empty
	Msg   string
}

func (e *MPIError) Error() string {
	var b strings.Builder
	b.WriteString("mpi: ")
	b.WriteString(e.Class.String())
	if e.Op != "" {
		fmt.Fprintf(&b, " in %s", e.Op)
	}
	if e.Rank >= 0 {
		fmt.Fprintf(&b, " on rank %d", e.Rank)
	}
	if e.Msg != "" {
		b.WriteString(": ")
		b.WriteString(e.Msg)
	}
	return b.String()
}

// mpiErrorf builds an MPIError with a formatted message.
func mpiErrorf(class ErrClass, rank int, op, format string, args ...any) *MPIError {
	return &MPIError{Class: class, Rank: rank, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// NoPeer marks a pending operation with no point-to-point partner
// (collectives, waits on send requests to ProcNull, ...).
const NoPeer = -3

// PendingOp describes what one blocked rank is waiting for, in MPI terms:
// the call it is inside, the partner and tag it is matching (for
// point-to-point) and the communicator involved.
type PendingOp struct {
	Rank int
	Func string // MPI call name, e.g. "MPI_Recv"
	Comm int    // communicator id; -1 when no communicator applies
	Peer int    // comm rank of the partner; AnySource, ProcNull or NoPeer
	Tag  int    // tag being matched; AnyTag when wildcarded
	// Detail is a human-readable qualifier ("collective seq 4, 3/8
	// arrived", "request #2 (send)").
	Detail string
}

func (p PendingOp) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rank %d: %s", p.Rank, p.Func)
	switch p.Peer {
	case NoPeer:
	case AnySource:
		b.WriteString(" peer=any")
	case ProcNull:
		b.WriteString(" peer=null")
	default:
		fmt.Fprintf(&b, " peer=%d", p.Peer)
	}
	if p.Peer != NoPeer {
		if p.Tag == AnyTag {
			b.WriteString(" tag=any")
		} else {
			fmt.Fprintf(&b, " tag=%d", p.Tag)
		}
	}
	if p.Comm >= 0 {
		fmt.Fprintf(&b, " comm=%d", p.Comm)
	}
	if p.Detail != "" {
		fmt.Fprintf(&b, " (%s)", p.Detail)
	}
	return b.String()
}

// DeadlockError reports that the run cannot make progress: every live
// rank is blocked with no enabled transition, or the virtual-time budget
// ran out. Blocked lists each stuck rank's pending operation in rank
// order; Crashed lists ranks removed by silent fault-injected crashes.
type DeadlockError struct {
	Reason  string
	Blocked []PendingOp
	Crashed []int
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: deadlock: %s", e.Reason)
	for _, op := range e.Blocked {
		b.WriteString("\n  ")
		b.WriteString(op.String())
	}
	if len(e.Crashed) > 0 {
		fmt.Fprintf(&b, "\n  crashed ranks: %v", e.Crashed)
	}
	return b.String()
}

// errAborted is the panic sentinel a rank throws to unwind after the run
// has already failed; World.Run's recovery absorbs it silently.
var errAborted = errors.New("mpi: run aborted")

// ErrCanceled is the sentinel every context-cancellation failure matches:
// errors.Is(err, ErrCanceled) holds for any run torn down because its
// Config.Ctx was canceled or passed its deadline, however deeply the
// pipeline wrapped it.
var ErrCanceled = errors.New("mpi: run canceled")

// CancelError reports that a run was stopped by its configured context
// rather than by the application: the caller canceled the job or its
// wall-clock deadline expired. Cause preserves the context's cause
// (context.Canceled, context.DeadlineExceeded, or a custom cause), so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.DeadlineExceeded)
// see through it.
type CancelError struct {
	Cause error
}

func (e *CancelError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("mpi: run canceled: %v", e.Cause)
	}
	return "mpi: run canceled"
}

func (e *CancelError) Unwrap() error { return e.Cause }

// Is makes every CancelError match the ErrCanceled sentinel.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// crashPanic is the panic payload of a fault-injected rank crash.
type crashPanic struct {
	op     string // the MPI call the rank died entering
	call   int    // the rank's call count at death
	silent bool
}
