package mpi

import (
	"fmt"

	"siesta/internal/vtime"
)

// resolveRecv computes the virtual completion time of a matched transfer.
// For eager messages the data travels independently of the receiver; for
// rendezvous the transfer starts only when both sides are ready.
func resolveRecv(m *message, recvPost vtime.Time) vtime.Time {
	if m.eager {
		return vtime.Max(recvPost, m.readyTime.Add(m.wire))
	}
	start := vtime.Max(m.readyTime, recvPost)
	return start.Add(m.wire)
}

// completeMatch finalizes a (message, posted receive) pair. Caller holds
// w.mu. It resolves the receive request, and for rendezvous transfers also
// resolves the send request and wakes the sender.
func completeMatch(m *message, pr *postedRecv) {
	done := resolveRecv(m, pr.postTime)
	pr.req.done = true
	pr.req.time = float64(done)
	pr.req.st = Status{Source: m.srcComm, Tag: m.tag, Bytes: m.bytes}
	pr.req.matchedSrc, pr.req.matchedSeq = m.srcWorld, m.seq+1
	if pr.buf != nil && m.payload != nil {
		copy(pr.buf, m.payload)
	}
	pr.owner.cond.Broadcast()
	if !m.eager && m.sendReq != nil {
		m.sendReq.done = true
		m.sendReq.time = float64(done)
		if m.sender != nil {
			m.sender.cond.Broadcast()
		}
	}
}

// matches reports whether a posted receive accepts a message.
func (pr *postedRecv) matches(m *message) bool {
	if pr.commID != m.commID {
		return false
	}
	if pr.src != AnySource && pr.src != m.srcComm {
		return false
	}
	if pr.tag != AnyTag && pr.tag != m.tag {
		return false
	}
	return true
}

// postMessage routes a newly sent message: match against posted receives in
// post order, or enqueue as unexpected. Caller holds w.mu. The destination
// rank is woken either way — an unmatched arrival may still be what a
// blocked Probe is waiting for. A message the fault plan drops vanishes
// here: the receiver keeps waiting (and a rendezvous sender keeps waiting
// for the handshake), which the deadlock detector then reports.
//
// It returns the message's per-channel sequence number: posting hands
// ownership of m to the router (a matched message is recycled on the
// spot), so callers record the seq from the return value rather than
// reading m afterwards.
func (w *World) postMessage(m *message) int {
	seq := w.msgCount.next(m.srcWorld, m.dstWorld)
	m.seq = seq
	if !w.routeFaults(m) {
		putMessage(m)
		return seq
	}
	queue := w.posted[m.dstWorld]
	for i, pr := range queue {
		if pr.matches(m) {
			w.posted[m.dstWorld] = append(queue[:i:i], queue[i+1:]...)
			completeMatch(m, pr)
			putMessage(m)
			putPostedRecv(pr)
			return seq
		}
	}
	w.mailbox[m.dstWorld] = append(w.mailbox[m.dstWorld], m)
	w.ranks[m.dstWorld].cond.Broadcast()
	return seq
}

// postRecv registers a receive: match against unexpected messages in arrival
// order, or enqueue. Caller holds w.mu. Posting hands ownership of pr to
// the router — an immediate match recycles it, so callers must not touch
// pr afterwards (completion is observed through pr.req).
func (w *World) postRecv(pr *postedRecv) {
	box := w.mailbox[pr.owner.rank]
	for i, m := range box {
		if pr.matches(m) {
			w.mailbox[pr.owner.rank] = append(box[:i:i], box[i+1:]...)
			completeMatch(m, pr)
			putMessage(m)
			putPostedRecv(pr)
			return
		}
	}
	w.posted[pr.owner.rank] = append(w.posted[pr.owner.rank], pr)
}

// buildMessage prices and assembles an outgoing message (drawn from the
// free-list; the router recycles it on match). dst is a rank in c.
func (r *Rank) buildMessage(c *Comm, dst, tag, bytes int, payload []byte, req *Request) *message {
	w := r.world
	dstWorld := c.WorldRank(dst)
	var data []byte
	if payload != nil {
		data = append([]byte(nil), payload...)
	}
	m := getMessage()
	*m = message{
		commID:    c.id,
		srcComm:   c.RankOf(r.rank),
		srcWorld:  r.rank,
		dstWorld:  dstWorld,
		tag:       tag,
		bytes:     bytes,
		payload:   data,
		eager:     w.cfg.Impl.Eager(bytes),
		readyTime: r.clock.Now(),
		wire:      vtime.Duration(float64(w.cfg.Impl.WireTime(w.cfg.Platform, r.rank, dstWorld, bytes)) * w.commJitter),
		sendReq:   req,
	}
	return m
}

// Send performs a blocking standard-mode send of bytes to dst (rank in c)
// with the given tag. Eager messages complete locally; rendezvous messages
// block until the receiver matches, exactly like a real large send.
func (r *Rank) Send(c *Comm, dst, tag, bytes int) {
	r.sendPayload(c, dst, tag, bytes, nil)
}

// SendBytes is Send with an actual payload, for examples and tests that
// want data to arrive. len(data) is used as the message size.
func (r *Rank) SendBytes(c *Comm, dst, tag int, data []byte) {
	r.sendPayload(c, dst, tag, len(data), data)
}

func (r *Rank) sendPayload(c *Comm, dst, tag, bytes int, payload []byte) {
	call := &Call{Func: "MPI_Send", Comm: c, Dest: dst, Tag: tag, Bytes: bytes}
	r.beginCall(call)
	if dst != ProcNull {
		w := r.world
		dstWorld := c.WorldRank(dst)
		r.clock.Advance(w.cfg.Impl.SendLocalCost(w.cfg.Platform, r.rank, dstWorld, bytes))
		m := r.buildMessage(c, dst, tag, bytes, payload, nil)
		if m.eager {
			w.mu.Lock()
			seq := w.postMessage(m)
			w.mu.Unlock()
			call.SentSeq, call.SentDst, call.SentBytes = seq+1, dstWorld, bytes
		} else {
			req := r.newRequest(reqSend)
			req.describe(dst, tag)
			m.sendReq = req
			m.sender = r
			// Closures built outside the critical section: their
			// allocations would otherwise serialize under w.mu.
			makeOp := func() PendingOp {
				op := r.pendingOp("rendezvous handshake")
				op.Peer, op.Tag = dst, tag
				return op
			}
			ready := func() bool { return req.done }
			w.mu.Lock()
			seq := w.postMessage(m)
			w.waitCond(r, makeOp, ready)
			w.mu.Unlock()
			call.SentSeq, call.SentDst, call.SentBytes = seq+1, dstWorld, bytes
			r.abortIfFailed()
			r.clock.AdvanceTo(vtime.Time(req.time))
		}
	}
	r.endCall(call)
}

// Recv performs a blocking receive from src (rank in c, or AnySource) with
// the given tag (or AnyTag). It returns the resolved status.
func (r *Rank) Recv(c *Comm, src, tag int) Status {
	return r.recvInto(c, src, tag, nil)
}

// RecvBytes is Recv copying any payload into buf.
func (r *Rank) RecvBytes(c *Comm, src, tag int, buf []byte) Status {
	return r.recvInto(c, src, tag, buf)
}

func (r *Rank) recvInto(c *Comm, src, tag int, buf []byte) Status {
	call := &Call{Func: "MPI_Recv", Comm: c, Source: src, Tag: tag}
	r.beginCall(call)
	var st Status
	if src != ProcNull {
		w := r.world
		req := r.newRequest(reqRecv)
		req.describe(src, tag)
		pr := getPostedRecv()
		*pr = postedRecv{
			commID: c.id, src: src, tag: tag,
			postTime: r.clock.Now(), req: req, owner: r, buf: buf,
		}
		makeOp := func() PendingOp {
			op := r.pendingOp("")
			op.Peer, op.Tag = src, tag
			return op
		}
		ready := func() bool { return req.done }
		w.mu.Lock()
		w.postRecv(pr)
		w.waitCond(r, makeOp, ready)
		w.mu.Unlock()
		r.abortIfFailed()
		r.clock.AdvanceTo(vtime.Time(req.time))
		r.clock.Advance(w.cfg.Impl.CallOverhead())
		st = req.st
		call.RecvSrcWorld, call.RecvSeq = req.matchedSrc, req.matchedSeq
	}
	call.Bytes = st.Bytes
	call.SourceResolved = st.Source
	r.endCall(call)
	return st
}

// Isend starts a non-blocking send and returns its request.
func (r *Rank) Isend(c *Comm, dst, tag, bytes int) *Request {
	call := &Call{Func: "MPI_Isend", Comm: c, Dest: dst, Tag: tag, Bytes: bytes}
	r.beginCall(call)
	w := r.world
	req := r.newRequest(reqSend)
	if dst == ProcNull {
		req.done, req.nul = true, true
		req.time = float64(r.clock.Now())
	} else {
		req.describe(dst, tag)
		r.clock.Advance(w.cfg.Impl.CallOverhead())
		dstWorld := c.WorldRank(dst)
		m := r.buildMessage(c, dst, tag, bytes, nil, req)
		m.sender = r
		if m.eager {
			// Eager non-blocking sends complete immediately.
			req.done = true
			req.time = float64(r.clock.Now())
			m.sendReq = nil
		}
		w.mu.Lock()
		seq := w.postMessage(m)
		w.mu.Unlock()
		call.SentSeq, call.SentDst, call.SentBytes = seq+1, dstWorld, bytes
	}
	call.Request = req
	r.endCall(call)
	return req
}

// Irecv starts a non-blocking receive and returns its request.
func (r *Rank) Irecv(c *Comm, src, tag int) *Request {
	call := &Call{Func: "MPI_Irecv", Comm: c, Source: src, Tag: tag}
	r.beginCall(call)
	w := r.world
	req := r.newRequest(reqRecv)
	if src == ProcNull {
		req.done, req.nul = true, true
		req.time = float64(r.clock.Now())
	} else {
		req.describe(src, tag)
		r.clock.Advance(w.cfg.Impl.CallOverhead())
		pr := getPostedRecv()
		*pr = postedRecv{
			commID: c.id, src: src, tag: tag,
			postTime: r.clock.Now(), req: req, owner: r,
		}
		w.mu.Lock()
		w.postRecv(pr)
		w.mu.Unlock()
	}
	call.Request = req
	r.endCall(call)
	return req
}

// Wait blocks until the request completes and returns its status (zero for
// sends).
func (r *Rank) Wait(req *Request) Status {
	call := &Call{Func: "MPI_Wait", Request: req}
	r.beginCall(call)
	st := r.waitOne(req)
	call.Bytes = st.Bytes
	r.endCall(call)
	return st
}

// Waitall blocks until every request completes.
func (r *Rank) Waitall(reqs []*Request) {
	call := &Call{Func: "MPI_Waitall", Requests: reqs}
	r.beginCall(call)
	for _, req := range reqs {
		r.waitOne(req)
	}
	r.endCall(call)
}

func (r *Rank) waitOne(req *Request) Status {
	if req == nil {
		return Status{}
	}
	if req.owner != r.rank {
		panic(mpiErrorf(ErrRequest, r.rank, callName(r.curCall),
			"waiting on a request owned by rank %d", req.owner))
	}
	w := r.world
	makeOp := func() PendingOp {
		op := r.pendingOp(fmt.Sprintf("request #%d from %s", req.id, req.op))
		op.Peer, op.Tag = req.peer, req.tag
		if req.commID >= 0 {
			op.Comm = req.commID
		}
		return op
	}
	ready := func() bool { return req.done }
	w.mu.Lock()
	w.waitCond(r, makeOp, ready)
	w.mu.Unlock()
	r.abortIfFailed()
	r.clock.AdvanceTo(vtime.Time(req.time))
	r.clock.Advance(w.cfg.Impl.CallOverhead())
	st := req.st
	resetIfPersistent(req)
	return st
}

// Test reports whether the request has completed, without blocking. When it
// has, the rank's clock absorbs the completion time, as MPI_Test does.
func (r *Rank) Test(req *Request) (bool, Status) {
	call := &Call{Func: "MPI_Test", Request: req}
	r.beginCall(call)
	w := r.world
	w.mu.Lock()
	done := req.done
	w.mu.Unlock()
	r.clock.Advance(w.cfg.Impl.CallOverhead())
	var st Status
	if done {
		r.clock.AdvanceTo(vtime.Time(req.time))
		st = req.st
	}
	call.Bytes = st.Bytes
	call.Flag = done
	r.endCall(call)
	return done, st
}

// Sendrecv performs a combined send and receive, deadlock-free as per the
// standard (implemented as Isend+Irecv+Waitall internally, priced as one
// call).
func (r *Rank) Sendrecv(c *Comm, dst, sendTag, sendBytes, src, recvTag int) Status {
	call := &Call{
		Func: "MPI_Sendrecv", Comm: c,
		Dest: dst, Tag: sendTag, Bytes: sendBytes,
		Source: src, RecvTag: recvTag,
	}
	r.beginCall(call)
	w := r.world
	var sreq, rreq *Request
	if dst != ProcNull {
		sreq = r.newRequest(reqSend)
		sreq.describe(dst, sendTag)
		dstWorld := c.WorldRank(dst)
		m := r.buildMessage(c, dst, sendTag, sendBytes, nil, sreq)
		m.sender = r
		if m.eager {
			sreq.done = true
			sreq.time = float64(r.clock.Now())
			m.sendReq = nil
		}
		w.mu.Lock()
		seq := w.postMessage(m)
		w.mu.Unlock()
		call.SentSeq, call.SentDst, call.SentBytes = seq+1, dstWorld, sendBytes
	}
	if src != ProcNull {
		rreq = r.newRequest(reqRecv)
		rreq.describe(src, recvTag)
		pr := getPostedRecv()
		*pr = postedRecv{
			commID: c.id, src: src, tag: recvTag,
			postTime: r.clock.Now(), req: rreq, owner: r,
		}
		w.mu.Lock()
		w.postRecv(pr)
		w.mu.Unlock()
	}
	var st Status
	if sreq != nil {
		r.waitOne(sreq)
	}
	if rreq != nil {
		st = r.waitOne(rreq)
		call.RecvSrcWorld, call.RecvSeq = rreq.matchedSrc, rreq.matchedSeq
	}
	call.SourceResolved = st.Source
	call.RecvBytes = st.Bytes
	r.endCall(call)
	return st
}
