package mpi

import (
	"testing"

	"siesta/internal/perfmodel"
	"siesta/internal/vtime"
)

func TestIbarrierOverlapsComputation(t *testing.T) {
	// The point of a non-blocking barrier: computation issued after
	// Ibarrier proceeds while the barrier is pending, so the total time
	// is less than compute + (serialized) barrier wait.
	const P = 4
	nonblocking := func() vtime.Duration {
		w := newTestWorld(P)
		res, err := w.Run(func(r *Rank) {
			c := r.World()
			if r.Rank() == 0 {
				r.Compute(perfmodel.Kernel{IntOps: 2e9}) // straggler
			}
			req := r.Ibarrier(c)
			r.Compute(perfmodel.Kernel{IntOps: 1e9}) // overlapped work
			r.Wait(req)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}()
	blocking := func() vtime.Duration {
		w := newTestWorld(P)
		res, err := w.Run(func(r *Rank) {
			c := r.World()
			if r.Rank() == 0 {
				r.Compute(perfmodel.Kernel{IntOps: 2e9})
			}
			r.Barrier(c)
			r.Compute(perfmodel.Kernel{IntOps: 1e9})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}()
	if nonblocking >= blocking {
		t.Errorf("overlapped Ibarrier (%v) should beat blocking barrier (%v)", nonblocking, blocking)
	}
}

func TestIbcastIallreduce(t *testing.T) {
	w := newTestWorld(6)
	res, err := w.Run(func(r *Rank) {
		c := r.World()
		rb := r.Ibcast(c, 0, 4096)
		ra := r.Iallreduce(c, 64, OpSum)
		r.Compute(perfmodel.Kernel{IntOps: 1e7})
		r.Waitall([]*Request{rb, ra})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ranks {
		if res.Ranks[i].Calls != 3 {
			t.Errorf("rank %d made %d calls, want 3", i, res.Ranks[i].Calls)
		}
	}
}

func TestNonblockingCollectiveOrdering(t *testing.T) {
	// Blocking and non-blocking collectives on one communicator share the
	// sequencer; interleaving them in the same order on all ranks works.
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		r1 := r.Ibarrier(c)
		r.Allreduce(c, 8, OpSum)
		r2 := r.Ibcast(c, 0, 128)
		r.Wait(r1)
		r.Barrier(c)
		r.Wait(r2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIcollCompletionTime(t *testing.T) {
	// The request completes no earlier than the last rank's arrival.
	w := newTestWorld(2)
	var straggler, done vtime.Time
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 1 {
			r.Compute(perfmodel.Kernel{IntOps: 3e9})
			straggler = r.Now()
		}
		req := r.Ibarrier(c)
		st := r.Wait(req)
		_ = st
		if r.Rank() == 0 {
			done = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done < straggler {
		t.Errorf("rank 0 finished the barrier at %v before the straggler arrived at %v", done, straggler)
	}
}
