package mpi_test

// External test package: these tests record traces through the PMPI
// recorder, and internal/trace imports internal/mpi, so they cannot live in
// package mpi itself.

import (
	"bytes"
	"fmt"
	"testing"

	"siesta/internal/fault"
	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/trace"
	"siesta/internal/vtime"
)

// haloApp is a small but realistic SPMD program: neighbor exchange plus a
// global reduction per iteration.
func haloApp(iters int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		c := r.World()
		left := (r.Rank() + r.Size() - 1) % r.Size()
		right := (r.Rank() + 1) % r.Size()
		for i := 0; i < iters; i++ {
			r.Compute(perfmodel.Kernel{IntOps: 5e6, FPOps: 2e6})
			r.Sendrecv(c, right, 0, 4096, left, 0)
			r.Allreduce(c, 64, mpi.OpSum)
		}
	}
}

func tracedRun(t *testing.T, plan *fault.Plan, deadline vtime.Duration) ([]byte, *mpi.RunResult, error) {
	t.Helper()
	rec := trace.NewRecorder(4, trace.Config{})
	w := mpi.NewWorld(mpi.Config{
		Size: 4, Seed: 42, Interceptor: rec,
		Faults: plan, Deadline: deadline,
	})
	res, err := w.Run(haloApp(6))
	if err != nil {
		return nil, nil, err
	}
	return rec.Trace("A", "openmpi").Encode(), res, nil
}

func TestFaultPlanTraceDeterminism(t *testing.T) {
	// A perturbing-but-survivable plan: delays, a straggler, and chaos
	// delays. Identical plan + seed must reproduce the trace bit for bit.
	plan := &fault.Plan{
		Seed: 7,
		Delays: []fault.Delay{{
			Match: fault.Match{Src: fault.Any, Dst: fault.Any, Tag: fault.Any}, Factor: 3,
		}},
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 2}},
		Chaos:      &fault.Chaos{DelayProb: 0.5, DelayFactor: 4},
	}
	enc1, res1, err := tracedRun(t, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc2, res2, err := tracedRun(t, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("identical fault plan and seed produced different traces")
	}
	if res1.ExecTime != res2.ExecTime {
		t.Fatalf("identical fault plan and seed produced different times: %v vs %v",
			res1.ExecTime, res2.ExecTime)
	}

	// A different fault seed must actually change the outcome (otherwise
	// the chaos stream is not wired in).
	reseeded := *plan
	reseeded.Seed = 8
	_, res3, err := tracedRun(t, &reseeded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res3.ExecTime == res1.ExecTime {
		t.Error("changing the fault seed changed nothing; chaos decisions are not seeded")
	}
}

func TestNoPlanMatchesEmptyPlan(t *testing.T) {
	// No plan and an all-zero plan must leave existing traces unchanged.
	encNil, resNil, err := tracedRun(t, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	encEmpty, resEmpty, err := tracedRun(t, &fault.Plan{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encNil, encEmpty) {
		t.Fatal("an empty fault plan perturbed the trace")
	}
	if resNil.ExecTime != resEmpty.ExecTime {
		t.Fatalf("an empty fault plan perturbed execution: %v vs %v",
			resNil.ExecTime, resEmpty.ExecTime)
	}
}

// TestChaosModeNeverHangs is the robustness acceptance test: 100 seeded
// chaos runs with drops, delays and crashes. Every run must terminate with
// either success or a structured error — no panics (World.Run absorbs rank
// panics into errors) and no hangs (the deadlock detector plus the
// virtual-time deadline bound every schedule; the test binary's own timeout
// backstops that claim). Each seed is run twice to confirm the outcome is a
// pure function of the plan.
func TestChaosModeNeverHangs(t *testing.T) {
	outcome := func(seed uint64) (string, vtime.Duration) {
		plan := &fault.Plan{
			Seed: seed,
			Chaos: &fault.Chaos{
				DropProb:    0.01,
				DelayProb:   0.2,
				DelayFactor: 5,
				CrashProb:   0.002,
			},
		}
		w := mpi.NewWorld(mpi.Config{
			Size: 4, Seed: seed, Faults: plan,
			Deadline: vtime.Duration(60),
		})
		res, err := w.Run(haloApp(4))
		if err != nil {
			return fmt.Sprintf("error: %v", err), 0
		}
		return "ok", res.ExecTime
	}

	var ok, failed int
	for seed := uint64(1); seed <= 100; seed++ {
		o1, t1 := outcome(seed)
		o2, t2 := outcome(seed)
		// Fault decisions are seed-deterministic, so success/failure is
		// too. (Which rank reports a racy abort first is scheduling-
		// dependent, so only the successful runs' times are compared.)
		if (o1 == "ok") != (o2 == "ok") {
			t.Fatalf("seed %d: outcome flipped between runs: %q vs %q", seed, o1, o2)
		}
		if o1 == "ok" {
			ok++
			if t1 != t2 {
				t.Fatalf("seed %d: same plan, different times: %v vs %v", seed, t1, t2)
			}
		} else {
			failed++
		}
	}
	t.Logf("chaos: %d clean runs, %d structured failures", ok, failed)
	if ok == 0 || failed == 0 {
		t.Errorf("chaos probabilities degenerate: %d ok, %d failed — want a mix", ok, failed)
	}
}
