package mpi

import (
	"errors"
	"sync"
	"testing"

	"siesta/internal/netmodel"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/vtime"
)

func newTestWorld(size int) *World {
	return NewWorld(Config{Size: size})
}

func TestRingSendRecv(t *testing.T) {
	w := newTestWorld(4)
	res, err := w.Run(func(r *Rank) {
		c := r.World()
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		if r.Rank() == 0 {
			r.Send(c, next, 7, 128)
			r.Recv(c, prev, 7)
		} else {
			st := r.Recv(c, prev, 7)
			if st.Source != prev || st.Tag != 7 || st.Bytes != 128 {
				panic("bad status")
			}
			r.Send(c, next, 7, 128)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("execution should take virtual time")
	}
}

func TestPayloadDelivery(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.SendBytes(c, 1, 0, []byte("hello, rank 1"))
		} else {
			buf := make([]byte, 13)
			st := r.RecvBytes(c, 0, 0, buf)
			if string(buf) != "hello, rank 1" {
				panic("payload corrupted: " + string(buf))
			}
			if st.Bytes != 13 {
				panic("wrong byte count")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousBlocksUntilMatch(t *testing.T) {
	// A message above the eager threshold must synchronize sender and
	// receiver: the sender's completion time reflects the receiver's
	// late arrival.
	w := newTestWorld(2)
	big := netmodel.OpenMPI.EagerThreshold * 4
	var senderDone, recvPost vtime.Time
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Send(c, 1, 0, big)
			senderDone = r.Now()
		} else {
			r.Compute(perfmodel.Kernel{IntOps: 1e9}) // receiver is late
			recvPost = r.Now()
			r.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone < recvPost {
		t.Errorf("rendezvous sender finished at %v before receiver arrived at %v", senderDone, recvPost)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	w := newTestWorld(2)
	var senderDone, recvPost vtime.Time
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Send(c, 1, 0, 64) // tiny, eager
			senderDone = r.Now()
		} else {
			r.Compute(perfmodel.Kernel{IntOps: 1e9})
			recvPost = r.Now()
			r.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone >= recvPost {
		t.Errorf("eager sender at %v should not wait for receiver at %v", senderDone, recvPost)
	}
}

func TestVirtualTimeCausality(t *testing.T) {
	// The receiver can never finish the receive before the sender's data
	// could have arrived.
	w := newTestWorld(2)
	var sendReady, recvDone vtime.Time
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Compute(perfmodel.Kernel{IntOps: 5e8})
			r.Send(c, 1, 3, 256)
			sendReady = r.Now()
		} else {
			r.Recv(c, 0, 3)
			recvDone = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvDone < sendReady {
		t.Errorf("receive completed at %v before send was ready at %v", recvDone, sendReady)
	}
}

func TestNonblockingWaitall(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		var reqs []*Request
		for peer := 0; peer < r.Size(); peer++ {
			if peer == r.Rank() {
				continue
			}
			reqs = append(reqs, r.Irecv(c, peer, 1))
			reqs = append(reqs, r.Isend(c, peer, 1, 512))
		}
		r.Waitall(reqs)
		for _, q := range reqs {
			if !q.Done() {
				panic("request not done after Waitall")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newTestWorld(3)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		switch r.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				st := r.Recv(c, AnySource, AnyTag)
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				panic("wildcard receive missed a sender")
			}
		default:
			r.Send(c, 0, 10+r.Rank(), 64)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingPreserved(t *testing.T) {
	// MPI guarantees non-overtaking between a pair for a given tag.
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 1; i <= 5; i++ {
				r.Send(c, 1, 0, i*10)
			}
		} else {
			for i := 1; i <= 5; i++ {
				st := r.Recv(c, 0, 0)
				if st.Bytes != i*10 {
					panic("messages overtook each other")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		st := r.Sendrecv(c, next, 5, 1000, prev, 5)
		if st.Source != prev || st.Bytes != 1000 {
			panic("sendrecv status wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvLargeNoDeadlock(t *testing.T) {
	// Head-to-head rendezvous exchanges must not deadlock via Sendrecv.
	w := newTestWorld(2)
	big := netmodel.OpenMPI.EagerThreshold * 8
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		r.Sendrecv(c, other, 0, big, other, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProcNull(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		r.Send(c, ProcNull, 0, 1<<20)
		st := r.Recv(c, ProcNull, 0)
		if st.Bytes != 0 {
			panic("ProcNull recv should be empty")
		}
		req := r.Isend(c, ProcNull, 0, 64)
		r.Wait(req)
		st = r.Sendrecv(c, ProcNull, 0, 64, ProcNull, 0)
		if st.Bytes != 0 {
			panic("ProcNull sendrecv should be empty")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSynchronize(t *testing.T) {
	w := newTestWorld(8)
	res, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 3 {
			r.Compute(perfmodel.Kernel{IntOps: 2e9}) // straggler
		}
		r.Barrier(c)
		if r.Now() == 0 {
			panic("barrier should advance time")
		}
		r.Bcast(c, 0, 4096)
		r.Allreduce(c, 8, OpSum)
		r.Reduce(c, 0, 64, OpMax)
		r.Gather(c, 0, 128)
		r.Scatter(c, 0, 128)
		r.Allgather(c, 256)
		r.Alltoall(c, 64)
	})
	if err != nil {
		t.Fatal(err)
	}
	// After a barrier behind a straggler, everyone's finish time must be
	// at least the straggler's compute time.
	straggler := res.Ranks[3]
	for _, rr := range res.Ranks {
		if rr.FinishTime < straggler.FinishTime-vtime.Time(0.1*float64(straggler.FinishTime)) {
			t.Errorf("rank %d finished at %v, far before straggler %v", rr.Rank, rr.FinishTime, straggler.FinishTime)
		}
	}
}

func TestAlltoallvCountsValidation(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		if err := r.Alltoallv(r.World(), []int{1}); err != nil { // wrong length
			panic(err) // propagate: the run must fail with the MPIError
		}
	})
	if err == nil {
		t.Fatal("bad counts should abort the run")
	}
	var mpiErr *MPIError
	if !errors.As(err, &mpiErr) || mpiErr.Class != ErrCount {
		t.Fatalf("err = %v, want wrapped MPI_ERR_COUNT", err)
	}
	if mpiErr.Op != "MPI_Alltoallv" {
		t.Errorf("Op = %q", mpiErr.Op)
	}
}

func TestCommSplitDeterministicIDs(t *testing.T) {
	run := func() []int {
		w := newTestWorld(8)
		ids := make([]int, 8)
		_, err := w.Run(func(r *Rank) {
			sub := r.CommSplit(r.World(), r.Rank()%2, r.Rank())
			if sub == nil {
				panic("nil comm")
			}
			if sub.Size() != 4 {
				panic("split size wrong")
			}
			ids[r.Rank()] = sub.ID()
			// Even ranks got color 0 which is assigned the first id.
			r.Barrier(r.World())
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split comm ids nondeterministic at rank %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Color 0 members share one id, color 1 members another, and they differ.
	if a[0] != a[2] || a[1] != a[3] || a[0] == a[1] {
		t.Fatalf("split grouping wrong: %v", a)
	}
}

func TestCommSplitUndefined(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		color := 0
		if r.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := r.CommSplit(r.World(), color, 0)
		if r.Rank() == 3 && sub != nil {
			panic("undefined color should yield no communicator")
		}
		if r.Rank() != 3 && (sub == nil || sub.Size() != 3) {
			panic("defined colors should form a comm of 3")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommDupAndUse(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		dup := r.CommDup(r.World())
		if dup.Size() != 4 || dup.ID() == r.World().ID() {
			panic("dup should be same group, fresh id")
		}
		// Messages in the dup must not match receives on world.
		if r.Rank() == 0 {
			r.Send(dup, 1, 0, 32)
			r.Send(r.World(), 1, 0, 64)
		} else if r.Rank() == 1 {
			st := r.Recv(r.World(), 0, 0)
			if st.Bytes != 64 {
				panic("comm isolation violated")
			}
			st = r.Recv(dup, 0, 0)
			if st.Bytes != 32 {
				panic("dup message lost")
			}
		}
		r.CommFree(dup)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCommCollectives(t *testing.T) {
	w := newTestWorld(8)
	_, err := w.Run(func(r *Rank) {
		row := r.CommSplit(r.World(), r.Rank()/4, r.Rank())
		r.Allreduce(row, 64, OpSum)
		r.Barrier(row)
		r.Barrier(r.World())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestNonblocking(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			req := r.Irecv(c, 1, 0)
			done, _ := r.Test(req)
			_ = done // may or may not be done yet; must not block
			r.Wait(req)
			done, st := r.Test(req)
			if !done || st.Bytes != 48 {
				panic("Test after Wait should report completion")
			}
		} else {
			r.Send(c, 0, 0, 48)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagatesAsError(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		if r.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block; the failure must unblock them.
		r.Recv(r.World(), AnySource, 0)
	})
	if err == nil {
		t.Fatal("panic should surface as an error")
	}
}

func TestComputeAccumulatesCounters(t *testing.T) {
	w := newTestWorld(2)
	k := perfmodel.Kernel{IntOps: 1e6, Loads: 5e5, Stores: 2e5, Branches: 1e5}
	res, err := w.Run(func(r *Rank) {
		r.Compute(k)
		r.Compute(k)
		r.Barrier(r.World())
	})
	if err != nil {
		t.Fatal(err)
	}
	want := perfmodel.Measure(platform.A, k).Scale(2)
	for i := range res.Ranks {
		got := res.Ranks[i].Compute
		if got[perfmodel.INS] != want[perfmodel.INS] {
			t.Errorf("rank %d INS = %v, want %v", i, got[perfmodel.INS], want[perfmodel.INS])
		}
		if res.Ranks[i].ComputeTime <= 0 {
			t.Errorf("rank %d has no compute time", i)
		}
		if res.Ranks[i].Calls != 1 {
			t.Errorf("rank %d calls = %d, want 1", i, res.Ranks[i].Calls)
		}
	}
	tc := res.TotalCompute()
	if tc[perfmodel.INS] != 2*want[perfmodel.INS] {
		t.Error("TotalCompute wrong")
	}
}

func TestElapseAdvancesWithoutCounters(t *testing.T) {
	w := newTestWorld(1)
	res, err := w.Run(func(r *Rank) {
		r.Elapse(0.25)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime < 0.25 {
		t.Errorf("Elapse(0.25) gave exec time %v", res.ExecTime)
	}
	if res.Ranks[0].Compute != (perfmodel.Counters{}) {
		t.Error("Elapse should not record counters")
	}
}

func TestPlatformCapacityEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribing platform C should panic")
		}
	}()
	NewWorld(Config{Platform: platform.C, Size: platform.C.CoresPerNode + 1})
}

type countingInterceptor struct {
	NopInterceptor
	mu       sync.Mutex
	calls    map[string]int
	computes int
}

func (ci *countingInterceptor) AfterCall(r *Rank, call *Call) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	ci.calls[call.Func]++
	if call.End < call.Start {
		panic("call ends before it starts")
	}
}

func (ci *countingInterceptor) OnCompute(r *Rank, k perfmodel.Kernel, c perfmodel.Counters, start, end vtime.Time) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	ci.computes++
}

func TestInterceptorSeesEverything(t *testing.T) {
	ci := &countingInterceptor{calls: map[string]int{}}
	w := NewWorld(Config{Size: 2, Interceptor: ci})
	_, err := w.Run(func(r *Rank) {
		r.Compute(perfmodel.Kernel{IntOps: 100})
		if r.Rank() == 0 {
			r.Send(r.World(), 1, 0, 64)
		} else {
			r.Recv(r.World(), 0, 0)
		}
		r.Barrier(r.World())
	})
	if err != nil {
		t.Fatal(err)
	}
	if ci.calls["MPI_Send"] != 1 || ci.calls["MPI_Recv"] != 1 || ci.calls["MPI_Barrier"] != 2 {
		t.Errorf("interceptor missed calls: %v", ci.calls)
	}
	if ci.computes != 2 {
		t.Errorf("interceptor saw %d computes, want 2", ci.computes)
	}
}

func TestDeterministicExecTime(t *testing.T) {
	run := func() vtime.Duration {
		w := NewWorld(Config{Size: 8, NoiseSigma: 0.01, Seed: 11})
		res, err := w.Run(func(r *Rank) {
			c := r.World()
			for it := 0; it < 5; it++ {
				r.Compute(perfmodel.Kernel{IntOps: 1e7, Loads: 4e6, Stores: 2e6, Branches: 1e6, MissLines: 1e4})
				next := (r.Rank() + 1) % r.Size()
				prev := (r.Rank() - 1 + r.Size()) % r.Size()
				r.Sendrecv(c, next, it, 2048, prev, it)
				r.Allreduce(c, 8, OpSum)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave different exec times: %v vs %v", a, b)
	}
}

func TestWaitOnForeignRequestPanics(t *testing.T) {
	w := newTestWorld(2)
	share := make(chan *Request, 1)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			req := r.Isend(c, 1, 0, 1<<20)
			share <- req
			r.Wait(req)
		} else {
			foreign := <-share
			r.Wait(foreign) // must panic: requests are rank-local
		}
	})
	if err == nil {
		t.Fatal("waiting on a foreign request should abort")
	}
}

func TestWtime(t *testing.T) {
	w := newTestWorld(1)
	_, err := w.Run(func(r *Rank) {
		t0 := r.Wtime()
		r.Elapse(0.5)
		if r.Wtime()-t0 < 0.5 {
			panic("Wtime did not advance")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
