package mpi

import (
	"context"
	"errors"
	"testing"
)

// TestRunCancelRacesCompletion drives the window where the context fires
// while the ranks are finishing: Run's post-wait bookkeeping reads w.failed
// without holding w.mu, which is only safe because the context watcher is
// joined first. Run under -race this is a regression test for that join.
func TestRunCancelRacesCompletion(t *testing.T) {
	for i := 0; i < 300; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := NewWorld(Config{Size: 2, Ctx: ctx})
		go cancel()
		_, err := w.Run(func(r *Rank) {
			r.Barrier(r.World())
		})
		cancel()
		if err != nil {
			var ce *CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("iteration %d: want *CancelError, got %v", i, err)
			}
		}
	}
}
