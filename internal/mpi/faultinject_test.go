package mpi

import (
	"errors"
	"testing"

	"siesta/internal/fault"
	"siesta/internal/perfmodel"
	"siesta/internal/vtime"
)

// Tests for each fault kind injected through Config.Faults. The chaos-mode
// and trace-determinism tests live in determinism_test.go (external test
// package, so they can use the trace recorder).

func faultWorld(size int, p *fault.Plan) *World {
	return NewWorld(Config{Size: size, Faults: p})
}

// pingPong is a 2-rank app where rank 0 sends and rank 1 echoes.
func pingPong(rounds, bytes int) func(*Rank) {
	return func(r *Rank) {
		c := r.World()
		for i := 0; i < rounds; i++ {
			if r.Rank() == 0 {
				r.Send(c, 1, i, bytes)
				r.Recv(c, 1, i)
			} else {
				r.Recv(c, 0, i)
				r.Send(c, 0, i, bytes)
			}
		}
	}
}

func TestCrashLoud(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtCall: 3}}}
	_, err := faultWorld(2, plan).Run(pingPong(10, 64))
	var mpiErr *MPIError
	if !errors.As(err, &mpiErr) || mpiErr.Class != ErrProcFailed {
		t.Fatalf("loud crash returned %v, want MPIX_ERR_PROC_FAILED", err)
	}
	if mpiErr.Rank != 1 {
		t.Errorf("crash attributed to rank %d, want 1", mpiErr.Rank)
	}
}

func TestCrashSilent(t *testing.T) {
	// Rank 1 disappears without notification; rank 0 deadlocks waiting for
	// the echo, and the report names the crashed rank.
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtCall: 3, Silent: true}}}
	_, err := faultWorld(2, plan).Run(pingPong(10, 64))
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("silent crash returned %v, want a DeadlockError", err)
	}
	if len(dl.Crashed) != 1 || dl.Crashed[0] != 1 {
		t.Errorf("crashed ranks %v, want [1]", dl.Crashed)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0].Rank != 0 || dl.Blocked[0].Func != "MPI_Recv" {
		t.Errorf("blocked ops %v, want rank 0 stuck in MPI_Recv", dl.Blocked)
	}
}

func TestCrashSilentSurvivorsFinish(t *testing.T) {
	// The survivors never needed the crashed rank, so the run completes —
	// but a silently lost rank is still a failed job, reported post-hoc.
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtCall: 1, Silent: true}}}
	_, err := faultWorld(2, plan).Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Barrier(r.World()) // never reached: crash fires on call entry
		}
		// Rank 0 does pure computation; it notices nothing.
		r.Compute(perfmodel.Kernel{IntOps: 1e6})
	})
	var mpiErr *MPIError
	if !errors.As(err, &mpiErr) || mpiErr.Class != ErrProcFailed {
		t.Fatalf("lost rank returned %v, want MPIX_ERR_PROC_FAILED", err)
	}
}

func TestDropDeadlocks(t *testing.T) {
	// Every message from 0 to 1 vanishes: rank 1 never gets the ping and
	// rank 0 never gets the echo.
	plan := &fault.Plan{Drops: []fault.Drop{{Match: fault.Match{Src: 0, Dst: 1, Tag: fault.Any}}}}
	_, err := faultWorld(2, plan).Run(pingPong(10, 64))
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("dropped messages returned %v, want a DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked ops %v, want both ranks stuck", dl.Blocked)
	}
	if dl.Blocked[1].Func != "MPI_Recv" || dl.Blocked[1].Peer != 0 {
		t.Errorf("rank 1 pending %v, want MPI_Recv peer=0", dl.Blocked[1])
	}
}

func TestDropRendezvousSender(t *testing.T) {
	// A dropped rendezvous-sized send leaves the *sender* stuck in the
	// handshake too, and the report says so.
	plan := &fault.Plan{Drops: []fault.Drop{{Match: fault.Match{Src: 0, Dst: 1, Tag: fault.Any}}}}
	_, err := faultWorld(2, plan).Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Send(c, 1, 0, 1<<22) // rendezvous-sized
		} else {
			r.Recv(c, 0, 0)
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("dropped rendezvous returned %v, want a DeadlockError", err)
	}
	if len(dl.Blocked) != 2 || dl.Blocked[0].Func != "MPI_Send" {
		t.Errorf("blocked ops %v, want rank 0 stuck in MPI_Send", dl.Blocked)
	}
}

func TestDelaySlowsRun(t *testing.T) {
	app := pingPong(20, 1<<20)
	base, err := faultWorld(2, nil).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Delays: []fault.Delay{{
		Match: fault.Match{Src: fault.Any, Dst: fault.Any, Tag: fault.Any}, Factor: 10,
	}}}
	slow, err := faultWorld(2, plan).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ExecTime <= base.ExecTime {
		t.Errorf("10x wire delay ran in %v, baseline %v: delay had no effect",
			slow.ExecTime, base.ExecTime)
	}
}

func TestDelayAdditive(t *testing.T) {
	app := pingPong(5, 64)
	base, err := faultWorld(2, nil).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Delays: []fault.Delay{{
		Match: fault.Match{Src: fault.Any, Dst: fault.Any, Tag: fault.Any},
		Add:   vtime.Duration(0.01),
	}}}
	slow, err := faultWorld(2, plan).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	// 10 messages x 10ms of added latency dominates this tiny app.
	if slow.ExecTime < base.ExecTime+vtime.Duration(0.05) {
		t.Errorf("additive delay ran in %v, baseline %v", slow.ExecTime, base.ExecTime)
	}
}

func TestStragglerSlowsRank(t *testing.T) {
	app := func(r *Rank) {
		r.Compute(perfmodel.Kernel{IntOps: 1e9})
		r.Barrier(r.World())
	}
	base, err := faultWorld(4, nil).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Stragglers: []fault.Straggler{{Rank: 2, Factor: 4}}}
	slow, err := faultWorld(4, plan).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	// The barrier makes everyone wait for the straggler: the whole job
	// degrades to roughly the straggler's pace.
	if float64(slow.ExecTime) < 2*float64(base.ExecTime) {
		t.Errorf("4x straggler ran in %v, baseline %v: too little degradation",
			slow.ExecTime, base.ExecTime)
	}

	// Without synchronization only the straggler itself is late.
	noSync, err := faultWorld(4, plan).Run(func(r *Rank) {
		r.Compute(perfmodel.Kernel{IntOps: 1e9})
	})
	if err != nil {
		t.Fatal(err)
	}
	if float64(noSync.Ranks[2].FinishTime) < 2*float64(noSync.Ranks[0].FinishTime) {
		t.Errorf("straggler finished at %v vs rank 0 at %v, want ~4x",
			noSync.Ranks[2].FinishTime, noSync.Ranks[0].FinishTime)
	}
}

func TestEmptyPlanIsNoFault(t *testing.T) {
	app := pingPong(10, 256)
	base, err := faultWorld(2, nil).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	with, err := faultWorld(2, &fault.Plan{}).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if base.ExecTime != with.ExecTime {
		t.Errorf("empty plan changed execution: %v vs %v", with.ExecTime, base.ExecTime)
	}
}
