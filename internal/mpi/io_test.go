package mpi

import (
	"testing"

	"siesta/internal/vtime"
)

func TestFileOpenSharedHandle(t *testing.T) {
	w := newTestWorld(4)
	ids := make([]int, 4)
	_, err := w.Run(func(r *Rank) {
		f := r.FileOpen(r.World(), "out.dat")
		ids[r.Rank()] = f.ID()
		if f.Name() != "out.dat" {
			panic("file name lost")
		}
		r.FileClose(f)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatal("ranks should share one file handle per collective open")
		}
	}
}

func TestFileIDsDense(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		f1 := r.FileOpen(c, "a")
		f2 := r.FileOpen(c, "b")
		if f1.ID() != 0 || f2.ID() != 1 {
			panic("file ids should be dense in open order")
		}
		r.FileClose(f1)
		r.FileClose(f2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndependentWriteCost(t *testing.T) {
	w := newTestWorld(1)
	var small, large vtime.Duration
	_, err := w.Run(func(r *Rank) {
		f := r.FileOpen(r.World(), "x")
		t0 := r.Now()
		r.FileWriteAt(f, 0, 4096)
		small = r.Now().Sub(t0)
		t0 = r.Now()
		r.FileWriteAt(f, 4096, 64<<20)
		large = r.Now().Sub(t0)
		r.FileReadAt(f, 0, 4096)
		r.FileClose(f)
	})
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("64MB write (%v) should cost more than 4KB (%v)", large, small)
	}
	// 64 MB at ~1.2 GB/s ≈ 53 ms.
	if large.Seconds() < 0.02 || large.Seconds() > 0.2 {
		t.Errorf("64MB write cost %v implausible", large)
	}
}

func TestFilesystemContention(t *testing.T) {
	// Per-rank independent bandwidth shrinks as more ranks hammer the
	// shared filesystem.
	const chunk = 16 << 20
	perOp := func(ranks int) vtime.Duration {
		w := newTestWorld(ranks)
		var d vtime.Duration
		_, err := w.Run(func(r *Rank) {
			f := r.FileOpen(r.World(), "x")
			t0 := r.Now()
			r.FileWriteAt(f, r.Rank()*chunk, chunk)
			if r.Rank() == 0 {
				d = r.Now().Sub(t0)
			}
			r.FileClose(f)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if solo, crowded := perOp(1), perOp(16); crowded <= solo {
		t.Errorf("16-way contention (%v) should slow a write vs solo (%v)", crowded, solo)
	}
}

func TestCollectiveWriteBeatsContendedIndependent(t *testing.T) {
	// With many ranks, the two-phase collective path (full aggregate
	// bandwidth, one latency) beats contended independent streams.
	const P = 16
	const chunk = 16 << 20
	run := func(coll bool) vtime.Duration {
		w := newTestWorld(P)
		res, err := w.Run(func(r *Rank) {
			f := r.FileOpen(r.World(), "x")
			if coll {
				r.FileWriteAtAll(f, r.Rank()*chunk, chunk)
			} else {
				r.FileWriteAt(f, r.Rank()*chunk, chunk)
			}
			r.FileClose(f)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	indep, coll := run(false), run(true)
	if coll > indep {
		t.Errorf("collective write (%v) should not lose to contended independent (%v)", coll, indep)
	}
}

func TestWriteOnClosedFilePanics(t *testing.T) {
	w := newTestWorld(1)
	_, err := w.Run(func(r *Rank) {
		f := r.FileOpen(r.World(), "x")
		r.FileClose(f)
		r.FileWriteAt(f, 0, 16)
	})
	if err == nil {
		t.Fatal("write after close should abort the run")
	}
}
