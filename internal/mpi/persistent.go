package mpi

import (
	"siesta/internal/vtime"
)

// Persistent-request support (MPI_Send_init / MPI_Recv_init / MPI_Start /
// MPI_Request_free): production codes hoist fixed communication patterns
// into persistent requests, so a credible tracer must carry them. A
// persistent request binds the call parameters once; each Start activates
// one transfer; Wait completes the transfer and returns the request to the
// inactive (reusable) state instead of freeing it.

// persistentArgs stores the bound parameters of a persistent request.
type persistentArgs struct {
	comm  *Comm
	peer  int // dst for sends, src for receives
	tag   int
	bytes int
}

// SendInit creates an inactive persistent send request.
func (r *Rank) SendInit(c *Comm, dst, tag, bytes int) *Request {
	call := &Call{Func: "MPI_Send_init", Comm: c, Dest: dst, Tag: tag, Bytes: bytes}
	r.beginCall(call)
	req := r.newRequest(reqSend)
	req.describe(dst, tag)
	req.persistent = &persistentArgs{comm: c, peer: dst, tag: tag, bytes: bytes}
	req.done = true // inactive persistent requests are "complete"
	req.time = float64(r.clock.Now())
	r.clock.Advance(r.world.cfg.Impl.CallOverhead())
	call.Request = req
	r.endCall(call)
	return req
}

// RecvInit creates an inactive persistent receive request.
func (r *Rank) RecvInit(c *Comm, src, tag int) *Request {
	call := &Call{Func: "MPI_Recv_init", Comm: c, Source: src, Tag: tag}
	r.beginCall(call)
	req := r.newRequest(reqRecv)
	req.describe(src, tag)
	req.persistent = &persistentArgs{comm: c, peer: src, tag: tag}
	req.done = true
	req.time = float64(r.clock.Now())
	r.clock.Advance(r.world.cfg.Impl.CallOverhead())
	call.Request = req
	r.endCall(call)
	return req
}

// Start activates a persistent request, like Isend/Irecv with the bound
// parameters.
func (r *Rank) Start(req *Request) {
	if req == nil || req.persistent == nil {
		panic(mpiErrorf(ErrRequest, r.rank, "MPI_Start", "request is not persistent"))
	}
	if req.owner != r.rank {
		panic(mpiErrorf(ErrRequest, r.rank, "MPI_Start",
			"starting a request owned by rank %d", req.owner))
	}
	call := &Call{Func: "MPI_Start", Request: req}
	r.beginCall(call)
	w := r.world
	pa := req.persistent
	req.done = false
	req.st = Status{}
	r.clock.Advance(w.cfg.Impl.CallOverhead())
	if req.kind == reqSend {
		if pa.peer == ProcNull {
			req.done, req.nul = true, true
			req.time = float64(r.clock.Now())
		} else {
			dstWorld := pa.comm.WorldRank(pa.peer)
			m := r.buildMessage(pa.comm, pa.peer, pa.tag, pa.bytes, nil, req)
			m.sender = r
			if m.eager {
				req.done = true
				req.time = float64(r.clock.Now())
				m.sendReq = nil
			}
			w.mu.Lock()
			seq := w.postMessage(m)
			w.mu.Unlock()
			call.SentSeq, call.SentDst, call.SentBytes = seq+1, dstWorld, pa.bytes
		}
	} else {
		if pa.peer == ProcNull {
			req.done, req.nul = true, true
			req.time = float64(r.clock.Now())
		} else {
			pr := getPostedRecv()
			*pr = postedRecv{
				commID: pa.comm.id, src: pa.peer, tag: pa.tag,
				postTime: r.clock.Now(), req: req, owner: r,
			}
			w.mu.Lock()
			w.postRecv(pr)
			w.mu.Unlock()
		}
	}
	r.endCall(call)
}

// Startall activates a set of persistent requests.
func (r *Rank) Startall(reqs []*Request) {
	for _, req := range reqs {
		r.Start(req)
	}
}

// RequestFree releases a persistent request. (Non-persistent requests are
// freed implicitly by Wait, as in MPI.)
func (r *Rank) RequestFree(req *Request) {
	call := &Call{Func: "MPI_Request_free", Request: req}
	r.beginCall(call)
	r.clock.Advance(r.world.cfg.Impl.CallOverhead())
	req.persistent = nil
	r.endCall(call)
}

// resetIfPersistent returns a completed persistent request to the inactive
// state after a successful Wait, preserving its identity for the next Start.
func resetIfPersistent(req *Request) {
	if req != nil && req.persistent != nil {
		req.done = true // inactive again, immediately waitable
	}
}

var _ = vtime.Duration(0)
