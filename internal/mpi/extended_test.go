package mpi

import (
	"errors"
	"reflect"
	"testing"

	"siesta/internal/perfmodel"
	"siesta/internal/vtime"
)

func TestSsendSynchronizes(t *testing.T) {
	// Even a tiny Ssend must wait for the receiver.
	w := newTestWorld(2)
	var senderDone, recvPost vtime.Time
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Ssend(c, 1, 0, 8) // tiny, but synchronous mode
			senderDone = r.Now()
		} else {
			r.Compute(perfmodel.Kernel{IntOps: 1e9})
			recvPost = r.Now()
			r.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone < recvPost {
		t.Errorf("Ssend completed at %v before receiver arrived at %v", senderDone, recvPost)
	}
}

func TestProbeSeesWithoutConsuming(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			st := r.Probe(c, 1, 5)
			if st.Source != 1 || st.Tag != 5 || st.Bytes != 64 {
				panic("probe status wrong")
			}
			// The message must still be there.
			st = r.Recv(c, 1, 5)
			if st.Bytes != 64 {
				panic("probe consumed the message")
			}
		} else {
			r.Send(c, 0, 5, 64)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			found, _ := r.Iprobe(c, 1, 9)
			_ = found // may or may not have arrived; must not block
			r.Recv(c, 1, 9)
			found, st := r.Iprobe(c, 1, 9)
			if found || st.Bytes != 0 {
				panic("iprobe after consume should find nothing")
			}
		} else {
			r.Send(c, 0, 9, 32)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitany(t *testing.T) {
	w := newTestWorld(3)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r1 := r.Irecv(c, 1, 0)
			r2 := r.Irecv(c, 2, 0)
			idx, st := r.Waitany([]*Request{r1, r2})
			if idx < 0 || st.Bytes == 0 {
				panic("waitany resolved nothing")
			}
			// The other one still completes.
			other := r1
			if idx == 0 {
				other = r2
			}
			r.Wait(other)
		} else {
			r.Compute(perfmodel.Kernel{IntOps: int64(r.Rank()) * 1e8})
			r.Send(c, 0, 0, 100*r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyPicksEarliest(t *testing.T) {
	// Rank 1's message precedes rank 2's both virtually and causally
	// (rank 2 sends only after receiving rank 1's token): Waitany must
	// resolve to it.
	w := newTestWorld(3)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		switch r.Rank() {
		case 0:
			r1 := r.Irecv(c, 1, 0)
			r2 := r.Irecv(c, 2, 0)
			r.Compute(perfmodel.Kernel{IntOps: 5e9}) // let both arrive
			idx, st := r.Waitany([]*Request{r1, r2})
			if idx != 0 || st.Source != 1 {
				panic("waitany should resolve the earliest completion")
			}
			r.Wait(r2)
		case 1:
			r.Send(c, 0, 0, 8)
			r.Send(c, 2, 7, 8) // token: orders rank 2 behind rank 1
		case 2:
			r.Recv(c, 1, 7)
			r.Compute(perfmodel.Kernel{IntOps: 2e9})
			r.Send(c, 0, 0, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestall(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r1 := r.Irecv(c, 1, 0)
			r2 := r.Irecv(c, 1, 1)
			for !r.Testall([]*Request{r1, r2}) {
				r.Compute(perfmodel.Kernel{IntOps: 1e6})
			}
		} else {
			r.Send(c, 0, 0, 16)
			r.Send(c, 0, 1, 16)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanExscanReduceScatter(t *testing.T) {
	w := newTestWorld(8)
	res, err := w.Run(func(r *Rank) {
		c := r.World()
		r.Scan(c, 64, OpSum)
		r.Exscan(c, 64, OpSum)
		r.ReduceScatter(c, 128, OpMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("collectives should cost time")
	}
	for i := range res.Ranks {
		if res.Ranks[i].Calls != 3 {
			t.Errorf("rank %d made %d calls", i, res.Ranks[i].Calls)
		}
	}
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n, d int
		want []int
	}{
		{8, 3, []int{2, 2, 2}},
		{16, 2, []int{4, 4}},
		{12, 2, []int{4, 3}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.n, c.d)
		if err != nil {
			t.Fatalf("DimsCreate(%d,%d): %v", c.n, c.d, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("DimsCreate(%d,%d) = %v, want %v", c.n, c.d, got, c.want)
		}
		prod := 1
		for _, v := range got {
			prod *= v
		}
		if prod != c.n {
			t.Errorf("DimsCreate(%d,%d) does not cover: %v", c.n, c.d, got)
		}
	}
	for _, bad := range [][2]int{{0, 2}, {8, 0}, {-1, 3}} {
		var mpiErr *MPIError
		if _, err := DimsCreate(bad[0], bad[1]); !errors.As(err, &mpiErr) || mpiErr.Class != ErrDims {
			t.Errorf("DimsCreate(%d,%d) = %v, want MPI_ERR_DIMS", bad[0], bad[1], err)
		}
	}
}

func TestCartTopology(t *testing.T) {
	w := newTestWorld(12)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		cart, err := CartCreate(c, []int{4, 3}, []bool{true, false})
		if err != nil {
			panic(err)
		}
		coords := cart.Coords(r.Rank())
		if back := cart.RankOf(coords); back != r.Rank() {
			panic("coords round trip failed")
		}
		// Shift along the periodic dimension always resolves.
		src, dst := cart.Shift(r.Rank(), 0, 1)
		if src == ProcNull || dst == ProcNull {
			panic("periodic shift should wrap")
		}
		// Shift along the non-periodic dimension hits ProcNull at edges.
		_, dst1 := cart.Shift(r.Rank(), 1, 1)
		if coords[1] == 2 && dst1 != ProcNull {
			panic("non-periodic edge should be ProcNull")
		}
		// Use the topology for a real halo exchange.
		r.Sendrecv(c, dst, 0, 256, src, 0)
		_ = dst1
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCreateValidation(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		if _, err := CartCreate(r.World(), []int{3, 2}, nil); err == nil {
			panic("dims not covering size should error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
