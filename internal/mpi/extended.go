package mpi

import (
	"fmt"
	"math"

	"siesta/internal/netmodel"
	"siesta/internal/vtime"
)

// This file extends the runtime beyond the calls the paper's evaluation
// exercises, to the surface a production tracer meets in the wild:
// synchronous sends, probes, the full wait/test family, prefix-scan
// collectives, and Cartesian topology helpers.

// Ssend performs a synchronous-mode send: it completes only after the
// receiver has posted a matching receive, regardless of message size (the
// rendezvous path unconditionally).
func (r *Rank) Ssend(c *Comm, dst, tag, bytes int) {
	call := &Call{Func: "MPI_Ssend", Comm: c, Dest: dst, Tag: tag, Bytes: bytes}
	r.beginCall(call)
	if dst != ProcNull {
		w := r.world
		r.clock.Advance(w.cfg.Impl.CallOverhead())
		dstWorld := c.WorldRank(dst)
		m := r.buildMessage(c, dst, tag, bytes, nil, nil)
		m.eager = false // synchronous mode: always handshake
		req := r.newRequest(reqSend)
		req.describe(dst, tag)
		m.sendReq = req
		m.sender = r
		makeOp := func() PendingOp {
			op := r.pendingOp("synchronous handshake")
			op.Peer, op.Tag = dst, tag
			return op
		}
		ready := func() bool { return req.done }
		w.mu.Lock()
		seq := w.postMessage(m)
		w.waitCond(r, makeOp, ready)
		w.mu.Unlock()
		call.SentSeq, call.SentDst, call.SentBytes = seq+1, dstWorld, bytes
		r.abortIfFailed()
		r.clock.AdvanceTo(vtime.Time(req.time))
	}
	r.endCall(call)
}

// Probe blocks until a message matching (src, tag) is available without
// consuming it, and returns its status.
func (r *Rank) Probe(c *Comm, src, tag int) Status {
	call := &Call{Func: "MPI_Probe", Comm: c, Source: src, Tag: tag}
	r.beginCall(call)
	w := r.world
	probe := &postedRecv{
		commID: c.id, src: src, tag: tag,
		postTime: r.clock.Now(), owner: r,
	}
	var st Status
	makeOp := func() PendingOp {
		op := r.pendingOp("probing")
		op.Peer, op.Tag = src, tag
		return op
	}
	ready := func() bool { return w.findUnexpected(probe) != nil }
	w.mu.Lock()
	w.waitCond(r, makeOp, ready)
	if m := w.findUnexpected(probe); m != nil {
		st = Status{Source: m.srcComm, Tag: m.tag, Bytes: m.bytes}
		// The probe observes the message once it could have arrived.
		r.clock.AdvanceTo(resolveRecv(m, probe.postTime))
	}
	w.mu.Unlock()
	r.abortIfFailed()
	r.clock.Advance(w.cfg.Impl.CallOverhead())
	call.Bytes = st.Bytes
	call.SourceResolved = st.Source
	r.endCall(call)
	return st
}

// Iprobe reports whether a matching message is available, without blocking
// or consuming it.
func (r *Rank) Iprobe(c *Comm, src, tag int) (bool, Status) {
	call := &Call{Func: "MPI_Iprobe", Comm: c, Source: src, Tag: tag}
	r.beginCall(call)
	w := r.world
	probe := &postedRecv{
		commID: c.id, src: src, tag: tag,
		postTime: r.clock.Now(), owner: r,
	}
	var st Status
	found := false
	w.mu.Lock()
	if m := w.findUnexpected(probe); m != nil {
		found = true
		st = Status{Source: m.srcComm, Tag: m.tag, Bytes: m.bytes}
	}
	w.mu.Unlock()
	r.clock.Advance(w.cfg.Impl.CallOverhead())
	call.Bytes = st.Bytes
	call.Flag = found
	r.endCall(call)
	return found, st
}

// findUnexpected scans the caller's mailbox for the first match without
// consuming it. Caller holds w.mu.
func (w *World) findUnexpected(pr *postedRecv) *message {
	for _, m := range w.mailbox[pr.owner.rank] {
		if pr.matches(m) {
			return m
		}
	}
	return nil
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status. Among simultaneously completed requests it picks
// the one with the earliest virtual completion time, deterministically.
func (r *Rank) Waitany(reqs []*Request) (int, Status) {
	call := &Call{Func: "MPI_Waitany", Requests: reqs}
	r.beginCall(call)
	w := r.world
	idx := -1
	anyDone := func() bool {
		for _, req := range reqs {
			if req != nil && req.done {
				return true
			}
		}
		return false
	}
	w.mu.Lock()
	w.waitCond(r, func() PendingOp {
		return r.pendingOp(fmt.Sprintf("any of %d requests", len(reqs)))
	}, anyDone)
	best := math.Inf(1)
	for i, req := range reqs {
		if req != nil && req.done && req.time < best {
			best = req.time
			idx = i
		}
	}
	w.mu.Unlock()
	r.abortIfFailed()
	var st Status
	if idx >= 0 {
		req := reqs[idx]
		r.clock.AdvanceTo(vtime.Time(req.time))
		r.clock.Advance(w.cfg.Impl.CallOverhead())
		st = req.st
		call.CompletedIndex = idx
		call.Request = req
	}
	call.Bytes = st.Bytes
	r.endCall(call)
	return idx, st
}

// Testall reports whether every request has completed; when true the clock
// absorbs all completion times (like MPI_Testall with flag=true).
func (r *Rank) Testall(reqs []*Request) bool {
	call := &Call{Func: "MPI_Testall", Requests: reqs}
	r.beginCall(call)
	w := r.world
	w.mu.Lock()
	all := true
	for _, req := range reqs {
		if req != nil && !req.done {
			all = false
			break
		}
	}
	w.mu.Unlock()
	r.clock.Advance(w.cfg.Impl.CallOverhead())
	if all {
		for _, req := range reqs {
			if req != nil {
				r.clock.AdvanceTo(vtime.Time(req.time))
			}
		}
	}
	call.Flag = all
	r.endCall(call)
	return all
}

// Scan performs an inclusive prefix reduction over the communicator.
func (r *Rank) Scan(c *Comm, bytes int, op ReduceOp) {
	call := &Call{Func: "MPI_Scan", Comm: c, Bytes: bytes, Op: op}
	r.beginCall(call)
	r.collective(c, netmodel.Scan, bytes, [2]int{}, false)
	r.endCall(call)
}

// Exscan performs an exclusive prefix reduction over the communicator.
func (r *Rank) Exscan(c *Comm, bytes int, op ReduceOp) {
	call := &Call{Func: "MPI_Exscan", Comm: c, Bytes: bytes, Op: op}
	r.beginCall(call)
	r.collective(c, netmodel.Scan, bytes, [2]int{}, false)
	r.endCall(call)
}

// ReduceScatter reduces and scatters equal blocks; bytes is the per-rank
// block size.
func (r *Rank) ReduceScatter(c *Comm, bytes int, op ReduceOp) {
	call := &Call{Func: "MPI_Reduce_scatter", Comm: c, Bytes: bytes, Op: op}
	r.beginCall(call)
	r.collective(c, netmodel.ReduceScatter, bytes, [2]int{}, false)
	r.endCall(call)
}

// --- Cartesian topology helpers ---------------------------------------

// Cart is a Cartesian process topology over a communicator, the structure
// MPI_Cart_create provides. It is computed deterministically from the
// communicator, so every rank derives the same layout without exchange.
type Cart struct {
	Comm    *Comm
	Dims    []int
	Periods []bool
}

// DimsCreate factors nnodes into ndims balanced dimensions, largest first
// (the MPI_Dims_create contract). Non-positive arguments are an
// MPI_ERR_DIMS error.
func DimsCreate(nnodes, ndims int) ([]int, error) {
	if nnodes <= 0 || ndims <= 0 {
		return nil, mpiErrorf(ErrDims, -1, "MPI_Dims_create",
			"nnodes %d and ndims %d must be positive", nnodes, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Factorize, then assign factors in decreasing order to the currently
	// smallest dimension — the classic balancing heuristic.
	var factors []int
	n := nnodes
	for f := 2; n > 1; {
		if n%f == 0 {
			factors = append(factors, f)
			n /= f
		} else {
			f++
		}
	}
	for i := len(factors) - 1; i >= 0; i-- {
		small := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[small] {
				small = j
			}
		}
		dims[small] *= factors[i]
	}
	// Largest first.
	for i := 0; i < ndims; i++ {
		for j := i + 1; j < ndims; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims, nil
}

// CartCreate builds a Cartesian view of the communicator. The product of
// dims must equal the communicator size.
func CartCreate(c *Comm, dims []int, periodic []bool) (*Cart, error) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: cart dims %v do not cover comm size %d", dims, c.Size())
	}
	per := make([]bool, len(dims))
	copy(per, periodic)
	return &Cart{Comm: c, Dims: append([]int(nil), dims...), Periods: per}, nil
}

// Coords translates a comm rank to Cartesian coordinates (row-major, like
// MPI).
func (ct *Cart) Coords(rank int) []int {
	coords := make([]int, len(ct.Dims))
	for i := len(ct.Dims) - 1; i >= 0; i-- {
		coords[i] = rank % ct.Dims[i]
		rank /= ct.Dims[i]
	}
	return coords
}

// RankOf translates coordinates to a comm rank, honouring periodicity;
// out-of-range coordinates on non-periodic dimensions yield ProcNull.
func (ct *Cart) RankOf(coords []int) int {
	rank := 0
	for i, d := range ct.Dims {
		c := coords[i]
		if c < 0 || c >= d {
			if !ct.Periods[i] {
				return ProcNull
			}
			c = ((c % d) + d) % d
		}
		rank = rank*d + c
	}
	return rank
}

// Shift returns the (source, dest) ranks displaced along a dimension, the
// MPI_Cart_shift contract.
func (ct *Cart) Shift(rank, dim, disp int) (src, dst int) {
	coords := ct.Coords(rank)
	c := append([]int(nil), coords...)
	c[dim] = coords[dim] + disp
	dst = ct.RankOf(c)
	c[dim] = coords[dim] - disp
	src = ct.RankOf(c)
	return src, dst
}
