package mpi

import (
	"errors"
	"strings"
	"testing"

	"siesta/internal/perfmodel"
	"siesta/internal/vtime"
)

// These tests drive the wait-for deadlock detector. Every deadlocking case
// must return a structured DeadlockError instead of hanging the test
// binary; the near-miss cases must complete cleanly.

func TestDeadlockDetection(t *testing.T) {
	cases := []struct {
		name string
		size int
		fn   func(*Rank)
		// check inspects the structured error; nil means the run must
		// succeed.
		check func(t *testing.T, dl *DeadlockError)
	}{
		{
			name: "send-recv cycle",
			size: 2,
			fn: func(r *Rank) {
				// Both ranks receive first: the classic head-to-head
				// deadlock (each waits on a message the other has not
				// sent).
				c := r.World()
				other := 1 - r.Rank()
				r.Recv(c, other, 0)
				r.Send(c, other, 0, 64)
			},
			check: func(t *testing.T, dl *DeadlockError) {
				if len(dl.Blocked) != 2 {
					t.Fatalf("blocked ops = %v, want both ranks", dl.Blocked)
				}
				for i, op := range dl.Blocked {
					if op.Rank != i || op.Func != "MPI_Recv" || op.Peer != 1-i {
						t.Errorf("blocked[%d] = %v, want rank %d in MPI_Recv peer=%d",
							i, op, i, 1-i)
					}
				}
			},
		},
		{
			name: "mismatched collective order across comms",
			size: 2,
			fn: func(r *Rank) {
				// Rank 0 enters the barrier on the world comm, rank 1 on
				// the duplicate: neither collective can complete.
				c := r.World()
				d := r.CommDup(c)
				if r.Rank() == 0 {
					r.Barrier(c)
					r.Barrier(d)
				} else {
					r.Barrier(d)
					r.Barrier(c)
				}
			},
			check: func(t *testing.T, dl *DeadlockError) {
				if len(dl.Blocked) != 2 {
					t.Fatalf("blocked ops = %v, want both ranks", dl.Blocked)
				}
				for i, op := range dl.Blocked {
					if op.Func != "MPI_Barrier" {
						t.Errorf("blocked[%d] = %v, want MPI_Barrier", i, op)
					}
				}
				if dl.Blocked[0].Comm == dl.Blocked[1].Comm {
					t.Errorf("both ranks report comm %d; the report should show the mismatched communicators",
						dl.Blocked[0].Comm)
				}
			},
		},
		{
			name: "missing collective participant",
			size: 3,
			fn: func(r *Rank) {
				// Rank 2 leaves without joining the barrier.
				if r.Rank() == 2 {
					return
				}
				r.Barrier(r.World())
			},
			check: func(t *testing.T, dl *DeadlockError) {
				if len(dl.Blocked) != 2 {
					t.Fatalf("blocked ops = %v, want ranks 0 and 1", dl.Blocked)
				}
				for _, op := range dl.Blocked {
					if op.Func != "MPI_Barrier" || !strings.Contains(op.Detail, "2/3 arrived") {
						t.Errorf("blocked op %v, want MPI_Barrier with 2/3 arrived", op)
					}
				}
			},
		},
		{
			name: "wait on never-sent message",
			size: 2,
			fn: func(r *Rank) {
				// Rank 0 waits on an Irecv whose sender already finished.
				if r.Rank() == 0 {
					req := r.Irecv(r.World(), 1, 7)
					r.Wait(req)
				}
			},
			check: func(t *testing.T, dl *DeadlockError) {
				if len(dl.Blocked) != 1 {
					t.Fatalf("blocked ops = %v, want only rank 0", dl.Blocked)
				}
				op := dl.Blocked[0]
				if op.Rank != 0 || op.Func != "MPI_Wait" || op.Peer != 1 || op.Tag != 7 {
					t.Errorf("blocked op %v, want rank 0 MPI_Wait peer=1 tag=7", op)
				}
				if !strings.Contains(op.Detail, "MPI_Irecv") {
					t.Errorf("detail %q should name the originating MPI_Irecv", op.Detail)
				}
			},
		},
		{
			name: "wildcard recv near miss",
			size: 3,
			fn: func(r *Rank) {
				// Rank 0 blocks on a wildcard receive while both partners
				// are still computing: transiently everyone but rank 0 is
				// busy, then the messages arrive. Must NOT be reported.
				c := r.World()
				if r.Rank() == 0 {
					r.Recv(c, AnySource, AnyTag)
					r.Recv(c, AnySource, AnyTag)
				} else {
					r.Compute(perfmodel.Kernel{IntOps: int64(r.Rank()) * 1e8})
					r.Send(c, 0, r.Rank(), 1<<20) // rendezvous-sized
				}
			},
			check: nil,
		},
		{
			name: "eager completion before waiter wakes",
			size: 2,
			fn: func(r *Rank) {
				// Rank 1's eager send completes rank 0's request on rank
				// 1's own call path; rank 1 then finishes immediately. The
				// detector must see rank 0's predicate as satisfied even
				// while it is still marked blocked.
				c := r.World()
				if r.Rank() == 0 {
					req := r.Irecv(c, 1, 0)
					r.Wait(req)
				} else {
					r.Compute(perfmodel.Kernel{IntOps: 5e7})
					r.Send(c, 0, 0, 8)
				}
			},
			check: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := newTestWorld(tc.size).Run(tc.fn)
			if tc.check == nil {
				if err != nil {
					t.Fatalf("run should succeed, got %v", err)
				}
				return
			}
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("run returned %v, want a DeadlockError", err)
			}
			tc.check(t, dl)
		})
	}
}

func TestCollectiveOpMismatch(t *testing.T) {
	// Two ranks enter different collectives on the same communicator at the
	// same sequence number: an ordering bug MPI would corrupt data on. The
	// runtime raises MPI_ERR_COMM instead.
	_, err := newTestWorld(2).Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Barrier(c)
		} else {
			r.Allreduce(c, 64, OpSum)
		}
	})
	var mpiErr *MPIError
	if !errors.As(err, &mpiErr) || mpiErr.Class != ErrComm {
		t.Fatalf("mismatched collectives returned %v, want MPI_ERR_COMM", err)
	}
	if !strings.Contains(mpiErr.Msg, "mismatch") {
		t.Errorf("error %q should describe the mismatch", mpiErr.Msg)
	}
}

func TestDeadlineAbortsPolling(t *testing.T) {
	// A Test/compute polling loop never blocks, so the structural detector
	// cannot see it; the virtual-time deadline must end it.
	_, err := NewWorld(Config{Size: 2, Deadline: vtime.Duration(0.5)}).Run(func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Irecv(r.World(), 1, 0)
			for {
				if done, _ := r.Test(req); done {
					break
				}
				r.Compute(perfmodel.Kernel{IntOps: 1e7})
			}
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("deadline run returned %v, want a DeadlockError", err)
	}
	if !strings.Contains(dl.Reason, "deadline") {
		t.Errorf("reason %q should mention the deadline", dl.Reason)
	}
}

func TestDeadlineGenerousDoesNotTrip(t *testing.T) {
	_, err := NewWorld(Config{Size: 2, Deadline: vtime.Duration(1e6)}).Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Send(c, 1, 0, 64)
		} else {
			r.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatalf("generous deadline should not trip: %v", err)
	}
}
