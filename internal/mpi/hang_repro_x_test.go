package mpi

import (
	"testing"
	"time"

	"siesta/internal/fault"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
)

// Repro: rank 0 crashes loud before rank 1 enters a fresh collective.
// The slot is created after failLocked already ran, so nothing ever
// closes slot.done and World.Run hangs.
func TestHangReproCollectiveAfterAbort(t *testing.T) {
	w := NewWorld(Config{
		Platform: platform.A, Impl: netmodel.OpenMPI, Size: 2,
		Faults: &fault.Plan{Crashes: []fault.Crash{{Rank: 0, AtCall: 1}}},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(r *Rank) {
			if r.Rank() == 1 {
				time.Sleep(200 * time.Millisecond) // let rank 0's crash be recorded first
			}
			r.Barrier(r.World())
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("World.Run hung: rank 1 blocked forever in a collective created after abort")
	}
}
