// Package mpi is an in-process simulated MPI runtime: the substrate that
// replaces real MPI clusters in this reproduction. Ranks run as goroutines
// and communicate through a message router with true MPI matching semantics
// (communicator + source + tag, FIFO per channel, wildcards, eager vs
// rendezvous protocols, non-blocking requests, collectives). Time is
// virtual: each rank owns a vtime.Clock advanced by analytic cost models
// (package netmodel for communication, package perfmodel for computation),
// and causality flows across ranks through message timestamps. A PMPI-style
// Interceptor hook observes every call with full parameters, which is what
// the tracing layer (package trace) builds on — mirroring how the paper's
// tool interposes on real MPI via mpiP.
package mpi

import "fmt"

// Wildcards and special values mirroring the MPI standard.
const (
	AnySource = -1 // matches any sending rank (MPI_ANY_SOURCE)
	AnyTag    = -1 // matches any message tag (MPI_ANY_TAG)
	ProcNull  = -2 // send/recv to ProcNull is a no-op (MPI_PROC_NULL)
)

// Status describes a completed receive.
type Status struct {
	Source int // rank the message came from (in the receive's communicator)
	Tag    int
	Bytes  int
}

// Comm is a communicator: an ordered group of world ranks with a dense id.
// Comm values are created collectively and immutable afterwards, so they are
// shared read-only across ranks.
type Comm struct {
	id    int
	ranks []int // comm rank -> world rank
	index map[int]int
	inter bool // true if any pair of members crosses node boundaries
}

// ID reports the communicator's dense id (world is 0). The ids are assigned
// deterministically in collective creation order, which is what lets the
// trace layer's communicator pool reproduce them exactly.
func (c *Comm) ID() int { return c.id }

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.ranks[r] }

// RankOf translates a world rank to a communicator rank, or -1.
func (c *Comm) RankOf(world int) int {
	if r, ok := c.index[world]; ok {
		return r
	}
	return -1
}

func (c *Comm) contains(world int) bool { _, ok := c.index[world]; return ok }

// Request kinds.
const (
	reqSend = iota
	reqRecv
)

// Request is a handle for a pending non-blocking operation.
type Request struct {
	id    int // per-rank dense id, deterministic
	kind  int
	owner int // world rank that created it
	done  bool
	time  float64 // virtual completion time (vtime.Time), valid when done
	st    Status  // resolved status for receives
	nul   bool    // request on ProcNull, completes immediately

	// Diagnostic coordinates for deadlock reports: the operation that
	// created the request, its comm-rank partner (NoPeer for
	// collectives), tag, and communicator id.
	op     string
	peer   int
	tag    int
	commID int

	// persistent holds the bound parameters of a persistent request
	// (MPI_Send_init family); nil for ordinary requests.
	persistent *persistentArgs

	// Message-edge coordinates for the observability layer (package obs):
	// the sender's world rank and the channel sequence number (1-based;
	// 0 = none) of the message this receive request matched, written
	// under World.mu by completeMatch. Persistent receives keep the most
	// recent match — readers dedup by sequence number.
	matchedSrc int
	matchedSeq int
}

// Persistent reports whether the request is a persistent-communication
// handle (created by SendInit/RecvInit).
func (r *Request) Persistent() bool { return r.persistent != nil }

// ID reports the per-rank dense request id.
func (r *Request) ID() int { return r.id }

// Done reports whether the request has completed. It is only meaningful from
// the owning rank's goroutine.
func (r *Request) Done() bool { return r.done }

// MatchedMessage reports the message a completed receive request matched:
// the sender's world rank and the runtime-assigned per-(src,dst) channel
// sequence number. ok is false for send requests and receives that have
// not matched. Like Done, it is only meaningful from the owning rank's
// goroutine once the request has completed; persistent receives report
// their most recent match.
func (r *Request) MatchedMessage() (srcWorld, seq int, ok bool) {
	if r == nil || r.matchedSeq == 0 {
		return 0, 0, false
	}
	return r.matchedSrc, r.matchedSeq - 1, true
}

// ReduceOp names a reduction operator; the runtime carries no data so the
// operator is recorded for the trace but does not affect matching.
type ReduceOp string

// Common reduction operators.
const (
	OpSum ReduceOp = "sum"
	OpMax ReduceOp = "max"
	OpMin ReduceOp = "min"
)

func (c *Comm) String() string {
	return fmt.Sprintf("Comm#%d(size=%d)", c.id, len(c.ranks))
}
