package mpi

import (
	"siesta/internal/netmodel"
)

// Non-blocking collectives (MPI-3): the caller registers its arrival and
// receives a request that completes when every rank of the communicator has
// entered the operation. The collective sequencer is shared with the
// blocking path, so blocking and non-blocking collectives on one
// communicator stay totally ordered, as the standard requires.

// slotWaiter links a pending request to the rank to wake on completion.
type slotWaiter struct {
	req  *Request
	rank *Rank
}

// icollective registers arrival at a collective without blocking.
func (r *Rank) icollective(c *Comm, op netmodel.CollOp, bytes int) *Request {
	w := r.world
	seq := r.seqs[c.id]
	r.seqs[c.id] = seq + 1
	req := r.newRequest(reqRecv)
	r.clock.Advance(w.cfg.Impl.CallOverhead())

	w.mu.Lock()
	if w.aborted() {
		// Same guard as the blocking path: a slot created after
		// failLocked would never complete.
		w.mu.Unlock()
		r.abortIfFailed()
	}
	key := collKey{commID: c.id, seq: seq}
	slot := w.collectiveSlot(c, seq, op)
	slot.arrived++
	if t := r.clock.Now(); t > slot.maxIn {
		slot.maxIn = t
	}
	if bytes > slot.maxBytes {
		slot.maxBytes = bytes
	}
	slot.waiters = append(slot.waiters, slotWaiter{req: req, rank: r})
	if slot.arrived == slot.expected {
		w.finishCollective(c, key, slot)
	}
	w.mu.Unlock()
	return req
}

// Ibarrier starts a non-blocking barrier.
func (r *Rank) Ibarrier(c *Comm) *Request {
	call := &Call{Func: "MPI_Ibarrier", Comm: c}
	r.beginCall(call)
	req := r.icollective(c, netmodel.Barrier, 0)
	call.Request = req
	r.endCall(call)
	return req
}

// Ibcast starts a non-blocking broadcast.
func (r *Rank) Ibcast(c *Comm, root, bytes int) *Request {
	call := &Call{Func: "MPI_Ibcast", Comm: c, Root: root, Bytes: bytes}
	r.beginCall(call)
	req := r.icollective(c, netmodel.Bcast, bytes)
	call.Request = req
	r.endCall(call)
	return req
}

// Iallreduce starts a non-blocking allreduce.
func (r *Rank) Iallreduce(c *Comm, bytes int, op ReduceOp) *Request {
	call := &Call{Func: "MPI_Iallreduce", Comm: c, Bytes: bytes, Op: op}
	r.beginCall(call)
	req := r.icollective(c, netmodel.Allreduce, bytes)
	call.Request = req
	r.endCall(call)
	return req
}
