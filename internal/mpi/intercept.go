package mpi

import (
	"siesta/internal/perfmodel"
	"siesta/internal/vtime"
)

// Call carries the full parameter set of one MPI call, the analogue of what
// a PMPI wrapper sees. Fields are populated per function; unused fields stay
// at their zero values.
type Call struct {
	Func  string
	Start vtime.Time
	End   vtime.Time

	Comm    *Comm
	NewComm *Comm // result of Comm_split / Comm_dup

	Dest   int // destination comm rank for sends
	Source int // requested source (may be AnySource) for receives
	Tag    int
	Bytes  int

	// Sendrecv's receive half.
	RecvTag   int
	RecvBytes int

	// Resolved source for receives (differs from Source with AnySource).
	SourceResolved int

	Root   int
	Op     ReduceOp
	Counts []int // per-rank counts for v-variants

	Color, Key int // Comm_split arguments

	Request  *Request
	Requests []*Request // Waitall / Waitany / Testall

	// MPI-IO fields.
	File     *File
	FileName string
	Offset   int

	// CompletedIndex is the index Waitany resolved to.
	CompletedIndex int

	// Flag is the boolean outcome of Test/Testall/Iprobe, recorded by the
	// runtime so interceptors need not touch live request state from
	// outside the lock.
	Flag bool

	// Message-edge coordinates for the observability layer (package obs).
	// SentSeq/SentDst/SentBytes identify the point-to-point message this
	// call posted: the runtime's per-(src,dst) channel sequence number
	// (1-based; 0 = no message), the destination world rank, and the
	// message's size (Call.Bytes is the call argument, which persistent
	// MPI_Start does not carry). RecvSeq/RecvSrcWorld identify the message
	// a blocking receive completed. Wait-family calls expose completions
	// through Request.MatchedMessage instead.
	SentSeq, SentDst, SentBytes int
	RecvSeq, RecvSrcWorld       int
}

// Interceptor is the PMPI hook: it observes every MPI call on every rank and
// every computation region between calls. Methods are invoked on the calling
// rank's goroutine, so implementations may charge tracing overhead through
// Rank.AddOverhead and keep per-rank state without locking (indexed by
// r.Rank()).
type Interceptor interface {
	// BeforeCall fires on call entry, before any cost is charged.
	BeforeCall(r *Rank, call *Call)
	// AfterCall fires on call exit with Start/End populated.
	AfterCall(r *Rank, call *Call)
	// OnCompute fires after each computation region with its measured
	// counters. A zero kernel with zero counters reports an Elapse
	// (untimed sleep) region.
	OnCompute(r *Rank, k perfmodel.Kernel, c perfmodel.Counters, start, end vtime.Time)
}

// NopInterceptor is an Interceptor that does nothing; embed it to implement
// only the hooks you need.
type NopInterceptor struct{}

// BeforeCall implements Interceptor.
func (NopInterceptor) BeforeCall(*Rank, *Call) {}

// AfterCall implements Interceptor.
func (NopInterceptor) AfterCall(*Rank, *Call) {}

// OnCompute implements Interceptor.
func (NopInterceptor) OnCompute(*Rank, perfmodel.Kernel, perfmodel.Counters, vtime.Time, vtime.Time) {
}
