package mpi

import "testing"

func TestPersistentRequestLifecycle(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		var sreq, rreq *Request
		if r.Rank() == 0 {
			sreq = r.SendInit(c, other, 5, 2048)
			if !sreq.Persistent() {
				panic("SendInit should create a persistent request")
			}
		} else {
			rreq = r.RecvInit(c, other, 5)
		}
		for it := 0; it < 5; it++ {
			if r.Rank() == 0 {
				r.Start(sreq)
				r.Wait(sreq)
			} else {
				r.Start(rreq)
				st := r.Wait(rreq)
				if st.Bytes != 2048 || st.Source != 0 {
					panic("persistent receive resolved wrong status")
				}
			}
		}
		if r.Rank() == 0 {
			r.RequestFree(sreq)
			if sreq.Persistent() {
				panic("freed request should no longer be persistent")
			}
		} else {
			r.RequestFree(rreq)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentRendezvous(t *testing.T) {
	// Persistent sends above the eager threshold must synchronize per
	// Start like regular rendezvous transfers.
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		if r.Rank() == 0 {
			req := r.SendInit(c, other, 0, 1<<20)
			for it := 0; it < 3; it++ {
				r.Start(req)
				r.Wait(req)
			}
			r.RequestFree(req)
		} else {
			req := r.RecvInit(c, other, 0)
			for it := 0; it < 3; it++ {
				r.Start(req)
				r.Wait(req)
			}
			r.RequestFree(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStartOnOrdinaryRequestPanics(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			req := r.Irecv(c, 1, 0)
			r.Start(req) // must panic
			r.Wait(req)
		} else {
			r.Send(c, 0, 0, 8)
		}
	})
	if err == nil {
		t.Fatal("Start on ordinary request should abort")
	}
}

func TestStartallAndWaitall(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		reqs := []*Request{
			r.RecvInit(c, prev, 9),
			r.SendInit(c, next, 9, 512),
		}
		for it := 0; it < 4; it++ {
			r.Startall(reqs)
			r.Waitall(reqs)
		}
		r.RequestFree(reqs[0])
		r.RequestFree(reqs[1])
	})
	if err != nil {
		t.Fatal(err)
	}
}
