package mpi

import (
	"sync"

	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/vtime"
)

// Rank is one simulated MPI process. All methods must be called from the
// rank's own goroutine (the function passed to World.Run); the runtime
// enforces MPI's process-local semantics this way.
type Rank struct {
	world *World
	rank  int
	clock vtime.Clock
	cond  *sync.Cond // signaled when something this rank may wait on changes
	noise *perfmodel.Noise

	jitter float64 // run-to-run computation speed factor (1 = nominal)

	nextReqID int
	seqs      map[int]int // per-communicator collective sequence numbers

	// accumulated results
	commTime     vtime.Duration
	computeTime  vtime.Duration
	computeTotal perfmodel.Counters
	calls        int
}

// Rank reports this process's rank in the world communicator.
func (r *Rank) Rank() int { return r.rank }

// Size reports the world size.
func (r *Rank) Size() int { return r.world.cfg.Size }

// World returns the communicator containing all ranks (MPI_COMM_WORLD).
func (r *Rank) World() *Comm { return r.world.world }

// Now reports the rank's current virtual time.
func (r *Rank) Now() vtime.Time { return r.clock.Now() }

// Platform reports the hardware platform model this rank executes on.
func (r *Rank) Platform() *platform.Platform { return r.world.cfg.Platform }

// AddOverhead advances the rank's clock by d without counting it as either
// communication or computation. The tracing layer uses this to charge its
// own instrumentation cost, which is how the paper's "overhead" column is
// measured.
func (r *Rank) AddOverhead(d vtime.Duration) { r.clock.Advance(d) }

// Compute executes a computation region described by an abstract operation
// mix. The region's hardware counters are measured through the platform's
// performance model (with this rank's noise stream) and the clock advances
// by the measured cycle count. This is the boundary the tracer observes as a
// virtual MPI_Compute call.
func (r *Rank) Compute(k perfmodel.Kernel) perfmodel.Counters {
	start := r.clock.Now()
	c := perfmodel.MeasureNoisy(r.world.cfg.Platform, k, r.noise)
	// Counters are counts and stay exact; the jitter models frequency
	// wobble, which moves wall time but not retired-event counts.
	dt := vtime.Duration(r.world.cfg.Platform.CyclesToSeconds(c[perfmodel.CYC]) * r.jitter)
	r.clock.Advance(dt)
	r.computeTime += dt
	r.computeTotal.Add(c)
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.OnCompute(r, k, c, start, r.clock.Now())
	}
	return c
}

// Elapse advances the rank's clock by a fixed duration, modelling an
// untimed pause. Sleep-based proxy replays (the ScalaBench baseline) use it:
// unlike Compute, its duration is platform-independent by construction.
func (r *Rank) Elapse(d vtime.Duration) {
	start := r.clock.Now()
	r.clock.Advance(d)
	r.computeTime += d
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.OnCompute(r, perfmodel.Kernel{}, perfmodel.Counters{}, start, r.clock.Now())
	}
}

// newRequest allocates a deterministic per-rank request.
func (r *Rank) newRequest(kind int) *Request {
	req := &Request{id: r.nextReqID, kind: kind, owner: r.rank}
	r.nextReqID++
	return req
}

// beginCall notes a call start for the interceptor and accounting.
func (r *Rank) beginCall(call *Call) {
	call.Start = r.clock.Now()
	r.calls++
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.BeforeCall(r, call)
	}
}

// endCall notes a call end.
func (r *Rank) endCall(call *Call) {
	call.End = r.clock.Now()
	r.commTime += call.End.Sub(call.Start)
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.AfterCall(r, call)
	}
}

// abortIfFailed panics if another rank already tore the world down, so that
// blocked ranks unwind promptly. The panic is absorbed by World.Run.
func (r *Rank) abortIfFailed() {
	if r.world.aborted() {
		panic("run aborted by failure on another rank")
	}
}
