package mpi

import (
	"fmt"
	"sync"

	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/vtime"
)

// Rank is one simulated MPI process. All methods must be called from the
// rank's own goroutine (the function passed to World.Run); the runtime
// enforces MPI's process-local semantics this way.
type Rank struct {
	world *World
	rank  int
	clock vtime.Clock
	cond  *sync.Cond // signaled when something this rank may wait on changes
	noise *perfmodel.Noise

	jitter   float64 // run-to-run computation speed factor (1 = nominal)
	straggle float64 // fault-injected computation slowdown (1 = nominal)

	nextReqID int
	seqs      map[int]int // per-communicator collective sequence numbers

	// curCall is the MPI call the rank is currently inside (set by
	// beginCall, read only from the rank's own goroutine); the deadlock
	// detector's pending-operation records are built from it.
	curCall *Call

	// Deadlock-detector state, guarded by world.mu.
	state   rankState
	pending func() PendingOp
	ready   func() bool

	// accumulated results
	commTime     vtime.Duration
	computeTime  vtime.Duration
	computeTotal perfmodel.Counters
	calls        int
}

// Rank reports this process's rank in the world communicator.
func (r *Rank) Rank() int { return r.rank }

// Size reports the world size.
func (r *Rank) Size() int { return r.world.cfg.Size }

// World returns the communicator containing all ranks (MPI_COMM_WORLD).
func (r *Rank) World() *Comm { return r.world.world }

// Now reports the rank's current virtual time.
func (r *Rank) Now() vtime.Time { return r.clock.Now() }

// Platform reports the hardware platform model this rank executes on.
func (r *Rank) Platform() *platform.Platform { return r.world.cfg.Platform }

// AddOverhead advances the rank's clock by d without counting it as either
// communication or computation. The tracing layer uses this to charge its
// own instrumentation cost, which is how the paper's "overhead" column is
// measured.
func (r *Rank) AddOverhead(d vtime.Duration) { r.clock.Advance(d) }

// Compute executes a computation region described by an abstract operation
// mix. The region's hardware counters are measured through the platform's
// performance model (with this rank's noise stream) and the clock advances
// by the measured cycle count. This is the boundary the tracer observes as a
// virtual MPI_Compute call.
func (r *Rank) Compute(k perfmodel.Kernel) perfmodel.Counters {
	start := r.clock.Now()
	c := perfmodel.MeasureNoisy(r.world.cfg.Platform, k, r.noise)
	// Counters are counts and stay exact; the jitter models frequency
	// wobble, which moves wall time but not retired-event counts. A
	// fault-injected straggler factor slows wall time the same way.
	dt := vtime.Duration(r.world.cfg.Platform.CyclesToSeconds(c[perfmodel.CYC]) * r.jitter * r.straggle)
	r.clock.Advance(dt)
	r.checkDeadline()
	r.computeTime += dt
	r.computeTotal.Add(c)
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.OnCompute(r, k, c, start, r.clock.Now())
	}
	return c
}

// Elapse advances the rank's clock by a fixed duration, modelling an
// untimed pause. Sleep-based proxy replays (the ScalaBench baseline) use it:
// unlike Compute, its duration is platform-independent by construction.
func (r *Rank) Elapse(d vtime.Duration) {
	start := r.clock.Now()
	r.clock.Advance(d)
	r.checkDeadline()
	r.computeTime += d
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.OnCompute(r, perfmodel.Kernel{}, perfmodel.Counters{}, start, r.clock.Now())
	}
}

// newRequest allocates a deterministic per-rank request, stamped with the
// creating call's name and communicator for deadlock diagnostics.
func (r *Rank) newRequest(kind int) *Request {
	req := &Request{id: r.nextReqID, kind: kind, owner: r.rank, peer: NoPeer, tag: AnyTag, commID: -1}
	r.nextReqID++
	if c := r.curCall; c != nil {
		req.op = c.Func
		if c.Comm != nil {
			req.commID = c.Comm.id
		}
	}
	return req
}

// describe records a request's point-to-point partner for deadlock
// diagnostics; peer is a comm rank, AnySource, or ProcNull.
func (req *Request) describe(peer, tag int) {
	req.peer, req.tag = peer, tag
}

// beginCall notes a call start for the interceptor and accounting. It is
// also the fault plan's call-granularity trigger point: a scheduled rank
// crash fires here, before the call does anything.
func (r *Rank) beginCall(call *Call) {
	call.Start = r.clock.Now()
	r.calls++
	r.curCall = call
	if plan := r.world.cfg.Faults; plan != nil {
		if cr, ok := plan.CrashAt(r.rank, r.calls, r.clock.Now()); ok {
			panic(&crashPanic{op: call.Func, call: r.calls, silent: cr.Silent})
		}
	}
	r.checkDeadline()
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.BeforeCall(r, call)
	}
}

// endCall notes a call end.
func (r *Rank) endCall(call *Call) {
	call.End = r.clock.Now()
	r.curCall = nil
	r.commTime += call.End.Sub(call.Start)
	if ic := r.world.cfg.Interceptor; ic != nil {
		ic.AfterCall(r, call)
	}
}

// checkDeadline aborts the run once the rank's virtual clock passes the
// configured budget, reporting whatever the other ranks were blocked on.
// It doubles as the cancellation poll for running ranks: it is invoked at
// every MPI call and computation region, so a context cancellation (or any
// other failure) recorded by failLocked unwinds this rank at its next
// event instead of letting it run to completion.
func (r *Rank) checkDeadline() {
	if r.world.aborted() {
		panic(errAborted)
	}
	d := r.world.cfg.Deadline
	if d <= 0 || vtime.Duration(r.clock.Now()) <= d {
		return
	}
	w := r.world
	w.mu.Lock()
	w.failLocked(&DeadlockError{
		Reason: fmt.Sprintf("virtual-time deadline %v exceeded on rank %d in %s",
			d, r.rank, callName(r.curCall)),
		Blocked: w.blockedOpsLocked(),
	})
	w.mu.Unlock()
	panic(errAborted)
}

// callName names a possibly-nil call, for deadline reports raised from
// computation regions.
func callName(c *Call) string {
	if c == nil {
		return "a computation region"
	}
	return c.Func
}

// pendingOp builds the deadlock-detector record for the rank's current
// blocking call. Peer and Tag default to "none"; blocking sites override
// them for point-to-point operations.
func (r *Rank) pendingOp(detail string) PendingOp {
	op := PendingOp{Rank: r.rank, Func: callName(r.curCall), Comm: -1, Peer: NoPeer, Detail: detail}
	if c := r.curCall; c != nil && c.Comm != nil {
		op.Comm = c.Comm.id
	}
	return op
}

// abortIfFailed panics if another rank already tore the world down, so that
// blocked ranks unwind promptly. The panic is absorbed by World.Run.
func (r *Rank) abortIfFailed() {
	if r.world.aborted() {
		panic(errAborted)
	}
}
