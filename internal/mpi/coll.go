package mpi

import (
	"fmt"

	"siesta/internal/netmodel"
	"siesta/internal/vtime"
)

// collective runs the shared synchronization for one collective instance:
// all ranks of c must call it with the same sequence number; the slot
// completes when the last rank arrives, and every rank leaves at
// max(arrival times) + modelled cost. A rank arriving with a different
// operation than the slot's (two ranks disagreeing on the collective call
// sequence) raises an MPIError instead of silently merging the calls.
func (r *Rank) collective(c *Comm, op netmodel.CollOp, bytes int, split [2]int, isSplit bool) *collSlot {
	w := r.world
	seq := r.seqs[c.id]
	r.seqs[c.id] = seq + 1

	w.mu.Lock()
	if w.aborted() {
		// The job already failed. Entering anyway would create a fresh
		// slot after failLocked closed the existing ones — a slot nothing
		// will ever complete — so unwind before touching w.colls.
		w.mu.Unlock()
		r.abortIfFailed()
	}
	key := collKey{commID: c.id, seq: seq}
	slot := w.collectiveSlot(c, seq, op)
	if slot.op != op {
		w.mu.Unlock()
		panic(mpiErrorf(ErrComm, r.rank, callName(r.curCall),
			"collective mismatch on comm %d seq %d: %v arrives while %v is in progress",
			c.id, seq, op, slot.op))
	}
	slot.arrived++
	if t := r.clock.Now(); t > slot.maxIn {
		slot.maxIn = t
	}
	if bytes > slot.maxBytes {
		slot.maxBytes = bytes
	}
	if isSplit {
		if slot.splitArgs == nil {
			slot.splitArgs = map[int][2]int{}
		}
		slot.splitArgs[r.rank] = split
	}
	if slot.arrived == slot.expected {
		w.finishCollective(c, key, slot)
	} else {
		w.blockLocked(r, collPendingOp(r, c, seq, slot),
			func() bool { return slot.completed })
		w.checkDeadlockLocked()
	}
	w.mu.Unlock()
	<-slot.done
	w.mu.Lock()
	w.resumeLocked(r)
	w.mu.Unlock()
	r.abortIfFailed()
	r.clock.AdvanceTo(slot.outTime)
	return slot
}

// collPendingOp describes a rank blocked in a collective for the deadlock
// detector. The closure reads the slot's arrival count when the report is
// produced (under w.mu), so late arrivers are reflected.
func collPendingOp(r *Rank, c *Comm, seq int, slot *collSlot) func() PendingOp {
	return func() PendingOp {
		op := r.pendingOp(fmt.Sprintf("seq %d, %d/%d arrived", seq, slot.arrived, slot.expected))
		op.Comm = c.id
		return op
	}
}

// Barrier blocks until all ranks of c have entered it.
func (r *Rank) Barrier(c *Comm) {
	call := &Call{Func: "MPI_Barrier", Comm: c}
	r.beginCall(call)
	r.collective(c, netmodel.Barrier, 0, [2]int{}, false)
	r.endCall(call)
}

// Bcast broadcasts bytes from root to all ranks of c.
func (r *Rank) Bcast(c *Comm, root, bytes int) {
	call := &Call{Func: "MPI_Bcast", Comm: c, Root: root, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Bcast, bytes, [2]int{}, false)
	r.endCall(call)
}

// Reduce reduces bytes from all ranks of c onto root with the given op.
func (r *Rank) Reduce(c *Comm, root, bytes int, op ReduceOp) {
	call := &Call{Func: "MPI_Reduce", Comm: c, Root: root, Bytes: bytes, Op: op}
	r.beginCall(call)
	r.collective(c, netmodel.Reduce, bytes, [2]int{}, false)
	r.endCall(call)
}

// Allreduce reduces bytes across all ranks of c, leaving the result
// everywhere.
func (r *Rank) Allreduce(c *Comm, bytes int, op ReduceOp) {
	call := &Call{Func: "MPI_Allreduce", Comm: c, Bytes: bytes, Op: op}
	r.beginCall(call)
	r.collective(c, netmodel.Allreduce, bytes, [2]int{}, false)
	r.endCall(call)
}

// Gather gathers bytes per rank onto root.
func (r *Rank) Gather(c *Comm, root, bytes int) {
	call := &Call{Func: "MPI_Gather", Comm: c, Root: root, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Gather, bytes, [2]int{}, false)
	r.endCall(call)
}

// Scatter scatters bytes per rank from root.
func (r *Rank) Scatter(c *Comm, root, bytes int) {
	call := &Call{Func: "MPI_Scatter", Comm: c, Root: root, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Scatter, bytes, [2]int{}, false)
	r.endCall(call)
}

// Allgather gathers bytes per rank to all ranks.
func (r *Rank) Allgather(c *Comm, bytes int) {
	call := &Call{Func: "MPI_Allgather", Comm: c, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Allgather, bytes, [2]int{}, false)
	r.endCall(call)
}

// Alltoall exchanges bytes with every rank of c.
func (r *Rank) Alltoall(c *Comm, bytes int) {
	call := &Call{Func: "MPI_Alltoall", Comm: c, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Alltoall, bytes*c.Size(), [2]int{}, false)
	r.endCall(call)
}

// Alltoallv exchanges per-destination byte counts with every rank of c;
// counts[i] is the byte count this rank sends to comm rank i. A counts
// vector that does not cover the communicator is an MPI_ERR_COUNT error,
// returned without entering the collective (so the other ranks deadlock
// on the missing participant rather than the process dying).
func (r *Rank) Alltoallv(c *Comm, counts []int) error {
	if len(counts) != c.Size() {
		return mpiErrorf(ErrCount, r.rank, "MPI_Alltoallv",
			"counts length %d != comm size %d", len(counts), c.Size())
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	call := &Call{Func: "MPI_Alltoallv", Comm: c, Bytes: total, Counts: append([]int(nil), counts...)}
	r.beginCall(call)
	r.collective(c, netmodel.Alltoall, total, [2]int{}, false)
	r.endCall(call)
	return nil
}

// Allgatherv gathers per-rank byte counts to all ranks; bytes is this rank's
// contribution.
func (r *Rank) Allgatherv(c *Comm, bytes int) {
	call := &Call{Func: "MPI_Allgatherv", Comm: c, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Allgather, bytes, [2]int{}, false)
	r.endCall(call)
}

// Gatherv gathers a variable per-rank byte count onto root.
func (r *Rank) Gatherv(c *Comm, root, bytes int) {
	call := &Call{Func: "MPI_Gatherv", Comm: c, Root: root, Bytes: bytes}
	r.beginCall(call)
	r.collective(c, netmodel.Gather, bytes, [2]int{}, false)
	r.endCall(call)
}

// CommSplit partitions c by color; ranks sharing a color form a new
// communicator ordered by key then world rank. A negative color returns nil
// (MPI_UNDEFINED). New communicator ids are assigned deterministically.
func (r *Rank) CommSplit(c *Comm, color, key int) *Comm {
	call := &Call{Func: "MPI_Comm_split", Comm: c, Color: color, Key: key}
	r.beginCall(call)
	slot := r.collective(c, netmodel.Barrier, 0, [2]int{color, key}, true)
	nc := slot.newComms[r.rank]
	call.NewComm = nc
	r.endCall(call)
	return nc
}

// CommDup duplicates c with a fresh id.
func (r *Rank) CommDup(c *Comm) *Comm {
	call := &Call{Func: "MPI_Comm_dup", Comm: c}
	r.beginCall(call)
	slot := r.collective(c, netmodel.Barrier, 0, [2]int{0, c.RankOf(r.rank)}, true)
	nc := slot.newComms[r.rank]
	call.NewComm = nc
	r.endCall(call)
	return nc
}

// CommFree releases a communicator handle. The simulated runtime keeps no
// per-comm state worth reclaiming, but the call is intercepted so the trace
// layer can recycle its communicator pool ids, as the paper requires.
func (r *Rank) CommFree(c *Comm) {
	call := &Call{Func: "MPI_Comm_free", Comm: c}
	r.beginCall(call)
	r.clock.Advance(r.world.cfg.Impl.CallOverhead())
	r.endCall(call)
}

// Wtime mirrors MPI_Wtime: the rank's virtual time in seconds.
func (r *Rank) Wtime() float64 { return float64(r.clock.Now()) }

var _ = vtime.Duration(0)
