package mpi

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"siesta/internal/fault"
	"siesta/internal/netmodel"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/vtime"
)

// Config describes one simulated execution environment.
type Config struct {
	Platform *platform.Platform // hardware model (defaults to platform.A)
	Impl     *netmodel.Impl     // MPI implementation model (defaults to OpenMPI)
	Size     int                // number of ranks
	// NoiseSigma is the relative stddev of performance-counter readings;
	// 0 means exact counters.
	NoiseSigma float64
	// RunVariation is the relative stddev of run-to-run environmental
	// variation: each rank's computation speed and the job's network
	// weather draw deterministic multiplicative factors from Seed. Two
	// runs with different seeds behave like two real cluster jobs; 0
	// makes runs with equal configuration bit-identical.
	RunVariation float64
	// Seed decorrelates noise and jitter streams across runs.
	Seed uint64
	// Interceptor, when set, observes every MPI call and computation
	// region (the PMPI hook).
	Interceptor Interceptor
	// Faults, when non-nil and non-empty, injects the plan's failures
	// (rank crashes, message drops and delays, stragglers, chaos) into
	// the run. All injection is deterministic in the plan and its seed;
	// a nil or empty plan leaves the run bit-identical to an unfaulted
	// one.
	Faults *fault.Plan
	// Deadline, when positive, bounds each rank's virtual time: the run
	// aborts with a DeadlockError once any rank's clock passes it. It
	// backstops livelocks (e.g. MPI_Test polling loops) that the
	// structural deadlock detector cannot see.
	Deadline vtime.Duration
	// Ctx, when non-nil, bounds the run in wall-clock terms: canceling it
	// (or passing its deadline) tears the run down promptly — blocked
	// ranks are woken and running ranks stop at their next MPI call or
	// computation region — and Run returns a *CancelError matching
	// ErrCanceled. A nil Ctx never cancels.
	Ctx context.Context
}

// World is one simulated MPI job: a set of ranks, their message router and
// collective sequencer, and the accumulated per-rank results.
type World struct {
	cfg        Config
	commJitter float64 // per-run network weather factor
	mu         sync.Mutex
	ranks      []*Rank

	// Message routing state, all guarded by mu.
	mailbox [][]*message    // unexpected messages per destination world rank
	posted  [][]*postedRecv // posted receives per destination world rank
	colls   map[collKey]*collSlot

	world      *Comm
	nextCommID int
	nextFileID int

	// msgSeq counts point-to-point messages per (src, dst) channel so
	// fault decisions are deterministic in send order; nil when no fault
	// plan is active.
	msgSeq *chanCounter

	// msgCount numbers every point-to-point message per (src, dst)
	// channel in post order, independent of the fault plan's counter:
	// the observability layer joins send and receive events into message
	// edges by (src, dst, seq). Guarded by mu.
	msgCount *chanCounter

	failed error
	// stop mirrors failed != nil as an atomic flag so rank goroutines can
	// poll for teardown (abortIfFailed, per-call cancellation checks)
	// without taking w.mu on the hot path.
	stop atomic.Bool
}

// rankState tracks where a rank is for the deadlock detector.
type rankState int

const (
	rsRunning  rankState = iota
	rsBlocked            // inside a blocking MPI call, wait condition unmet
	rsFinished           // returned from the app function
	rsCrashed            // removed by a silent fault-injected crash
)

// message is one in-flight point-to-point message.
type message struct {
	commID    int
	srcComm   int // source rank in the communicator
	dstWorld  int
	srcWorld  int
	tag       int
	bytes     int
	seq       int // per-(src,dst) channel number, assigned at post time
	payload   []byte
	eager     bool
	readyTime vtime.Time     // when the sender's data became available
	wire      vtime.Duration // transfer duration once underway
	sendReq   *Request       // resolves when transfer completes (rendezvous)
	sender    *Rank          // for waking a blocked rendezvous sender
}

// postedRecv is a receive waiting for a matching message.
type postedRecv struct {
	commID   int
	src      int // comm rank or AnySource
	tag      int // or AnyTag
	postTime vtime.Time
	req      *Request
	owner    *Rank
	buf      []byte
}

// message and postedRecv structs churn once per point-to-point call, which
// at 64 ranks is the dominant allocation inside w.mu. Both have a clean
// lifetime: a matched (message, postedRecv) pair dies inside
// postMessage/postRecv the moment completeMatch returns, so the match
// functions recycle them there — under w.mu, after the last field read.
// Callers follow one discipline: once a struct is posted it is never
// touched again (postMessage returns the assigned seq so senders do not
// read m.seq afterwards). Structs that never reach a match — mailbox
// residue at teardown, probe templates — simply fall to the GC; recycling
// is an optimization, never an obligation.
var msgPool = sync.Pool{New: func() any { return new(message) }}

func getMessage() *message  { return msgPool.Get().(*message) }
func putMessage(m *message) { *m = message{}; msgPool.Put(m) }

var prPool = sync.Pool{New: func() any { return new(postedRecv) }}

func getPostedRecv() *postedRecv   { return prPool.Get().(*postedRecv) }
func putPostedRecv(pr *postedRecv) { *pr = postedRecv{}; prPool.Put(pr) }

// flatChanCutoff is the world size up to which per-channel message
// counters use a dense size×size array instead of a map: one indexed add
// per message instead of a map probe inside w.mu. 256 ranks cost 512KiB
// per counter, well under the per-rank goroutine stacks at that scale.
const flatChanCutoff = 256

// chanCounter numbers messages per directed (src, dst) channel.
type chanCounter struct {
	size int
	flat []int          // dense counters when size <= flatChanCutoff
	m    map[[2]int]int // fallback for very large worlds
}

func newChanCounter(size int) *chanCounter {
	cc := &chanCounter{size: size}
	if size <= flatChanCutoff {
		cc.flat = make([]int, size*size)
	} else {
		cc.m = make(map[[2]int]int)
	}
	return cc
}

// next returns the channel's current count and increments it. Caller holds
// w.mu.
func (cc *chanCounter) next(src, dst int) int {
	if cc.flat != nil {
		i := src*cc.size + dst
		n := cc.flat[i]
		cc.flat[i] = n + 1
		return n
	}
	n := cc.m[[2]int{src, dst}]
	cc.m[[2]int{src, dst}] = n + 1
	return n
}

type collKey struct {
	commID int
	seq    int
}

// collSlot synchronizes one collective operation instance.
type collSlot struct {
	expected  int
	arrived   int
	maxIn     vtime.Time
	maxBytes  int
	op        netmodel.CollOp
	done      chan struct{}
	outTime   vtime.Time
	completed bool // set (under w.mu) when done is closed by completion
	// split bookkeeping
	splitArgs map[int][2]int // world rank -> (color, key)
	newComms  map[int]*Comm  // world rank -> resulting comm
	// file-open bookkeeping: the handle shared by the group
	sharedFile *File
	// non-blocking collective requests resolved at completion
	waiters []slotWaiter
}

// NewWorld creates a simulated MPI job. It panics on invalid configuration
// because a bad config is a programming error in the harness, not a runtime
// condition.
func NewWorld(cfg Config) *World {
	if cfg.Platform == nil {
		cfg.Platform = platform.A
	}
	if cfg.Impl == nil {
		cfg.Impl = netmodel.OpenMPI
	}
	if cfg.Size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", cfg.Size)) //ranklock:ok — programmer error, precedes any rank goroutine
	}
	if max := cfg.Platform.MaxRanks(); max > 0 && cfg.Size > max {
		panic(fmt.Sprintf("mpi: platform %s hosts at most %d ranks, requested %d", //ranklock:ok — programmer error, precedes any rank goroutine
			cfg.Platform.Name, max, cfg.Size))
	}
	if cfg.Faults.Empty() {
		cfg.Faults = nil // empty plans skip all fault bookkeeping
	}
	w := &World{
		cfg:        cfg,
		commJitter: perfmodel.JitterFactor(cfg.RunVariation, cfg.Seed^0xc0111d),
		mailbox:    make([][]*message, cfg.Size),
		posted:     make([][]*postedRecv, cfg.Size),
		colls:      make(map[collKey]*collSlot),
		msgCount:   newChanCounter(cfg.Size),
		nextCommID: 1,
	}
	if cfg.Faults != nil {
		w.msgSeq = newChanCounter(cfg.Size)
	}
	ranks := make([]int, cfg.Size)
	for i := range ranks {
		ranks[i] = i
	}
	w.world = w.newComm(0, ranks)
	w.ranks = make([]*Rank, cfg.Size)
	for i := 0; i < cfg.Size; i++ {
		w.ranks[i] = &Rank{
			world:    w,
			rank:     i,
			noise:    perfmodel.NewNoise(cfg.NoiseSigma, cfg.Seed^uint64(i)*0x9e3779b97f4a7c15+uint64(i)),
			jitter:   perfmodel.JitterFactor(cfg.RunVariation, cfg.Seed+0x7e57*uint64(i+1)),
			straggle: cfg.Faults.SlowdownFor(i),
			seqs:     map[int]int{},
		}
		w.ranks[i].cond = sync.NewCond(&w.mu)
	}
	return w
}

func (w *World) newComm(id int, worldRanks []int) *Comm {
	c := &Comm{id: id, ranks: worldRanks, index: make(map[int]int, len(worldRanks))}
	for i, wr := range worldRanks {
		c.index[wr] = i
	}
	for _, wr := range worldRanks {
		if !w.cfg.Platform.SameNode(worldRanks[0], wr) {
			c.inter = true
			break
		}
	}
	return c
}

// Size reports the number of ranks in the world.
func (w *World) Size() int { return w.cfg.Size }

// Platform reports the hardware platform model.
func (w *World) Platform() *platform.Platform { return w.cfg.Platform }

// Impl reports the MPI implementation model.
func (w *World) Impl() *netmodel.Impl { return w.cfg.Impl }

// RankResult is one rank's outcome of a run.
type RankResult struct {
	Rank        int
	FinishTime  vtime.Time         // rank-local virtual time at Finalize
	CommTime    vtime.Duration     // virtual time spent inside MPI calls
	Compute     perfmodel.Counters // accumulated computation counters
	ComputeTime vtime.Duration     // virtual time spent in computation regions
	Calls       int                // number of MPI calls issued
}

// RunResult aggregates a completed run.
type RunResult struct {
	Ranks    []RankResult
	ExecTime vtime.Duration // max finish time across ranks
}

// TotalCompute sums computation counters across all ranks.
func (r *RunResult) TotalCompute() perfmodel.Counters {
	var c perfmodel.Counters
	for i := range r.Ranks {
		c.Add(r.Ranks[i].Compute)
	}
	return c
}

// Run executes the SPMD function on every rank and returns the per-rank
// results. A rank failure — a panic, an MPIError raised by the runtime, a
// fault-injected crash, or a detected deadlock — aborts the run and is
// reported as a structured error: panics carrying an error value (the
// idiom for propagating typed errors out of the SPMD function) are wrapped
// with %w so errors.As sees through them.
func (w *World) Run(app func(r *Rank)) (*RunResult, error) {
	var watchStop, watcherDone chan struct{}
	if ctx := w.cfg.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, &CancelError{Cause: context.Cause(ctx)}
		}
		// The watcher turns a context event into the standard teardown
		// path: failLocked wakes every blocked rank, and running ranks
		// notice the stop flag at their next call or computation region.
		watchStop = make(chan struct{})
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				w.mu.Lock()
				w.failLocked(&CancelError{Cause: context.Cause(ctx)})
				w.mu.Unlock()
			case <-watchStop:
			}
		}()
	}
	var wg sync.WaitGroup
	wg.Add(w.cfg.Size)
	for i := 0; i < w.cfg.Size; i++ {
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				p := recover()
				w.mu.Lock()
				defer w.mu.Unlock()
				switch pv := p.(type) {
				case nil:
					r.state = rsFinished
				case *crashPanic:
					if pv.silent {
						r.state = rsCrashed
					} else {
						r.state = rsCrashed
						w.failLocked(mpiErrorf(ErrProcFailed, r.rank, pv.op,
							"rank killed by fault plan at call %d", pv.call))
					}
				case error:
					r.state = rsFinished
					if pv != errAborted {
						w.failLocked(fmt.Errorf("mpi: rank %d failed: %w", r.rank, pv))
					}
				default:
					r.state = rsFinished
					w.failLocked(fmt.Errorf("mpi: rank %d panicked: %v", r.rank, p))
				}
				w.checkDeadlockLocked()
			}()
			app(r)
		}(w.ranks[i])
	}
	wg.Wait()
	// Join the watcher before touching w.failed: it may be mid-failLocked
	// when the context deadline races the ranks finishing, and the reads
	// and writes below run without w.mu.
	if watchStop != nil {
		close(watchStop)
		<-watcherDone
	}
	if w.failed == nil {
		// A silent crash whose survivors all finished still failed the
		// job; real MPI would have hung in MPI_Finalize.
		for _, r := range w.ranks {
			if r.state == rsCrashed {
				w.failed = mpiErrorf(ErrProcFailed, r.rank, "",
					"rank silently crashed by fault plan")
				break
			}
		}
	}
	if w.failed != nil {
		return nil, w.failed
	}
	res := &RunResult{Ranks: make([]RankResult, w.cfg.Size)}
	for i, r := range w.ranks {
		res.Ranks[i] = RankResult{
			Rank:        i,
			FinishTime:  r.clock.Now(),
			CommTime:    r.commTime,
			Compute:     r.computeTotal,
			ComputeTime: r.computeTime,
			Calls:       r.calls,
		}
		if vtime.Duration(res.Ranks[i].FinishTime) > res.ExecTime {
			res.ExecTime = vtime.Duration(res.Ranks[i].FinishTime)
		}
	}
	return res, nil
}

// aborted reports whether the run has failed; blocked ranks poll this after
// wakeups so a panic on one rank unblocks the others. It reads the atomic
// mirror of w.failed so call sites outside w.mu (and the per-call
// cancellation checks) stay race-free.
func (w *World) aborted() bool { return w.stop.Load() }

// failLocked records the run's first failure and wakes every blocked rank
// so the job tears down promptly. Later failures are ignored (first error
// wins, as with MPI_Abort racing). Caller holds w.mu.
func (w *World) failLocked(err error) {
	if w.failed != nil {
		return
	}
	w.failed = err
	w.stop.Store(true)
	for _, r := range w.ranks {
		r.cond.Broadcast()
	}
	for _, slot := range w.colls {
		select {
		case <-slot.done:
		default:
			close(slot.done)
		}
	}
}

// blockLocked marks the rank blocked on op. ready is the operation's
// enabling predicate, evaluated under w.mu by the deadlock detector: a
// blocked rank whose predicate already holds is merely not yet scheduled,
// not stuck. op is also evaluated under w.mu, and only when a report is
// actually produced, so its description (e.g. collective arrival counts)
// reflects the state at report time, not at block time. Caller holds w.mu.
func (w *World) blockLocked(r *Rank, op func() PendingOp, ready func() bool) {
	r.state = rsBlocked
	r.pending = op
	r.ready = ready
}

// resumeLocked clears the rank's blocked record. Caller holds w.mu.
func (w *World) resumeLocked(r *Rank) {
	r.state = rsRunning
	r.pending = nil
	r.ready = nil
}

// waitCond blocks the rank until ready() holds or the run aborts,
// maintaining the wait-for bookkeeping the deadlock detector reads. makeOp
// is only invoked if the rank actually blocks, keeping the fast path free
// of diagnostic formatting. Caller holds w.mu.
func (w *World) waitCond(r *Rank, makeOp func() PendingOp, ready func() bool) {
	if ready() || w.aborted() {
		return
	}
	w.blockLocked(r, makeOp, ready)
	w.checkDeadlockLocked()
	for !ready() && !w.aborted() {
		r.cond.Wait()
	}
	w.resumeLocked(r)
}

// checkDeadlockLocked declares a deadlock when no rank can make progress:
// every rank is blocked (with its enabling predicate false), finished, or
// crashed, and at least one is blocked. The runtime has no external event
// sources — message delivery and collective completion happen
// synchronously under w.mu on some rank's call path — so this condition
// is stable: nothing will ever wake a blocked rank again. It runs on
// every rank state transition, making detection immediate rather than
// timeout-based. Caller holds w.mu.
func (w *World) checkDeadlockLocked() {
	if w.failed != nil {
		return
	}
	var blocked []PendingOp
	var crashed []int
	for _, r := range w.ranks {
		switch r.state {
		case rsRunning:
			return
		case rsBlocked:
			if r.ready != nil && r.ready() {
				return // enabled transition: the rank just hasn't woken yet
			}
			blocked = append(blocked, r.pending())
		case rsCrashed:
			crashed = append(crashed, r.rank)
		}
	}
	if len(blocked) == 0 {
		return
	}
	reason := "no rank can make progress"
	if len(crashed) > 0 {
		reason = "no surviving rank can make progress"
	}
	w.failLocked(&DeadlockError{Reason: reason, Blocked: blocked, Crashed: crashed})
}

// blockedOpsLocked snapshots the pending operations of currently blocked
// ranks, for deadline reports. Ranks whose enabling predicate already
// holds are merely unscheduled, not stuck, and are omitted. Caller holds
// w.mu.
func (w *World) blockedOpsLocked() []PendingOp {
	var ops []PendingOp
	for _, r := range w.ranks {
		if r.state == rsBlocked && r.pending != nil && (r.ready == nil || !r.ready()) {
			ops = append(ops, r.pending())
		}
	}
	return ops
}

// routeFaults applies the fault plan to an outgoing message: it may be
// dropped (never delivered) or have its wire time stretched. Returns
// false when the message is dropped. Caller holds w.mu; the per-channel
// sequence number makes decisions deterministic in send order.
func (w *World) routeFaults(m *message) bool {
	plan := w.cfg.Faults
	if plan == nil {
		return true
	}
	n := w.msgSeq.next(m.srcWorld, m.dstWorld)
	if plan.DropMessage(m.srcWorld, m.dstWorld, m.tag, n) {
		return false
	}
	m.wire = plan.DelayFor(m.srcWorld, m.dstWorld, m.tag, n, m.wire)
	return true
}

// collectiveSlot returns (creating if needed) the slot for a collective
// instance. Caller holds w.mu.
func (w *World) collectiveSlot(c *Comm, seq int, op netmodel.CollOp) *collSlot {
	key := collKey{commID: c.id, seq: seq}
	slot, ok := w.colls[key]
	if !ok {
		slot = &collSlot{
			expected: len(c.ranks),
			op:       op,
			done:     make(chan struct{}),
		}
		w.colls[key] = slot
	}
	return slot
}

// finishCollective completes a slot once all ranks have arrived.
// Caller holds w.mu.
func (w *World) finishCollective(c *Comm, key collKey, slot *collSlot) {
	cost := w.cfg.Impl.CollectiveCost(w.cfg.Platform, slot.op, slot.maxBytes, len(c.ranks), c.inter)
	cost = vtime.Duration(float64(cost) * w.commJitter)
	slot.outTime = slot.maxIn.Add(cost)
	if slot.splitArgs != nil {
		w.resolveSplit(c, slot)
	}
	for _, sw := range slot.waiters {
		sw.req.done = true
		sw.req.time = float64(slot.outTime)
		sw.rank.cond.Broadcast()
	}
	delete(w.colls, key)
	slot.completed = true
	close(slot.done)
}

// resolveSplit groups split participants by color, orders them by key then
// world rank, and assigns new communicator ids deterministically in
// ascending color order. Caller holds w.mu.
func (w *World) resolveSplit(c *Comm, slot *collSlot) {
	byColor := map[int][]int{} // color -> world ranks
	var colors []int
	for wr, ck := range slot.splitArgs {
		color := ck[0]
		if color < 0 { // MPI_UNDEFINED: rank gets no communicator
			continue
		}
		if _, ok := byColor[color]; !ok {
			colors = append(colors, color)
		}
		byColor[color] = append(byColor[color], wr)
	}
	sort.Ints(colors)
	slot.newComms = map[int]*Comm{}
	for _, color := range colors {
		members := byColor[color]
		sort.Slice(members, func(i, j int) bool {
			ki, kj := slot.splitArgs[members[i]][1], slot.splitArgs[members[j]][1]
			if ki != kj {
				return ki < kj
			}
			return members[i] < members[j]
		})
		nc := w.newComm(w.nextCommID, members)
		w.nextCommID++
		for _, wr := range members {
			slot.newComms[wr] = nc
		}
	}
}
