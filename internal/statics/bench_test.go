package statics_test

import (
	"testing"
	"time"

	"siesta/internal/apps"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/statics"
	"siesta/internal/trace"
)

// BenchmarkAnalyzeVsReplay is the ISSUE's performance gate: analyzing the
// 64-rank CG grammar must be at least 10× faster than replaying the run
// under an obs.Timeline and deriving the same totals. The assertion runs
// inside the benchmark (like BenchmarkTracingOverhead), so CI's bench smoke
// fails on a regression even at -benchtime=1x.
func BenchmarkAnalyzeVsReplay(b *testing.B) {
	const ranks, iters = 64, 2
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	build := func() func(*mpi.Rank) {
		fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: iters})
		if err != nil {
			b.Fatal(err)
		}
		return fn
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: testNoise, Seed: testSeed})
	if _, err := w.Run(build()); err != nil {
		b.Fatal(err)
	}
	prog, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
	if err != nil {
		b.Fatal(err)
	}

	replay := func() {
		tl := obs.New().NewTimeline("replay", ranks)
		w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: tl, NoiseSigma: testNoise, Seed: testSeed})
		if _, err := w.Run(build()); err != nil {
			b.Fatal(err)
		}
		if tot := tl.MessageTotals(); len(tot) == 0 {
			b.Fatal("replay produced no messages")
		}
	}
	analyze := func() {
		rep, err := statics.Analyze(prog, nil, statics.Options{ExactBytes: true})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Complete {
			b.Fatal("incomplete analysis")
		}
	}

	minTime := func(fn func(), n int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	replayTime := minTime(replay, 3)
	analyzeTime := minTime(analyze, 3)
	speedup := float64(replayTime) / float64(analyzeTime)
	b.ReportMetric(speedup, "speedup")
	if speedup < 10 {
		b.Fatalf("statics.Analyze only %.1fx faster than replay (replay %v, analyze %v); the gate requires 10x",
			speedup, replayTime, analyzeTime)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyze()
	}
}

// BenchmarkAnalyze measures the analyzer alone on the 64-rank CG grammar.
func BenchmarkAnalyze(b *testing.B) {
	const ranks, iters = 64, 2
	spec, err := apps.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: iters})
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: testNoise, Seed: testSeed})
	if _, err := w.Run(fn); err != nil {
		b.Fatal(err)
	}
	prog, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := statics.Analyze(prog, nil, statics.Options{ExactBytes: true}); err != nil {
			b.Fatal(err)
		}
	}
}
