package statics_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/statics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenAnalyzeCG16 pins the complete analyze JSON for CG at 16 ranks.
// The report is a pure function of the merged program, which is a pure
// function of (app, ranks, iters, seed, noise), so the bytes are stable
// across machines and worker counts; regenerate with `go test -run Golden
// ./internal/statics -update` after an intentional format change.
func TestGoldenAnalyzeCG16(t *testing.T) {
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	prog := traceProgram(t, spec, 16, 2)
	rep, err := statics.Analyze(prog, nil, statics.Options{ExactBytes: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "analyze_cg16.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("analyze JSON for CG@16 drifted from %s (run with -update to regenerate)\ngot:\n%s", path, got)
	}
}
