package statics_test

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/statics"
	"siesta/internal/trace"
)

func findApp(t *testing.T, name string) *apps.Spec {
	t.Helper()
	for _, spec := range apps.All() {
		if spec.Name == name {
			return spec
		}
	}
	t.Fatalf("%s app not registered", name)
	return nil
}

// spilledStreamProgram is traceProgram through the streaming ingest path
// with every terminal forced to disk: the same recorded run, chunk-encoded
// per rank and fed in small pieces to a merge.Ingest whose spill tables
// have a one-byte high-water mark.
func spilledStreamProgram(t *testing.T, traced *trace.Trace) *merge.Program {
	t.Helper()
	opts := merge.Options{Spill: trace.SpillConfig{HighWater: 1, Dir: t.TempDir()}}
	in, err := merge.NewIngest(len(traced.Ranks), traced.Platform, traced.Impl, opts)
	if err != nil {
		t.Fatal(err)
	}
	for r, rt := range traced.Ranks {
		stream := trace.ChunkEncodeRank(rt)
		for len(stream) > 0 {
			n := 128
			if n > len(stream) {
				n = len(stream)
			}
			if err := in.Rank(r).Feed(stream[:n]); err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
			stream = stream[n:]
		}
	}
	if st := in.SpillStats(); st.Spilled != st.Records || st.Records == 0 {
		t.Fatalf("expected every terminal spilled: %+v", st)
	}
	p, err := in.Build()
	if err != nil {
		t.Fatalf("ingest build: %v", err)
	}
	return p
}

// The static analysis must agree with the observed run exactly even when
// the analyzed grammar came out of a fully-spilled streaming ingest —
// the spilled store may not perturb a single metric.
func TestAgreementWithSpilledStreamedProgram(t *testing.T) {
	spec := findApp(t, "CG")
	for _, ranks := range validRankCounts(t, spec) {
		rec := trace.NewRecorder(ranks, trace.Config{})
		w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: testNoise, Seed: testSeed})
		if _, err := w.Run(buildApp(t, spec, ranks, 2)); err != nil {
			t.Fatalf("traced run: %v", err)
		}
		prog := spilledStreamProgram(t, rec.Trace("A", "openmpi"))
		tl := observeRun(t, spec, ranks, 2)
		rep, err := statics.Analyze(prog, nil, statics.Options{ExactBytes: true})
		if err != nil {
			t.Fatalf("%d ranks: %v", ranks, err)
		}
		assertAgreement(t, rep, prog, tl)
	}
}
