// Package statics computes exact proxy metrics from a merged program without
// simulation. Two engines cooperate: a multiplicity fold over the grammar
// (merge.Program.TerminalCounts, O(|grammar|) per rank) yields every
// per-terminal additive metric — call histograms, per-cluster compute totals
// — and the check package's abstract machine, observed through check.Hooks,
// resolves everything that needs MPI matching semantics: world-rank
// point-to-point volume under communicator splits, per-communicator
// collective participation, and a critical-path lower bound on runtime. The
// two engines cross-validate: the fold's event count must equal the
// machine's expansion count, so a bug in either surfaces as a hard error
// rather than a silently wrong report.
//
// The agreement contract (pinned by the statics tests and CI): for a clean
// program traced from a run, every integer metric here equals the
// obs.Timeline-derived value from that run — message counts and bytes per
// rank pair, per-rank per-function call counts, collective participation —
// and the traced compute totals match to float-summation tolerance. That is
// the paper's "proxy ≡ trace" fidelity argument, checked by construction.
package statics

import (
	"fmt"
	"sort"

	"siesta/internal/check"
	"siesta/internal/merge"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/trace"
)

// Options configures an analysis pass. The check-relevant fields mirror
// check.Options, so the embedded diagnostics match what `siesta check`
// reports for the same program.
type Options struct {
	ExactBytes     bool
	AbsoluteRanks  bool
	MaxDiagnostics int
}

// Analyze statically analyzes the merged program on the given platform
// (nil resolves the program's recorded platform name). The error return is
// reserved for structurally broken programs; semantic findings land in
// Report.Check as diagnostics.
func Analyze(p *merge.Program, plat *platform.Platform, opts Options) (*Report, error) {
	if plat == nil {
		var err error
		if plat, err = platform.ByName(p.Platform); err != nil {
			return nil, err
		}
	}
	col := newCollector(p)
	ckRep, err := check.Verify(p, check.Options{
		ExactBytes:     opts.ExactBytes,
		AbsoluteRanks:  opts.AbsoluteRanks,
		MaxDiagnostics: opts.MaxDiagnostics,
		Hooks:          col,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		NumRanks: p.NumRanks,
		Platform: plat.Name,
		Check:    ckRep,
	}
	if err := col.foldGrammar(rep, plat); err != nil {
		return nil, err
	}
	if rep.Events != int64(ckRep.Events) {
		return nil, fmt.Errorf("statics: multiplicity fold counts %d events but expansion counts %d", rep.Events, ckRep.Events)
	}
	col.finish(rep)
	return rep, nil
}

// msgInfo remembers a posted message until its receive completes. Message
// ids are assigned sequentially by the machine, so the collector keeps them
// in a flat slice indexed by id.
type msgInfo struct {
	src      int
	bytes    int
	sendTime float64
}

type pendingColl struct {
	comm  int
	seq   int
	idx   int
	valid bool
}

type commAgg struct {
	size      int
	steps     int64
	completed int64
	arrivals  int64
	bytes     int64
	byFunc    map[string]int64
	entry     []float64 // collective seq -> latest member entry clock
}

// collector implements check.Hooks, folding the machine's event stream into
// matrices, per-communicator stats and the critical-path clocks. The hook
// stream fires once per event, so every per-event structure here is a flat
// slice: pairs are a dense P×P index (communicator instance ids and message
// ids are small and sequential), and maps appear only off the hot path.
type collector struct {
	p *merge.Program

	executed int64
	pairIdx  []int32 // src*P + dst -> index into pairList, -1 absent
	pairList []PairVolume
	pairOver map[[2]int]*PairVolume // out-of-world endpoints (corrupt input)
	ranks    []RankTotals
	comms    []*commAgg // communicator instance id -> aggregate
	pending  []pendingColl
	msgs     []msgInfo
	clock    []float64
	termTime []float64 // terminal id -> compute advance (0 for non-compute)
}

func newCollector(p *merge.Program) *collector {
	c := &collector{
		p:        p,
		pairIdx:  make([]int32, p.NumRanks*p.NumRanks),
		ranks:    make([]RankTotals, p.NumRanks),
		pending:  make([]pendingColl, p.NumRanks),
		msgs:     make([]msgInfo, 0, 1024),
		clock:    make([]float64, p.NumRanks),
		termTime: make([]float64, len(p.Terminals)),
	}
	for i := range c.pairIdx {
		c.pairIdx[i] = -1
	}
	for r := range c.ranks {
		c.ranks[r].Rank = r
	}
	for term, rec := range p.Terminals {
		if rec.IsCompute() {
			if cl := rec.ComputeCluster; cl >= 0 && cl < len(p.Clusters) {
				c.termTime[term] = p.Clusters[cl].MeanTime()
			}
		}
	}
	return c
}

// pairOf returns the aggregate for the (src, dst) channel, creating it on
// first use.
func (c *collector) pairOf(src, dst int) *PairVolume {
	p := c.p.NumRanks
	if src >= 0 && src < p && dst >= 0 && dst < p {
		k := src*p + dst
		if i := c.pairIdx[k]; i >= 0 {
			return &c.pairList[i]
		}
		c.pairIdx[k] = int32(len(c.pairList))
		c.pairList = append(c.pairList, PairVolume{Src: src, Dst: dst})
		return &c.pairList[len(c.pairList)-1]
	}
	pv := c.pairOver[[2]int{src, dst}]
	if pv == nil {
		pv = &PairVolume{Src: src, Dst: dst}
		if c.pairOver == nil {
			c.pairOver = map[[2]int]*PairVolume{}
		}
		c.pairOver[[2]int{src, dst}] = pv
	}
	return pv
}

// commOf returns the aggregate for a communicator instance id, creating it
// on first use. Instance ids are assigned sequentially by the machine.
func (c *collector) commOf(commID, size int) *commAgg {
	if commID < 0 {
		return nil
	}
	for len(c.comms) <= commID {
		c.comms = append(c.comms, nil)
	}
	agg := c.comms[commID]
	if agg == nil {
		agg = &commAgg{size: size, byFunc: map[string]int64{}}
		c.comms[commID] = agg
	}
	return agg
}

// Exec implements check.Hooks. The machine fires it in a valid topological
// order of the blocking-dependency graph, so advancing each rank's clock
// here — after RecvComplete and the collective barrier max have pulled it
// forward — yields the critical-path lower bound in a single pass.
func (c *collector) Exec(rank, idx, term int, rec *trace.Record) {
	c.executed++
	if p := &c.pending[rank]; p.valid && p.idx == idx {
		if p.comm < len(c.comms) {
			if agg := c.comms[p.comm]; agg != nil && p.seq < len(agg.entry) && agg.entry[p.seq] > c.clock[rank] {
				c.clock[rank] = agg.entry[p.seq]
			}
		}
		p.valid = false
	}
	if term >= 0 && term < len(c.termTime) {
		c.clock[rank] += c.termTime[term]
	}
}

// Send implements check.Hooks.
func (c *collector) Send(msgID, src, dst, tag, bytes, term int) {
	pv := c.pairOf(src, dst)
	pv.Messages++
	pv.Bytes += int64(bytes)
	c.ranks[src].SentMessages++
	c.ranks[src].SentBytes += int64(bytes)
	for len(c.msgs) <= msgID {
		c.msgs = append(c.msgs, msgInfo{src: -1})
	}
	c.msgs[msgID] = msgInfo{src: src, bytes: bytes, sendTime: c.clock[src]}
}

// RecvComplete implements check.Hooks.
func (c *collector) RecvComplete(rank, idx, msgID int) {
	if msgID < 0 || msgID >= len(c.msgs) || c.msgs[msgID].src < 0 {
		return
	}
	m := c.msgs[msgID]
	c.msgs[msgID].src = -1 // consumed; ignore a duplicate completion
	c.ranks[rank].RecvMessages++
	c.ranks[rank].RecvBytes += int64(m.bytes)
	p := c.p.NumRanks
	if m.src >= 0 && m.src < p && rank >= 0 && rank < p {
		if i := c.pairIdx[m.src*p+rank]; i >= 0 {
			c.pairList[i].Matched++
		}
	} else if pv := c.pairOver[[2]int{m.src, rank}]; pv != nil {
		pv.Matched++
	}
	if m.sendTime > c.clock[rank] {
		c.clock[rank] = m.sendTime
	}
}

// CollArrive implements check.Hooks.
func (c *collector) CollArrive(rank, idx, commID int, members []int, seq int, blocking bool, rec *trace.Record) {
	agg := c.commOf(commID, len(members))
	if agg == nil || seq < 0 {
		return
	}
	agg.arrivals++
	agg.bytes += int64(rec.Bytes)
	agg.byFunc[rec.Func]++
	if int64(seq+1) > agg.steps {
		agg.steps = int64(seq + 1)
	}
	c.ranks[rank].CollectiveOps++
	for len(agg.entry) <= seq {
		agg.entry = append(agg.entry, 0)
	}
	if c.clock[rank] > agg.entry[seq] {
		agg.entry[seq] = c.clock[rank]
	}
	if blocking {
		c.pending[rank] = pendingColl{comm: commID, seq: seq, idx: idx, valid: true}
	}
}

// CollComplete implements check.Hooks.
func (c *collector) CollComplete(commID, seq int) {
	if commID >= 0 && commID < len(c.comms) && c.comms[commID] != nil {
		c.comms[commID].completed++
	}
}

// foldGrammar fills in everything computable from terminal multiplicities
// alone: the call histogram, per-rank call and compute totals, and the
// per-cluster cost table. Terminals are visited by dense id, never by map
// iteration, so float accumulation order is deterministic.
func (c *collector) foldGrammar(rep *Report, plat *platform.Platform) error {
	funcAgg := map[string]*FuncCount{}
	clusterEvents := make([]int64, len(c.p.Clusters))
	counter := c.p.NewTerminalCounter()
	counts := make([]int64, len(c.p.Terminals))
	for rank := 0; rank < c.p.NumRanks; rank++ {
		if err := counter.CountsDense(rank, counts); err != nil {
			return err
		}
		rt := &c.ranks[rank]
		for term := 0; term < len(c.p.Terminals); term++ {
			n := counts[term]
			if n == 0 {
				continue
			}
			rec := c.p.Terminals[term]
			rep.Events += n
			rt.Calls += n
			fc := funcAgg[rec.Func]
			if fc == nil {
				fc = &FuncCount{Func: rec.Func}
				funcAgg[rec.Func] = fc
			}
			fc.Calls += n
			fc.Bytes += n * int64(rec.Bytes)
			if rec.IsCompute() {
				rt.ComputeEvents += n
				if cl := rec.ComputeCluster; cl >= 0 && cl < len(c.p.Clusters) {
					clusterEvents[cl] += n
					rt.ComputeSeconds += float64(n) * c.p.Clusters[cl].MeanTime()
				}
			}
		}
	}
	names := make([]string, 0, len(funcAgg))
	for name := range funcAgg { //maporder:ok — sorted before any output
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.Funcs = append(rep.Funcs, *funcAgg[name])
	}
	for i, cl := range c.p.Clusters {
		cost := ClusterCost{
			Cluster:      i,
			Events:       clusterEvents[i],
			N:            cl.N,
			MeanSeconds:  cl.MeanTime(),
			TotalSeconds: cl.TimeSum,
			ModelSeconds: plat.CyclesToSeconds(cl.Sum[perfmodel.CYC]),
		}
		rep.Clusters = append(rep.Clusters, cost)
		rep.ComputeSeconds += cost.TotalSeconds
		rep.ModelComputeSeconds += cost.ModelSeconds
	}
	return nil
}

// finish sorts the machine-derived aggregates into the report.
func (c *collector) finish(rep *Report) {
	rep.ExecutedEvents = c.executed
	rep.Complete = c.executed == rep.Events

	rep.Pairs = append(rep.Pairs, c.pairList...)
	for _, pv := range c.pairOver { //maporder:ok — sorted below
		rep.Pairs = append(rep.Pairs, *pv)
	}
	sort.Slice(rep.Pairs, func(i, j int) bool {
		if rep.Pairs[i].Src != rep.Pairs[j].Src {
			return rep.Pairs[i].Src < rep.Pairs[j].Src
		}
		return rep.Pairs[i].Dst < rep.Pairs[j].Dst
	})
	for _, pv := range rep.Pairs {
		rep.TotalMessages += pv.Messages
		rep.TotalBytes += pv.Bytes
	}

	for id, agg := range c.comms { // instance ids ascending by construction
		if agg == nil {
			continue
		}
		rep.Comms = append(rep.Comms, CommStats{
			Comm:      id,
			Size:      agg.size,
			Steps:     agg.steps,
			Completed: agg.completed,
			Arrivals:  agg.arrivals,
			Bytes:     agg.bytes,
			ByFunc:    agg.byFunc,
		})
	}

	rep.Ranks = c.ranks
	for r := range rep.Ranks {
		rep.Ranks[r].LowerBoundSeconds = c.clock[r]
		if c.clock[r] > rep.CriticalPathSeconds {
			rep.CriticalPathSeconds = c.clock[r]
		}
	}
}
