package statics

import (
	"fmt"
	"sort"
	"strings"

	"siesta/internal/check"
)

// PairVolume is one cell of the P×P point-to-point volume matrix: traffic
// posted on the (Src, Dst) world-rank channel, send-side, plus how many of
// those messages some receive actually matched.
type PairVolume struct {
	Src      int   `json:"src"`
	Dst      int   `json:"dst"`
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	Matched  int64 `json:"matched"`
}

// RankTotals aggregates one rank's traffic and compute.
type RankTotals struct {
	Rank          int   `json:"rank"`
	Calls         int64 `json:"calls"` // every event, from the grammar fold
	SentMessages  int64 `json:"sent_messages"`
	SentBytes     int64 `json:"sent_bytes"`
	RecvMessages  int64 `json:"recv_messages"` // matched receives
	RecvBytes     int64 `json:"recv_bytes"`
	CollectiveOps int64 `json:"collective_ops"` // collective arrivals
	ComputeEvents int64 `json:"compute_events"`
	// ComputeSeconds is the grammar-derived estimate: occurrence count times
	// the cluster's mean traced duration, per compute terminal.
	ComputeSeconds float64 `json:"compute_seconds"`
	// LowerBoundSeconds is the rank's critical-path clock: compute means
	// plus message and collective ordering, zero communication cost.
	LowerBoundSeconds float64 `json:"lower_bound_seconds"`
}

// FuncCount is one row of the job-wide call histogram, from the grammar
// fold: Calls occurrences of Func across all ranks, and the sum of the
// terminals' recorded byte counts weighted by occurrence.
type FuncCount struct {
	Func  string `json:"func"`
	Calls int64  `json:"calls"`
	Bytes int64  `json:"bytes,omitempty"`
}

// CommStats aggregates collective activity on one communicator instance
// (instance 0 is MPI_COMM_WORLD; split/dup results get fresh instances, so
// pool reuse cannot conflate two communicators).
type CommStats struct {
	Comm      int              `json:"comm"`
	Size      int              `json:"size"`
	Steps     int64            `json:"steps"`     // collective slots opened
	Completed int64            `json:"completed"` // slots every member reached
	Arrivals  int64            `json:"arrivals"`  // per-rank participations
	Bytes     int64            `json:"bytes"`
	ByFunc    map[string]int64 `json:"by_func"`
}

// ClusterCost is one computation cluster's cost decomposition.
type ClusterCost struct {
	Cluster int   `json:"cluster"`
	Events  int64 `json:"events"` // occurrences across ranks, from the fold
	N       int   `json:"n"`      // events the tracer clustered (must equal Events)
	// MeanSeconds is the cluster's mean traced duration; TotalSeconds its
	// traced sum; ModelSeconds the perfmodel prediction from the summed
	// counter vector (CyclesToSeconds of the cycle total).
	MeanSeconds  float64 `json:"mean_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
	ModelSeconds float64 `json:"model_seconds"`
}

// Report is the full static analysis of one merged program.
type Report struct {
	NumRanks int    `json:"num_ranks"`
	Platform string `json:"platform"`
	// Events counts the full program's events via the multiplicity fold;
	// ExecutedEvents counts what the abstract machine discharged. They are
	// equal (Complete) unless the program statically deadlocks, in which
	// case the machine-derived metrics cover only the executed prefix.
	Events         int64 `json:"events"`
	ExecutedEvents int64 `json:"executed_events"`
	Complete       bool  `json:"complete"`

	TotalMessages int64 `json:"total_messages"`
	TotalBytes    int64 `json:"total_bytes"`

	Pairs    []PairVolume  `json:"pairs"`
	Ranks    []RankTotals  `json:"ranks"`
	Funcs    []FuncCount   `json:"funcs"`
	Comms    []CommStats   `json:"comms"`
	Clusters []ClusterCost `json:"clusters"`

	// ComputeSeconds is the job-wide traced compute total (Σ cluster
	// TimeSum); ModelComputeSeconds the perfmodel-coefficient prediction.
	ComputeSeconds      float64 `json:"compute_seconds"`
	ModelComputeSeconds float64 `json:"model_compute_seconds"`
	// CriticalPathSeconds is the dependency-structure lower bound on the
	// job's runtime: max over ranks of the critical-path clock.
	CriticalPathSeconds float64 `json:"critical_path_seconds"`

	Check *check.Report `json:"check"`
}

// Matrix returns the dense P×P byte-volume matrix, row = source rank.
func (r *Report) Matrix() [][]int64 {
	m := make([][]int64, r.NumRanks)
	for i := range m {
		m[i] = make([]int64, r.NumRanks)
	}
	for _, pv := range r.Pairs {
		m[pv.Src][pv.Dst] = pv.Bytes
	}
	return m
}

// maxDensePairs bounds the rank count for which the human-readable table
// prints the dense volume matrix; larger jobs get the top pairs by bytes.
const maxDensePairs = 16

// String renders the human-readable table the CLI prints by default.
func (r *Report) String() string {
	var b strings.Builder
	state := "complete"
	if !r.Complete {
		state = fmt.Sprintf("PARTIAL (%d of %d events discharged)", r.ExecutedEvents, r.Events)
	}
	fmt.Fprintf(&b, "analyze: %d ranks, %d events, %s\n", r.NumRanks, r.Events, state)
	fmt.Fprintf(&b, "p2p: %d message(s), %s over %d rank pair(s)\n",
		r.TotalMessages, fmtBytes(r.TotalBytes), len(r.Pairs))
	if len(r.Pairs) > 0 {
		if r.NumRanks <= maxDensePairs {
			b.WriteString("volume matrix (bytes, row=src):\n")
			m := r.Matrix()
			fmt.Fprintf(&b, "%6s", "")
			for d := 0; d < r.NumRanks; d++ {
				fmt.Fprintf(&b, " %8d", d)
			}
			b.WriteByte('\n')
			for s := 0; s < r.NumRanks; s++ {
				fmt.Fprintf(&b, "%6d", s)
				for d := 0; d < r.NumRanks; d++ {
					fmt.Fprintf(&b, " %8d", m[s][d])
				}
				b.WriteByte('\n')
			}
		} else {
			top := append([]PairVolume(nil), r.Pairs...)
			sort.Slice(top, func(i, j int) bool {
				if top[i].Bytes != top[j].Bytes {
					return top[i].Bytes > top[j].Bytes
				}
				if top[i].Src != top[j].Src {
					return top[i].Src < top[j].Src
				}
				return top[i].Dst < top[j].Dst
			})
			if len(top) > 20 {
				top = top[:20]
			}
			fmt.Fprintf(&b, "top %d pairs by bytes:\n", len(top))
			for _, pv := range top {
				fmt.Fprintf(&b, "  %5d -> %-5d %10d msg %12s\n", pv.Src, pv.Dst, pv.Messages, fmtBytes(pv.Bytes))
			}
		}
	}
	b.WriteString("calls by function:\n")
	for _, fc := range r.Funcs {
		fmt.Fprintf(&b, "  %-24s %10d", fc.Func, fc.Calls)
		if fc.Bytes > 0 {
			fmt.Fprintf(&b, " %12s", fmtBytes(fc.Bytes))
		}
		b.WriteByte('\n')
	}
	if len(r.Comms) > 0 {
		b.WriteString("collectives by communicator:\n")
		for _, cs := range r.Comms {
			fmt.Fprintf(&b, "  comm %-3d size %-5d %6d step(s) %8d arrival(s) %12s\n",
				cs.Comm, cs.Size, cs.Steps, cs.Arrivals, fmtBytes(cs.Bytes))
		}
	}
	if len(r.Clusters) > 0 {
		b.WriteString("compute clusters:\n")
		for _, cc := range r.Clusters {
			fmt.Fprintf(&b, "  cluster %-3d %8d event(s) mean %.3e s total %.3e s (model %.3e s)\n",
				cc.Cluster, cc.Events, cc.MeanSeconds, cc.TotalSeconds, cc.ModelSeconds)
		}
	}
	fmt.Fprintf(&b, "compute total: %.6e s (model %.6e s)\n", r.ComputeSeconds, r.ModelComputeSeconds)
	fmt.Fprintf(&b, "critical-path lower bound: %.6e s\n", r.CriticalPathSeconds)
	if r.Check != nil {
		fmt.Fprintf(&b, "check: %s\n", r.Check.Summary())
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
