// Metamorphic properties of the analyzer, mirroring the determinism suite:
// the report is invariant under merge parallelism (byte-identical JSON),
// invariant under repeated analysis of the same program, and structurally
// invariant under the virtual-noise seed — a different seed perturbs traced
// durations (so the seconds fields legitimately move) but must not change a
// single count, byte total, or matrix cell.
package statics_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/statics"
	"siesta/internal/trace"
)

func analyzeJSON(t *testing.T, p *merge.Program) []byte {
	t.Helper()
	rep, err := statics.Analyze(p, nil, statics.Options{ExactBytes: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnalyzeInvariantUnderParallelism(t *testing.T) {
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: testNoise, Seed: testSeed})
	if _, err := w.Run(buildApp(t, spec, ranks, 2)); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace("A", "openmpi")

	var first []byte
	for _, par := range []int{1, 2, 8} {
		p, err := merge.Build(tr, merge.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		got := analyzeJSON(t, p)
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(first, got) {
			t.Errorf("analysis differs between Parallelism=1 and Parallelism=%d", par)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	spec, err := apps.ByName("Sweep3d")
	if err != nil {
		t.Fatal(err)
	}
	prog := traceProgram(t, spec, 6, 2)
	a, b := analyzeJSON(t, prog), analyzeJSON(t, prog)
	if !bytes.Equal(a, b) {
		t.Error("two analyses of the same program differ")
	}
}

// structural projects the seed-invariant half of a report: everything except
// the duration-derived seconds fields.
func structural(rep *statics.Report) map[string]any {
	ranks := make([][4]int64, len(rep.Ranks))
	for i, rt := range rep.Ranks {
		ranks[i] = [4]int64{rt.Calls, rt.SentBytes, rt.RecvBytes, rt.CollectiveOps}
	}
	clusters := make([][2]int64, len(rep.Clusters))
	for i, cc := range rep.Clusters {
		clusters[i] = [2]int64{int64(cc.Cluster), cc.Events}
	}
	return map[string]any{
		"events":   rep.Events,
		"messages": rep.TotalMessages,
		"bytes":    rep.TotalBytes,
		"pairs":    rep.Pairs,
		"funcs":    rep.Funcs,
		"comms":    rep.Comms,
		"ranks":    ranks,
		"clusters": clusters,
	}
}

func TestAnalyzeStructureInvariantUnderSeed(t *testing.T) {
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	var first map[string]any
	for _, seed := range []uint64{7, 1234} {
		rec := trace.NewRecorder(ranks, trace.Config{})
		w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: testNoise, Seed: seed})
		if _, err := w.Run(buildApp(t, spec, ranks, 2)); err != nil {
			t.Fatal(err)
		}
		p, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := statics.Analyze(p, nil, statics.Options{ExactBytes: true})
		if err != nil {
			t.Fatal(err)
		}
		got := structural(rep)
		if first == nil {
			first = got
			continue
		}
		if !reflect.DeepEqual(first, got) {
			t.Errorf("structural analysis differs between noise seeds:\nseed 7: %v\nseed %d: %v", first, seed, got)
		}
	}
}
