// Agreement gate: for every built-in application, the static analysis of the
// merged grammar must equal what an actual simulated run observes. Two runs
// share one virtual-noise seed: the first is traced into a merge.Program,
// the second is observed by an obs.Timeline. statics.Analyze sees only the
// grammar; the timeline sees only the run — every integer metric (message
// counts and bytes per rank pair, per-rank per-function call counts,
// compute-event counts) must match exactly, and the traced compute-seconds
// totals to float-summation tolerance. This is the "proxy ≡ trace" fidelity
// argument of the paper, checked by construction rather than by replay
// error.
package statics_test

import (
	"math"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/statics"
	"siesta/internal/trace"
)

const (
	testNoise = 0.004
	testSeed  = 7
)

// buildApp resolves one app closure for the given rank count.
func buildApp(t *testing.T, spec *apps.Spec, ranks, iters int) func(*mpi.Rank) {
	t.Helper()
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// traceProgram runs the app under the trace recorder and merges the result.
func traceProgram(t *testing.T, spec *apps.Spec, ranks, iters int) *merge.Program {
	t.Helper()
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: testNoise, Seed: testSeed})
	if _, err := w.Run(buildApp(t, spec, ranks, iters)); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	p, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return p
}

// observeRun runs the same app under an obs.Timeline with the same seed, so
// its virtual behavior matches the traced run's event-for-event.
func observeRun(t *testing.T, spec *apps.Spec, ranks, iters int) *obs.Timeline {
	t.Helper()
	tl := obs.New().NewTimeline("run", ranks)
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: tl, NoiseSigma: testNoise, Seed: testSeed})
	if _, err := w.Run(buildApp(t, spec, ranks, iters)); err != nil {
		t.Fatalf("observed run: %v", err)
	}
	return tl
}

// validRankCounts picks the app's smallest and largest supported rank counts
// in [4,16], so every app is checked at more than one scale where possible.
func validRankCounts(t *testing.T, spec *apps.Spec) []int {
	t.Helper()
	lo, hi := 0, 0
	for r := 4; r <= 16; r++ {
		if spec.ValidRanks(r) {
			if lo == 0 {
				lo = r
			}
			hi = r
		}
	}
	if lo == 0 {
		t.Fatalf("%s supports no rank count in [4,16]", spec.Name)
	}
	if hi == lo {
		return []int{lo}
	}
	return []int{lo, hi}
}

func assertAgreement(t *testing.T, rep *statics.Report, prog *merge.Program, tl *obs.Timeline) {
	t.Helper()
	if !rep.Complete {
		t.Fatalf("analysis incomplete: %d of %d events discharged", rep.ExecutedEvents, rep.Events)
	}
	if len(rep.Check.Diags) != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", rep.Check)
	}

	// Message matrix: static pairs vs flow-edge-derived totals.
	obsPairs := tl.MessageTotals()
	if len(obsPairs) != len(rep.Pairs) {
		t.Fatalf("pair count: static %d, observed %d", len(rep.Pairs), len(obsPairs))
	}
	for i, pv := range rep.Pairs {
		ot := obsPairs[i]
		if pv.Src != ot.Src || pv.Dst != ot.Dst || pv.Messages != ot.Messages ||
			pv.Bytes != ot.Bytes || pv.Matched != ot.Matched {
			t.Errorf("pair %d->%d: static {msg %d bytes %d matched %d}, observed {msg %d bytes %d matched %d}",
				pv.Src, pv.Dst, pv.Messages, pv.Bytes, pv.Matched, ot.Messages, ot.Bytes, ot.Matched)
		}
	}

	// Per-rank per-function call counts: grammar fold vs timeline spans.
	var totalEvents int64
	for rank := 0; rank < prog.NumRanks; rank++ {
		counts, err := prog.TerminalCounts(rank)
		if err != nil {
			t.Fatal(err)
		}
		static := map[string]int64{}
		for term := 0; term < len(prog.Terminals); term++ {
			if n := counts[term]; n > 0 {
				static[prog.Terminals[term].Func] += n
			}
		}
		observed := tl.CallCounts(rank)
		if len(static) != len(observed) {
			t.Errorf("rank %d: %d static functions, %d observed", rank, len(static), len(observed))
		}
		var rankCalls int64
		for fn, n := range observed { //maporder:ok — error reporting only
			rankCalls += n
			if static[fn] != n {
				t.Errorf("rank %d %s: static %d calls, observed %d", rank, fn, static[fn], n)
			}
		}
		totalEvents += rankCalls
		if rep.Ranks[rank].Calls != rankCalls {
			t.Errorf("rank %d: static %d calls total, observed %d", rank, rep.Ranks[rank].Calls, rankCalls)
		}
	}
	if rep.Events != totalEvents {
		t.Errorf("events: static %d, observed %d", rep.Events, totalEvents)
	}

	// Compute: cluster occurrence counts must match what tracing clustered,
	// and the traced compute total must match the observed run's compute
	// busy-time to float-summation tolerance.
	for _, cc := range rep.Clusters {
		if cc.Events != int64(cc.N) {
			t.Errorf("cluster %d: fold counts %d events, tracer clustered %d", cc.Cluster, cc.Events, cc.N)
		}
	}
	var obsCompute float64
	for rank := 0; rank < prog.NumRanks; rank++ {
		_, comp := tl.BusyTotals(rank)
		obsCompute += float64(comp)
	}
	if !closeRel(rep.ComputeSeconds, obsCompute, 1e-9) {
		t.Errorf("compute seconds: static %.12e, observed %.12e", rep.ComputeSeconds, obsCompute)
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return den > 0 && math.Abs(a-b)/den <= tol
}

func TestBuiltinAppsAgree(t *testing.T) {
	for _, spec := range apps.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, ranks := range validRankCounts(t, spec) {
				prog := traceProgram(t, spec, ranks, 2)
				tl := observeRun(t, spec, ranks, 2)
				rep, err := statics.Analyze(prog, nil, statics.Options{ExactBytes: true})
				if err != nil {
					t.Fatalf("%d ranks: %v", ranks, err)
				}
				assertAgreement(t, rep, prog, tl)
			}
		})
	}
}
