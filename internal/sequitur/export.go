package sequitur

import "fmt"

// Sym is one symbol of an exported grammar: either a terminal value or a
// rule reference, repeated Count times.
type Sym struct {
	Ref    int // terminal value, or rule index when IsRule
	IsRule bool
	Count  int
}

// Grammar is the exported, immutable form of an inferred grammar. Rules[0]
// is the main rule; references index into Rules.
type Grammar struct {
	Rules [][]Sym
}

// Grammar exports the builder's current grammar. Rules are numbered in
// depth-first first-reference order from the main rule, which makes the
// numbering deterministic for identical inputs.
func (b *Builder) Grammar() *Grammar {
	order := map[*rule]int{b.main: 0}
	list := []*rule{b.main}
	var walk func(r *rule)
	walk = func(r *rule) {
		for s := r.first(); !s.guard; s = s.next {
			if s.rule != nil {
				if _, seen := order[s.rule]; !seen {
					order[s.rule] = len(list)
					list = append(list, s.rule)
					walk(s.rule)
				}
			}
		}
	}
	walk(b.main)

	g := &Grammar{Rules: make([][]Sym, len(list))}
	for i, r := range list {
		var body []Sym
		for s := r.first(); !s.guard; s = s.next {
			sym := Sym{Count: s.count}
			if s.rule != nil {
				sym.IsRule = true
				sym.Ref = order[s.rule]
			} else {
				sym.Ref = s.term
			}
			body = append(body, sym)
		}
		g.Rules[i] = body
	}
	return g
}

// Expand reconstructs the original terminal sequence.
func (g *Grammar) Expand() []int {
	var out []int
	var expand func(rule int)
	expand = func(rule int) {
		for _, s := range g.Rules[rule] {
			for c := 0; c < s.Count; c++ {
				if s.IsRule {
					expand(s.Ref)
				} else {
					out = append(out, s.Ref)
				}
			}
		}
	}
	expand(0)
	return out
}

// ExpandedLen computes the expansion length without materializing it.
func (g *Grammar) ExpandedLen() int {
	memo := make([]int, len(g.Rules))
	for i := range memo {
		memo[i] = -1
	}
	var size func(rule int) int
	size = func(rule int) int {
		if memo[rule] >= 0 {
			return memo[rule]
		}
		memo[rule] = 0 // break cycles defensively; valid grammars are acyclic
		n := 0
		for _, s := range g.Rules[rule] {
			if s.IsRule {
				n += s.Count * size(s.Ref)
			} else {
				n += s.Count
			}
		}
		memo[rule] = n
		return n
	}
	return size(0)
}

// NumSymbols reports the total symbol count across all rules — the grammar's
// size in the paper's sense.
func (g *Grammar) NumSymbols() int {
	n := 0
	for _, r := range g.Rules {
		n += len(r)
	}
	return n
}

// Depths computes each rule's depth: terminal-only rules have depth 1, and a
// rule's depth is 1 + max depth of referenced rules. Depth drives the
// non-terminal merge order of paper §2.6.2.
func (g *Grammar) Depths() []int {
	d := make([]int, len(g.Rules))
	var depth func(rule int) int
	depth = func(rule int) int {
		if d[rule] != 0 {
			return d[rule]
		}
		d[rule] = 1 // provisional, breaks accidental cycles
		best := 1
		for _, s := range g.Rules[rule] {
			if s.IsRule {
				if v := depth(s.Ref) + 1; v > best {
					best = v
				}
			}
		}
		d[rule] = best
		return best
	}
	depth(0)
	for i := range g.Rules {
		depth(i)
	}
	return d
}

// String renders the grammar in a readable S → aⁱ B form for debugging and
// golden tests.
func (g *Grammar) String() string {
	out := ""
	for i, r := range g.Rules {
		name := "S"
		if i > 0 {
			name = fmt.Sprintf("R%d", i)
		}
		out += name + " →"
		for _, s := range r {
			if s.IsRule {
				out += fmt.Sprintf(" R%d", s.Ref)
			} else {
				out += fmt.Sprintf(" %d", s.Ref)
			}
			if s.Count != 1 {
				out += fmt.Sprintf("^%d", s.Count)
			}
		}
		out += "\n"
	}
	return out
}

// verify checks the builder's internal invariants; tests call it after every
// kind of mutation. It returns an error describing the first violation.
func (b *Builder) verify() error {
	// 1. Link integrity and no adjacent equal values (run-length) per rule.
	for r := range b.rules {
		prev := r.guard
		for s := r.first(); !s.guard; s = s.next {
			if s.prev != prev {
				return fmt.Errorf("rule %d: broken back link", r.id)
			}
			if s.count < 1 {
				return fmt.Errorf("rule %d: non-positive count %d", r.id, s.count)
			}
			if b.runLength && !prev.guard && sameValue(prev, s) {
				return fmt.Errorf("rule %d: unmerged run", r.id)
			}
			prev = s
		}
	}
	// 2. Digram uniqueness (over live digrams) and index consistency.
	seen := map[dkey]*symbol{}
	for r := range b.rules {
		for s := r.first(); !s.guard; s = s.next {
			k, ok := b.key(s)
			if !ok {
				continue
			}
			if other, dup := seen[k]; dup {
				// Overlap exemption does not apply across entries;
				// equal-valued neighbours were excluded above.
				return fmt.Errorf("duplicate digram %v at %p and %p", k, s, other)
			}
			seen[k] = s
			if idx, ok := b.digrams[k]; ok && idx != s {
				return fmt.Errorf("digram index points at stale symbol for %v", k)
			}
		}
	}
	// 3. Rule utility and use counts.
	uses := map[*rule]int{}
	for r := range b.rules {
		for s := r.first(); !s.guard; s = s.next {
			if s.rule != nil {
				uses[s.rule]++
				if _, alive := b.rules[s.rule]; !alive {
					return fmt.Errorf("reference to deleted rule %d", s.rule.id)
				}
			}
		}
	}
	for r := range b.rules {
		if r == b.main {
			continue
		}
		if uses[r] != r.uses {
			return fmt.Errorf("rule %d: recorded uses %d, actual %d", r.id, r.uses, uses[r])
		}
		if uses[r] == 0 {
			return fmt.Errorf("rule %d: orphaned", r.id)
		}
		if uses[r] == 1 {
			var ref *symbol
			for s := range r.refs {
				ref = s
			}
			if ref != nil && ref.count == 1 {
				return fmt.Errorf("rule %d: utility violation (single use, count 1)", r.id)
			}
		}
	}
	return nil
}
