// Package sequitur implements the space-optimized Sequitur algorithm of
// paper §2.5.2: Nevill-Manning & Witten's online grammar inference with the
// run-length extension of Dorier et al., under which adjacent equal symbols
// aⁱaʲ collapse into aⁱ⁺ʲ. The algorithm maintains two classic invariants —
// digram uniqueness and rule utility — plus the run-length constraint, and
// produces context-free grammars of O(1) size for periodic inputs (versus
// O(log n) without the extension, and O(n) raw).
//
// Terminals are non-negative integers (the trace layer's event ids).
package sequitur

import "fmt"

// symbol is a node in a rule's circular doubly-linked body list. A symbol is
// either a terminal (rule == nil) or a reference to a rule, and carries a
// repetition count (the run-length exponent).
type symbol struct {
	prev, next *symbol
	rule       *rule // non-nil for non-terminals and for guards (owner rule)
	term       int
	count      int
	guard      bool
}

func (s *symbol) isNonTerminal() bool { return !s.guard && s.rule != nil }

// sameValue reports whether two symbols hold the same terminal or rule
// (ignoring counts) — the run-length merge criterion.
func sameValue(a, b *symbol) bool {
	if a.guard || b.guard {
		return false
	}
	if (a.rule == nil) != (b.rule == nil) {
		return false
	}
	if a.rule != nil {
		return a.rule == b.rule
	}
	return a.term == b.term
}

// rule is a grammar production. Its body is a circular list rooted at guard.
type rule struct {
	id    int
	guard *symbol
	uses  int
	refs  map[*symbol]struct{} // referencing symbols, for utility enforcement
}

func newRule(id int) *rule {
	r := &rule{id: id, refs: map[*symbol]struct{}{}}
	g := &symbol{guard: true, rule: r}
	g.prev, g.next = g, g
	r.guard = g
	return r
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }
func (r *rule) empty() bool    { return r.guard.next == r.guard }

// dkey identifies a digram: two adjacent symbols including their exponents.
type dkey struct {
	aRule bool
	aVal  int
	aCnt  int
	bRule bool
	bVal  int
	bCnt  int
}

func symVal(s *symbol) (bool, int) {
	if s.rule != nil && !s.guard {
		return true, s.rule.id
	}
	return false, s.term
}

// Builder constructs a grammar incrementally, one terminal at a time.
type Builder struct {
	main    *rule
	digrams map[dkey]*symbol
	rules   map[*rule]struct{}
	nextID  int
	size    int // appended terminal instances

	// runLength enables the aⁱaʲ→aⁱ⁺ʲ constraint (constraint 3). It is a
	// construction-time option so the ablation benchmark can compare.
	runLength bool

	// pending holds rules whose utility must be re-examined once the
	// current structural edit completes; enforcing utility mid-edit could
	// splice away symbols the edit still holds pointers to.
	pending []*rule
}

// New returns a Builder with the run-length extension enabled.
func New() *Builder { return NewWithOptions(true) }

// NewWithOptions returns a Builder with the run-length extension on or off.
func NewWithOptions(runLength bool) *Builder {
	b := &Builder{
		digrams:   map[dkey]*symbol{},
		rules:     map[*rule]struct{}{},
		runLength: runLength,
	}
	b.main = newRule(0)
	b.nextID = 1
	b.rules[b.main] = struct{}{}
	return b
}

// InputLen reports how many terminals have been appended.
func (b *Builder) InputLen() int { return b.size }

func (b *Builder) key(a *symbol) (dkey, bool) {
	if a == nil || a.guard || a.next == nil || a.next.guard {
		return dkey{}, false
	}
	ar, av := symVal(a)
	br, bv := symVal(a.next)
	return dkey{ar, av, a.count, br, bv, a.next.count}, true
}

// unindex removes the digram starting at a from the index if the index entry
// is a itself.
func (b *Builder) unindex(a *symbol) {
	if k, ok := b.key(a); ok {
		if b.digrams[k] == a {
			delete(b.digrams, k)
		}
	}
}

// link splices n after p.
func link(p, n *symbol) {
	n.prev = p
	n.next = p.next
	p.next.prev = n
	p.next = n
}

// unlink removes s from its list (digram entries must be cleared first).
func unlink(s *symbol) {
	s.prev.next = s.next
	s.next.prev = s.prev
	s.prev, s.next = nil, nil
}

// addRef registers that symbol s references rule ru.
func (b *Builder) addRef(ru *rule, s *symbol) {
	ru.uses++
	ru.refs[s] = struct{}{}
}

// dropSymbol unlinks s and, if it is a non-terminal, releases its rule
// reference. Utility enforcement is deferred to the next flushUtility.
func (b *Builder) dropSymbol(s *symbol) {
	if s.isNonTerminal() {
		ru := s.rule
		ru.uses--
		delete(ru.refs, s)
		b.pending = append(b.pending, ru)
	}
	unlink(s)
}

// flushUtility enforces the rule-utility constraint for every rule queued by
// recent edits: a rule referenced exactly once with exponent 1 is inlined.
// (The space-optimized variant keeps rules whose single reference carries a
// run-length exponent — they still pay for themselves.) Inlining may queue
// further rules; the loop drains them all.
func (b *Builder) flushUtility() {
	for len(b.pending) > 0 {
		ru := b.pending[len(b.pending)-1]
		b.pending = b.pending[:len(b.pending)-1]
		if _, alive := b.rules[ru]; !alive || ru == b.main || ru.uses != 1 {
			continue
		}
		var ref *symbol
		for s := range ru.refs {
			ref = s
		}
		if ref == nil || ref.count != 1 || ref.next == nil {
			continue
		}
		b.inline(ref, ru)
	}
}

// inline splices ru's body in place of its sole reference ref and deletes
// the rule.
func (b *Builder) inline(ref *symbol, ru *rule) {
	prev := ref.prev
	next := ref.next
	b.unindex(prev)
	b.unindex(ref)

	first := ru.first()
	last := ru.last()
	// Detach ref without utility recursion (the rule is going away).
	ru.uses--
	delete(ru.refs, ref)
	unlink(ref)
	delete(b.rules, ru)

	// Splice the body in. Body digram index entries stay valid: they
	// reference the same symbol objects.
	prev.next = first
	first.prev = prev
	last.next = next
	next.prev = last

	// Boundary run-length merges, then boundary digram checks. Rule
	// bodies never contain adjacent equal values, so only the two splice
	// boundaries can merge.
	left := b.mergeRun(first)
	right := next.prev
	if right != left {
		right = b.mergeRun(right)
	}
	b.check(left.prev)
	b.check(left)
	if right != left && right.next != nil {
		b.check(right)
	}
}

// mergeRun applies the run-length constraint around a: while a and a.next
// hold the same value, they collapse. It returns the surviving symbol
// (which may be a itself or a predecessor after leftward merging).
func (b *Builder) mergeRun(a *symbol) *symbol {
	if a == nil || a.guard {
		return a
	}
	if !b.runLength {
		return a
	}
	// Merge leftward first so a stable survivor accumulates. The dropped
	// symbol's rule reference (if any) dies with it; the survivor keeps
	// one reference, so the rule's use count decreases by one.
	for !a.prev.guard && sameValue(a.prev, a) {
		p := a.prev
		b.unindex(p.prev)
		b.unindex(p)
		b.unindex(a)
		p.count += a.count
		b.dropSymbol(a)
		a = p
	}
	for !a.next.guard && sameValue(a, a.next) {
		n := a.next
		b.unindex(a.prev)
		b.unindex(a)
		b.unindex(n)
		a.count += n.count
		b.dropSymbol(n)
	}
	return a
}

// check enforces digram uniqueness for the digram starting at a. It returns
// true if a replacement took place.
func (b *Builder) check(a *symbol) bool {
	k, ok := b.key(a)
	if !ok {
		return false
	}
	m, exists := b.digrams[k]
	if !exists {
		b.digrams[k] = a
		return false
	}
	if m == a {
		return false
	}
	if m.next == a || a.next == m {
		return false // overlapping occurrence (only possible without RLE)
	}
	b.match(a, m)
	return true
}

// match resolves a duplicate digram: reuse an existing whole-body rule or
// mint a new one, substituting both occurrences.
func (b *Builder) match(newer, older *symbol) {
	var ru *rule
	if older.prev.guard && older.next.next.guard {
		// The older occurrence is exactly a rule's body: reuse it.
		ru = older.prev.rule
		b.substitute(newer, ru)
	} else {
		ru = newRule(b.nextID)
		b.nextID++
		b.rules[ru] = struct{}{}
		// Body: copies of the digram's two symbols.
		c1 := &symbol{rule: nil, term: older.term, count: older.count}
		if older.isNonTerminal() {
			c1.rule = older.rule
		}
		c2 := &symbol{rule: nil, term: older.next.term, count: older.next.count}
		if older.next.isNonTerminal() {
			c2.rule = older.next.rule
		}
		link(ru.guard, c1)
		link(c1, c2)
		if c1.rule != nil {
			b.addRef(c1.rule, c1)
		}
		if c2.rule != nil {
			b.addRef(c2.rule, c2)
		}
		// The canonical occurrence of this digram is now the rule body.
		if k, ok := b.key(c1); ok {
			b.digrams[k] = c1
		}
		b.substitute(older, ru)
		b.substitute(newer, ru)
	}
}

// substitute replaces the digram starting at a with a reference to ru,
// applying run-length merging and boundary digram checks.
func (b *Builder) substitute(a *symbol, ru *rule) {
	prev := a.prev
	second := a.next
	b.unindex(prev)
	b.unindex(a)
	b.unindex(second)
	b.dropSymbol(second)
	b.dropSymbol(a)

	n := &symbol{rule: ru, count: 1}
	link(prev, n)
	b.addRef(ru, n)

	n = b.mergeRun(n)
	b.check(n.prev)
	b.check(n)
	b.flushUtility()
}

// Append adds one terminal to the input sequence.
func (b *Builder) Append(token int) {
	if token < 0 {
		panic(fmt.Sprintf("sequitur: negative terminal %d", token))
	}
	b.size++
	last := b.main.last()
	if b.runLength && !last.guard && last.rule == nil && last.term == token {
		b.unindex(last.prev)
		last.count++
		b.check(last.prev)
		b.flushUtility()
		return
	}
	n := &symbol{term: token, count: 1}
	link(last, n)
	b.check(n.prev)
	b.flushUtility()
}

// AppendAll adds every token of the slice in order.
func (b *Builder) AppendAll(tokens []int) {
	for _, t := range tokens {
		b.Append(t)
	}
}

// NumRules reports the current number of rules including the main rule.
func (b *Builder) NumRules() int { return len(b.rules) }
