package sequitur

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// build runs the builder over tokens, verifying invariants as it goes when
// stepwise is true.
func build(t *testing.T, tokens []int, stepwise bool) *Builder {
	t.Helper()
	b := New()
	for i, tok := range tokens {
		b.Append(tok)
		if stepwise {
			if err := b.verify(); err != nil {
				t.Fatalf("invariant broken after %d tokens (%v...): %v", i+1, tokens[:i+1], err)
			}
		}
	}
	if err := b.verify(); err != nil {
		t.Fatalf("final invariants broken: %v", err)
	}
	return b
}

func roundTrip(t *testing.T, tokens []int) *Grammar {
	t.Helper()
	b := build(t, tokens, true)
	g := b.Grammar()
	got := g.Expand()
	if len(got) == 0 && len(tokens) == 0 {
		return g
	}
	if !reflect.DeepEqual(got, tokens) {
		t.Fatalf("round trip failed:\n in: %v\nout: %v\ngrammar:\n%s", tokens, got, g)
	}
	if g.ExpandedLen() != len(tokens) {
		t.Fatalf("ExpandedLen = %d, want %d", g.ExpandedLen(), len(tokens))
	}
	return g
}

func TestEmptyAndSingle(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []int{7})
}

func TestPureRunIsConstantSize(t *testing.T) {
	// The paper's marquee property: aⁿ compresses to a single symbol.
	g := roundTrip(t, repeat([]int{3}, 1000))
	if len(g.Rules) != 1 || len(g.Rules[0]) != 1 {
		t.Fatalf("aⁿ should be one symbol, got:\n%s", g)
	}
	if g.Rules[0][0].Count != 1000 {
		t.Fatalf("count = %d, want 1000", g.Rules[0][0].Count)
	}
}

func TestPeriodicPatternIsCompact(t *testing.T) {
	// (abc)ⁿ should become S → Rⁿ, R → abc (or equivalent), O(1) size.
	g := roundTrip(t, repeat([]int{1, 2, 3}, 500))
	if g.NumSymbols() > 8 {
		t.Fatalf("periodic input should give O(1) grammar, got %d symbols:\n%s", g.NumSymbols(), g)
	}
}

func TestNestedLoops(t *testing.T) {
	// ((ab)³ c)²⁰⁰ — the nested-loop shape of real MPI traces.
	var inner []int
	inner = append(inner, repeat([]int{5, 6}, 3)...)
	inner = append(inner, 9)
	g := roundTrip(t, repeat(inner, 200))
	if g.NumSymbols() > 12 {
		t.Fatalf("nested loops should stay compact, got %d symbols:\n%s", g.NumSymbols(), g)
	}
}

func TestPaperExampleShape(t *testing.T) {
	// The sequence used throughout §2.5.2: with run-length extension,
	// a¹⁰ is O(1) rather than the logarithmic S→AA, A→BB, B→aa.
	g := roundTrip(t, repeat([]int{0}, 10))
	if len(g.Rules) != 1 {
		t.Fatalf("run-length grammar should have no sub-rules:\n%s", g)
	}
}

func TestNoRunLengthStillRoundTrips(t *testing.T) {
	tokens := repeat([]int{4}, 64)
	b := NewWithOptions(false)
	for _, tok := range tokens {
		b.Append(tok)
	}
	if err := b.verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	g := b.Grammar()
	if !reflect.DeepEqual(g.Expand(), tokens) {
		t.Fatalf("no-RLE round trip failed:\n%s", g)
	}
	// Without run-length the grammar of aⁿ is logarithmic, i.e. larger
	// than the O(1) form but much smaller than n.
	if g.NumSymbols() <= 1 || g.NumSymbols() >= 64 {
		t.Fatalf("log-size expected, got %d symbols", g.NumSymbols())
	}
	// And the ablation must show run-length winning.
	gRLE := roundTrip(t, tokens)
	if gRLE.NumSymbols() >= g.NumSymbols() {
		t.Fatal("run-length extension should shrink pure runs")
	}
}

func TestMixedRunsAndPatterns(t *testing.T) {
	var tokens []int
	for i := 0; i < 50; i++ {
		tokens = append(tokens, repeat([]int{1}, 4)...)
		tokens = append(tokens, 2, 3)
		tokens = append(tokens, repeat([]int{1}, 4)...)
		tokens = append(tokens, 2, 4)
	}
	roundTrip(t, tokens)
}

func TestAlternationCompresses(t *testing.T) {
	g := roundTrip(t, repeat([]int{1, 2}, 300))
	if g.NumSymbols() > 6 {
		t.Fatalf("(ab)ⁿ should be compact, got:\n%s", g)
	}
}

func TestNegativeTerminalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative terminals must panic")
		}
	}()
	New().Append(-1)
}

func TestRandomSequencesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(400)
		alpha := 1 + rng.Intn(6)
		tokens := make([]int, n)
		for i := range tokens {
			tokens[i] = rng.Intn(alpha)
		}
		roundTrip(t, tokens)
	}
}

func TestRandomStructuredSequences(t *testing.T) {
	// Random programs made of nested repeated phrases — closer to real
	// traces than uniform noise.
	rng := rand.New(rand.NewSource(99))
	var gen func(depth int) []int
	gen = func(depth int) []int {
		if depth == 0 || rng.Intn(3) == 0 {
			out := make([]int, 1+rng.Intn(4))
			for i := range out {
				out[i] = rng.Intn(8)
			}
			return out
		}
		inner := gen(depth - 1)
		return repeat(inner, 1+rng.Intn(6))
	}
	for trial := 0; trial < 30; trial++ {
		tokens := gen(4)
		if len(tokens) > 5000 {
			tokens = tokens[:5000]
		}
		roundTrip(t, tokens)
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		tokens := make([]int, len(raw))
		for i, v := range raw {
			tokens[i] = int(v % 5)
		}
		b := New()
		for _, tok := range tokens {
			b.Append(tok)
		}
		if err := b.verify(); err != nil {
			return false
		}
		out := b.Grammar().Expand()
		if len(tokens) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(out, tokens)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatioOnTraceLikeInput(t *testing.T) {
	// An MPI-like trace: per iteration, a fixed phrase of events.
	phrase := []int{0, 1, 2, 1, 3, 4, 4, 5}
	tokens := repeat(phrase, 2000)
	g := roundTrip(t, tokens)
	if g.NumSymbols() > len(phrase)*4 {
		t.Fatalf("16000-event periodic trace should collapse to a handful of symbols, got %d", g.NumSymbols())
	}
}

func TestDepths(t *testing.T) {
	g := roundTrip(t, repeat([]int{1, 2, 3, 1, 2, 4}, 100))
	d := g.Depths()
	if d[0] < 2 {
		t.Fatalf("main rule depth %d should exceed leaf depth", d[0])
	}
	for i := 1; i < len(d); i++ {
		if d[i] < 1 || d[i] >= d[0]+1 {
			t.Errorf("rule %d depth %d out of range", i, d[i])
		}
	}
}

func TestGrammarString(t *testing.T) {
	g := roundTrip(t, []int{1, 1, 1, 2})
	s := g.String()
	if s == "" {
		t.Fatal("String should render something")
	}
}

func TestAppendAllAndCounters(t *testing.T) {
	b := New()
	b.AppendAll([]int{1, 2, 3})
	if b.InputLen() != 3 {
		t.Fatalf("InputLen = %d", b.InputLen())
	}
	if b.NumRules() < 1 {
		t.Fatal("NumRules must count the main rule")
	}
}

func TestLongRunsWithInterruptions(t *testing.T) {
	// Runs of varying length separated by the same delimiter: exercises
	// run merging against digram uniqueness (a^i b vs a^j b).
	var tokens []int
	for i := 1; i <= 40; i++ {
		tokens = append(tokens, repeat([]int{7}, i)...)
		tokens = append(tokens, 8)
	}
	roundTrip(t, tokens)
}

func TestGrammarSizeSublinear(t *testing.T) {
	phrase := []int{0, 1, 2, 3}
	small := roundTrip(t, repeat(phrase, 100))
	large := roundTrip(t, repeat(phrase, 10000))
	if large.NumSymbols() > small.NumSymbols()+4 {
		t.Fatalf("100× longer periodic input should not grow the grammar: %d vs %d",
			small.NumSymbols(), large.NumSymbols())
	}
}

func repeat(phrase []int, n int) []int {
	out := make([]int, 0, len(phrase)*n)
	for i := 0; i < n; i++ {
		out = append(out, phrase...)
	}
	return out
}
