package sequitur

// Streaming support. Sequitur is naturally online — Append consumes one
// terminal at a time and every structural edit it performs depends only
// on the equality pattern of the tokens seen so far — so a Builder fed
// from a network stream is indistinguishable from one fed from a decoded
// trace. The streaming ingest path (internal/merge's RankIngestor) leans
// on two contracts this file pins:
//
//  1. Feed equivalence: Append(a); Append(b); … over any chunking of the
//     same token sequence yields the same builder state. This is trivially
//     true (Append takes one token), but the tests exercise it through the
//     chunked feed helpers the ingest path uses.
//
//  2. Snapshot purity: exporting the grammar mid-stream must not perturb
//     inference. Snapshot (like Grammar, which it aliases for emphasis)
//     only reads the rule lists, so appending after a snapshot continues
//     exactly as if the snapshot had never been taken.

// Snapshot exports the grammar over the tokens appended so far, without
// disturbing the builder: appending more tokens afterwards continues the
// same inference, and a later Snapshot over the full input is identical
// to a never-snapshotted build's Grammar. The ingest API uses this to
// serve progress queries while a rank's chunks are still arriving.
func (b *Builder) Snapshot() *Grammar { return b.Grammar() }
