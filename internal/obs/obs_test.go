// Unit tests for the observability layer: nil-tracer inertness, phase
// span bookkeeping, observer notifications, runtime timelines over real
// simulated runs (including the vtime-agreement invariant and flow-edge
// pairing), and both exporters.
package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/vtime"
)

// TestNilTracerIsInert pins the disabled path's contract: a nil *Tracer
// (and the nil *Span / *Timeline values it hands out) must absorb every
// call without panicking or recording anything.
func TestNilTracerIsInert(t *testing.T) {
	var tr *obs.Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	tr.SetObserver(func(obs.PhaseEvent) { t.Fatal("observer fired on nil tracer") })
	if got := tr.WithoutTimelines(); got != nil {
		t.Fatalf("nil.WithoutTimelines() = %v, want nil", got)
	}
	sp := tr.Phase("baseline", obs.Int("ranks", 8))
	if sp != nil {
		t.Fatalf("nil.Phase() = %v, want nil", sp)
	}
	sp.SetAttrs(obs.String("k", "v"))
	sp.End()
	sp.End() // double-End is a no-op too
	if tl := tr.NewTimeline("baseline", 4); tl != nil {
		t.Fatalf("nil.NewTimeline() = %v, want nil", tl)
	}
	var tl *obs.Timeline
	if ev := tl.Events(); ev != nil {
		t.Fatalf("nil timeline Events() = %v, want nil", ev)
	}
	if ev := tl.RankEvents(0); ev != nil {
		t.Fatalf("nil timeline RankEvents() = %v, want nil", ev)
	}
	if ph := tr.Phases(); ph != nil {
		t.Fatalf("nil.Phases() = %v, want nil", ph)
	}
	if tls := tr.Timelines(); tls != nil {
		t.Fatalf("nil.Timelines() = %v, want nil", tls)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil.WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil tracer's Chrome export is not valid JSON")
	}
	buf.Reset()
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil.WriteJSONL: %v", err)
	}
}

// TestPhaseSpans checks span commit order, attribute merging, observer
// start/end pairing, and double-End idempotence on a live tracer.
func TestPhaseSpans(t *testing.T) {
	tr := obs.New()
	var seen []obs.PhaseEvent
	tr.SetObserver(func(ev obs.PhaseEvent) { seen = append(seen, ev) })

	s1 := tr.Phase("baseline", obs.Int("ranks", 8))
	s1.SetAttrs(obs.Int("events", 42))
	s1.End()
	s1.End() // must not commit a second event
	s2 := tr.Phase("merge")
	s2.End()

	ph := tr.Phases()
	if len(ph) != 2 {
		t.Fatalf("got %d phases, want 2 (double End must not duplicate)", len(ph))
	}
	if ph[0].Name != "baseline" || ph[1].Name != "merge" {
		t.Fatalf("phase order %q, %q", ph[0].Name, ph[1].Name)
	}
	if ph[0].Cat != "phase" || ph[0].Kind != obs.KindSpan {
		t.Fatalf("phase event miscategorized: cat=%q kind=%d", ph[0].Cat, ph[0].Kind)
	}
	if ph[0].Dur < 0 || ph[1].Start < ph[0].Start {
		t.Fatalf("non-monotonic phase times: %+v", ph)
	}
	if len(ph[0].Attrs) != 2 || ph[0].Attrs[0].Key != "ranks" || ph[0].Attrs[1].Key != "events" {
		t.Fatalf("attrs not merged in order: %+v", ph[0].Attrs)
	}
	// Observer saw start/end for each phase, in order.
	want := []struct {
		name string
		end  bool
	}{{"baseline", false}, {"baseline", true}, {"merge", false}, {"merge", true}}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d events, want %d", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i].Name != w.name || seen[i].End != w.end {
			t.Fatalf("observer event %d = {%s end=%v}, want {%s end=%v}",
				i, seen[i].Name, seen[i].End, w.name, w.end)
		}
	}
	if !seen[1].End || seen[1].Dur < 0 {
		t.Fatalf("end notification missing duration: %+v", seen[1])
	}
}

// TestWithoutTimelines: phase spans stay on, timelines come back nil.
func TestWithoutTimelines(t *testing.T) {
	tr := obs.New().WithoutTimelines()
	if tl := tr.NewTimeline("baseline", 4); tl != nil {
		t.Fatalf("WithoutTimelines tracer handed out a timeline: %v", tl)
	}
	sp := tr.Phase("baseline")
	sp.End()
	if len(tr.Phases()) != 1 {
		t.Fatal("WithoutTimelines must keep phase spans")
	}
	if len(tr.Timelines()) != 0 {
		t.Fatal("WithoutTimelines registered a timeline")
	}
}

// runObserved executes app on a fresh world with a timeline attached and
// returns both the timeline and the run result.
func runObserved(t *testing.T, ranks int, app func(*mpi.Rank)) (*obs.Timeline, *mpi.RunResult, *obs.Tracer) {
	t.Helper()
	tr := obs.New()
	tl := tr.NewTimeline("run", ranks)
	if tl == nil {
		t.Fatal("NewTimeline returned nil on an enabled tracer")
	}
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: tl})
	res, err := w.Run(app)
	if err != nil {
		t.Fatalf("observed run failed: %v", err)
	}
	return tl, res, tr
}

// TestTimelineRecordsRun drives a small ring program and checks the
// recorded spans: one per MPI call and compute region, correct
// categories, byte attributes, paired flow edges, and BusyTotals agreeing
// with the runtime's own per-rank accounting to within a nanosecond.
func TestTimelineRecordsRun(t *testing.T) {
	const ranks = 4
	tl, res, _ := runObserved(t, ranks, func(r *mpi.Rank) {
		c := r.World()
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		req := r.Irecv(c, prev, 7)
		r.Send(c, next, 7, 4096)
		r.Wait(req)
		r.Elapse(vtime.Duration(1e-3))
		r.Barrier(c)
	})

	if tl.NumRanks() != ranks {
		t.Fatalf("NumRanks = %d, want %d", tl.NumRanks(), ranks)
	}
	// Per-rank span inventory: Irecv, Send, Wait, compute, Barrier.
	for rank := 0; rank < ranks; rank++ {
		var names []string
		for _, ev := range tl.RankEvents(rank) {
			if ev.Kind == obs.KindSpan {
				names = append(names, ev.Name)
			}
			if ev.Rank != rank {
				t.Fatalf("rank %d track holds an event stamped rank %d", rank, ev.Rank)
			}
		}
		want := []string{"MPI_Irecv", "MPI_Send", "MPI_Wait", "MPI_Compute", "MPI_Barrier"}
		if len(names) != len(want) {
			t.Fatalf("rank %d spans %v, want %v", rank, names, want)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("rank %d spans %v, want %v", rank, names, want)
			}
		}
	}
	// Categories and byte attributes.
	for _, ev := range tl.Events() {
		switch ev.Name {
		case "MPI_Send":
			if ev.Cat != obs.CatP2P {
				t.Fatalf("MPI_Send categorized %q", ev.Cat)
			}
			if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "bytes" || ev.Attrs[0].Value != int64(4096) {
				t.Fatalf("MPI_Send attrs = %+v, want bytes=4096", ev.Attrs)
			}
		case "MPI_Wait":
			if ev.Cat != obs.CatSync {
				t.Fatalf("MPI_Wait categorized %q", ev.Cat)
			}
		case "MPI_Barrier":
			if ev.Cat != obs.CatColl {
				t.Fatalf("MPI_Barrier categorized %q", ev.Cat)
			}
		case "MPI_Compute":
			if ev.Cat != obs.CatCompute {
				t.Fatalf("MPI_Compute categorized %q", ev.Cat)
			}
		}
	}
	assertFlowsPaired(t, tl, ranks) // one message per rank: 4 edges
	assertBusyTotalsAgree(t, tl, res)
}

// assertFlowsPaired checks every flow-start has exactly one flow-end with
// the same id on the destination rank and vice versa, and returns nothing:
// unpaired edges are bugs in either seq stamping or completion dedup.
func assertFlowsPaired(t *testing.T, tl *obs.Timeline, wantEdges int) {
	t.Helper()
	starts := map[uint64]int{}
	ends := map[uint64]int{}
	for _, ev := range tl.Events() {
		switch ev.Kind {
		case obs.KindFlowStart:
			starts[ev.Flow]++
		case obs.KindFlowEnd:
			ends[ev.Flow]++
		}
	}
	if wantEdges >= 0 && len(starts) != wantEdges {
		t.Fatalf("recorded %d message edges, want %d", len(starts), wantEdges)
	}
	for id, n := range starts {
		if n != 1 || ends[id] != 1 {
			t.Fatalf("flow %#x: %d starts, %d ends (want 1/1)", id, n, ends[id])
		}
	}
	for id := range ends {
		if starts[id] != 1 {
			t.Fatalf("flow %#x has an end but no start", id)
		}
	}
}

// assertBusyTotalsAgree pins the vtime-agreement invariant: per rank, the
// timeline's comm/compute span sums must match the runtime's CommTime and
// ComputeTime within a virtual nanosecond.
func assertBusyTotalsAgree(t *testing.T, tl *obs.Timeline, res *mpi.RunResult) {
	t.Helper()
	const tol = 1e-9
	for i, rr := range res.Ranks {
		comm, compute := tl.BusyTotals(i)
		if d := math.Abs(comm.Seconds() - rr.CommTime.Seconds()); d > tol {
			t.Errorf("rank %d: timeline comm %v vs runtime CommTime %v (|Δ| = %.3g s)",
				i, comm, rr.CommTime, d)
		}
		if d := math.Abs(compute.Seconds() - rr.ComputeTime.Seconds()); d > tol {
			t.Errorf("rank %d: timeline compute %v vs runtime ComputeTime %v (|Δ| = %.3g s)",
				i, compute, rr.ComputeTime, d)
		}
	}
}

// TestFlowDedupPersistentAndTest exercises the two paths that would
// double-count message edges without the per-request dedup: persistent
// requests restarted across iterations, and MPI_Test polling a request
// that already completed.
func TestFlowDedupPersistentAndTest(t *testing.T) {
	const iters = 3
	tl, res, _ := runObserved(t, 2, func(r *mpi.Rank) {
		c := r.World()
		if r.Rank() == 0 {
			sreq := r.SendInit(c, 1, 5, 256)
			for i := 0; i < iters; i++ {
				r.Start(sreq)
				r.Wait(sreq)
			}
			r.RequestFree(sreq)
		} else {
			rreq := r.RecvInit(c, 0, 5)
			for i := 0; i < iters; i++ {
				r.Start(rreq)
				// Poll with Test until complete, then keep polling once
				// more: the extra observations must not re-emit the edge.
				for done, _ := r.Test(rreq); !done; done, _ = r.Test(rreq) {
				}
				r.Test(rreq)
			}
			r.RequestFree(rreq)
		}
		r.Barrier(c)
	})
	assertFlowsPaired(t, tl, iters)
	assertBusyTotalsAgree(t, tl, res)
}

// TestDisabledPathAllocationFree pins the "zero-allocation when disabled"
// guarantee at the API level: the guarded call-site pattern used by
// core.Synthesize must not allocate when the tracer is nil.
func TestDisabledPathAllocationFree(t *testing.T) {
	var tr *obs.Tracer
	allocs := testing.AllocsPerRun(200, func() {
		var cur *obs.Span
		if tr != nil {
			cur = tr.Phase("baseline", obs.Int("ranks", 8), obs.Int("parallelism", 4))
		}
		cur.SetAttrs()
		cur.End()
		if tl := tr.NewTimeline("baseline", 8); tl != nil {
			t.Fatal("nil tracer produced a timeline")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestChromeTraceExport validates the exporter against the trace_event
// schema on a trace containing both domains: phase spans at pid 0 and a
// runtime timeline with flow edges at pid 1.
func TestChromeTraceExport(t *testing.T) {
	tl, _, tr := runObserved(t, 2, func(r *mpi.Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Send(c, 1, 3, 1024)
		} else {
			r.Recv(c, 0, 3)
		}
		r.Elapse(vtime.Duration(1e-4))
		r.Barrier(c)
	})
	sp := tr.Phase("baseline", obs.Int("ranks", 2))
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeChrome(t, buf.Bytes())
	validateChromeEvents(t, events)

	// Track layout: pid 0 = pipeline (with the phase span), pid 1 = the
	// timeline, one tid per rank, all named by metadata events.
	procNames := map[float64]string{}
	var phaseSeen, sendSeen bool
	flowStarts, flowEnds := map[string]int{}, map[string]int{}
	for _, ev := range events {
		pid := ev["pid"].(float64)
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				procNames[pid] = ev["args"].(map[string]any)["name"].(string)
			}
		case "X":
			if ev["name"] == "baseline" && pid == 0 {
				phaseSeen = true
				args := ev["args"].(map[string]any)
				if args["ranks"] != float64(2) {
					t.Fatalf("phase args = %v, want ranks=2", args)
				}
			}
			if ev["name"] == "MPI_Send" && pid == 1 {
				sendSeen = true
			}
		case "s":
			flowStarts[ev["id"].(string)]++
		case "f":
			flowEnds[ev["id"].(string)]++
		}
	}
	if procNames[0] == "" || procNames[1] == "" {
		t.Fatalf("missing process_name metadata: %v", procNames)
	}
	if !phaseSeen {
		t.Fatal("phase span missing from pid 0")
	}
	if !sendSeen {
		t.Fatal("MPI_Send span missing from pid 1")
	}
	if len(flowStarts) != 1 {
		t.Fatalf("chrome export has %d flow ids, want 1", len(flowStarts))
	}
	for id := range flowStarts {
		if flowEnds[id] != 1 {
			t.Fatalf("flow %s unpaired in chrome export", id)
		}
	}
	_ = tl
}

// decodeChrome unmarshals a trace_event JSON Object Format document.
func decodeChrome(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Fatal("chrome export missing displayTimeUnit")
	}
	return doc.TraceEvents
}

// validateChromeEvents asserts every event satisfies the trace_event
// schema subset the exporter emits (see chrome.go).
func validateChromeEvents(t *testing.T, events []map[string]any) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("chrome export has no events")
	}
	for i, ev := range events {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "M":
			// Metadata events carry args.name and no timestamp semantics.
			if _, ok := ev["args"].(map[string]any)["name"]; !ok {
				t.Fatalf("metadata event %d has no args.name: %v", i, ev)
			}
			continue
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
				t.Fatalf("complete event %d has bad dur: %v", i, ev)
			}
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant event %d missing thread scope: %v", i, ev)
			}
		case "s", "f":
			id, ok := ev["id"].(string)
			if !ok || id == "" {
				t.Fatalf("flow event %d has no string id: %v", i, ev)
			}
			if ph == "f" && ev["bp"] != "e" {
				t.Fatalf("flow-end %d missing bp=e binding: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected ph %q", i, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 || math.IsNaN(ts) || math.IsInf(ts, 0) {
			t.Fatalf("event %d has bad ts: %v", i, ev)
		}
	}
}

// TestJSONLExport checks the line protocol: a typed header, one line per
// phase, a timeline descriptor, then one line per timeline event.
func TestJSONLExport(t *testing.T) {
	tl, _, tr := runObserved(t, 2, func(r *mpi.Rank) {
		r.Barrier(r.World())
	})
	sp := tr.Phase("merge")
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("JSONL line not valid JSON: %q (%v)", sc.Text(), err)
		}
		tp, _ := line["type"].(string)
		types = append(types, tp)
		switch tp {
		case "siesta.trace":
			if line["version"] != float64(1) {
				t.Fatalf("header version %v, want 1", line["version"])
			}
		case "timeline":
			if line["name"] != "run" || line["ranks"] != float64(2) {
				t.Fatalf("timeline descriptor %v", line)
			}
		}
	}
	if len(types) == 0 || types[0] != "siesta.trace" {
		t.Fatalf("first JSONL line is %v, want the siesta.trace header", types)
	}
	counts := map[string]int{}
	for _, tp := range types {
		counts[tp]++
	}
	if counts["phase"] != 1 {
		t.Fatalf("JSONL has %d phase lines, want 1", counts["phase"])
	}
	if counts["timeline"] != 1 {
		t.Fatalf("JSONL has %d timeline lines, want 1", counts["timeline"])
	}
	if counts["event"] != len(tl.Events()) {
		t.Fatalf("JSONL has %d event lines, want %d", counts["event"], len(tl.Events()))
	}
}
