package obs

import (
	"encoding/json"
	"io"
)

// JSONL exporter: one compact JSON record per line, cheap to stream, grep,
// and diff — the format the golden and metamorphic tests compare. Stream
// layout:
//
//	{"type":"siesta.trace","version":1}
//	{"type":"phase", ...event}            one per pipeline phase span
//	{"type":"timeline","name":...,"ranks":N}
//	{"type":"event","tl":i, ...event}     that timeline's events, rank-major
//
// Times are raw seconds in the owning track's domain, unscaled.

// jsonlHeader is the first line of every stream.
type jsonlHeader struct {
	Type    string `json:"type"`
	Version int    `json:"version"`
}

type jsonlPhase struct {
	Type string `json:"type"`
	Event
}

type jsonlTimeline struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Ranks int    `json:"ranks"`
}

type jsonlEvent struct {
	Type string `json:"type"`
	TL   int    `json:"tl"`
	Event
}

// WriteJSONL writes everything the tracer collected as newline-delimited
// JSON. It must only be called after all observed runs have completed; the
// output is deterministic for a deterministic run. A nil tracer writes just
// the header line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonlHeader{Type: "siesta.trace", Version: 1}); err != nil {
		return err
	}
	for _, ev := range t.Phases() {
		if err := enc.Encode(jsonlPhase{Type: "phase", Event: ev}); err != nil {
			return err
		}
	}
	for i, tl := range t.Timelines() {
		rec := jsonlTimeline{Type: "timeline", Name: tl.Name(), Ranks: tl.NumRanks()}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		for _, ev := range tl.Events() {
			if err := enc.Encode(jsonlEvent{Type: "event", TL: i, Event: ev}); err != nil {
				return err
			}
		}
	}
	return nil
}
