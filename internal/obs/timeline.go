package obs

import (
	"sort"
	"strings"

	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/vtime"
)

// Timeline records one simulated run as per-rank virtual-time event
// sequences: an mpi.Interceptor producing a span for every MPI call and
// computation region, flow edges for point-to-point message matches, and
// "coll" spans marking collective barriers. It is attached to a run via
// mpi.Config.Interceptor and, unlike trace.Recorder, charges no
// instrumentation cost — the observed run's virtual times are bit-identical
// to an unobserved one.
//
// Interceptor methods run on the owning rank's goroutine and write only
// that rank's state, so recording needs no locks; Events and the exporters
// must only be called after the run completes.
type Timeline struct {
	name  string
	index int // position within the owning tracer, for flow-id uniqueness
	ranks []tlRank
}

type tlRank struct {
	events []Event
	// lastFlow dedups flow-end emission per request: persistent requests
	// complete once per Start, and MPI_Test can observe the same completed
	// request repeatedly.
	lastFlow map[*mpi.Request]int
}

// NewTimeline registers a runtime timeline for a run over numRanks ranks.
// Returns nil on a nil tracer or one built WithoutTimelines; callers must
// check before assigning to mpi.Config.Interceptor — a typed-nil *Timeline
// stored in the interface is not a disabled interceptor.
func (t *Tracer) NewTimeline(name string, numRanks int) *Timeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	off := t.noTimelines
	t.mu.Unlock()
	if off {
		return nil
	}
	tl := &Timeline{name: name, ranks: make([]tlRank, numRanks)}
	for i := range tl.ranks {
		tl.ranks[i].lastFlow = make(map[*mpi.Request]int)
	}
	t.mu.Lock()
	tl.index = len(t.timelines)
	t.timelines = append(t.timelines, tl)
	t.mu.Unlock()
	return tl
}

// Name reports the timeline's label ("baseline", "replay", ...).
func (tl *Timeline) Name() string { return tl.name }

// NumRanks reports the number of rank tracks.
func (tl *Timeline) NumRanks() int { return len(tl.ranks) }

// Events returns all events merged rank-major, each rank's events in
// record order. The result is deterministic for a deterministic run, which
// is what the determinism suite compares across worker counts.
func (tl *Timeline) Events() []Event {
	if tl == nil {
		return nil
	}
	var out []Event
	for i := range tl.ranks {
		out = append(out, tl.ranks[i].events...)
	}
	return out
}

// RankEvents returns one rank's events in record order.
func (tl *Timeline) RankEvents(rank int) []Event {
	if tl == nil {
		return nil
	}
	return tl.ranks[rank].events
}

// Category buckets for timeline spans. Comm categories (everything except
// CatCompute) sum to the rank's CommTime; CatCompute sums to ComputeTime.
const (
	CatP2P     = "p2p"
	CatColl    = "coll"
	CatSync    = "sync"
	CatIO      = "io"
	CatCompute = "compute"
	CatMsg     = "msg" // flow edges
)

// category classifies an MPI call name into a timeline category.
func category(fn string) string {
	switch fn {
	case "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Ssend",
		"MPI_Sendrecv", "MPI_Send_init", "MPI_Recv_init", "MPI_Start",
		"MPI_Startall", "MPI_Probe", "MPI_Iprobe":
		return CatP2P
	case "MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Test",
		"MPI_Testall", "MPI_Request_free":
		return CatSync
	}
	if strings.HasPrefix(fn, "MPI_File_") {
		return CatIO
	}
	// Everything else in the runtime's call surface is a collective
	// (barriers, reductions, gathers, scans, communicator operations).
	return CatColl
}

// flowID builds a trace-global message-edge id from the timeline index,
// the world ranks of the endpoints, and the per-(src,dst) channel sequence
// number the runtime assigned to the message.
func (tl *Timeline) flowID(src, dst, seq int) uint64 {
	return uint64(tl.index+1)<<60 |
		uint64(src&0xFFFFF)<<40 |
		uint64(dst&0xFFFFF)<<20 |
		uint64(seq&0xFFFFF)
}

// BeforeCall implements mpi.Interceptor.
func (tl *Timeline) BeforeCall(r *mpi.Rank, call *mpi.Call) {}

// AfterCall implements mpi.Interceptor: one span per MPI call, plus flow
// edges for any messages the call sent or completed.
func (tl *Timeline) AfterCall(r *mpi.Rank, call *mpi.Call) {
	me := r.Rank()
	rs := &tl.ranks[me]
	cat := category(call.Func)
	ev := Event{
		Name:  call.Func,
		Cat:   cat,
		Kind:  KindSpan,
		Rank:  me,
		Start: float64(call.Start),
		Dur:   float64(call.End.Sub(call.Start)),
	}
	if call.Bytes > 0 {
		ev.Attrs = []Attr{Int("bytes", call.Bytes)}
	}
	rs.events = append(rs.events, ev)

	// Send side of a message edge: the runtime stamped the destination
	// world rank and the channel sequence it assigned to the posted
	// message (all send paths, including persistent MPI_Start, which
	// carries no Comm/Dest on its Call).
	if call.SentSeq > 0 {
		rs.events = append(rs.events, Event{
			Name: "msg", Cat: CatMsg, Kind: KindFlowStart, Rank: me,
			Start: float64(call.Start),
			Flow:  tl.flowID(me, call.SentDst, call.SentSeq-1),
			Attrs: []Attr{Int("bytes", call.SentBytes)},
		})
	}

	// Receive side: blocking receives carry the matched message identity
	// on the call; wait/test calls resolve it through their requests.
	if call.RecvSeq > 0 {
		tl.flowEnd(rs, me, call.RecvSrcWorld, call.RecvSeq-1, float64(call.End))
	}
	for _, req := range completedRecvs(call) {
		if src, seq, ok := req.MatchedMessage(); ok && rs.lastFlow[req] != seq+1 {
			rs.lastFlow[req] = seq + 1
			tl.flowEnd(rs, me, src, seq, float64(call.End))
		}
	}
}

// flowEnd appends the receive end of a message edge.
func (tl *Timeline) flowEnd(rs *tlRank, me, src, seq int, at float64) {
	rs.events = append(rs.events, Event{
		Name: "msg", Cat: CatMsg, Kind: KindFlowEnd, Rank: me,
		Start: at,
		Flow:  tl.flowID(src, me, seq),
	})
}

// completedRecvs lists the requests a wait/test call is known to have
// completed by its end. Calls that complete nothing return nil.
func completedRecvs(call *mpi.Call) []*mpi.Request {
	switch call.Func {
	case "MPI_Wait":
		if call.Request != nil {
			return []*mpi.Request{call.Request}
		}
	case "MPI_Waitall":
		return call.Requests
	case "MPI_Waitany":
		if call.CompletedIndex >= 0 && call.CompletedIndex < len(call.Requests) {
			return call.Requests[call.CompletedIndex : call.CompletedIndex+1]
		}
	case "MPI_Test":
		if call.Flag && call.Request != nil {
			return []*mpi.Request{call.Request}
		}
	case "MPI_Testall":
		if call.Flag {
			return call.Requests
		}
	}
	return nil
}

// OnCompute implements mpi.Interceptor: one "compute" span per computation
// region (or Elapse pause).
func (tl *Timeline) OnCompute(r *mpi.Rank, k perfmodel.Kernel, c perfmodel.Counters, start, end vtime.Time) {
	rs := &tl.ranks[r.Rank()]
	rs.events = append(rs.events, Event{
		Name:  "MPI_Compute",
		Cat:   CatCompute,
		Kind:  KindSpan,
		Rank:  r.Rank(),
		Start: float64(start),
		Dur:   float64(end.Sub(start)),
	})
}

// MessageTotal is the observed traffic on one (Src, Dst) world-rank channel,
// derived from the timeline's flow edges: Messages/Bytes count send sides
// (FlowStart), Matched counts receive sides (FlowEnd). These are the
// replay-side half of the statics agreement gate: for any run, they must
// equal the send/recv volume matrix statics.Analyze computes from the
// grammar alone.
type MessageTotal struct {
	Src, Dst int
	Messages int64
	Bytes    int64
	Matched  int64
}

// MessageTotals derives the per-(src,dst) traffic matrix from the recorded
// flow edges, sorted by (src, dst). Endpoint ranks are decoded from the
// flow-id bit fields, so the totals cover every send path (including
// persistent MPI_Start).
func (tl *Timeline) MessageTotals() []MessageTotal {
	if tl == nil {
		return nil
	}
	agg := map[[2]int]*MessageTotal{}
	for i := range tl.ranks {
		for _, ev := range tl.ranks[i].events {
			if ev.Cat != CatMsg {
				continue
			}
			src := int(ev.Flow >> 40 & 0xFFFFF)
			dst := int(ev.Flow >> 20 & 0xFFFFF)
			key := [2]int{src, dst}
			mt := agg[key]
			if mt == nil {
				mt = &MessageTotal{Src: src, Dst: dst}
				agg[key] = mt
			}
			switch ev.Kind {
			case KindFlowStart:
				mt.Messages++
				for _, a := range ev.Attrs {
					if a.Key == "bytes" {
						if b, ok := a.Value.(int64); ok {
							mt.Bytes += b
						}
					}
				}
			case KindFlowEnd:
				mt.Matched++
			}
		}
	}
	out := make([]MessageTotal, 0, len(agg))
	for _, mt := range agg { //maporder:ok — sorted below
		out = append(out, *mt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// CallCounts returns one rank's span counts keyed by name ("MPI_Send",
// "MPI_Compute", ...), the per-rank call histogram half of the statics
// agreement gate.
func (tl *Timeline) CallCounts(rank int) map[string]int64 {
	counts := map[string]int64{}
	for _, ev := range tl.ranks[rank].events {
		if ev.Kind == KindSpan {
			counts[ev.Name]++
		}
	}
	return counts
}

// BusyTotals sums one rank's span durations: virtual time inside MPI calls
// (everything but compute) and inside computation regions. For an
// unperturbed run these equal the runtime's CommTime and ComputeTime — the
// agreement the observability tests pin to within a nanosecond.
func (tl *Timeline) BusyTotals(rank int) (comm, compute vtime.Duration) {
	for _, ev := range tl.ranks[rank].events {
		if ev.Kind != KindSpan {
			continue
		}
		if ev.Cat == CatCompute {
			compute += vtime.Duration(ev.Dur)
		} else {
			comm += vtime.Duration(ev.Dur)
		}
	}
	return comm, compute
}
