// Package obs is Siesta's observability layer: a hierarchical span tracer
// for the synthesis pipeline and per-rank virtual-time timelines for the
// simulated MPI runtime. The paper's whole argument rests on measuring
// where a proxy spends its time (per-phase counters, per-rank communication
// timelines, Figs 5–9); this package makes those measurements first-class
// artifacts instead of log lines.
//
// Two time domains coexist in one trace:
//
//   - Pipeline phase spans (baseline, trace, merge, check, codegen) are
//     measured in wall-clock time since the tracer was created, because
//     they describe the synthesizer itself.
//   - Runtime timelines (package mpi's calls, computation regions, message
//     edges, collective barriers) are measured in virtual time, because
//     they describe the simulated cluster.
//
// Everything exports to Chrome trace_event JSON (openable in
// chrome://tracing or https://ui.perfetto.dev) and to a compact JSONL
// stream; see chrome.go and jsonl.go.
//
// The disabled path is free: every method is nil-receiver safe, so code
// threads a possibly-nil *Tracer and pays one nil check per span site.
// Call sites that build attributes guard on the tracer first so the
// disabled path allocates nothing (pinned by BenchmarkPhaseDisabled in
// bench_obs_test.go and BenchmarkSpanOverheadDisabled in internal/core).
package obs

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are
// restricted to JSON-friendly scalars by the constructors.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute. The checkpoint/restart layer marks
// resumed pipeline spans with it so a trace viewer can tell a recovered
// run from a fresh one.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Kind classifies a timeline event.
type Kind uint8

// Event kinds. Spans carry Start+Dur; instants carry only Start; flow
// events are the two halves of a message edge (send side, receive side)
// joined by an id.
const (
	KindSpan Kind = iota
	KindInstant
	KindFlowStart
	KindFlowEnd
)

// Event is one export-ready record. Times are seconds within the owning
// track's domain (wall-clock seconds since the tracer epoch for pipeline
// events, virtual seconds for runtime events).
type Event struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Kind  Kind    `json:"kind"`
	Rank  int     `json:"rank"` // rank within the timeline; 0 for pipeline events
	Start float64 `json:"t0"`
	Dur   float64 `json:"dur,omitempty"`
	Flow  uint64  `json:"flow,omitempty"` // message-edge id, 0 = none
	Attrs []Attr  `json:"attrs,omitempty"`
}

// PhaseEvent is what a Tracer observer receives: one notification when a
// pipeline phase span starts (End=false, Dur meaningless) and one when it
// ends (End=true, Dur = wall-clock span length). Observers run on the
// goroutine that starts/ends the span and must be fast.
type PhaseEvent struct {
	Name  string
	Start time.Duration // offset from the tracer epoch
	Dur   time.Duration
	End   bool
	Attrs []Attr
}

// Tracer collects one synthesis run's observability data: pipeline phase
// spans plus any number of runtime timelines. A nil *Tracer is a valid,
// disabled tracer: every method no-ops.
//
// Distinct phase spans may be open concurrently (the overlapped baseline
// and traced runs each own one): a Span's fields are confined to the
// goroutine that starts, annotates, and ends it, while commits and observer
// lookups go through the tracer mutex. Timelines are written by their rank
// goroutines without locking and must only be exported after the run
// completes (mpi.World.Run's return is the happens-before edge).
type Tracer struct {
	epoch time.Time

	mu          sync.Mutex
	phases      []Event
	timelines   []*Timeline
	observer    func(PhaseEvent)
	noTimelines bool
}

// New creates an enabled tracer whose wall-clock epoch is now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// WithoutTimelines disables runtime timeline recording on the tracer while
// keeping phase spans: NewTimeline returns nil, so observed runs record
// nothing per rank. The synthesis service uses this for jobs that want
// phase metrics but did not ask for a trace. Returns the tracer for
// chaining; nil-safe.
func (t *Tracer) WithoutTimelines() *Tracer {
	if t != nil {
		t.mu.Lock()
		t.noTimelines = true
		t.mu.Unlock()
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SetObserver registers a callback receiving every phase start and end.
// The synthesis service uses it for per-phase metrics and structured logs.
func (t *Tracer) SetObserver(fn func(PhaseEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// Span is one in-flight pipeline phase. A nil *Span is valid and inert.
type Span struct {
	t     *Tracer
	name  string
	start time.Duration
	attrs []Attr
}

// Phase starts a pipeline phase span. Attributes describe the phase's
// inputs (rank count, parallelism); more can be attached with SetAttrs
// before End. Returns nil on a nil tracer — callers that build attribute
// lists should guard on the tracer first to keep the disabled path
// allocation-free.
func (t *Tracer) Phase(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: time.Since(t.epoch), attrs: attrs}
	t.mu.Lock()
	obs := t.observer
	t.mu.Unlock()
	if obs != nil {
		obs(PhaseEvent{Name: name, Start: s.start, Attrs: attrs})
	}
	return s
}

// SetAttrs appends attributes to the span (typically outputs measured
// during the phase: byte sizes, event counts).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span and commits it to the tracer. End on a nil or
// already-ended span is a no-op.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	s.t = nil
	end := time.Since(t.epoch)
	ev := Event{
		Name:  s.name,
		Cat:   "phase",
		Kind:  KindSpan,
		Start: s.start.Seconds(),
		Dur:   (end - s.start).Seconds(),
		Attrs: s.attrs,
	}
	t.mu.Lock()
	t.phases = append(t.phases, ev)
	obs := t.observer
	t.mu.Unlock()
	if obs != nil {
		obs(PhaseEvent{Name: s.name, Start: s.start, Dur: end - s.start, End: true, Attrs: s.attrs})
	}
}

// Phases returns the completed pipeline phase spans in end order.
func (t *Tracer) Phases() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.phases...)
}

// Timelines returns the registered runtime timelines in creation order.
func (t *Tracer) Timelines() []*Timeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Timeline(nil), t.timelines...)
}
