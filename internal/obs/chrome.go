package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event exporter. The output is the JSON Object Format of the
// Trace Event spec: {"traceEvents": [...]}, loadable in chrome://tracing and
// https://ui.perfetto.dev. Track mapping:
//
//   - pid 0            = the synthesis pipeline (wall-clock time), tid 0
//   - pid 1+i          = runtime timeline i (virtual time)
//   - tid within a timeline = MPI rank
//
// Complete events (ph "X") carry ts+dur in microseconds; message edges are
// flow event pairs (ph "s"/"f") joined by a hex id; process and thread names
// are metadata events (ph "M"). Both time domains are exported on the same
// microsecond axis — the viewer shows them as separate processes.

// chromeEvent is one trace_event record. Field presence follows the spec:
// dur only on complete events, id/bp only on flow events, s only on
// instants, args only when attributes exist.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON Object Format envelope.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes everything the tracer collected as Chrome
// trace_event JSON. It must only be called after all observed runs have
// completed. The output is deterministic for a deterministic run. A nil
// tracer writes an empty, valid trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	add := func(ev chromeEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }

	if phases := t.Phases(); len(phases) > 0 {
		add(metaEvent(0, 0, "process_name", "siesta pipeline (wall clock)"))
		add(metaEvent(0, 0, "thread_name", "synthesis"))
		for _, ev := range phases {
			add(chromeConvert(ev, 0, 0))
		}
	}
	for i, tl := range t.Timelines() {
		pid := i + 1
		add(metaEvent(pid, 0, "process_name", tl.Name()+" (virtual time)"))
		for rank := 0; rank < tl.NumRanks(); rank++ {
			add(metaEvent(pid, rank, "thread_name", fmt.Sprintf("rank %d", rank)))
			for _, ev := range tl.RankEvents(rank) {
				add(chromeConvert(ev, pid, rank))
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// metaEvent builds a ph "M" metadata record naming a process or thread.
func metaEvent(pid, tid int, kind, name string) chromeEvent {
	return chromeEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// chromeConvert maps one internal Event onto a trace_event record. Seconds
// become microseconds, the spec's time unit.
func chromeConvert(ev Event, pid, tid int) chromeEvent {
	ce := chromeEvent{
		Name: ev.Name, Cat: ev.Cat, Pid: pid, Tid: tid,
		Ts: ev.Start * 1e6,
	}
	switch ev.Kind {
	case KindSpan:
		ce.Ph = "X"
		dur := ev.Dur * 1e6
		ce.Dur = &dur
	case KindInstant:
		ce.Ph = "i"
		ce.S = "t"
	case KindFlowStart:
		ce.Ph = "s"
		ce.ID = fmt.Sprintf("0x%x", ev.Flow)
	case KindFlowEnd:
		ce.Ph = "f"
		ce.BP = "e"
		ce.ID = fmt.Sprintf("0x%x", ev.Flow)
	}
	if len(ev.Attrs) > 0 {
		args := make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			args[a.Key] = a.Value
		}
		ce.Args = args
	}
	return ce
}
