package obs_test

import (
	"testing"

	"siesta/internal/obs"
)

// BenchmarkPhaseDisabled measures the disabled span path — the price every
// un-traced synthesis pays per phase site. It must stay at one nil check
// and zero allocations (see the package doc's zero-allocation guarantee;
// TestDisabledPathAllocationFree pins the alloc count exactly).
func BenchmarkPhaseDisabled(b *testing.B) {
	var tr *obs.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var cur *obs.Span
		if tr != nil {
			cur = tr.Phase("baseline", obs.Int("ranks", 16), obs.Int("parallelism", 4))
		}
		cur.End()
	}
}

// BenchmarkPhaseEnabled is the enabled counterpart, for comparing the two
// paths in benchstat output. The tracer is recreated each iteration so the
// committed-span slice doesn't grow with b.N and distort the numbers.
func BenchmarkPhaseEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := obs.New()
		cur := tr.Phase("baseline", obs.Int("ranks", 16), obs.Int("parallelism", 4))
		cur.End()
	}
}
