package extrapolate

import (
	"testing"
)

// TestPredictScaling: the predicted curve must behave like the weak-scaling
// replication it is — per-rank work constant, totals linear in P — and the
// point at the traced scale must equal a direct analysis of the program.
func TestPredictScaling(t *testing.T) {
	p8 := program(t, ringApp(5), 8)
	pts, err := PredictScaling(p8, nil, []int{16, 8, 32, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("want 3 deduplicated points, got %d", len(pts))
	}
	for i, want := range []int{8, 16, 32} {
		if pts[i].Ranks != want {
			t.Fatalf("point %d at %d ranks, want %d", i, pts[i].Ranks, want)
		}
		if !pts[i].Report.Complete {
			t.Fatalf("analysis at %d ranks incomplete", pts[i].Ranks)
		}
		if pts[i].CriticalPathSeconds <= 0 {
			t.Errorf("no critical path at %d ranks", pts[i].Ranks)
		}
	}

	// Weak scaling: messages, bytes, collective arrivals and compute all
	// replicate per rank, so every total must scale exactly with P.
	base := pts[0]
	for _, pt := range pts[1:] {
		f := int64(pt.Ranks / base.Ranks)
		if pt.TotalMessages != base.TotalMessages*f {
			t.Errorf("%d ranks: %d messages, want %d", pt.Ranks, pt.TotalMessages, base.TotalMessages*f)
		}
		if pt.TotalBytes != base.TotalBytes*f {
			t.Errorf("%d ranks: %d bytes, want %d", pt.Ranks, pt.TotalBytes, base.TotalBytes*f)
		}
		if pt.CollectiveOps != base.CollectiveOps*f {
			t.Errorf("%d ranks: %d collective arrivals, want %d", pt.Ranks, pt.CollectiveOps, base.CollectiveOps*f)
		}
	}

	// The point at the traced scale is a plain analysis, no extrapolation.
	if pts[0].TotalMessages == 0 || pts[0].ComputeSeconds <= 0 {
		t.Fatalf("empty analysis at the traced scale: %+v", pts[0])
	}

	// Ineligible targets surface Extrapolate's diagnostic: at 2 ranks the
	// ring's +1 and −1 displacements alias onto the same neighbour.
	if _, err := PredictScaling(p8, nil, []int{2}); err == nil {
		t.Error("2 ranks should be rejected for a ±1 ring traced at 8")
	}
}
