package extrapolate

import (
	"fmt"
	"sort"

	"siesta/internal/merge"
	"siesta/internal/platform"
	"siesta/internal/statics"
)

// ScalePoint is one point of a predicted scaling curve: the static
// analysis of the program extrapolated to Ranks processes.
type ScalePoint struct {
	Ranks int `json:"ranks"`

	TotalMessages int64 `json:"total_messages"`
	TotalBytes    int64 `json:"total_bytes"`
	CollectiveOps int64 `json:"collective_ops"` // per-rank collective arrivals, summed

	// ComputeSeconds is the job-wide compute total; CriticalPathSeconds
	// the dependency-structure lower bound on runtime at this scale.
	ComputeSeconds      float64 `json:"compute_seconds"`
	CriticalPathSeconds float64 `json:"critical_path_seconds"`

	// Report is the full analysis behind the summary fields.
	Report *statics.Report `json:"-"`
}

// PredictScaling predicts the program's communication and compute costs
// across rank counts without running mpi.World once: each target is an
// Extrapolate followed by a statics.Analyze of the result, so the numbers
// carry the same exactness contract as the agreement gate — they are what
// a real run at that scale would measure, not a model fit. The same
// eligibility boundary as Extrapolate applies (fully SPMD programs); the
// error names the first target that cannot be re-scaled. Targets are
// deduplicated and returned in ascending rank order; a target equal to the
// program's own rank count analyzes the program as-is.
func PredictScaling(p *merge.Program, plat *platform.Platform, targets []int) ([]ScalePoint, error) {
	uniq := append([]int(nil), targets...)
	sort.Ints(uniq)
	out := make([]ScalePoint, 0, len(uniq))
	for i, ranks := range uniq {
		if i > 0 && ranks == uniq[i-1] {
			continue
		}
		scaled := p
		if ranks != p.NumRanks {
			var err error
			if scaled, err = Extrapolate(p, ranks); err != nil {
				return nil, fmt.Errorf("extrapolate: scaling to %d ranks: %w", ranks, err)
			}
		}
		rep, err := statics.Analyze(scaled, plat, statics.Options{})
		if err != nil {
			return nil, fmt.Errorf("extrapolate: analyze at %d ranks: %w", ranks, err)
		}
		pt := ScalePoint{
			Ranks:               ranks,
			TotalMessages:       rep.TotalMessages,
			TotalBytes:          rep.TotalBytes,
			ComputeSeconds:      rep.ComputeSeconds,
			CriticalPathSeconds: rep.CriticalPathSeconds,
			Report:              rep,
		}
		for _, rt := range rep.Ranks {
			pt.CollectiveOps += rt.CollectiveOps
		}
		out = append(out, pt)
	}
	return out, nil
}
