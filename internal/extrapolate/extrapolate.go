// Package extrapolate implements the enhancement the paper's conclusion
// identifies as future work: "a manually developed proxy-app can ... run
// with different parallel scales, while Siesta can only reproduce program
// behaviors from a certain execution path with fixed input and scale."
//
// For the class of programs where re-scaling is well-defined — fully SPMD
// programs whose per-rank behaviour is rank-count independent (stencils,
// halo rings, wavefronts with relative neighbours) — a merged Program can
// be re-targeted to a different rank count: the relative-rank encoding
// already expresses partners as offsets, the grammar is shared by all
// ranks, and collectives re-price themselves at the new scale. Programs
// whose structure depends on the rank count (butterfly exchanges over
// log₂P stages, per-rank-distinct computation, alltoallv shapes,
// communicator splits) are detected and rejected with a diagnostic, which
// is exactly the boundary ScalaExtrap-style systems draw.
//
// Semantics: extrapolation preserves each rank's behaviour exactly — a
// weak-scaling replication. For programs whose traced per-rank workload
// was itself a strong-scaled share of a fixed input (most of Table 3's
// programs), the extrapolated proxy models the same per-rank load at the
// new scale, not the original input divided across more ranks; only
// programs with scale-invariant per-rank work (stencil sweeps with fixed
// block sizes) extrapolate time-faithfully in both senses.
package extrapolate

import (
	"fmt"

	"siesta/internal/merge"
	"siesta/internal/rankset"
	"siesta/internal/trace"
)

// Extrapolate re-targets a merged program to newRanks processes. It returns
// a new Program; the input is not modified.
func Extrapolate(p *merge.Program, newRanks int) (*merge.Program, error) {
	if newRanks <= 0 {
		return nil, fmt.Errorf("extrapolate: rank count must be positive, got %d", newRanks)
	}
	if err := Check(p); err != nil {
		return nil, err
	}
	// Relative offsets were encoded modulo the *old* size: an offset of
	// P−1 means "the previous rank", not "P−1 ranks ahead". Decode to the
	// canonical signed displacement in (−P/2, P/2], then re-encode at the
	// new size — this is what keeps a ±1 halo ring a ±1 halo ring.
	oldP := p.NumRanks
	reencode := func(rel int) (int, error) {
		if rel == trace.NoRank || rel == trace.Wildcard {
			return rel, nil
		}
		s := rel
		if s > oldP/2 {
			s -= oldP
		}
		if s > newRanks/2 || -s > (newRanks-1)/2 {
			return 0, fmt.Errorf("displacement %+d does not fit %d ranks", s, newRanks)
		}
		return ((s % newRanks) + newRanks) % newRanks, nil
	}

	out := *p
	out.NumRanks = newRanks
	out.Terminals = make([]*trace.Record, len(p.Terminals))
	for id, r := range p.Terminals {
		c := r.Clone()
		var err error
		if c.DestRel, err = reencode(r.DestRel); err != nil {
			return nil, fmt.Errorf("extrapolate: terminal %d (%s): %v", id, r.Func, err)
		}
		if c.SrcRel, err = reencode(r.SrcRel); err != nil {
			return nil, fmt.Errorf("extrapolate: terminal %d (%s): %v", id, r.Func, err)
		}
		out.Terminals[id] = c
	}

	all := rankset.Range(0, newRanks)
	main := p.Mains[0]
	nm := merge.Main{Ranks: all, Body: make([]merge.MainSym, len(main.Body))}
	for i, ms := range main.Body {
		nm.Body[i] = merge.MainSym{Sym: ms.Sym, Ranks: all}
	}
	out.Mains = []merge.Main{nm}
	out.MergeRounds = log2ceil(newRanks)
	return &out, nil
}

// Check reports whether a program is eligible for rank extrapolation,
// returning a diagnostic error when it is not.
func Check(p *merge.Program) error {
	if len(p.Mains) != 1 {
		return fmt.Errorf("extrapolate: program has %d main-rule groups; only fully SPMD programs (one group) can be re-scaled", len(p.Mains))
	}
	main := &p.Mains[0]
	if main.Ranks.Len() != p.NumRanks {
		return fmt.Errorf("extrapolate: main group covers %d of %d ranks", main.Ranks.Len(), p.NumRanks)
	}
	for i, ms := range main.Body {
		if !ms.Ranks.Equal(main.Ranks) {
			return fmt.Errorf("extrapolate: main symbol %d is executed by %s, not by all ranks — rank-dependent control flow cannot be re-scaled", i, ms.Ranks)
		}
	}
	for id, r := range p.Terminals {
		switch r.Func {
		case "MPI_Comm_split":
			return fmt.Errorf("extrapolate: terminal %d uses MPI_Comm_split; sub-communicator shapes are rank-count dependent", id)
		case "MPI_Alltoallv":
			return fmt.Errorf("extrapolate: terminal %d uses MPI_Alltoallv; its per-destination counts are shaped by the rank count", id)
		}
		if r.CommPool != 0 && r.Func != "MPI_Compute" && !isDupFamily(r, p) {
			return fmt.Errorf("extrapolate: terminal %d communicates on pool comm %d; only MPI_COMM_WORLD and its duplicates re-scale", id, r.CommPool)
		}
	}
	return nil
}

// isDupFamily reports whether the record's communicator pool id was created
// exclusively by MPI_Comm_dup (whose group always mirrors its parent and
// therefore re-scales trivially).
func isDupFamily(r *trace.Record, p *merge.Program) bool {
	for _, t := range p.Terminals {
		if t.NewCommPool == r.CommPool {
			if t.Func != "MPI_Comm_dup" {
				return false
			}
		}
	}
	return true
}

func log2ceil(n int) int {
	steps := 0
	for v := 1; v < n; v <<= 1 {
		steps++
	}
	return steps
}
