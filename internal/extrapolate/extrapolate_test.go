package extrapolate

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/codegen"
	"siesta/internal/core"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// ringApp is a fully SPMD halo ring whose per-rank behaviour is independent
// of the rank count — the eligible class.
func ringApp(iters int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		c := r.World()
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		k := perfmodel.Kernel{FPOps: 4e6, IntOps: 1e6, Loads: 3e6, Stores: 1e6, Branches: 1.4e6, MissLines: 2e5}
		for it := 0; it < iters; it++ {
			r.Compute(k)
			r.Sendrecv(c, next, 0, 65536, prev, 0)
			r.Sendrecv(c, prev, 1, 65536, next, 1)
			r.Allreduce(c, 8, mpi.OpMax)
		}
	}
}

// program traces an app and merges it.
func program(t *testing.T, fn func(*mpi.Rank), ranks int) *merge.Program {
	t.Helper()
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, Seed: 7})
	if _, err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	prog, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestExtrapolateMatchesRealTrace(t *testing.T) {
	// The gold standard: extrapolating 8 → 16 must produce, per rank, the
	// exact event sequence a real 16-rank trace produces.
	fn := ringApp(5)
	p8 := program(t, fn, 8)
	p16real := program(t, fn, 16)

	p16, err := Extrapolate(p8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p16.NumRanks != 16 {
		t.Fatal("rank count not updated")
	}
	for rank := 0; rank < 16; rank++ {
		got, err := p16.ExpandRank(rank)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p16real.ExpandRank(rank)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("rank %d: %d events extrapolated vs %d real", rank, len(got), len(want))
		}
		// Compare the resolved records (terminal ids differ between the
		// two programs; their key strings must match).
		for i := range got {
			g := p16.Terminals[got[i]].KeyString()
			w := p16real.Terminals[want[i]].KeyString()
			if g != w {
				t.Fatalf("rank %d event %d: extrapolated %q vs real %q", rank, i, g, w)
			}
		}
	}
}

func TestExtrapolatedProxyRuns(t *testing.T) {
	fn := ringApp(5)
	p8 := program(t, fn, 8)
	p24, err := Extrapolate(p8, 24)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := codegen.Generate(p24, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.New(gen).Run(mpi.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the real application at 24 ranks.
	w := mpi.NewWorld(mpi.Config{Size: 24, Seed: 3})
	orig, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	rel := relErr(float64(res.ExecTime), float64(orig.ExecTime))
	if rel > 0.15 {
		t.Errorf("extrapolated proxy time error %.1f%% (proxy %v, orig %v)",
			rel*100, res.ExecTime, orig.ExecTime)
	}
	for i := range res.Ranks {
		if res.Ranks[i].Calls != orig.Ranks[i].Calls {
			t.Fatalf("rank %d: %d calls vs %d", i, res.Ranks[i].Calls, orig.Ranks[i].Calls)
		}
	}
}

func TestExtrapolateDownscale(t *testing.T) {
	fn := ringApp(3)
	p8 := program(t, fn, 8)
	p4, err := Extrapolate(p8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p4real := program(t, fn, 4)
	for rank := 0; rank < 4; rank++ {
		got, _ := p4.ExpandRank(rank)
		want, _ := p4real.ExpandRank(rank)
		if len(got) != len(want) {
			t.Fatalf("rank %d: %d vs %d events", rank, len(got), len(want))
		}
		for i := range got {
			if p4.Terminals[got[i]].KeyString() != p4real.Terminals[want[i]].KeyString() {
				t.Fatalf("rank %d event %d mismatch", rank, i)
			}
		}
	}
}

func TestRejectsRankDependentPrograms(t *testing.T) {
	// CG's butterfly gives per-column main groups: not extrapolable.
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	p := program(t, fn, 8)
	if _, err := Extrapolate(p, 16); err == nil {
		t.Fatal("CG should be rejected (butterfly structure)")
	}
}

func TestRejectsAlltoallv(t *testing.T) {
	spec, err := apps.ByName("IS")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	p := program(t, fn, 8)
	if _, err := Extrapolate(p, 16); err == nil {
		t.Fatal("IS should be rejected (alltoallv counts)")
	}
}

func TestRejectsBadRankCount(t *testing.T) {
	p8 := program(t, ringApp(2), 8)
	if _, err := Extrapolate(p8, 0); err == nil {
		t.Fatal("zero ranks should be rejected")
	}
}

func TestWideNeighbourhoodBound(t *testing.T) {
	// A ±3 neighbourhood cannot be expressed at 4 ranks (offsets alias).
	wide := func(r *mpi.Rank) {
		c := r.World()
		for it := 0; it < 2; it++ {
			r.Compute(perfmodel.Kernel{IntOps: 1e6, Loads: 4e5, Branches: 2e5})
			for d := 1; d <= 3; d++ {
				r.Sendrecv(c, (r.Rank()+d)%r.Size(), d, 1024, (r.Rank()-d+r.Size())%r.Size(), d)
			}
		}
	}
	p := program(t, wide, 8)
	if _, err := Extrapolate(p, 4); err == nil {
		t.Fatal("±3 pattern at 4 ranks should be rejected")
	}
	if _, err := Extrapolate(p, 32); err != nil {
		t.Fatalf("±3 pattern at 32 ranks should extrapolate: %v", err)
	}
}

func TestEndToEndViaCore(t *testing.T) {
	// The extension composes with the standard pipeline outputs.
	res, err := core.Synthesize(ringApp(4), core.Options{Ranks: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Extrapolate(res.Program, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(big); err != nil {
		t.Fatalf("extrapolated program should itself be eligible: %v", err)
	}
	gen, err := codegen.Generate(big, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.New(gen).Run(mpi.Config{Seed: 6}); err != nil {
		t.Fatal(err)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}
