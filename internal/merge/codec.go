package merge

import (
	"fmt"

	"siesta/internal/perfmodel"
	"siesta/internal/rankset"
	"siesta/internal/trace"
)

// Decode parses a program produced by Program.Encode. It is the read side
// of the size_C serialization: `siesta check` lints programs from disk
// through it, and round-tripping is covered by tests so the two sides
// cannot drift silently.
func Decode(data []byte) (*Program, error) {
	d := trace.NewDec(data)
	magic, err := d.Str()
	if err != nil || magic != "SIESTA-PROG1" {
		return nil, fmt.Errorf("merge: bad magic %q: %v", magic, err)
	}
	p := &Program{}
	if p.NumRanks, err = d.Int(); err != nil {
		return nil, err
	}
	if p.Platform, err = d.Str(); err != nil {
		return nil, err
	}
	if p.Impl, err = d.Str(); err != nil {
		return nil, err
	}
	if p.MergeRounds, err = d.Int(); err != nil {
		return nil, err
	}

	nterm, err := boundedCount(d, "terminal")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nterm; i++ {
		r, err := decodeRecord(d)
		if err != nil {
			return nil, fmt.Errorf("merge: terminal %d: %w", i, err)
		}
		p.Terminals = append(p.Terminals, r)
	}

	ncl, err := boundedCount(d, "cluster")
	if err != nil {
		return nil, err
	}
	for i := 0; i < ncl; i++ {
		c := &trace.Cluster{}
		for m := 0; m < int(perfmodel.NumMetrics); m++ {
			if c.Sum[m], err = d.Float(); err != nil {
				return nil, err
			}
		}
		if c.N, err = d.Int(); err != nil {
			return nil, err
		}
		if c.TimeSum, err = d.Float(); err != nil {
			return nil, err
		}
		// Rep is not serialized (it only steers clustering during the
		// build); the mean is the usable representative after decoding.
		c.Rep = c.Target()
		p.Clusters = append(p.Clusters, c)
	}

	nrules, err := boundedCount(d, "rule")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nrules; i++ {
		nsym, err := boundedCount(d, "rule symbol")
		if err != nil {
			return nil, err
		}
		rule := make([]Sym, nsym)
		for j := range rule {
			if rule[j], err = decodeSym(d); err != nil {
				return nil, err
			}
		}
		p.Rules = append(p.Rules, rule)
	}

	nmains, err := boundedCount(d, "main")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nmains; i++ {
		ranks, err := d.Ints()
		if err != nil {
			return nil, err
		}
		m := Main{Ranks: rankset.New(ranks...)}
		nbody, err := boundedCount(d, "main symbol")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nbody; j++ {
			var ms MainSym
			if ms.Sym, err = decodeSym(d); err != nil {
				return nil, err
			}
			if ms.Ranks, err = decodeIntervals(d); err != nil {
				return nil, err
			}
			m.Body = append(m.Body, ms)
		}
		p.Mains = append(p.Mains, m)
	}

	// Referential integrity, so downstream consumers can index freely.
	for ri, rule := range p.Rules {
		for _, s := range rule {
			if err := p.checkSym(s); err != nil {
				return nil, fmt.Errorf("merge: rule %d: %w", ri, err)
			}
		}
	}
	for mi, m := range p.Mains {
		for _, ms := range m.Body {
			if err := p.checkSym(ms.Sym); err != nil {
				return nil, fmt.Errorf("merge: main %d: %w", mi, err)
			}
		}
	}
	return p, nil
}

func (p *Program) checkSym(s Sym) error {
	if s.IsRule {
		if s.Ref < 0 || s.Ref >= len(p.Rules) {
			return fmt.Errorf("symbol references rule %d of %d", s.Ref, len(p.Rules))
		}
		return nil
	}
	if s.Ref < 0 || s.Ref >= len(p.Terminals) {
		return fmt.Errorf("symbol references terminal %d of %d", s.Ref, len(p.Terminals))
	}
	return nil
}

func boundedCount(d *trace.Dec, what string) (int, error) {
	n, err := d.Int()
	if err != nil {
		return 0, err
	}
	if n < 0 || n > d.Remaining() {
		return 0, fmt.Errorf("merge: %s count %d exceeds remaining input %d", what, n, d.Remaining())
	}
	return n, nil
}

func decodeSym(d *trace.Dec) (Sym, error) {
	var s Sym
	var err error
	if s.Ref, err = d.Int(); err != nil {
		return s, err
	}
	isRule, err := d.Int()
	if err != nil {
		return s, err
	}
	s.IsRule = isRule != 0
	if s.Count, err = d.Int(); err != nil {
		return s, err
	}
	return s, nil
}

func decodeIntervals(d *trace.Dec) (*rankset.Set, error) {
	n, err := d.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > d.Remaining() {
		return nil, fmt.Errorf("merge: interval count %d exceeds remaining input %d", n, d.Remaining())
	}
	s := rankset.New()
	for i := 0; i < n; i++ {
		lo, err := d.Int()
		if err != nil {
			return nil, err
		}
		hi, err := d.Int()
		if err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("merge: malformed interval [%d,%d]", lo, hi)
		}
		s = s.Union(rankset.Range(lo, hi+1)) // intervals are inclusive

	}
	return s, nil
}

// decodeRecord mirrors encodeRecord; field order is the contract.
func decodeRecord(d *trace.Dec) (*trace.Record, error) {
	var r trace.Record
	var err error
	read := func(dst *int) {
		if err == nil {
			*dst, err = d.Int()
		}
	}
	if r.Func, err = d.Str(); err != nil {
		return nil, err
	}
	read(&r.DestRel)
	read(&r.SrcRel)
	read(&r.Tag)
	read(&r.Bytes)
	read(&r.RecvTag)
	read(&r.Root)
	if err == nil {
		r.Op, err = d.Str()
	}
	read(&r.CommPool)
	read(&r.NewCommPool)
	read(&r.ReqPool)
	if err == nil {
		r.ReqPools, err = d.Ints()
	}
	if err == nil {
		r.Counts, err = d.Ints()
	}
	read(&r.Color)
	read(&r.Key)
	read(&r.ComputeCluster)
	read(&r.FilePool)
	read(&r.OffsetRel)
	if err == nil {
		r.FileName, err = d.Str()
	}
	if err != nil {
		return nil, err
	}
	return &r, nil
}
