package merge

import (
	"fmt"
	"strings"

	"siesta/internal/perfmodel"
	"siesta/internal/rankset"
	"siesta/internal/sequitur"
	"siesta/internal/trace"
)

// Options tunes the merge pipeline. The zero value gives the paper's
// defaults.
type Options struct {
	// DisableRunLength turns off the Sequitur run-length extension (for
	// the ablation benchmark).
	DisableRunLength bool
	// ClusterThreshold is the relative distance for merging computation
	// clusters across ranks; 0 selects 5% (matching the tracing default).
	ClusterThreshold float64
	// MainSimilarity is the maximum normalized edit distance between main
	// rules in one cluster (paper: "we first cluster the main rules into
	// several groups according to their minimum edit distance"); 0
	// selects 0.3.
	MainSimilarity float64
	// DisableMainMerge keeps every rank's main rule separate (ablation).
	DisableMainMerge bool
}

func (o Options) withDefaults() Options {
	if o.ClusterThreshold == 0 {
		o.ClusterThreshold = 0.05
	}
	if o.MainSimilarity == 0 {
		o.MainSimilarity = 0.3
	}
	return o
}

// Globalized is a trace rewritten onto a single global symbol table: the
// output of the terminal-table merge (§2.6.1).
type Globalized struct {
	Terminals []*trace.Record
	Clusters  []*trace.Cluster
	Seqs      [][]int // per-rank event sequences over global terminal ids
}

// Globalize merges the per-rank terminal tables and computation clusters
// into global tables and rewrites every rank's event sequence onto them.
// The merge has the tree-reduction structure of §2.6.1 (⌈log₂P⌉ rounds);
// the sequential fold below produces the identical table because interning
// is associative.
func Globalize(tr *trace.Trace, clusterThreshold float64) *Globalized {
	g := &Globalized{Seqs: make([][]int, len(tr.Ranks))}
	index := map[string]int{}
	for _, rt := range tr.Ranks {
		// Map this rank's local compute clusters to global clusters.
		clusterMap := make([]int, len(rt.Clusters))
		for li, lc := range rt.Clusters {
			found := -1
			for gi, gc := range g.Clusters {
				if clusterDist(lc.Rep, gc.Rep) <= clusterThreshold {
					found = gi
					break
				}
			}
			if found < 0 {
				cp := *lc
				g.Clusters = append(g.Clusters, &cp)
				found = len(g.Clusters) - 1
			} else {
				gc := g.Clusters[found]
				gc.Sum.Add(lc.Sum)
				gc.N += lc.N
				gc.TimeSum += lc.TimeSum
			}
			clusterMap[li] = found
		}
		// Intern this rank's records under global cluster ids.
		recMap := make([]int, len(rt.Table))
		for li, r := range rt.Table {
			gr := r
			if r.IsCompute() {
				gr = r.Clone()
				gr.ComputeCluster = clusterMap[r.ComputeCluster]
			}
			key := gr.KeyString()
			gi, ok := index[key]
			if !ok {
				gi = len(g.Terminals)
				g.Terminals = append(g.Terminals, gr.Clone())
				index[key] = gi
			}
			recMap[li] = gi
		}
		seq := make([]int, len(rt.Events))
		for i, id := range rt.Events {
			seq[i] = recMap[id]
		}
		g.Seqs[rt.Rank] = seq
	}
	return g
}

func clusterDist(a, b perfmodel.Counters) float64 {
	var worst float64
	for i := range a {
		den := b[i]
		if den < 1 {
			den = 1
		}
		d := (a[i] - b[i]) / den
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Build runs the whole inter-process extraction: globalize terminals, infer
// per-rank grammars, merge non-terminals depth-first, cluster and LCS-merge
// main rules.
func Build(tr *trace.Trace, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	glob := Globalize(tr, opts.ClusterThreshold)

	p := &Program{
		NumRanks:    tr.NumRanks,
		Platform:    tr.Platform,
		Impl:        tr.Impl,
		Terminals:   glob.Terminals,
		Clusters:    glob.Clusters,
		MergeRounds: log2ceil(tr.NumRanks),
	}

	// Intra-process grammar inference over global ids (§2.5).
	grammars := make([]*sequitur.Grammar, len(glob.Seqs))
	for rank, seq := range glob.Seqs {
		b := sequitur.NewWithOptions(!opts.DisableRunLength)
		b.AppendAll(seq)
		grammars[rank] = b.Grammar()
	}

	// Depth-ordered non-terminal merge (§2.6.2): identical rule bodies
	// across ranks collapse; shallow rules first so deeper signatures can
	// reference merged ids.
	sigIndex := map[string]int{}
	ruleMap := make([]map[int]int, len(grammars)) // rank -> local rule -> merged id
	maxDepth := 0
	depths := make([][]int, len(grammars))
	for rank, g := range grammars {
		depths[rank] = g.Depths()
		for i := 1; i < len(g.Rules); i++ {
			if depths[rank][i] > maxDepth {
				maxDepth = depths[rank][i]
			}
		}
		ruleMap[rank] = map[int]int{}
	}
	for level := 1; level <= maxDepth; level++ {
		for rank, g := range grammars {
			for li := 1; li < len(g.Rules); li++ {
				if depths[rank][li] != level {
					continue
				}
				body := convertBody(g.Rules[li], ruleMap[rank])
				sig := signature(body)
				id, ok := sigIndex[sig]
				if !ok {
					id = len(p.Rules)
					p.Rules = append(p.Rules, body)
					sigIndex[sig] = id
				}
				ruleMap[rank][li] = id
			}
		}
	}

	// Main rules: convert, cluster by edit distance, merge by LCS.
	mains := make([][]Sym, len(grammars))
	for rank, g := range grammars {
		mains[rank] = convertBody(g.Rules[0], ruleMap[rank])
	}
	if opts.DisableMainMerge {
		for rank, body := range mains {
			p.Mains = append(p.Mains, singleRankMain(rank, body))
		}
		return p, nil
	}

	type group struct {
		rep    []Sym
		merged Main
	}
	var groups []*group
	for rank, body := range mains {
		placed := false
		for _, gr := range groups {
			if similar(gr.rep, body, opts.MainSimilarity) {
				gr.merged = lcsMerge(gr.merged, singleRankMain(rank, body))
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{rep: body, merged: singleRankMain(rank, body)})
		}
	}
	for _, gr := range groups {
		p.Mains = append(p.Mains, gr.merged)
	}

	// Losslessness self-check: every rank's expansion must reproduce its
	// globalized sequence exactly.
	for rank, want := range glob.Seqs {
		got, err := p.ExpandRank(rank)
		if err != nil {
			return nil, err
		}
		if !intsEqual(got, want) {
			return nil, fmt.Errorf("merge: rank %d expansion diverges from trace (%d vs %d events)",
				rank, len(got), len(want))
		}
	}
	return p, nil
}

func singleRankMain(rank int, body []Sym) Main {
	m := Main{Ranks: rankset.Single(rank)}
	for _, s := range body {
		m.Body = append(m.Body, MainSym{Sym: s, Ranks: rankset.Single(rank)})
	}
	return m
}

func convertBody(body []sequitur.Sym, ruleMap map[int]int) []Sym {
	out := make([]Sym, len(body))
	for i, s := range body {
		if s.IsRule {
			out[i] = Sym{Ref: ruleMap[s.Ref], IsRule: true, Count: s.Count}
		} else {
			out[i] = Sym{Ref: s.Ref, Count: s.Count}
		}
	}
	return out
}

func signature(body []Sym) string {
	var b strings.Builder
	for _, s := range body {
		if s.IsRule {
			fmt.Fprintf(&b, "r%d^%d;", s.Ref, s.Count)
		} else {
			fmt.Fprintf(&b, "t%d^%d;", s.Ref, s.Count)
		}
	}
	return b.String()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func log2ceil(n int) int {
	steps := 0
	for v := 1; v < n; v <<= 1 {
		steps++
	}
	return steps
}

// editCellCap bounds the DP table size; beyond it two mains are simply
// declared dissimilar rather than spending quadratic memory.
const editCellCap = 4 << 20

// similar reports whether the normalized edit distance between two symbol
// sequences is within the threshold.
func similar(a, b []Sym, threshold float64) bool {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return true
	}
	max := n
	if m > max {
		max = m
	}
	if (n+1)*(m+1) > editCellCap {
		return false
	}
	d := editDistance(a, b)
	return float64(d)/float64(max) <= threshold
}

// editDistance is the Levenshtein distance over symbols (exact matches
// only), with O(min(n,m)) memory.
func editDistance(a, b []Sym) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// lcsMerge merges two main rules (paper Fig. 3): symbols on the longest
// common subsequence take the union of both rank lists; symbols off it are
// interleaved in their original order with their own rank lists.
func lcsMerge(a, b Main) Main {
	n, m := len(a.Body), len(b.Body)
	// LCS DP over exact symbol equality.
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a.Body[i].Sym == b.Body[j].Sym {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := Main{Ranks: a.Ranks.Union(b.Ranks)}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a.Body[i].Sym == b.Body[j].Sym:
			out.Body = append(out.Body, MainSym{
				Sym:   a.Body[i].Sym,
				Ranks: a.Body[i].Ranks.Union(b.Body[j].Ranks),
			})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			out.Body = append(out.Body, a.Body[i])
			i++
		default:
			out.Body = append(out.Body, b.Body[j])
			j++
		}
	}
	out.Body = append(out.Body, a.Body[i:]...)
	out.Body = append(out.Body, b.Body[j:]...)
	return out
}
