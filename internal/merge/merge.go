package merge

import (
	"fmt"
	"strings"

	"siesta/internal/perfmodel"
	"siesta/internal/rankset"
	"siesta/internal/sequitur"
	"siesta/internal/trace"
)

// Options tunes the merge pipeline. The zero value gives the paper's
// defaults.
type Options struct {
	// DisableRunLength turns off the Sequitur run-length extension (for
	// the ablation benchmark).
	DisableRunLength bool
	// ClusterThreshold is the relative distance for merging computation
	// clusters across ranks; 0 selects 5% (matching the tracing default).
	ClusterThreshold float64
	// MainSimilarity is the maximum normalized edit distance between main
	// rules in one cluster (paper: "we first cluster the main rules into
	// several groups according to their minimum edit distance"); 0
	// selects 0.3.
	MainSimilarity float64
	// DisableMainMerge keeps every rank's main rule separate (ablation).
	DisableMainMerge bool

	// Spill bounds the resident memory of the streaming ingest path's
	// per-rank terminal tables (see Ingest; the high-water mark applies to
	// each rank's table separately): past the high-water mark,
	// terminals spill to a temp file that is re-read once at Build and
	// removed at Close. Batch Build ignores it. Spilling never changes a
	// single output byte, so like Parallelism it is excluded from the
	// JSON encoding and therefore from core.OptionsFingerprint.
	Spill trace.SpillConfig `json:"-"`

	// Parallelism bounds the worker count for the merge pipeline's
	// parallel stages: the tree-reduction globalize, per-rank grammar
	// inference and rule rewriting, and the losslessness check. It never
	// changes the output — parallel and sequential runs are byte-identical
	// — so it is excluded from the JSON encoding and therefore from
	// core.OptionsFingerprint. ≤ 1 runs sequentially.
	Parallelism int `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.ClusterThreshold == 0 {
		o.ClusterThreshold = 0.05
	}
	if o.MainSimilarity == 0 {
		o.MainSimilarity = 0.3
	}
	return o
}

// Globalized is a trace rewritten onto a single global symbol table: the
// output of the terminal-table merge (§2.6.1).
type Globalized struct {
	Terminals []*trace.Record
	Clusters  []*trace.Cluster
	Seqs      [][]int // per-rank event sequences over global terminal ids

	// seqBufs are the pooled buffers backing Seqs; see Release.
	seqBufs []*trace.IntBuf
}

// Release returns the pooled buffers backing Seqs to the shared buffer
// pool. After Release, Seqs must not be touched: the backing arrays may be
// handed to an unrelated caller. Build releases its Globalized once the
// losslessness check has passed; callers that keep a Globalized alive
// (experiments, tests) simply never call Release and the buffers fall to
// the garbage collector instead — pooling is an optimization, never an
// obligation.
func (g *Globalized) Release() {
	for _, b := range g.seqBufs {
		b.Unref()
	}
	g.seqBufs = nil
	g.Seqs = nil
}

// Globalize merges the per-rank terminal tables and computation clusters
// into global tables and rewrites every rank's event sequence onto them.
// The merge is the pairwise tree reduction of §2.6.1 (⌈log₂P⌉ rounds),
// executed serially here; GlobalizeParallel runs the identical tree on a
// worker pool and produces byte-identical output.
func Globalize(tr *trace.Trace, clusterThreshold float64) *Globalized {
	return GlobalizeParallel(tr, clusterThreshold, 1)
}

// clusterDist is the symmetric relative distance between two counter
// vectors: the worst per-metric difference relative to *either* vector
// (each denominator floored at 1). Symmetry matters: with the one-sided
// denominator this distance once used, whether two clusters merged could
// depend on which rank's representative was interned first, so the global
// cluster table depended on rank visitation order — exactly what the
// order-free tree reduction must not do.
func clusterDist(a, b perfmodel.Counters) float64 {
	var worst float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		den := a[i]
		if b[i] < den {
			den = b[i]
		}
		if den < 1 {
			den = 1
		}
		if r := d / den; r > worst {
			worst = r
		}
	}
	return worst
}

// Build runs the whole inter-process extraction: globalize terminals, infer
// per-rank grammars, merge non-terminals depth-first, cluster and LCS-merge
// main rules. All parallel stages assemble their results in rank order, so
// the output is byte-identical for every Options.Parallelism value.
func Build(tr *trace.Trace, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	par := opts.Parallelism
	glob := GlobalizeParallel(tr, opts.ClusterThreshold, par)
	// The globalized sequences are scratch: grammar inference and the
	// losslessness check read them, the returned Program does not. Return
	// their pooled buffers on every exit path.
	defer glob.Release()

	// Intra-process grammar inference over global ids (§2.5). Each rank's
	// grammar is independent of every other rank's, so this is the
	// embarrassingly parallel stage.
	grammars := make([]*sequitur.Grammar, len(glob.Seqs))
	parfor(len(glob.Seqs), par, func(rank int) {
		b := sequitur.NewWithOptions(!opts.DisableRunLength)
		b.AppendAll(glob.Seqs[rank])
		grammars[rank] = b.Grammar()
	})

	return assemble(tr.NumRanks, tr.Platform, tr.Impl,
		glob.Terminals, glob.Clusters, grammars,
		func(rank int) []int { return glob.Seqs[rank] }, opts)
}

// assemble is the merge pipeline's back half, shared verbatim by the batch
// path (Build) and the streaming path (Ingest.Build): given the globalized
// tables and one per-rank grammar over global terminal ids, it merges
// non-terminals depth-first, clusters and LCS-merges main rules, and runs
// the losslessness self-check against refSeq(rank) — the sequence each
// rank's grammar is expected to expand to. Sharing this function is what
// makes "streamed equals batch" structural rather than coincidental: once
// the two paths agree on tables and grammars, every later byte is produced
// by the same code. opts must already carry defaults.
func assemble(numRanks int, platformName, implName string,
	terminals []*trace.Record, clusters []*trace.Cluster,
	grammars []*sequitur.Grammar, refSeq func(rank int) []int,
	opts Options) (*Program, error) {

	par := opts.Parallelism
	p := &Program{
		NumRanks:    numRanks,
		Platform:    platformName,
		Impl:        implName,
		Terminals:   terminals,
		Clusters:    clusters,
		MergeRounds: log2ceil(numRanks),
	}

	depths := make([][]int, len(grammars))
	parfor(len(grammars), par, func(rank int) {
		depths[rank] = grammars[rank].Depths()
	})

	// Depth-ordered non-terminal merge (§2.6.2): identical rule bodies
	// across ranks collapse; shallow rules first so deeper signatures can
	// reference merged ids.
	sigIndex := map[string]int{}
	ruleMap := make([]map[int]int, len(grammars)) // rank -> local rule -> merged id
	maxDepth := 0
	for rank, g := range grammars {
		for i := 1; i < len(g.Rules); i++ {
			if depths[rank][i] > maxDepth {
				maxDepth = depths[rank][i]
			}
		}
		ruleMap[rank] = map[int]int{}
	}
	type levelRule struct {
		rank, li int
		body     []Sym
		sig      string
	}
	var todo []levelRule
	for level := 1; level <= maxDepth; level++ {
		todo = todo[:0]
		for rank, g := range grammars {
			for li := 1; li < len(g.Rules); li++ {
				if depths[rank][li] == level {
					todo = append(todo, levelRule{rank: rank, li: li})
				}
			}
		}
		// A rule at this level only references rules of strictly lower
		// depth, which are already in ruleMap — so body conversion and
		// signature hashing parallelize freely; interning then stays serial
		// in (rank, rule) order so merged rule ids come out identical to the
		// sequential pass. Items are sub-microsecond, so small levels stay
		// serial (parforSerialCutoff).
		parforCheap(len(todo), par, func(k int) {
			t := &todo[k]
			t.body = convertBody(grammars[t.rank].Rules[t.li], ruleMap[t.rank])
			t.sig = signature(t.body)
		})
		for k := range todo {
			t := &todo[k]
			id, ok := sigIndex[t.sig]
			if !ok {
				id = len(p.Rules)
				p.Rules = append(p.Rules, t.body)
				sigIndex[t.sig] = id
			}
			ruleMap[t.rank][t.li] = id
		}
	}

	// Main rules: convert, cluster by edit distance, merge by LCS.
	mains := make([][]Sym, len(grammars))
	parfor(len(grammars), par, func(rank int) {
		mains[rank] = convertBody(grammars[rank].Rules[0], ruleMap[rank])
	})
	if opts.DisableMainMerge {
		for rank, body := range mains {
			p.Mains = append(p.Mains, singleRankMain(rank, body))
		}
		return p, nil
	}

	type group struct {
		rep    []Sym
		merged Main
	}
	var groups []*group
	for rank, body := range mains {
		// A rank joins the lowest-indexed similar group (= the sequential
		// first match). The similarity checks against existing groups are
		// independent — each reads only the group's fixed representative —
		// so they parallelize; only the LCS fold into the group is ordered.
		// Dispatch is only worth it when the edit-distance DP brings real
		// work: below ~2^16 total cells the checks finish faster than the
		// workers spawn (measured; see DESIGN.md §14).
		cells := len(body) * len(body) * len(groups)
		placed := -1
		if par <= 1 || len(groups) < 2 || cells < similarParCutoffCells {
			for gi, gr := range groups {
				if similar(gr.rep, body, opts.MainSimilarity) {
					placed = gi
					break
				}
			}
		} else {
			match := make([]bool, len(groups))
			parfor(len(groups), par, func(gi int) {
				match[gi] = similar(groups[gi].rep, body, opts.MainSimilarity)
			})
			for gi := range match {
				if match[gi] {
					placed = gi
					break
				}
			}
		}
		if placed >= 0 {
			gr := groups[placed]
			gr.merged = lcsMerge(gr.merged, singleRankMain(rank, body))
		} else {
			groups = append(groups, &group{rep: body, merged: singleRankMain(rank, body)})
		}
	}
	for _, gr := range groups {
		p.Mains = append(p.Mains, gr.merged)
	}

	// Losslessness self-check: every rank's expansion must reproduce its
	// reference sequence exactly. Expansion only reads the finished
	// program, so ranks check concurrently; the lowest failing rank is
	// reported, as in the sequential pass.
	expandErrs := make([]error, len(grammars))
	parfor(len(grammars), par, func(rank int) {
		got, err := p.ExpandRank(rank)
		if err != nil {
			expandErrs[rank] = err
			return
		}
		want := refSeq(rank)
		if !intsEqual(got, want) {
			expandErrs[rank] = fmt.Errorf("merge: rank %d expansion diverges from trace (%d vs %d events)",
				rank, len(got), len(want))
		}
	})
	for _, err := range expandErrs {
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

func singleRankMain(rank int, body []Sym) Main {
	m := Main{Ranks: rankset.Single(rank)}
	for _, s := range body {
		m.Body = append(m.Body, MainSym{Sym: s, Ranks: rankset.Single(rank)})
	}
	return m
}

func convertBody(body []sequitur.Sym, ruleMap map[int]int) []Sym {
	out := make([]Sym, len(body))
	for i, s := range body {
		if s.IsRule {
			out[i] = Sym{Ref: ruleMap[s.Ref], IsRule: true, Count: s.Count}
		} else {
			out[i] = Sym{Ref: s.Ref, Count: s.Count}
		}
	}
	return out
}

func signature(body []Sym) string {
	var b strings.Builder
	for _, s := range body {
		if s.IsRule {
			fmt.Fprintf(&b, "r%d^%d;", s.Ref, s.Count)
		} else {
			fmt.Fprintf(&b, "t%d^%d;", s.Ref, s.Count)
		}
	}
	return b.String()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func log2ceil(n int) int {
	steps := 0
	for v := 1; v < n; v <<= 1 {
		steps++
	}
	return steps
}

// editCellCap bounds the DP table size; beyond it two mains are simply
// declared dissimilar rather than spending quadratic memory.
const editCellCap = 4 << 20

// similarParCutoffCells is the estimated edit-distance DP cell count (body
// length squared times group count) below which the per-rank similarity
// checks run serially; at ~2ns per cell that is ~130µs of work, an order
// of magnitude above the worker dispatch cost it must amortize.
const similarParCutoffCells = 1 << 16

// similar reports whether the normalized edit distance between two symbol
// sequences is within the threshold.
func similar(a, b []Sym, threshold float64) bool {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return true
	}
	max := n
	if m > max {
		max = m
	}
	if (n+1)*(m+1) > editCellCap {
		return false
	}
	d := editDistance(a, b)
	return float64(d)/float64(max) <= threshold
}

// editDistance is the Levenshtein distance over symbols (exact matches
// only), with O(min(n,m)) memory.
func editDistance(a, b []Sym) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// lcsMerge merges two main rules (paper Fig. 3): symbols on the longest
// common subsequence take the union of both rank lists; symbols off it are
// interleaved in their original order with their own rank lists.
func lcsMerge(a, b Main) Main {
	n, m := len(a.Body), len(b.Body)
	// LCS DP over exact symbol equality.
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a.Body[i].Sym == b.Body[j].Sym {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := Main{Ranks: a.Ranks.Union(b.Ranks)}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a.Body[i].Sym == b.Body[j].Sym:
			out.Body = append(out.Body, MainSym{
				Sym:   a.Body[i].Sym,
				Ranks: a.Body[i].Ranks.Union(b.Body[j].Ranks),
			})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			out.Body = append(out.Body, a.Body[i])
			i++
		default:
			out.Body = append(out.Body, b.Body[j])
			j++
		}
	}
	out.Body = append(out.Body, a.Body[i:]...)
	out.Body = append(out.Body, b.Body[j:]...)
	return out
}
