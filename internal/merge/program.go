// Package merge implements Siesta's inter-process pattern extraction (paper
// §2.6): merging per-rank terminal tables into a global table (with the
// log₂P tree-reduction structure), merging identical non-terminals across
// ranks in depth order, and merging SPMD main rules with the LCS-based
// algorithm under edit-distance clustering. Its output, Program, is the
// compressed whole-job representation that code generation consumes and
// whose encoded size is the paper's size_C.
package merge

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"siesta/internal/perfmodel"
	"siesta/internal/rankset"
	"siesta/internal/trace"
)

// Sym is one grammar symbol in the merged program: a reference to a global
// terminal or to a merged rule, with a run-length count.
type Sym struct {
	Ref    int
	IsRule bool
	Count  int
}

// MainSym is a main-rule symbol annotated with the set of ranks that execute
// it.
type MainSym struct {
	Sym
	Ranks *rankset.Set
}

// Main is one merged main-rule group: the shared body for a cluster of
// SPMD-similar ranks.
type Main struct {
	Ranks *rankset.Set // all ranks in the group
	Body  []MainSym
}

// Program is the merged, compressed representation of a whole job's trace.
type Program struct {
	NumRanks  int
	Platform  string
	Impl      string
	Terminals []*trace.Record  // global terminal table
	Clusters  []*trace.Cluster // global computation clusters
	Rules     [][]Sym          // merged non-terminal rules
	Mains     []Main           // one per main-rule cluster

	// MergeRounds records the ⌈log₂P⌉ tree-reduction depth of the
	// terminal-table merge, for reports.
	MergeRounds int
}

// Stats summarizes a Program for reports and Table 3.
type Stats struct {
	Terminals    int
	Clusters     int
	Rules        int
	RuleSymbols  int
	MainGroups   int
	MainSymbols  int
	EncodedBytes int
}

// Stats computes the program's summary.
func (p *Program) Stats() Stats {
	s := Stats{
		Terminals:  len(p.Terminals),
		Clusters:   len(p.Clusters),
		Rules:      len(p.Rules),
		MainGroups: len(p.Mains),
	}
	for _, r := range p.Rules {
		s.RuleSymbols += len(r)
	}
	for _, m := range p.Mains {
		s.MainSymbols += len(m.Body)
	}
	s.EncodedBytes = len(p.Encode())
	return s
}

// mainOf returns the main group containing the rank.
func (p *Program) mainOf(rank int) (*Main, error) {
	for i := range p.Mains {
		if p.Mains[i].Ranks.Contains(rank) {
			return &p.Mains[i], nil
		}
	}
	return nil, fmt.Errorf("merge: rank %d has no main rule", rank)
}

// ExpandRank reconstructs the rank's full global-terminal-id event sequence.
// This is the losslessness check: for every rank the expansion must equal
// the rank's original trace rewritten to global ids.
func (p *Program) ExpandRank(rank int) ([]int, error) {
	m, err := p.mainOf(rank)
	if err != nil {
		return nil, err
	}
	var out []int
	var expand func(s Sym) error
	expand = func(s Sym) error {
		for c := 0; c < s.Count; c++ {
			if !s.IsRule {
				out = append(out, s.Ref)
				continue
			}
			if s.Ref < 0 || s.Ref >= len(p.Rules) {
				return fmt.Errorf("merge: dangling rule ref %d", s.Ref)
			}
			for _, inner := range p.Rules[s.Ref] {
				if err := expand(inner); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, ms := range m.Body {
		if !ms.Ranks.Contains(rank) {
			continue
		}
		if err := expand(ms.Sym); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Encode serializes the program in the compact binary currency shared with
// the trace layer. Its length is the paper's size_C (minus the computation
// code-block table, which code generation appends).
func (p *Program) Encode() []byte {
	var e trace.Enc
	e.Str("SIESTA-PROG1")
	e.Int(p.NumRanks)
	e.Str(p.Platform)
	e.Str(p.Impl)
	e.Int(p.MergeRounds)
	e.Int(len(p.Terminals))
	for _, r := range p.Terminals {
		encodeRecord(&e, r)
	}
	e.Int(len(p.Clusters))
	for _, c := range p.Clusters {
		for i := 0; i < int(perfmodel.NumMetrics); i++ {
			e.Float(c.Sum[i])
		}
		e.Int(c.N)
		e.Float(c.TimeSum)
	}
	e.Int(len(p.Rules))
	for _, r := range p.Rules {
		e.Int(len(r))
		for _, s := range r {
			encodeSym(&e, s)
		}
	}
	e.Int(len(p.Mains))
	for _, m := range p.Mains {
		e.Ints(m.Ranks.Ranks())
		e.Int(len(m.Body))
		for _, ms := range m.Body {
			encodeSym(&e, ms.Sym)
			encodeIntervals(&e, ms.Ranks)
		}
	}
	return e.Bytes()
}

// Digest is the sha256 of the canonical encoding — the program-identity
// half of the checkpoint/restart correctness contract: a resumed synthesis
// must reproduce the digest an uninterrupted run yields. It is cheap
// enough to stamp into journals and inspection output.
func (p *Program) Digest() string {
	sum := sha256.Sum256(p.Encode())
	return hex.EncodeToString(sum[:])
}

func encodeSym(e *trace.Enc, s Sym) {
	e.Int(s.Ref)
	if s.IsRule {
		e.Int(1)
	} else {
		e.Int(0)
	}
	e.Int(s.Count)
}

// encodeIntervals stores a rank set as interval pairs, the compact form the
// generated code's branch conditions use.
func encodeIntervals(e *trace.Enc, s *rankset.Set) {
	iv := s.Intervals()
	e.Int(len(iv))
	for _, p := range iv {
		e.Int(p[0])
		e.Int(p[1])
	}
}

// encodeRecord mirrors the trace codec's record encoding. (The trace package
// keeps its encoder unexported; duplicating the five-line walk here keeps
// the packages decoupled without exporting codec internals.)
func encodeRecord(e *trace.Enc, r *trace.Record) {
	e.Str(r.Func)
	e.Int(r.DestRel)
	e.Int(r.SrcRel)
	e.Int(r.Tag)
	e.Int(r.Bytes)
	e.Int(r.RecvTag)
	e.Int(r.Root)
	e.Str(r.Op)
	e.Int(r.CommPool)
	e.Int(r.NewCommPool)
	e.Int(r.ReqPool)
	e.Ints(r.ReqPools)
	e.Ints(r.Counts)
	e.Int(r.Color)
	e.Int(r.Key)
	e.Int(r.ComputeCluster)
	e.Int(r.FilePool)
	e.Int(r.OffsetRel)
	e.Str(r.FileName)
}
