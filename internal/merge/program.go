// Package merge implements Siesta's inter-process pattern extraction (paper
// §2.6): merging per-rank terminal tables into a global table (with the
// log₂P tree-reduction structure), merging identical non-terminals across
// ranks in depth order, and merging SPMD main rules with the LCS-based
// algorithm under edit-distance clustering. Its output, Program, is the
// compressed whole-job representation that code generation consumes and
// whose encoded size is the paper's size_C.
package merge

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"siesta/internal/perfmodel"
	"siesta/internal/rankset"
	"siesta/internal/trace"
)

// Sym is one grammar symbol in the merged program: a reference to a global
// terminal or to a merged rule, with a run-length count.
type Sym struct {
	Ref    int
	IsRule bool
	Count  int
}

// MainSym is a main-rule symbol annotated with the set of ranks that execute
// it.
type MainSym struct {
	Sym
	Ranks *rankset.Set
}

// Main is one merged main-rule group: the shared body for a cluster of
// SPMD-similar ranks.
type Main struct {
	Ranks *rankset.Set // all ranks in the group
	Body  []MainSym
}

// Program is the merged, compressed representation of a whole job's trace.
type Program struct {
	NumRanks  int
	Platform  string
	Impl      string
	Terminals []*trace.Record  // global terminal table
	Clusters  []*trace.Cluster // global computation clusters
	Rules     [][]Sym          // merged non-terminal rules
	Mains     []Main           // one per main-rule cluster

	// MergeRounds records the ⌈log₂P⌉ tree-reduction depth of the
	// terminal-table merge, for reports.
	MergeRounds int
}

// Stats summarizes a Program for reports and Table 3.
type Stats struct {
	Terminals    int
	Clusters     int
	Rules        int
	RuleSymbols  int
	MainGroups   int
	MainSymbols  int
	EncodedBytes int
}

// Stats computes the program's summary.
func (p *Program) Stats() Stats {
	s := Stats{
		Terminals:  len(p.Terminals),
		Clusters:   len(p.Clusters),
		Rules:      len(p.Rules),
		MainGroups: len(p.Mains),
	}
	for _, r := range p.Rules {
		s.RuleSymbols += len(r)
	}
	for _, m := range p.Mains {
		s.MainSymbols += len(m.Body)
	}
	s.EncodedBytes = len(p.Encode())
	return s
}

// mainOf returns the main group containing the rank.
func (p *Program) mainOf(rank int) (*Main, error) {
	for i := range p.Mains {
		if p.Mains[i].Ranks.Contains(rank) {
			return &p.Mains[i], nil
		}
	}
	return nil, fmt.Errorf("merge: rank %d has no main rule", rank)
}

// ExpandRank reconstructs the rank's full global-terminal-id event sequence.
// This is the losslessness check: for every rank the expansion must equal
// the rank's original trace rewritten to global ids.
func (p *Program) ExpandRank(rank int) ([]int, error) {
	return p.AppendExpansion(rank, nil)
}

// ExpandedLen computes the length of the rank's expansion in O(|grammar|),
// via the same rule-multiplicity fold as TerminalCounts, so callers can
// pre-size buffers for AppendExpansion without expanding twice.
func (p *Program) ExpandedLen(rank int) (int64, error) {
	m, err := p.mainOf(rank)
	if err != nil {
		return 0, err
	}
	memo := make([]int64, len(p.Rules))
	for i := range memo {
		memo[i] = -1
	}
	visiting := make([]bool, len(p.Rules))
	var ruleLen func(ref int) (int64, error)
	ruleLen = func(ref int) (int64, error) {
		if ref < 0 || ref >= len(p.Rules) {
			return 0, fmt.Errorf("merge: dangling rule ref %d", ref)
		}
		if memo[ref] >= 0 {
			return memo[ref], nil
		}
		if visiting[ref] {
			return 0, fmt.Errorf("merge: rule cycle through rule %d", ref)
		}
		visiting[ref] = true
		defer func() { visiting[ref] = false }()
		var n int64
		for _, s := range p.Rules[ref] {
			if !s.IsRule {
				n += int64(s.Count)
				continue
			}
			inner, err := ruleLen(s.Ref)
			if err != nil {
				return 0, err
			}
			n += int64(s.Count) * inner
		}
		memo[ref] = n
		return n, nil
	}
	var total int64
	for _, ms := range m.Body {
		if !ms.Ranks.Contains(rank) {
			continue
		}
		if !ms.IsRule {
			total += int64(ms.Count)
			continue
		}
		inner, err := ruleLen(ms.Ref)
		if err != nil {
			return 0, err
		}
		total += int64(ms.Count) * inner
	}
	return total, nil
}

// AppendExpansion appends the rank's expansion to buf and returns the
// extended slice, letting callers that know the length (ExpandedLen) avoid
// regrowth.
func (p *Program) AppendExpansion(rank int, buf []int) ([]int, error) {
	m, err := p.mainOf(rank)
	if err != nil {
		return nil, err
	}
	out := buf
	var expand func(s Sym) error
	expand = func(s Sym) error {
		for c := 0; c < s.Count; c++ {
			if !s.IsRule {
				out = append(out, s.Ref)
				continue
			}
			if s.Ref < 0 || s.Ref >= len(p.Rules) {
				return fmt.Errorf("merge: dangling rule ref %d", s.Ref)
			}
			for _, inner := range p.Rules[s.Ref] {
				if err := expand(inner); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, ms := range m.Body {
		if !ms.Ranks.Contains(rank) {
			continue
		}
		if err := expand(ms.Sym); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TerminalCounts returns how many times each global terminal id occurs in
// the rank's expansion, without expanding: rule subtrees are folded once into
// sparse per-terminal count maps (memoized across the rank's main symbols)
// and weighted by run-length multiplicities on the way up. The grammar is a
// DAG (cycles are rejected), so the fold is O(|grammar|) per distinct rule
// plus O(distinct terminals) per reference, versus O(|trace|) for
// ExpandRank. This is the core of the paper's claim
// that the grammar is an exact compressed representation: any per-terminal
// additive metric over the trace is computable from these counts.
func (p *Program) TerminalCounts(rank int) (map[int]int64, error) {
	return p.NewTerminalCounter().Counts(rank)
}

// TerminalCounter performs the TerminalCounts fold with the per-rule memo
// shared across calls, so folding all P ranks costs O(|grammar|) once plus
// O(main body × distinct terminals) per rank instead of rebuilding every
// rule's count map P times. The counter is not safe for concurrent use.
type TerminalCounter struct {
	p        *Program
	memo     []map[int]int64
	visiting []bool
}

// NewTerminalCounter prepares a counter over the program's rules.
func (p *Program) NewTerminalCounter() *TerminalCounter {
	return &TerminalCounter{
		p:        p,
		memo:     make([]map[int]int64, len(p.Rules)),
		visiting: make([]bool, len(p.Rules)),
	}
}

func (c *TerminalCounter) ruleCounts(ref int) (map[int]int64, error) {
	p := c.p
	if ref < 0 || ref >= len(p.Rules) {
		return nil, fmt.Errorf("merge: dangling rule ref %d", ref)
	}
	if c.memo[ref] != nil {
		return c.memo[ref], nil
	}
	if c.visiting[ref] {
		return nil, fmt.Errorf("merge: rule cycle through rule %d", ref)
	}
	c.visiting[ref] = true
	defer func() { c.visiting[ref] = false }()
	counts := map[int]int64{}
	for _, s := range p.Rules[ref] {
		if !s.IsRule {
			counts[s.Ref] += int64(s.Count)
			continue
		}
		inner, err := c.ruleCounts(s.Ref)
		if err != nil {
			return nil, err
		}
		for t, n := range inner {
			counts[t] += int64(s.Count) * n
		}
	}
	c.memo[ref] = counts
	return counts, nil
}

// CountsDense writes the rank's per-terminal occurrence counts into out,
// which must have one entry per global terminal; references outside the
// terminal table are ignored, as in the sparse fold. It exists for callers
// folding every rank, where a map per rank is measurable.
func (c *TerminalCounter) CountsDense(rank int, out []int64) error {
	for i := range out {
		out[i] = 0
	}
	m, err := c.p.mainOf(rank)
	if err != nil {
		return err
	}
	for _, ms := range m.Body {
		if !ms.Ranks.Contains(rank) {
			continue
		}
		if !ms.IsRule {
			if ms.Ref >= 0 && ms.Ref < len(out) {
				out[ms.Ref] += int64(ms.Count)
			}
			continue
		}
		inner, err := c.ruleCounts(ms.Ref)
		if err != nil {
			return err
		}
		for t, n := range inner {
			if t >= 0 && t < len(out) {
				out[t] += int64(ms.Count) * n
			}
		}
	}
	return nil
}

// Counts returns the rank's per-terminal occurrence counts.
func (c *TerminalCounter) Counts(rank int) (map[int]int64, error) {
	m, err := c.p.mainOf(rank)
	if err != nil {
		return nil, err
	}
	out := map[int]int64{}
	for _, ms := range m.Body {
		if !ms.Ranks.Contains(rank) {
			continue
		}
		if !ms.IsRule {
			out[ms.Ref] += int64(ms.Count)
			continue
		}
		inner, err := c.ruleCounts(ms.Ref)
		if err != nil {
			return nil, err
		}
		for t, n := range inner {
			out[t] += int64(ms.Count) * n
		}
	}
	return out, nil
}

// Encode serializes the program in the compact binary currency shared with
// the trace layer. Its length is the paper's size_C (minus the computation
// code-block table, which code generation appends).
func (p *Program) Encode() []byte {
	var e trace.Enc
	e.Str("SIESTA-PROG1")
	e.Int(p.NumRanks)
	e.Str(p.Platform)
	e.Str(p.Impl)
	e.Int(p.MergeRounds)
	e.Int(len(p.Terminals))
	for _, r := range p.Terminals {
		encodeRecord(&e, r)
	}
	e.Int(len(p.Clusters))
	for _, c := range p.Clusters {
		for i := 0; i < int(perfmodel.NumMetrics); i++ {
			e.Float(c.Sum[i])
		}
		e.Int(c.N)
		e.Float(c.TimeSum)
	}
	e.Int(len(p.Rules))
	for _, r := range p.Rules {
		e.Int(len(r))
		for _, s := range r {
			encodeSym(&e, s)
		}
	}
	e.Int(len(p.Mains))
	for _, m := range p.Mains {
		e.Ints(m.Ranks.Ranks())
		e.Int(len(m.Body))
		for _, ms := range m.Body {
			encodeSym(&e, ms.Sym)
			encodeIntervals(&e, ms.Ranks)
		}
	}
	return e.Bytes()
}

// Digest is the sha256 of the canonical encoding — the program-identity
// half of the checkpoint/restart correctness contract: a resumed synthesis
// must reproduce the digest an uninterrupted run yields. It is cheap
// enough to stamp into journals and inspection output.
func (p *Program) Digest() string {
	sum := sha256.Sum256(p.Encode())
	return hex.EncodeToString(sum[:])
}

func encodeSym(e *trace.Enc, s Sym) {
	e.Int(s.Ref)
	if s.IsRule {
		e.Int(1)
	} else {
		e.Int(0)
	}
	e.Int(s.Count)
}

// encodeIntervals stores a rank set as interval pairs, the compact form the
// generated code's branch conditions use.
func encodeIntervals(e *trace.Enc, s *rankset.Set) {
	iv := s.Intervals()
	e.Int(len(iv))
	for _, p := range iv {
		e.Int(p[0])
		e.Int(p[1])
	}
}

// encodeRecord mirrors the trace codec's record encoding. (The trace package
// keeps its encoder unexported; duplicating the five-line walk here keeps
// the packages decoupled without exporting codec internals.)
func encodeRecord(e *trace.Enc, r *trace.Record) {
	e.Str(r.Func)
	e.Int(r.DestRel)
	e.Int(r.SrcRel)
	e.Int(r.Tag)
	e.Int(r.Bytes)
	e.Int(r.RecvTag)
	e.Int(r.Root)
	e.Str(r.Op)
	e.Int(r.CommPool)
	e.Int(r.NewCommPool)
	e.Int(r.ReqPool)
	e.Ints(r.ReqPools)
	e.Ints(r.Counts)
	e.Int(r.Color)
	e.Int(r.Key)
	e.Int(r.ComputeCluster)
	e.Int(r.FilePool)
	e.Int(r.OffsetRel)
	e.Str(r.FileName)
}
