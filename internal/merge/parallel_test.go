package merge

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"siesta/internal/perfmodel"
	"siesta/internal/trace"
)

// Regression for the asymmetric clusterDist: the old denominator used only
// b, so dist(a,b) != dist(b,a) and cluster dedup depended on which rank was
// visited first. The symmetric distance must be order-free.
func TestClusterDistSymmetric(t *testing.T) {
	a := perfmodel.Counters{100, 1e6, 3, 0, 50, 7}
	b := perfmodel.Counters{104, 1.2e6, 3, 2, 45, 7}
	if d1, d2 := clusterDist(a, b), clusterDist(b, a); d1 != d2 {
		t.Fatalf("clusterDist asymmetric: d(a,b)=%g d(b,a)=%g", d1, d2)
	}
	// The symmetric form is the max of both one-sided relative diffs: for
	// a=100 vs b=104 that is 4/100, not 4/104.
	x := perfmodel.Counters{100}
	y := perfmodel.Counters{104}
	if got, want := clusterDist(x, y), 0.04; math.Abs(got-want) > 1e-12 {
		t.Fatalf("clusterDist(100,104)=%g, want %g", got, want)
	}
	// Zeros are floored at 1 in the denominator.
	z := perfmodel.Counters{}
	o := perfmodel.Counters{0.5}
	if got := clusterDist(z, o); got != 0.5 {
		t.Fatalf("clusterDist(0,0.5)=%g, want 0.5", got)
	}
}

func globalizedEqual(t *testing.T, a, b *Globalized) {
	t.Helper()
	if len(a.Terminals) != len(b.Terminals) {
		t.Fatalf("terminal counts differ: %d vs %d", len(a.Terminals), len(b.Terminals))
	}
	for i := range a.Terminals {
		if a.Terminals[i].KeyString() != b.Terminals[i].KeyString() {
			t.Fatalf("terminal %d differs:\n%s\nvs\n%s", i,
				a.Terminals[i].KeyString(), b.Terminals[i].KeyString())
		}
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		if !reflect.DeepEqual(a.Clusters[i], b.Clusters[i]) {
			t.Fatalf("cluster %d differs: %+v vs %+v", i, a.Clusters[i], b.Clusters[i])
		}
	}
	if !reflect.DeepEqual(a.Seqs, b.Seqs) {
		t.Fatal("per-rank sequences differ")
	}
}

// The determinism invariant at the globalize layer: every parallelism value
// must produce the identical global table, cluster table, and sequences.
func TestGlobalizeParallelMatchesSequential(t *testing.T) {
	traces := map[string]*trace.Trace{
		"ring8":          ringTrace(t, 8, 4),
		"ring13":         ringTrace(t, 13, 3), // non-power-of-two tree
		"masterWorker8":  masterWorkerTrace(t, 8, 4),
		"masterWorker16": masterWorkerTrace(t, 16, 2),
	}
	for name, tr := range traces {
		base := GlobalizeParallel(tr, 0.05, 1)
		for _, par := range []int{2, 4, 8} {
			got := GlobalizeParallel(tr, 0.05, par)
			t.Run(fmt.Sprintf("%s/par%d", name, par), func(t *testing.T) {
				globalizedEqual(t, base, got)
			})
		}
	}
}

// The determinism invariant at the program layer: Build output must be
// byte-identical for every parallelism value.
func TestBuildParallelByteIdentical(t *testing.T) {
	traces := map[string]*trace.Trace{
		"ring16":        ringTrace(t, 16, 5),
		"masterWorker9": masterWorkerTrace(t, 9, 3),
	}
	for name, tr := range traces {
		p1, err := Build(tr, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc1 := p1.Encode()
		for _, par := range []int{2, 4, 8} {
			pN, err := Build(tr, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s par=%d: %v", name, par, err)
			}
			if !bytes.Equal(enc1, pN.Encode()) {
				t.Fatalf("%s: Build output with Parallelism=%d differs from sequential", name, par)
			}
		}
	}
}

// The bucketed index must return exactly the linear scan's answer (the
// lowest-indexed cluster within the threshold) for every query, including
// tables past the cutover where the 3^m neighbourhood probe takes over.
func TestClusterIndexMatchesLinearScan(t *testing.T) {
	const th = 0.05
	rng := rand.New(rand.NewSource(7))
	randomRep := func() perfmodel.Counters {
		var c perfmodel.Counters
		for i := range c {
			switch rng.Intn(4) {
			case 0:
				c[i] = 0 // exercise the max(v,1) floor
			case 1:
				c[i] = rng.Float64() // sub-1 values quantize to cell 0
			default:
				c[i] = math.Exp(rng.Float64() * 25) // up to ~7e10
			}
		}
		return c
	}

	indexed := newPartial(th)
	var linear []*trace.Cluster
	linearAdd := func(c *trace.Cluster) int {
		for i, gc := range linear {
			if clusterDist(c.Rep, gc.Rep) <= th {
				gc.Sum.Add(c.Sum)
				gc.N += c.N
				gc.TimeSum += c.TimeSum
				return i
			}
		}
		linear = append(linear, c)
		return len(linear) - 1
	}

	var reps []perfmodel.Counters
	for i := 0; i < 3000; i++ {
		var rep perfmodel.Counters
		if len(reps) > 0 && rng.Intn(3) == 0 {
			// Near-duplicate of an earlier rep: perturb each metric by up to
			// ±8% so queries land both inside and just outside the 5%
			// threshold, straddling quantization cell boundaries.
			rep = reps[rng.Intn(len(reps))]
			for j := range rep {
				rep[j] *= 1 + (rng.Float64()-0.5)*0.16
			}
		} else {
			rep = randomRep()
		}
		reps = append(reps, rep)

		ca := &trace.Cluster{Rep: rep, Sum: rep, N: 1}
		cb := &trace.Cluster{Rep: rep, Sum: rep, N: 1}
		ia := indexed.addCluster(ca, th)
		ib := linearAdd(cb)
		if ia != ib {
			t.Fatalf("insert %d: indexed chose cluster %d, linear scan chose %d", i, ia, ib)
		}
	}
	if len(indexed.clusters) != len(linear) {
		t.Fatalf("table sizes diverged: indexed %d vs linear %d", len(indexed.clusters), len(linear))
	}
	if len(indexed.clusters) < indexCutover {
		t.Fatalf("test never reached the indexed path: only %d clusters (cutover %d)",
			len(indexed.clusters), indexCutover)
	}
	for i := range linear {
		if !reflect.DeepEqual(indexed.clusters[i], linear[i]) {
			t.Fatalf("cluster %d differs between indexed and linear tables", i)
		}
	}
}

// A threshold of exactly 0 must still dedup identical reps (the index is
// disabled; the linear path compares with <= 0).
func TestGlobalizeZeroThreshold(t *testing.T) {
	tr := ringTrace(t, 4, 2)
	g := GlobalizeParallel(tr, 0, 4)
	if len(g.Clusters) != 1 {
		t.Fatalf("got %d clusters at threshold 0, want 1 (identical kernels)", len(g.Clusters))
	}
}

func TestParfor(t *testing.T) {
	for _, par := range []int{0, 1, 3, 8, 100} {
		n := 57
		seen := make([]int32, n)
		parfor(n, par, func(i int) { seen[i]++ })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("par=%d: index %d executed %d times", par, i, c)
			}
		}
	}
	parfor(0, 4, func(int) { t.Fatal("parfor(0) must not invoke fn") })
}

func TestParforCheap(t *testing.T) {
	// Below the cutoff parforCheap must not spawn: with par huge and fn
	// recording goroutine-visible state serially, any spawned worker would
	// race on the unsynchronized counter and -race would flag it.
	n := parforSerialCutoff - 1
	count := 0
	parforCheap(n, 64, func(i int) { count++ })
	if count != n {
		t.Fatalf("parforCheap ran %d iterations, want %d", count, n)
	}
	// At or above the cutoff it must still cover every index exactly once.
	n = parforSerialCutoff + 7
	seen := make([]int32, n)
	parforCheap(n, 4, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

// BenchmarkParforOverhead measures the fixed cost of one parfor dispatch —
// goroutine spawn, chunk-claim atomics, and join — with a near-empty body.
// This is the number parforSerialCutoff is derived from; see DESIGN.md §14.
func BenchmarkParforOverhead(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				parfor(64, par, func(j int) { sink.Add(1) })
			}
		})
	}
}
