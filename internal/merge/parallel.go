package merge

import (
	"math"
	"sync"
	"sync/atomic"

	"siesta/internal/perfmodel"
	"siesta/internal/trace"
)

// This file implements the inter-process terminal-table merge as the
// paper's ⌈log₂P⌉-round pairwise tree reduction (§2.6.1), executed by a
// bounded worker pool.
//
// Determinism is the load-bearing invariant: the server's artifact cache
// and OptionsFingerprint assume that two syntheses with equal options
// produce byte-identical programs, regardless of Options.Parallelism. The
// reduction therefore never races on order: the tree's shape is a pure
// function of the rank count, every pairwise merge is a pure function of
// its two inputs (left table order is preserved, unmatched right entries
// append in right order), and the worker pool only decides *which
// goroutine* executes a given merge, never the merge DAG itself. Running
// with one worker executes the identical tree serially, so Parallelism=1
// and Parallelism=N outputs are byte-identical by construction.

// partial is one node of the reduction tree: a globalized table covering a
// contiguous run of ranks.
type partial struct {
	clusters []*trace.Cluster
	cindex   *clusterIndex
	records  []*trace.Record
	keys     []string // records[i].KeyString(), cached across rounds
	recIndex map[string]int
	// recMaps maps each covered rank's original local table ids to this
	// partial's record ids; sequences are rewritten once, at the root.
	// The id slices are pooled (trace.IntBuf): a merge that composes a
	// child map into the parent releases the child's buffer, and the root
	// releases everything after the sequence rewrite.
	recMaps map[int]*trace.IntBuf
}

func newPartial(th float64) *partial {
	return &partial{
		cindex:   newClusterIndex(th),
		recIndex: map[string]int{},
		recMaps:  map[int]*trace.IntBuf{},
	}
}

// addCluster interns one cluster into the partial: it merges into the
// lowest-indexed existing cluster within the threshold, or appends. The
// returned id is the cluster's global index in this partial.
func (p *partial) addCluster(c *trace.Cluster, th float64) int {
	if found := p.cindex.lookup(p.clusters, c.Rep); found >= 0 {
		gc := p.clusters[found]
		gc.Sum.Add(c.Sum)
		gc.N += c.N
		gc.TimeSum += c.TimeSum
		return found
	}
	p.clusters = append(p.clusters, c)
	id := len(p.clusters) - 1
	p.cindex.insert(c.Rep, id)
	return id
}

// addRecord interns one record (whose ComputeCluster, if any, is already in
// this partial's cluster space) and returns its id. The partial takes
// ownership of r.
func (p *partial) addRecord(r *trace.Record, key string) int {
	if id, ok := p.recIndex[key]; ok {
		return id
	}
	id := len(p.records)
	p.records = append(p.records, r)
	p.keys = append(p.keys, key)
	p.recIndex[key] = id
	return id
}

// leafPartial globalizes a single rank: local clusters and records are
// interned through the same match-or-append path the inner tree nodes use,
// so one rank's clusters can still collapse when the merge threshold is
// coarser than the tracing threshold.
func leafPartial(rt *trace.RankTrace, th float64) *partial {
	p := newPartial(th)
	clusterMap := trace.GetInts(len(rt.Clusters))
	for li, lc := range rt.Clusters {
		cp := *lc
		clusterMap.S[li] = p.addCluster(&cp, th)
	}
	recMap := trace.GetInts(len(rt.Table))
	for li, r := range rt.Table {
		gr := r.Clone()
		if gr.IsCompute() {
			gr.ComputeCluster = clusterMap.S[gr.ComputeCluster]
		}
		recMap.S[li] = p.addRecord(gr, gr.KeyString())
	}
	clusterMap.Unref()
	p.recMaps[rt.Rank] = recMap
	return p
}

// mergePartials folds right into left: left's cluster and record order is
// preserved, right's unmatched entries append in right order. This is the
// pure pairwise merge the reduction tree is built from.
func mergePartials(left, right *partial, th float64) {
	clusterMap := trace.GetInts(len(right.clusters))
	for i, rc := range right.clusters {
		clusterMap.S[i] = left.addCluster(rc, th)
	}
	recMap := trace.GetInts(len(right.records))
	for j, r := range right.records {
		key := right.keys[j]
		if r.IsCompute() {
			if mapped := clusterMap.S[r.ComputeCluster]; mapped != r.ComputeCluster {
				r.ComputeCluster = mapped
				key = r.KeyString()
			}
		}
		recMap.S[j] = left.addRecord(r, key)
	}
	clusterMap.Unref()
	for rank, rm := range right.recMaps {
		composed := trace.GetInts(len(rm.S))
		for i, id := range rm.S {
			composed.S[i] = recMap.S[id]
		}
		rm.Unref()
		left.recMaps[rank] = composed
	}
	recMap.Unref()
	right.recMaps = nil
}

// reducePartials folds a slice of leaf partials (one per rank, in rank
// order) down to its root with the ⌈log₂P⌉ pairwise reduction; round k
// merges partials 2k·s apart, and every merge within a round is
// independent. The tree's shape depends only on len(parts), so batch and
// streaming leaves reduce through the identical merge DAG.
func reducePartials(parts []*partial, clusterThreshold float64, parallelism int) *partial {
	n := len(parts)
	for stride := 1; stride < n; stride *= 2 {
		var pairs [][2]int
		for i := 0; i+stride < n; i += 2 * stride {
			pairs = append(pairs, [2]int{i, i + stride})
		}
		parfor(len(pairs), parallelism, func(k int) {
			mergePartials(parts[pairs[k][0]], parts[pairs[k][1]], clusterThreshold)
		})
	}
	return parts[0]
}

// GlobalizeParallel merges the per-rank terminal tables and computation
// clusters with the paper's pairwise tree reduction, using up to
// parallelism workers per round. Output is byte-identical for every
// parallelism value (see the file comment); parallelism ≤ 1 runs the same
// tree serially.
func GlobalizeParallel(tr *trace.Trace, clusterThreshold float64, parallelism int) *Globalized {
	numRanks := len(tr.Ranks)
	g := &Globalized{Seqs: make([][]int, numRanks)}
	if numRanks == 0 {
		return g
	}

	parts := make([]*partial, numRanks)
	parfor(numRanks, parallelism, func(i int) {
		parts[i] = leafPartial(tr.Ranks[i], clusterThreshold)
	})

	root := reducePartials(parts, clusterThreshold, parallelism)
	g.Terminals = root.records
	g.Clusters = root.clusters
	g.seqBufs = make([]*trace.IntBuf, numRanks)
	parfor(numRanks, parallelism, func(i int) {
		rt := tr.Ranks[i]
		rm := root.recMaps[rt.Rank]
		seq := trace.GetInts(len(rt.Events))
		for j, id := range rt.Events {
			seq.S[j] = rm.S[id]
		}
		g.seqBufs[rt.Rank] = seq
		g.Seqs[rt.Rank] = seq.S
	})
	for _, rm := range root.recMaps {
		rm.Unref()
	}
	root.recMaps = nil
	return g
}

// --- bucketed cluster index ------------------------------------------------

// clusterIndex accelerates the "lowest-indexed cluster within the
// threshold" query: cluster representatives are quantized onto a
// logarithmic grid with cell size ln(1+threshold) per metric, so any two
// representatives within the (symmetric) relative threshold land in the
// same or adjacent cells. A lookup therefore only inspects the 3^m
// neighbouring cells instead of scanning every cluster; for small tables a
// plain scan is cheaper and provably returns the same answer (both pick
// the minimum matching index).
type clusterIndex struct {
	th      float64
	invCell float64 // 1 / ln(1+th)
	cells   map[clusterCell][]int
}

type clusterCell [perfmodel.NumMetrics]int16

// indexCutover is the cluster count below which a linear scan beats the
// 3^NumMetrics-cell neighbourhood probe.
const indexCutover = 64

func newClusterIndex(th float64) *clusterIndex {
	ci := &clusterIndex{th: th}
	if th > 0 {
		ci.invCell = 1 / math.Log1p(th)
		ci.cells = map[clusterCell][]int{}
	}
	return ci
}

func (ci *clusterIndex) cellOf(c perfmodel.Counters) clusterCell {
	var cell clusterCell
	for i, v := range c {
		if v < 1 {
			v = 1
		}
		cell[i] = int16(math.Log(v) * ci.invCell)
	}
	return cell
}

func (ci *clusterIndex) insert(rep perfmodel.Counters, id int) {
	if ci.cells == nil {
		return
	}
	cell := ci.cellOf(rep)
	ci.cells[cell] = append(ci.cells[cell], id)
}

// lookup returns the lowest-indexed cluster whose representative is within
// the symmetric threshold of rep, or -1.
func (ci *clusterIndex) lookup(clusters []*trace.Cluster, rep perfmodel.Counters) int {
	if ci.cells == nil || len(clusters) < indexCutover {
		for i, gc := range clusters {
			if clusterDist(rep, gc.Rep) <= ci.th {
				return i
			}
		}
		return -1
	}
	center := ci.cellOf(rep)
	best := -1
	// Walk the 3^m neighbourhood with a base-3 odometer. If
	// symDist(a,b) ≤ th then |ln(max(aᵢ,1)) − ln(max(bᵢ,1))| ≤ ln(1+th)
	// for every metric i, so every admissible cluster is at most one cell
	// away on every axis.
	var offs [perfmodel.NumMetrics]int
	for {
		cell := center
		for i, o := range offs {
			cell[i] += int16(o - 1)
		}
		for _, id := range ci.cells[cell] {
			if (best < 0 || id < best) && clusterDist(rep, clusters[id].Rep) <= ci.th {
				best = id
			}
		}
		i := 0
		for ; i < len(offs); i++ {
			offs[i]++
			if offs[i] < 3 {
				break
			}
			offs[i] = 0
		}
		if i == len(offs) {
			break
		}
	}
	return best
}

// --- worker pool -----------------------------------------------------------

// chunksPerWorker is how many chunks each worker claims on average: enough
// slack to rebalance a straggling chunk, few enough that the per-chunk
// atomic is amortized over many items. 4 is the conventional sweet spot —
// with W workers the slowest worker idles for at most ~1/(4W) of the stage.
const chunksPerWorker = 4

// parforSerialCutoff is the item count below which a parfor over *cheap*
// items (sub-microsecond each, e.g. one convertBody per rule) runs
// serially. Measured by BenchmarkParforOverhead (see DESIGN.md §14): one
// parfor dispatch costs ~1–5µs over the plain loop (par 2–8) in goroutine
// create, schedule, and join, so a stage has to bring at least a few tens
// of microseconds of real work before spreading it pays. Callers with heavy
// items (whole-rank grammar inference, pairwise table merges) bypass this
// via plain parfor, which only degenerates when n or par is 1.
const parforSerialCutoff = 64

// parfor runs fn(0..n-1) on up to par workers, claiming chunks of indices
// with one atomic add per chunk. The calling goroutine participates as a
// worker, so par=2 spawns a single goroutine. Iterations must be
// independent; with par ≤ 1 it degenerates to a plain loop, which is what
// makes sequential and parallel runs execute the same code.
func parfor(n, par int, fn func(int)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	grain := n / (par * chunksPerWorker)
	if grain < 1 {
		grain = 1
	}
	var next atomic.Int64
	work := func() {
		for {
			hi := int(next.Add(int64(grain)))
			lo := hi - grain
			if lo >= n {
				return
			}
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// parforCheap is parfor for stages whose per-item cost is far below the
// dispatch cost: it stays serial until the item count clears the measured
// cutoff.
func parforCheap(n, par int, fn func(int)) {
	if n < parforSerialCutoff {
		par = 1
	}
	parfor(n, par, fn)
}
