package merge

import (
	"testing"

	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/rankset"
	"siesta/internal/trace"
)

// ringTrace records a symmetric SPMD ring app.
func ringTrace(t *testing.T, size, iters int) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(size, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: size, Interceptor: rec})
	_, err := w.Run(func(r *mpi.Rank) {
		c := r.World()
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		for it := 0; it < iters; it++ {
			r.Compute(perfmodel.Kernel{IntOps: 1e6, Loads: 4e5, Stores: 2e5, Branches: 1e5})
			r.Sendrecv(c, next, 0, 2048, prev, 0)
			r.Allreduce(c, 8, mpi.OpSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace("A", "openmpi")
}

// masterWorkerTrace records an asymmetric app: rank 0 behaves differently.
func masterWorkerTrace(t *testing.T, size, iters int) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(size, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: size, Interceptor: rec})
	_, err := w.Run(func(r *mpi.Rank) {
		c := r.World()
		for it := 0; it < iters; it++ {
			if r.Rank() == 0 {
				for src := 1; src < r.Size(); src++ {
					r.Recv(c, src, 1)
				}
				r.Bcast(c, 0, 64)
			} else {
				r.Compute(perfmodel.Kernel{FPOps: 2e6, Loads: 1e6, Stores: 5e5, Branches: 2e5})
				r.Send(c, 0, 1, 512)
				r.Bcast(c, 0, 64)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace("A", "openmpi")
}

func TestGlobalizeDeduplicatesAcrossRanks(t *testing.T) {
	tr := ringTrace(t, 8, 4)
	g := Globalize(tr, 0.05)
	// The symmetric ring shares all terminals: the global table should be
	// no bigger than one rank's local table.
	if len(g.Terminals) > len(tr.Ranks[0].Table) {
		t.Errorf("global table has %d records; rank 0 alone has %d — dedup failed",
			len(g.Terminals), len(tr.Ranks[0].Table))
	}
	if len(g.Seqs) != 8 {
		t.Fatal("one sequence per rank expected")
	}
	for rank, seq := range g.Seqs {
		if len(seq) != len(tr.Ranks[rank].Events) {
			t.Errorf("rank %d sequence length changed", rank)
		}
		for _, id := range seq {
			if id < 0 || id >= len(g.Terminals) {
				t.Fatalf("rank %d references missing terminal %d", rank, id)
			}
		}
	}
}

func TestGlobalizeMergesComputeClusters(t *testing.T) {
	tr := ringTrace(t, 8, 4)
	g := Globalize(tr, 0.05)
	// All ranks run the same kernel without noise: exactly one cluster.
	if len(g.Clusters) != 1 {
		t.Fatalf("got %d global clusters, want 1", len(g.Clusters))
	}
	if g.Clusters[0].N != 8*4 {
		t.Errorf("cluster population %d, want 32", g.Clusters[0].N)
	}
}

func TestBuildLosslessSPMD(t *testing.T) {
	tr := ringTrace(t, 8, 6)
	p, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Build self-checks expansion; re-verify independently here.
	g := Globalize(tr, 0.05)
	for rank := range g.Seqs {
		got, err := p.ExpandRank(rank)
		if err != nil {
			t.Fatal(err)
		}
		if !intsEqual(got, g.Seqs[rank]) {
			t.Fatalf("rank %d expansion mismatch", rank)
		}
	}
}

func TestBuildSPMDMergesToOneMain(t *testing.T) {
	tr := ringTrace(t, 8, 6)
	p, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Mains) != 1 {
		t.Fatalf("symmetric SPMD app should merge to 1 main group, got %d", len(p.Mains))
	}
	if p.Mains[0].Ranks.Len() != 8 {
		t.Errorf("main group covers %d ranks, want 8", p.Mains[0].Ranks.Len())
	}
	// Every symbol should be executed by all ranks (fully symmetric app).
	for i, ms := range p.Mains[0].Body {
		if ms.Ranks.Len() != 8 {
			t.Errorf("symbol %d executed by %s, want all ranks", i, ms.Ranks)
		}
	}
}

func TestBuildMasterWorkerLossless(t *testing.T) {
	tr := masterWorkerTrace(t, 6, 5)
	p, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := Globalize(tr, 0.05)
	for rank := range g.Seqs {
		got, err := p.ExpandRank(rank)
		if err != nil {
			t.Fatal(err)
		}
		if !intsEqual(got, g.Seqs[rank]) {
			t.Fatalf("rank %d expansion mismatch", rank)
		}
	}
	// Note: workers 1..5 all send to rank 0 *absolutely*, so after
	// relative-rank encoding their send terminals differ per rank and the
	// paper's merging scheme cannot collapse them (relative ranks are
	// designed for mesh neighbours, not hub topologies). Rank 0's main
	// must at least sit in its own group, apart from any worker.
	for _, m := range p.Mains {
		if m.Ranks.Contains(0) && m.Ranks.Len() != 1 {
			t.Errorf("master main merged with workers: %s", m.Ranks)
		}
	}
	if len(p.Mains) < 2 {
		t.Errorf("master and workers cannot share one main group")
	}
}

func TestBuildDisableMainMerge(t *testing.T) {
	tr := ringTrace(t, 4, 3)
	p, err := Build(tr, Options{DisableMainMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Mains) != 4 {
		t.Fatalf("with merge disabled every rank keeps its main: got %d", len(p.Mains))
	}
	for rank := 0; rank < 4; rank++ {
		if _, err := p.ExpandRank(rank); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergedSmallerThanUnmerged(t *testing.T) {
	tr := ringTrace(t, 16, 10)
	merged, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := Build(tr, Options{DisableMainMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Encode()) >= len(unmerged.Encode()) {
		t.Errorf("LCS merge should shrink the program: %d vs %d bytes",
			len(merged.Encode()), len(unmerged.Encode()))
	}
}

func TestSizeCSublinearInRanks(t *testing.T) {
	small, err := Build(ringTrace(t, 4, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(ringTrace(t, 32, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sSmall, sBig := len(small.Encode()), len(big.Encode())
	if float64(sBig) > 3*float64(sSmall) {
		t.Errorf("8× ranks should not grow size_C 8×: %d vs %d bytes", sSmall, sBig)
	}
}

func TestCompressionVsRawTrace(t *testing.T) {
	tr := ringTrace(t, 8, 50)
	p, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := tr.RawSize()
	sizeC := len(p.Encode())
	if sizeC*10 > raw {
		t.Errorf("size_C (%d) should be well under raw trace size (%d)", sizeC, raw)
	}
}

func TestStats(t *testing.T) {
	p, err := Build(ringTrace(t, 4, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Terminals == 0 || s.MainGroups != 1 || s.EncodedBytes == 0 {
		t.Errorf("stats look wrong: %+v", s)
	}
	if s.Clusters != len(p.Clusters) {
		t.Error("cluster count mismatch")
	}
}

func TestExpandRankErrors(t *testing.T) {
	p := &Program{NumRanks: 2}
	if _, err := p.ExpandRank(0); err == nil {
		t.Fatal("missing main should error")
	}
	p.Mains = []Main{{Ranks: rankset.Single(0), Body: []MainSym{
		{Sym: Sym{Ref: 5, IsRule: true, Count: 1}, Ranks: rankset.Single(0)},
	}}}
	if _, err := p.ExpandRank(0); err == nil {
		t.Fatal("dangling rule ref should error")
	}
}

func TestEditDistance(t *testing.T) {
	a := []Sym{{Ref: 1, Count: 1}, {Ref: 2, Count: 1}, {Ref: 3, Count: 1}}
	b := []Sym{{Ref: 1, Count: 1}, {Ref: 9, Count: 1}, {Ref: 3, Count: 1}}
	if d := editDistance(a, a); d != 0 {
		t.Errorf("self distance %d", d)
	}
	if d := editDistance(a, b); d != 1 {
		t.Errorf("distance %d, want 1", d)
	}
	if d := editDistance(a, nil); d != 3 {
		t.Errorf("distance to empty %d, want 3", d)
	}
	// Count participates in identity.
	c := []Sym{{Ref: 1, Count: 2}, {Ref: 2, Count: 1}, {Ref: 3, Count: 1}}
	if d := editDistance(a, c); d != 1 {
		t.Errorf("count-differing distance %d, want 1", d)
	}
}

func TestLCSMergePaperExample(t *testing.T) {
	// Two mains sharing a common subsequence; off-LCS symbols keep their
	// own rank lists in original order (paper Fig. 3).
	a := Main{Ranks: rankset.Single(0), Body: []MainSym{
		{Sym: Sym{Ref: 1, Count: 1}, Ranks: rankset.Single(0)},
		{Sym: Sym{Ref: 2, Count: 1}, Ranks: rankset.Single(0)},
		{Sym: Sym{Ref: 3, Count: 1}, Ranks: rankset.Single(0)},
	}}
	b := Main{Ranks: rankset.Single(1), Body: []MainSym{
		{Sym: Sym{Ref: 1, Count: 1}, Ranks: rankset.Single(1)},
		{Sym: Sym{Ref: 4, Count: 1}, Ranks: rankset.Single(1)},
		{Sym: Sym{Ref: 3, Count: 1}, Ranks: rankset.Single(1)},
	}}
	m := lcsMerge(a, b)
	if len(m.Body) != 4 {
		t.Fatalf("merged body has %d symbols, want 4", len(m.Body))
	}
	if !m.Body[0].Ranks.Equal(rankset.New(0, 1)) {
		t.Error("shared head should carry both ranks")
	}
	if !m.Body[3].Ranks.Equal(rankset.New(0, 1)) {
		t.Error("shared tail should carry both ranks")
	}
	// Per-rank projections preserve order.
	project := func(rank int) []int {
		var out []int
		for _, ms := range m.Body {
			if ms.Ranks.Contains(rank) {
				out = append(out, ms.Sym.Ref)
			}
		}
		return out
	}
	if got := project(0); !intsEqual(got, []int{1, 2, 3}) {
		t.Errorf("rank 0 projection %v", got)
	}
	if got := project(1); !intsEqual(got, []int{1, 4, 3}) {
		t.Errorf("rank 1 projection %v", got)
	}
}

func TestSimilarThreshold(t *testing.T) {
	a := []Sym{{Ref: 1, Count: 1}, {Ref: 2, Count: 1}, {Ref: 3, Count: 1}, {Ref: 4, Count: 1}}
	b := []Sym{{Ref: 1, Count: 1}, {Ref: 2, Count: 1}, {Ref: 3, Count: 1}, {Ref: 9, Count: 1}}
	if !similar(a, b, 0.3) {
		t.Error("25% distance should pass a 30% threshold")
	}
	c := []Sym{{Ref: 9, Count: 1}, {Ref: 8, Count: 1}, {Ref: 7, Count: 1}, {Ref: 6, Count: 1}}
	if similar(a, c, 0.3) {
		t.Error("fully different mains should not cluster")
	}
	if !similar(nil, nil, 0.3) {
		t.Error("two empty mains are similar")
	}
}

func TestRunLengthAblation(t *testing.T) {
	tr := ringTrace(t, 4, 200)
	withRLE, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withoutRLE, err := Build(tr, Options{DisableRunLength: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withRLE.Encode()) >= len(withoutRLE.Encode()) {
		t.Errorf("run-length should shrink periodic traces: %d vs %d",
			len(withRLE.Encode()), len(withoutRLE.Encode()))
	}
}
