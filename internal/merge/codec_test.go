package merge

import (
	"bytes"
	"testing"
)

// Round-tripping through Decode must reproduce the exact encoded bytes:
// byte equality pins every field of the serialization contract at once.
func TestProgramCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(t *testing.T) *Program
	}{
		{"spmd-ring", func(t *testing.T) *Program {
			p, err := Build(ringTrace(t, 8, 4), Options{})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"master-worker", func(t *testing.T) *Program {
			p, err := Build(masterWorkerTrace(t, 6, 3), Options{})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build(t)
			enc := p.Encode()
			q, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !bytes.Equal(q.Encode(), enc) {
				t.Fatalf("re-encoded program differs from original (%d vs %d bytes)",
					len(q.Encode()), len(enc))
			}
			// The decoded program must expand identically.
			for r := 0; r < p.NumRanks; r++ {
				a, err := p.ExpandRank(r)
				if err != nil {
					t.Fatal(err)
				}
				b, err := q.ExpandRank(r)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("rank %d expansion lengths differ: %d vs %d", r, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("rank %d expansion differs at %d", r, i)
					}
				}
			}
		})
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	p, err := Build(ringTrace(t, 4, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Error("truncated input should fail to decode")
	}
	if _, err := Decode([]byte("SIESTA-TRACE1")); err == nil {
		t.Error("wrong magic should fail to decode")
	}
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x7f
	if _, err := Decode(bad); err != nil {
		// Flipping the last byte may or may not break parsing; both are
		// fine, but it must never panic. (The call above is the assertion.)
		t.Logf("tail corruption detected: %v", err)
	}
}
