package merge

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"siesta/internal/mpi"
	"siesta/internal/perfmodel"
	"siesta/internal/trace"
)

// feedIngest streams tr into a fresh Ingest session: each rank's chunk
// stream is cut into chunkSize-byte pieces (0 = whole stream at once) and
// the pieces are delivered round-robin over the ranks in the given
// visitation order — the adversarial interleaving a real gateway produces
// when many uploaders race.
func feedIngest(t *testing.T, tr *trace.Trace, opts Options, chunkSize int, order []int) *Ingest {
	t.Helper()
	in, err := NewIngest(len(tr.Ranks), tr.Platform, tr.Impl, opts)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]byte, len(tr.Ranks))
	for i, rt := range tr.Ranks {
		streams[i] = trace.ChunkEncodeRank(rt)
	}
	if order == nil {
		order = make([]int, len(tr.Ranks))
		for i := range order {
			order[i] = i
		}
	}
	for remaining := len(order); remaining > 0; {
		for _, r := range order {
			if len(streams[r]) == 0 {
				continue
			}
			n := chunkSize
			if n <= 0 || n > len(streams[r]) {
				n = len(streams[r])
			}
			if err := in.Rank(r).Feed(streams[r][:n]); err != nil {
				t.Fatalf("rank %d feed: %v", r, err)
			}
			streams[r] = streams[r][n:]
			if len(streams[r]) == 0 {
				remaining--
			}
		}
	}
	return in
}

// The unbreakable contract: streamed ingest at any chunk size and any
// rank-arrival interleaving produces the byte-identical Program the batch
// path produces from the equivalent trace.
func TestIngestMatchesBatchByteIdentical(t *testing.T) {
	traces := map[string]*trace.Trace{
		"ring8":          ringTrace(t, 8, 4),
		"ring13":         ringTrace(t, 13, 3), // non-power-of-two tree
		"masterWorker9":  masterWorkerTrace(t, 9, 3),
		"masterWorker16": masterWorkerTrace(t, 16, 2),
	}
	for name, tr := range traces {
		opts := Options{Parallelism: 2}
		want, err := Build(tr, opts)
		if err != nil {
			t.Fatalf("%s: batch build: %v", name, err)
		}
		wantEnc := want.Encode()

		reversed := make([]int, len(tr.Ranks))
		for i := range reversed {
			reversed[i] = len(tr.Ranks) - 1 - i
		}
		shuffled := rand.New(rand.NewSource(7)).Perm(len(tr.Ranks))
		orders := map[string][]int{"forward": nil, "reverse": reversed, "shuffled": shuffled}

		for _, chunkSize := range []int{1, 7, 4096, 0} {
			for oname, order := range orders {
				t.Run(fmt.Sprintf("%s/chunk%d/%s", name, chunkSize, oname), func(t *testing.T) {
					in := feedIngest(t, tr, opts, chunkSize, order)
					got, err := in.Build()
					if err != nil {
						t.Fatalf("ingest build: %v", err)
					}
					if !bytes.Equal(wantEnc, got.Encode()) {
						t.Fatal("streamed program differs from batch program")
					}
				})
			}
		}
	}
}

// Concurrent per-rank uploads (one goroutine per rank, tiny chunks) must
// still match batch byte-for-byte; run under -race this also proves the
// per-rank locking discipline.
func TestIngestConcurrentFeedsMatchBatch(t *testing.T) {
	tr := masterWorkerTrace(t, 16, 3)
	opts := Options{Parallelism: runtime.GOMAXPROCS(0)}
	want, err := Build(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngest(len(tr.Ranks), tr.Platform, tr.Impl, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r, rt := range tr.Ranks {
		wg.Add(1)
		go func(r int, stream []byte) {
			defer wg.Done()
			ri := in.Rank(r)
			for len(stream) > 0 {
				n := 64
				if n > len(stream) {
					n = len(stream)
				}
				if err := ri.Feed(stream[:n]); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				stream = stream[n:]
			}
		}(r, trace.ChunkEncodeRank(rt))
	}
	wg.Wait()
	got, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Encode(), got.Encode()) {
		t.Fatal("concurrently-fed program differs from batch")
	}
}

// collapseTrace is built so the tree reduction collapses one rank's two
// distinct computation clusters at an *inner* node: rank 1 runs kernels at
// 80 and 130 (units of 1e6 int ops) — more than 30% apart, so they stay
// distinct at rank 1's own leaf — while rank 0 runs one at 100, within 30%
// of both. Merging rank 1 into rank 0 under ClusterThreshold 0.3 maps both
// of rank 1's clusters onto rank 0's, making rank 1's two compute records
// key-equal — the leaf→root map goes non-injective and Build must take the
// re-inference fallback.
func collapseTrace(t *testing.T) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(2, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: 2, Interceptor: rec})
	_, err := w.Run(func(r *mpi.Rank) {
		c := r.World()
		for it := 0; it < 3; it++ {
			if r.Rank() == 0 {
				r.Compute(perfmodel.Kernel{IntOps: 100e6})
			} else {
				r.Compute(perfmodel.Kernel{IntOps: 80e6})
				r.Compute(perfmodel.Kernel{IntOps: 130e6})
			}
			r.Barrier(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace("A", "openmpi")
}

func TestIngestClusterCollapseFallback(t *testing.T) {
	tr := collapseTrace(t)
	opts := Options{ClusterThreshold: 0.3}
	want, err := Build(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	in := feedIngest(t, tr, opts, 3, nil)
	got, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.Reinferred() == 0 {
		t.Fatal("expected the non-injective re-inference fallback to trigger; test trace no longer collapses")
	}
	if !bytes.Equal(want.Encode(), got.Encode()) {
		t.Fatal("re-inferred streamed program differs from batch")
	}
	// Sanity: at the default (finer) threshold nothing collapses and the
	// pure relabel path must be taken — and still match.
	want2, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in2 := feedIngest(t, tr, Options{}, 3, nil)
	got2, err := in2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in2.Reinferred() != 0 {
		t.Fatal("default threshold unexpectedly hit the fallback")
	}
	if !bytes.Equal(want2.Encode(), got2.Encode()) {
		t.Fatal("relabeled streamed program differs from batch")
	}
}

// countSpillFiles counts siesta-spill-* temp files in dir.
func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "siesta-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// A few-KB high-water mark forces nearly every terminal to disk; the
// output must not change by a byte, and commit must remove every spill
// file.
func TestIngestSpillTortureByteIdentical(t *testing.T) {
	tr := masterWorkerTrace(t, 16, 3)
	want, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// The high-water mark is per rank table; 1 byte forces every terminal
	// of every rank to disk.
	opts := Options{Spill: trace.SpillConfig{HighWater: 1, Dir: dir}}
	in := feedIngest(t, tr, opts, 128, nil)
	if st := in.SpillStats(); st.Spilled == 0 {
		t.Fatalf("high-water %d did not force spilling: %+v", opts.Spill.HighWater, st)
	}
	got, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Encode(), got.Encode()) {
		t.Fatal("spilled streamed program differs from batch")
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files leaked after Build", n)
	}
}

// Abandoned sessions must not leak spill files either: Close on an
// uncommitted (even mid-stream) session removes them.
func TestIngestAbortRemovesSpillFiles(t *testing.T) {
	tr := ringTrace(t, 8, 4)
	dir := t.TempDir()
	opts := Options{Spill: trace.SpillConfig{HighWater: 1, Dir: dir}}
	in, err := NewIngest(len(tr.Ranks), tr.Platform, tr.Impl, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Feed only half the ranks (fully, so their terminals spill); the
	// session can never commit because the rest never arrive.
	for r := 0; r < len(tr.Ranks)/2; r++ {
		if err := in.Rank(r).Feed(trace.ChunkEncodeRank(tr.Ranks[r])); err != nil {
			t.Fatal(err)
		}
	}
	if countSpillFiles(t, dir) == 0 {
		t.Fatal("expected spill files mid-session")
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files leaked after Close", n)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := in.Build(); err == nil {
		t.Fatal("Build after Close should fail")
	}
}

func TestIngestErrors(t *testing.T) {
	tr := ringTrace(t, 4, 2)
	streams := make([][]byte, 4)
	for i, rt := range tr.Ranks {
		streams[i] = trace.ChunkEncodeRank(rt)
	}

	t.Run("wrong rank slot", func(t *testing.T) {
		in, _ := NewIngest(4, "A", "openmpi", Options{})
		defer in.Close()
		if err := in.Rank(1).Feed(streams[0]); err == nil {
			t.Fatal("feeding rank 0's stream into slot 1 should fail")
		}
		// The error is sticky.
		if err := in.Rank(1).Feed(streams[1]); err == nil {
			t.Fatal("poisoned rank accepted more bytes")
		}
	})

	t.Run("incomplete stream", func(t *testing.T) {
		in, _ := NewIngest(4, "A", "openmpi", Options{})
		for r := 0; r < 4; r++ {
			end := len(streams[r])
			if r == 2 {
				end /= 2 // rank 2 never finishes
			}
			if err := in.Rank(r).Feed(streams[r][:end]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := in.Build(); err == nil {
			t.Fatal("Build with an incomplete rank stream should fail")
		}
	})

	t.Run("corrupt frame", func(t *testing.T) {
		in, _ := NewIngest(4, "A", "openmpi", Options{})
		defer in.Close()
		bad := bytes.Clone(streams[0])
		bad[len(bad)/2] ^= 0xff
		if err := in.Rank(0).Feed(bad); err == nil {
			t.Fatal("corrupted stream should fail the CRC or validation")
		}
	})

	t.Run("feed after seal", func(t *testing.T) {
		in, _ := NewIngest(4, "A", "openmpi", Options{})
		in.Close()
		if err := in.Rank(0).Feed(streams[0]); err == nil {
			t.Fatal("feed after Close should fail")
		}
	})

	t.Run("double build", func(t *testing.T) {
		in := feedIngest(t, tr, Options{}, 0, nil)
		if _, err := in.Build(); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Build(); err == nil {
			t.Fatal("second Build should fail")
		}
	})
}

// Progress surfaces: Ended/Events/Bytes/Grammar must be consistent
// mid-stream and at completion, and Snapshot must not perturb the result.
func TestIngestProgressSurfaces(t *testing.T) {
	tr := ringTrace(t, 4, 4)
	want, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := NewIngest(4, tr.Platform, tr.Impl, Options{})
	for r, rt := range tr.Ranks {
		stream := trace.ChunkEncodeRank(rt)
		ri := in.Rank(r)
		half := len(stream) / 2
		if err := ri.Feed(stream[:half]); err != nil {
			t.Fatal(err)
		}
		if ri.Ended() {
			t.Fatalf("rank %d claims ended at half stream", r)
		}
		if g := ri.Grammar(); g.ExpandedLen() != ri.Events() {
			t.Fatalf("rank %d mid-stream grammar expands to %d, events %d", r, g.ExpandedLen(), ri.Events())
		}
		if err := ri.Feed(stream[half:]); err != nil {
			t.Fatal(err)
		}
		if !ri.Ended() {
			t.Fatalf("rank %d not ended after full stream", r)
		}
		if got, want := ri.Events(), len(rt.Events); got != want {
			t.Fatalf("rank %d ingested %d events, trace has %d", r, got, want)
		}
		if got, want := ri.Bytes(), int64(len(stream)); got != want {
			t.Fatalf("rank %d counted %d bytes, stream is %d", r, got, want)
		}
	}
	got, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Encode(), got.Encode()) {
		t.Fatal("mid-stream snapshots perturbed the final program")
	}
}

// Spill I/O failures must surface promptly at Feed (not at commit) and be
// sticky.
func TestIngestSpillErrorSurfacesAtFeed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing")
	tr := ringTrace(t, 2, 8)
	in, _ := NewIngest(2, "A", "openmpi", Options{Spill: trace.SpillConfig{HighWater: 1, Dir: dir}})
	defer in.Close()
	stream := trace.ChunkEncodeRank(tr.Ranks[0])
	err := in.Rank(0).Feed(stream)
	if err == nil {
		t.Fatal("spill into a nonexistent dir should fail the feed")
	}
	if !os.IsNotExist(err) && err == nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
