package merge

import (
	"fmt"
	"sync"
	"sync/atomic"

	"siesta/internal/sequitur"
	"siesta/internal/trace"
)

// Streaming ingest (DESIGN.md §15): Build without a decoded trace.Trace.
// Each rank's events arrive as self-delimiting chunk frames
// (trace.ChunkEncodeRank's format) and are consumed as they land —
// terminals intern into a spillable table, clusters into the same
// match-or-append index the batch leaves use, and Sequitur inference runs
// incrementally over the arriving sequence. Commit (Build) then runs the
// ordinary pairwise tree reduction over the per-rank tables and reuses
// assemble for everything after, so the streamed output is byte-identical
// to Build on the equivalent trace for every chunk size and every
// rank-arrival interleaving.
//
// The one subtlety is which ids inference runs over. Batch Build infers
// over fully-globalized ids, which do not exist until every rank has
// arrived. The ingestor instead feeds each rank's builder its
// *leaf-canonical* ids — the ids of the rank's own leaf partial, exactly
// what leafPartial produces — and defers globalization to commit. Sequitur
// is invariant under injective relabeling of terminals (its decisions
// depend only on the equality pattern of the token stream), so when the
// rank's leaf→root id map is injective the leaf grammar relabels in place
// to the batch grammar. The map can fail to be injective only when the
// inner tree merges collapse two of the rank's distinct computation
// clusters into one (coarser threshold, cross-rank representatives); that
// rank's sequence is then re-inferred over root ids — the exact batch
// computation — from its leaf grammar's expansion. Either way: identical
// grammars, identical bytes.

// Ingest is one streaming merge session: numRanks rank streams feeding
// one eventual Program. Create with NewIngest, feed each rank through
// Rank(r).Feed, then call Build once every stream has ended. Close (or
// Build, which closes internally) releases the spill files; sessions that
// never commit must call Close so no temp files leak.
type Ingest struct {
	opts     Options
	platform string
	impl     string
	ranks    []*RankIngestor

	// sealed flips when Build or Close begins: feeds arriving after that
	// are rejected rather than racing the reduction.
	sealed atomic.Bool

	mu     sync.Mutex
	built  bool
	closed bool

	// reinferred counts ranks whose grammars went through the expand +
	// re-infer fallback at Build (leaf→root map not injective). Exposed for
	// tests and diagnostics; byte-equality holds either way.
	reinferred atomic.Int32
}

// Reinferred reports how many ranks took the re-inference fallback during
// Build (0 until Build runs).
func (in *Ingest) Reinferred() int { return int(in.reinferred.Load()) }

// NewIngest opens a streaming merge session for numRanks rank streams.
// platformName and implName are stamped on the resulting Program (they
// are what trace.Trace carries for the batch path).
func NewIngest(numRanks int, platformName, implName string, opts Options) (*Ingest, error) {
	if numRanks <= 0 {
		return nil, fmt.Errorf("merge: ingest needs a positive rank count, got %d", numRanks)
	}
	opts = opts.withDefaults()
	in := &Ingest{
		opts:     opts,
		platform: platformName,
		impl:     implName,
		ranks:    make([]*RankIngestor, numRanks),
	}
	for r := range in.ranks {
		in.ranks[r] = &RankIngestor{
			in:    in,
			rank:  r,
			th:    opts.ClusterThreshold,
			dec:   trace.NewChunkDec(),
			cl:    newPartial(opts.ClusterThreshold),
			table: trace.NewSpillTable(opts.Spill),
			b:     sequitur.NewWithOptions(!opts.DisableRunLength),
		}
	}
	return in, nil
}

// NumRanks reports the session's rank count.
func (in *Ingest) NumRanks() int { return len(in.ranks) }

// Rank returns rank r's ingestor. r must be in [0, NumRanks).
func (in *Ingest) Rank(r int) *RankIngestor { return in.ranks[r] }

// SpillStats aggregates the per-rank terminal tables' footprint split.
func (in *Ingest) SpillStats() trace.SpillStats {
	var agg trace.SpillStats
	for _, ri := range in.ranks {
		ri.mu.Lock()
		st := ri.table.Stats()
		ri.mu.Unlock()
		agg.Records += st.Records
		agg.Spilled += st.Spilled
		agg.ResidentBytes += st.ResidentBytes
		agg.SpilledBytes += st.SpilledBytes
	}
	return agg
}

// seal rejects further feeds and waits out any in flight: after seal
// returns, every RankIngestor is quiescent and safe to read lock-free.
func (in *Ingest) seal() {
	in.sealed.Store(true)
	for _, ri := range in.ranks {
		ri.mu.Lock()
		//lint:ignore SA2001 the empty critical section is the barrier:
		// a Feed that entered before sealing holds ri.mu until done.
		ri.mu.Unlock()
	}
}

// Close releases the session's spill files without building. Idempotent,
// and safe after Build (which closes internally). Abandoned sessions —
// client gone, commit never issued — must be closed or their temp files
// outlive them.
func (in *Ingest) Close() error {
	in.seal()
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return nil
	}
	in.closed = true
	var first error
	for _, ri := range in.ranks {
		if err := ri.table.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Build commits the session: every rank stream must have ended. It runs
// the pairwise tree reduction over the per-rank leaf tables, relabels (or
// where the reduction collapsed a rank's terminals, re-infers) each
// rank's grammar onto global ids, and assembles the Program through the
// same back half batch Build uses. The session's spill files are released
// before Build returns, success or not; Build can run at most once.
func (in *Ingest) Build() (*Program, error) {
	in.seal()
	in.mu.Lock()
	if in.built || in.closed {
		in.mu.Unlock()
		return nil, fmt.Errorf("merge: ingest session already %s", map[bool]string{true: "built", false: "closed"}[in.built])
	}
	in.built = true
	in.mu.Unlock()
	defer in.Close()

	opts := in.opts
	par := opts.Parallelism
	for _, ri := range in.ranks {
		if !ri.dec.Ended() {
			return nil, fmt.Errorf("merge: rank %d stream incomplete (no end frame; %d bytes buffered)",
				ri.rank, ri.dec.Buffered())
		}
		if err := ri.err; err != nil {
			return nil, err
		}
	}

	// Leaf partials: the per-rank tables built during ingest, with
	// identity recMaps over leaf ids. Materialize re-reads any spilled
	// suffix; the reduction then proceeds exactly as in GlobalizeParallel.
	parts := make([]*partial, len(in.ranks))
	leafErrs := make([]error, len(in.ranks))
	parfor(len(in.ranks), par, func(r int) {
		parts[r], leafErrs[r] = in.ranks[r].leaf()
	})
	for _, err := range leafErrs {
		if err != nil {
			return nil, err
		}
	}
	root := reducePartials(parts, opts.ClusterThreshold, par)

	// Per-rank globalization of the incrementally-inferred grammars:
	// relabel when leaf→root is injective for the rank, re-infer over the
	// mapped sequence when it is not (see the file comment).
	grammars := make([]*sequitur.Grammar, len(in.ranks))
	gramErrs := make([]error, len(in.ranks))
	parfor(len(in.ranks), par, func(r int) {
		ri := in.ranks[r]
		rm := root.recMaps[r].S // leaf id -> root id
		g := ri.b.Grammar()
		if injective(rm, len(root.records)) {
			for _, rule := range g.Rules {
				for i := range rule {
					if !rule[i].IsRule {
						rule[i].Ref = rm[rule[i].Ref]
					}
				}
			}
		} else {
			in.reinferred.Add(1)
			seq := g.Expand()
			for i, leaf := range seq {
				seq[i] = rm[leaf]
			}
			b := sequitur.NewWithOptions(!opts.DisableRunLength)
			b.AppendAll(seq)
			g = b.Grammar()
		}
		if n := g.ExpandedLen(); n != ri.events {
			gramErrs[r] = fmt.Errorf("merge: rank %d grammar expands to %d events, ingested %d", r, n, ri.events)
			return
		}
		grammars[r] = g
	})
	for rank, rm := range root.recMaps {
		rm.Unref()
		delete(root.recMaps, rank)
	}
	for _, err := range gramErrs {
		if err != nil {
			return nil, err
		}
	}

	// The reference sequence for the losslessness self-check is the
	// pre-merge grammar's own expansion over root ids (the streamed path
	// has no retained event sequences to compare against — bounding that
	// memory is the point). The ExpandedLen gate above pins each grammar
	// to its ingested event count, so the check still catches any
	// divergence introduced from the depth merge onward.
	return assemble(len(in.ranks), in.platform, in.impl,
		root.records, root.clusters, grammars,
		func(rank int) []int { return grammars[rank].Expand() }, opts)
}

// injective reports whether m (a leaf→root id map) hits no root id twice.
// n is the root table size.
func injective(m []int, n int) bool {
	if len(m) <= 1 {
		return true
	}
	seen := make([]bool, n)
	for _, id := range m {
		if seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// RankIngestor consumes one rank's chunk stream: decode, intern, infer —
// all inline with Feed, so inference genuinely runs during ingest. Safe
// for use by one uploader at a time; concurrent Feeds for the same rank
// serialize on the ingestor's lock (arrival order is the byte order).
type RankIngestor struct {
	mu   sync.Mutex
	in   *Ingest
	rank int
	th   float64
	err  error

	dec *trace.ChunkDec
	// cl holds the rank's leaf cluster table: only the cluster half of a
	// partial (clusters + cindex) is used during ingest; records live in
	// the spill table.
	cl    *partial
	table *trace.SpillTable
	b     *sequitur.Builder

	// wireCl / wireRec map the stream's dense wire ids onto leaf ids.
	wireCl  []int
	wireRec []int

	events int
	bytes  int64
}

// Feed consumes the next chunk of the rank's stream. Chunks may be split
// at arbitrary byte boundaries; incomplete frames are buffered until the
// next Feed. Errors are sticky — a malformed stream poisons the rank and
// every later Feed reports the same failure.
func (ri *RankIngestor) Feed(chunk []byte) error {
	if ri.in.sealed.Load() {
		return fmt.Errorf("merge: rank %d fed after session was sealed", ri.rank)
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	if ri.err != nil {
		return ri.err
	}
	err := ri.dec.Feed(chunk, ri.consume)
	if err == nil {
		err = ri.table.Err() // surface spill I/O promptly, not at commit
	}
	if err != nil {
		ri.err = err
		return err
	}
	ri.bytes += int64(len(chunk))
	return nil
}

// consume interns one decoded stream item. It is the incremental replica
// of leafPartial: clusters through the match-or-append index, records
// re-keyed after cluster remap and interned first-wins, events mapped to
// leaf ids and appended to the Sequitur builder.
func (ri *RankIngestor) consume(it trace.ChunkItem) error {
	switch it.Tag {
	case trace.ChunkTagHeader:
		if it.Rank != ri.rank {
			return fmt.Errorf("merge: stream header says rank %d, session slot is rank %d", it.Rank, ri.rank)
		}
	case trace.ChunkTagCluster:
		ri.wireCl = append(ri.wireCl, ri.cl.addCluster(it.Cluster, ri.th))
	case trace.ChunkTagRecord:
		r := it.Record
		if r.IsCompute() {
			r.ComputeCluster = ri.wireCl[r.ComputeCluster]
		}
		ri.wireRec = append(ri.wireRec, ri.table.Intern(r, r.KeyString()))
	case trace.ChunkTagEvents:
		for _, wire := range it.Events {
			ri.b.Append(ri.wireRec[wire])
		}
		ri.events += len(it.Events)
	case trace.ChunkTagEnd:
		// Totals were validated by the decoder; nothing to intern.
	}
	return nil
}

// Ended reports whether the rank's stream is complete (end frame seen).
func (ri *RankIngestor) Ended() bool {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.dec.Ended()
}

// Events reports how many event instances have been ingested so far.
func (ri *RankIngestor) Events() int {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.events
}

// Bytes reports how many stream bytes have been accepted so far.
func (ri *RankIngestor) Bytes() int64 {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.bytes
}

// Grammar snapshots the rank's in-progress grammar over leaf-canonical
// ids — a progress/debug surface; commit-time globalization happens in
// Build.
func (ri *RankIngestor) Grammar() *sequitur.Grammar {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.b.Snapshot()
}

// leaf assembles the rank's leaf partial for the reduction: the tables
// built during ingest plus an identity recMap over leaf ids, so the
// composed root map comes out as leaf→root. Called only after seal.
func (ri *RankIngestor) leaf() (*partial, error) {
	records, err := ri.table.Materialize()
	if err != nil {
		return nil, err
	}
	p := &partial{
		clusters: ri.cl.clusters,
		cindex:   ri.cl.cindex,
		records:  records,
		keys:     ri.table.Keys(),
		recIndex: ri.table.KeyIndex(),
		recMaps:  map[int]*trace.IntBuf{},
	}
	rm := trace.GetInts(len(records))
	for i := range rm.S {
		rm.S[i] = i
	}
	p.recMaps[ri.rank] = rm
	return p, nil
}
