// Streaming trace ingest: the chunked-upload half of the HTTP API.
//
// A client opens a session (POST /v1/traces), streams each rank's
// chunk-encoded trace in arbitrarily sized pieces (PUT
// /v1/traces/{id}/ranks/{rank}), and commits (POST /v1/traces/{id}/commit)
// to turn the session into a regular synthesis job. Grammar inference runs
// incrementally while chunks arrive, and the terminal tables can spill to
// disk past a per-rank high-water mark, so the server never needs the
// whole trace in memory at once. The contract (held by the differential
// suite in internal/core) is that the committed job's artifact is
// byte-identical to the one POST /v1/synthesize produces for the same
// trace uploaded in one shot — whatever the chunk size and rank
// interleaving.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"siesta/internal/check"
	"siesta/internal/codegen"
	"siesta/internal/core"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/server/cache"
	"siesta/internal/trace"
)

// maxIngestRanks bounds the per-session rank count a client may declare;
// each rank costs a decoder, a grammar builder, and a terminal table.
const maxIngestRanks = 1 << 16

// TraceOpenRequest is the POST /v1/traces body. NumRanks is required; the
// tuning fields mirror SynthesizeRequest (Scale above 1 is rejected — the
// scaled generator needs communication samples from a whole trace, which a
// stream never holds at once).
type TraceOpenRequest struct {
	NumRanks int `json:"num_ranks"`

	Platform string  `json:"platform,omitempty"`
	Impl     string  `json:"impl,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`

	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
	Analyze     bool  `json:"analyze,omitempty"`
	MaxRetries  *int  `json:"max_retries,omitempty"`

	// ContentSHA256 optionally pre-declares the session's content digest
	// (hex sha256 over the per-rank stream digests in rank order — what
	// `siesta upload` computes before contacting the server). Declaring it
	// lets the open response carry the final cache key, which is what the
	// fleet gateway consistent-hash routes on; commit verifies the streamed
	// bytes actually hash to it.
	ContentSHA256 string `json:"content_sha256,omitempty"`

	// SpillHighWater bounds each rank's resident terminal-table bytes;
	// past it, further terminals spill to disk (see trace.SpillConfig).
	// 0 keeps every terminal resident. Spilling never changes output
	// bytes, so it does not enter the cache key.
	SpillHighWater int `json:"spill_high_water,omitempty"`
}

// TraceOpenResponse answers POST /v1/traces.
type TraceOpenResponse struct {
	ID       string `json:"id"`
	NumRanks int    `json:"num_ranks"`
	// CacheKey is the artifact key the session resolves to, present only
	// when the request declared content_sha256 (the key depends on the
	// content digest).
	CacheKey string `json:"cache_key,omitempty"`
}

// RankStreamView reports one rank stream's ingest progress.
type RankStreamView struct {
	Rank   int   `json:"rank"`
	Bytes  int64 `json:"bytes"`
	Events int   `json:"events"`
	Ended  bool  `json:"ended"`
}

// TraceStatusView answers GET /v1/traces/{id} and append responses.
type TraceStatusView struct {
	ID       string           `json:"id"`
	NumRanks int              `json:"num_ranks"`
	Ranks    []RankStreamView `json:"ranks,omitempty"`
	Spill    trace.SpillStats `json:"spill"`
}

// TraceCommitResponse answers POST /v1/traces/{id}/commit: the same shape
// as a synthesize response plus the session's final spill statistics.
type TraceCommitResponse struct {
	SynthesizeResponse
	Spill trace.SpillStats `json:"spill"`
}

// ingestSession is one open streaming upload.
type ingestSession struct {
	id       string
	opts     core.Options // fingerprint source: raw base options + Ranks
	in       *merge.Ingest
	analyze  bool
	declared string // content_sha256 from the open request, "" if none

	timeout     time.Duration
	parallelism int
	retries     int

	// ranks[r] serializes rank r's appends; different ranks feed
	// concurrently (the point of the protocol).
	ranks []ingestRank
}

type ingestRank struct {
	mu   sync.Mutex
	h    hash.Hash // sha256 of the rank's accepted stream bytes
	open bool      // counted in siesta_ingest_ranks_open
	done bool
}

// ingestOptions builds the synthesis options a session's tuning fields
// select, through the same baseOptions root as prepare and RequestKey, so
// streamed and one-shot uploads of the same trace derive identical
// fingerprints by construction.
func ingestOptions(req *TraceOpenRequest) (core.Options, error) {
	opts, err := baseOptions(&SynthesizeRequest{
		Platform: req.Platform, Impl: req.Impl, Scale: req.Scale, Seed: req.Seed,
	})
	if err != nil {
		return core.Options{}, err
	}
	opts.Ranks = req.NumRanks
	return opts, nil
}

// ingestCacheKey derives the artifact key for a streamed trace from its
// content digest plus the options fingerprint. The digest is over per-rank
// stream digests, not the transport chunks, so every chunking of the same
// trace resolves to the same key — the streamed analogue of traceCacheKey.
func ingestCacheKey(digest []byte, opts core.Options) cache.Key {
	return cache.KeyFrom(
		[]byte("ingest:"), digest,
		[]byte(core.OptionsFingerprint(opts)),
	)
}

// IngestRequestKey computes the cache key a streaming-upload session will
// resolve to, for requests that pre-declare their content digest — the
// gateway's routing hook, mirroring RequestKey for one-shot requests. An
// undeclared digest is an error: the key is unknowable until commit.
func IngestRequestKey(req *TraceOpenRequest) (cache.Key, error) {
	if req.NumRanks <= 0 {
		return "", errors.New("num_ranks must be positive")
	}
	if req.ContentSHA256 == "" {
		return "", errors.New("content_sha256 not declared")
	}
	digest, err := hex.DecodeString(req.ContentSHA256)
	if err != nil || len(digest) != sha256.Size {
		return "", fmt.Errorf("content_sha256: want %d hex bytes", sha256.Size)
	}
	opts, err := ingestOptions(req)
	if err != nil {
		return "", err
	}
	return ingestCacheKey(digest, opts), nil
}

func (s *Server) handleTraceOpen(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var req TraceOpenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.NumRanks <= 0 {
		writeError(w, http.StatusBadRequest, "num_ranks must be positive")
		return
	}
	if req.NumRanks > maxIngestRanks {
		writeError(w, http.StatusBadRequest, "num_ranks %d exceeds limit %d", req.NumRanks, maxIngestRanks)
		return
	}
	if req.Scale > 1 {
		writeError(w, http.StatusBadRequest, "scale above 1 is not supported on the streaming path; use trace_base64")
		return
	}
	var declaredKey cache.Key
	if req.ContentSHA256 != "" {
		k, err := IngestRequestKey(&req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		declaredKey = k
	}
	opts, err := ingestOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Clamp the throughput knobs exactly as prepare does; none of them
	// enter the fingerprint, which was derived above from the raw options.
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	par := req.Parallelism
	if par <= 0 || par > s.cfg.MaxParallelism {
		par = s.cfg.MaxParallelism
	}
	retries := s.cfg.MaxRetries
	if req.MaxRetries != nil {
		switch r := *req.MaxRetries; {
		case r < 0:
			retries = 0
		case r < retries:
			retries = r
		}
	}
	sessOpts := opts // fingerprint source, before throughput knobs land
	opts.Parallelism = par
	opts.Merge.Parallelism = par
	opts.Merge.Spill = trace.SpillConfig{HighWater: req.SpillHighWater}
	if s.cfg.StateDir != "" {
		dir := filepath.Join(s.cfg.StateDir, "spill")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			writeError(w, http.StatusInternalServerError, "spill dir: %v", err)
			return
		}
		opts.Merge.Spill.Dir = dir
	}
	in, err := core.NewIngest(req.NumRanks, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	sess := &ingestSession{
		opts: sessOpts, in: in, analyze: req.Analyze,
		declared: req.ContentSHA256,
		timeout:  timeout, parallelism: par, retries: retries,
		ranks: make([]ingestRank, req.NumRanks),
	}
	for i := range sess.ranks {
		sess.ranks[i].h = sha256.New()
	}
	s.ingestMu.Lock()
	if len(s.ingests) >= s.cfg.MaxIngestSessions {
		s.ingestMu.Unlock()
		in.Close()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "too many open ingest sessions (%d)", s.cfg.MaxIngestSessions)
		return
	}
	sess.id = fmt.Sprintf("t-%06d", s.nextIngest)
	s.nextIngest++
	s.ingests[sess.id] = sess
	s.ingestMu.Unlock()

	s.logEvent("ingest_open", map[string]any{
		"session": sess.id, "ranks": req.NumRanks, "key": string(declaredKey),
	})
	writeJSON(w, http.StatusCreated, TraceOpenResponse{
		ID: sess.id, NumRanks: req.NumRanks, CacheKey: string(declaredKey),
	})
}

func (s *Server) lookupIngest(id string) (*ingestSession, bool) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	sess, ok := s.ingests[id]
	return sess, ok
}

// closeIngest removes a session from the registry and releases its
// resources (spill files, open-rank gauge). Safe to call for a session
// already removed.
func (s *Server) closeIngest(sess *ingestSession) {
	s.ingestMu.Lock()
	delete(s.ingests, sess.id)
	s.ingestMu.Unlock()
	for i := range sess.ranks {
		rs := &sess.ranks[i]
		rs.mu.Lock()
		if rs.open {
			rs.open = false
			s.gIngestRanks.Add(-1)
		}
		rs.mu.Unlock()
	}
	sess.in.Close()
}

func (s *Server) handleTraceAppend(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupIngest(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace session %q", r.PathValue("id"))
		return
	}
	rank, err := strconv.Atoi(r.PathValue("rank"))
	if err != nil || rank < 0 || rank >= len(sess.ranks) {
		writeError(w, http.StatusBadRequest, "rank %q out of range [0,%d)", r.PathValue("rank"), len(sess.ranks))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	chunk, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read chunk: %v", err)
		return
	}

	rs := &sess.ranks[rank]
	ri := sess.in.Rank(rank)
	rs.mu.Lock()
	if !rs.open && !rs.done {
		rs.open = true
		s.gIngestRanks.Add(1)
	}
	ferr := ri.Feed(chunk)
	if ferr == nil {
		rs.h.Write(chunk)
		s.mIngestBytes.Add(uint64(len(chunk)))
		if ri.Ended() && rs.open {
			rs.open = false
			rs.done = true
			s.gIngestRanks.Add(-1)
		}
	}
	view := RankStreamView{Rank: rank, Bytes: ri.Bytes(), Events: ri.Events(), Ended: ri.Ended()}
	rs.mu.Unlock()

	if ferr != nil {
		writeError(w, http.StatusBadRequest, "rank %d: %v", rank, ferr)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleTraceStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupIngest(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace session %q", r.PathValue("id"))
		return
	}
	view := TraceStatusView{ID: sess.id, NumRanks: len(sess.ranks), Spill: sess.in.SpillStats()}
	for rank := range sess.ranks {
		ri := sess.in.Rank(rank)
		rs := &sess.ranks[rank]
		rs.mu.Lock()
		view.Ranks = append(view.Ranks, RankStreamView{
			Rank: rank, Bytes: ri.Bytes(), Events: ri.Events(), Ended: ri.Ended(),
		})
		rs.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleTraceAbort(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupIngest(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace session %q", r.PathValue("id"))
		return
	}
	s.closeIngest(sess)
	s.logEvent("ingest_abort", map[string]any{"session": sess.id})
	writeJSON(w, http.StatusOK, map[string]any{"id": sess.id, "aborted": true})
}

func (s *Server) handleTraceCommit(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupIngest(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace session %q", r.PathValue("id"))
		return
	}
	// Every rank stream must have delivered its end frame; the per-rank
	// digests are final after that, and hashing them in rank order makes
	// the content digest independent of upload chunking and interleaving.
	content := sha256.New()
	for rank := range sess.ranks {
		rs := &sess.ranks[rank]
		rs.mu.Lock()
		ended := sess.in.Rank(rank).Ended()
		sum := rs.h.Sum(nil)
		rs.mu.Unlock()
		if !ended {
			writeError(w, http.StatusConflict, "rank %d stream is not complete", rank)
			return
		}
		content.Write(sum)
	}
	digest := content.Sum(nil)
	if sess.declared != "" && sess.declared != hex.EncodeToString(digest) {
		writeError(w, http.StatusBadRequest,
			"content digest mismatch: declared %s, streamed %s", sess.declared, hex.EncodeToString(digest))
		return
	}
	key := ingestCacheKey(digest, sess.opts)

	// The journal cannot replay a streamed session — its chunks are gone
	// with the process — so the job record carries a sentinel request that
	// recovery's prepare pass rejects, settling the job as cleanly failed
	// instead of silently dropped.
	reqJSON, _ := json.Marshal(map[string]string{"ingest": sess.id})
	opts := sess.opts
	opts.Parallelism = sess.parallelism
	opts.Merge.Parallelism = sess.parallelism
	jb := &job{
		app: "trace", ranks: len(sess.ranks), parallelism: sess.parallelism,
		key: key, timeout: sess.timeout, wantAnalyze: sess.analyze,
		maxRetries: sess.retries, reqJSON: reqJSON, worker: s.cfg.WorkerID,
		work: s.ingestWork(sess.in, opts, sess.analyze),
	}
	spill := sess.in.SpillStats()

	// Identical finished work short-circuits to the cache, exactly as in
	// handleSynthesize; the session's partial state is simply discarded.
	if !jb.wantAnalyze {
		_, hit := s.store.Get(key)
		if !hit && s.cfg.PeerFetch != nil {
			if art, ok := s.cfg.PeerFetch(key); ok && art != nil && art.Key == key {
				if perr := s.store.Put(art); perr != nil {
					s.logEvent("cache_disk_error", map[string]any{"key": string(key), "error": perr.Error()})
				}
				s.mPeerHits.Inc()
				hit = true
			}
		}
		if hit {
			s.mHits.Inc()
			s.closeIngest(sess)
			s.registerCached(jb)
			s.logEvent("cache_hit", map[string]any{"job": jb.id, "app": jb.app, "key": string(key)})
			writeJSON(w, http.StatusOK, TraceCommitResponse{
				SynthesizeResponse: SynthesizeResponse{
					Job: jb.view(), Cached: true, CacheKey: string(key),
					ArtifactURL: "/v1/jobs/" + jb.id + "/artifact",
				},
				Spill: spill,
			})
			return
		}
	}
	s.mMisses.Inc()

	ok, draining := s.admit(jb)
	if draining {
		// The session itself survives the rejection, but its chunks live
		// only on this node — there is no replacement to retry against, so
		// aborting is the client's useful move.
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue is full (%d queued)", s.cfg.QueueDepth)
		return
	}
	// Admitted: the job owns the ingest now (its work fn builds and closes
	// it); drop the session record without touching the ingest.
	s.ingestMu.Lock()
	delete(s.ingests, sess.id)
	s.ingestMu.Unlock()
	s.logEvent("ingest_commit", map[string]any{
		"session": sess.id, "job": jb.id, "ranks": jb.ranks, "key": string(key),
		"spilled": spill.Spilled, "spilled_bytes": spill.SpilledBytes,
	})
	writeJSON(w, http.StatusAccepted, TraceCommitResponse{
		SynthesizeResponse: SynthesizeResponse{
			Job: jb.view(), Cached: false, CacheKey: string(key),
			ArtifactURL: "/v1/jobs/" + jb.id + "/artifact",
		},
		Spill: spill,
	})
}

// ingestWork prepares the work function for a committed streaming session:
// traceWork with the merge phase replaced by Ingest.Build. Build consumes
// the ingest and may run at most once, so it is memoized across the
// retry loop — a transient checkpoint failure after a successful build
// retries codegen against the already-built program.
func (s *Server) ingestWork(in *merge.Ingest, opts core.Options, analyze bool) workFn {
	var buildOnce sync.Once
	var builtProg *merge.Program
	var buildErr error
	numRanks := in.NumRanks()
	return func(ctx context.Context, tracer *obs.Tracer, ck core.Checkpointer, resume *core.Checkpoint) (*cache.Artifact, []byte, error) {
		fp := core.OptionsFingerprint(opts)
		var cur *obs.Span
		step := func(phase string) error {
			cur.End()
			cur = nil
			if tracer != nil {
				cur = tracer.Phase(phase,
					obs.Int("ranks", numRanks),
					obs.Int("parallelism", opts.Parallelism))
			}
			if ctx != nil && ctx.Err() != nil {
				return fmt.Errorf("server: %s: %w", phase, &mpi.CancelError{Cause: context.Cause(ctx)})
			}
			return nil
		}
		defer func() { cur.End() }()

		// Resume honors only a checkpoint written by an identical request
		// (fingerprint match) whose program decodes; anything else rebuilds.
		var prog *merge.Program
		resumed := false
		if resume != nil && resume.Fingerprint == fp && len(resume.ProgramBytes) > 0 {
			if p, derr := merge.Decode(resume.ProgramBytes); derr == nil {
				prog = p
				resumed = true
				in.Close() // the streamed state is moot; release spill files
				if tracer != nil {
					sp := tracer.Phase("resume",
						obs.String("from", resume.Phase), obs.Bool("resumed", true))
					sp.End()
				}
			}
		}
		if !resumed {
			if err := step("merge"); err != nil {
				return nil, nil, err
			}
			buildOnce.Do(func() { builtProg, buildErr = in.Build() })
			if buildErr != nil {
				return nil, nil, fmt.Errorf("server: merge: %w", buildErr)
			}
			prog = builtProg
		}
		var rep *check.Report
		if !opts.DisableCheck {
			if err := step("check"); err != nil {
				return nil, nil, err
			}
			var err error
			rep, err = check.Verify(prog, check.Options{
				ExactBytes:    true,
				AbsoluteRanks: opts.Trace.AbsoluteRanks,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("server: check: %w", err)
			}
			s.countDiags(rep)
			if rep.HasErrors() {
				return nil, nil, fmt.Errorf("server: streamed trace failed static verification (%s)", rep.Summary())
			}
		}
		if ck != nil && !resumed {
			cp := &core.Checkpoint{Fingerprint: fp, Phase: core.PhaseMerge, ProgramBytes: prog.Encode()}
			if rep != nil {
				cp.CheckSummary = rep.Summary()
			}
			if err := ck.Save(cp); err != nil {
				return nil, nil, &core.CheckpointError{Phase: core.PhaseMerge, Err: err}
			}
		}
		var analysis []byte
		if analyze {
			cur.End()
			cur = nil
			var aerr error
			if analysis, aerr = s.analyzeProgram(tracer, prog, opts.Platform); aerr != nil {
				return nil, nil, aerr
			}
		}
		if err := step("codegen"); err != nil {
			return nil, nil, err
		}
		// Scale above 1 is rejected at session open (no whole trace to
		// sample communication from), so unlike traceWork there is no
		// CommSamples branch here.
		genOpts := codegen.Options{Platform: opts.Platform, Scale: opts.Scale, Check: rep}
		gen, err := codegen.Generate(prog, genOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("server: generate: %w", err)
		}
		st := prog.Stats()
		art := &cache.Artifact{
			App: "trace", Ranks: numRanks,
			CSource:   gen.CSource(),
			Terminals: st.Terminals, Rules: st.Rules, SizeC: gen.SizeC,
		}
		if rep != nil {
			art.CheckSummary = rep.Summary()
		}
		return art, analysis, nil
	}
}
