package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestJobTraceEndpoint covers the observability surface of the service:
// a job submitted with "trace": true bypasses the cache-hit shortcut,
// records a Chrome trace_event document, and serves it at
// GET /v1/jobs/{id}/trace; untraced jobs 404 there.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2, Trace: true}

	resp, body := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST traced job = %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusDone {
		t.Fatalf("traced job: %s (%s)", v.Status, v.Error)
	}
	if v.TraceURL == "" {
		t.Fatal("settled traced job has no trace_url")
	}

	// The recorded trace must be a valid trace_event document with both
	// pipeline spans and runtime timeline events.
	httpResp, err := http.Get(ts.URL + v.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", v.TraceURL, httpResp.StatusCode)
	}
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content-type %q", ct)
	}
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var phaseSpan, timelineSpan bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			if ev["pid"] == float64(0) {
				phaseSpan = true
			} else {
				timelineSpan = true
			}
		}
	}
	if !phaseSpan || !timelineSpan {
		t.Fatalf("trace missing spans: pipeline=%v timeline=%v (%d events)",
			phaseSpan, timelineSpan, len(doc.TraceEvents))
	}

	// A repeat WITH trace must synthesize again (a cache hit has no run
	// to record); a repeat WITHOUT trace hits the cache and carries no
	// trace_url.
	resp2, body2 := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat traced job should re-synthesize, got %d: %s", resp2.StatusCode, body2)
	}
	var sr2 SynthesizeResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, sr2.Job.ID)

	plain := req
	plain.Trace = false
	resp3, body3 := postJSON(t, ts.URL+"/v1/synthesize", plain)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("untraced repeat should hit the cache, got %d: %s", resp3.StatusCode, body3)
	}
	var sr3 SynthesizeResponse
	if err := json.Unmarshal(body3, &sr3); err != nil {
		t.Fatal(err)
	}
	if sr3.Job.TraceURL != "" {
		t.Errorf("cache-hit job advertises a trace_url: %q", sr3.Job.TraceURL)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr3.Job.ID+"/trace", nil); code != http.StatusNotFound {
		t.Errorf("GET trace on untraced job = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Errorf("GET trace on unknown job = %d, want 404", code)
	}
}

// TestPprofRoutes: the profiling surface rides on the same mux.
func TestPprofRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}
