// Package server exposes Siesta's synthesis pipeline as a long-lived
// concurrent service: `siesta serve`. Requests name a built-in application
// (or upload a raw trace), are admitted into a bounded job queue, and a
// worker pool runs core.Synthesize with per-job wall-clock deadlines and
// context cancellation. Finished proxies land in a content-addressed
// artifact cache keyed by the input identity plus the canonical options
// fingerprint, so identical requests are answered without re-synthesis.
// Backpressure (429 + Retry-After), graceful drain, a Prometheus-text
// /metrics endpoint, and structured JSON phase logs are part of the
// subsystem rather than bolted on.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"siesta/internal/apps"
	"siesta/internal/check"
	"siesta/internal/codegen"
	"siesta/internal/core"
	"siesta/internal/durable"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/platform"
	"siesta/internal/server/cache"
	"siesta/internal/server/metrics"
	"siesta/internal/statics"
	"siesta/internal/trace"
)

// Config tunes one service instance. The zero value is usable.
type Config struct {
	// Workers is the synthesis worker-pool size; default 2.
	Workers int
	// QueueDepth bounds the number of admitted-but-not-running jobs;
	// default 16. A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// JobTimeout is the per-job wall-clock budget, and the upper bound on
	// any per-request timeout_ms override; default 120s.
	JobTimeout time.Duration
	// CacheSize is the artifact cache's entry budget; default 128.
	CacheSize int
	// MaxJobs bounds retained job records; completed records beyond it
	// are pruned oldest-first. Default 1024.
	MaxJobs int
	// MaxParallelism caps the per-job synthesis parallelism a request may
	// ask for (and is the default when a request does not ask); default
	// GOMAXPROCS. Parallelism never changes synthesized output, so it does
	// not participate in artifact-cache keys.
	MaxParallelism int
	// LogWriter receives one JSON object per line per job event
	// (admission, phase transitions, completion). Nil disables the plain
	// JSON stream.
	LogWriter io.Writer
	// Logger, when non-nil, receives the same job events as structured
	// log/slog records at Info level (Debug for phase transitions). It
	// composes with LogWriter; set either or both.
	Logger *slog.Logger
	// Registry receives the service metrics; a private registry is
	// created when nil.
	Registry *metrics.Registry
	// StateDir enables crash durability: a write-ahead job journal, phase
	// checkpoints, and a disk artifact tier all live under it. On startup
	// the journal is replayed — jobs that were queued or in flight when
	// the previous process died are re-admitted and resume from their last
	// checkpoint. Empty keeps everything in memory.
	StateDir string
	// MaxRetries is both the default and the cap for a request's
	// max_retries field: in-process retries of transient (durability I/O)
	// failures; default 3.
	MaxRetries int
	// MaxIngestSessions bounds concurrently open streaming-upload
	// sessions (POST /v1/traces); opens past it are rejected with 429.
	// Default 64.
	MaxIngestSessions int
	// WorkerID names this node in a fleet. It is stamped on every HTTP
	// response as an X-Siesta-Worker header and reported in job views, so
	// clients and the fleet gateway can tell which node served a request.
	// Empty for a standalone service.
	WorkerID string
	// PeerFetch, when non-nil, is consulted on an artifact-cache miss
	// before the job is queued: given the content-addressed cache key it
	// may return a finished artifact held by a fleet peer, letting any
	// replica answer a hit before recomputing. The call sits on the
	// request path, so implementations must bound their own latency.
	PeerFetch func(key cache.Key) (*cache.Artifact, bool)
	// CheckpointSink, when non-nil, receives every phase-boundary
	// checkpoint this node writes, keyed by the job's artifact cache key
	// (location-independent, unlike the job id). The fleet worker
	// replicates these to a hash-ring successor so a job whose owner dies
	// can resume from its last boundary on another node. Called on the
	// synthesis goroutine after local persistence; implementations must
	// not block. A CheckpointSink without a StateDir still enables
	// checkpointing — the blobs just live only in the sink's replicas.
	CheckpointSink func(key cache.Key, ckpt []byte)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.MaxIngestSessions <= 0 {
		c.MaxIngestSessions = 64
	}
	return c
}

// Server is one synthesis service instance. Create with New, serve its
// Handler, and stop it with Shutdown.
type Server struct {
	cfg   Config
	store *cache.Store
	reg   *metrics.Registry

	// Durability layer; all nil/zero without a StateDir.
	journal   *durable.Journal
	ckpts     *durable.CheckpointStore
	retryBase time.Duration // backoff base; tests shrink it

	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	mu        sync.Mutex
	jobs      map[string]*job
	jobOrder  []string // admission order, for listing and pruning
	nextID    int
	draining  bool
	drainDone chan struct{} // closed when all workers have exited

	// ready flips true once construction — including journal recovery —
	// has completed; /readyz serves 503 before that and again while
	// draining, so a fleet gateway never routes to a node still replaying
	// its WAL or on its way out.
	ready atomic.Bool

	logMu sync.Mutex

	// Streaming-upload sessions (POST /v1/traces), by session id. A
	// session leaves the map on commit (ownership moves to the job) or
	// abort; sessions are memory-only and do not survive a restart.
	ingestMu   sync.Mutex
	ingests    map[string]*ingestSession
	nextIngest int

	// phaseAgg accumulates per-phase wall times split by serial
	// (parallelism 1) vs parallel jobs, backing the speedup gauges.
	phaseMu  sync.Mutex
	phaseAgg map[string]*phaseTimes

	// metrics handles, registered once at construction
	mAccepted, mRejected  *metrics.Counter
	mHits, mMisses        *metrics.Counter
	mDone, mFail, mCancel *metrics.Counter
	mRecovered, mCkptW    *metrics.Counter
	mRetries, mPeerHits   *metrics.Counter
	mDiagInfo, mDiagWarn  *metrics.Counter
	mDiagErr              *metrics.Counter
	mIngestBytes          *metrics.Counter
	gQueued, gRunning     *metrics.Gauge
	gPhasePar             *metrics.Gauge
	gIngestRanks          *metrics.Gauge
	hJobDur               *metrics.Histogram
	hAnalyze              *metrics.Histogram
}

// phaseTimes aggregates one phase's observed wall times by execution mode.
// Parallel samples are bucketed by whether the phase actually ran
// overlapped with another phase (index 1) or not (index 0), so the speedup
// gauges attribute gains to the overlap separately from worker-pool
// parallelism.
type phaseTimes struct {
	serialSum float64
	serialN   int
	parSum    [2]float64
	parN      [2]int
}

// New builds a service and starts its worker pool. With a StateDir
// configured it also opens the durability layer and re-admits jobs the
// previous incarnation left unfinished; the only error paths are state-dir
// I/O, so a memory-only service never fails to construct.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		store:    cache.New(cfg.CacheSize),
		reg:      reg,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		ingests:  make(map[string]*ingestSession),
		phaseAgg: make(map[string]*phaseTimes),

		mAccepted:    reg.Counter("siesta_jobs_accepted_total", "synthesis jobs admitted to the queue"),
		mRejected:    reg.Counter("siesta_jobs_rejected_total", "synthesis jobs rejected because the queue was full"),
		mHits:        reg.Counter("siesta_cache_hits_total", "requests answered from the artifact cache"),
		mMisses:      reg.Counter("siesta_cache_misses_total", "requests that required synthesis"),
		mDone:        reg.Counter(`siesta_jobs_completed_total{status="done"}`, "jobs by final status"),
		mFail:        reg.Counter(`siesta_jobs_completed_total{status="failed"}`, "jobs by final status"),
		mCancel:      reg.Counter(`siesta_jobs_completed_total{status="canceled"}`, "jobs by final status"),
		mRecovered:   reg.Counter("siesta_jobs_recovered_total", "jobs re-admitted from the journal after a restart"),
		mCkptW:       reg.Counter("siesta_checkpoints_written_total", "phase-boundary checkpoints persisted"),
		mRetries:     reg.Counter("siesta_job_retries_total", "in-process retries of transient job failures"),
		mPeerHits:    reg.Counter("siesta_peer_hits_total", "cache misses answered by a fleet peer's replica"),
		mDiagInfo:    reg.Counter(`siesta_check_diagnostics_total{severity="info"}`, "static-verifier diagnostics by severity"),
		mDiagWarn:    reg.Counter(`siesta_check_diagnostics_total{severity="warning"}`, "static-verifier diagnostics by severity"),
		mDiagErr:     reg.Counter(`siesta_check_diagnostics_total{severity="error"}`, "static-verifier diagnostics by severity"),
		mIngestBytes: reg.Counter("siesta_ingest_bytes_total", "trace bytes accepted by streaming ingest"),
		gIngestRanks: reg.Gauge("siesta_ingest_ranks_open", "rank streams currently open across ingest sessions"),
		gQueued:      reg.Gauge("siesta_queue_depth", "jobs waiting in the queue"),
		gRunning:     reg.Gauge("siesta_jobs_running", "jobs currently synthesizing"),
		gPhasePar:    reg.Gauge("siesta_phase_parallelism", "synthesis parallelism of the most recently started job"),
		hJobDur:      reg.Histogram("siesta_job_duration_seconds", "wall-clock synthesis duration", nil),
		hAnalyze:     reg.Histogram("siesta_analyze_seconds", "wall-clock time of static communication-cost analyses", nil),
	}
	// Build metadata as a constant-1 gauge, the Prometheus idiom for
	// joining version info onto other series by label.
	reg.Gauge(buildInfoMetric(), "build metadata; the value is always 1").Set(1)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Recovery needs the workers: re-admission pushes onto the bounded
	// queue and relies on them to drain a backlog deeper than it.
	if cfg.StateDir != "" {
		if err := s.openState(); err != nil {
			close(s.queue)
			s.wg.Wait()
			return nil, err
		}
	}
	// Readiness comes last: the journal has been replayed and every
	// surviving job re-admitted, so routing traffic here is now safe.
	s.ready.Store(true)
	return s, nil
}

// buildInfoMetric renders the siesta_build_info metric name with its
// constant labels: the module version when built from a tagged module, the
// VCS revision when embedded, "dev" otherwise, plus the Go toolchain.
func buildInfoMetric() string {
	version := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		} else {
			for _, kv := range bi.Settings {
				if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
					version = kv.Value[:12]
				}
			}
		}
	}
	return fmt.Sprintf("siesta_build_info{version=%q,go=%q}", version, runtime.Version())
}

// Ready reports whether the service has finished journal recovery and is
// not draining — the condition /readyz serves and the fleet worker
// advertises in its heartbeats.
func (s *Server) Ready() bool {
	if !s.ready.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// Artifact returns the locally cached artifact under key, consulting the
// memory LRU and the disk tier but never fleet peers — it backs the peer
// endpoint itself, so a peer-to-peer fetch cannot recurse.
func (s *Server) Artifact(key cache.Key) (*cache.Artifact, bool) {
	return s.store.Get(key)
}

// Metrics returns the registry the server reports into.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// logEvent writes one structured JSON log line; fields must be
// JSON-encodable. Events also flow to the slog Logger when one is
// configured; with neither sink, logging is disabled entirely.
func (s *Server) logEvent(event string, fields map[string]any) {
	if lg := s.cfg.Logger; lg != nil {
		level := slog.LevelInfo
		if event == "phase" {
			level = slog.LevelDebug
		}
		attrs := make([]any, 0, 2*len(fields))
		for k, v := range fields {
			attrs = append(attrs, k, v)
		}
		lg.Log(context.Background(), level, event, attrs...)
	}
	w := s.cfg.LogWriter
	if w == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = event
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	w.Write(append(data, '\n'))
}

// admit registers a job record and offers it to the queue without
// blocking. It returns false when the queue is full (backpressure) or the
// server is draining.
func (s *Server) admit(jb *job) (ok bool, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, true
	}
	// The job must be fully initialized before it is offered to the
	// queue: the channel send publishes it to a worker, which reads id
	// and status immediately.
	s.nextID++
	jb.id = fmt.Sprintf("j-%06d", s.nextID)
	jb.created = time.Now()
	jb.status = StatusQueued
	// The gauge goes up before the send: a worker may receive the job and
	// decrement it immediately, so incrementing after the send could let a
	// scrape observe a negative depth.
	s.gQueued.Add(1)
	select {
	case s.queue <- jb:
	default:
		s.gQueued.Add(-1)
		s.nextID--
		s.mRejected.Inc()
		return false, false
	}
	s.jobs[jb.id] = jb
	s.jobOrder = append(s.jobOrder, jb.id)
	s.pruneLocked()
	s.mAccepted.Inc()
	// Write-ahead: the enqueued record makes the job survive a crash from
	// here on. A worker may race ahead and journal `started` first —
	// record order within one job is not load-bearing, the replay fold
	// accepts any interleaving.
	s.journalRec(&durable.Record{
		Type: durable.TypeEnqueued, Job: jb.id,
		Request: jb.reqJSON, Key: string(jb.key),
	})
	return true, false
}

// pruneLocked drops the oldest completed job records beyond the retention
// budget. Caller holds s.mu.
func (s *Server) pruneLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// lookupJob finds a job record by id.
func (s *Server) lookupJob(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	return jb, ok
}

// registerCached records an already-satisfied request as a completed job so
// cache hits and misses read uniformly through the jobs API.
func (s *Server) registerCached(jb *job) {
	now := time.Now()
	jb.status = StatusDone
	jb.cached = true
	jb.created, jb.started, jb.finished = now, now, now
	s.mu.Lock()
	s.nextID++
	jb.id = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[jb.id] = jb
	s.jobOrder = append(s.jobOrder, jb.id)
	s.pruneLocked()
	s.mu.Unlock()
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.gQueued.Add(-1)
		s.runJob(jb)
	}
}

// runJob executes one queued job end to end: claim, synthesize under a
// per-job deadline, publish the artifact, settle the record.
func (s *Server) runJob(jb *job) {
	jb.mu.Lock()
	if jb.status != StatusQueued { // canceled while queued
		jb.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), jb.timeout)
	defer cancel()
	jb.status = StatusRunning
	jb.started = time.Now()
	jb.cancel = cancel
	if jb.cancelRequested {
		cancel()
	}
	jb.mu.Unlock()

	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)
	s.gPhasePar.Set(int64(jb.parallelism))
	s.logEvent("job_start", map[string]any{"job": jb.id, "app": jb.app, "ranks": jb.ranks, "parallelism": jb.parallelism, "recovered": jb.recovered})

	// Attempt loop: transient (durability I/O) failures back off and
	// retry within the job's budget, resuming from the latest checkpoint;
	// everything else settles on the first attempt.
	var (
		art          *cache.Artifact
		traceJSON    []byte
		analysisJSON []byte
		err          error
	)
	for {
		jb.mu.Lock()
		jb.attempts++
		attempt := jb.attempts
		jb.mu.Unlock()
		s.journalRec(&durable.Record{Type: durable.TypeStarted, Job: jb.id, Attempt: attempt})
		art, traceJSON, analysisJSON, err = s.runAttempt(ctx, jb)
		if err == nil || !transientErr(err) || attempt > jb.maxRetries || ctx.Err() != nil {
			break
		}
		s.mRetries.Inc()
		delay := s.retryDelay(attempt)
		s.logEvent("job_retry", map[string]any{"job": jb.id, "attempt": attempt, "delay_ms": delay.Milliseconds(), "error": err.Error()})
		select {
		case <-ctx.Done():
		case <-time.After(delay):
		}
	}
	finished := time.Now()

	jb.mu.Lock()
	jb.finished = finished
	jb.phase = ""
	jb.traceJSON = traceJSON
	jb.analysisJSON = analysisJSON
	switch {
	case err == nil:
		art.Key = jb.key
		jb.status = StatusDone
		s.mDone.Inc()
	case errors.Is(err, core.ErrCanceled):
		jb.status = StatusCanceled
		jb.errMsg = err.Error()
		s.mCancel.Inc()
	default:
		jb.status = StatusFailed
		jb.errMsg = err.Error()
		s.mFail.Inc()
	}
	status, errMsg := jb.status, jb.errMsg
	byUser := jb.cancelByUser
	dur := jb.finished.Sub(jb.started)
	jb.mu.Unlock()

	// Settle durably. Done and failed jobs write their terminal record and
	// drop their checkpoint. A user cancel is terminal too — the job must
	// not resurrect on restart. A drain or timeout cancellation journals
	// nothing: the job's pending records stand, so the next incarnation
	// re-admits it and resumes from its last checkpoint (the journal-backed
	// half of graceful drain).
	switch {
	case status == StatusDone:
		if perr := s.store.Put(art); perr != nil {
			s.logEvent("cache_disk_error", map[string]any{"job": jb.id, "error": perr.Error()})
		}
		s.journalRec(&durable.Record{Type: durable.TypeDone, Job: jb.id, Key: string(jb.key)})
		s.dropCheckpoint(jb.id)
	case status == StatusFailed:
		s.journalRec(&durable.Record{Type: durable.TypeFailed, Job: jb.id, Error: errMsg})
		s.dropCheckpoint(jb.id)
	case status == StatusCanceled && byUser:
		s.journalRec(&durable.Record{Type: durable.TypeFailed, Job: jb.id, Error: "canceled by user"})
		s.dropCheckpoint(jb.id)
	}

	s.hJobDur.Observe(dur.Seconds())
	ev := map[string]any{"job": jb.id, "status": string(status), "duration_ms": dur.Milliseconds()}
	if errMsg != "" {
		ev["error"] = errMsg
	}
	s.logEvent("job_end", ev)
}

// runAttempt executes one synthesis attempt under a fresh tracer. Every
// attempt runs under one: phase spans drive the job record, the per-phase
// histograms, and one log line per transition. Runtime timelines are only
// recorded when the request asked for a trace — they cost memory
// proportional to the run. The observer fires on this goroutine
// (core.Synthesize is synchronous).
func (s *Server) runAttempt(ctx context.Context, jb *job) (*cache.Artifact, []byte, []byte, error) {
	tracer := obs.New()
	if !jb.wantTrace {
		tracer.WithoutTimelines()
	}
	tracer.SetObserver(func(ev obs.PhaseEvent) {
		if !ev.End {
			jb.setPhase(ev.Name)
			s.logEvent("phase", map[string]any{"job": jb.id, "phase": ev.Name})
			return
		}
		secs := ev.Dur.Seconds()
		s.reg.Histogram(fmt.Sprintf("siesta_phase_seconds{phase=%q}", ev.Name),
			"wall-clock time per pipeline phase", nil).Observe(secs)
		overlap := false
		for _, a := range ev.Attrs {
			if a.Key == "overlap" {
				overlap, _ = a.Value.(bool)
				break
			}
		}
		s.observePhase(ev.Name, secs, jb.parallelism, overlap)
	})

	var ck core.Checkpointer
	switch {
	case s.ckpts != nil:
		ck = jobCheckpointer{s: s, jb: jb}
	case s.cfg.CheckpointSink != nil:
		// No state dir, but a fleet sink still wants the phase-boundary
		// blobs (and retries still want the in-memory resume).
		ck = sinkCheckpointer{s: s, jb: jb}
	}
	art, analysisJSON, err := jb.work(ctx, tracer, ck, jb.latestResume())

	// Export the recorded trace even for failed or canceled jobs: a
	// partial timeline is exactly what debugging those needs.
	var traceJSON []byte
	if jb.wantTrace {
		var buf bytes.Buffer
		if werr := tracer.WriteChromeTrace(&buf); werr == nil {
			traceJSON = buf.Bytes()
		}
	}
	return art, traceJSON, analysisJSON, err
}

// countDiags folds one verification report into the severity-labelled
// diagnostic counters.
func (s *Server) countDiags(rep *check.Report) {
	if rep == nil {
		return
	}
	for _, d := range rep.Diags {
		switch d.Severity {
		case check.Info:
			s.mDiagInfo.Inc()
		case check.Warning:
			s.mDiagWarn.Inc()
		default:
			s.mDiagErr.Inc()
		}
	}
}

// analyzeProgram runs the static analyzer over a job's merged program under
// an "analyze" phase span, feeds the analyze-latency histogram, and returns
// the marshaled statics.Report. A nil platform resolves the program's
// recorded one.
func (s *Server) analyzeProgram(tracer *obs.Tracer, prog *merge.Program, plat *platform.Platform) ([]byte, error) {
	var sp *obs.Span
	if tracer != nil {
		sp = tracer.Phase("analyze")
	}
	start := time.Now()
	rep, err := statics.Analyze(prog, plat, statics.Options{ExactBytes: true})
	s.hAnalyze.Observe(time.Since(start).Seconds())
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("server: analyze: %w", err)
	}
	return json.Marshal(rep)
}

// observePhase folds one phase wall time into the serial/parallel
// aggregates and refreshes the phase's speedup gauges (mean serial time
// over mean parallel time) once both modes have samples. A value above 1
// means parallel jobs clear the phase faster. The overlap label separates
// parallel samples where the phase ran concurrently with another phase
// (the overlapped baseline/trace runs) from plain worker-pool parallelism,
// so a regression in either shows up on its own series.
func (s *Server) observePhase(phase string, secs float64, parallelism int, overlap bool) {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	pt := s.phaseAgg[phase]
	if pt == nil {
		pt = &phaseTimes{}
		s.phaseAgg[phase] = pt
	}
	if parallelism <= 1 {
		pt.serialSum += secs
		pt.serialN++
	} else {
		i := 0
		if overlap {
			i = 1
		}
		pt.parSum[i] += secs
		pt.parN[i]++
	}
	if pt.serialN == 0 {
		return
	}
	for i, n := range pt.parN {
		if n > 0 && pt.parSum[i] > 0 {
			speedup := (pt.serialSum / float64(pt.serialN)) / (pt.parSum[i] / float64(n))
			s.reg.GaugeFloat(fmt.Sprintf("siesta_phase_speedup{overlap=\"%t\",phase=%q}", i == 1, phase),
				"mean serial over mean parallel phase wall time, split by run overlap").Set(speedup)
		}
	}
}

// requestCancel cancels a job: queued jobs settle immediately, running jobs
// get their context canceled and settle on the worker's path. It reports
// whether the cancellation was accepted (false once the job is terminal).
// byUser distinguishes an explicit DELETE — terminal in the journal — from
// a drain or hard stop, after which the job's pending journal records let
// the next incarnation resume it.
func (s *Server) requestCancel(jb *job, byUser bool) bool {
	jb.mu.Lock()
	switch jb.status {
	case StatusQueued:
		jb.status = StatusCanceled
		jb.errMsg = "canceled while queued"
		jb.finished = time.Now()
		s.mCancel.Inc()
		jb.mu.Unlock()
		// The worker discards it when it reaches the head of the queue;
		// the queued-depth gauge settles there.
		if byUser {
			s.journalRec(&durable.Record{Type: durable.TypeFailed, Job: jb.id, Error: "canceled while queued"})
			s.dropCheckpoint(jb.id)
		}
		return true
	case StatusRunning:
		jb.cancelRequested = true
		if byUser {
			jb.cancelByUser = true
		}
		if jb.cancel != nil {
			jb.cancel()
		}
		jb.mu.Unlock()
		return true
	default:
		jb.mu.Unlock()
		return false
	}
}

// Shutdown drains the service: no new jobs are admitted, queued and
// running jobs finish, then workers exit. If ctx expires first, remaining
// jobs are canceled and Shutdown returns ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drainDone = make(chan struct{})
		close(s.queue) // safe: admissions hold s.mu and re-check draining
		done := s.drainDone
		go func() {
			s.wg.Wait()
			close(done)
		}()
	}
	// Concurrent and repeat calls all wait on the same drain; returning
	// early just because draining was already set would let a caller
	// proceed before the workers have actually exited.
	done := s.drainDone
	s.mu.Unlock()

	select {
	case <-done:
		s.closeState()
		return nil
	case <-ctx.Done():
		// Hard stop: cancel whatever is still running, then wait for the
		// workers to observe it. These cancellations are not journaled as
		// terminal — interrupted jobs stay pending and are re-admitted by
		// the next incarnation.
		s.mu.Lock()
		for _, jb := range s.jobs {
			s.requestCancel(jb, false)
		}
		s.mu.Unlock()
		<-done
		s.closeState()
		return ctx.Err()
	}
}

// --- synthesis work functions ----------------------------------------------

// workFn is the signature of a queued job's executable body: one attempt,
// checkpointing through ck and resuming from the checkpoint if one is
// offered (a nil ck disables durability, a nil resume runs cold). The byte
// slice is the marshaled statics.Report for an analyze job, nil otherwise.
type workFn = func(ctx context.Context, tracer *obs.Tracer, ck core.Checkpointer, resume *core.Checkpoint) (*cache.Artifact, []byte, error)

// appWork prepares the work function for a built-in application request.
func (s *Server) appWork(spec *apps.Spec, params apps.Params, opts core.Options, analyze bool) (workFn, error) {
	fn, err := spec.Build(params)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, tracer *obs.Tracer, ck core.Checkpointer, resume *core.Checkpoint) (*cache.Artifact, []byte, error) {
		opts := opts
		opts.Context = ctx
		opts.Tracer = tracer
		opts.Checkpointer = ck
		opts.Resume = resume
		res, err := core.Synthesize(fn, opts)
		if err != nil {
			return nil, nil, err
		}
		s.countDiags(res.Check)
		var analysis []byte
		if analyze {
			if analysis, err = s.analyzeProgram(tracer, res.Program, opts.Platform); err != nil {
				return nil, nil, err
			}
		}
		st := res.Program.Stats()
		art := &cache.Artifact{
			App: spec.Name, Ranks: opts.Ranks,
			CSource:   res.Generated.CSource(),
			Terminals: st.Terminals, Rules: st.Rules, SizeC: res.Generated.SizeC,
			Overhead: res.Overhead,
		}
		if res.Check != nil {
			art.CheckSummary = res.Check.Summary()
		}
		return art, analysis, nil
	}, nil
}

// traceWork prepares the work function for an uploaded trace: the pipeline
// minus the two simulated runs — merge, verify, generate. The merged
// program is checkpointed through the same merge.Program codec the core
// pipeline uses, so a restart skips straight to verification and codegen.
func (s *Server) traceWork(tr *trace.Trace, opts core.Options, analyze bool) workFn {
	return func(ctx context.Context, tracer *obs.Tracer, ck core.Checkpointer, resume *core.Checkpoint) (*cache.Artifact, []byte, error) {
		fp := core.OptionsFingerprint(opts)
		var cur *obs.Span
		step := func(phase string) error {
			cur.End()
			cur = nil
			if tracer != nil {
				cur = tracer.Phase(phase,
					obs.Int("ranks", len(tr.Ranks)),
					obs.Int("parallelism", opts.Parallelism))
			}
			if ctx != nil && ctx.Err() != nil {
				return fmt.Errorf("server: %s: %w", phase, &mpi.CancelError{Cause: context.Cause(ctx)})
			}
			return nil
		}
		defer func() { cur.End() }()

		// Resume honors only a checkpoint written by an identical request
		// (fingerprint match) whose program decodes; anything else recomputes.
		var prog *merge.Program
		resumed := false
		if resume != nil && resume.Fingerprint == fp && len(resume.ProgramBytes) > 0 {
			if p, derr := merge.Decode(resume.ProgramBytes); derr == nil {
				prog = p
				resumed = true
				if tracer != nil {
					sp := tracer.Phase("resume",
						obs.String("from", resume.Phase), obs.Bool("resumed", true))
					sp.End()
				}
			}
		}
		if !resumed {
			if err := step("merge"); err != nil {
				return nil, nil, err
			}
			var err error
			prog, err = merge.Build(tr, opts.Merge)
			if err != nil {
				return nil, nil, fmt.Errorf("server: merge: %w", err)
			}
		}
		// Verification always re-runs, resumed or not: its verdict is
		// stamped into the generated header, and re-checking an identical
		// program is cheap and yields the identical summary.
		var rep *check.Report
		if !opts.DisableCheck {
			if err := step("check"); err != nil {
				return nil, nil, err
			}
			var err error
			rep, err = check.Verify(prog, check.Options{
				ExactBytes:    true,
				AbsoluteRanks: opts.Trace.AbsoluteRanks,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("server: check: %w", err)
			}
			s.countDiags(rep)
			if rep.HasErrors() {
				return nil, nil, fmt.Errorf("server: uploaded trace failed static verification (%s)", rep.Summary())
			}
		}
		if ck != nil && !resumed {
			cp := &core.Checkpoint{Fingerprint: fp, Phase: core.PhaseMerge, ProgramBytes: prog.Encode()}
			if rep != nil {
				cp.CheckSummary = rep.Summary()
			}
			if err := ck.Save(cp); err != nil {
				return nil, nil, &core.CheckpointError{Phase: core.PhaseMerge, Err: err}
			}
		}
		// The analysis, when requested, runs on the verified program; the
		// phase span and latency observation live in analyzeProgram.
		var analysis []byte
		if analyze {
			cur.End()
			cur = nil
			var aerr error
			if analysis, aerr = s.analyzeProgram(tracer, prog, opts.Platform); aerr != nil {
				return nil, nil, aerr
			}
		}
		if err := step("codegen"); err != nil {
			return nil, nil, err
		}
		genOpts := codegen.Options{Platform: opts.Platform, Scale: opts.Scale, Check: rep}
		if opts.Scale > 1 {
			genOpts.CommSamples = codegen.CollectCommSamples(tr)
		}
		gen, err := codegen.Generate(prog, genOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("server: generate: %w", err)
		}
		st := prog.Stats()
		art := &cache.Artifact{
			App: "trace", Ranks: len(tr.Ranks),
			CSource:   gen.CSource(),
			Terminals: st.Terminals, Rules: st.Rules, SizeC: gen.SizeC,
		}
		if rep != nil {
			art.CheckSummary = rep.Summary()
		}
		return art, analysis, nil
	}
}
