package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"siesta/internal/statics"
)

// TestJobAnalysisEndpoint covers the static-analysis surface of the
// service: a job submitted with "analyze": true bypasses the cache-hit
// shortcut, records a statics.Report, and serves it at
// GET /v1/jobs/{id}/analysis; unanalyzed jobs 404 there.
func TestJobAnalysisEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2, Analyze: true}

	resp, body := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST analyzed job = %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusDone {
		t.Fatalf("analyzed job: %s (%s)", v.Status, v.Error)
	}
	if v.AnalysisURL == "" {
		t.Fatal("settled analyzed job has no analysis_url")
	}

	// The served document must round-trip as a statics.Report whose totals
	// are populated and internally consistent.
	httpResp, err := http.Get(ts.URL + v.AnalysisURL)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", v.AnalysisURL, httpResp.StatusCode)
	}
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("analysis content-type %q", ct)
	}
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rep statics.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("analysis is not a statics.Report: %v", err)
	}
	if rep.NumRanks != 8 || !rep.Complete || rep.TotalMessages == 0 {
		t.Fatalf("implausible analysis: ranks=%d complete=%v messages=%d",
			rep.NumRanks, rep.Complete, rep.TotalMessages)
	}
	var pairSum int64
	for _, pv := range rep.Pairs {
		pairSum += pv.Messages
	}
	if pairSum != rep.TotalMessages {
		t.Errorf("pair messages sum %d != total %d", pairSum, rep.TotalMessages)
	}

	// A repeat WITH analyze must synthesize again (a cache hit carries no
	// program to analyze); a repeat WITHOUT hits the cache and carries no
	// analysis_url.
	resp2, body2 := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat analyzed job should re-synthesize, got %d: %s", resp2.StatusCode, body2)
	}
	var sr2 SynthesizeResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, sr2.Job.ID)

	plain := req
	plain.Analyze = false
	resp3, body3 := postJSON(t, ts.URL+"/v1/synthesize", plain)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("unanalyzed repeat should hit the cache, got %d: %s", resp3.StatusCode, body3)
	}
	var sr3 SynthesizeResponse
	if err := json.Unmarshal(body3, &sr3); err != nil {
		t.Fatal(err)
	}
	if sr3.Job.AnalysisURL != "" {
		t.Errorf("cache-hit job advertises an analysis_url: %q", sr3.Job.AnalysisURL)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr3.Job.ID+"/analysis", nil); code != http.StatusNotFound {
		t.Errorf("GET analysis on unanalyzed job = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/analysis", nil); code != http.StatusNotFound {
		t.Errorf("GET analysis on unknown job = %d, want 404", code)
	}

	// The scrape must expose the analyze-latency histogram with at least
	// the two analyses above, and the severity-labelled diagnostic
	// counters (all zero: the runs were clean).
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	mBody, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(mBody)
	for _, want := range []string{
		"siesta_analyze_seconds_count 2",
		`siesta_check_diagnostics_total{severity="info"} 0`,
		`siesta_check_diagnostics_total{severity="warning"} 0`,
		`siesta_check_diagnostics_total{severity="error"} 0`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
