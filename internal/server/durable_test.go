package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/durable"
)

// newStateServer is newTestServer with a state directory.
func newStateServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.StateDir = dir
	return newTestServer(t, cfg)
}

// journalPath returns the journal file under a state dir.
func journalPath(dir string) string { return filepath.Join(dir, "journal.wal") }

// reduceJournal reads and folds the journal without opening it for append
// (the server may still own it).
func reduceJournal(t *testing.T, dir string) map[string]*durable.JobState {
	t.Helper()
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := durable.Replay(data)
	states, _ := durable.Reduce(recs)
	return states
}

// seedJournal writes records into a fresh journal and closes it, simulating
// the leavings of a crashed process.
func seedJournal(t *testing.T, dir string, recs ...durable.Record) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, _, err := durable.Open(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := j.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecoveryRunsInterruptedJob: a job that was enqueued and started when
// the process died is re-admitted under its original id, runs to done, and
// its terminal record lands in the journal.
func TestRecoveryRunsInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	req := mustJSON(t, SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2})
	seedJournal(t, dir,
		durable.Record{Type: durable.TypeEnqueued, Job: "j-000042", Request: req},
		durable.Record{Type: durable.TypeStarted, Job: "j-000042", Attempt: 1},
	)

	s, ts := newStateServer(t, dir, Config{Workers: 1})
	if got := s.mRecovered.Value(); got != 1 {
		t.Fatalf("siesta_jobs_recovered_total = %d, want 1", got)
	}
	v := waitJob(t, ts.URL, "j-000042")
	if v.Status != StatusDone {
		t.Fatalf("recovered job settled %s (%s)", v.Status, v.Error)
	}
	if !v.Recovered || v.Attempts < 2 {
		t.Errorf("view: recovered=%v attempts=%d, want recovered with attempts >= 2", v.Recovered, v.Attempts)
	}
	// Fresh admissions must not collide with the recovered id.
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2, Trace: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh submit after recovery: %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Job.ID == "j-000042" {
		t.Error("fresh job reused the recovered id")
	}
	waitJob(t, ts.URL, sr.Job.ID)

	states := reduceJournal(t, dir)
	if st := states["j-000042"]; st == nil || st.Terminal != durable.TypeDone {
		t.Fatalf("journal does not settle the recovered job as done: %+v", st)
	}
	// The phase checkpoints were persisted along the way.
	if got := s.mCkptW.Value(); got == 0 {
		t.Error("siesta_checkpoints_written_total stayed 0")
	}
}

// TestRecoveryResumesFromCheckpointByteIdentical: the crash-recovery half
// of the correctness contract, through the whole service — a job restarted
// from its post-trace checkpoint must publish the artifact an uninterrupted
// run publishes, byte for byte.
func TestRecoveryResumesFromCheckpointByteIdentical(t *testing.T) {
	// Control: what an uninterrupted service run produces.
	ctrlDir := t.TempDir()
	_, ctrlTS := newStateServer(t, ctrlDir, Config{Workers: 1})
	resp, body := postJSON(t, ctrlTS.URL+"/v1/synthesize", SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("control submit: %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ctrlTS.URL, sr.Job.ID)
	var ctrlArt struct {
		CSource      string `json:"c_source"`
		CheckSummary string `json:"check_summary"`
	}
	if code := getJSON(t, ctrlTS.URL+"/v1/jobs/"+sr.Job.ID+"/artifact", &ctrlArt); code != http.StatusOK {
		t.Fatalf("control artifact: %d", code)
	}

	// Build the interrupted state by hand: a post-trace checkpoint with
	// the fingerprint the server's prepare path computes for this request.
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	capture := &captureCheckpointer{}
	if _, err := core.Synthesize(fn, core.Options{Ranks: 8, Checkpointer: capture}); err != nil {
		t.Fatal(err)
	}
	var postTrace *core.Checkpoint
	for _, cp := range capture.saved {
		if cp.Phase == core.PhaseTrace {
			postTrace = cp
		}
	}
	if postTrace == nil {
		t.Fatal("no post-trace checkpoint captured")
	}

	dir := t.TempDir()
	ckpts, err := durable.NewCheckpointStore(filepath.Join(dir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	name, err := ckpts.Save("j-000007", postTrace.Encode())
	if err != nil {
		t.Fatal(err)
	}
	req := mustJSON(t, SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2})
	seedJournal(t, dir,
		durable.Record{Type: durable.TypeEnqueued, Job: "j-000007", Request: req},
		durable.Record{Type: durable.TypeStarted, Job: "j-000007", Attempt: 1},
		durable.Record{Type: durable.TypeCheckpoint, Job: "j-000007", Phase: core.PhaseTrace, File: name},
	)

	_, ts := newStateServer(t, dir, Config{Workers: 1})
	v := waitJob(t, ts.URL, "j-000007")
	if v.Status != StatusDone {
		t.Fatalf("resumed job settled %s (%s)", v.Status, v.Error)
	}
	var art struct {
		CSource      string `json:"c_source"`
		CheckSummary string `json:"check_summary"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j-000007/artifact", &art); code != http.StatusOK {
		t.Fatalf("resumed artifact: %d", code)
	}
	if art.CSource != ctrlArt.CSource {
		t.Error("resumed artifact C source differs from uninterrupted control run")
	}
	if art.CheckSummary != ctrlArt.CheckSummary {
		t.Errorf("resumed check summary %q != control %q", art.CheckSummary, ctrlArt.CheckSummary)
	}
}

// captureCheckpointer collects checkpoints without persisting them.
type captureCheckpointer struct{ saved []*core.Checkpoint }

func (c *captureCheckpointer) Save(cp *core.Checkpoint) error {
	c.saved = append(c.saved, cp)
	return nil
}

// TestRecoveryAbandonsCrashLoopingJob: a job already started maxRecoveries
// times is not re-admitted; recovery settles it failed.
func TestRecoveryAbandonsCrashLoopingJob(t *testing.T) {
	dir := t.TempDir()
	req := mustJSON(t, SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2})
	recs := []durable.Record{{Type: durable.TypeEnqueued, Job: "j-000009", Request: req}}
	for a := 1; a <= maxRecoveries; a++ {
		recs = append(recs, durable.Record{Type: durable.TypeStarted, Job: "j-000009", Attempt: a})
	}
	seedJournal(t, dir, recs...)

	s, ts := newStateServer(t, dir, Config{Workers: 1})
	if got := s.mRecovered.Value(); got != 0 {
		t.Fatalf("crash-looping job was recovered (%d)", got)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j-000009", nil); code != http.StatusNotFound {
		t.Errorf("abandoned job visible in the API: %d", code)
	}
	states := reduceJournal(t, dir)
	st := states["j-000009"]
	if st == nil || st.Terminal != durable.TypeFailed || !strings.Contains(st.Error, "abandoned") {
		t.Fatalf("journal state: %+v, want failed/abandoned", st)
	}
}

// TestDiskCacheSurvivesRestart: an artifact synthesized by one incarnation
// answers the identical request in the next from disk.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2}

	s1, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp, body := postJSON(t, ts1.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts1.URL, sr.Job.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2, ts2 := newStateServer(t, dir, Config{Workers: 1})
	resp, body = postJSON(t, ts2.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identical request after restart should hit the disk cache: %d: %s", resp.StatusCode, body)
	}
	var sr2 SynthesizeResponse
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Error("response not marked cached")
	}
	if got := s2.mHits.Value(); got != 1 {
		t.Errorf("cache hits after restart = %d, want 1", got)
	}
}

// TestRetryThenTerminalFailure: checkpoint I/O failures are transient —
// the job retries with backoff up to max_retries, then settles failed with
// a durable terminal record.
func TestRetryThenTerminalFailure(t *testing.T) {
	dir := t.TempDir()
	s, ts := newStateServer(t, dir, Config{Workers: 1})
	s.retryBase = time.Millisecond

	// Break the checkpoint store: replace its directory with a file so
	// every blob write fails.
	ckDir := filepath.Join(dir, "checkpoints")
	if err := os.RemoveAll(ckDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckDir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	two := 2
	resp, body := postJSON(t, ts.URL+"/v1/synthesize",
		SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2, MaxRetries: &two})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusFailed {
		t.Fatalf("job settled %s, want failed", v.Status)
	}
	if !strings.Contains(v.Error, "checkpoint") {
		t.Errorf("failure does not name the checkpoint layer: %q", v.Error)
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", v.Attempts)
	}
	if got := s.mRetries.Value(); got != 2 {
		t.Errorf("siesta_job_retries_total = %d, want 2", got)
	}
	states := reduceJournal(t, dir)
	if st := states[sr.Job.ID]; st == nil || st.Terminal != durable.TypeFailed {
		t.Fatalf("journal state: %+v, want terminal failed", st)
	}
}

// TestUserCancelIsTerminalDrainIsNot: an explicit DELETE settles the job
// in the journal; a hard-stop drain leaves it pending so the next
// incarnation re-admits it.
func TestUserCancelIsTerminalDrainIsNot(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	reqJSON := mustJSON(t, SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2})
	release := make(chan struct{})
	defer close(release)

	// Job A: user-canceled while running.
	ja := blockerJob(release)
	ja.reqJSON = reqJSON
	if ok, _ := s1.admit(ja); !ok {
		t.Fatal("admit A")
	}
	waitStatus(t, ja, StatusRunning)
	if !s1.requestCancel(ja, true) {
		t.Fatal("cancel A")
	}
	waitStatus(t, ja, StatusCanceled)

	// Job B: still running when the service is hard-stopped.
	jbB := blockerJob(release)
	jbB.reqJSON = reqJSON
	if ok, _ := s1.admit(jbB); !ok {
		t.Fatal("admit B")
	}
	waitStatus(t, jbB, StatusRunning)

	expired, cancel := context.WithCancel(context.Background())
	cancel() // already-expired context forces the hard-stop path
	s1.Shutdown(expired)
	ts1.Close()

	s2, ts2 := newStateServer(t, dir, Config{Workers: 1})
	if got := s2.mRecovered.Value(); got != 1 {
		t.Fatalf("recovered %d jobs, want exactly the drain-interrupted one", got)
	}
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+ja.id, nil); code != http.StatusNotFound {
		t.Errorf("user-canceled job resurrected: %d", code)
	}
	v := waitJob(t, ts2.URL, jbB.id)
	if v.Status != StatusDone {
		t.Fatalf("drain-interrupted job settled %s (%s)", v.Status, v.Error)
	}
}
