// Package metrics is a dependency-free metrics kernel for the synthesis
// service: atomic counters and gauges, fixed-bucket histograms, and a
// Prometheus-text exposition writer. It implements just the subset of the
// exposition format the service needs — counters, gauges, histograms,
// constant labels embedded in the metric name — so `siesta serve` can be
// scraped by standard tooling without importing a client library.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFloat is a float-valued gauge (atomic on the float's bit pattern),
// for ratios like per-phase speedups that an integer gauge would truncate.
type GaugeFloat struct {
	v atomic.Uint64
}

// Set replaces the gauge value.
func (g *GaugeFloat) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *GaugeFloat) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram counts observations into cumulative buckets, Prometheus-style:
// bucket i counts observations ≤ Buckets[i], with an implicit +Inf bucket.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds
	counts  []uint64  // len(bounds)+1, last is +Inf
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DefBuckets is a general-purpose latency bucket ladder in seconds,
// spanning sub-millisecond cache hits to multi-minute synthesis jobs.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120}

type kind int

const (
	kCounter kind = iota
	kGauge
	kGaugeFloat
	kHistogram
)

type metric struct {
	name string // full name, may embed constant labels: foo_total{status="ok"}
	help string
	kind kind
	c    *Counter
	g    *Gauge
	gf   *GaugeFloat
	h    *Histogram
}

// Registry holds named metrics and renders them in exposition order.
// Registration is idempotent: asking for an existing name returns the
// already-registered metric, so call sites can register at use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// family splits a possibly-labeled metric name into its family name:
// `jobs_total{status="done"}` → `jobs_total`.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) lookup(name, help string, k kind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("metrics: %s re-registered with a different type", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: k}
	switch k {
	case kCounter:
		m.c = &Counter{}
	case kGauge:
		m.g = &Gauge{}
	case kGaugeFloat:
		m.gf = &GaugeFloat{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. Constant labels may be embedded in the name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kCounter).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kGauge).g
}

// GaugeFloat returns the float gauge registered under name, creating it on
// first use.
func (r *Registry) GaugeFloat(name, help string) *GaugeFloat {
	return r.lookup(name, help, kGaugeFloat).gf
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds on first use (nil selects
// DefBuckets). Later calls ignore the bucket argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kHistogram {
			panic(fmt.Sprintf("metrics: %s re-registered with a different type", name))
		}
		return m.h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: %s: bucket bounds must be ascending", name))
	}
	m := &metric{name: name, help: help, kind: kHistogram,
		h: &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}}
	r.metrics[name] = m
	return m.h
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, sorted by name so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	seenFamily := map[string]bool{}
	for _, m := range ms {
		fam := family(m.name)
		if !seenFamily[fam] {
			seenFamily[fam] = true
			typ := map[kind]string{kCounter: "counter", kGauge: "gauge", kGaugeFloat: "gauge", kHistogram: "histogram"}[m.kind]
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case kGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case kGaugeFloat:
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.gf.Value())
		case kHistogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, m *metric) error {
	h := m.h
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, samples := h.sum, h.samples
	h.mu.Unlock()

	base, labels := m.name, ""
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		base = m.name[:i]
		labels = strings.TrimSuffix(m.name[i+1:], "}")
	}
	// lbl merges the metric's constant labels with a per-line extra label,
	// producing "" / {a} / {a,b} as appropriate.
	lbl := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, lbl(fmt.Sprintf("le=%q", formatBound(b))), cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, lbl(`le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, lbl(""), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, lbl(""), samples)
	return err
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
