package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs accepted")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("jobs_total", "") != c {
		t.Error("re-registration should return the same counter")
	}

	g := r.Gauge("queue_depth", "queued jobs")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "job latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %g, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 56.05`,
		`latency_seconds_count 5`,
		"# TYPE latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledMetricsShareFamilyHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter(`jobs_completed_total{status="done"}`, "completed jobs by status").Add(3)
	r.Counter(`jobs_completed_total{status="failed"}`, "completed jobs by status").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE jobs_completed_total counter") != 1 {
		t.Errorf("family header should appear exactly once:\n%s", out)
	}
	if !strings.Contains(out, `jobs_completed_total{status="done"} 3`) ||
		!strings.Contains(out, `jobs_completed_total{status="failed"} 1`) {
		t.Errorf("labeled series missing:\n%s", out)
	}
	// done sorts before failed → deterministic order.
	if strings.Index(out, `status="done"`) > strings.Index(out, `status="failed"`) {
		t.Errorf("output not sorted:\n%s", out)
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`phase_seconds{phase="merge"}`, "per-phase latency", []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`phase_seconds_bucket{phase="merge",le="1"} 1`,
		`phase_seconds_bucket{phase="merge",le="+Inf"} 1`,
		`phase_seconds_sum{phase="merge"} 0.5`,
		`phase_seconds_count{phase="merge"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "up 1") {
		t.Errorf("scrape missing counter: %s", buf[:n])
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", []float64{1, 2}).Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c", "").Value() != 8000 {
		t.Errorf("counter = %d, want 8000", r.Counter("c", "").Value())
	}
	if r.Histogram("h", "", nil).Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", r.Histogram("h", "", nil).Count())
	}
}

func TestGaugeFloat(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeFloat(`speedup{phase="merge"}`, "per-phase speedup")
	g.Set(2.75)
	if v := g.Value(); v != 2.75 {
		t.Fatalf("Value = %g, want 2.75", v)
	}
	if same := r.GaugeFloat(`speedup{phase="merge"}`, ""); same != g {
		t.Fatal("re-registration must return the same gauge")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE speedup gauge",
		`speedup{phase="merge"} 2.75`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
