package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyFrom(t *testing.T) {
	k1 := KeyFrom([]byte("ab"), []byte("c"))
	k2 := KeyFrom([]byte("a"), []byte("bc"))
	if k1 == k2 {
		t.Error("length prefixing should prevent section-boundary collisions")
	}
	if k1 != KeyFrom([]byte("ab"), []byte("c")) {
		t.Error("keys must be deterministic")
	}
	if len(k1) != 64 {
		t.Errorf("key should be sha256 hex, got %d chars", len(k1))
	}
}

func TestStorePutGet(t *testing.T) {
	s := New(4)
	a := &Artifact{Key: KeyFrom([]byte("x")), App: "CG", Ranks: 8, CSource: "int main(){}"}
	s.Put(a)
	got, ok := s.Get(a.Key)
	if !ok || got.CSource != a.CSource {
		t.Fatalf("Get after Put = %v, %v", got, ok)
	}
	if _, ok := s.Get(KeyFrom([]byte("y"))); ok {
		t.Error("absent key should miss")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := New(2)
	k := func(i int) Key { return KeyFrom([]byte{byte(i)}) }
	s.Put(&Artifact{Key: k(1)})
	s.Put(&Artifact{Key: k(2)})
	s.Get(k(1)) // refresh 1 → 2 is now least recently used
	s.Put(&Artifact{Key: k(3)})
	if _, ok := s.Get(k(2)); ok {
		t.Error("LRU entry should have been evicted")
	}
	if _, ok := s.Get(k(1)); !ok {
		t.Error("recently used entry should survive")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStoreReplaceRefreshes(t *testing.T) {
	s := New(2)
	k := KeyFrom([]byte("k"))
	s.Put(&Artifact{Key: k, App: "old"})
	s.Put(&Artifact{Key: KeyFrom([]byte("other"))})
	s.Put(&Artifact{Key: k, App: "new"}) // replace + refresh
	s.Put(&Artifact{Key: KeyFrom([]byte("third"))})
	got, ok := s.Get(k)
	if !ok || got.App != "new" {
		t.Errorf("replaced entry should survive with new value, got %v %v", got, ok)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := KeyFrom([]byte(fmt.Sprintf("%d", i%40)))
				if i%3 == 0 {
					s.Put(&Artifact{Key: key, Ranks: i})
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 32 {
		t.Errorf("Len = %d exceeds budget", s.Len())
	}
}
