// Package cache is the synthesis service's content-addressed artifact
// store. Artifacts are keyed by a digest of everything that determines the
// synthesis output — the input identity (app name and parameters, or raw
// trace bytes) plus the canonical options fingerprint — so two requests
// that would synthesize the same proxy share one cache entry, and any
// change to input or options misses by construction. Eviction is LRU with
// a fixed entry budget: artifacts are immutable and cheap to regenerate,
// so a bounded in-memory store is the right durability class.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// Key addresses one artifact: a hex sha256 digest.
type Key string

// KeyFrom derives a cache key from an ordered sequence of byte sections.
// Sections are length-prefixed before hashing so ("ab","c") and ("a","bc")
// cannot collide.
func KeyFrom(sections ...[]byte) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, s := range sections {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write(s)
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// ParseKey validates an externally supplied key string — a URL path
// segment on the fleet peer API, a client-quoted cache_key — as a
// well-formed artifact key: exactly the lowercase-hex sha256 shape KeyFrom
// produces. Anything else (path traversal attempts included) is rejected
// before it can reach the disk tier.
func ParseKey(s string) (Key, error) {
	if len(s) != sha256.Size*2 {
		return "", fmt.Errorf("cache: key must be %d hex chars, got %d", sha256.Size*2, len(s))
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("cache: key has non-hex byte %q at %d", c, i)
		}
	}
	return Key(s), nil
}

// Artifact is one finished synthesis: the generated proxy source plus the
// summary data the service serves alongside it. Artifacts are immutable
// once stored; callers must not mutate a returned artifact.
type Artifact struct {
	Key Key `json:"key"`

	// App names the built-in application, or "trace" for uploaded traces.
	App   string `json:"app"`
	Ranks int    `json:"ranks"`

	// CSource is the generated C proxy-app.
	CSource string `json:"c_source"`
	// CheckSummary is the static verifier's one-line verdict.
	CheckSummary string `json:"check_summary,omitempty"`

	// Program statistics, mirrored from merge.Program.Stats.
	Terminals int `json:"terminals"`
	Rules     int `json:"rules"`
	SizeC     int `json:"size_c"`

	// Overhead is the tracing overhead of the instrumented run; zero for
	// trace uploads (no baseline to compare against).
	Overhead float64 `json:"overhead,omitempty"`
}

// Store is a bounded, concurrency-safe LRU artifact cache, with an
// optional disk tier (see AttachDisk) that makes artifacts survive
// restarts.
type Store struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*list.Element
	order   *list.List // front = most recently used; values are *Artifact
	disk    string     // disk-tier directory; "" = memory only
}

// New returns a store retaining at most max artifacts; max <= 0 selects a
// default of 128.
func New(max int) *Store {
	if max <= 0 {
		max = 128
	}
	return &Store{
		max:     max,
		entries: make(map[Key]*list.Element),
		order:   list.New(),
	}
}

// Get returns the artifact under key and marks it recently used. On a
// memory miss it consults the disk tier and promotes a hit back into the
// LRU.
func (s *Store) Get(key Key) (*Artifact, bool) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		a := el.Value.(*Artifact)
		s.mu.Unlock()
		return a, true
	}
	s.mu.Unlock()
	a, ok := s.readDisk(key)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	s.putLocked(a)
	s.mu.Unlock()
	return a, true
}

// Put stores the artifact under its own Key, evicting the least recently
// used memory entry when the store is full, and mirrors it to the disk
// tier when one is attached. Storing an existing key refreshes its recency
// and replaces the value. The disk write error, if any, is returned so the
// caller can log it; the memory tier has already accepted the artifact.
func (s *Store) Put(a *Artifact) error {
	s.mu.Lock()
	s.putLocked(a)
	s.mu.Unlock()
	return s.writeDisk(a)
}

// putLocked inserts into the memory LRU. Caller holds s.mu.
func (s *Store) putLocked(a *Artifact) {
	if el, ok := s.entries[a.Key]; ok {
		el.Value = a
		s.order.MoveToFront(el)
		return
	}
	s.entries[a.Key] = s.order.PushFront(a)
	for s.order.Len() > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*Artifact).Key)
	}
}

// Len reports the number of cached artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
