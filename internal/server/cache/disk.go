package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// AttachDisk adds a disk tier under dir: every Put also writes the artifact
// as <key>.json (atomically — temp file, fsync, rename), and a memory miss
// in Get falls through to disk and promotes the artifact back into the LRU.
// The disk tier is what lets a finished proxy survive a crash or restart:
// the in-memory LRU is rebuilt lazily from it. Disk entries are never
// evicted by the memory budget; artifacts are small (one C source plus
// stats) and the operator owns the state directory.
func (s *Store) AttachDisk(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: artifact dir: %w", err)
	}
	s.mu.Lock()
	s.disk = dir
	s.mu.Unlock()
	return nil
}

// diskPath maps a key to its tier directory and blob path. Keys are hex
// digests, but guard anyway: a hostile key must not escape the directory.
func (s *Store) diskPath(key Key) (dir, path string, ok bool) {
	s.mu.Lock()
	dir = s.disk
	s.mu.Unlock()
	if dir == "" || key == "" ||
		strings.ContainsAny(string(key), "/\\") || strings.Contains(string(key), "..") {
		return "", "", false
	}
	return dir, filepath.Join(dir, string(key)+".json"), true
}

// writeDisk persists the artifact; failures are returned so the caller can
// log them, but the memory tier has already accepted the artifact — a
// full disk degrades durability, not availability.
func (s *Store) writeDisk(a *Artifact) error {
	dir, path, ok := s.diskPath(a.Key)
	if !ok {
		return nil
	}
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("cache: encode artifact: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "art-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: artifact temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: artifact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: artifact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: artifact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: artifact rename: %w", err)
	}
	return nil
}

// readDisk loads and validates an artifact blob from the disk tier.
func (s *Store) readDisk(key Key) (*Artifact, bool) {
	_, path, ok := s.diskPath(key)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil || a.Key != key {
		// A torn or mismatched blob is treated as a miss; the next Put
		// overwrites it atomically.
		return nil, false
	}
	return &a, true
}
