package cache

import (
	"strings"
	"testing"
)

func TestParseKeyRoundTrip(t *testing.T) {
	key := KeyFrom([]byte("some"), []byte("sections"))
	got, err := ParseKey(string(key))
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatalf("ParseKey(%q) = %q", key, got)
	}
}

func TestParseKeyRejectsMalformedInput(t *testing.T) {
	valid := string(KeyFrom([]byte("x")))
	bad := []string{
		"",
		"short",
		valid[:63],                           // truncated
		valid + "0",                          // too long
		strings.ToUpper(valid),               // uppercase hex
		strings.Replace(valid, "a", "g", 1),  // non-hex rune (if an 'a' exists)
		"../../../../etc/passwd0123456789ab", // traversal attempt
		strings.Repeat("z", 64),              // right length, wrong alphabet
	}
	for _, s := range bad {
		if s == valid {
			continue // the Replace above may have been a no-op
		}
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed input", s)
		}
	}
}
