package cache

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDiskTierRoundTrip covers the disk tier directly: Put writes through,
// a cold store (fresh LRU, same dir) promotes from disk on a memory miss,
// and torn or foreign blobs degrade to misses.
func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New(4)
	if err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	art := &Artifact{Key: KeyFrom([]byte("disk-tier")), App: "CG", Ranks: 4, CSource: "/* c */"}
	if err := s.Put(art); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, string(art.Key)+".json")); err != nil {
		t.Fatalf("artifact blob not on disk: %v", err)
	}

	// A fresh store over the same directory: memory miss, disk hit.
	cold := New(4)
	if err := cold.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	got, ok := cold.Get(art.Key)
	if !ok || got.CSource != art.CSource {
		t.Fatalf("cold Get = %+v, %v; want the disk artifact", got, ok)
	}
	// Promoted: a second Get is a pure memory hit even if the blob vanishes.
	os.Remove(filepath.Join(dir, string(art.Key)+".json"))
	if _, ok := cold.Get(art.Key); !ok {
		t.Fatal("promoted artifact lost after disk blob removal")
	}

	// A torn blob is a miss, not an error.
	torn := KeyFrom([]byte("torn"))
	if err := os.WriteFile(filepath.Join(dir, string(torn)+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.Get(torn); ok {
		t.Fatal("torn disk blob served as an artifact")
	}
	// A blob whose embedded key disagrees with its filename is a miss too.
	foreign := KeyFrom([]byte("foreign"))
	if err := os.WriteFile(filepath.Join(dir, string(foreign)+".json"),
		[]byte(`{"key":"`+string(art.Key)+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.Get(foreign); ok {
		t.Fatal("key-mismatched disk blob served as an artifact")
	}
}

// TestDiskPathRejectsHostileKeys pins the traversal guard.
func TestDiskPathRejectsHostileKeys(t *testing.T) {
	s := New(4)
	if err := s.AttachDisk(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{"", "../escape", "a/b", `a\b`} {
		if _, _, ok := s.diskPath(k); ok {
			t.Errorf("diskPath accepted hostile key %q", k)
		}
	}
	// Without a disk tier every key is rejected.
	bare := New(4)
	if _, _, ok := bare.diskPath(KeyFrom([]byte("x"))); ok {
		t.Error("diskPath produced a path with no disk tier attached")
	}
}
