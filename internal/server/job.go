package server

import (
	"context"
	"sync"
	"time"

	"siesta/internal/obs"
	"siesta/internal/server/cache"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: queued → running → done | failed | canceled. A queued job
// may jump straight to canceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// job is one synthesis request flowing through the queue. The immutable
// fields are set at admission; everything below mu is the mutable
// lifecycle record shared between the HTTP handlers and the worker.
type job struct {
	id          string
	app         string // app name, or "trace" for uploads
	ranks       int
	parallelism int // capped synthesis parallelism (never part of the key)
	key         cache.Key
	timeout     time.Duration
	wantTrace   bool // request asked for a runtime trace ("trace": true)
	work        func(ctx context.Context, tracer *obs.Tracer) (*cache.Artifact, error)

	mu              sync.Mutex
	status          Status
	phase           string
	errMsg          string
	cached          bool
	created         time.Time
	started         time.Time
	finished        time.Time
	cancelRequested bool
	cancel          context.CancelFunc
	// traceJSON is the Chrome trace_event document recorded for a
	// wantTrace job, set when the job settles and served by
	// GET /v1/jobs/{id}/trace.
	traceJSON []byte
}

// JobView is the JSON shape of a job record.
type JobView struct {
	ID          string     `json:"id"`
	App         string     `json:"app"`
	Ranks       int        `json:"ranks"`
	Parallelism int        `json:"parallelism,omitempty"`
	Status      Status     `json:"status"`
	Phase       string     `json:"phase,omitempty"`
	Cached      bool       `json:"cached"`
	Error       string     `json:"error,omitempty"`
	ArtifactKey string     `json:"artifact_key,omitempty"`
	TraceURL    string     `json:"trace_url,omitempty"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	DurationMS  int64      `json:"duration_ms,omitempty"`
}

// view snapshots the job under its lock.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, App: j.app, Ranks: j.ranks, Parallelism: j.parallelism,
		Status: j.status, Phase: j.phase, Cached: j.cached, Error: j.errMsg,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.status == StatusDone {
		v.ArtifactKey = string(j.key)
	}
	if len(j.traceJSON) > 0 {
		v.TraceURL = "/v1/jobs/" + j.id + "/trace"
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		v.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	return v
}

// setPhase records the pipeline phase the job is in (called from the
// worker's phase hook).
func (j *job) setPhase(p string) {
	j.mu.Lock()
	j.phase = p
	j.mu.Unlock()
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled
}
