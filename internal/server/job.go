package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"siesta/internal/core"
	"siesta/internal/obs"
	"siesta/internal/server/cache"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: queued → running → done | failed | canceled. A queued job
// may jump straight to canceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// job is one synthesis request flowing through the queue. The immutable
// fields are set at admission; everything below mu is the mutable
// lifecycle record shared between the HTTP handlers and the worker.
type job struct {
	id          string
	app         string // app name, or "trace" for uploads
	ranks       int
	parallelism int // capped synthesis parallelism (never part of the key)
	key         cache.Key
	timeout     time.Duration
	wantTrace   bool            // request asked for a runtime trace ("trace": true)
	wantAnalyze bool            // request asked for a static analysis ("analyze": true)
	reqJSON     json.RawMessage // canonical request, journaled at admission
	maxRetries  int             // in-process retry budget for transient failures
	worker      string          // fleet node identity (Config.WorkerID); "" standalone
	work        func(ctx context.Context, tracer *obs.Tracer, ck core.Checkpointer, resume *core.Checkpoint) (*cache.Artifact, []byte, error)

	// recovered marks a job re-admitted from the journal (set before
	// admission, immutable after).
	recovered bool

	mu     sync.Mutex
	status Status
	// attempts counts execution starts across all process incarnations
	// (seeded from the journal for recovered jobs).
	attempts        int
	phase           string
	errMsg          string
	cached          bool
	created         time.Time
	started         time.Time
	finished        time.Time
	cancelRequested bool
	cancelByUser    bool // cancellation came from DELETE, not drain/timeout
	cancel          context.CancelFunc
	// resume is the most recent checkpoint: loaded from the state
	// directory at recovery, refreshed by every successful checkpoint
	// save, consumed by retries and restarts.
	resume *core.Checkpoint
	// traceJSON is the Chrome trace_event document recorded for a
	// wantTrace job, set when the job settles and served by
	// GET /v1/jobs/{id}/trace.
	traceJSON []byte
	// analysisJSON is the statics.Report recorded for a wantAnalyze job,
	// set when the job settles and served by GET /v1/jobs/{id}/analysis.
	analysisJSON []byte
}

// JobView is the JSON shape of a job record.
type JobView struct {
	ID          string `json:"id"`
	App         string `json:"app"`
	Ranks       int    `json:"ranks"`
	Parallelism int    `json:"parallelism,omitempty"`
	Status      Status `json:"status"`
	Phase       string `json:"phase,omitempty"`
	Cached      bool   `json:"cached"`
	Recovered   bool   `json:"recovered,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	Error       string `json:"error,omitempty"`
	// Worker names the fleet node that ran the job; empty standalone.
	Worker string `json:"worker,omitempty"`
	// CacheKey is the job's content-addressed artifact key, exposed from
	// admission on so clients and peers can address the artifact directly
	// (ArtifactKey repeats it once the job is done, kept for
	// compatibility).
	CacheKey    string     `json:"cache_key,omitempty"`
	ArtifactKey string     `json:"artifact_key,omitempty"`
	TraceURL    string     `json:"trace_url,omitempty"`
	AnalysisURL string     `json:"analysis_url,omitempty"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	DurationMS  int64      `json:"duration_ms,omitempty"`
}

// view snapshots the job under its lock.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, App: j.app, Ranks: j.ranks, Parallelism: j.parallelism,
		Status: j.status, Phase: j.phase, Cached: j.cached, Error: j.errMsg,
		Recovered: j.recovered, Attempts: j.attempts,
		Worker: j.worker, CacheKey: string(j.key),
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.status == StatusDone {
		v.ArtifactKey = string(j.key)
	}
	if len(j.traceJSON) > 0 {
		v.TraceURL = "/v1/jobs/" + j.id + "/trace"
	}
	if len(j.analysisJSON) > 0 {
		v.AnalysisURL = "/v1/jobs/" + j.id + "/analysis"
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		v.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	return v
}

// setPhase records the pipeline phase the job is in (called from the
// worker's phase hook).
func (j *job) setPhase(p string) {
	j.mu.Lock()
	j.phase = p
	j.mu.Unlock()
}

// setResume publishes the latest checkpoint (called from the checkpoint
// save path); latestResume reads it for a retry or restart.
func (j *job) setResume(cp *core.Checkpoint) {
	j.mu.Lock()
	j.resume = cp
	j.mu.Unlock()
}

func (j *job) latestResume() *core.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resume
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled
}
