package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/server/cache"
)

// newTestServer builds a server + HTTP frontend and registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

// waitJob polls a job until it reaches a terminal state.
func waitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v JobView
		if code := getJSON(t, base+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// syncBuffer lets the test read the log stream while workers are writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSynthesizeEndToEndAndCacheHit(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{Workers: 2, LogWriter: &logBuf})

	req := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 3, Seed: 7}
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached || sr.Job.Status != StatusQueued {
		t.Errorf("first request should be queued and uncached: %+v", sr)
	}

	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusDone {
		t.Fatalf("job finished %s (%s)", v.Status, v.Error)
	}
	var art cache.Artifact
	if code := getJSON(t, ts.URL+sr.ArtifactURL, &art); code != http.StatusOK {
		t.Fatalf("GET artifact: %d", code)
	}
	if !strings.Contains(art.CSource, "MPI_Init") {
		t.Error("artifact C source should be an MPI program")
	}
	if art.CheckSummary == "" || art.Terminals == 0 {
		t.Errorf("artifact missing summary/stats: %+v", art.CheckSummary)
	}

	// Identical request: answered from the cache, already done.
	resp2, body2 := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d, want 200: %s", resp2.StatusCode, body2)
	}
	var sr2 SynthesizeResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached || sr2.Job.Status != StatusDone {
		t.Errorf("second request should be a cache hit: %+v", sr2)
	}
	var art2 cache.Artifact
	if code := getJSON(t, ts.URL+sr2.ArtifactURL, &art2); code != http.StatusOK {
		t.Fatalf("GET cached artifact: %d", code)
	}
	if art2.CSource != art.CSource {
		t.Error("cached artifact should be byte-identical")
	}

	// A different seed is a different synthesis → miss.
	req3 := req
	req3.Seed = 8
	resp3, _ := postJSON(t, ts.URL+"/v1/synthesize", req3)
	if resp3.StatusCode != http.StatusAccepted {
		t.Errorf("different options should miss the cache: %d", resp3.StatusCode)
	}

	// Metrics reflect all of it.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mtext, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"siesta_cache_hits_total 1",
		"siesta_cache_misses_total 2",
		"siesta_jobs_accepted_total 2",
		`siesta_jobs_completed_total{status="done"}`,
		"siesta_job_duration_seconds_count",
		`siesta_phase_seconds_bucket{phase="merge",`,
	} {
		if !strings.Contains(string(mtext), want) {
			t.Errorf("metrics missing %q:\n%s", want, mtext)
		}
	}

	// Structured logs carry the phase stream.
	logs := logBuf.String()
	for _, want := range []string{`"event":"job_queued"`, `"event":"phase"`, `"phase":"trace"`,
		`"phase":"codegen"`, `"event":"job_end"`, `"event":"cache_hit"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("log stream missing %q:\n%s", want, logs)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		req  SynthesizeRequest
		want int
	}{
		{SynthesizeRequest{}, http.StatusBadRequest},                                         // no input
		{SynthesizeRequest{App: "CG", TraceBase64: "AAAA", Ranks: 8}, http.StatusBadRequest}, // both inputs
		{SynthesizeRequest{App: "NoSuchApp", Ranks: 8}, http.StatusNotFound},
		{SynthesizeRequest{App: "CG", Ranks: 0}, http.StatusBadRequest},
		{SynthesizeRequest{App: "CG", Ranks: 7}, http.StatusBadRequest}, // CG needs a power of two
		{SynthesizeRequest{App: "CG", Ranks: 8, Platform: "Z"}, http.StatusBadRequest},
		{SynthesizeRequest{TraceBase64: "!!!"}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/synthesize", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("case %d: status %d, want %d: %s", i, resp.StatusCode, c.want, body)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d", code)
	}
}

// blockerJob builds a white-box job whose work blocks until its context is
// canceled or release is closed.
func blockerJob(release chan struct{}) *job {
	return &job{
		app: "blocker", ranks: 1, timeout: time.Minute,
		key: cache.KeyFrom([]byte(fmt.Sprintf("blocker-%p", release))),
		work: func(ctx context.Context, tracer *obs.Tracer, _ core.Checkpointer, _ *core.Checkpoint) (*cache.Artifact, []byte, error) {
			sp := tracer.Phase("baseline")
			defer sp.End()
			select {
			case <-release:
				return &cache.Artifact{App: "blocker"}, nil, nil
			case <-ctx.Done():
				return nil, nil, &mpi.CancelError{Cause: context.Cause(ctx)}
			}
		},
	}
}

func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)

	// Occupy the single worker, then fill the single queue slot.
	running := blockerJob(release)
	if ok, _ := s.admit(running); !ok {
		t.Fatal("admit blocker")
	}
	waitStatus(t, running, StatusRunning)
	queued := blockerJob(release)
	if ok, _ := s.admit(queued); !ok {
		t.Fatal("admit queued")
	}

	// The next HTTP request must bounce with 429 + Retry-After.
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{App: "CG", Ranks: 8})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 should carry Retry-After")
	}
	if !strings.Contains(metricsText(t, ts), "siesta_jobs_rejected_total 1") {
		t.Error("rejection not counted")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	defer close(release)

	running := blockerJob(release)
	s.admit(running)
	waitStatus(t, running, StatusRunning)
	queued := blockerJob(release)
	s.admit(queued)

	// Cancel the queued job: settles immediately without running.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued: %d", resp.StatusCode)
	}
	if v := queued.view(); v.Status != StatusCanceled {
		t.Errorf("queued job after cancel: %s", v.Status)
	}

	// Cancel the running job: its context fires and the worker settles it
	// as canceled with a typed error.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.id, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	v := waitJob(t, ts.URL, running.id)
	if v.Status != StatusCanceled {
		t.Errorf("running job after cancel: %s (%s)", v.Status, v.Error)
	}
	if !strings.Contains(v.Error, "canceled") {
		t.Errorf("cancellation error should be typed: %q", v.Error)
	}

	// Canceling a settled job conflicts.
	req3, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.id, nil)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Errorf("DELETE terminal job: %d, want 409", resp3.StatusCode)
	}
}

// mpiGoroutines counts live goroutines currently executing simulated-rank
// code; after a job settles there must be none.
func mpiGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "siesta/internal/mpi.")
}

func TestJobDeadlineReturnsTypedCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// A long synthesis with a 25ms budget: the simulated ranks must be
	// torn down promptly and the job settle as canceled.
	req := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 5000, TimeoutMS: 25}
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	json.Unmarshal(body, &sr)
	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusCanceled {
		t.Fatalf("deadline job: %s (%s), want canceled", v.Status, v.Error)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Errorf("error should name the deadline cause: %q", v.Error)
	}
	if code := getJSON(t, ts.URL+sr.ArtifactURL, nil); code != http.StatusConflict {
		t.Errorf("artifact of canceled job: %d, want 409", code)
	}

	// The torn-down world's rank goroutines must unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := mpiGoroutines()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("%d simulated-rank goroutines still alive after deadline-canceled job", n)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTraceUploadSynthesis(t *testing.T) {
	// Produce a real trace out-of-band, as `siesta -trace` would.
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(fn, core.Options{Ranks: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	encoded := base64.StdEncoding.EncodeToString(res.Trace.Encode())

	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{TraceBase64: encoded})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST trace = %d: %s", resp.StatusCode, body)
	}
	var sr SynthesizeResponse
	json.Unmarshal(body, &sr)
	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusDone {
		t.Fatalf("trace job: %s (%s)", v.Status, v.Error)
	}
	var art cache.Artifact
	getJSON(t, ts.URL+sr.ArtifactURL, &art)
	if art.App != "trace" || art.Ranks != 8 || !strings.Contains(art.CSource, "MPI_Init") {
		t.Errorf("trace artifact wrong: app=%s ranks=%d", art.App, art.Ranks)
	}

	// Same bytes again → cache hit.
	resp2, _ := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{TraceBase64: encoded})
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("identical trace upload should hit the cache: %d", resp2.StatusCode)
	}
}

func TestDrainFinishesQueuedJobs(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	jobs := []*job{blockerJob(release), blockerJob(release), blockerJob(release)}
	for _, jb := range jobs {
		if ok, _ := s.admit(jb); !ok {
			t.Fatal("admit")
		}
	}
	close(release) // jobs finish as the workers reach them

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, jb := range jobs {
		if v := jb.view(); v.Status != StatusDone {
			t.Errorf("job %d after drain: %s", i, v.Status)
		}
	}

	// Admissions after drain are refused politely.
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{App: "CG", Ranks: 8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while drained: %d: %s", resp.StatusCode, body)
	}
	var hz struct {
		Draining bool `json:"draining"`
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if !hz.Draining {
		t.Error("healthz should report draining")
	}
}

// TestConcurrentShutdownWaitsForDrain pins the repeat-caller semantics: a
// Shutdown call that finds draining already set must still block until the
// workers have exited, not return early.
func TestConcurrentShutdownWaitsForDrain(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	jb := blockerJob(release)
	if ok, _ := s.admit(jb); !ok {
		t.Fatal("admit")
	}
	waitStatus(t, jb, StatusRunning)

	const callers = 3
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			errs <- s.Shutdown(ctx)
		}()
	}
	// With the worker still blocked, no caller may return yet.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-errs:
		t.Fatalf("Shutdown returned before drain (err=%v)", err)
	default:
	}

	close(release)
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Errorf("shutdown caller %d: %v", i, err)
		}
	}
	if v := jb.view(); v.Status != StatusDone {
		t.Errorf("job after drain: %s", v.Status)
	}
}

func TestListJobsAndApps(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	s.admit(blockerJob(release))

	var jobs []JobView
	if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != http.StatusOK || len(jobs) != 1 {
		t.Errorf("list jobs: code %d, %d jobs", code, len(jobs))
	}
	var appList []struct{ Name string }
	if code := getJSON(t, ts.URL+"/v1/apps", &appList); code != http.StatusOK || len(appList) == 0 {
		t.Errorf("list apps: code %d, %d apps", code, len(appList))
	}
}

// waitStatus spins until the job reaches the wanted status.
func waitStatus(t *testing.T, jb *job, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if jb.view().Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %s)", jb.id, want, jb.view().Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}
