package server

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
	"siesta/internal/server/cache"
	"siesta/internal/trace"
)

// maxRequestBody bounds POST bodies (uploaded traces dominate): 16 MiB.
const maxRequestBody = 16 << 20

// SynthesizeRequest is the POST /v1/synthesize body. Exactly one of App or
// TraceBase64 selects the input; the remaining fields tune the synthesis.
type SynthesizeRequest struct {
	// App names a built-in application (see GET /v1/apps).
	App   string `json:"app,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
	Iters int    `json:"iters,omitempty"`

	// TraceBase64 is a standard-base64 encoded Siesta trace (the bytes
	// `siesta -trace` writes); merge, verification, and code generation
	// run on it directly, with no simulated execution.
	TraceBase64 string `json:"trace_base64,omitempty"`

	Platform string  `json:"platform,omitempty"` // generation platform name; default A
	Impl     string  `json:"impl,omitempty"`     // MPI implementation name; default openmpi
	Scale    float64 `json:"scale,omitempty"`    // shrink factor; 0/1 = unscaled
	Seed     uint64  `json:"seed,omitempty"`

	// TimeoutMS overrides the server's per-job wall-clock budget; values
	// above the server limit are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Parallelism requests a synthesis worker count for this job, clamped
	// to the server's MaxParallelism (which is also the default when
	// omitted). It never changes the synthesized output — parallel and
	// serial runs are byte-identical — so it does not enter the artifact
	// cache key: a proxy synthesized at any parallelism answers all of
	// them.
	Parallelism int `json:"parallelism,omitempty"`

	// Trace requests a Chrome trace_event recording of the job: pipeline
	// phase spans plus per-rank runtime timelines, served at
	// GET /v1/jobs/{id}/trace once the job settles. Traced jobs always
	// synthesize — there is no run to record on a cache hit — but their
	// artifact still lands in the cache for later requests.
	Trace bool `json:"trace,omitempty"`

	// Analyze requests a static communication-cost analysis of the job's
	// merged program (see internal/statics): the full statics.Report —
	// volume matrix, per-rank totals, collective stats, cluster costs and
	// the critical-path lower bound — served at GET /v1/jobs/{id}/analysis
	// once the job settles. Like Trace, analyzed jobs always synthesize (a
	// cache hit carries no program to analyze), but their artifact still
	// lands in the cache for later requests.
	Analyze bool `json:"analyze,omitempty"`

	// MaxRetries caps in-process retries of transient failures (checkpoint
	// or journal I/O errors; the synthesis itself was healthy). Values
	// above the server limit are clamped to it; omitted selects the server
	// limit. 0 disables retries for this job.
	MaxRetries *int `json:"max_retries,omitempty"`
}

// SynthesizeResponse answers POST /v1/synthesize.
type SynthesizeResponse struct {
	Job    JobView `json:"job"`
	Cached bool    `json:"cached"`
	// ArtifactURL is where the generated proxy can be fetched once the
	// job is done.
	ArtifactURL string `json:"artifact_url"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleGetArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleGetTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/analysis", s.handleGetAnalysis)
	mux.HandleFunc("GET /v1/apps", s.handleListApps)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Standard Go profiling endpoints: CPU/heap/goroutine profiles of the
	// service itself, the other half of the observability story.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// prepare validates a request and turns it into a ready-to-queue job with
// its cache key. The returned status is the HTTP code for a validation
// failure.
func (s *Server) prepare(req *SynthesizeRequest) (*job, int, error) {
	if (req.App == "") == (req.TraceBase64 == "") {
		return nil, http.StatusBadRequest, errors.New("exactly one of app or trace_base64 is required")
	}
	opts := core.Options{Scale: req.Scale, Seed: req.Seed}
	if req.Platform != "" {
		p, err := platform.ByName(req.Platform)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		opts.Platform = p
	}
	if req.Impl != "" {
		im, err := netmodel.ByName(req.Impl)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		opts.Impl = im
	}
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	par := req.Parallelism
	if par <= 0 || par > s.cfg.MaxParallelism {
		par = s.cfg.MaxParallelism
	}
	// Set both knobs: core.Synthesize propagates Parallelism into the merge
	// options itself, but the trace-upload path calls merge.Build directly.
	opts.Parallelism = par
	opts.Merge.Parallelism = par

	retries := s.cfg.MaxRetries
	if req.MaxRetries != nil {
		switch r := *req.MaxRetries; {
		case r < 0:
			retries = 0
		case r < retries:
			retries = r
		}
	}
	// The verbatim request is what the journal replays through this same
	// prepare path on recovery — marshal it once, canonically.
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("encode request: %w", err)
	}
	jb := &job{timeout: timeout, parallelism: par, wantTrace: req.Trace,
		wantAnalyze: req.Analyze, maxRetries: retries, reqJSON: reqJSON}
	if req.App != "" {
		spec, err := apps.ByName(req.App)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		if req.Ranks <= 0 {
			return nil, http.StatusBadRequest, errors.New("ranks must be positive")
		}
		opts.Ranks = req.Ranks
		work, err := s.appWork(spec, apps.Params{Ranks: req.Ranks, Iters: req.Iters}, opts, req.Analyze)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		jb.app, jb.ranks, jb.work = spec.Name, req.Ranks, work
		var itersBuf [8]byte
		binary.BigEndian.PutUint64(itersBuf[:], uint64(req.Iters))
		jb.key = cache.KeyFrom(
			[]byte("app:"+spec.Name), itersBuf[:],
			[]byte(core.OptionsFingerprint(opts)),
		)
		return jb, 0, nil
	}

	raw, err := base64.StdEncoding.DecodeString(req.TraceBase64)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("trace_base64: %w", err)
	}
	tr, err := trace.Decode(raw)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("trace_base64: %w", err)
	}
	opts.Ranks = len(tr.Ranks)
	jb.app, jb.ranks, jb.work = "trace", len(tr.Ranks), s.traceWork(tr, opts, req.Analyze)
	jb.key = cache.KeyFrom(
		[]byte("trace:"), raw,
		[]byte(core.OptionsFingerprint(opts)),
	)
	return jb, 0, nil
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var req SynthesizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	jb, status, err := s.prepare(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}

	// Identical finished work is answered from the artifact cache without
	// touching the queue — unless the request wants a trace or an
	// analysis, which only a fresh run can record.
	if _, ok := s.store.Get(jb.key); ok && !jb.wantTrace && !jb.wantAnalyze {
		s.mHits.Inc()
		s.registerCached(jb)
		s.logEvent("cache_hit", map[string]any{"job": jb.id, "app": jb.app, "key": string(jb.key)})
		writeJSON(w, http.StatusOK, SynthesizeResponse{
			Job: jb.view(), Cached: true,
			ArtifactURL: "/v1/jobs/" + jb.id + "/artifact",
		})
		return
	}
	s.mMisses.Inc()

	ok, draining := s.admit(jb)
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue is full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.logEvent("job_queued", map[string]any{"job": jb.id, "app": jb.app, "ranks": jb.ranks, "key": string(jb.key)})
	writeJSON(w, http.StatusAccepted, SynthesizeResponse{
		Job: jb.view(), Cached: false,
		ArtifactURL: "/v1/jobs/" + jb.id + "/artifact",
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobOrder))
	jobs := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, jb := range jobs {
		views = append(views, jb.view())
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.view())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.requestCancel(jb, true) {
		writeError(w, http.StatusConflict, "job %s already %s", jb.id, jb.view().Status)
		return
	}
	s.logEvent("job_cancel", map[string]any{"job": jb.id})
	writeJSON(w, http.StatusOK, jb.view())
}

func (s *Server) handleGetArtifact(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	v := jb.view()
	if v.Status != StatusDone {
		writeError(w, http.StatusConflict, "job %s is %s, artifact not available", jb.id, v.Status)
		return
	}
	art, ok := s.store.Get(jb.key)
	if !ok {
		// Evicted since completion: the job record outlived the artifact.
		writeError(w, http.StatusGone, "artifact for job %s was evicted; re-submit the request", jb.id)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	jb.mu.Lock()
	data := jb.traceJSON
	status := jb.status
	wantTrace := jb.wantTrace
	jb.mu.Unlock()
	switch {
	case len(data) > 0:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case !wantTrace:
		writeError(w, http.StatusNotFound,
			"job %s was not traced; re-submit with \"trace\": true", jb.id)
	case status == StatusQueued || status == StatusRunning:
		writeError(w, http.StatusConflict, "job %s is %s, trace not available yet", jb.id, status)
	default:
		writeError(w, http.StatusNotFound, "no trace recorded for job %s", jb.id)
	}
}

func (s *Server) handleGetAnalysis(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	jb.mu.Lock()
	data := jb.analysisJSON
	status := jb.status
	wantAnalyze := jb.wantAnalyze
	jb.mu.Unlock()
	switch {
	case len(data) > 0:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case !wantAnalyze:
		writeError(w, http.StatusNotFound,
			"job %s was not analyzed; re-submit with \"analyze\": true", jb.id)
	case status == StatusQueued || status == StatusRunning:
		writeError(w, http.StatusConflict, "job %s is %s, analysis not available yet", jb.id, status)
	default:
		writeError(w, http.StatusNotFound, "no analysis recorded for job %s", jb.id)
	}
}

func (s *Server) handleListApps(w http.ResponseWriter, r *http.Request) {
	type appView struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []appView
	for _, spec := range apps.All() {
		out = append(out, appView{Name: spec.Name, Description: spec.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": draining})
}
