package server

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
	"siesta/internal/server/cache"
	"siesta/internal/trace"
)

// maxRequestBody bounds POST bodies (uploaded traces dominate): 16 MiB.
const maxRequestBody = 16 << 20

// SynthesizeRequest is the POST /v1/synthesize body. Exactly one of App or
// TraceBase64 selects the input; the remaining fields tune the synthesis.
type SynthesizeRequest struct {
	// App names a built-in application (see GET /v1/apps).
	App   string `json:"app,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
	Iters int    `json:"iters,omitempty"`

	// TraceBase64 is a standard-base64 encoded Siesta trace (the bytes
	// `siesta -trace` writes); merge, verification, and code generation
	// run on it directly, with no simulated execution.
	TraceBase64 string `json:"trace_base64,omitempty"`

	Platform string  `json:"platform,omitempty"` // generation platform name; default A
	Impl     string  `json:"impl,omitempty"`     // MPI implementation name; default openmpi
	Scale    float64 `json:"scale,omitempty"`    // shrink factor; 0/1 = unscaled
	Seed     uint64  `json:"seed,omitempty"`

	// TimeoutMS overrides the server's per-job wall-clock budget; values
	// above the server limit are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Parallelism requests a synthesis worker count for this job, clamped
	// to the server's MaxParallelism (which is also the default when
	// omitted). It never changes the synthesized output — parallel and
	// serial runs are byte-identical — so it does not enter the artifact
	// cache key: a proxy synthesized at any parallelism answers all of
	// them.
	Parallelism int `json:"parallelism,omitempty"`

	// Trace requests a Chrome trace_event recording of the job: pipeline
	// phase spans plus per-rank runtime timelines, served at
	// GET /v1/jobs/{id}/trace once the job settles. Traced jobs always
	// synthesize — there is no run to record on a cache hit — but their
	// artifact still lands in the cache for later requests.
	Trace bool `json:"trace,omitempty"`

	// Analyze requests a static communication-cost analysis of the job's
	// merged program (see internal/statics): the full statics.Report —
	// volume matrix, per-rank totals, collective stats, cluster costs and
	// the critical-path lower bound — served at GET /v1/jobs/{id}/analysis
	// once the job settles. Like Trace, analyzed jobs always synthesize (a
	// cache hit carries no program to analyze), but their artifact still
	// lands in the cache for later requests.
	Analyze bool `json:"analyze,omitempty"`

	// MaxRetries caps in-process retries of transient failures (checkpoint
	// or journal I/O errors; the synthesis itself was healthy). Values
	// above the server limit are clamped to it; omitted selects the server
	// limit. 0 disables retries for this job.
	MaxRetries *int `json:"max_retries,omitempty"`

	// ResumeBase64 optionally seeds the job with a phase-boundary
	// checkpoint (standard base64 of core.Checkpoint.Encode bytes)
	// exported from another node — the fleet gateway's failover handoff:
	// when a worker dies mid-job, the gateway re-submits the original
	// request to a new owner with the replicated checkpoint attached, and
	// the new worker resumes from the last completed boundary instead of
	// phase zero. A checkpoint whose options fingerprint does not match
	// this request is ignored (clean cold run); a blob that does not even
	// decode is a 400. It never participates in the artifact cache key.
	ResumeBase64 string `json:"resume_base64,omitempty"`
}

// SynthesizeResponse answers POST /v1/synthesize.
type SynthesizeResponse struct {
	Job    JobView `json:"job"`
	Cached bool    `json:"cached"`
	// CacheKey is the content-addressed artifact key (hex sha256 over the
	// input identity plus the canonical options fingerprint) this request
	// resolves to. It is location-independent: any fleet replica holding
	// the key serves the same bytes, and the gateway consistent-hash
	// routes on it.
	CacheKey string `json:"cache_key"`
	// ArtifactURL is where the generated proxy can be fetched once the
	// job is done.
	ArtifactURL string `json:"artifact_url"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleGetArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleGetTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/analysis", s.handleGetAnalysis)
	mux.HandleFunc("POST /v1/traces", s.handleTraceOpen)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceStatus)
	mux.HandleFunc("PUT /v1/traces/{id}/ranks/{rank}", s.handleTraceAppend)
	mux.HandleFunc("POST /v1/traces/{id}/commit", s.handleTraceCommit)
	mux.HandleFunc("DELETE /v1/traces/{id}", s.handleTraceAbort)
	mux.HandleFunc("GET /v1/apps", s.handleListApps)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// Standard Go profiling endpoints: CPU/heap/goroutine profiles of the
	// service itself, the other half of the observability story.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	if s.cfg.WorkerID == "" {
		return mux
	}
	// Fleet mode: stamp every response with the node that served it, so
	// clients (and the gateway's proxied responses) can attribute work.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Siesta-Worker", s.cfg.WorkerID)
		mux.ServeHTTP(w, r)
	})
}

// baseOptions builds the synthesis options the tuning fields of a request
// select (ranks still unset). It is the shared root of prepare and
// RequestKey, so the gateway's routing key and the worker's cache key are
// derived from identical options by construction.
func baseOptions(req *SynthesizeRequest) (core.Options, error) {
	opts := core.Options{Scale: req.Scale, Seed: req.Seed}
	if req.Platform != "" {
		p, err := platform.ByName(req.Platform)
		if err != nil {
			return core.Options{}, err
		}
		opts.Platform = p
	}
	if req.Impl != "" {
		im, err := netmodel.ByName(req.Impl)
		if err != nil {
			return core.Options{}, err
		}
		opts.Impl = im
	}
	return opts, nil
}

// appCacheKey derives the artifact key for a built-in-app request. The
// derivation (sections and their order) is load-bearing: disk artifact
// tiers and fleet routing both address by it.
func appCacheKey(name string, iters int, opts core.Options) cache.Key {
	var itersBuf [8]byte
	binary.BigEndian.PutUint64(itersBuf[:], uint64(iters))
	return cache.KeyFrom(
		[]byte("app:"+name), itersBuf[:],
		[]byte(core.OptionsFingerprint(opts)),
	)
}

// traceCacheKey derives the artifact key for an uploaded-trace request from
// the raw trace bytes plus the options fingerprint.
func traceCacheKey(raw []byte, opts core.Options) cache.Key {
	return cache.KeyFrom(
		[]byte("trace:"), raw,
		[]byte(core.OptionsFingerprint(opts)),
	)
}

// RequestKey computes the content-addressed artifact cache key a request
// resolves to — the same derivation prepare uses — without building the
// job. The fleet gateway consistent-hash routes every request on it, which
// is what makes routing agree with caching: the worker that owns a key on
// the ring is the worker whose cache fills with it.
func RequestKey(req *SynthesizeRequest) (cache.Key, error) {
	if (req.App == "") == (req.TraceBase64 == "") {
		return "", errors.New("exactly one of app or trace_base64 is required")
	}
	opts, err := baseOptions(req)
	if err != nil {
		return "", err
	}
	if req.App != "" {
		spec, err := apps.ByName(req.App)
		if err != nil {
			return "", err
		}
		if req.Ranks <= 0 {
			return "", errors.New("ranks must be positive")
		}
		opts.Ranks = req.Ranks
		return appCacheKey(spec.Name, req.Iters, opts), nil
	}
	raw, err := base64.StdEncoding.DecodeString(req.TraceBase64)
	if err != nil {
		return "", fmt.Errorf("trace_base64: %w", err)
	}
	tr, err := trace.Decode(raw)
	if err != nil {
		return "", fmt.Errorf("trace_base64: %w", err)
	}
	opts.Ranks = len(tr.Ranks)
	return traceCacheKey(raw, opts), nil
}

// prepare validates a request and turns it into a ready-to-queue job with
// its cache key. The returned status is the HTTP code for a validation
// failure.
func (s *Server) prepare(req *SynthesizeRequest) (*job, int, error) {
	if (req.App == "") == (req.TraceBase64 == "") {
		return nil, http.StatusBadRequest, errors.New("exactly one of app or trace_base64 is required")
	}
	opts, err := baseOptions(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	par := req.Parallelism
	if par <= 0 || par > s.cfg.MaxParallelism {
		par = s.cfg.MaxParallelism
	}
	// Set both knobs: core.Synthesize propagates Parallelism into the merge
	// options itself, but the trace-upload path calls merge.Build directly.
	opts.Parallelism = par
	opts.Merge.Parallelism = par

	retries := s.cfg.MaxRetries
	if req.MaxRetries != nil {
		switch r := *req.MaxRetries; {
		case r < 0:
			retries = 0
		case r < retries:
			retries = r
		}
	}
	// The verbatim request is what the journal replays through this same
	// prepare path on recovery — marshal it once, canonically.
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("encode request: %w", err)
	}
	jb := &job{timeout: timeout, parallelism: par, wantTrace: req.Trace,
		wantAnalyze: req.Analyze, maxRetries: retries, reqJSON: reqJSON,
		worker: s.cfg.WorkerID}
	// A handed-off checkpoint seeds the first attempt's resume. Garbage
	// that does not even decode is the client's error; a well-formed
	// checkpoint from a different synthesis is silently discarded by the
	// fingerprint guard downstream.
	if req.ResumeBase64 != "" {
		blob, err := base64.StdEncoding.DecodeString(req.ResumeBase64)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("resume_base64: %w", err)
		}
		cp, err := core.DecodeCheckpoint(blob)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("resume_base64: %w", err)
		}
		jb.resume = cp
	}
	if req.App != "" {
		spec, err := apps.ByName(req.App)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		if req.Ranks <= 0 {
			return nil, http.StatusBadRequest, errors.New("ranks must be positive")
		}
		opts.Ranks = req.Ranks
		work, err := s.appWork(spec, apps.Params{Ranks: req.Ranks, Iters: req.Iters}, opts, req.Analyze)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		jb.app, jb.ranks, jb.work = spec.Name, req.Ranks, work
		jb.key = appCacheKey(spec.Name, req.Iters, opts)
		return jb, 0, nil
	}

	raw, err := base64.StdEncoding.DecodeString(req.TraceBase64)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("trace_base64: %w", err)
	}
	tr, err := trace.Decode(raw)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("trace_base64: %w", err)
	}
	opts.Ranks = len(tr.Ranks)
	jb.app, jb.ranks, jb.work = "trace", len(tr.Ranks), s.traceWork(tr, opts, req.Analyze)
	jb.key = traceCacheKey(raw, opts)
	return jb, 0, nil
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var req SynthesizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	jb, status, err := s.prepare(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}

	// Identical finished work is answered from the artifact cache without
	// touching the queue — unless the request wants a trace or an
	// analysis, which only a fresh run can record. A local miss consults
	// the fleet peers before conceding: an artifact computed by any
	// replica answers here, and is adopted into the local tiers so the
	// next hit is local.
	if !jb.wantTrace && !jb.wantAnalyze {
		_, hit := s.store.Get(jb.key)
		if !hit && s.cfg.PeerFetch != nil {
			if art, ok := s.cfg.PeerFetch(jb.key); ok && art != nil && art.Key == jb.key {
				if perr := s.store.Put(art); perr != nil {
					s.logEvent("cache_disk_error", map[string]any{"key": string(jb.key), "error": perr.Error()})
				}
				s.mPeerHits.Inc()
				hit = true
			}
		}
		if hit {
			s.mHits.Inc()
			s.registerCached(jb)
			s.logEvent("cache_hit", map[string]any{"job": jb.id, "app": jb.app, "key": string(jb.key)})
			writeJSON(w, http.StatusOK, SynthesizeResponse{
				Job: jb.view(), Cached: true, CacheKey: string(jb.key),
				ArtifactURL: "/v1/jobs/" + jb.id + "/artifact",
			})
			return
		}
	}
	s.mMisses.Inc()

	ok, draining := s.admit(jb)
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue is full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.logEvent("job_queued", map[string]any{"job": jb.id, "app": jb.app, "ranks": jb.ranks, "key": string(jb.key)})
	writeJSON(w, http.StatusAccepted, SynthesizeResponse{
		Job: jb.view(), Cached: false, CacheKey: string(jb.key),
		ArtifactURL: "/v1/jobs/" + jb.id + "/artifact",
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobOrder))
	jobs := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, jb := range jobs {
		views = append(views, jb.view())
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.view())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.requestCancel(jb, true) {
		writeError(w, http.StatusConflict, "job %s already %s", jb.id, jb.view().Status)
		return
	}
	s.logEvent("job_cancel", map[string]any{"job": jb.id})
	writeJSON(w, http.StatusOK, jb.view())
}

func (s *Server) handleGetArtifact(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	v := jb.view()
	if v.Status != StatusDone {
		writeError(w, http.StatusConflict, "job %s is %s, artifact not available", jb.id, v.Status)
		return
	}
	art, ok := s.store.Get(jb.key)
	if !ok {
		// Evicted since completion: the job record outlived the artifact.
		writeError(w, http.StatusGone, "artifact for job %s was evicted; re-submit the request", jb.id)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	jb.mu.Lock()
	data := jb.traceJSON
	status := jb.status
	wantTrace := jb.wantTrace
	jb.mu.Unlock()
	switch {
	case len(data) > 0:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case !wantTrace:
		writeError(w, http.StatusNotFound,
			"job %s was not traced; re-submit with \"trace\": true", jb.id)
	case status == StatusQueued || status == StatusRunning:
		writeError(w, http.StatusConflict, "job %s is %s, trace not available yet", jb.id, status)
	default:
		writeError(w, http.StatusNotFound, "no trace recorded for job %s", jb.id)
	}
}

func (s *Server) handleGetAnalysis(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	jb.mu.Lock()
	data := jb.analysisJSON
	status := jb.status
	wantAnalyze := jb.wantAnalyze
	jb.mu.Unlock()
	switch {
	case len(data) > 0:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case !wantAnalyze:
		writeError(w, http.StatusNotFound,
			"job %s was not analyzed; re-submit with \"analyze\": true", jb.id)
	case status == StatusQueued || status == StatusRunning:
		writeError(w, http.StatusConflict, "job %s is %s, analysis not available yet", jb.id, status)
	default:
		writeError(w, http.StatusNotFound, "no analysis recorded for job %s", jb.id)
	}
}

func (s *Server) handleListApps(w http.ResponseWriter, r *http.Request) {
	type appView struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []appView
	for _, spec := range apps.All() {
		out = append(out, appView{Name: spec.Name, Description: spec.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": draining})
}

// handleReadyz is the routing gate /healthz is not: liveness stays 200 for
// as long as the process can answer at all, while readiness is 503 until
// journal recovery has completed and again once draining starts — the
// fleet gateway only routes to ready workers.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "not ready"})
}
