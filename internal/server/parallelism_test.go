package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// One server, three requests: a serial job, an identical request at full
// parallelism (which must hit the cache — parallelism is not part of the
// key), and a distinct parallel job whose requested parallelism exceeds the
// server cap. Afterwards /metrics must expose the parallelism gauge and the
// per-phase speedup gauges.
func TestParallelismMetricsAndCacheKey(t *testing.T) {
	// Workers: 1 keeps job execution ordered so the "most recently started
	// job" gauge is predictable. MaxParallelism is set explicitly: the
	// speedup gauges need at least one serial and one parallel sample even
	// on a single-core test runner.
	_, ts := newTestServer(t, Config{Workers: 1, MaxParallelism: 8})

	// Serial job.
	reqA := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2, Seed: 1, Parallelism: 1}
	respA, bodyA := postJSON(t, ts.URL+"/v1/synthesize", reqA)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("POST A = %d: %s", respA.StatusCode, bodyA)
	}
	var srA SynthesizeResponse
	if err := json.Unmarshal(bodyA, &srA); err != nil {
		t.Fatal(err)
	}
	if srA.Job.Parallelism != 1 {
		t.Errorf("job A parallelism = %d, want 1", srA.Job.Parallelism)
	}
	if v := waitJob(t, ts.URL, srA.Job.ID); v.Status != StatusDone {
		t.Fatalf("job A finished %s (%s)", v.Status, v.Error)
	}

	// Same synthesis at a different parallelism: must be a cache hit,
	// because parallelism does not change the output or the key.
	reqB := reqA
	reqB.Parallelism = 8
	respB, bodyB := postJSON(t, ts.URL+"/v1/synthesize", reqB)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("POST B = %d, want 200 (cache hit): %s", respB.StatusCode, bodyB)
	}
	var srB SynthesizeResponse
	if err := json.Unmarshal(bodyB, &srB); err != nil {
		t.Fatal(err)
	}
	if !srB.Cached {
		t.Error("request differing only in parallelism must hit the artifact cache")
	}

	// Distinct parallel job; the absurd request is clamped to the cap.
	reqC := SynthesizeRequest{App: "CG", Ranks: 8, Iters: 2, Seed: 2, Parallelism: 999}
	respC, bodyC := postJSON(t, ts.URL+"/v1/synthesize", reqC)
	if respC.StatusCode != http.StatusAccepted {
		t.Fatalf("POST C = %d: %s", respC.StatusCode, bodyC)
	}
	var srC SynthesizeResponse
	if err := json.Unmarshal(bodyC, &srC); err != nil {
		t.Fatal(err)
	}
	if srC.Job.Parallelism != 8 {
		t.Errorf("job C parallelism = %d, want clamped 8", srC.Job.Parallelism)
	}
	if v := waitJob(t, ts.URL, srC.Job.ID); v.Status != StatusDone {
		t.Fatalf("job C finished %s (%s)", v.Status, v.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)

	// The most recently started job ran at the cap.
	if !strings.Contains(text, "siesta_phase_parallelism 8") {
		t.Errorf("metrics missing siesta_phase_parallelism 8:\n%s", text)
	}
	// One serial and one parallel job have completed, so every synthesis
	// phase exposes a speedup gauge with a positive finite value. The
	// parallel job ran with overlapped baseline/trace phases, so those two
	// report on the overlap="true" series; the sequential tail phases
	// report on overlap="false".
	for phase, overlap := range map[string]string{
		"baseline": "true", "trace": "true",
		"merge": "false", "check": "false", "codegen": "false",
	} {
		re := regexp.MustCompile(`siesta_phase_speedup\{overlap="` + overlap + `",phase="` + phase + `"\} ([0-9.e+-]+)`)
		mt := re.FindStringSubmatch(text)
		if mt == nil {
			t.Errorf("metrics missing siesta_phase_speedup for phase %q overlap=%s:\n%s", phase, overlap, text)
			continue
		}
		if mt[1] == "0" {
			t.Errorf("phase %q speedup is zero", phase)
		}
	}
	// The warmup phase only exists on overlapped runs: with no serial
	// samples it must not publish a speedup gauge at all.
	if strings.Contains(text, `siesta_phase_speedup{overlap="true",phase="warmup"}`) {
		t.Error("warmup phase published a speedup gauge despite having no serial samples")
	}
}
