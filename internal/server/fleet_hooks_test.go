package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"siesta/internal/server/cache"
)

func decodeJSON(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
}

func ctxShutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestReadyzAndBuildInfo covers the liveness/readiness split and the
// build-metadata gauge.
func TestReadyzAndBuildInfo(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var rz struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rz); code != http.StatusOK || rz.Status != "ready" {
		t.Fatalf("readyz: %d %+v", code, rz)
	}
	if !s.Ready() {
		t.Fatal("Ready() false on a running server")
	}
	if text := metricsText(t, ts); !strings.Contains(text, "siesta_build_info{") {
		t.Error("metrics exposition missing siesta_build_info")
	}
}

func TestReadyzFlipsWhileDraining(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	jb := blockerJob(release)
	if ok, _ := s.admit(jb); !ok {
		t.Fatal("admit blocker")
	}
	waitStatus(t, jb, StatusRunning)

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Shutdown blocks on the running blocker; readiness must already be
		// gone so the fleet stops routing here during the drain.
		ctxShutdown(t, s)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("Ready() stayed true after drain started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	// Liveness is unaffected by the drain.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", code)
	}
	close(release)
	<-done
}

// TestWorkerIdentityStamp covers the fleet-mode response header and job
// attribution.
func TestWorkerIdentityStamp(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, WorkerID: "w-test"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Siesta-Worker"); got != "w-test" {
		t.Fatalf("X-Siesta-Worker = %q, want w-test", got)
	}

	resp2, raw := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"app": "CG", "ranks": 4, "iters": 2})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("synthesize: %d\n%s", resp2.StatusCode, raw)
	}
	var sr SynthesizeResponse
	decodeJSON(t, raw, &sr)
	if sr.Job.Worker != "w-test" {
		t.Fatalf("job view worker = %q, want w-test", sr.Job.Worker)
	}
	if sr.CacheKey == "" || sr.Job.CacheKey != sr.CacheKey {
		t.Fatalf("cache_key surfacing: response %q, job view %q", sr.CacheKey, sr.Job.CacheKey)
	}
}

// TestRequestKeyMatchesServedKey pins the property fleet routing depends
// on: the gateway-side RequestKey equals the key the serving node derives.
func TestRequestKeyMatchesServedKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := &SynthesizeRequest{App: "CG", Ranks: 4, Iters: 2, Scale: 10, Seed: 3}
	key, err := RequestKey(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("synthesize: %d\n%s", resp.StatusCode, raw)
	}
	var sr SynthesizeResponse
	decodeJSON(t, raw, &sr)
	if sr.CacheKey != string(key) {
		t.Fatalf("RequestKey %q != served cache_key %q", key, sr.CacheKey)
	}

	// Options the key must ignore: parallelism (output-invariant) and the
	// resume payload (an execution hint, not an identity).
	req2 := *req
	req2.Parallelism = 7
	req2.ResumeBase64 = "aGVsbG8="
	key2, err := RequestKey(&req2)
	if err != nil {
		t.Fatal(err)
	}
	if key2 != key {
		t.Fatalf("parallelism/resume leaked into the cache key: %q vs %q", key2, key)
	}

	if _, err := RequestKey(&SynthesizeRequest{}); err == nil {
		t.Error("RequestKey accepted a request with no input")
	}
	if _, err := RequestKey(&SynthesizeRequest{App: "NOPE", Ranks: 4}); err == nil {
		t.Error("RequestKey accepted an unknown app")
	}
}

// TestPeerFetchServesMiss covers the PeerFetch hook: a local miss answered
// by a peer becomes a cache hit, is counted, and is adopted locally.
func TestPeerFetchServesMiss(t *testing.T) {
	req := &SynthesizeRequest{App: "CG", Ranks: 4, Iters: 2}
	key, err := RequestKey(req)
	if err != nil {
		t.Fatal(err)
	}
	peerArt := &cache.Artifact{Key: key, App: "CG", Ranks: 4, CSource: "/* from peer */"}
	var calls int
	var mu sync.Mutex
	s, ts := newTestServer(t, Config{
		Workers: 1,
		PeerFetch: func(k cache.Key) (*cache.Artifact, bool) {
			mu.Lock()
			calls++
			mu.Unlock()
			if k == key {
				return peerArt, true
			}
			return nil, false
		},
	})

	resp, raw := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-served request: %d\n%s", resp.StatusCode, raw)
	}
	var sr SynthesizeResponse
	decodeJSON(t, raw, &sr)
	if !sr.Cached {
		t.Fatal("peer-served request not reported as cached")
	}
	if got := s.reg.Counter("siesta_peer_hits_total", "").Value(); got != 1 {
		t.Fatalf("siesta_peer_hits_total = %d, want 1", got)
	}
	if _, ok := s.Artifact(key); !ok {
		t.Fatal("peer artifact not adopted into the local cache")
	}

	// Second identical request: now a plain local hit, no peer call.
	mu.Lock()
	before := calls
	mu.Unlock()
	resp2, _ := postJSON(t, ts.URL+"/v1/synthesize", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("local-hit request: %d", resp2.StatusCode)
	}
	mu.Lock()
	after := calls
	mu.Unlock()
	if after != before {
		t.Fatalf("local hit still consulted the peer (%d -> %d calls)", before, after)
	}
}

// TestCheckpointSinkWithoutStateDir covers sinkCheckpointer: no state dir,
// but phase-boundary checkpoints still reach the fleet sink keyed by the
// artifact cache key.
func TestCheckpointSinkWithoutStateDir(t *testing.T) {
	var mu sync.Mutex
	sunk := map[cache.Key]int{}
	s, ts := newTestServer(t, Config{
		Workers: 1,
		CheckpointSink: func(k cache.Key, blob []byte) {
			if len(blob) == 0 {
				t.Error("sink received an empty checkpoint")
			}
			mu.Lock()
			sunk[k]++
			mu.Unlock()
		},
	})

	resp, raw := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"app": "CG", "ranks": 4, "iters": 2})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("synthesize: %d\n%s", resp.StatusCode, raw)
	}
	var sr SynthesizeResponse
	decodeJSON(t, raw, &sr)
	v := waitJob(t, ts.URL, sr.Job.ID)
	if v.Status != StatusDone {
		t.Fatalf("job settled %s: %s", v.Status, v.Error)
	}
	mu.Lock()
	n := sunk[cache.Key(sr.CacheKey)]
	mu.Unlock()
	if n == 0 {
		t.Fatalf("no checkpoints reached the sink under key %q (sunk: %v)", sr.CacheKey, sunk)
	}
	if got := s.mCkptW.Value(); got == 0 {
		t.Error("siesta_checkpoints_written_total stayed 0 with a sink configured")
	}
}

// TestResumeBase64Validation covers the failover handoff field's error
// paths: undecodable input is the client's fault, a foreign checkpoint
// degrades to a cold run.
func TestResumeBase64Validation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, _ := postJSON(t, ts.URL+"/v1/synthesize",
		map[string]any{"app": "CG", "ranks": 4, "iters": 2, "resume_base64": "!!!not-base64!!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage base64: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/synthesize",
		map[string]any{"app": "CG", "ranks": 4, "iters": 2, "resume_base64": "aGVsbG8="})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("undecodable checkpoint: %d, want 400", resp.StatusCode)
	}
}
