package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"siesta/internal/core"
	"siesta/internal/durable"
)

// maxRecoveries bounds how many process incarnations may start the same
// job. A job that keeps being in flight when the service dies is most
// likely *causing* the death (a synthesis that OOMs, a platform bug);
// after this many attempts recovery journals it failed instead of
// re-admitting it, breaking the crash loop.
const maxRecoveries = 3

// openState brings up the durability layer under cfg.StateDir: the disk
// artifact tier, the checkpoint store, and the write-ahead job journal.
// It replays the journal, compacts away settled jobs, and re-admits every
// pending job (workers are already running). Called once from New.
func (s *Server) openState() error {
	dir := s.cfg.StateDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: state dir: %w", err)
	}
	if err := s.store.AttachDisk(filepath.Join(dir, "artifacts")); err != nil {
		return err
	}
	ck, err := durable.NewCheckpointStore(filepath.Join(dir, "checkpoints"))
	if err != nil {
		return err
	}
	s.ckpts = ck
	j, recs, err := durable.Open(filepath.Join(dir, "journal.wal"))
	if err != nil {
		return err
	}
	s.journal = j
	// Startup is the compaction point: settled jobs' records are dropped,
	// pending jobs keep their enqueued/attempt/checkpoint records. Doing it
	// before recovery means the terminal records recovery appends land in
	// the compacted journal instead of being rewritten away.
	if err := j.Compact(durable.LiveRecords(recs)); err != nil {
		return err
	}
	s.recoverJobs(recs)
	return nil
}

// closeState flushes and closes the journal; called after the worker pool
// has drained.
func (s *Server) closeState() {
	if s.journal != nil {
		s.journal.Close()
	}
}

// journalRec appends one record to the journal (no-op without a state
// directory). Failures are logged and returned; callers on the job path
// decide whether the record was load-bearing.
func (s *Server) journalRec(rec *durable.Record) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(rec); err != nil {
		s.logEvent("journal_error", map[string]any{
			"job": rec.Job, "type": string(rec.Type), "error": err.Error(),
		})
		return err
	}
	return nil
}

// dropCheckpoint removes a settled job's checkpoint blob.
func (s *Server) dropCheckpoint(id string) {
	if s.ckpts != nil {
		s.ckpts.Delete(id)
	}
}

// recoverJobs folds the replayed journal and re-admits every pending job
// through the normal preparation path, restoring its original id, attempt
// count, and latest checkpoint. Jobs whose artifact already sits in the
// disk cache settle as done without re-running (the crash lost only the
// settle record, not the work); jobs over the recovery budget or with an
// unusable request settle as failed.
func (s *Server) recoverJobs(recs []durable.Record) {
	states, order := durable.Reduce(recs)
	for _, id := range order {
		st := states[id]
		if !st.Pending() || len(st.Request) == 0 {
			continue
		}
		if st.Attempts >= maxRecoveries {
			s.journalRec(&durable.Record{
				Type: durable.TypeFailed, Job: id, Attempt: st.Attempts,
				Error: fmt.Sprintf("abandoned after %d interrupted attempts", st.Attempts),
			})
			s.dropCheckpoint(id)
			s.logEvent("job_abandoned", map[string]any{"job": id, "attempts": st.Attempts})
			continue
		}
		var req SynthesizeRequest
		if err := json.Unmarshal(st.Request, &req); err != nil {
			s.journalRec(&durable.Record{Type: durable.TypeFailed, Job: id,
				Error: fmt.Sprintf("journaled request is unusable: %v", err)})
			s.dropCheckpoint(id)
			continue
		}
		jb, _, err := s.prepare(&req)
		if err != nil {
			s.journalRec(&durable.Record{Type: durable.TypeFailed, Job: id,
				Error: fmt.Sprintf("journaled request no longer prepares: %v", err)})
			s.dropCheckpoint(id)
			continue
		}
		jb.id = id
		jb.recovered = true
		jb.attempts = st.Attempts
		if art, ok := s.store.Get(jb.key); ok && art != nil {
			s.journalRec(&durable.Record{Type: durable.TypeDone, Job: id, Key: string(jb.key)})
			s.dropCheckpoint(id)
			s.registerRecoveredDone(jb, st.Enqueued)
			s.logEvent("job_recovered", map[string]any{"job": id, "app": jb.app, "outcome": "artifact already on disk"})
			continue
		}
		if st.CheckpointFile != "" {
			if blob, lerr := s.ckpts.Load(id); lerr == nil {
				if cp, derr := core.DecodeCheckpoint(blob); derr == nil {
					jb.resume = cp
				}
				// An unreadable or undecodable blob simply means a cold
				// re-run; the fingerprint check downstream guards the rest.
			}
		}
		s.admitRecovered(jb, st.Enqueued)
		s.mRecovered.Inc()
		s.logEvent("job_recovered", map[string]any{
			"job": id, "app": jb.app, "attempts": st.Attempts, "resume": st.CheckpointPhase,
		})
	}
}

// registerRecoveredDone records a job that finished before the crash (its
// artifact survived on disk) as done under its original id.
func (s *Server) registerRecoveredDone(jb *job, enqueued time.Time) {
	now := time.Now()
	jb.status = StatusDone
	jb.cached = true
	jb.created, jb.started, jb.finished = enqueued, now, now
	if jb.created.IsZero() {
		jb.created = now
	}
	s.mu.Lock()
	s.bumpNextIDLocked(jb.id)
	s.jobs[jb.id] = jb
	s.jobOrder = append(s.jobOrder, jb.id)
	s.pruneLocked()
	s.mu.Unlock()
}

// admitRecovered puts a recovered job back on the queue under its original
// id. The send may block when the backlog exceeds the queue depth; the
// worker pool is already running, so it drains.
func (s *Server) admitRecovered(jb *job, enqueued time.Time) {
	jb.status = StatusQueued
	jb.created = enqueued
	if jb.created.IsZero() {
		jb.created = time.Now()
	}
	s.mu.Lock()
	s.bumpNextIDLocked(jb.id)
	s.jobs[jb.id] = jb
	s.jobOrder = append(s.jobOrder, jb.id)
	s.pruneLocked()
	s.mAccepted.Inc()
	s.mu.Unlock()
	s.gQueued.Add(1)
	s.queue <- jb
}

// bumpNextIDLocked keeps fresh admissions from colliding with recovered
// ids. Caller holds s.mu.
func (s *Server) bumpNextIDLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// jobCheckpointer adapts the durable layer to core.Checkpointer for one
// job: the blob is written atomically, then the checkpoint record is
// journaled. Either failure surfaces as an error, which core wraps in a
// *CheckpointError — the transient class the retry loop acts on.
type jobCheckpointer struct {
	s  *Server
	jb *job
}

func (c jobCheckpointer) Save(cp *core.Checkpoint) error {
	blob := cp.Encode()
	name, err := c.s.ckpts.Save(c.jb.id, blob)
	if err != nil {
		return err
	}
	if err := c.s.journalRec(&durable.Record{
		Type: durable.TypeCheckpoint, Job: c.jb.id, Phase: cp.Phase, File: name,
	}); err != nil {
		return err
	}
	c.s.mCkptW.Inc()
	c.jb.setResume(cp)
	if sink := c.s.cfg.CheckpointSink; sink != nil {
		sink(c.jb.key, blob)
	}
	return nil
}

// sinkCheckpointer is the stateless-node variant of jobCheckpointer: no
// journal or blob store, but checkpoints still publish to the in-memory
// resume (for in-process retries) and to the fleet's replication sink (for
// cross-node failover). It never fails — there is no durability to fail.
type sinkCheckpointer struct {
	s  *Server
	jb *job
}

func (c sinkCheckpointer) Save(cp *core.Checkpoint) error {
	c.s.mCkptW.Inc()
	c.jb.setResume(cp)
	c.s.cfg.CheckpointSink(c.jb.key, cp.Encode())
	return nil
}

// transientErr classifies an attempt failure: only durability failures
// (checkpoint blob or journal I/O) are worth an in-process retry — the
// synthesis itself was healthy. Cancellation and timeouts settle (or, for
// a drain, stay pending in the journal for the next incarnation); input
// errors are deterministic and retrying them is futile.
func transientErr(err error) bool {
	var ce *core.CheckpointError
	return errors.As(err, &ce)
}

// retryDelay is the exponential backoff before retry number `attempt`:
// base·2^(attempt-1) capped at 5s, with ±half jitter so a batch of jobs
// hitting the same sick disk does not retry in lockstep.
func (s *Server) retryDelay(attempt int) time.Duration {
	base := s.retryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := 5 * time.Second
	if attempt < 10 {
		if b := base << uint(attempt-1); b < d {
			d = b
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
