package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/server/cache"
	"siesta/internal/trace"
)

// chunkStreams chunk-encodes every rank of a trace, as `siesta upload` does.
func chunkStreams(t *testing.T, tr *trace.Trace) [][]byte {
	t.Helper()
	streams := make([][]byte, len(tr.Ranks))
	for r, rt := range tr.Ranks {
		streams[r] = trace.ChunkEncodeRank(rt)
	}
	return streams
}

// contentDigest is the client-side content_sha256 derivation: sha256 over
// the per-rank stream digests in rank order.
func contentDigest(streams [][]byte) string {
	h := sha256.New()
	for _, s := range streams {
		sum := sha256.Sum256(s)
		h.Write(sum[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func doJSON(t *testing.T, method, url string, body []byte, v any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(out, v); err != nil {
			t.Fatalf("decode %s %s: %v\n%s", method, url, err, out)
		}
	}
	return resp.StatusCode, out
}

// putChunks uploads every rank stream in chunkSize pieces, round-robin
// interleaved across ranks — the adversarial arrival order the equivalence
// contract must absorb.
func putChunks(t *testing.T, base, id string, streams [][]byte, chunkSize int) {
	t.Helper()
	offs := make([]int, len(streams))
	for {
		progress := false
		for r, stream := range streams {
			if offs[r] >= len(stream) {
				continue
			}
			end := offs[r] + chunkSize
			if end > len(stream) {
				end = len(stream)
			}
			var rv RankStreamView
			code, body := doJSON(t, http.MethodPut,
				fmt.Sprintf("%s/v1/traces/%s/ranks/%d", base, id, r),
				stream[offs[r]:end], &rv)
			if code != http.StatusOK {
				t.Fatalf("PUT rank %d: %d: %s", r, code, body)
			}
			offs[r] = end
			if wantEnd := offs[r] == len(stream); rv.Ended != wantEnd {
				t.Fatalf("rank %d ended=%t at %d/%d bytes", r, rv.Ended, offs[r], len(stream))
			}
			progress = true
		}
		if !progress {
			return
		}
	}
}

// recordedTrace synthesizes an app once out-of-band and returns its trace —
// the shared input for one-shot and streamed uploads.
func recordedTrace(t *testing.T, ranks int) *trace.Trace {
	t.Helper()
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(fn, core.Options{Ranks: ranks, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// The server-level differential test: a trace streamed in 64-byte chunks
// with spilling forced must produce an artifact byte-identical (modulo the
// cache key, which encodes the input transport) to the one-shot
// trace_base64 path.
func TestStreamingIngestMatchesOneShotUpload(t *testing.T) {
	tr := recordedTrace(t, 8)
	_, ts := newTestServer(t, Config{Workers: 2})

	// One-shot control.
	encoded := base64.StdEncoding.EncodeToString(tr.Encode())
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{TraceBase64: encoded})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("one-shot POST = %d: %s", resp.StatusCode, body)
	}
	var ctrl SynthesizeResponse
	json.Unmarshal(body, &ctrl)
	if v := waitJob(t, ts.URL, ctrl.Job.ID); v.Status != StatusDone {
		t.Fatalf("one-shot job: %s (%s)", v.Status, v.Error)
	}
	var ctrlArt cache.Artifact
	getJSON(t, ts.URL+ctrl.ArtifactURL, &ctrlArt)

	// Streamed: declare the content digest up front so open already
	// returns the final cache key, force every terminal to spill.
	streams := chunkStreams(t, tr)
	digest := contentDigest(streams)
	resp, body = postJSON(t, ts.URL+"/v1/traces", TraceOpenRequest{
		NumRanks: len(streams), ContentSHA256: digest, SpillHighWater: 1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open = %d: %s", resp.StatusCode, body)
	}
	var open TraceOpenResponse
	json.Unmarshal(body, &open)
	if open.CacheKey == "" {
		t.Fatal("open with declared content_sha256 returned no cache key")
	}
	putChunks(t, ts.URL, open.ID, streams, 64)

	var st TraceStatusView
	if code := getJSON(t, ts.URL+"/v1/traces/"+open.ID, &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.Spill.Spilled == 0 || st.Spill.Spilled != st.Spill.Records {
		t.Fatalf("high-water 1 did not spill every terminal: %+v", st.Spill)
	}

	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/traces/"+open.ID+"/commit", nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("commit = %d: %s", code, body)
	}
	var cr TraceCommitResponse
	json.Unmarshal(body, &cr)
	if cr.CacheKey != open.CacheKey {
		t.Errorf("commit key %s != open key %s", cr.CacheKey, open.CacheKey)
	}
	if cr.CacheKey == ctrl.CacheKey {
		t.Error("streamed and one-shot keys collide; the transports must key separately")
	}
	if cr.Spill.Spilled == 0 {
		t.Error("commit response lost the spill stats")
	}
	if v := waitJob(t, ts.URL, cr.Job.ID); v.Status != StatusDone {
		t.Fatalf("streamed job: %s (%s)", v.Status, v.Error)
	}
	var art cache.Artifact
	getJSON(t, ts.URL+cr.ArtifactURL, &art)

	// The equivalence contract, observed end to end: identical artifacts
	// up to the transport-specific cache key.
	ctrlArt.Key, art.Key = "", ""
	if art.CSource != ctrlArt.CSource {
		t.Error("streamed C source differs from one-shot upload")
	}
	if !bytes.Equal(mustJSON(t, art), mustJSON(t, ctrlArt)) {
		t.Errorf("streamed artifact differs from one-shot: %+v vs %+v", art, ctrlArt)
	}

	// Ingest observability: bytes counted, no rank streams left open.
	metrics := metricsText(t, ts)
	if !strings.Contains(metrics, "siesta_ingest_ranks_open 0") {
		t.Errorf("ingest rank gauge did not return to zero:\n%s", metrics)
	}
	var total int
	for _, s := range streams {
		total += len(s)
	}
	if want := fmt.Sprintf("siesta_ingest_bytes_total %d", total); !strings.Contains(metrics, want) {
		t.Errorf("want %q in metrics", want)
	}
}

// A second streamed upload of the same content must short-circuit to the
// artifact cache at commit time.
func TestStreamingIngestCommitCacheHit(t *testing.T) {
	tr := recordedTrace(t, 8)
	_, ts := newTestServer(t, Config{Workers: 1})
	streams := chunkStreams(t, tr)

	run := func() (int, TraceCommitResponse) {
		resp, body := postJSON(t, ts.URL+"/v1/traces", TraceOpenRequest{NumRanks: len(streams)})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("open = %d: %s", resp.StatusCode, body)
		}
		var open TraceOpenResponse
		json.Unmarshal(body, &open)
		putChunks(t, ts.URL, open.ID, streams, 4096)
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/traces/"+open.ID+"/commit", nil, nil)
		var cr TraceCommitResponse
		json.Unmarshal(body, &cr)
		return code, cr
	}

	code, first := run()
	if code != http.StatusAccepted {
		t.Fatalf("first commit = %d", code)
	}
	if v := waitJob(t, ts.URL, first.Job.ID); v.Status != StatusDone {
		t.Fatalf("first job: %s (%s)", v.Status, v.Error)
	}
	code, second := run()
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second commit = %d cached=%t, want 200 cached", code, second.Cached)
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("same content keyed differently: %s vs %s", second.CacheKey, first.CacheKey)
	}
}

func TestStreamingIngestValidationAndAbort(t *testing.T) {
	tr := recordedTrace(t, 8)
	_, ts := newTestServer(t, Config{Workers: 1, MaxIngestSessions: 2})
	streams := chunkStreams(t, tr)

	// Open-time rejections.
	for _, tc := range []struct {
		req  TraceOpenRequest
		want int
	}{
		{TraceOpenRequest{NumRanks: 0}, http.StatusBadRequest},
		{TraceOpenRequest{NumRanks: 8, Scale: 2}, http.StatusBadRequest},
		{TraceOpenRequest{NumRanks: 8, Platform: "no-such"}, http.StatusBadRequest},
		{TraceOpenRequest{NumRanks: 8, ContentSHA256: "zz"}, http.StatusBadRequest},
	} {
		if resp, body := postJSON(t, ts.URL+"/v1/traces", tc.req); resp.StatusCode != tc.want {
			t.Errorf("open %+v = %d, want %d: %s", tc.req, resp.StatusCode, tc.want, body)
		}
	}

	// Unknown session and bad rank paths.
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/v1/traces/t-999999/ranks/0", []byte("x"), nil); code != http.StatusNotFound {
		t.Errorf("append to unknown session = %d, want 404", code)
	}
	resp, body := postJSON(t, ts.URL+"/v1/traces", TraceOpenRequest{NumRanks: len(streams)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open = %d: %s", resp.StatusCode, body)
	}
	var open TraceOpenResponse
	json.Unmarshal(body, &open)
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/v1/traces/"+open.ID+"/ranks/99", []byte("x"), nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range rank = %d, want 400", code)
	}

	// Corrupt bytes poison the rank with a 400, and commit before every
	// stream has ended is a conflict.
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/v1/traces/"+open.ID+"/ranks/0", []byte("not a chunk stream"), nil); code != http.StatusBadRequest {
		t.Errorf("corrupt chunk = %d, want 400", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/traces/"+open.ID+"/commit", nil, nil); code != http.StatusConflict {
		t.Errorf("commit with incomplete streams = %d, want 409", code)
	}

	// Abort tears the session down; every later touch is a 404.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/traces/"+open.ID, nil, nil); code != http.StatusOK {
		t.Errorf("abort = %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+open.ID, nil); code != http.StatusNotFound {
		t.Errorf("status after abort = %d, want 404", code)
	}

	// A declared digest that does not match the streamed bytes fails the
	// commit — the guard that keeps a mis-declared key from poisoning the
	// cache ring.
	resp, body = postJSON(t, ts.URL+"/v1/traces", TraceOpenRequest{
		NumRanks: len(streams), ContentSHA256: strings.Repeat("ab", 32),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open = %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &open)
	putChunks(t, ts.URL, open.ID, streams, 4096)
	if code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/traces/"+open.ID+"/commit", nil, nil); code != http.StatusBadRequest {
		t.Errorf("commit with wrong declared digest = %d, want 400: %s", code, body)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/traces/"+open.ID, nil, nil)

	// The session cap: the third concurrent open is rejected 429.
	var opened []string
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/traces", TraceOpenRequest{NumRanks: 2})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("open %d = %d: %s", i, resp.StatusCode, body)
		}
		var o TraceOpenResponse
		json.Unmarshal(body, &o)
		opened = append(opened, o.ID)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/traces", TraceOpenRequest{NumRanks: 2}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("open past session cap = %d, want 429", resp.StatusCode)
	}
	for _, id := range opened {
		doJSON(t, http.MethodDelete, ts.URL+"/v1/traces/"+id, nil, nil)
	}
}
