package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"siesta/internal/fault"
	"siesta/internal/merge"
	"siesta/internal/netmodel"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/trace"
	"siesta/internal/vtime"
)

// fingerprintVersion is folded into every fingerprint so a change to the
// canonical encoding (new fields, renamed fields) invalidates old cache
// keys instead of silently colliding with them.
const fingerprintVersion = "siesta-options-v1"

// optionsJSON is the canonical wire form of Options: platform and
// implementation are replaced by their registry names, and the runtime-only
// fields (Context, Tracer, Parallelism, SearchMemo — none of which can
// change the synthesized output) are omitted entirely. Field order is fixed
// by this declaration, which is what makes the encoding — and therefore
// OptionsFingerprint — deterministic.
type optionsJSON struct {
	Platform     string          `json:"platform,omitempty"`
	Impl         string          `json:"impl,omitempty"`
	Ranks        int             `json:"ranks"`
	NoiseSigma   float64         `json:"noise_sigma,omitempty"`
	RunVariation float64         `json:"run_variation,omitempty"`
	Seed         uint64          `json:"seed,omitempty"`
	Faults       *fault.Plan     `json:"faults,omitempty"`
	Deadline     vtime.Duration  `json:"deadline,omitempty"`
	Trace        trace.Config    `json:"trace"`
	Merge        merge.Options   `json:"merge"`
	DisableCheck bool            `json:"disable_check,omitempty"`
	Scale        float64         `json:"scale,omitempty"`
	BenchNoise   *benchNoiseJSON `json:"bench_noise,omitempty"`
}

// benchNoiseJSON carries the two parameters that fully determine a Noise
// stream; its unexported sample counter is derived state and never encoded.
type benchNoiseJSON struct {
	Sigma float64 `json:"sigma"`
	Seed  uint64  `json:"seed"`
}

func (o Options) canonical() optionsJSON {
	c := optionsJSON{
		Ranks:        o.Ranks,
		NoiseSigma:   o.NoiseSigma,
		RunVariation: o.RunVariation,
		Seed:         o.Seed,
		Faults:       o.Faults,
		Deadline:     o.Deadline,
		Trace:        o.Trace,
		Merge:        o.Merge,
		DisableCheck: o.DisableCheck,
		Scale:        o.Scale,
	}
	if o.Platform != nil {
		c.Platform = o.Platform.Name
	}
	if o.Impl != nil {
		c.Impl = o.Impl.Name
	}
	if o.BenchNoise != nil {
		c.BenchNoise = &benchNoiseJSON{Sigma: o.BenchNoise.Sigma, Seed: o.BenchNoise.Seed}
	}
	return c
}

// MarshalJSON encodes the options deterministically: fixed field order,
// platform and implementation by registry name, no func or context fields.
// The encoding round-trips through UnmarshalJSON.
func (o Options) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.canonical())
}

// UnmarshalJSON decodes the canonical form written by MarshalJSON,
// resolving platform and implementation names through their registries.
// Context and Tracer are runtime concerns and always come back nil.
func (o *Options) UnmarshalJSON(data []byte) error {
	var c optionsJSON
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("core: decode options: %w", err)
	}
	*o = Options{
		Ranks:        c.Ranks,
		NoiseSigma:   c.NoiseSigma,
		RunVariation: c.RunVariation,
		Seed:         c.Seed,
		Faults:       c.Faults,
		Deadline:     c.Deadline,
		Trace:        c.Trace,
		Merge:        c.Merge,
		DisableCheck: c.DisableCheck,
		Scale:        c.Scale,
	}
	if c.Platform != "" {
		p, err := platform.ByName(c.Platform)
		if err != nil {
			return fmt.Errorf("core: decode options: %w", err)
		}
		o.Platform = p
	}
	if c.Impl != "" {
		im, err := netmodel.ByName(c.Impl)
		if err != nil {
			return fmt.Errorf("core: decode options: %w", err)
		}
		o.Impl = im
	}
	if c.BenchNoise != nil {
		o.BenchNoise = perfmodel.NewNoise(c.BenchNoise.Sigma, c.BenchNoise.Seed)
	}
	return nil
}

// OptionsFingerprint returns a stable hex digest identifying the synthesis
// an Options value describes. Defaults are applied first, so a zero field
// and its explicit default fingerprint identically; Context and Tracer
// never participate. Two Options with equal fingerprints produce the same
// proxy (the pipeline is deterministic in its options), which is what makes
// the fingerprint usable as an artifact-cache key.
func OptionsFingerprint(o Options) string {
	data, err := json.Marshal(o.withDefaults().canonical())
	if err != nil {
		// canonical() contains only plain data types; Marshal cannot fail.
		panic(fmt.Sprintf("core: fingerprint encode: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	h.Write([]byte{'\n'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}
