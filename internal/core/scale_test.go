package core

import (
	"testing"

	"siesta/internal/apps"
)

// TestPaperScaleConfigurations runs the pipeline at the paper's lowest
// evaluated process count (64 ranks) for a representative subset, verifying
// the system handles real scale, not just the CI ladders. Skipped in -short
// mode.
func TestPaperScaleConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in short mode")
	}
	cases := []struct {
		program string
		ranks   int
	}{
		{"CG", 64},
		{"BT", 64},
		{"MG", 64},
		{"LULESH", 64},
		{"Sweep3d", 64},
	}
	for _, c := range cases {
		c := c
		t.Run(c.program, func(t *testing.T) {
			t.Parallel()
			spec, err := apps.ByName(c.program)
			if err != nil {
				t.Fatal(err)
			}
			fn, err := spec.Build(apps.Params{Ranks: c.ranks, Iters: 3, WorkScale: 0.25})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Synthesize(fn, Options{Ranks: c.ranks, Seed: 19})
			if err != nil {
				t.Fatal(err)
			}
			prox, err := res.RunProxy(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if e := ReplayError(res.BaselineRun, prox); e > 0.12 {
				t.Errorf("%s@%d: replay error %.2f%%", c.program, c.ranks, e*100)
			}
			// size_C must stay tiny even at 64 ranks (Table 3's point).
			if res.Generated.SizeC > res.Trace.RawSize()/4 {
				t.Errorf("%s@%d: size_C %d vs raw %d — compression collapsed",
					c.program, c.ranks, res.Generated.SizeC, res.Trace.RawSize())
			}
		})
	}
}
