package core_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/mpi"
	"siesta/internal/obs"
)

// synthesizeApp builds and synthesizes one built-in app with small,
// fast-running parameters.
func synthesizeApp(t *testing.T, name string, ranks int, opts core.Options) (*core.Result, error) {
	t.Helper()
	spec, err := apps.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 3})
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	opts.Ranks = ranks
	return core.Synthesize(fn, opts)
}

// TestSynthesizeParallel is the worker-pool safety regression: the server
// calls core.Synthesize from many goroutines at once, so the whole pipeline
// — runtime, recorder, sequitur, merge, check, codegen — must be free of
// shared mutable state. Run under -race (CI does) this fails on any hidden
// package-level RNG, buffer reuse, or registry mutation; it also asserts
// that concurrent synthesis is bit-deterministic by comparing against
// serial reference results.
func TestSynthesizeParallel(t *testing.T) {
	type job struct {
		app   string
		ranks int
	}
	jobs := []job{
		{"CG", 8}, {"MG", 8}, {"IS", 8}, {"Sweep3d", 8}, {"Sedov", 8},
		// The same app twice: concurrent identical runs are exactly what
		// the server's cache-miss stampede produces.
		{"CG", 8}, {"MG", 8},
	}

	// Serial reference pass.
	ref := make(map[job]string)
	for _, j := range jobs {
		res, err := synthesizeApp(t, j.app, j.ranks, core.Options{Seed: 11})
		if err != nil {
			t.Fatalf("serial %s/%d: %v", j.app, j.ranks, err)
		}
		ref[j] = res.Generated.CSource()
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	srcs := make([]string, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			res, err := synthesizeApp(t, j.app, j.ranks, core.Options{Seed: 11})
			if err != nil {
				errs[i] = err
				return
			}
			srcs[i] = res.Generated.CSource()
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		if errs[i] != nil {
			t.Errorf("parallel %s/%d: %v", j.app, j.ranks, errs[i])
			continue
		}
		if srcs[i] != ref[j] {
			t.Errorf("parallel %s/%d produced different C source than serial run", j.app, j.ranks)
		}
	}
}

// TestSynthesizeCancel covers the context satellite end to end: a canceled
// context stops the pipeline with a typed error, a deadline does the same,
// and neither leaks the rank goroutines of the world that was torn down.
func TestSynthesizeCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	// Pre-canceled context: nothing should run at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := synthesizeApp(t, "CG", 8, core.Options{Seed: 1, Context: ctx})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("pre-canceled context: want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause should be context.Canceled, got %v", err)
	}

	// Cancellation mid-run, triggered from the tracer's phase observer so
	// it lands while simulated ranks are alive.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opts := core.Options{Seed: 1, Context: ctx2, Tracer: obs.New()}
	opts.Tracer.SetObserver(func(ev obs.PhaseEvent) {
		if ev.Name == "trace" && !ev.End {
			cancel2()
		}
	})
	_, err = synthesizeApp(t, "CG", 8, opts)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("mid-run cancel: want ErrCanceled, got %v", err)
	}
	var ce *mpi.CancelError
	if !errors.As(err, &ce) {
		t.Errorf("mid-run cancel: want *mpi.CancelError in chain, got %v", err)
	}

	// An expired wall-clock deadline reports its cause.
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel3()
	<-ctx3.Done()
	_, err = synthesizeApp(t, "CG", 8, core.Options{Seed: 1, Context: ctx3})
	if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: want ErrCanceled+DeadlineExceeded, got %v", err)
	}

	// Rank goroutines of torn-down worlds must unwind; give the
	// scheduler a moment before declaring a leak.
	waitForGoroutines(t, before)
}

// TestSynthesizeCancelMidOverlap cancels while the baseline and traced
// worlds run concurrently (Parallelism > 1, overlap on): both worlds must
// tear down, Synthesize must report ErrCanceled, and no rank goroutine of
// either world may outlive the call.
func TestSynthesizeCancelMidOverlap(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := core.Options{Seed: 1, Parallelism: 4, Context: ctx, Tracer: obs.New()}
	opts.Tracer.SetObserver(func(ev obs.PhaseEvent) {
		// The baseline span opens just before both worlds launch, so the
		// cancel lands while 2×ranks simulated processes are alive.
		if ev.Name == "baseline" && !ev.End {
			cancel()
		}
	})
	_, err := synthesizeApp(t, "CG", 8, opts)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("mid-overlap cancel: want ErrCanceled, got %v", err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count returns to within two
// of the baseline or the grace period expires, then reports any leak.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Errorf("goroutine leak after cancellation: %d before, %d after", before, n)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
