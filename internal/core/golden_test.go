// Golden-artifact regression suite: for every built-in application at two
// rank counts, the sha256 fingerprints of the encoded program and the
// generated C source are pinned in testdata/golden.json. Synthesis is
// deterministic in (app, ranks, seed), so any drift — an intentional
// algorithm change or an accidental regression — shows up as a focused
// diff here. Refresh the pins after a deliberate change with:
//
//	go test ./internal/core/ -run TestGoldenArtifacts -update
package core_test

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json with current artifact fingerprints")

const goldenPath = "testdata/golden.json"

// goldenEntry pins one configuration's artifacts.
type goldenEntry struct {
	Program string `json:"program"` // sha256 of the encoded program
	CSource string `json:"c_source"`
}

// goldenConfigs picks the first two valid rank counts in [4,32] for each
// built-in app — the same parameter family as the determinism suite.
func goldenConfigs(t *testing.T) []struct {
	Spec  *apps.Spec
	Ranks int
} {
	t.Helper()
	var out []struct {
		Spec  *apps.Spec
		Ranks int
	}
	for _, spec := range apps.All() {
		found := 0
		for r := 4; r <= 32 && found < 2; r++ {
			if spec.ValidRanks(r) {
				out = append(out, struct {
					Spec  *apps.Spec
					Ranks int
				}{spec, r})
				found++
			}
		}
		if found < 2 {
			t.Fatalf("%s supports fewer than two rank counts in [4,32]", spec.Name)
		}
	}
	return out
}

func TestGoldenArtifacts(t *testing.T) {
	want := map[string]goldenEntry{}
	if !*update {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read %s (run with -update to create it): %v", goldenPath, err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	}

	got := map[string]goldenEntry{}
	var mu sync.Mutex
	for _, cfg := range goldenConfigs(t) {
		cfg := cfg
		key := fmt.Sprintf("%s@%d", cfg.Spec.Name, cfg.Ranks)
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			fn, err := cfg.Spec.Build(apps.Params{Ranks: cfg.Ranks, Iters: 2, WorkScale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(fn, core.Options{Ranks: cfg.Ranks, Seed: 1})
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			entry := goldenEntry{
				Program: fmt.Sprintf("%x", sha256.Sum256(res.Program.Encode())),
				CSource: fmt.Sprintf("%x", sha256.Sum256([]byte(res.Generated.CSource()))),
			}
			mu.Lock()
			got[key] = entry
			mu.Unlock()
			if *update {
				return
			}
			ref, ok := want[key]
			if !ok {
				t.Fatalf("%s missing from %s — new configuration? rerun with -update", key, goldenPath)
			}
			if entry.Program != ref.Program {
				t.Errorf("%s: encoded program drifted: %s != pinned %s", key, entry.Program, ref.Program)
			}
			if entry.CSource != ref.CSource {
				t.Errorf("%s: generated C drifted: %s != pinned %s", key, entry.CSource, ref.CSource)
			}
		})
	}

	// The rewrite (and the stale-key check) must run after every subtest.
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		if *update {
			if err := writeGolden(got); err != nil {
				t.Errorf("write %s: %v", goldenPath, err)
			}
			return
		}
		// Stale pins: configurations in the file that no longer exist.
		for key := range want {
			if _, ok := got[key]; !ok {
				t.Errorf("%s pins unknown configuration %s — rerun with -update", goldenPath, key)
			}
		}
	})
}

// writeGolden serializes the pin map with sorted keys and a trailing
// newline, so regeneration is diff-stable.
func writeGolden(entries map[string]goldenEntry) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]goldenEntry, len(entries))
	for _, k := range keys {
		ordered[k] = entries[k]
	}
	data, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		return err
	}
	return os.WriteFile(goldenPath, append(data, '\n'), 0o644)
}
