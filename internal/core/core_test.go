package core

import (
	"strings"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
)

func synthesizeApp(t *testing.T, name string, ranks int, opts Options) *Result {
	t.Helper()
	spec, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 3, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	opts.Ranks = ranks
	res, err := Synthesize(fn, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSynthesizeEndToEnd(t *testing.T) {
	res := synthesizeApp(t, "CG", 8, Options{Seed: 77})
	if res.Trace == nil || res.Program == nil || res.Generated == nil || res.Proxy == nil {
		t.Fatal("incomplete result")
	}
	if res.Overhead < 0 || res.Overhead > 0.15 {
		t.Errorf("tracing overhead %.2f%% out of the paper's range", res.Overhead*100)
	}
	prox, err := res.RunProxy(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := ReplayError(res.BaselineRun, prox); e > 0.12 {
		t.Errorf("replay error %.2f%% too large", e*100)
	}
}

func TestSynthesizeRunsCheckGate(t *testing.T) {
	res := synthesizeApp(t, "CG", 8, Options{Seed: 77})
	if res.Check == nil {
		t.Fatal("gate should attach a verification report by default")
	}
	if len(res.Check.Diags) != 0 {
		t.Errorf("merged CG program should verify clean:\n%s", res.Check)
	}
	if res.Generated.Check == nil {
		t.Error("generated artifact should carry the verification report")
	}
	if !strings.Contains(res.Generated.CSource(), "static check: clean") {
		t.Error("C source header should be stamped with the verification summary")
	}

	off := synthesizeApp(t, "CG", 8, Options{Seed: 77, DisableCheck: true})
	if off.Check != nil {
		t.Error("DisableCheck should skip the gate")
	}
	// codegen still self-verifies for the stamp even when the gate is off.
	if off.Generated.Check == nil {
		t.Error("codegen should self-verify when no gate report is passed")
	}
}

func TestSynthesizeValidatesRanks(t *testing.T) {
	if _, err := Synthesize(func(*mpi.Rank) {}, Options{}); err == nil {
		t.Fatal("missing rank count should error")
	}
}

func TestSynthesizeScaled(t *testing.T) {
	res := synthesizeApp(t, "CG", 8, Options{Seed: 77, Scale: 10})
	prox, err := res.RunProxy(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if float64(prox.ExecTime) > 0.5*float64(res.BaselineRun.ExecTime) {
		t.Errorf("scaled proxy (%v) should run much faster than original (%v)",
			prox.ExecTime, res.BaselineRun.ExecTime)
	}
	reported := float64(res.Proxy.ReportedTime(prox))
	if e := TimeError(reported, float64(res.BaselineRun.ExecTime)); e > 0.35 {
		t.Errorf("Siesta-scaled reported-time error %.1f%%", e*100)
	}
	back := ScaleBack(prox, res.Generated.Scale)
	if float64(back.ExecTime) <= float64(prox.ExecTime) {
		t.Error("ScaleBack should inflate times")
	}
}

func TestProxyPortability(t *testing.T) {
	// Fig. 9's mechanism end-to-end: generate on A, run on B; the proxy
	// should track the original's slowdown.
	spec, _ := apps.ByName("CG")
	fn, _ := spec.Build(apps.Params{Ranks: 8, Iters: 3, WorkScale: 0.05})
	res := synthesizeApp(t, "CG", 8, Options{Seed: 77})
	wB := mpi.NewWorld(mpi.Config{Platform: platform.B, Size: 8, NoiseSigma: 0.004, Seed: 77})
	origB, err := wB.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	proxB, err := res.RunProxy(platform.B, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := TimeError(float64(proxB.ExecTime), float64(origB.ExecTime)); e > 0.35 {
		t.Errorf("A→B proxy time error %.1f%% too large (proxy %v, orig %v)",
			e*100, proxB.ExecTime, origB.ExecTime)
	}
}

func TestProxyImplRobustness(t *testing.T) {
	// Fig. 7's mechanism: generated under openmpi, run under mpich.
	spec, _ := apps.ByName("MG")
	fn, _ := spec.Build(apps.Params{Ranks: 8, Iters: 3, WorkScale: 0.05})
	res := synthesizeApp(t, "MG", 8, Options{Seed: 77})
	wM := mpi.NewWorld(mpi.Config{Impl: netmodel.MPICH, Size: 8, NoiseSigma: 0.004, Seed: 77})
	origM, err := wM.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	proxM, err := res.RunProxy(nil, netmodel.MPICH)
	if err != nil {
		t.Fatal(err)
	}
	if e := TimeError(float64(proxM.ExecTime), float64(origM.ExecTime)); e > 0.25 {
		t.Errorf("openmpi→mpich proxy time error %.1f%%", e*100)
	}
}

func TestGeneratedCSourceAvailable(t *testing.T) {
	res := synthesizeApp(t, "IS", 8, Options{Seed: 77})
	src := res.Generated.CSource()
	if !strings.Contains(src, "MPI_Init") || !strings.Contains(src, "MPI_Alltoallv") {
		t.Error("C source missing expected content")
	}
}

func TestTable3ShapeForOneApp(t *testing.T) {
	res := synthesizeApp(t, "MG", 8, Options{Seed: 77})
	raw := res.Trace.RawSize()
	sizeC := res.Generated.SizeC
	if sizeC*5 > raw {
		t.Errorf("size_C (%d) should be far below raw trace size (%d)", sizeC, raw)
	}
}

func TestReplayErrorMetric(t *testing.T) {
	res := synthesizeApp(t, "CG", 8, Options{Seed: 77})
	if e := ReplayError(res.BaselineRun, res.BaselineRun); e != 0 {
		t.Errorf("self error %v", e)
	}
	other := &mpi.RunResult{}
	if e := ReplayError(res.BaselineRun, other); e != 1 {
		t.Errorf("mismatched shape should be 1, got %v", e)
	}
}

func TestRelDiff(t *testing.T) {
	if relDiff(0, 0) != 0 || relDiff(1, 0) != 1 {
		t.Error("zero handling wrong")
	}
	if relDiff(110, 100) != 0.1 {
		t.Error("basic ratio wrong")
	}
}
