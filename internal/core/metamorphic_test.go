// Metamorphic tests: relations that must hold between two synthesis runs
// whose inputs differ in a controlled way.
//
//   - Changing the noise/jitter seed is a different "cluster job" of the
//     same program: every artifact's *structure* (call sequences, message
//     edges, timeline event shapes) is invariant; only times move, and
//     only within the jitter envelope.
//   - Changing Parallelism is a pure throughput knob: artifacts AND the
//     recorded observability streams are byte-identical. This extends the
//     determinism suite to the span layer; CI runs it under -race.
package core_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/obs"
)

// shapeEvent is a timeline event with times stripped: what must survive a
// noise-seed change unchanged.
type shapeEvent struct {
	Name string
	Cat  string
	Kind obs.Kind
	Rank int
	Flow uint64
}

func timelineShape(tl *obs.Timeline) []shapeEvent {
	events := tl.Events()
	out := make([]shapeEvent, len(events))
	for i, ev := range events {
		out[i] = shapeEvent{Name: ev.Name, Cat: ev.Cat, Kind: ev.Kind, Rank: ev.Rank, Flow: ev.Flow}
	}
	return out
}

// synthesizeCG runs one observed CG synthesis at 8 ranks.
func synthesizeCG(t *testing.T, seed uint64, parallelism int) (*core.Result, *obs.Tracer) {
	t.Helper()
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.New()
	res, err := core.Synthesize(fn, core.Options{
		Ranks: 8, Seed: seed, Parallelism: parallelism, Tracer: tracer,
	})
	if err != nil {
		t.Fatalf("seed=%d parallelism=%d: %v", seed, parallelism, err)
	}
	return res, tracer
}

// TestMetamorphicNoiseSeed: two seeds are two jobs of the same program on
// the same cluster — identical structure, times within the jitter
// envelope.
func TestMetamorphicNoiseSeed(t *testing.T) {
	resA, trA := synthesizeCG(t, 1, 0)
	resB, trB := synthesizeCG(t, 2, 0)

	// Call structure is timing-independent.
	if a, b := resA.Trace.TotalEvents(), resB.Trace.TotalEvents(); a != b {
		t.Fatalf("trace event counts differ across seeds: %d vs %d", a, b)
	}
	for i := range resA.BaselineRun.Ranks {
		if a, b := resA.BaselineRun.Ranks[i].Calls, resB.BaselineRun.Ranks[i].Calls; a != b {
			t.Errorf("rank %d: call count %d vs %d across seeds", i, a, b)
		}
	}

	// Timeline shape — names, categories, ranks, message edges — is
	// invariant; only the recorded times may move.
	tlA, tlB := trA.Timelines()[0], trB.Timelines()[0]
	shapeA, shapeB := timelineShape(tlA), timelineShape(tlB)
	if len(shapeA) != len(shapeB) {
		t.Fatalf("timeline lengths differ across seeds: %d vs %d", len(shapeA), len(shapeB))
	}
	for i := range shapeA {
		if shapeA[i] != shapeB[i] {
			t.Fatalf("timeline event %d differs across seeds: %+v vs %+v", i, shapeA[i], shapeB[i])
		}
	}

	// Execution times move, but stay inside the jitter envelope (2%
	// per-rank run variation; 25% is far outside anything it produces).
	a, b := float64(resA.BaselineRun.ExecTime), float64(resB.BaselineRun.ExecTime)
	if rel := math.Abs(a-b) / a; rel > 0.25 {
		t.Errorf("exec time moved %.1f%% across seeds (%v vs %v) — beyond the jitter envelope",
			rel*100, resA.BaselineRun.ExecTime, resB.BaselineRun.ExecTime)
	}
	if a == b {
		t.Error("different seeds produced bit-identical exec times — jitter is not being applied")
	}
}

// TestMetamorphicParallelismObservability: the determinism suite already
// pins artifacts across Parallelism; this extends the guarantee to the
// observability layer — phase coverage and complete timeline event
// streams (times included: they are virtual) must match. Wall-clock span
// *order* is only pinned for the sequential pipeline: a parallel run
// overlaps baseline/trace (plus a B-matrix warmup span), so its ladder is
// compared as a set with the warmup span allowed.
func TestMetamorphicParallelismObservability(t *testing.T) {
	resA, trA := synthesizeCG(t, 1, 1)
	resB, trB := synthesizeCG(t, 1, 4)

	if !bytes.Equal(resA.Program.Encode(), resB.Program.Encode()) {
		t.Error("encoded program differs across Parallelism")
	}
	if resA.Generated.CSource() != resB.Generated.CSource() {
		t.Error("generated C differs across Parallelism")
	}

	namesA, namesB := phaseNames(trA.Phases()), phaseNames(trB.Phases())
	want := []string{"baseline", "trace", "merge", "check", "codegen"}
	if !reflect.DeepEqual(namesA, want) {
		t.Fatalf("serial phase ladder = %v, want %v", namesA, want)
	}
	setB := make(map[string]int)
	for _, n := range namesB {
		setB[n]++
	}
	for _, n := range want {
		if setB[n] != 1 {
			t.Fatalf("parallel run recorded phase %q %d times, want exactly once (ladder %v)",
				n, setB[n], namesB)
		}
	}
	if extra := len(namesB) - len(want); extra > 1 || (extra == 1 && setB["warmup"] != 1) {
		t.Fatalf("parallel phase ladder has unexpected spans: %v", namesB)
	}
	// The pure phases after the overlapped segment still end in pipeline
	// order.
	tail := namesB[len(namesB)-3:]
	if !reflect.DeepEqual(tail, []string{"merge", "check", "codegen"}) {
		t.Fatalf("parallel phase ladder tail = %v, want [merge check codegen]", tail)
	}

	tlsA, tlsB := trA.Timelines(), trB.Timelines()
	if len(tlsA) != len(tlsB) {
		t.Fatalf("timeline counts differ: %d vs %d", len(tlsA), len(tlsB))
	}
	for i := range tlsA {
		a, err := json.Marshal(tlsA[i].Events())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(tlsB[i].Events())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("timeline %q event stream differs across Parallelism", tlsA[i].Name())
		}
	}
}
