// Spill-table torture (DESIGN.md §15): with the high-water mark forced to
// one byte, every terminal of every rank spills to disk during streaming
// ingest — and not one output byte may move. The reference points are the
// strongest available: the golden-pinned artifact hashes for CG@8, and a
// fresh batch synthesis for CG@16. Both tests also hold the ownership
// rule: commit (and abort) must leave zero spill files behind.
package core_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/trace"
)

func cgSpec(t *testing.T) *apps.Spec {
	t.Helper()
	for _, spec := range apps.All() {
		if spec.Name == "CG" {
			return spec
		}
	}
	t.Fatal("CG app not registered")
	return nil
}

func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "siesta-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// synthesizeSpilled runs the streamed path for the app with everything
// forced to disk, returning the result and asserting spilling really
// happened and really cleaned up.
func synthesizeSpilled(t *testing.T, spec *apps.Spec, ranks int, refTrace *trace.Trace) *core.Result {
	t.Helper()
	dir := t.TempDir()
	opts := core.Options{Ranks: ranks, Seed: 1}
	opts.Merge.Spill = trace.SpillConfig{HighWater: 1, Dir: dir}
	in, err := core.NewIngest(ranks, opts)
	if err != nil {
		t.Fatal(err)
	}
	streamTrace(t, in, refTrace, 256, nil)
	st := in.SpillStats()
	if st.Spilled == 0 || st.SpilledBytes == 0 {
		t.Fatalf("high-water 1 did not force spilling: %+v", st)
	}
	if st.Records != st.Spilled {
		t.Fatalf("expected every terminal spilled, got %d of %d: %+v", st.Spilled, st.Records, st)
	}
	if countSpillFiles(t, dir) == 0 {
		t.Fatal("no spill files on disk mid-session")
	}
	res, err := core.SynthesizeIngest(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files leaked after commit", n)
	}
	return res
}

// The spilled streamed path must reproduce the repo's pinned golden
// hashes for CG — the same pins the batch path is held to.
func TestSpilledStreamingMatchesGoldenPins(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v", goldenPath, err)
	}
	pins := map[string]goldenEntry{}
	if err := json.Unmarshal(data, &pins); err != nil {
		t.Fatal(err)
	}
	spec := cgSpec(t)
	for _, ranks := range []int{4, 8} {
		ranks := ranks
		t.Run(fmt.Sprintf("CG@%d", ranks), func(t *testing.T) {
			t.Parallel()
			pin, ok := pins[fmt.Sprintf("CG@%d", ranks)]
			if !ok {
				t.Fatalf("CG@%d not pinned in %s", ranks, goldenPath)
			}
			fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			// The golden pins were produced by batch synthesis; the trace to
			// stream comes from the same deterministic run.
			ref, err := core.Synthesize(fn, core.Options{Ranks: ranks, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			res := synthesizeSpilled(t, spec, ranks, ref.Trace)
			if got := fmt.Sprintf("%x", sha256.Sum256(res.Program.Encode())); got != pin.Program {
				t.Errorf("spilled streamed program %s != golden pin %s", got, pin.Program)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256([]byte(res.Generated.CSource()))); got != pin.CSource {
				t.Errorf("spilled streamed C source %s != golden pin %s", got, pin.CSource)
			}
		})
	}
}

// CG@16 is past the golden pin set; batch synthesis is the reference. The
// spill config must also stay out of the cache key.
func TestSpilledStreamingCG16MatchesBatch(t *testing.T) {
	const ranks = 16
	spec := cgSpec(t)
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Synthesize(fn, core.Options{Ranks: ranks, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := synthesizeSpilled(t, spec, ranks, ref.Trace)
	if !bytes.Equal(res.Program.Encode(), ref.Program.Encode()) {
		t.Error("spilled streamed program differs from batch")
	}
	if res.Generated.CSource() != ref.Generated.CSource() {
		t.Error("spilled streamed C source differs from batch")
	}
	if got, want := core.OptionsFingerprint(res.Opts), core.OptionsFingerprint(ref.Opts); got != want {
		t.Errorf("spill config leaked into the fingerprint: %s != %s", got, want)
	}
}

// Aborting a spilled session must also remove its files — the other half
// of the ownership rule.
func TestSpilledStreamingAbortCleansUp(t *testing.T) {
	const ranks = 8
	spec := cgSpec(t)
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Synthesize(fn, core.Options{Ranks: ranks, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := core.Options{Ranks: ranks, Seed: 1}
	opts.Merge.Spill = trace.SpillConfig{HighWater: 1, Dir: dir}
	in, err := core.NewIngest(ranks, opts)
	if err != nil {
		t.Fatal(err)
	}
	streamTrace(t, in, ref.Trace, 256, nil)
	if countSpillFiles(t, dir) == 0 {
		t.Fatal("no spill files mid-session")
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files leaked after abort", n)
	}
}
