// The streamed-equals-batch differential harness (DESIGN.md §15): for
// every built-in application and a corpus of random programs, feeding the
// trace through the chunked streaming ingest path — at any chunk size,
// any rank-arrival interleaving, any parallelism — must synthesize a
// byte-identical program AND byte-identical C source to the one-shot
// batch path, witnessed by sha256. CI runs this under -race, so the
// concurrent per-rank feeds also shake out locking bugs in the ingestors.
package core_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/merge"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// streamTrace feeds tr into the ingest session: each rank's chunk stream
// is cut into chunkSize-byte pieces (0 = whole stream) delivered
// round-robin over ranks in the given visitation order — the
// interleaving a gateway fans in when rank uploads race.
func streamTrace(t *testing.T, in *merge.Ingest, tr *trace.Trace, chunkSize int, order []int) {
	t.Helper()
	streams := make([][]byte, len(tr.Ranks))
	for i, rt := range tr.Ranks {
		streams[i] = trace.ChunkEncodeRank(rt)
	}
	if order == nil {
		order = make([]int, len(tr.Ranks))
		for i := range order {
			order[i] = i
		}
	}
	for remaining := len(order); remaining > 0; {
		for _, r := range order {
			if len(streams[r]) == 0 {
				continue
			}
			n := chunkSize
			if n <= 0 || n > len(streams[r]) {
				n = len(streams[r])
			}
			if err := in.Rank(r).Feed(streams[r][:n]); err != nil {
				t.Fatalf("rank %d feed: %v", r, err)
			}
			streams[r] = streams[r][n:]
			if len(streams[r]) == 0 {
				remaining--
			}
		}
	}
}

// chunkSizes is the sweep: pathological (1 byte), prime-misaligned (7),
// realistic (4096), and degenerate whole-stream (0).
var chunkSizes = []int{1, 7, 4096, 0}

func TestStreamedSynthesisMatchesBatchForApps(t *testing.T) {
	pars := []int{1, runtime.GOMAXPROCS(0)}
	for _, spec := range apps.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			ranks := 0
			for r := 8; r <= 16; r++ {
				if spec.ValidRanks(r) {
					ranks = r
					break
				}
			}
			if ranks == 0 {
				t.Fatalf("%s supports no rank count in [8,16]", spec.Name)
			}
			fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{Ranks: ranks, Seed: 1}
			ref, err := core.Synthesize(fn, opts)
			if err != nil {
				t.Fatal(err)
			}
			refProg := sha256.Sum256(ref.Program.Encode())
			refSrc := sha256.Sum256([]byte(ref.Generated.CSource()))
			refFP := core.OptionsFingerprint(ref.Opts)

			rng := rand.New(rand.NewSource(42))
			for _, chunk := range chunkSizes {
				for oi, order := range [][]int{nil, rng.Perm(ranks)} {
					for _, par := range pars {
						name := fmt.Sprintf("chunk%d/order%d/par%d", chunk, oi, par)
						t.Run(name, func(t *testing.T) {
							sOpts := core.Options{Ranks: ranks, Seed: 1, Parallelism: par}
							in, err := core.NewIngest(ranks, sOpts)
							if err != nil {
								t.Fatal(err)
							}
							streamTrace(t, in, ref.Trace, chunk, order)
							res, err := core.SynthesizeIngest(in, sOpts)
							if err != nil {
								t.Fatal(err)
							}
							if got := sha256.Sum256(res.Program.Encode()); got != refProg {
								t.Error("streamed program sha256 differs from batch")
							}
							if got := sha256.Sum256([]byte(res.Generated.CSource())); got != refSrc {
								t.Error("streamed C source sha256 differs from batch")
							}
							if fp := core.OptionsFingerprint(res.Opts); fp != refFP {
								t.Errorf("streamed fingerprint %s != batch %s", fp, refFP)
							}
						})
					}
				}
			}
		})
	}
}

// The random-program corpus widens the sweep past the paper apps. Each
// seed gets one batch synthesis and one streamed synthesis at a
// seed-rotated point of the chunk × order × parallelism cube, so the
// corpus as a whole covers the cube while each case stays cheap.
func TestStreamedSynthesisMatchesBatchRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			const ranks = 8
			opts := core.Options{Ranks: ranks, Seed: uint64(seed)}
			ref, err := core.Synthesize(proxy.RandomProgram(seed, 12), opts)
			if err != nil {
				t.Fatal(err)
			}

			chunk := chunkSizes[int(seed)%len(chunkSizes)]
			var order []int
			if seed%2 == 0 {
				order = rand.New(rand.NewSource(seed)).Perm(ranks)
			}
			par := 1
			if seed%3 == 0 {
				par = runtime.GOMAXPROCS(0)
			}
			sOpts := core.Options{Ranks: ranks, Seed: uint64(seed), Parallelism: par}
			in, err := core.NewIngest(ranks, sOpts)
			if err != nil {
				t.Fatal(err)
			}
			streamTrace(t, in, ref.Trace, chunk, order)
			res, err := core.SynthesizeIngest(in, sOpts)
			if err != nil {
				t.Fatal(err)
			}
			if sha256.Sum256(res.Program.Encode()) != sha256.Sum256(ref.Program.Encode()) {
				t.Error("streamed program sha256 differs from batch")
			}
			if sha256.Sum256([]byte(res.Generated.CSource())) != sha256.Sum256([]byte(ref.Generated.CSource())) {
				t.Error("streamed C source sha256 differs from batch")
			}
		})
	}
}

// Concurrent rank uploads — one goroutine per rank, misaligned chunks —
// through the full synthesis pipeline. Under -race this is the harness's
// locking proof; the output must still match batch exactly.
func TestStreamedSynthesisConcurrentUploads(t *testing.T) {
	spec := apps.All()[0]
	ranks := 0
	for r := 8; r <= 16; r++ {
		if spec.ValidRanks(r) {
			ranks = r
			break
		}
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Ranks: ranks, Seed: 1}
	ref, err := core.Synthesize(fn, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewIngest(ranks, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r, rt := range ref.Trace.Ranks {
		wg.Add(1)
		go func(r int, stream []byte) {
			defer wg.Done()
			ri := in.Rank(r)
			for len(stream) > 0 {
				n := 37
				if n > len(stream) {
					n = len(stream)
				}
				if err := ri.Feed(stream[:n]); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				stream = stream[n:]
			}
		}(r, trace.ChunkEncodeRank(rt))
	}
	wg.Wait()
	res, err := core.SynthesizeIngest(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Program.Encode(), ref.Program.Encode()) {
		t.Error("concurrently-streamed program differs from batch")
	}
	if res.Generated.CSource() != ref.Generated.CSource() {
		t.Error("concurrently-streamed C source differs from batch")
	}
}
