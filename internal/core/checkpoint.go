package core

import (
	"bytes"
	"fmt"

	"siesta/internal/merge"
	"siesta/internal/trace"
)

// Pipeline phase markers a Checkpoint can carry, in pipeline order. Each
// names the *last completed* boundary: a PhaseTrace checkpoint lets a
// restarted run skip both simulated executions, PhaseMerge additionally
// skips grammar merging and static verification, and PhaseSearch carries
// the solved computation-proxy searches so code generation replays them
// from cache instead of re-solving the QPs.
const (
	PhaseTrace  = "trace"
	PhaseMerge  = "merge"
	PhaseSearch = "search"
)

// phaseRank orders phase markers; unknown phases rank lowest so a
// checkpoint from a newer build degrades to a full recompute.
func phaseRank(p string) int {
	switch p {
	case PhaseTrace:
		return 1
	case PhaseMerge:
		return 2
	case PhaseSearch:
		return 3
	}
	return 0
}

// Checkpoint is the canonical state of a synthesis at a completed phase
// boundary — the DMTCP-via-proxies idea (PAPERS.md) applied to the
// pipeline: rather than imaging a process, persist only the replayable
// essence (encoded trace, encoded program, solved searches) plus the
// options fingerprint that proves which synthesis it belongs to. All
// payloads reuse the existing canonical codecs (trace.Trace.Encode,
// merge.Program.Encode, blocks.Memo.Export), so checkpointed and
// uninterrupted runs flow through byte-identical representations.
type Checkpoint struct {
	// Fingerprint is OptionsFingerprint of the run that wrote the
	// checkpoint. Resume compares it against the current options and
	// forces a clean recompute on mismatch — a checkpoint must never leak
	// state into a different synthesis.
	Fingerprint string
	// Phase is the last completed boundary (PhaseTrace, PhaseMerge or
	// PhaseSearch).
	Phase string
	// Overhead is Result.Overhead, which only the simulated runs can
	// measure; it rides along so resumed results report it faithfully.
	Overhead float64
	// TraceBytes is the encoded trace (set from PhaseTrace on).
	TraceBytes []byte
	// ProgramBytes is the encoded merged program (set from PhaseMerge on).
	ProgramBytes []byte
	// CheckSummary is the static verifier's verdict for the merged
	// program (set with ProgramBytes when verification ran).
	CheckSummary string
	// MemoBytes is a blocks.Memo snapshot of solved computation-proxy
	// searches (set at PhaseSearch).
	MemoBytes []byte
}

const checkpointMagic = "SIESTA-CKPT1"

// Encode serializes the checkpoint in the compact binary currency shared
// with the trace and program codecs.
func (cp *Checkpoint) Encode() []byte {
	var e trace.Enc
	e.Str(checkpointMagic)
	e.Str(cp.Fingerprint)
	e.Str(cp.Phase)
	e.Float(cp.Overhead)
	e.Str(string(cp.TraceBytes))
	e.Str(string(cp.ProgramBytes))
	e.Str(cp.CheckSummary)
	e.Str(string(cp.MemoBytes))
	return e.Bytes()
}

// DecodeCheckpoint parses a checkpoint written by Encode. The string codec
// length-checks every section against the remaining input, so a truncated
// blob fails cleanly rather than aliasing fields.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	d := trace.NewDec(data)
	magic, err := d.Str()
	if err != nil || magic != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q: %v", magic, err)
	}
	cp := &Checkpoint{}
	if cp.Fingerprint, err = d.Str(); err != nil {
		return nil, fmt.Errorf("core: checkpoint fingerprint: %w", err)
	}
	if cp.Phase, err = d.Str(); err != nil {
		return nil, fmt.Errorf("core: checkpoint phase: %w", err)
	}
	if cp.Overhead, err = d.Float(); err != nil {
		return nil, fmt.Errorf("core: checkpoint overhead: %w", err)
	}
	var s string
	if s, err = d.Str(); err != nil {
		return nil, fmt.Errorf("core: checkpoint trace: %w", err)
	}
	cp.TraceBytes = []byte(s)
	if s, err = d.Str(); err != nil {
		return nil, fmt.Errorf("core: checkpoint program: %w", err)
	}
	cp.ProgramBytes = []byte(s)
	if cp.CheckSummary, err = d.Str(); err != nil {
		return nil, fmt.Errorf("core: checkpoint check summary: %w", err)
	}
	if s, err = d.Str(); err != nil {
		return nil, fmt.Errorf("core: checkpoint memo: %w", err)
	}
	cp.MemoBytes = []byte(s)
	if r := phaseRank(cp.Phase); r == 0 {
		return nil, fmt.Errorf("core: checkpoint has unknown phase %q", cp.Phase)
	}
	return cp, nil
}

// covers reports whether the checkpoint has completed at least the given
// boundary.
func (cp *Checkpoint) covers(phase string) bool {
	return cp != nil && phaseRank(cp.Phase) >= phaseRank(phase)
}

// clone returns a value copy sharing the payload slices (which are never
// mutated after construction).
func (cp *Checkpoint) clone() *Checkpoint {
	c := *cp
	return &c
}

// Equal reports whether two checkpoints carry identical state — used by
// tests to prove checkpointing is deterministic.
func (cp *Checkpoint) Equal(o *Checkpoint) bool {
	if cp == nil || o == nil {
		return cp == o
	}
	return cp.Fingerprint == o.Fingerprint &&
		cp.Phase == o.Phase &&
		cp.Overhead == o.Overhead &&
		bytes.Equal(cp.TraceBytes, o.TraceBytes) &&
		bytes.Equal(cp.ProgramBytes, o.ProgramBytes) &&
		cp.CheckSummary == o.CheckSummary
}

// validateResume decides how much of a resume checkpoint is usable for a
// run whose options fingerprint is fp. It decodes the payloads eagerly so
// corruption is discovered here, not mid-pipeline: a fingerprint mismatch
// or an undecodable trace rejects the checkpoint outright (clean
// recompute); an undecodable program with an intact trace degrades to a
// post-trace resume. The returned checkpoint is what the run actually
// honors.
func validateResume(cp *Checkpoint, fp string) (*Checkpoint, *trace.Trace, *merge.Program) {
	if cp == nil || cp.Fingerprint != fp || !cp.covers(PhaseTrace) {
		return nil, nil, nil
	}
	t, err := trace.Decode(cp.TraceBytes)
	if err != nil {
		return nil, nil, nil
	}
	if !cp.covers(PhaseMerge) {
		return cp, t, nil
	}
	p, err := merge.Decode(cp.ProgramBytes)
	if err != nil {
		d := cp.clone()
		d.Phase = PhaseTrace
		d.ProgramBytes, d.MemoBytes, d.CheckSummary = nil, nil, ""
		return d, t, nil
	}
	return cp, t, p
}

// Checkpointer persists checkpoints at phase boundaries. Save is called on
// the synthesis goroutine with a fully built checkpoint; when it returns
// an error the pipeline aborts with a *CheckpointError, which the service
// layer classifies as transient (the job retries and resumes from the
// previous checkpoint). Implementations must not retain cp past the call
// unless they treat it as immutable.
type Checkpointer interface {
	Save(cp *Checkpoint) error
}

// CheckpointError wraps a Checkpointer.Save failure: the synthesis itself
// was healthy, only durability failed, so callers should treat the error
// as transient and retry rather than declaring the input bad.
type CheckpointError struct {
	Phase string
	Err   error
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("core: checkpoint at %s boundary: %v", e.Phase, e.Err)
}

func (e *CheckpointError) Unwrap() error { return e.Err }
