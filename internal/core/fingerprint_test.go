package core

import (
	"context"
	"encoding/json"
	"testing"

	"siesta/internal/fault"
	"siesta/internal/netmodel"
	"siesta/internal/obs"
	"siesta/internal/platform"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	orig := Options{
		Platform:     platform.B,
		Impl:         netmodel.MPICH,
		Ranks:        16,
		NoiseSigma:   0.01,
		RunVariation: 0.03,
		Seed:         42,
		Faults: &fault.Plan{
			Seed:       7,
			Stragglers: []fault.Straggler{{Rank: 1, Factor: 4}},
		},
		Deadline: 30,
		Scale:    10,
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Platform != platform.B || back.Impl != netmodel.MPICH {
		t.Errorf("platform/impl did not round-trip: %v %v", back.Platform, back.Impl)
	}
	if back.Ranks != orig.Ranks || back.Seed != orig.Seed || back.Scale != orig.Scale {
		t.Errorf("scalar fields did not round-trip: %+v", back)
	}
	if back.Faults == nil || len(back.Faults.Stragglers) != 1 || back.Faults.Stragglers[0].Factor != 4 {
		t.Errorf("fault plan did not round-trip: %+v", back.Faults)
	}
	// Re-encoding must be byte-identical — the determinism the cache key
	// rests on.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(data) != string(data2) {
		t.Errorf("encoding not deterministic:\n %s\n %s", data, data2)
	}
}

func TestOptionsJSONRejectsUnknownNames(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"platform":"Z","ranks":4}`), &o); err == nil {
		t.Error("unknown platform name should fail to decode")
	}
	if err := json.Unmarshal([]byte(`{"impl":"nope","ranks":4}`), &o); err == nil {
		t.Error("unknown impl name should fail to decode")
	}
}

func TestOptionsFingerprint(t *testing.T) {
	base := Options{Ranks: 8, Seed: 1}
	fp := OptionsFingerprint(base)
	if len(fp) != 64 {
		t.Fatalf("fingerprint should be a sha256 hex digest, got %q", fp)
	}
	if OptionsFingerprint(base) != fp {
		t.Error("fingerprint not stable across calls")
	}

	// Explicitly spelling out the defaults hashes the same as leaving
	// them zero.
	explicit := Options{
		Platform: platform.A, Impl: netmodel.OpenMPI,
		Ranks: 8, Seed: 1, NoiseSigma: 0.004, RunVariation: 0.02, Scale: 1,
	}
	if OptionsFingerprint(explicit) != fp {
		t.Error("explicit defaults should fingerprint like zero values")
	}

	// Context and Tracer are runtime-only and must not perturb the key.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withRuntime := base
	withRuntime.Context = ctx
	withRuntime.Tracer = obs.New()
	if OptionsFingerprint(withRuntime) != fp {
		t.Error("Context/Tracer must not change the fingerprint")
	}

	// Any synthesis-relevant field must perturb it.
	for name, o := range map[string]Options{
		"ranks":    {Ranks: 16, Seed: 1},
		"seed":     {Ranks: 8, Seed: 2},
		"scale":    {Ranks: 8, Seed: 1, Scale: 10},
		"platform": {Ranks: 8, Seed: 1, Platform: platform.C},
		"impl":     {Ranks: 8, Seed: 1, Impl: netmodel.MVAPICH},
		"faults":   {Ranks: 8, Seed: 1, Faults: &fault.Plan{Stragglers: []fault.Straggler{{Rank: 0, Factor: 2}}}},
		"deadline": {Ranks: 8, Seed: 1, Deadline: 5},
	} {
		if OptionsFingerprint(o) == fp {
			t.Errorf("changing %s should change the fingerprint", name)
		}
	}
}
