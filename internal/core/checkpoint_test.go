// Checkpoint/restart extension of the determinism suite (ISSUE 6): a
// synthesis interrupted at any phase boundary and resumed from its
// checkpoint must produce a byte-identical artifact — encoded program and
// generated C source — to an uninterrupted run. CI runs this under -race.
package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/blocks"
	"siesta/internal/core"
)

// memCheckpointer records every checkpoint in memory and can be told to
// fail at a given boundary.
type memCheckpointer struct {
	mu     sync.Mutex
	saved  []*core.Checkpoint
	failAt string
}

func (m *memCheckpointer) Save(cp *core.Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failAt != "" && cp.Phase == m.failAt {
		return fmt.Errorf("injected checkpoint failure at %s", cp.Phase)
	}
	m.saved = append(m.saved, cp)
	return nil
}

func (m *memCheckpointer) at(phase string) *core.Checkpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cp := range m.saved {
		if cp.Phase == phase {
			return cp
		}
	}
	return nil
}

func synthOpts(ranks int) core.Options {
	return core.Options{Ranks: ranks, Seed: 3}
}

func TestResumeFromEveryBoundaryIsByteIdentical(t *testing.T) {
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	// Control: uninterrupted run, checkpointing every boundary. A private
	// memo isolates the run from the process-global DefaultMemo so the
	// post-search snapshot is exactly this run's solves.
	ck := &memCheckpointer{}
	ctrl := synthOpts(ranks)
	ctrl.Checkpointer = ck
	ctrl.SearchMemo = blocks.NewMemo(0)
	ref, err := core.Synthesize(fn, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	refProg := ref.Program.Encode()
	refSrc := ref.Generated.CSource()
	if ref.ResumedFrom != "" {
		t.Fatalf("control run reports ResumedFrom=%q", ref.ResumedFrom)
	}
	if len(ck.saved) != 3 {
		t.Fatalf("control run wrote %d checkpoints, want 3", len(ck.saved))
	}

	for _, phase := range []string{core.PhaseTrace, core.PhaseMerge, core.PhaseSearch} {
		phase := phase
		t.Run("resume_"+phase, func(t *testing.T) {
			cp := ck.at(phase)
			if cp == nil {
				t.Fatalf("no checkpoint at %s boundary", phase)
			}
			opts := synthOpts(ranks)
			opts.Resume = cp
			opts.SearchMemo = blocks.NewMemo(0) // cold memo: only the snapshot may warm it
			res, err := core.Synthesize(fn, opts)
			if err != nil {
				t.Fatalf("resume from %s: %v", phase, err)
			}
			if res.ResumedFrom != phase {
				t.Fatalf("ResumedFrom = %q, want %q", res.ResumedFrom, phase)
			}
			if res.BaselineRun != nil || res.TracedRun != nil {
				t.Error("resumed run re-ran the simulated executions")
			}
			if res.Overhead != ref.Overhead {
				t.Errorf("Overhead %v != control %v", res.Overhead, ref.Overhead)
			}
			if !bytes.Equal(res.Program.Encode(), refProg) {
				t.Errorf("resume from %s: encoded program differs from uninterrupted run", phase)
			}
			if res.Generated.CSource() != refSrc {
				t.Errorf("resume from %s: generated C source differs from uninterrupted run", phase)
			}
			if res.Program.Digest() != ref.Program.Digest() {
				t.Errorf("resume from %s: program digest moved", phase)
			}
			if res.Check == nil {
				t.Error("resumed run skipped static verification")
			}
		})
	}

	// Checkpoints themselves must be deterministic: a second uninterrupted
	// run writes payload-identical checkpoints.
	ck2 := &memCheckpointer{}
	again := synthOpts(ranks)
	again.Checkpointer = ck2
	again.SearchMemo = blocks.NewMemo(0)
	if _, err := core.Synthesize(fn, again); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{core.PhaseTrace, core.PhaseMerge, core.PhaseSearch} {
		a, b := ck.at(phase), ck2.at(phase)
		if !a.Equal(b) {
			t.Errorf("checkpoint at %s differs between identical runs", phase)
		}
	}
}

func TestResumeFingerprintMismatchForcesRecompute(t *testing.T) {
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ck := &memCheckpointer{}
	opts := synthOpts(ranks)
	opts.Checkpointer = ck
	if _, err := core.Synthesize(fn, opts); err != nil {
		t.Fatal(err)
	}
	cp := ck.at(core.PhaseSearch)

	// Different seed → different fingerprint → the checkpoint must be
	// ignored and the run recomputed from scratch.
	other := synthOpts(ranks)
	other.Seed = 99
	other.Resume = cp
	res, err := core.Synthesize(fn, other)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != "" {
		t.Fatalf("mismatched checkpoint was honored (ResumedFrom=%q)", res.ResumedFrom)
	}
	if res.BaselineRun == nil || res.TracedRun == nil {
		t.Fatal("clean recompute skipped the simulated runs")
	}

	// Corrupt payload with a matching fingerprint must also degrade
	// cleanly. Truncating the trace bytes kills the whole checkpoint.
	bad := *cp
	bad.TraceBytes = cp.TraceBytes[:len(cp.TraceBytes)/2]
	brOpts := synthOpts(ranks)
	brOpts.Resume = &bad
	res, err = core.Synthesize(fn, brOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != "" {
		t.Fatalf("corrupt checkpoint was honored (ResumedFrom=%q)", res.ResumedFrom)
	}

	// A corrupt program section with an intact trace degrades to a
	// post-trace resume.
	bad = *cp
	bad.ProgramBytes = cp.ProgramBytes[:len(cp.ProgramBytes)/3]
	dgOpts := synthOpts(ranks)
	dgOpts.Resume = &bad
	res, err = core.Synthesize(fn, dgOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != core.PhaseTrace {
		t.Fatalf("degraded resume reports %q, want %q", res.ResumedFrom, core.PhaseTrace)
	}
}

func TestCheckpointSaveFailureIsTypedAndTransient(t *testing.T) {
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ck := &memCheckpointer{failAt: core.PhaseMerge}
	opts := synthOpts(ranks)
	opts.Checkpointer = ck
	_, err = core.Synthesize(fn, opts)
	var cerr *core.CheckpointError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *core.CheckpointError, got %v", err)
	}
	if cerr.Phase != core.PhaseMerge {
		t.Fatalf("failure phase %q, want %q", cerr.Phase, core.PhaseMerge)
	}
	// The trace boundary before the failure was still persisted — a retry
	// resumes from it.
	if ck.at(core.PhaseTrace) == nil {
		t.Fatal("post-trace checkpoint missing after later failure")
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	cp := &core.Checkpoint{
		Fingerprint:  "fp-123",
		Phase:        core.PhaseMerge,
		Overhead:     0.0625,
		TraceBytes:   []byte{1, 2, 3, 0xff},
		ProgramBytes: []byte("SIESTA-PROG1-ish"),
		CheckSummary: "ok: 0 errors",
		MemoBytes:    []byte{9, 9},
	}
	got, err := core.DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cp) || !bytes.Equal(got.MemoBytes, cp.MemoBytes) || got.CheckSummary != cp.CheckSummary {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, cp)
	}
	// Truncations fail cleanly, never panic.
	enc := cp.Encode()
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := core.DecodeCheckpoint(enc[:cut]); err == nil {
			t.Fatalf("truncated checkpoint at %d decoded successfully", cut)
		}
	}
	if _, err := core.DecodeCheckpoint([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
	bad := *cp
	bad.Phase = "lunch"
	if _, err := core.DecodeCheckpoint(bad.Encode()); err == nil {
		t.Fatal("unknown phase accepted")
	}
}
