// FuzzSynthesize: native Go fuzzing over the whole pipeline. The input
// space is the RandomProgram generator's seed plus rank/phase selectors;
// the property is the paper's central claim — any program the runtime can
// execute synthesizes into a proxy that verifies clean and replays with
// the original's exact per-rank call counts and comparable execution
// time. The seed corpus lives in testdata/fuzz/FuzzSynthesize; CI runs a
// 20-second smoke (`go test -fuzz=FuzzSynthesize -fuzztime=20s`), and
// `go test` alone always replays the committed corpus.
package core_test

import (
	"math"
	"testing"

	"siesta/internal/core"
	"siesta/internal/proxy"
)

func FuzzSynthesize(f *testing.F) {
	// Seeds mirror the deterministic round-trip suite plus corner shapes:
	// one phase, max phases, each rank count, negative and large seeds.
	f.Add(int64(1), byte(0), byte(11))
	f.Add(int64(2), byte(1), byte(5))
	f.Add(int64(3), byte(2), byte(7))
	f.Add(int64(17), byte(0), byte(0))
	f.Add(int64(-9), byte(1), byte(3))
	f.Add(int64(1<<40), byte(2), byte(9))

	f.Fuzz(func(t *testing.T, seed int64, rankSel, phaseSel byte) {
		ranks := 4 + int(rankSel%3)*2  // 4, 6 or 8
		phases := 1 + int(phaseSel%12) // 1..12

		fn := proxy.RandomProgram(seed, phases)
		res, err := core.Synthesize(fn, core.Options{
			Ranks: ranks, Seed: uint64(seed) + 1, Parallelism: 2,
		})
		if err != nil {
			t.Fatalf("seed=%d ranks=%d phases=%d: synthesize: %v", seed, ranks, phases, err)
		}

		// The static gate must pass with zero errors: RandomProgram only
		// emits well-formed SPMD communication.
		if res.Check == nil {
			t.Fatal("check report missing")
		}
		if res.Check.HasErrors() {
			t.Fatalf("seed=%d ranks=%d phases=%d: verifier found errors:\n%s",
				seed, ranks, phases, res.Check)
		}

		rep, err := res.RunProxy(nil, nil)
		if err != nil {
			t.Fatalf("seed=%d ranks=%d phases=%d: replay: %v", seed, ranks, phases, err)
		}
		for i := range res.BaselineRun.Ranks {
			if rep.Ranks[i].Calls != res.BaselineRun.Ranks[i].Calls {
				t.Errorf("seed=%d ranks=%d phases=%d rank %d: %d replay calls vs %d original",
					seed, ranks, phases, i, rep.Ranks[i].Calls, res.BaselineRun.Ranks[i].Calls)
			}
		}
		// Generous time bound: the deterministic suite holds 30%; under
		// fuzz-chosen shapes allow 50% before calling it a regression.
		orig := float64(res.BaselineRun.ExecTime)
		got := float64(rep.ExecTime)
		if orig > 0 {
			if rel := math.Abs(got-orig) / orig; rel > 0.50 {
				t.Errorf("seed=%d ranks=%d phases=%d: time error %.1f%% (proxy %v, orig %v)",
					seed, ranks, phases, rel*100, rep.ExecTime, res.BaselineRun.ExecTime)
			}
		}
		// Structural sanity of the generated C.
		src := res.Generated.CSource()
		open, closed := 0, 0
		for _, ch := range src {
			switch ch {
			case '{':
				open++
			case '}':
				closed++
			}
		}
		if open == 0 || open != closed {
			t.Errorf("seed=%d: generated C has unbalanced braces (%d open, %d close)",
				seed, open, closed)
		}
	})
}
