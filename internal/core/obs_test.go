// Observability integration tests: a traced 16-rank CG synthesis must
// produce the full phase-span ladder, baseline + replay timelines whose
// per-rank busy totals agree with the runtime's own accounting to within
// a virtual nanosecond, and a Chrome trace_event export that validates
// against the schema with every message edge paired.
package core_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/obs"
)

// synthesizeTraced runs one observed CG synthesis (plus proxy replay) and
// returns the result and its tracer.
func synthesizeTraced(t testing.TB, ranks int, tracer *obs.Tracer) *core.Result {
	t.Helper()
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// DisableOverlap pins the ordered five-phase ladder this test asserts;
	// the overlapped ladder (with its warmup span) is covered by the
	// metamorphic observability test.
	res, err := core.Synthesize(fn, core.Options{Ranks: ranks, Seed: 1, Tracer: tracer, DisableOverlap: true})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return res
}

func TestTracedSynthesisCG16(t *testing.T) {
	tracer := obs.New()
	res := synthesizeTraced(t, 16, tracer)
	if _, err := res.RunProxy(nil, nil); err != nil {
		t.Fatalf("proxy replay: %v", err)
	}

	// Phase ladder: every pipeline stage, in order, with its attributes.
	phases := tracer.Phases()
	wantPhases := []string{"baseline", "trace", "merge", "check", "codegen"}
	if len(phases) != len(wantPhases) {
		t.Fatalf("got %d phase spans %v, want %v", len(phases), phaseNames(phases), wantPhases)
	}
	for i, want := range wantPhases {
		if phases[i].Name != want {
			t.Fatalf("phase ladder %v, want %v", phaseNames(phases), wantPhases)
		}
		attrs := attrMap(phases[i].Attrs)
		if attrs["ranks"] != int64(16) {
			t.Errorf("phase %s: ranks attr = %v, want 16", want, attrs["ranks"])
		}
		if _, ok := attrs["parallelism"]; !ok {
			t.Errorf("phase %s: missing parallelism attr", want)
		}
	}
	traceAttrs := attrMap(phases[1].Attrs)
	if traceAttrs["events"] != int64(res.Trace.TotalEvents()) {
		t.Errorf("trace phase events attr = %v, want %d", traceAttrs["events"], res.Trace.TotalEvents())
	}
	if traceAttrs["raw_bytes"] != int64(res.Trace.RawSize()) {
		t.Errorf("trace phase raw_bytes attr = %v, want %d", traceAttrs["raw_bytes"], res.Trace.RawSize())
	}
	if got := attrMap(phases[4].Attrs)["size_c"]; got != int64(res.Generated.SizeC) {
		t.Errorf("codegen phase size_c attr = %v, want %d", got, res.Generated.SizeC)
	}

	// Timelines: the baseline run and the proxy replay, 16 rank tracks each.
	tls := tracer.Timelines()
	if len(tls) != 2 || tls[0].Name() != "baseline" || tls[1].Name() != "replay" {
		t.Fatalf("timelines = %v, want [baseline replay]", timelineNames(tls))
	}
	for _, tl := range tls {
		if tl.NumRanks() != 16 {
			t.Fatalf("timeline %s has %d ranks, want 16", tl.Name(), tl.NumRanks())
		}
		if len(tl.Events()) == 0 {
			t.Fatalf("timeline %s recorded no events", tl.Name())
		}
	}

	// vtime agreement: the baseline timeline's per-rank comm/compute sums
	// must match the runtime's CommTime/ComputeTime within a nanosecond.
	const tol = 1e-9
	for i, rr := range res.BaselineRun.Ranks {
		comm, compute := tls[0].BusyTotals(i)
		if d := math.Abs(comm.Seconds() - rr.CommTime.Seconds()); d > tol {
			t.Errorf("rank %d: timeline comm %v vs CommTime %v (|Δ| = %.3g s)", i, comm, rr.CommTime, d)
		}
		if d := math.Abs(compute.Seconds() - rr.ComputeTime.Seconds()); d > tol {
			t.Errorf("rank %d: timeline compute %v vs ComputeTime %v (|Δ| = %.3g s)", i, compute, rr.ComputeTime, d)
		}
	}

	// The Chrome export must validate against the trace_event schema with
	// every flow edge paired and every track named.
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	validateChromeTrace(t, buf.Bytes(), len(tls))
}

func phaseNames(events []obs.Event) []string {
	var out []string
	for _, ev := range events {
		out = append(out, ev.Name)
	}
	return out
}

func timelineNames(tls []*obs.Timeline) []string {
	var out []string
	for _, tl := range tls {
		out = append(out, tl.Name())
	}
	return out
}

func attrMap(attrs []obs.Attr) map[string]any {
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// validateChromeTrace decodes a trace_event JSON document and asserts the
// schema subset the exporter promises: the envelope, required per-event
// keys, phase-specific fields (dur on "X", id on "s"/"f", bp on "f",
// args.name on "M"), finite timestamps, paired flow ids, and one named
// process per expected track.
func validateChromeTrace(t *testing.T, data []byte, wantTimelines int) {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	procNames := map[float64]bool{}
	flowStarts, flowEnds := map[string]int{}, map[string]int{}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			args, _ := ev["args"].(map[string]any)
			if _, ok := args["name"].(string); !ok {
				t.Fatalf("metadata event %d has no args.name: %v", i, ev)
			}
			if ev["name"] == "process_name" {
				procNames[ev["pid"].(float64)] = true
			}
			continue
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
				t.Fatalf("complete event %d has bad dur: %v", i, ev)
			}
		case "s", "f":
			id, ok := ev["id"].(string)
			if !ok || id == "" {
				t.Fatalf("flow event %d has no string id: %v", i, ev)
			}
			if ev["ph"] == "s" {
				flowStarts[id]++
			} else {
				if ev["bp"] != "e" {
					t.Fatalf("flow-end %d missing bp=e binding: %v", i, ev)
				}
				flowEnds[id]++
			}
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant event %d missing thread scope: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected ph %v", i, ev["ph"])
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 || math.IsNaN(ts) || math.IsInf(ts, 0) {
			t.Fatalf("event %d has bad ts: %v", i, ev)
		}
	}
	// Track inventory: pid 0 (pipeline) plus one process per timeline.
	for pid := 0; pid <= wantTimelines; pid++ {
		if !procNames[float64(pid)] {
			t.Errorf("no process_name metadata for pid %d", pid)
		}
	}
	if len(flowStarts) == 0 {
		t.Fatal("a CG trace must contain message edges; found none")
	}
	for id, n := range flowStarts {
		if n != 1 || flowEnds[id] != 1 {
			t.Errorf("flow %s: %d starts, %d ends (want 1/1)", id, n, flowEnds[id])
		}
	}
	for id := range flowEnds {
		if flowStarts[id] != 1 {
			t.Errorf("flow %s has an end but no start", id)
		}
	}
}

// BenchmarkSpanOverheadDisabled measures a full synthesis with no tracer
// attached — the baseline every instrumented build is compared against.
// The acceptance bar for the observability layer is that this stays
// within noise (≤ 2%) of the pre-instrumentation pipeline; compare with
// BenchmarkSpanOverheadEnabled via benchstat to price the enabled path.
func BenchmarkSpanOverheadDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synthesizeTraced(b, 8, nil)
	}
}

// BenchmarkSpanOverheadEnabled is the same synthesis with phase spans and
// both runtime timelines recording.
func BenchmarkSpanOverheadEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synthesizeTraced(b, 8, obs.New())
	}
}
