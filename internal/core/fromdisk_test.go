package core

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// TestPipelineFromDecodedTrace exercises the cmd/siesta workflow where the
// trace is written to disk and the proxy is generated later from the
// decoded bytes (which carry no timing information — unscaled generation
// must work without it).
func TestPipelineFromDecodedTrace(t *testing.T) {
	spec, err := apps.ByName("MG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 3, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(8, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: 8, Interceptor: rec, NoiseSigma: 0.004, Seed: 31})
	orig, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	live := rec.Trace("A", "openmpi")

	// Round-trip through the on-disk format.
	decoded, err := trace.Decode(live.Encode())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := merge.Build(decoded, merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := codegen.Generate(prog, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.New(gen).Run(mpi.Config{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Ranks {
		if res.Ranks[i].Calls != orig.Ranks[i].Calls {
			t.Errorf("rank %d: %d calls vs %d", i, res.Ranks[i].Calls, orig.Ranks[i].Calls)
		}
	}
	if e := TimeError(float64(res.ExecTime), float64(orig.ExecTime)); e > 0.15 {
		t.Errorf("decoded-trace proxy time error %.1f%%", e*100)
	}

	// Scaled generation needs timing samples; from a decoded trace the
	// sample collector yields nothing and generation must still succeed
	// (volumes simply stay unshrunk).
	sgen, err := codegen.Generate(prog, codegen.Options{
		Scale:       10,
		CommSamples: codegen.CollectCommSamples(decoded),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.New(sgen).Run(mpi.Config{Seed: 33}); err != nil {
		t.Fatal(err)
	}
}
