// Package core is Siesta's top-level pipeline (paper Fig. 1): given an MPI
// application (a function over the simulated runtime), it traces
// communication and computation events, searches computation proxies,
// extracts intra- and inter-process grammars, and generates a synthetic
// proxy-app — plus the error metrics the evaluation section reports.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"siesta/internal/blocks"
	"siesta/internal/check"
	"siesta/internal/codegen"
	"siesta/internal/fault"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/obs"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/proxy"
	"siesta/internal/qp"
	"siesta/internal/trace"
	"siesta/internal/vtime"
)

// ErrCanceled matches any synthesis error caused by context cancellation
// or a wall-clock deadline: errors.Is(err, ErrCanceled) holds for the
// error Synthesize (or Result.RunProxy) returns when Options.Context fires
// mid-run. It aliases mpi.ErrCanceled so callers at either layer agree.
var ErrCanceled = mpi.ErrCanceled

// Options configures one synthesis run.
type Options struct {
	// Context, when non-nil, bounds the whole pipeline in wall-clock
	// terms: canceling it (or passing its deadline) stops the simulated
	// ranks promptly and surfaces a typed error matching ErrCanceled.
	// It participates in neither JSON encoding nor OptionsFingerprint —
	// two runs differing only in Context are the same synthesis.
	Context context.Context

	// Tracer, when non-nil, records the run's observability data: one
	// wall-clock span per pipeline phase (baseline, trace, merge, check,
	// codegen) with rank-count, parallelism, and artifact-size attributes,
	// plus per-rank virtual-time timelines for the baseline run (and the
	// proxy replay, via Result.RunProxy). The server attaches an observer
	// for per-phase structured logs and metrics; the trace CLI verb
	// exports it. Recording never perturbs the simulated runs' virtual
	// times. Like Context, it is excluded from JSON encoding and the
	// fingerprint — two runs differing only in Tracer are the same
	// synthesis.
	Tracer *obs.Tracer

	// Execution environment for the traced run.
	Platform   *platform.Platform // default platform.A
	Impl       *netmodel.Impl     // default OpenMPI
	Ranks      int                // required
	NoiseSigma float64            // counter noise; default 0.004
	// RunVariation is run-to-run environmental jitter (default 2%); it is
	// what separates two executions of the same binary on a real cluster
	// and sets the error floor every proxy comparison sits on. Negative
	// disables it.
	RunVariation float64
	Seed         uint64

	// Faults optionally injects failures (crashes, message drops/delays,
	// stragglers, seeded chaos) into every run the pipeline performs —
	// baseline, traced, and proxy replay — so a proxy's degradation under
	// faults can be compared against the original's. Deadline bounds each
	// run's virtual time; past it the runtime aborts with a DeadlockError
	// naming every blocked rank. Zero values disable both.
	Faults   *fault.Plan
	Deadline vtime.Duration

	// Parallelism bounds the worker count for the synthesis pipeline's
	// parallel stages: the overlapped baseline/traced simulated runs, the
	// tree-reduction terminal merge, per-rank grammar inference, and the
	// losslessness check. 0 (or negative) selects GOMAXPROCS; 1 runs fully
	// sequentially. Like Context, it participates in neither JSON encoding
	// nor OptionsFingerprint: the parallel stages are deterministic by
	// construction, so two runs differing only in Parallelism produce
	// byte-identical programs and proxies.
	Parallelism int

	// DisableOverlap forces the baseline and traced simulated runs to
	// execute sequentially even when Parallelism > 1. The two worlds share
	// seeds but no state, so overlapping them never changes any output;
	// the knob exists so benchmarks can isolate the overlap's contribution
	// and tests can pin overlap-on against overlap-off byte-for-byte. Like
	// Parallelism it is excluded from JSON encoding and the fingerprint.
	DisableOverlap bool

	// SearchMemo caches computation-proxy QP solves (see blocks.Memo).
	// nil selects the process-global blocks.DefaultMemo. Memoization never
	// changes results, so this too is excluded from the fingerprint.
	SearchMemo *blocks.Memo

	// Checkpointer, when non-nil, persists canonical pipeline state at
	// completed phase boundaries (post-trace, post-merge, post-search) so
	// an interrupted synthesis can resume instead of recomputing. A Save
	// failure aborts the run with a *CheckpointError, which callers should
	// treat as transient. Checkpointing never changes the synthesized
	// output, so like Context and Tracer it participates in neither JSON
	// encoding nor OptionsFingerprint.
	Checkpointer Checkpointer
	// Resume, when non-nil, is a checkpoint from an earlier attempt of
	// the same synthesis. It is honored only when its fingerprint matches
	// these options and its payload decodes cleanly; any mismatch or
	// corruption silently degrades to a full recompute. Resumed phases are
	// skipped: the simulated runs from PhaseTrace on, grammar merging from
	// PhaseMerge on (static verification always re-runs — it is cheap and
	// keeps the C header stamp identical), and the QP solves at
	// PhaseSearch answer from the imported memo. Excluded from the
	// fingerprint.
	Resume *Checkpoint

	// Pipeline knobs.
	Trace trace.Config
	Merge merge.Options
	// DisableCheck skips the post-merge static verification gate. By
	// default every merged program is verified (point-to-point matching,
	// collective consistency, handle lifecycles, static deadlock search)
	// before code generation, and error-severity findings abort the
	// pipeline: a program that fails the gate would synthesize a proxy
	// that hangs or diverges on replay.
	DisableCheck bool
	Scale        float64 // proxy shrink factor; 0/1 = unscaled
	// BenchNoise controls micro-benchmark noise for the B matrix; when
	// nil a small default noise tied to Seed is used.
	BenchNoise *perfmodel.Noise
}

func (o Options) withDefaults() Options {
	if o.Platform == nil {
		o.Platform = platform.A
	}
	if o.Impl == nil {
		o.Impl = netmodel.OpenMPI
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 0.004
	}
	if o.RunVariation == 0 {
		o.RunVariation = 0.02
	} else if o.RunVariation < 0 {
		o.RunVariation = 0
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.BenchNoise == nil {
		o.BenchNoise = perfmodel.NewNoise(0.002, o.Seed^0xb10c5)
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Merge.Parallelism == 0 {
		o.Merge.Parallelism = o.Parallelism
	}
	return o
}

// Result bundles everything one synthesis produces.
type Result struct {
	Opts Options

	// BaselineRun is the uninstrumented execution (ground truth);
	// TracedRun is the instrumented execution the trace came from.
	BaselineRun *mpi.RunResult
	TracedRun   *mpi.RunResult
	// Overhead is the relative slowdown tracing imposed (Table 3).
	Overhead float64

	Trace     *trace.Trace
	Program   *merge.Program
	Check     *check.Report // nil when Options.DisableCheck
	Generated *codegen.Generated
	Proxy     *proxy.App

	// ResumedFrom names the checkpoint phase this run resumed from, ""
	// for an uninterrupted run. Resumed runs carry nil BaselineRun and
	// TracedRun (the simulated executions were skipped); Overhead is
	// restored from the checkpoint.
	ResumedFrom string
}

// Synthesize runs the full pipeline on the application.
func Synthesize(app func(*mpi.Rank), opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Ranks <= 0 {
		return nil, fmt.Errorf("core: Ranks must be positive")
	}
	res := &Result{Opts: opts}
	tr := opts.Tracer
	// cur is the in-flight phase span; phase ends it and opens the next.
	// All obs methods are nil-receiver safe, and the attribute list is only
	// built when a tracer is attached, so the disabled path costs one nil
	// check per phase and allocates nothing (pinned by the overhead
	// benchmark in obs_test.go).
	var cur *obs.Span
	phase := func(name string) error {
		cur.End()
		cur = nil
		if tr != nil {
			cur = tr.Phase(name,
				obs.Int("ranks", opts.Ranks),
				obs.Int("parallelism", opts.Parallelism))
		}
		// The simulated runs poll the context themselves; this check
		// covers the pure phases (merge, check, codegen) between them.
		if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
			return &mpi.CancelError{Cause: context.Cause(ctx)}
		}
		return nil
	}
	defer func() { cur.End() }()

	// Checkpoint/restart support (DESIGN.md §11): validate any resume
	// checkpoint up front — a stale fingerprint or corrupt payload forces
	// a clean recompute rather than an error — and prepare the save hook
	// for the phase boundaries below.
	var fp string
	if opts.Checkpointer != nil || opts.Resume != nil {
		fp = OptionsFingerprint(opts)
	}
	resume, resumeTrace, resumeProg := validateResume(opts.Resume, fp)
	var traceBytes, progBytes []byte // canonical payloads, encoded at most once
	if resume != nil {
		traceBytes, progBytes = resume.TraceBytes, resume.ProgramBytes
	}
	save := func(boundary string, build func(cp *Checkpoint)) error {
		if opts.Checkpointer == nil {
			return nil
		}
		var sp *obs.Span
		if tr != nil {
			sp = tr.Phase("checkpoint", obs.String("boundary", boundary))
		}
		cp := &Checkpoint{Fingerprint: fp, Phase: boundary, Overhead: res.Overhead}
		build(cp)
		err := opts.Checkpointer.Save(cp)
		if sp != nil {
			sp.SetAttrs(obs.Int("bytes",
				len(cp.TraceBytes)+len(cp.ProgramBytes)+len(cp.MemoBytes)))
		}
		sp.End()
		if err != nil {
			return &CheckpointError{Phase: boundary, Err: err}
		}
		return nil
	}

	var err error
	// bmatrix is the micro-benchmark B matrix codegen searches against.
	// Overlapped runs warm it concurrently with the simulations; otherwise
	// it is measured lazily at the codegen phase. Either way it is the
	// first (and only) consumer of opts.BenchNoise, so the measured matrix
	// is identical in both schedules.
	var bmatrix *qp.Matrix
	if resume != nil {
		// The simulated executions are already captured in the encoded
		// trace; restore it and the overhead they measured.
		if err := phase("resume"); err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		if tr != nil {
			cur.SetAttrs(
				obs.String("from", resume.Phase),
				obs.Bool("resumed", true))
		}
		res.Trace = resumeTrace
		res.Overhead = resume.Overhead
		res.ResumedFrom = resume.Phase
	} else {
		baseCfg := mpi.Config{
			Platform: opts.Platform, Impl: opts.Impl, Size: opts.Ranks,
			NoiseSigma: opts.NoiseSigma, RunVariation: opts.RunVariation, Seed: opts.Seed,
			Faults: opts.Faults, Deadline: opts.Deadline, Ctx: opts.Context,
		}
		if tl := tr.NewTimeline("baseline", opts.Ranks); tl != nil {
			baseCfg.Interceptor = tl
		}
		rec := trace.NewRecorder(opts.Ranks, opts.Trace)
		tracedCfg := mpi.Config{
			Platform: opts.Platform, Impl: opts.Impl, Size: opts.Ranks,
			NoiseSigma: opts.NoiseSigma, RunVariation: opts.RunVariation,
			Seed: opts.Seed, Interceptor: rec,
			Faults: opts.Faults, Deadline: opts.Deadline, Ctx: opts.Context,
		}

		if opts.Parallelism > 1 && !opts.DisableOverlap {
			// Overlapped runs: the baseline and traced worlds share seeds
			// but no mutable state, so they execute concurrently — the
			// segment costs max(baseline, traced) instead of their sum —
			// while a third worker warms the codegen B matrix. Each run
			// still owns a full phase span; the spans overlap in wall
			// clock and are tagged so exports and metrics can tell.
			cur.End()
			cur = nil
			if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
				return nil, fmt.Errorf("core: baseline run: %w",
					&mpi.CancelError{Cause: context.Cause(ctx)})
			}
			var baseSpan, traceSpan, warmSpan *obs.Span
			if tr != nil {
				baseSpan = tr.Phase("baseline",
					obs.Int("ranks", opts.Ranks),
					obs.Int("parallelism", opts.Parallelism),
					obs.Bool("overlap", true))
				traceSpan = tr.Phase("trace",
					obs.Int("ranks", opts.Ranks),
					obs.Int("parallelism", opts.Parallelism),
					obs.Bool("overlap", true))
				warmSpan = tr.Phase("warmup",
					obs.Int("parallelism", opts.Parallelism),
					obs.Bool("overlap", true))
			}
			var wg sync.WaitGroup
			var baseErr, traceErr error
			wg.Add(3)
			go func() {
				defer wg.Done()
				defer baseSpan.End()
				var e error
				if res.BaselineRun, e = mpi.NewWorld(baseCfg).Run(app); e != nil {
					baseErr = fmt.Errorf("core: baseline run: %w", e)
				}
			}()
			go func() {
				defer wg.Done()
				defer traceSpan.End()
				var e error
				if res.TracedRun, e = mpi.NewWorld(tracedCfg).Run(app); e != nil {
					traceErr = fmt.Errorf("core: traced run: %w", e)
					return
				}
				res.Trace = rec.Trace(opts.Platform.Name, opts.Impl.Name)
				if tr != nil {
					traceSpan.SetAttrs(
						obs.Int("events", res.Trace.TotalEvents()),
						obs.Int("raw_bytes", res.Trace.RawSize()))
				}
			}()
			go func() {
				defer wg.Done()
				defer warmSpan.End()
				bmatrix = blocks.MeasureB(opts.Platform, opts.BenchNoise)
			}()
			wg.Wait()
			if baseErr != nil {
				return nil, baseErr
			}
			if traceErr != nil {
				return nil, traceErr
			}
			res.Overhead = relDiff(float64(res.TracedRun.ExecTime), float64(res.BaselineRun.ExecTime))
		} else {
			// Ground-truth run, without instrumentation (the timeline
			// observer charges no virtual-time cost, so the run stays
			// bit-identical).
			if err := phase("baseline"); err != nil {
				return nil, fmt.Errorf("core: baseline run: %w", err)
			}
			base := mpi.NewWorld(baseCfg)
			if res.BaselineRun, err = base.Run(app); err != nil {
				return nil, fmt.Errorf("core: baseline run: %w", err)
			}

			// Traced run: same seeds, plus the PMPI recorder.
			if err := phase("trace"); err != nil {
				return nil, fmt.Errorf("core: traced run: %w", err)
			}
			traced := mpi.NewWorld(tracedCfg)
			if res.TracedRun, err = traced.Run(app); err != nil {
				return nil, fmt.Errorf("core: traced run: %w", err)
			}
			res.Overhead = relDiff(float64(res.TracedRun.ExecTime), float64(res.BaselineRun.ExecTime))
			res.Trace = rec.Trace(opts.Platform.Name, opts.Impl.Name)
			if tr != nil {
				cur.SetAttrs(
					obs.Int("events", res.Trace.TotalEvents()),
					obs.Int("raw_bytes", res.Trace.RawSize()))
			}
		}
		if err := save(PhaseTrace, func(cp *Checkpoint) {
			traceBytes = res.Trace.Encode()
			cp.TraceBytes = traceBytes
		}); err != nil {
			return nil, err
		}
	}

	// Grammar extraction and merging; a post-merge checkpoint restores
	// the program directly.
	if resumeProg != nil {
		res.Program = resumeProg
	} else {
		if err := phase("merge"); err != nil {
			return nil, fmt.Errorf("core: merge: %w", err)
		}
		if res.Program, err = merge.Build(res.Trace, opts.Merge); err != nil {
			return nil, fmt.Errorf("core: merge: %w", err)
		}
	}

	// Static verification gate: the traced run completed, so the merged
	// program must verify cleanly — an error here means grammar extraction
	// or merging corrupted the communication structure, and the proxy
	// would hang or diverge on replay.
	if !opts.DisableCheck {
		if err := phase("check"); err != nil {
			return nil, fmt.Errorf("core: check: %w", err)
		}
		rep, err := check.Verify(res.Program, check.Options{
			ExactBytes:    true,
			AbsoluteRanks: opts.Trace.AbsoluteRanks,
		})
		if err != nil {
			return nil, fmt.Errorf("core: check: %w", err)
		}
		res.Check = rep
		if rep.HasErrors() {
			first := ""
			for _, d := range rep.Diags {
				if d.Severity >= check.Error {
					first = d.String()
					break
				}
			}
			return nil, fmt.Errorf("core: merged program failed static verification (%s); first: %s",
				rep.Summary(), first)
		}
	}
	if resumeProg == nil {
		if err := save(PhaseMerge, func(cp *Checkpoint) {
			if traceBytes == nil {
				traceBytes = res.Trace.Encode()
			}
			progBytes = res.Program.Encode()
			cp.TraceBytes, cp.ProgramBytes = traceBytes, progBytes
			if res.Check != nil {
				cp.CheckSummary = res.Check.Summary()
			}
		}); err != nil {
			return nil, err
		}
	}

	// Code generation. A post-search checkpoint pre-loads the memo so
	// every cluster's QP solve is a cache hit; memo purity guarantees the
	// replayed solutions are byte-identical to cold ones.
	memo := opts.SearchMemo
	if resume.covers(PhaseSearch) && len(resume.MemoBytes) > 0 {
		if memo == nil {
			memo = blocks.DefaultMemo
		}
		// An undecodable snapshot degrades to cold solves; results are
		// unchanged either way.
		memo.Import(resume.MemoBytes)
	}
	if err := phase("codegen"); err != nil {
		return nil, fmt.Errorf("core: generate: %w", err)
	}
	genOpts := codegen.Options{
		Platform:   opts.Platform,
		Scale:      opts.Scale,
		BenchNoise: opts.BenchNoise,
		BMatrix:    bmatrix, // non-nil after an overlapped run's warmup
		SearchMemo: memo,
		Check:      res.Check,
	}
	if opts.Scale > 1 {
		genOpts.CommSamples = codegen.CollectCommSamples(res.Trace)
	}
	if res.Generated, err = codegen.Generate(res.Program, genOpts); err != nil {
		return nil, fmt.Errorf("core: generate: %w", err)
	}
	if tr != nil {
		cur.SetAttrs(obs.Int("size_c", res.Generated.SizeC))
	}
	if !resume.covers(PhaseSearch) {
		if err := save(PhaseSearch, func(cp *Checkpoint) {
			if traceBytes == nil {
				traceBytes = res.Trace.Encode()
			}
			if progBytes == nil {
				progBytes = res.Program.Encode()
			}
			cp.TraceBytes, cp.ProgramBytes = traceBytes, progBytes
			if res.Check != nil {
				cp.CheckSummary = res.Check.Summary()
			}
			m := memo
			if m == nil {
				m = blocks.DefaultMemo
			}
			cp.MemoBytes = m.Export()
		}); err != nil {
			return nil, err
		}
	}
	res.Proxy = proxy.New(res.Generated)
	return res, nil
}

// RunProxy executes the generated proxy in a given environment (defaulting
// to the generation environment) and returns the run result.
func (r *Result) RunProxy(p *platform.Platform, im *netmodel.Impl) (*mpi.RunResult, error) {
	if p == nil {
		p = r.Opts.Platform
	}
	if im == nil {
		im = r.Opts.Impl
	}
	cfg := mpi.Config{
		Platform: p, Impl: im,
		NoiseSigma: r.Opts.NoiseSigma, RunVariation: r.Opts.RunVariation,
		Seed:   r.Opts.Seed + 1,
		Faults: r.Opts.Faults, Deadline: r.Opts.Deadline, Ctx: r.Opts.Context,
	}
	// The replay timeline gives the proxy the same per-rank observability
	// as the baseline, so the two can be compared side by side in a viewer.
	if tl := r.Opts.Tracer.NewTimeline("replay", r.Generated.Prog.NumRanks); tl != nil {
		cfg.Interceptor = tl
	}
	return r.Proxy.Run(cfg)
}

// relDiff is |a−b|/|b| with a zero-safe denominator.
func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TimeError is the paper's execution-time metric 100×|T_gen−T_app|/T_app,
// as a fraction (not percent).
func TimeError(gen, app float64) float64 { return relDiff(gen, app) }

// ReplayError is Table 3's "Error" column: the mean relative error between
// the original program and the proxy across all six performance metrics and
// the per-rank execution time, averaged over all processes.
func ReplayError(orig, prox *mpi.RunResult) float64 {
	if len(orig.Ranks) != len(prox.Ranks) {
		return 1
	}
	var sum float64
	var n int
	for i := range orig.Ranks {
		o, p := &orig.Ranks[i], &prox.Ranks[i]
		for m := perfmodel.Metric(0); m < perfmodel.NumMetrics; m++ {
			if o.Compute[m] == 0 {
				continue
			}
			sum += relDiff(p.Compute[m], o.Compute[m])
			n++
		}
		sum += relDiff(float64(p.FinishTime), float64(o.FinishTime))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ScaleBack multiplies a scaled proxy's counters and times back up by the
// scaling factor so it can be compared against the unscaled original with
// ReplayError.
func ScaleBack(prox *mpi.RunResult, scale float64) *mpi.RunResult {
	adj := &mpi.RunResult{Ranks: make([]mpi.RankResult, len(prox.Ranks))}
	for i := range prox.Ranks {
		adj.Ranks[i] = prox.Ranks[i]
		adj.Ranks[i].Compute = prox.Ranks[i].Compute.Scale(scale)
		adj.Ranks[i].FinishTime = vtime.Time(float64(prox.Ranks[i].FinishTime) * scale)
	}
	adj.ExecTime = vtime.Duration(float64(prox.ExecTime) * scale)
	return adj
}
