package core

import (
	"context"
	"fmt"

	"siesta/internal/check"
	"siesta/internal/codegen"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/obs"
	"siesta/internal/proxy"
)

// Streaming synthesis entry (DESIGN.md §15). The batch pipeline's front
// half — run the app, record, decode a whole trace — is replaced by a
// merge.Ingest session whose rank streams arrived over the wire; the back
// half (merge → static check → codegen → proxy) is the same code
// Synthesize runs, with the same options, so for any trace the streamed
// and batch paths synthesize byte-identical programs, C sources, and
// proxies. core/streaming_diff_test.go holds that contract.

// NewIngest opens a streaming merge session sized and configured for one
// synthesis: the session inherits opts.Merge exactly as Synthesize would
// apply it (defaults included), which is what makes a later
// SynthesizeIngest equivalent to Synthesize over the equivalent trace.
// Scale > 1 is rejected up front: comm scaling calibrates against decoded
// trace timings, which a streamed session deliberately never holds.
func NewIngest(numRanks int, opts Options) (*merge.Ingest, error) {
	opts.Ranks = numRanks
	opts = opts.withDefaults()
	if numRanks <= 0 {
		return nil, fmt.Errorf("core: ingest needs a positive rank count, got %d", numRanks)
	}
	if opts.Scale > 1 {
		return nil, fmt.Errorf("core: ingest does not support Scale > 1 (comm scaling needs trace timings)")
	}
	return merge.NewIngest(numRanks, opts.Platform.Name, opts.Impl.Name, opts.Merge)
}

// SynthesizeIngest commits a streaming ingest session: it builds the
// merged program from the session's rank streams and runs the batch
// pipeline's back half over it — static verification gate, code
// generation, proxy construction — with exactly Synthesize's option
// handling. The session is consumed (its spill files are released) even
// on error. The returned Result carries no Trace and no simulated runs:
// those belong to whoever recorded the streams.
func SynthesizeIngest(in *merge.Ingest, opts Options) (*Result, error) {
	opts.Ranks = in.NumRanks()
	opts = opts.withDefaults()
	if opts.Scale > 1 {
		in.Close()
		return nil, fmt.Errorf("core: ingest does not support Scale > 1 (comm scaling needs trace timings)")
	}
	res := &Result{Opts: opts}
	tr := opts.Tracer
	var cur *obs.Span
	phase := func(name string) error {
		cur.End()
		cur = nil
		if tr != nil {
			cur = tr.Phase(name,
				obs.Int("ranks", opts.Ranks),
				obs.Int("parallelism", opts.Parallelism))
		}
		if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
			return &mpi.CancelError{Cause: context.Cause(ctx)}
		}
		return nil
	}
	defer func() { cur.End() }()

	if err := phase("merge"); err != nil {
		in.Close()
		return nil, fmt.Errorf("core: merge: %w", err)
	}
	var err error
	if res.Program, err = in.Build(); err != nil {
		return nil, fmt.Errorf("core: merge: %w", err)
	}

	if !opts.DisableCheck {
		if err := phase("check"); err != nil {
			return nil, fmt.Errorf("core: check: %w", err)
		}
		rep, err := check.Verify(res.Program, check.Options{
			ExactBytes:    true,
			AbsoluteRanks: opts.Trace.AbsoluteRanks,
		})
		if err != nil {
			return nil, fmt.Errorf("core: check: %w", err)
		}
		res.Check = rep
		if rep.HasErrors() {
			first := ""
			for _, d := range rep.Diags {
				if d.Severity >= check.Error {
					first = d.String()
					break
				}
			}
			return nil, fmt.Errorf("core: merged program failed static verification (%s); first: %s",
				rep.Summary(), first)
		}
	}

	if err := phase("codegen"); err != nil {
		return nil, fmt.Errorf("core: generate: %w", err)
	}
	// Identical genOpts to Synthesize's: BMatrix stays nil (no overlapped
	// warmup here) and is measured lazily inside Generate from the same
	// BenchNoise, which the determinism suite pins as byte-identical to the
	// warmed path.
	genOpts := codegen.Options{
		Platform:   opts.Platform,
		Scale:      opts.Scale,
		BenchNoise: opts.BenchNoise,
		SearchMemo: opts.SearchMemo,
		Check:      res.Check,
	}
	if res.Generated, err = codegen.Generate(res.Program, genOpts); err != nil {
		return nil, fmt.Errorf("core: generate: %w", err)
	}
	if tr != nil {
		cur.SetAttrs(obs.Int("size_c", res.Generated.SizeC))
	}
	res.Proxy = proxy.New(res.Generated)
	return res, nil
}
