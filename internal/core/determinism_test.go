// The determinism suite: parallelism is a throughput knob, never a
// semantics knob. For every built-in application and for a corpus of
// randomly generated programs, synthesis at Parallelism 1, 4 and
// GOMAXPROCS must produce byte-identical encoded programs and C sources,
// and the options fingerprint (the artifact-cache key) must not move.
// CI runs this package under -race, so the test also shakes out data
// races in the tree-reduction merge and the concurrent grammar stages.
package core_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// parallelisms are the worker counts the suite compares. GOMAXPROCS is
// appended so the default configuration is always exercised, whatever
// the runner's core count.
func parallelisms() []int {
	ps := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		ps = append(ps, p)
	}
	return ps
}

func TestSynthesisDeterministicAcrossParallelism(t *testing.T) {
	for _, spec := range apps.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			ranks := 0
			for r := 8; r <= 16; r++ {
				if spec.ValidRanks(r) {
					ranks = r
					break
				}
			}
			if ranks == 0 {
				t.Fatalf("%s supports no rank count in [8,16]", spec.Name)
			}
			fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
			if err != nil {
				t.Fatal(err)
			}

			// Each parallelism level runs with overlapped simulation runs
			// (the default above 1) and with overlap forced off: both are
			// throughput knobs and neither may move a byte of output or
			// the cache key.
			type config struct {
				par       int
				noOverlap bool
			}
			var configs []config
			for _, par := range parallelisms() {
				configs = append(configs, config{par, false})
				if par > 1 {
					configs = append(configs, config{par, true})
				}
			}
			var refProg []byte
			var refSrc, refFP string
			var refTrace *trace.Trace
			for i, c := range configs {
				opts := core.Options{Ranks: ranks, Seed: 1, Parallelism: c.par, DisableOverlap: c.noOverlap}
				res, err := core.Synthesize(fn, opts)
				if err != nil {
					t.Fatalf("Parallelism=%d overlap=%t: %v", c.par, !c.noOverlap, err)
				}
				prog := res.Program.Encode()
				src := res.Generated.CSource()
				fp := core.OptionsFingerprint(res.Opts)
				if i == 0 {
					refProg, refSrc, refFP = prog, src, fp
					refTrace = res.Trace
					continue
				}
				if !bytes.Equal(prog, refProg) {
					t.Errorf("Parallelism=%d overlap=%t: encoded program differs from Parallelism=1", c.par, !c.noOverlap)
				}
				if src != refSrc {
					t.Errorf("Parallelism=%d overlap=%t: generated C source differs from Parallelism=1", c.par, !c.noOverlap)
				}
				if fp != refFP {
					t.Errorf("Parallelism=%d overlap=%t: options fingerprint %s != %s — a throughput knob leaked into the cache key", c.par, !c.noOverlap, fp, refFP)
				}
			}

			// The streamed ingest path is one more configuration of the same
			// synthesis: chunked upload, incremental inference, spill-capable
			// tables — all throughput machinery, none of it may move a byte
			// of output or the cache key.
			for _, par := range parallelisms() {
				opts := core.Options{Ranks: ranks, Seed: 1, Parallelism: par}
				in, err := core.NewIngest(ranks, opts)
				if err != nil {
					t.Fatal(err)
				}
				streamTrace(t, in, refTrace, 512, nil)
				res, err := core.SynthesizeIngest(in, opts)
				if err != nil {
					t.Fatalf("streamed Parallelism=%d: %v", par, err)
				}
				if !bytes.Equal(res.Program.Encode(), refProg) {
					t.Errorf("streamed Parallelism=%d: encoded program differs from batch", par)
				}
				if res.Generated.CSource() != refSrc {
					t.Errorf("streamed Parallelism=%d: generated C source differs from batch", par)
				}
				if fp := core.OptionsFingerprint(res.Opts); fp != refFP {
					t.Errorf("streamed Parallelism=%d: options fingerprint %s != %s — the ingest path leaked into the cache key", par, fp, refFP)
				}
			}
		})
	}
}

// TestMergeDeterministicOnRandomPrograms widens the corpus past the paper
// apps: 20 property-generated programs, each traced once and merged at
// every parallelism level. The encoded program must not depend on the
// worker count.
func TestMergeDeterministicOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ranks := 8
			rec := trace.NewRecorder(ranks, trace.Config{})
			w := mpi.NewWorld(mpi.Config{
				Platform: platform.A, Impl: netmodel.OpenMPI, Size: ranks,
				NoiseSigma: 0.004, Seed: uint64(seed), Interceptor: rec,
			})
			if _, err := w.Run(proxy.RandomProgram(seed, 12)); err != nil {
				t.Fatalf("traced run: %v", err)
			}
			tr := rec.Trace(platform.A.Name, netmodel.OpenMPI.Name)

			var ref []byte
			for i, par := range parallelisms() {
				prog, err := merge.Build(tr, merge.Options{Parallelism: par})
				if err != nil {
					t.Fatalf("Parallelism=%d: %v", par, err)
				}
				enc := prog.Encode()
				if i == 0 {
					ref = enc
				} else if !bytes.Equal(enc, ref) {
					t.Errorf("Parallelism=%d: encoded program differs from Parallelism=1", par)
				}

				// And the streamed merge at the same parallelism: chunked
				// rank streams must reduce to the identical program.
				in, err := merge.NewIngest(ranks, tr.Platform, tr.Impl, merge.Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				streamTrace(t, in, tr, 256, nil)
				sprog, err := in.Build()
				if err != nil {
					t.Fatalf("streamed Parallelism=%d: %v", par, err)
				}
				if !bytes.Equal(sprog.Encode(), ref) {
					t.Errorf("streamed Parallelism=%d: encoded program differs from batch", par)
				}
			}
		})
	}
}
