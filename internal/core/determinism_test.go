// The determinism suite: parallelism is a throughput knob, never a
// semantics knob. For every built-in application and for a corpus of
// randomly generated programs, synthesis at Parallelism 1, 4 and
// GOMAXPROCS must produce byte-identical encoded programs and C sources,
// and the options fingerprint (the artifact-cache key) must not move.
// CI runs this package under -race, so the test also shakes out data
// races in the tree-reduction merge and the concurrent grammar stages.
package core_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/core"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/netmodel"
	"siesta/internal/platform"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// parallelisms are the worker counts the suite compares. GOMAXPROCS is
// appended so the default configuration is always exercised, whatever
// the runner's core count.
func parallelisms() []int {
	ps := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		ps = append(ps, p)
	}
	return ps
}

func TestSynthesisDeterministicAcrossParallelism(t *testing.T) {
	for _, spec := range apps.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			ranks := 0
			for r := 8; r <= 16; r++ {
				if spec.ValidRanks(r) {
					ranks = r
					break
				}
			}
			if ranks == 0 {
				t.Fatalf("%s supports no rank count in [8,16]", spec.Name)
			}
			fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2, WorkScale: 0.05})
			if err != nil {
				t.Fatal(err)
			}

			var refProg []byte
			var refSrc, refFP string
			for i, par := range parallelisms() {
				opts := core.Options{Ranks: ranks, Seed: 1, Parallelism: par}
				res, err := core.Synthesize(fn, opts)
				if err != nil {
					t.Fatalf("Parallelism=%d: %v", par, err)
				}
				prog := res.Program.Encode()
				src := res.Generated.CSource()
				fp := core.OptionsFingerprint(res.Opts)
				if i == 0 {
					refProg, refSrc, refFP = prog, src, fp
					continue
				}
				if !bytes.Equal(prog, refProg) {
					t.Errorf("Parallelism=%d: encoded program differs from Parallelism=1", par)
				}
				if src != refSrc {
					t.Errorf("Parallelism=%d: generated C source differs from Parallelism=1", par)
				}
				if fp != refFP {
					t.Errorf("Parallelism=%d: options fingerprint %s != %s — parallelism leaked into the cache key", par, fp, refFP)
				}
			}
		})
	}
}

// TestMergeDeterministicOnRandomPrograms widens the corpus past the paper
// apps: 20 property-generated programs, each traced once and merged at
// every parallelism level. The encoded program must not depend on the
// worker count.
func TestMergeDeterministicOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ranks := 8
			rec := trace.NewRecorder(ranks, trace.Config{})
			w := mpi.NewWorld(mpi.Config{
				Platform: platform.A, Impl: netmodel.OpenMPI, Size: ranks,
				NoiseSigma: 0.004, Seed: uint64(seed), Interceptor: rec,
			})
			if _, err := w.Run(proxy.RandomProgram(seed, 12)); err != nil {
				t.Fatalf("traced run: %v", err)
			}
			tr := rec.Trace(platform.A.Name, netmodel.OpenMPI.Name)

			var ref []byte
			for i, par := range parallelisms() {
				prog, err := merge.Build(tr, merge.Options{Parallelism: par})
				if err != nil {
					t.Fatalf("Parallelism=%d: %v", par, err)
				}
				enc := prog.Encode()
				if i == 0 {
					ref = enc
				} else if !bytes.Equal(enc, ref) {
					t.Errorf("Parallelism=%d: encoded program differs from Parallelism=1", par)
				}
			}
		})
	}
}
