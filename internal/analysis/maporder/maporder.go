// Package maporder is a static analyzer for the pipeline's determinism
// invariant: packages whose output must be byte-identical across runs
// (merge, codegen, check, statics, core) may not let Go's randomized map
// iteration order leak into anything they emit. A `for range` over a map
// whose body appends to a slice, writes through an encoder or strings
// builder, or otherwise produces ordered output is flagged — the fix is to
// collect the keys, sort them, and iterate the sorted slice. Loops that are
// genuinely order-independent (or that sort what they collected before it
// escapes) carry a "//maporder:ok" comment on the range line.
//
// Like ranklock, the implementation mirrors golang.org/x/tools/go/analysis
// but depends only on the standard library, so it builds hermetically;
// cmd/maporder is the standalone driver CI runs. Without go/types the map
// detection is syntactic: an expression is treated as a map when its
// declaration is visible in the package — a local `make(map[...])` or map
// literal, a `var`/parameter/receiver-field of map type, a package-level
// map var, or a call to a package function returning a map.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	Pos     token.Position
	Rule    string // always "map-iteration-order"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// Pass bundles one package's parsed files, in the shape of analysis.Pass.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgName string
}

// Analyzer describes the checker, in the shape of analysis.Analyzer.
type Analyzer = struct {
	Name string
	Doc  string
	Run  func(*Pass) []Finding
}

// MapOrder is the exported analyzer instance.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body emits ordered output in deterministic packages",
	Run:  run,
}

// writeMethods are method names whose call inside a map-range body means
// the iteration order reaches ordered output: io/encoder writes, fmt
// output, and strings.Builder/bytes.Buffer appends.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "Fprintf": true, "Fprint": true,
	"Fprintln": true, "Printf": true, "Print": true, "Println": true,
}

// index is the package-wide view of syntactically map-typed names.
type index struct {
	fields   map[string]bool // struct field names declared with a map type
	results  map[string]bool // package functions returning a map
	pkgNames map[string]bool // package-level vars of map type
}

func run(pass *Pass) []Finding {
	idx := buildIndex(pass.Files)
	var out []Finding
	for _, file := range pass.Files {
		okLines := annotatedLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkFunc(pass, fd, idx, okLines)...)
			return false // checkFunc walks the body itself
		})
	}
	return out
}

// annotatedLines collects the lines carrying a "//maporder:ok" marker.
func annotatedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "maporder:ok") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// buildIndex records every name the package declares with a map type:
// struct fields, function results, and package-level vars.
func buildIndex(files []*ast.File) *index {
	idx := &index{
		fields:   map[string]bool{},
		results:  map[string]bool{},
		pkgNames: map[string]bool{},
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Type.Results != nil && len(d.Type.Results.List) > 0 &&
					isMapType(d.Type.Results.List[0].Type) {
					idx.results[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						if mapValueSpec(sp) {
							for _, name := range sp.Names {
								idx.pkgNames[name.Name] = true
							}
						}
					case *ast.TypeSpec:
						st, ok := sp.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, f := range st.Fields.List {
							if isMapType(f.Type) {
								for _, name := range f.Names {
									idx.fields[name.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return idx
}

// mapValueSpec reports whether a var spec declares map-typed names, either
// explicitly or via a make/map-literal initializer.
func mapValueSpec(sp *ast.ValueSpec) bool {
	if isMapType(sp.Type) {
		return true
	}
	for _, v := range sp.Values {
		if isMapExpr(v) {
			return true
		}
	}
	return false
}

func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}

// isMapExpr recognizes expressions that construct a map: make(map[...]),
// a map composite literal, or a conversion to a map type.
func isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return isMapType(v.Type)
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return isMapType(v.Args[0])
		}
		return isMapType(v.Fun)
	}
	return false
}

// localMaps collects the function's identifiers that are visibly map-typed:
// parameters and receivers, `var` declarations, and := assignments from a
// map constructor or a map-returning package function.
func localMaps(fd *ast.FuncDecl, idx *index) map[string]bool {
	local := map[string]bool{}
	declare := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if isMapType(f.Type) {
				for _, name := range f.Names {
					local[name.Name] = true
				}
			}
		}
	}
	declare(fd.Recv)
	declare(fd.Type.Params)
	declare(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				if sp, ok := spec.(*ast.ValueSpec); ok && mapValueSpec(sp) {
					for _, name := range sp.Names {
						local[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				rhs := st.Rhs[i]
				if isMapExpr(rhs) {
					local[id.Name] = true
				} else if call, ok := rhs.(*ast.CallExpr); ok {
					if fn, ok := call.Fun.(*ast.Ident); ok && idx.results[fn.Name] {
						local[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return local
}

// isMapRange reports whether the range expression is syntactically known to
// be a map.
func isMapRange(x ast.Expr, local map[string]bool, idx *index) bool {
	switch v := x.(type) {
	case *ast.Ident:
		return local[v.Name] || idx.pkgNames[v.Name]
	case *ast.SelectorExpr:
		return idx.fields[v.Sel.Name]
	case *ast.CallExpr:
		if fn, ok := v.Fun.(*ast.Ident); ok {
			return idx.results[fn.Name]
		}
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			return idx.results[sel.Sel.Name]
		}
	}
	return isMapExpr(x)
}

// emitsOrdered finds the first order-dependent emission in a map-range
// body: a call to builtin append, or a write/encode method call. It returns
// a description of the offending call, or "".
func emitsOrdered(body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "append" {
				desc = "append"
				return false
			}
		case *ast.SelectorExpr:
			if writeMethods[fn.Sel.Name] {
				desc = fn.Sel.Name
				return false
			}
		}
		return true
	})
	return desc
}

func checkFunc(pass *Pass, fd *ast.FuncDecl, idx *index, okLines map[int]bool) []Finding {
	local := localMaps(fd, idx)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		pos := pass.Fset.Position(rng.Pos())
		if okLines[pos.Line] {
			return true
		}
		if !isMapRange(rng.X, local, idx) {
			return true
		}
		if call := emitsOrdered(rng.Body); call != "" {
			out = append(out, Finding{
				Pos:  pos,
				Rule: "map-iteration-order",
				Message: fmt.Sprintf("map iteration order reaches ordered output (%s inside the loop) "+
					"in %s; sort the keys first, or annotate an order-independent loop with //maporder:ok",
					call, fd.Name.Name),
			})
		}
		return true
	})
	return out
}
