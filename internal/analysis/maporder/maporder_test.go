package maporder

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, pkgName, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return MapOrder.Run(&Pass{Fset: fset, Files: []*ast.File{f}, PkgName: pkgName})
}

func wantFindings(t *testing.T, findings []Finding, n int) {
	t.Helper()
	if len(findings) != n {
		t.Fatalf("got %d findings, want %d: %v", len(findings), n, findings)
	}
	for _, f := range findings {
		if f.Rule != "map-iteration-order" {
			t.Errorf("rule %q, want map-iteration-order (%s)", f.Rule, f)
		}
	}
}

// TestSeededEncoderBug seeds the exact bug the analyzer exists for: a
// deterministic-output package ranging over a map straight into an encoder.
func TestSeededEncoderBug(t *testing.T) {
	fs := analyzeSrc(t, "merge", `package merge
func (p *Program) encodeStats(b *builder, stats map[string]int) {
	for name, n := range stats {
		b.WriteString(name)
		b.WriteByte(byte(n))
	}
}
`)
	wantFindings(t, fs, 1)
	if !strings.Contains(fs[0].Message, "WriteString") || !strings.Contains(fs[0].Message, "encodeStats") {
		t.Errorf("message should name the write and the function: %s", fs[0].Message)
	}
}

func TestSeededAppendBug(t *testing.T) {
	fs := analyzeSrc(t, "statics", `package statics
func flatten(agg map[int]int64) []int64 {
	var out []int64
	for _, v := range agg {
		out = append(out, v)
	}
	return out
}
`)
	wantFindings(t, fs, 1)
	if !strings.Contains(fs[0].Message, "append") {
		t.Errorf("message should name append: %s", fs[0].Message)
	}
}

func TestAnnotatedLoopAccepted(t *testing.T) {
	wantFindings(t, analyzeSrc(t, "check", `package check
import "sort"
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //maporder:ok — sorted below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
`), 0)
}

// Order-independent bodies — counting, map-to-map transfer — are not
// emissions and must not be flagged.
func TestOrderIndependentBodyAccepted(t *testing.T) {
	wantFindings(t, analyzeSrc(t, "core", `package core
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
`), 0)
}

// Slices are ordered; ranging one into an encoder is fine.
func TestSliceRangeAccepted(t *testing.T) {
	wantFindings(t, analyzeSrc(t, "codegen", `package codegen
func emit(b *builder, rows []string) {
	for _, r := range rows {
		b.WriteString(r)
	}
}
`), 0)
}

// Map-typed struct fields and map-returning functions are recognized even
// though no local declaration is in scope.
func TestFieldAndCallRangesRecognized(t *testing.T) {
	fs := analyzeSrc(t, "merge", `package merge
type table struct {
	byName map[string]int
}
func index() map[string]int { return nil }
func (t *table) dump(b *builder) {
	for name := range t.byName {
		b.WriteString(name)
	}
	var out []string
	for name := range index() {
		out = append(out, name)
	}
}
`)
	wantFindings(t, fs, 2)
}

// TestDeterministicPackagesAreClean runs the analyzer over the real
// deterministic-output packages; this is the same gate CI's lint job
// enforces through cmd/maporder.
func TestDeterministicPackagesAreClean(t *testing.T) {
	for _, dir := range []string{"../../merge", "../../codegen", "../../check", "../../statics", "../../core"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			var files []*ast.File
			for _, f := range pkg.Files {
				files = append(files, f)
			}
			for _, f := range MapOrder.Run(&Pass{Fset: fset, Files: files, PkgName: name}) {
				t.Errorf("%s", f)
			}
		}
	}
}
