// Package ranklock is a static analyzer for the simulated runtime's two
// concurrency-and-failure invariants:
//
//  1. Functions whose name ends in "Locked" require the caller to hold the
//     world mutex. A call to one is flagged unless the enclosing function
//     (a) itself ends in "Locked", (b) acquires a mutex in its own body, or
//     (c) is documented as running under the lock ("caller holds ... mu").
//
//  2. In the mpi and proxy packages a panic must carry a typed value the
//     World.Run / proxy recovery handlers understand (*MPIError via
//     mpiErrorf, crashPanic, DivergenceError, errAborted or a wrapped err) —
//     a plain-string panic would be misreported as an internal bug of the
//     harness. Intentional exceptions carry a "//ranklock:ok" comment on
//     the same line.
//
// The implementation deliberately mirrors golang.org/x/tools/go/analysis
// (an Analyzer value with a Run function over a Pass) but depends only on
// the standard library, so it builds in hermetic environments; cmd/ranklock
// is the standalone driver CI runs in place of `go vet -vettool`.
package ranklock

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	Pos     token.Position
	Rule    string // "locked-call" or "untyped-panic"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// Pass bundles one package's parsed files, in the shape of analysis.Pass.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgName string
}

// Analyzer describes the checker, in the shape of analysis.Analyzer.
type Analyzer = struct {
	Name string
	Doc  string
	Run  func(*Pass) []Finding
}

// RankLock is the exported analyzer instance.
var RankLock = &Analyzer{
	Name: "ranklock",
	Doc:  "check world-lock discipline for *Locked calls and typed panics in the runtime",
	Run:  run,
}

// panicPackages are the packages where rule 2 (typed panics) applies: their
// goroutine recovery handlers only understand typed panic values.
var panicPackages = map[string]bool{"mpi": true, "proxy": true}

// holdsLockDoc matches doc comments that declare the lock is already held,
// e.g. "Caller holds w.mu." or "callers hold the world mu".
var holdsLockDoc = regexp.MustCompile(`(?i)caller[s]? (must )?hold[s]? .*mu`)

func run(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		okLines := annotatedLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkFunc(pass, fd, okLines)...)
			return false // checkFunc walks the body itself
		})
	}
	return out
}

// annotatedLines collects the lines carrying a "//ranklock:ok" marker.
func annotatedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "ranklock:ok") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func checkFunc(pass *Pass, fd *ast.FuncDecl, okLines map[int]bool) []Finding {
	var out []Finding
	holdsLock := strings.HasSuffix(fd.Name.Name, "Locked") ||
		(fd.Doc != nil && holdsLockDoc.MatchString(fd.Doc.Text())) ||
		acquiresMutex(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pos := pass.Fset.Position(call.Pos())
		if okLines[pos.Line] {
			return true
		}
		if name := calleeName(call); strings.HasSuffix(name, "Locked") && !holdsLock {
			out = append(out, Finding{
				Pos:  pos,
				Rule: "locked-call",
				Message: fmt.Sprintf("%s requires the world lock, but %s neither holds it "+
					"(no Locked suffix, no lock-holding doc comment) nor acquires a mutex",
					name, fd.Name.Name),
			})
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" &&
			panicPackages[pass.PkgName] && len(call.Args) == 1 && !typedPanicArg(call.Args[0]) {
			out = append(out, Finding{
				Pos:  pos,
				Rule: "untyped-panic",
				Message: fmt.Sprintf("panic in package %s must carry a typed value "+
					"(*MPIError via mpiErrorf, crashPanic, DivergenceError, errAborted or err); "+
					"annotate intentional exceptions with //ranklock:ok", pass.PkgName),
			})
		}
		return true
	})
	return out
}

// acquiresMutex reports whether the body contains a call of the form
// <expr>.Lock() — the repo idiom w.mu.Lock() — meaning the function manages
// the critical section itself.
func acquiresMutex(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeName extracts the called function's bare name, or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// typedPanicArg reports whether the panic argument is one of the values the
// runtime's recovery handlers understand.
func typedPanicArg(arg ast.Expr) bool {
	switch a := arg.(type) {
	case *ast.Ident:
		// errAborted, or an error variable being re-raised.
		return a.Name == "errAborted" || a.Name == "err" || strings.HasPrefix(a.Name, "err")
	case *ast.CallExpr:
		// mpiErrorf(...) constructs *MPIError.
		return calleeName(a) == "mpiErrorf"
	case *ast.UnaryExpr:
		if a.Op != token.AND {
			return false
		}
		cl, ok := a.X.(*ast.CompositeLit)
		if !ok {
			return false
		}
		name := ""
		switch t := cl.Type.(type) {
		case *ast.Ident:
			name = t.Name
		case *ast.SelectorExpr:
			name = t.Sel.Name
		}
		return name == "crashPanic" || strings.HasSuffix(name, "Error")
	}
	return false
}
