package ranklock

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, pkgName, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return RankLock.Run(&Pass{Fset: fset, Files: []*ast.File{f}, PkgName: pkgName})
}

func wantRules(t *testing.T, findings []Finding, rules ...string) {
	t.Helper()
	if len(findings) != len(rules) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(rules), findings)
	}
	for i, r := range rules {
		if findings[i].Rule != r {
			t.Errorf("finding %d: rule %q, want %q (%s)", i, findings[i].Rule, r, findings[i])
		}
	}
}

func TestLockedCallWithoutLockFlagged(t *testing.T) {
	fs := analyzeSrc(t, "mpi", `package mpi
func (w *World) failLocked(err error) {}
func oops(w *World) { w.failLocked(nil) }
`)
	wantRules(t, fs, "locked-call")
	if !strings.Contains(fs[0].Message, "failLocked") || !strings.Contains(fs[0].Message, "oops") {
		t.Errorf("message should name callee and caller: %s", fs[0].Message)
	}
}

func TestLockedCallerIsExempt(t *testing.T) {
	wantRules(t, analyzeSrc(t, "mpi", `package mpi
func (w *World) failLocked(err error) {}
func (w *World) checkDeadlockLocked() { w.failLocked(nil) }
`))
}

func TestMutexAcquirerIsExempt(t *testing.T) {
	wantRules(t, analyzeSrc(t, "mpi", `package mpi
func ok(w *World) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failLocked(nil)
}
`))
}

func TestDocCommentHolderIsExempt(t *testing.T) {
	wantRules(t, analyzeSrc(t, "mpi", `package mpi
// blockedOps snapshots state. Caller holds w.mu.
func blockedOps(w *World) { w.checkDeadlockLocked() }
`))
}

func TestLockInsideClosureExemptsFunction(t *testing.T) {
	wantRules(t, analyzeSrc(t, "mpi", `package mpi
func run(w *World) {
	go func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.failLocked(nil)
	}()
}
`))
}

func TestUntypedPanicFlagged(t *testing.T) {
	fs := analyzeSrc(t, "mpi", `package mpi
func bad() { panic("boom") }
`)
	wantRules(t, fs, "untyped-panic")
}

func TestTypedPanicsAccepted(t *testing.T) {
	wantRules(t, analyzeSrc(t, "mpi", `package mpi
func a(r *Rank) { panic(mpiErrorf(ErrComm, 0, "f", "x")) }
func b() { panic(errAborted) }
func c(err error) { panic(err) }
func d() { panic(&crashPanic{op: "f"}) }
func e() { panic(&DivergenceError{}) }
`))
}

func TestAnnotatedPanicAccepted(t *testing.T) {
	wantRules(t, analyzeSrc(t, "mpi", `package mpi
func cfgCheck() {
	panic("bad config") //ranklock:ok
}
`))
}

func TestPanicRuleScopedToRuntimePackages(t *testing.T) {
	wantRules(t, analyzeSrc(t, "merge", `package merge
func helper() { panic("not a runtime package") }
`))
}

// TestRepoIsClean runs the analyzer over the real runtime packages; this is
// the same gate CI's lint job enforces through cmd/ranklock.
func TestRepoIsClean(t *testing.T) {
	for _, dir := range []string{"../../mpi", "../../proxy"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			var files []*ast.File
			for _, f := range pkg.Files {
				files = append(files, f)
			}
			for _, f := range RankLock.Run(&Pass{Fset: fset, Files: files, PkgName: name}) {
				t.Errorf("%s", f)
			}
		}
	}
}
