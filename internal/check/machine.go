package check

import (
	"fmt"
	"sort"

	"siesta/internal/merge"
	"siesta/internal/trace"
)

// The abstract machine mirrors the simulated runtime's matching rules
// (p2p.go, coll.go, io.go) over expanded per-rank event sequences, with one
// deliberate abstraction: sends are buffered and never block (except
// MPI_Ssend, which is synchronous by definition). Under that abstraction a
// reported deadlock is a definite deadlock of the eager-protocol run, and a
// clean verdict means every blocking operation can be discharged in some
// schedule — the greedy fixpoint below finds one if it exists, because every
// abstract transition is monotone (executing one rank never disables
// another's enabled transition).

const (
	anyPeer  = trace.Wildcard // wildcard source / tag sentinel, as traced
	procNull = -2             // resolved MPI_PROC_NULL partner
)

type evRef struct{ rank, idx int }

// vcomm is one communicator instance. Pool numbers are per-rank names;
// instances are the shared identity, so pool reuse after MPI_Comm_free
// cannot confuse two generations of communicators.
type vcomm struct {
	id      int
	members []int    // comm rank -> world rank
	index   []int    // world rank -> comm rank, -1 for non-members
	slots   []*vslot // collective sequence number -> rendezvous slot
}

type vfile struct {
	comm *vcomm
	name string
}

// vmsg is one in-flight message. It holds the communicator's instance id
// rather than a pointer so the message arena stays pointer-free (no write
// barriers or GC scans on the hottest allocation).
type vmsg struct {
	id          int // machine-global sequential identity, for Hooks
	src, dst    int // world ranks
	commID      int // communicator instance id
	tag, bytes  int
	ev          evRef
	term        int // sending terminal id
	matched     bool
	synchronous bool // MPI_Ssend: sender blocks until matched
}

// vrecv is one posted receive.
type vrecv struct {
	owner   int    // world rank
	comm    *vcomm // for deadlock reporting
	commID  int    // communicator instance id, for matching
	src     int    // world rank, anyPeer, or procNull
	tag     int    // tag or anyPeer
	bytes   int    // expected bytes, -1 unknown (Sendrecv's receive half)
	ev      evRef
	term    int
	matched *vmsg
}

const (
	rkSend = iota
	rkRecv
	rkColl
)

// vreq is one live request-pool entry.
type vreq struct {
	kind       int
	persistent bool
	active     bool          // persistent: between MPI_Start and its wait
	polled     bool          // touched by MPI_Test/MPI_Testall (see note below)
	rec        *trace.Record // creating record, for MPI_Start and leak reports
	recv       *vrecv
	slot       *vslot
	ev         evRef
}

// A note on polled: MPI_Test with flag=false (pool kept) and flag=true
// (pool released) produce the *same* terminal, so the trace cannot tell the
// checker which happened. A polled request therefore stays mapped but is
// exempt from leak reporting, and re-acquiring its pool number is treated
// as the implicit release the runtime already performed.

// vslot is one collective instance: the (communicator instance, per-rank
// sequence number) rendezvous the runtime keys its slots by. Slots live on
// their communicator, indexed by sequence number.
type vslot struct {
	comm     *vcomm
	seq      int
	fn       string
	root     int
	op       string
	firstEv  evRef
	arrived  []*trace.Record // comm rank -> its record, nil until arrival
	arrivedN int
	full     bool
	flagged  bool // mismatch already reported

	splitArgs map[int][2]int // world rank -> (color, key)
	groups    map[int]*vcomm // world rank -> split/dup result (nil = MPI_UNDEFINED)
	file      *vfile         // MPI_File_open: the shared handle identity
}

// lrank is one rank's abstract state.
type lrank struct {
	rank    int
	seq     []int // expanded global terminal ids
	pc      int
	done    bool
	comms   poolTable[*vcomm]
	files   poolTable[*vfile]
	reqs    poolTable[*vreq]
	collSeq poolTable[int] // comm instance id -> issued collective steps

	// Current blocking operation, once initiated (receive posted, message
	// posted, collective arrival registered). Cleared on advance.
	inited  bool
	curRecv *vrecv
	curMsg  *vmsg
	curSlot *vslot
}

type machine struct {
	p     *merge.Program
	opts  Options
	rep   *Report
	pf    *pathFinder
	hooks Hooks // nil when no listener is attached

	ranks []*lrank
	// mailbox and posted are indexed by destination world rank; mailbox has
	// one extra trailing slot for messages whose destination is no world
	// rank (a wildcard destination in a corrupt program), which can never
	// match but must still surface in the unmatched-traffic report.
	mailbox  [][]*vmsg
	posted   [][]*vrecv
	nextInst int
	nextMsg  int

	msgArena  arena[vmsg]
	recvArena arena[vrecv]
	reqArena  arena[vreq]
	slotArena arena[vslot]

	byteSeen map[[2]int]bool // (send terminal, recv terminal) pairs reported
	zeroSeen map[int]bool    // zero-byte send terminals reported
	cntSeen  map[int]bool    // v-collective count-length terminals reported
}

func newMachine(p *merge.Program, opts Options) (*machine, error) {
	m := &machine{
		p:        p,
		opts:     opts,
		hooks:    opts.Hooks,
		rep:      &Report{NumRanks: p.NumRanks},
		pf:       newPathFinder(p),
		mailbox:  make([][]*vmsg, p.NumRanks+1),
		posted:   make([][]*vrecv, p.NumRanks),
		byteSeen: map[[2]int]bool{},
		zeroSeen: map[int]bool{},
		cntSeen:  map[int]bool{},
	}
	world := m.newComm(allRanks(p.NumRanks))
	m.ranks = make([]*lrank, 0, p.NumRanks)
	for r := 0; r < p.NumRanks; r++ {
		n, err := p.ExpandedLen(r)
		if err != nil {
			return nil, err
		}
		seq, err := p.AppendExpansion(r, make([]int, 0, n))
		if err != nil {
			return nil, err
		}
		for _, id := range seq {
			if id < 0 || id >= len(p.Terminals) {
				return nil, fmt.Errorf("check: rank %d references terminal %d outside table of %d", r, id, len(p.Terminals))
			}
		}
		m.rep.Events += len(seq)
		lr := &lrank{rank: r, seq: seq}
		lr.comms.set(0, world) // pool 0 is MPI_COMM_WORLD
		m.ranks = append(m.ranks, lr)
	}
	return m, nil
}

func allRanks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (m *machine) newComm(members []int) *vcomm {
	c := &vcomm{id: m.nextInst, members: members, index: make([]int, m.p.NumRanks)}
	m.nextInst++
	for i := range c.index {
		c.index[i] = -1
	}
	for i, wr := range members {
		if wr >= 0 && wr < len(c.index) {
			c.index[wr] = i
		}
	}
	return c
}

// diag records a finding, anchored at ev (terminal id and grammar path are
// derived from it; pass a negative rank for findings with no anchor).
func (m *machine) diag(sev Severity, rule string, ranks []int, ev evRef, format string, args ...any) {
	if len(m.rep.Diags) >= m.opts.MaxDiagnostics {
		m.rep.Truncated++
		return
	}
	d := Diagnostic{
		Rule:     rule,
		Severity: sev,
		Ranks:    append([]int(nil), ranks...),
		Record:   -1,
		Event:    -1,
		Message:  fmt.Sprintf(format, args...),
	}
	sort.Ints(d.Ranks)
	if ev.rank >= 0 && ev.rank < len(m.ranks) && ev.idx >= 0 && ev.idx < len(m.ranks[ev.rank].seq) {
		d.Record = m.ranks[ev.rank].seq[ev.idx]
		d.Event = ev.idx
		d.Path = m.pf.find(ev.rank, ev.idx)
	}
	m.rep.Diags = append(m.rep.Diags, d)
}

var noEv = evRef{rank: -1, idx: -1}

// run drives the greedy fixpoint: every rank executes until it blocks; the
// pass repeats until no rank can move, then end-state rules fire.
func (m *machine) run() {
	for {
		progress := false
		for _, r := range m.ranks {
			for m.step(r) {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	m.reportDeadlock()
	m.reportChannels()
	m.reportCollLengths()
}

// advance completes the current event and clears blocking state. It is the
// single completion point for every event, so Hooks.Exec fires here; a
// blocking receive that completed this event reports its match first.
func (m *machine) advance(r *lrank) bool {
	if m.hooks != nil {
		if r.curRecv != nil && r.curRecv.matched != nil {
			m.hooks.RecvComplete(r.rank, r.pc, r.curRecv.matched.id)
		}
		term := r.seq[r.pc]
		m.hooks.Exec(r.rank, r.pc, term, m.p.Terminals[term])
	}
	r.pc++
	r.inited = false
	r.curRecv, r.curMsg, r.curSlot = nil, nil, nil
	return true
}

// step executes at most one event on r; false means r is blocked or done.
func (m *machine) step(r *lrank) bool {
	if r.done {
		return false
	}
	if r.pc >= len(r.seq) {
		r.done = true
		m.finishRank(r)
		return true
	}
	rec := m.p.Terminals[r.seq[r.pc]]
	ev := evRef{r.rank, r.pc}

	switch rec.Func {
	case "MPI_Compute", "MPI_Iprobe":
		return m.advance(r)

	case "MPI_Send", "MPI_Isend":
		c := m.commOf(r, rec, ev)
		if c != nil {
			m.emitSend(r, c, rec, ev, false)
		}
		if rec.Func == "MPI_Isend" {
			m.acquireReq(r, rec.ReqPool, m.newReq(vreq{kind: rkSend, rec: rec, ev: ev}), ev)
		}
		return m.advance(r)

	case "MPI_Ssend":
		if !r.inited {
			c := m.commOf(r, rec, ev)
			if c == nil {
				return m.advance(r)
			}
			msg := m.emitSend(r, c, rec, ev, true)
			if msg == nil || msg.matched {
				return m.advance(r)
			}
			r.curMsg, r.inited = msg, true
		}
		if r.curMsg.matched {
			return m.advance(r)
		}
		return false

	case "MPI_Recv":
		if !r.inited {
			c := m.commOf(r, rec, ev)
			if c == nil {
				return m.advance(r)
			}
			pr := m.makeRecv(r, c, rec.SrcRel, rec.Tag, rec.Bytes, ev)
			if pr == nil { // MPI_PROC_NULL source
				return m.advance(r)
			}
			m.postRecv(pr)
			r.curRecv, r.inited = pr, true
		}
		if r.curRecv.matched != nil {
			return m.advance(r)
		}
		return false

	case "MPI_Irecv":
		// Irecv traces record Bytes=0 (the size is only known at match
		// time), so the receive side's expected size is unknown here.
		c := m.commOf(r, rec, ev)
		req := m.newReq(vreq{kind: rkRecv, rec: rec, ev: ev})
		if c != nil {
			if pr := m.makeRecv(r, c, rec.SrcRel, rec.Tag, -1, ev); pr != nil {
				m.postRecv(pr)
				req.recv = pr
			}
		}
		m.acquireReq(r, rec.ReqPool, req, ev)
		return m.advance(r)

	case "MPI_Probe":
		c := m.commOf(r, rec, ev)
		if c == nil {
			return m.advance(r)
		}
		pr := m.makeRecv(r, c, rec.SrcRel, rec.Tag, -1, ev)
		if pr == nil {
			return m.advance(r)
		}
		for _, msg := range m.mailbox[r.rank] { // non-consuming
			if matches(pr, msg) {
				return m.advance(r)
			}
		}
		return false

	case "MPI_Sendrecv":
		if !r.inited {
			c := m.commOf(r, rec, ev)
			if c == nil {
				return m.advance(r)
			}
			m.emitSend(r, c, rec, ev, false)
			pr := m.makeRecv(r, c, rec.SrcRel, rec.RecvTag, -1, ev)
			if pr == nil {
				return m.advance(r)
			}
			m.postRecv(pr)
			r.curRecv, r.inited = pr, true
		}
		if r.curRecv.matched != nil {
			return m.advance(r)
		}
		return false

	case "MPI_Wait", "MPI_Waitany":
		q := rec.ReqPool
		if q < 0 {
			return m.advance(r)
		}
		req := r.reqs.get(q)
		if req == nil {
			m.diag(Error, RuleHandleRequest, []int{r.rank}, ev,
				"%s on request pool %d with no live request", rec.Func, q)
			return m.advance(r)
		}
		if !reqDone(req) {
			return false
		}
		m.releaseReq(r, q, req)
		return m.advance(r)

	case "MPI_Waitall":
		for _, q := range rec.ReqPools {
			if q < 0 {
				continue
			}
			if req := r.reqs.get(q); req != nil && !reqDone(req) {
				return false
			}
		}
		for _, q := range rec.ReqPools {
			if q < 0 {
				continue
			}
			if req := r.reqs.get(q); req != nil {
				m.releaseReq(r, q, req)
			}
		}
		return m.advance(r)

	case "MPI_Test":
		if req := r.reqs.get(rec.ReqPool); req != nil {
			req.polled = true
		}
		return m.advance(r)

	case "MPI_Testall":
		for _, q := range rec.ReqPools {
			if req := r.reqs.get(q); req != nil {
				req.polled = true
			}
		}
		return m.advance(r)

	case "MPI_Request_free":
		if r.reqs.get(rec.ReqPool) != nil {
			r.reqs.set(rec.ReqPool, nil)
		}
		return m.advance(r)

	case "MPI_Send_init", "MPI_Recv_init":
		kind := rkSend
		if rec.Func == "MPI_Recv_init" {
			kind = rkRecv
		}
		m.acquireReq(r, rec.ReqPool, m.newReq(vreq{kind: kind, persistent: true, rec: rec, ev: ev}), ev)
		return m.advance(r)

	case "MPI_Start":
		q := rec.ReqPool
		if q < 0 {
			return m.advance(r)
		}
		req := r.reqs.get(q)
		if req == nil {
			m.diag(Error, RuleHandleRequest, []int{r.rank}, ev,
				"MPI_Start on request pool %d with no live request", q)
			return m.advance(r)
		}
		switch {
		case !req.persistent:
			m.diag(Error, RuleHandleRequest, []int{r.rank}, ev,
				"MPI_Start on a non-persistent request (pool %d)", q)
		case req.active:
			m.diag(Error, RuleHandleRequest, []int{r.rank}, ev,
				"MPI_Start on an already-active persistent request (pool %d)", q)
		default:
			req.active = true
			crec := req.rec
			if c := m.commOf(r, crec, ev); c != nil {
				if req.kind == rkSend {
					m.emitSend(r, c, crec, ev, false)
				} else if pr := m.makeRecv(r, c, crec.SrcRel, crec.Tag, -1, ev); pr != nil {
					m.postRecv(pr)
					req.recv = pr
				}
			}
		}
		return m.advance(r)

	case "MPI_Comm_free":
		pool := rec.CommPool
		switch {
		case pool == 0:
			m.diag(Error, RuleHandleComm, []int{r.rank}, ev,
				"MPI_Comm_free on communicator pool 0 (MPI_COMM_WORLD)")
		case r.comms.get(pool) == nil:
			m.diag(Error, RuleHandleComm, []int{r.rank}, ev,
				"MPI_Comm_free on communicator pool %d with no live communicator", pool)
		default:
			r.comms.set(pool, nil)
		}
		return m.advance(r)

	case "MPI_File_write_at", "MPI_File_read_at":
		if r.files.get(rec.FilePool) == nil {
			m.diag(Error, RuleHandleFile, []int{r.rank}, ev,
				"%s on file pool %d with no open file", rec.Func, rec.FilePool)
		}
		return m.advance(r)

	case "MPI_Ibarrier", "MPI_Ibcast", "MPI_Iallreduce":
		c := m.commOf(r, rec, ev)
		req := m.newReq(vreq{kind: rkColl, rec: rec, ev: ev})
		if c != nil {
			req.slot = m.arrive(r, c, rec, ev)
		}
		m.acquireReq(r, rec.ReqPool, req, ev)
		return m.advance(r)
	}

	if isBlockingCollective(rec.Func) {
		if !r.inited {
			c := m.commOf(r, rec, ev)
			if c == nil {
				return m.advance(r)
			}
			if isFileFunc(rec.Func) && rec.Func != "MPI_File_open" && r.files.get(rec.FilePool) == nil {
				m.diag(Error, RuleHandleFile, []int{r.rank}, ev,
					"%s on file pool %d with no open file", rec.Func, rec.FilePool)
				return m.advance(r)
			}
			r.curSlot, r.inited = m.arrive(r, c, rec, ev), true
		}
		if !r.curSlot.full {
			return false
		}
		m.completeColl(r, rec, r.curSlot, ev)
		return m.advance(r)
	}

	// Unknown functions are skipped: the checker must stay permissive as the
	// runtime's call surface grows.
	return m.advance(r)
}

var blockingCollectives = map[string]bool{
	"MPI_Barrier": true, "MPI_Bcast": true, "MPI_Reduce": true,
	"MPI_Allreduce": true, "MPI_Gather": true, "MPI_Gatherv": true,
	"MPI_Scatter": true, "MPI_Allgather": true, "MPI_Allgatherv": true,
	"MPI_Alltoall": true, "MPI_Alltoallv": true, "MPI_Scan": true,
	"MPI_Exscan": true, "MPI_Reduce_scatter": true,
	"MPI_Comm_split": true, "MPI_Comm_dup": true,
	"MPI_File_open": true, "MPI_File_close": true,
	"MPI_File_write_at_all": true, "MPI_File_read_at_all": true,
}

func isBlockingCollective(fn string) bool { return blockingCollectives[fn] }

func isFileFunc(fn string) bool {
	switch fn {
	case "MPI_File_open", "MPI_File_close", "MPI_File_write_at_all", "MPI_File_read_at_all":
		return true
	}
	return false
}

// commOf resolves the record's communicator pool for rank r.
func (m *machine) commOf(r *lrank, rec *trace.Record, ev evRef) *vcomm {
	c := r.comms.get(rec.CommPool)
	if c == nil {
		m.diag(Error, RuleHandleComm, []int{r.rank}, ev,
			"%s uses communicator pool %d before any communicator was created there", rec.Func, rec.CommPool)
		return nil
	}
	return c
}

// peerOf decodes a partner encoding to a world rank. The default scheme is
// the §2.2 relative offset within the communicator; with Options.AbsoluteRanks
// the field carries the partner's comm-local rank directly.
func (m *machine) peerOf(c *vcomm, me, rel int) (int, bool) {
	switch rel {
	case trace.NoRank:
		return procNull, true
	case trace.Wildcard:
		return anyPeer, true
	}
	sz := len(c.members)
	if m.opts.AbsoluteRanks {
		if rel < 0 || rel >= sz {
			return 0, false
		}
		return c.members[rel], true
	}
	if me < 0 || me >= len(c.index) {
		return 0, false
	}
	idx := c.index[me]
	if idx < 0 {
		return 0, false
	}
	return c.members[((idx+rel)%sz+sz)%sz], true
}

// emitSend posts the send half of rec; synchronous marks MPI_Ssend.
func (m *machine) emitSend(r *lrank, c *vcomm, rec *trace.Record, ev evRef, synchronous bool) *vmsg {
	dst, ok := m.peerOf(c, r.rank, rec.DestRel)
	if !ok {
		m.diag(Error, RuleHandleComm, []int{r.rank}, ev,
			"%s on a communicator rank %d is not a member of", rec.Func, r.rank)
		return nil
	}
	if dst == procNull {
		return nil
	}
	term := r.seq[ev.idx]
	if rec.Bytes == 0 && !m.zeroSeen[term] {
		m.zeroSeen[term] = true
		m.diag(Warning, RuleP2PBytes, []int{r.rank}, ev,
			"%s sends a zero-byte message to rank %d tag %d", rec.Func, dst, rec.Tag)
	}
	msg := m.msgArena.alloc()
	*msg = vmsg{id: m.nextMsg, src: r.rank, dst: dst, commID: c.id, tag: rec.Tag,
		bytes: rec.Bytes, ev: ev, term: term, synchronous: synchronous}
	m.nextMsg++
	if m.hooks != nil {
		m.hooks.Send(msg.id, msg.src, msg.dst, msg.tag, msg.bytes, term)
	}
	m.postMsg(msg)
	return msg
}

// makeRecv builds the receive described by (srcRel, tag); nil means the
// source resolves to MPI_PROC_NULL (or the rank left the communicator).
func (m *machine) makeRecv(r *lrank, c *vcomm, srcRel, tag, bytes int, ev evRef) *vrecv {
	src, ok := m.peerOf(c, r.rank, srcRel)
	if !ok {
		m.diag(Error, RuleHandleComm, []int{r.rank}, ev,
			"receive on a communicator rank %d is not a member of", r.rank)
		return nil
	}
	if src == procNull {
		return nil
	}
	pr := m.recvArena.alloc()
	*pr = vrecv{owner: r.rank, comm: c, commID: c.id, src: src, tag: tag, bytes: bytes,
		ev: ev, term: r.seq[ev.idx]}
	return pr
}

// matches applies the runtime's matching rule: same communicator instance,
// source and tag each equal or wildcard.
func matches(pr *vrecv, msg *vmsg) bool {
	return pr.commID == msg.commID &&
		(pr.src == anyPeer || pr.src == msg.src) &&
		(pr.tag == anyPeer || pr.tag == msg.tag)
}

// postMsg delivers a message: first posted matching receive wins (FIFO, as
// in the runtime); otherwise it queues in the destination's mailbox.
func (m *machine) postMsg(msg *vmsg) {
	if msg.dst >= 0 && msg.dst < len(m.posted) {
		q := m.posted[msg.dst]
		for i, pr := range q {
			if matches(pr, msg) {
				copy(q[i:], q[i+1:]) // FIFO removal in place; q is unaliased
				q[len(q)-1] = nil
				m.posted[msg.dst] = q[:len(q)-1]
				m.complete(pr, msg)
				return
			}
		}
	}
	mi := msg.dst
	if mi < 0 || mi >= len(m.posted) {
		mi = len(m.mailbox) - 1 // the unroutable-destination slot
	}
	m.mailbox[mi] = append(m.mailbox[mi], msg)
}

// postRecv posts a receive: earliest queued matching message wins;
// otherwise it joins the destination's posted list.
func (m *machine) postRecv(pr *vrecv) {
	q := m.mailbox[pr.owner]
	for i, msg := range q {
		if matches(pr, msg) {
			copy(q[i:], q[i+1:]) // FIFO removal in place; q is unaliased
			q[len(q)-1] = nil
			m.mailbox[pr.owner] = q[:len(q)-1]
			m.complete(pr, msg)
			return
		}
	}
	m.posted[pr.owner] = append(m.posted[pr.owner], pr)
}

// complete pairs a send with a receive and checks byte compatibility.
func (m *machine) complete(pr *vrecv, msg *vmsg) {
	pr.matched = msg
	msg.matched = true
	if pr.bytes < 0 {
		return
	}
	key := [2]int{msg.term, pr.term}
	if m.byteSeen[key] {
		return
	}
	sb, rb := msg.bytes, pr.bytes
	switch {
	case m.opts.ExactBytes && sb != rb:
		m.byteSeen[key] = true
		m.diag(Error, RuleP2PBytes, []int{msg.src, pr.owner}, msg.ev,
			"matched pair on channel %d->%d tag %d transfers %d bytes but the receive expects %d",
			msg.src, pr.owner, msg.tag, sb, rb)
	case (sb == 0) != (rb == 0):
		m.byteSeen[key] = true
		m.diag(Error, RuleP2PBytes, []int{msg.src, pr.owner}, msg.ev,
			"matched pair on channel %d->%d tag %d mixes zero and nonzero sizes (%d vs %d bytes)",
			msg.src, pr.owner, msg.tag, sb, rb)
	}
}

func reqDone(req *vreq) bool {
	if req.persistent && !req.active {
		return true
	}
	switch req.kind {
	case rkSend:
		return true // buffered-send abstraction
	case rkRecv:
		return req.recv == nil || req.recv.matched != nil
	case rkColl:
		return req.slot == nil || req.slot.full
	}
	return true
}

func (m *machine) newReq(v vreq) *vreq {
	req := m.reqArena.alloc()
	*req = v
	return req
}

// acquireReq binds a request to its pool number. Overwriting a polled entry
// is the Test-ambiguity implicit release; overwriting anything else live is
// a lifecycle violation.
func (m *machine) acquireReq(r *lrank, pool int, req *vreq, ev evRef) {
	if pool < 0 {
		return
	}
	if old := r.reqs.get(pool); old != nil && !old.polled {
		m.diag(Error, RuleHandleRequest, []int{r.rank}, ev,
			"request pool %d overwritten while its previous request is still live", pool)
	}
	r.reqs.set(pool, req)
}

// releaseReq discharges a completed request: persistent requests return to
// the inactive state (MPI keeps them pooled), others leave the pool. The
// discharging wait event (r.pc) is where a nonblocking receive's match
// becomes observable, so RecvComplete anchors there.
func (m *machine) releaseReq(r *lrank, pool int, req *vreq) {
	if m.hooks != nil && req.kind == rkRecv && req.recv != nil && req.recv.matched != nil {
		m.hooks.RecvComplete(r.rank, r.pc, req.recv.matched.id)
	}
	if req.persistent {
		req.active = false
		req.recv = nil
		return
	}
	r.reqs.set(pool, nil)
}

// arrive registers rank r at the collective slot its record names,
// checking that the call agrees with the slot's first arrival.
func (m *machine) arrive(r *lrank, c *vcomm, rec *trace.Record, ev evRef) *vslot {
	seq := r.collSeq.get(c.id)
	r.collSeq.set(c.id, seq+1)
	for len(c.slots) <= seq {
		c.slots = append(c.slots, nil)
	}
	slot := c.slots[seq]
	if slot == nil {
		slot = m.slotArena.alloc()
		*slot = vslot{comm: c, seq: seq, fn: rec.Func, root: rec.Root, op: rec.Op,
			firstEv: ev, arrived: make([]*trace.Record, len(c.members))}
		c.slots[seq] = slot
	}
	if !slot.flagged {
		switch {
		case rec.Func != slot.fn:
			slot.flagged = true
			m.diag(Error, RuleCollMismatch, []int{slot.firstEv.rank, r.rank}, ev,
				"collective step %d of a %d-rank communicator: rank %d issues %s while rank %d issues %s",
				seq, len(c.members), r.rank, rec.Func, slot.firstEv.rank, slot.fn)
		case rec.Root != slot.root:
			slot.flagged = true
			m.diag(Error, RuleCollMismatch, []int{slot.firstEv.rank, r.rank}, ev,
				"%s at collective step %d: rank %d uses root %d while rank %d uses root %d",
				rec.Func, seq, r.rank, rec.Root, slot.firstEv.rank, slot.root)
		case rec.Op != slot.op:
			slot.flagged = true
			m.diag(Error, RuleCollMismatch, []int{slot.firstEv.rank, r.rank}, ev,
				"%s at collective step %d: rank %d uses op %q while rank %d uses op %q",
				rec.Func, seq, r.rank, rec.Op, slot.firstEv.rank, slot.op)
		}
	}
	if rec.Func == "MPI_Alltoallv" && len(rec.Counts) != len(c.members) {
		term := r.seq[ev.idx]
		if !m.cntSeen[term] {
			m.cntSeen[term] = true
			m.diag(Warning, RuleCollLength, []int{r.rank}, ev,
				"MPI_Alltoallv counts vector has %d entries for a %d-rank communicator",
				len(rec.Counts), len(c.members))
		}
	}
	switch rec.Func {
	case "MPI_Comm_split":
		if slot.splitArgs == nil {
			slot.splitArgs = map[int][2]int{}
		}
		slot.splitArgs[r.rank] = [2]int{rec.Color, rec.Key}
	case "MPI_Comm_dup":
		if slot.splitArgs == nil {
			slot.splitArgs = map[int][2]int{}
		}
		slot.splitArgs[r.rank] = [2]int{0, c.index[r.rank]}
	}
	if cr := c.index[r.rank]; cr >= 0 && slot.arrived[cr] == nil {
		slot.arrived[cr] = rec
		slot.arrivedN++
		if m.hooks != nil {
			m.hooks.CollArrive(r.rank, ev.idx, c.id, c.members, seq, isBlockingCollective(rec.Func), rec)
		}
		if slot.arrivedN == len(c.members) {
			slot.full = true
			m.resolveSlot(slot)
			if m.hooks != nil {
				m.hooks.CollComplete(c.id, seq)
			}
		}
	}
	return slot
}

// resolveSlot computes a full slot's shared results: split/dup groups
// (ordered by key then world rank, mirroring World.resolveSplit) and the
// shared file identity for MPI_File_open.
func (m *machine) resolveSlot(slot *vslot) {
	if slot.splitArgs != nil {
		byColor := map[int][]int{}
		var colors []int
		for wr, ck := range slot.splitArgs { //maporder:ok — colors and members sorted below
			if ck[0] < 0 {
				continue
			}
			if _, ok := byColor[ck[0]]; !ok {
				colors = append(colors, ck[0])
			}
			byColor[ck[0]] = append(byColor[ck[0]], wr)
		}
		sort.Ints(colors)
		slot.groups = map[int]*vcomm{}
		for _, color := range colors {
			members := byColor[color]
			sort.Slice(members, func(i, j int) bool {
				ki, kj := slot.splitArgs[members[i]][1], slot.splitArgs[members[j]][1]
				if ki != kj {
					return ki < kj
				}
				return members[i] < members[j]
			})
			nc := m.newComm(members)
			for _, wr := range members {
				slot.groups[wr] = nc
			}
		}
	}
	if slot.fn == "MPI_File_open" {
		if cr := slot.comm.index[slot.firstEv.rank]; cr >= 0 {
			if rec := slot.arrived[cr]; rec != nil {
				slot.file = &vfile{comm: slot.comm, name: rec.FileName}
			}
		}
	}
}

// completeColl applies rank-local effects of a completed collective.
func (m *machine) completeColl(r *lrank, rec *trace.Record, slot *vslot, ev evRef) {
	switch rec.Func {
	case "MPI_Comm_split", "MPI_Comm_dup":
		if rec.NewCommPool < 0 {
			return
		}
		nc := slot.groups[r.rank] // nil for MPI_UNDEFINED colors
		if nc == nil {
			return
		}
		if old := r.comms.get(rec.NewCommPool); old != nil && rec.NewCommPool != 0 {
			m.diag(Error, RuleHandleComm, []int{r.rank}, ev,
				"communicator pool %d overwritten while its previous communicator is still live", rec.NewCommPool)
		}
		r.comms.set(rec.NewCommPool, nc)
	case "MPI_File_open":
		if old := r.files.get(rec.FilePool); old != nil {
			m.diag(Error, RuleHandleFile, []int{r.rank}, ev,
				"file pool %d overwritten while its previous file is still open", rec.FilePool)
		}
		r.files.set(rec.FilePool, slot.file)
	case "MPI_File_close":
		r.files.set(rec.FilePool, nil)
	}
}

// finishRank fires end-of-sequence rules for a rank that ran to completion:
// any live, never-polled, non-persistent request is a leaked nonblocking
// operation.
func (m *machine) finishRank(r *lrank) {
	var pools []int
	r.reqs.each(func(q int, _ *vreq) { pools = append(pools, q) })
	sort.Ints(pools)
	for _, q := range pools {
		req := r.reqs.get(q)
		if req.persistent || req.polled {
			continue
		}
		fn := "nonblocking operation"
		if req.rec != nil {
			fn = req.rec.Func
		}
		m.diag(Error, RuleRequestLeak, []int{r.rank}, req.ev,
			"%s request (pool %d) escapes rank %d without a matching wait", fn, q, r.rank)
	}
}

type chanKey struct{ src, dst, tag int }

// reportChannels summarizes unmatched traffic per (src, dst, tag) channel.
func (m *machine) reportChannels() {
	sends := map[chanKey][]*vmsg{}
	for _, q := range m.mailbox {
		for _, msg := range q {
			k := chanKey{msg.src, msg.dst, msg.tag}
			sends[k] = append(sends[k], msg)
		}
	}
	for _, k := range sortedChanKeys(sends) {
		msgs := sends[k]
		m.diag(Warning, RuleP2PUnmatchedSend, []int{k.src, k.dst}, msgs[0].ev,
			"%d message(s) on channel %d->%d tag %d sent but never received", len(msgs), k.src, k.dst, k.tag)
	}
	recvs := map[chanKey][]*vrecv{}
	for _, q := range m.posted {
		for _, pr := range q {
			k := chanKey{pr.src, pr.owner, pr.tag}
			recvs[k] = append(recvs[k], pr)
		}
	}
	for _, k := range sortedChanKeys(recvs) {
		prs := recvs[k]
		src := fmt.Sprintf("rank %d", k.src)
		if k.src == anyPeer {
			src = "MPI_ANY_SOURCE"
		}
		tag := fmt.Sprintf("%d", k.tag)
		if k.tag == anyPeer {
			tag = "MPI_ANY_TAG"
		}
		m.diag(Error, RuleP2PUnmatchedRecv, []int{k.dst}, prs[0].ev,
			"%d receive(s) posted on rank %d from %s tag %s never matched by any send", len(prs), k.dst, src, tag)
	}
}

func sortedChanKeys[V any](mm map[chanKey]V) []chanKey {
	keys := make([]chanKey, 0, len(mm))
	for k := range mm { //maporder:ok — sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].tag < keys[j].tag
	})
	return keys
}

// reportCollLengths flags communicators whose members issued different
// numbers of collective steps. Only instances where every member finished
// cleanly could still hide a mismatch the slot machinery didn't surface, but
// the rule is cheap, so it runs over everything and dedupes per instance.
func (m *machine) reportCollLengths() {
	counts := map[int]map[int]int{} // instance id -> world rank -> steps
	insts := map[int]*vcomm{}
	for _, r := range m.ranks {
		r.comms.each(func(_ int, c *vcomm) { insts[c.id] = c })
		rank := r.rank
		r.collSeq.each(func(id, n int) {
			if counts[id] == nil {
				counts[id] = map[int]int{}
			}
			counts[id][rank] = n
		})
	}
	ids := make([]int, 0, len(counts))
	for id := range counts { //maporder:ok — sorted below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := insts[id]
		if c == nil {
			continue // freed everywhere; per-slot checks already covered it
		}
		var lo, hi, loRank, hiRank = -1, -1, -1, -1
		for _, wr := range c.members {
			n := counts[id][wr]
			if lo < 0 || n < lo {
				lo, loRank = n, wr
			}
			if hi < 0 || n > hi {
				hi, hiRank = n, wr
			}
		}
		if lo != hi {
			m.diag(Error, RuleCollLength, c.members, noEv,
				"members of a %d-rank communicator issue different collective counts: rank %d issues %d, rank %d issues %d",
				len(c.members), loRank, lo, hiRank, hi)
		}
	}
}
