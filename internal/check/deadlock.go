package check

import (
	"fmt"
	"sort"
	"strings"

	"siesta/internal/trace"
)

// Static deadlock detection: once the greedy fixpoint stalls with ranks
// still mid-sequence, those ranks are permanently stuck (abstract
// transitions are monotone, so no later schedule could unblock them). The
// match-order graph has an edge from each stuck rank to every rank it is
// waiting on; a cycle is the static analogue of the runtime detector's
// wait-for cycle, and acyclic stuck states (a peer that exited early) mirror
// the runtime's "peer finished" deadlocks.

func (m *machine) reportDeadlock() {
	var blocked []*lrank
	for _, r := range m.ranks {
		if !r.done {
			blocked = append(blocked, r)
		}
	}
	if len(blocked) == 0 {
		return
	}
	edges := map[int][]int{}
	ranks := make([]int, 0, len(blocked))
	descs := make([]string, 0, len(blocked))
	for _, r := range blocked {
		desc, to := m.blockInfo(r)
		edges[r.rank] = to
		ranks = append(ranks, r.rank)
		descs = append(descs, fmt.Sprintf("rank %d in %s", r.rank, desc))
	}
	msg := "no blocked rank can make further progress: " + strings.Join(descs, "; ")
	if cycle := findCycle(edges); cycle != nil {
		parts := make([]string, len(cycle))
		for i, n := range cycle {
			parts[i] = fmt.Sprintf("%d", n)
		}
		msg += "; dependency cycle: " + strings.Join(parts, " -> ")
	}
	m.diag(Error, RuleDeadlock, ranks, evRef{blocked[0].rank, blocked[0].pc}, "%s", msg)
}

// blockInfo describes what a stuck rank is blocked in and which ranks it is
// waiting on (the outgoing match-order edges).
func (m *machine) blockInfo(r *lrank) (string, []int) {
	rec := m.p.Terminals[r.seq[r.pc]]
	switch {
	case r.curRecv != nil:
		return fmt.Sprintf("%s from %s tag %s", rec.Func,
				peerName(r.curRecv.src), tagName(r.curRecv.tag)),
			recvEdges(r.curRecv)
	case r.curMsg != nil:
		return fmt.Sprintf("MPI_Ssend to rank %d tag %d", r.curMsg.dst, r.curMsg.tag),
			[]int{r.curMsg.dst}
	case r.curSlot != nil:
		slot := r.curSlot
		return fmt.Sprintf("%s (collective step %d, %d/%d arrived)",
				rec.Func, slot.seq, slot.arrivedN, len(slot.comm.members)),
			slotEdges(slot)
	}
	switch rec.Func {
	case "MPI_Probe":
		if c := r.comms.get(rec.CommPool); c != nil {
			if src, ok := m.peerOf(c, r.rank, rec.SrcRel); ok {
				return fmt.Sprintf("MPI_Probe from %s tag %s", peerName(src), tagName(rec.Tag)),
					recvEdges(&vrecv{owner: r.rank, comm: c, src: src})
			}
		}
		return "MPI_Probe", nil
	case "MPI_Wait", "MPI_Waitany":
		if req := r.reqs.get(rec.ReqPool); req != nil {
			desc, to := reqBlock(req)
			return fmt.Sprintf("%s on %s", rec.Func, desc), to
		}
	case "MPI_Waitall":
		var to []int
		var pending []string
		for _, q := range rec.ReqPools {
			if req := r.reqs.get(q); req != nil && !reqDone(req) {
				desc, e := reqBlock(req)
				pending = append(pending, desc)
				to = append(to, e...)
			}
		}
		return fmt.Sprintf("MPI_Waitall on %s", strings.Join(pending, ", ")), to
	}
	return rec.Func, nil
}

// reqBlock describes an undone request and its match-order edges.
func reqBlock(req *vreq) (string, []int) {
	fn := "request"
	if req.rec != nil {
		fn = req.rec.Func
	}
	switch req.kind {
	case rkRecv:
		if req.recv != nil && req.recv.matched == nil {
			return fmt.Sprintf("%s from %s tag %s", fn,
				peerName(req.recv.src), tagName(req.recv.tag)), recvEdges(req.recv)
		}
	case rkColl:
		if req.slot != nil && !req.slot.full {
			return fmt.Sprintf("%s (collective step %d, %d/%d arrived)",
				fn, req.slot.seq, req.slot.arrivedN, len(req.slot.comm.members)), slotEdges(req.slot)
		}
	}
	return fn, nil
}

// recvEdges: a receive waits on its source; a wildcard receive could be
// satisfied by any other member of the communicator.
func recvEdges(pr *vrecv) []int {
	if pr.src != anyPeer {
		return []int{pr.src}
	}
	var to []int
	for _, wr := range pr.comm.members {
		if wr != pr.owner {
			to = append(to, wr)
		}
	}
	return to
}

// slotEdges: a collective waits on every member that has not arrived.
func slotEdges(slot *vslot) []int {
	var to []int
	for cr, wr := range slot.comm.members {
		if slot.arrived[cr] == nil {
			to = append(to, wr)
		}
	}
	return to
}

func peerName(src int) string {
	if src == anyPeer {
		return "MPI_ANY_SOURCE"
	}
	return fmt.Sprintf("rank %d", src)
}

func tagName(tag int) string {
	if tag == anyPeer {
		return "MPI_ANY_TAG"
	}
	if tag == trace.NoRank {
		return "none"
	}
	return fmt.Sprintf("%d", tag)
}

// findCycle looks for a cycle in the match-order graph restricted to
// blocked ranks (edges to ranks that ran to completion cannot close a
// cycle). It returns the cycle as a rank walk ending where it starts, or
// nil.
func findCycle(edges map[int][]int) []int {
	const (
		unseen = iota
		inStack
		finished
	)
	state := map[int]int{}
	var stack []int
	var dfs func(n int) []int
	dfs = func(n int) []int {
		state[n] = inStack
		stack = append(stack, n)
		for _, to := range edges[n] {
			if _, blocked := edges[to]; !blocked {
				continue
			}
			switch state[to] {
			case unseen:
				if c := dfs(to); c != nil {
					return c
				}
			case inStack:
				for i, v := range stack {
					if v == to {
						return append(append([]int(nil), stack[i:]...), to)
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = finished
		return nil
	}
	nodes := make([]int, 0, len(edges))
	for n := range edges { //maporder:ok — sorted below
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if state[n] == unseen {
			if c := dfs(n); c != nil {
				return c
			}
		}
	}
	return nil
}
