// Package check implements Siesta's static communication verifier: an
// abstract interpretation of a merged program (merge.Program) that finds MPI
// usage errors — unmatched point-to-point traffic, collective sequence
// mismatches, handle-lifecycle violations and potential deadlocks — without
// replaying anything. The approach follows MPISE's observation that MPI
// communication correctness is decidable over the per-rank call structure:
// the merged grammar already encodes exactly that structure, so each rank's
// symbol sequence is expanded per rank-interval branch and executed over an
// abstract machine with buffered-send semantics. Because buffered sends
// never block, any deadlock the abstraction reports would also occur under
// an eager-protocol run: the checker trades false negatives (rendezvous-only
// deadlocks) for zero-execution cost, the same trade the runtime detector of
// DESIGN.md §5 makes in the opposite direction.
package check

import (
	"fmt"
	"strings"

	"siesta/internal/merge"
)

// Severity classifies a diagnostic.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity by name, so `siesta check -json` output
// reads "error", not 2.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the names MarshalJSON produces.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"info"`:
		*s = Info
	case `"warning"`:
		*s = Warning
	case `"error"`:
		*s = Error
	default:
		return fmt.Errorf("check: unknown severity %s", b)
	}
	return nil
}

// Rule identifiers. Every diagnostic carries one, so tests and tooling can
// filter without parsing messages.
const (
	RuleP2PUnmatchedSend = "p2p-unmatched-send" // sent message never received
	RuleP2PUnmatchedRecv = "p2p-unmatched-recv" // posted receive never matched
	RuleP2PBytes         = "p2p-bytes"          // matched pair with incompatible sizes
	RuleCollMismatch     = "coll-mismatch"      // ranks disagree on a collective step
	RuleCollLength       = "coll-length"        // ranks issue different collective counts
	RuleHandleComm       = "handle-comm"        // communicator pool lifecycle violation
	RuleHandleFile       = "handle-file"        // file pool lifecycle violation
	RuleHandleRequest    = "handle-request"     // request pool lifecycle violation
	RuleRequestLeak      = "request-leak"       // nonblocking op escapes without a wait
	RuleDeadlock         = "static-deadlock"    // blocking-dependency cycle / stuck ranks
)

// Diagnostic is one structured finding. Rank sets, the grammar-symbol path
// and the terminal (trace record) index anchor the finding back to both the
// merged program and the original trace.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Ranks    []int    `json:"ranks"`          // ranks involved, sorted
	Record   int      `json:"record"`         // global terminal id the finding anchors to, -1 if none
	Event    int      `json:"event"`          // event index in Ranks[0]'s expansion, -1 if none
	Path     string   `json:"path,omitempty"` // grammar-symbol path of (Ranks[0], Event), "" if none
	Message  string   `json:"message"`
}

// String formats the diagnostic on one line.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", d.Severity, d.Rule)
	if len(d.Ranks) > 0 {
		fmt.Fprintf(&b, " ranks=%s", rankList(d.Ranks))
	}
	if d.Path != "" {
		fmt.Fprintf(&b, " at=%s", d.Path)
	}
	if d.Record >= 0 {
		fmt.Fprintf(&b, " record=%d", d.Record)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

func rankList(ranks []int) string {
	var b strings.Builder
	for i, r := range ranks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	return b.String()
}

// Options configures a verification pass.
type Options struct {
	// ExactBytes requires matched send/receive pairs to carry identical
	// byte counts. Traced programs record the actually-transferred size on
	// both sides, so the post-merge gate enables this; shrunk or
	// extrapolated programs scale the two sides through different
	// regressions and only the zero/nonzero compatibility check applies.
	ExactBytes bool
	// AbsoluteRanks declares that the program's partner fields carry
	// comm-local absolute ranks (trace.Config.AbsoluteRanks) instead of
	// the default §2.2 relative encoding.
	AbsoluteRanks bool
	// MaxDiagnostics caps the report (0 selects the default of 100);
	// findings beyond the cap are counted in Report.Truncated.
	MaxDiagnostics int
	// Hooks, when non-nil, receives the machine's event stream (see the
	// Hooks interface). Verification semantics are unaffected.
	Hooks Hooks
}

func (o Options) withDefaults() Options {
	if o.MaxDiagnostics == 0 {
		o.MaxDiagnostics = 100
	}
	return o
}

// Report is the result of one verification pass.
type Report struct {
	NumRanks  int          `json:"num_ranks"`
	Events    int          `json:"events"` // total expanded events across all ranks
	Diags     []Diagnostic `json:"diagnostics"`
	Truncated int          `json:"truncated,omitempty"` // diagnostics dropped beyond Options.MaxDiagnostics
}

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int { return r.count(Error) }

// Warnings counts warning-severity diagnostics.
func (r *Report) Warnings() int { return r.count(Warning) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any diagnostic has error severity.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// Summary is the one-line form stamped into generated C source and printed
// by the CLI.
func (r *Report) Summary() string {
	if len(r.Diags) == 0 {
		return fmt.Sprintf("clean: %d ranks, %d events, 0 diagnostics", r.NumRanks, r.Events)
	}
	s := fmt.Sprintf("%d error(s), %d warning(s) over %d ranks, %d events",
		r.Errors(), r.Warnings(), r.NumRanks, r.Events)
	if r.Truncated > 0 {
		s += fmt.Sprintf(" (+%d truncated)", r.Truncated)
	}
	return s
}

// String renders the summary plus every diagnostic, one per line.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	for _, d := range r.Diags {
		b.WriteByte('\n')
		b.WriteString(d.String())
	}
	return b.String()
}

// Verify statically checks the program and returns the structured report.
// The error return is reserved for structurally broken programs (a rank
// without a main rule, dangling grammar references); semantic findings are
// diagnostics, never errors.
func Verify(p *merge.Program, opts Options) (*Report, error) {
	m, err := newMachine(p, opts.withDefaults())
	if err != nil {
		return nil, err
	}
	m.run()
	return m.rep, nil
}
