package check

import (
	"fmt"
	"strings"

	"siesta/internal/merge"
)

// pathFinder maps (rank, expanded event index) back to a grammar-symbol
// path through the merged program — "main[2]/R4[1]/T7" reads "the 3rd main
// symbol, 2nd symbol of rule 4, terminal 7" — so a diagnostic points at the
// compressed representation a human actually inspects, not a position in a
// million-event expansion.
type pathFinder struct {
	p       *merge.Program
	ruleLen []int // expanded length of one iteration of each rule
}

func newPathFinder(p *merge.Program) *pathFinder {
	pf := &pathFinder{p: p, ruleLen: make([]int, len(p.Rules))}
	state := make([]int, len(p.Rules)) // 0 unvisited, 1 in progress, 2 done
	var lenOf func(ref int) int
	lenOf = func(ref int) int {
		if ref < 0 || ref >= len(p.Rules) || state[ref] == 1 {
			return 0 // dangling or cyclic reference: paths stay best-effort
		}
		if state[ref] == 2 {
			return pf.ruleLen[ref]
		}
		state[ref] = 1
		n := 0
		for _, s := range p.Rules[ref] {
			unit := 1
			if s.IsRule {
				unit = lenOf(s.Ref)
			}
			n += s.Count * unit
		}
		state[ref] = 2
		pf.ruleLen[ref] = n
		return n
	}
	for ref := range p.Rules {
		lenOf(ref)
	}
	return pf
}

func (pf *pathFinder) symLen(s merge.Sym) int {
	unit := 1
	if s.IsRule {
		if s.Ref < 0 || s.Ref >= len(pf.ruleLen) {
			return 0
		}
		unit = pf.ruleLen[s.Ref]
	}
	return s.Count * unit
}

// find returns the grammar path of the idx-th expanded event of rank, or ""
// if the position cannot be resolved.
func (pf *pathFinder) find(rank, idx int) string {
	var main *merge.Main
	for i := range pf.p.Mains {
		if pf.p.Mains[i].Ranks.Contains(rank) {
			main = &pf.p.Mains[i]
			break
		}
	}
	if main == nil {
		return ""
	}
	var b strings.Builder
	off := idx
	for si, ms := range main.Body {
		if !ms.Ranks.Contains(rank) {
			continue
		}
		n := pf.symLen(ms.Sym)
		if off >= n {
			off -= n
			continue
		}
		fmt.Fprintf(&b, "main[%d]", si)
		pf.descend(&b, ms.Sym, off)
		return b.String()
	}
	return ""
}

// descend resolves an offset within count iterations of a symbol.
func (pf *pathFinder) descend(b *strings.Builder, s merge.Sym, off int) {
	for depth := 0; depth < 64; depth++ { // malformed-grammar guard
		if !s.IsRule {
			fmt.Fprintf(b, "/T%d", s.Ref)
			return
		}
		unit := pf.ruleLen[s.Ref]
		if unit <= 0 {
			fmt.Fprintf(b, "/R%d", s.Ref)
			return
		}
		rem := off % unit
		found := false
		for ci, child := range pf.p.Rules[s.Ref] {
			n := pf.symLen(child)
			if rem >= n {
				rem -= n
				continue
			}
			fmt.Fprintf(b, "/R%d[%d]", s.Ref, ci)
			s, off = child, rem
			found = true
			break
		}
		if !found {
			fmt.Fprintf(b, "/R%d", s.Ref)
			return
		}
	}
}
