package check

import "sort"

// arena hands out pointers from chunked backing arrays. The machine
// allocates one vmsg/vrecv/vreq/vslot per matching event, and individual
// heap allocations dominated its profile; chunking amortizes them 256×.
// Chunks are never grown in place (a full chunk is replaced, not
// reallocated), so handed-out pointers stay valid for the machine's
// lifetime.
type arena[T any] struct{ chunk []T }

const arenaChunk = 256

func (a *arena[T]) alloc() *T {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]T, 0, arenaChunk)
	}
	var zero T
	a.chunk = append(a.chunk, zero)
	return &a.chunk[len(a.chunk)-1]
}

// poolTable maps pool numbers (and communicator instance ids) to values.
// Well-formed programs use small, dense, non-negative numbers, served from
// a slice; decoded programs can carry arbitrary numbers, which fall back to
// a map so a corrupt input cannot force a huge dense allocation. The zero
// value of V means absent — no caller stores a nil pointer or a zero count.
type poolTable[V comparable] struct {
	dense  []V
	sparse map[int]V
}

// maxDensePool bounds the dense side: one entry per pool number is cheap up
// to here, and anything larger only appears in hand-crafted inputs.
const maxDensePool = 1 << 12

func (t *poolTable[V]) get(k int) V {
	if k >= 0 && k < len(t.dense) {
		return t.dense[k]
	}
	if k >= 0 && k < maxDensePool {
		var zero V
		return zero
	}
	return t.sparse[k]
}

func (t *poolTable[V]) set(k int, v V) {
	if k >= 0 && k < maxDensePool {
		var zero V
		for len(t.dense) <= k {
			t.dense = append(t.dense, zero)
		}
		t.dense[k] = v
		return
	}
	if t.sparse == nil {
		t.sparse = map[int]V{}
	}
	t.sparse[k] = v
}

// each visits live entries: dense keys ascending, then sparse keys sorted,
// so iteration is deterministic. Callers that need a global key order sort
// the collected keys themselves.
func (t *poolTable[V]) each(fn func(k int, v V)) {
	var zero V
	for k, v := range t.dense {
		if v != zero {
			fn(k, v)
		}
	}
	if len(t.sparse) > 0 {
		keys := make([]int, 0, len(t.sparse))
		for k := range t.sparse { //maporder:ok — sorted below
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if v := t.sparse[k]; v != zero {
				fn(k, v)
			}
		}
	}
}
