// Corpus tests: every program the repo considers correct must verify with
// zero diagnostics — not merely zero errors — so the static checker can gate
// the pipeline without crying wolf. The corpus is (a) every built-in paper
// application (internal/apps, which the examples/ programs drive), and
// (b) the property-based random program generator. The complementary
// negative corpus — programs that must be flagged — lives in check_test.go,
// mirroring the runtime deadlock table of internal/mpi/deadlock_test.go.
//
// This is an external test package: proxy (for RandomProgram) depends on
// codegen, which depends on check for the verification stamp.
package check_test

import (
	"testing"

	"siesta/internal/apps"
	"siesta/internal/check"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/proxy"
	"siesta/internal/trace"
)

// traceAndMerge runs fn on a traced world and merges the trace.
func traceAndMerge(t *testing.T, fn func(*mpi.Rank), ranks int) *merge.Program {
	t.Helper()
	rec := trace.NewRecorder(ranks, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: ranks, Interceptor: rec, NoiseSigma: 0.004, Seed: 7})
	if _, err := w.Run(fn); err != nil {
		t.Fatalf("run: %v", err)
	}
	p, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return p
}

func mustVerifyClean(t *testing.T, p *merge.Program) {
	t.Helper()
	rep, err := check.Verify(p, check.Options{ExactBytes: true})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(rep.Diags) != 0 || rep.Truncated != 0 {
		t.Errorf("expected zero diagnostics, got:\n%s", rep)
	}
}

func TestBuiltinAppsVerifyClean(t *testing.T) {
	for _, spec := range apps.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			ranks := 0
			for r := 4; r <= 16; r++ {
				if spec.ValidRanks(r) {
					ranks = r
					break
				}
			}
			if ranks == 0 {
				t.Fatalf("%s supports no rank count in [4,16]", spec.Name)
			}
			fn, err := spec.Build(apps.Params{Ranks: ranks, Iters: 2})
			if err != nil {
				t.Fatal(err)
			}
			mustVerifyClean(t, traceAndMerge(t, fn, ranks))
		})
	}
}

func TestRandomProgramsVerifyClean(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(string(rune('A'+seed-1)), func(t *testing.T) {
			t.Parallel()
			ranks := 4 + int(seed%3)*2
			mustVerifyClean(t, traceAndMerge(t, proxy.RandomProgram(seed, 12), ranks))
		})
	}
}
