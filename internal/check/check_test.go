package check

import (
	"strings"
	"testing"

	"siesta/internal/merge"
	"siesta/internal/trace"
)

// The unit tests drive the verifier over hand-built traces: each test lists
// every rank's record sequence exactly as the tracing layer would have
// recorded it (relative ranks, pool numbers, wildcard encodings), merges it
// into a Program, and checks the diagnostics. Deadlocking programs cannot be
// produced by tracing a run (the run would never finish), which is exactly
// why the corpus here is constructed by hand.

// rec builds a Record with the tracing layer's default sentinel fields.
func rec(fn string, mut func(*trace.Record)) *trace.Record {
	r := &trace.Record{
		Func:        fn,
		DestRel:     trace.NoRank,
		SrcRel:      trace.NoRank,
		Tag:         trace.NoRank,
		RecvTag:     trace.NoRank,
		Root:        trace.NoRank,
		NewCommPool: -1,
		ReqPool:     -1,
	}
	if mut != nil {
		mut(r)
	}
	return r
}

func send(destRel, tag, bytes int) *trace.Record {
	return rec("MPI_Send", func(r *trace.Record) { r.DestRel, r.Tag, r.Bytes = destRel, tag, bytes })
}

func recv(srcRel, tag, bytes int) *trace.Record {
	return rec("MPI_Recv", func(r *trace.Record) { r.SrcRel, r.Tag, r.Bytes = srcRel, tag, bytes })
}

func isend(destRel, tag, bytes, pool int) *trace.Record {
	return rec("MPI_Isend", func(r *trace.Record) {
		r.DestRel, r.Tag, r.Bytes, r.ReqPool = destRel, tag, bytes, pool
	})
}

func irecv(srcRel, tag, pool int) *trace.Record {
	return rec("MPI_Irecv", func(r *trace.Record) { r.SrcRel, r.Tag, r.ReqPool = srcRel, tag, pool })
}

func wait(pool int) *trace.Record {
	return rec("MPI_Wait", func(r *trace.Record) { r.ReqPool = pool })
}

func waitall(pools ...int) *trace.Record {
	return rec("MPI_Waitall", func(r *trace.Record) { r.ReqPools = pools })
}

func barrier(commPool int) *trace.Record {
	return rec("MPI_Barrier", func(r *trace.Record) { r.CommPool = commPool })
}

func allreduce(commPool, bytes int, op string) *trace.Record {
	return rec("MPI_Allreduce", func(r *trace.Record) { r.CommPool, r.Bytes, r.Op = commPool, bytes, op })
}

func commDup(commPool, newPool int) *trace.Record {
	return rec("MPI_Comm_dup", func(r *trace.Record) { r.CommPool, r.NewCommPool = commPool, newPool })
}

func commFree(commPool int) *trace.Record {
	return rec("MPI_Comm_free", func(r *trace.Record) { r.CommPool = commPool })
}

// buildProgram assembles a per-rank record sequence into a merged program.
func buildProgram(t *testing.T, ranks [][]*trace.Record) *merge.Program {
	t.Helper()
	tr := &trace.Trace{NumRanks: len(ranks), Platform: "test", Impl: "test"}
	for i, events := range ranks {
		rt := &trace.RankTrace{Rank: i}
		index := map[string]int{}
		for _, r := range events {
			if r.IsCompute() {
				for len(rt.Clusters) <= r.ComputeCluster {
					rt.Clusters = append(rt.Clusters, &trace.Cluster{N: 1})
				}
			}
			key := r.KeyString()
			id, ok := index[key]
			if !ok {
				id = len(rt.Table)
				rt.Table = append(rt.Table, r)
				index[key] = id
			}
			rt.Events = append(rt.Events, id)
			rt.Durs = append(rt.Durs, 0)
		}
		tr.Ranks = append(tr.Ranks, rt)
	}
	p, err := merge.Build(tr, merge.Options{})
	if err != nil {
		t.Fatalf("merge.Build: %v", err)
	}
	return p
}

func verify(t *testing.T, ranks [][]*trace.Record, opts Options) *Report {
	t.Helper()
	rep, err := Verify(buildProgram(t, ranks), opts)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return rep
}

func wantRule(t *testing.T, rep *Report, rule string) Diagnostic {
	t.Helper()
	for _, d := range rep.Diags {
		if d.Rule == rule {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in report:\n%s", rule, rep)
	return Diagnostic{}
}

func wantClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Diags) != 0 {
		t.Fatalf("expected a clean report, got:\n%s", rep)
	}
}

func TestCleanNonblockingRing(t *testing.T) {
	// Classic halo ring: every rank Isends right, Irecvs from the left,
	// waits on both, then a barrier. SPMD-identical relative encodings.
	const P = 4
	ranks := make([][]*trace.Record, P)
	for i := range ranks {
		ranks[i] = []*trace.Record{
			isend(1, 0, 1024, 0),
			irecv(P-1, 0, 1),
			waitall(0, 1),
			barrier(0),
		}
	}
	rep := verify(t, ranks, Options{ExactBytes: true})
	wantClean(t, rep)
	if rep.NumRanks != P || rep.Events != 4*P {
		t.Errorf("report counts = (%d ranks, %d events), want (%d, %d)", rep.NumRanks, rep.Events, P, 4*P)
	}
}

func TestSendRecvCycleDeadlock(t *testing.T) {
	// Both ranks receive first: the head-to-head deadlock from the runtime
	// detector's test table, caught here without executing anything.
	ranks := [][]*trace.Record{
		{recv(1, 0, 64), send(1, 0, 64)},
		{recv(1, 0, 64), send(1, 0, 64)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleDeadlock)
	if len(d.Ranks) != 2 || d.Ranks[0] != 0 || d.Ranks[1] != 1 {
		t.Errorf("deadlock ranks = %v, want [0 1]", d.Ranks)
	}
	if !strings.Contains(d.Message, "cycle") {
		t.Errorf("deadlock message %q should name the dependency cycle", d.Message)
	}
	if d.Record < 0 || d.Path == "" {
		t.Errorf("deadlock diagnostic should be anchored, got record=%d path=%q", d.Record, d.Path)
	}
}

func TestUnmatchedSendIsWarning(t *testing.T) {
	ranks := [][]*trace.Record{
		{send(1, 3, 256)},
		{rec("MPI_Compute", nil)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleP2PUnmatchedSend)
	if d.Severity != Warning {
		t.Errorf("unmatched send severity = %v, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, "0->1 tag 3") {
		t.Errorf("message %q should name the channel", d.Message)
	}
	if rep.HasErrors() {
		t.Errorf("fire-and-forget send should not be an error:\n%s", rep)
	}
}

func TestLeakedIrecvIsError(t *testing.T) {
	// An Irecv that neither matches nor gets waited on: both the leak and
	// the dangling channel must be reported.
	ranks := [][]*trace.Record{
		{irecv(1, 7, 0)},
		{rec("MPI_Compute", nil)},
	}
	rep := verify(t, ranks, Options{})
	wantRule(t, rep, RuleRequestLeak)
	wantRule(t, rep, RuleP2PUnmatchedRecv)
	if !rep.HasErrors() {
		t.Errorf("leaked Irecv must be an error:\n%s", rep)
	}
}

func TestByteMismatch(t *testing.T) {
	ranks := [][]*trace.Record{
		{send(1, 0, 100)},
		{recv(1, 0, 200)},
	}
	if rep := verify(t, ranks, Options{ExactBytes: true}); !rep.HasErrors() {
		t.Errorf("exact mode must flag 100 vs 200 bytes:\n%s", rep)
	} else if d := wantRule(t, rep, RuleP2PBytes); d.Severity != Error {
		t.Errorf("byte mismatch severity = %v, want error", d.Severity)
	}
	// Lenient mode tolerates scaled sizes as long as both are nonzero.
	if rep := verify(t, ranks, Options{}); rep.HasErrors() {
		t.Errorf("lenient mode should tolerate nonzero scaling:\n%s", rep)
	}
}

func TestZeroByteMismatch(t *testing.T) {
	ranks := [][]*trace.Record{
		{send(1, 0, 0)},
		{recv(1, 0, 512)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleP2PBytes)
	if !rep.HasErrors() {
		t.Errorf("zero/nonzero pair must be an error even in lenient mode, got %v", d)
	}
}

func TestCollectiveFuncMismatch(t *testing.T) {
	ranks := [][]*trace.Record{
		{barrier(0)},
		{allreduce(0, 64, "sum")},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleCollMismatch)
	if !strings.Contains(d.Message, "MPI_Barrier") || !strings.Contains(d.Message, "MPI_Allreduce") {
		t.Errorf("mismatch message %q should name both collectives", d.Message)
	}
}

func TestCollectiveRootMismatch(t *testing.T) {
	bcast := func(root int) *trace.Record {
		return rec("MPI_Bcast", func(r *trace.Record) { r.Root, r.Bytes = root, 64 })
	}
	ranks := [][]*trace.Record{
		{bcast(0)},
		{bcast(1)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleCollMismatch)
	if !strings.Contains(d.Message, "root") {
		t.Errorf("mismatch message %q should mention the roots", d.Message)
	}
}

func TestMissingCollectiveParticipant(t *testing.T) {
	ranks := [][]*trace.Record{
		{barrier(0)},
		{barrier(0)},
		{rec("MPI_Compute", nil)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleDeadlock)
	if len(d.Ranks) != 2 || d.Ranks[0] != 0 || d.Ranks[1] != 1 {
		t.Errorf("deadlock ranks = %v, want [0 1] (rank 2 exited)", d.Ranks)
	}
	if !strings.Contains(d.Message, "2/3 arrived") {
		t.Errorf("message %q should report the arrival count", d.Message)
	}
	wantRule(t, rep, RuleCollLength)
}

func TestMismatchedCollectiveOrderAcrossComms(t *testing.T) {
	// Rank 0 enters the barrier on the world comm first, rank 1 on the
	// duplicate first: a cross-communicator ordering deadlock.
	ranks := [][]*trace.Record{
		{commDup(0, 1), barrier(0), barrier(1)},
		{commDup(0, 1), barrier(1), barrier(0)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleDeadlock)
	if len(d.Ranks) != 2 {
		t.Fatalf("deadlock ranks = %v, want both", d.Ranks)
	}
	if !strings.Contains(d.Message, "cycle") {
		t.Errorf("message %q should contain the dependency cycle", d.Message)
	}
}

func TestCommLifecycle(t *testing.T) {
	// Dup, use, free, reuse of the pool number: clean.
	clean := [][]*trace.Record{
		{commDup(0, 1), allreduce(1, 8, "sum"), commFree(1), commDup(0, 1), barrier(1), commFree(1)},
		{commDup(0, 1), allreduce(1, 8, "sum"), commFree(1), commDup(0, 1), barrier(1), commFree(1)},
	}
	wantClean(t, verify(t, clean, Options{ExactBytes: true}))

	// Use after free.
	uaf := [][]*trace.Record{
		{commDup(0, 1), commFree(1), allreduce(1, 8, "sum")},
		{commDup(0, 1), commFree(1), allreduce(1, 8, "sum")},
	}
	d := wantRule(t, verify(t, uaf, Options{}), RuleHandleComm)
	if d.Severity != Error {
		t.Errorf("use-after-free severity = %v, want error", d.Severity)
	}

	// Freeing MPI_COMM_WORLD.
	world := [][]*trace.Record{{commFree(0)}}
	wantRule(t, verify(t, world, Options{}), RuleHandleComm)
}

func TestWaitOnDanglingRequest(t *testing.T) {
	ranks := [][]*trace.Record{{wait(3)}}
	d := wantRule(t, verify(t, ranks, Options{}), RuleHandleRequest)
	if !strings.Contains(d.Message, "pool 3") {
		t.Errorf("message %q should name the pool", d.Message)
	}
}

func TestWaitOnNeverSentMessage(t *testing.T) {
	// The runtime table's "wait on never-sent message": rank 1 finishes
	// without sending, so there is no cycle, but rank 0 is provably stuck.
	ranks := [][]*trace.Record{
		{irecv(1, 7, 0), wait(0)},
		{rec("MPI_Compute", nil)},
	}
	rep := verify(t, ranks, Options{})
	d := wantRule(t, rep, RuleDeadlock)
	if len(d.Ranks) != 1 || d.Ranks[0] != 0 {
		t.Errorf("deadlock ranks = %v, want [0]", d.Ranks)
	}
	if !strings.Contains(d.Message, "MPI_Irecv") || !strings.Contains(d.Message, "tag 7") {
		t.Errorf("message %q should name the originating Irecv and tag", d.Message)
	}
}

func TestWildcardRecvClean(t *testing.T) {
	// The runtime table's wildcard near miss: rank 0 consumes two wildcard
	// receives that both partners eventually satisfy.
	wild := func() *trace.Record {
		return rec("MPI_Recv", func(r *trace.Record) {
			r.SrcRel, r.Tag, r.Bytes = trace.Wildcard, trace.Wildcard, 1<<20
		})
	}
	// Rank 1 sends to rank 0 (rel = (0-1+3)%3 = 2) tag 1; rank 2 sends to
	// rank 0 (rel = (0-2+3)%3 = 1) tag 2 — mirroring the runtime test.
	ranks := [][]*trace.Record{
		{wild(), wild()},
		{rec("MPI_Compute", nil), send(2, 1, 1<<20)},
		{rec("MPI_Compute", nil), send(1, 2, 1<<20)},
	}
	wantClean(t, verify(t, ranks, Options{ExactBytes: true}))
}

func TestEagerCompletionClean(t *testing.T) {
	ranks := [][]*trace.Record{
		{irecv(1, 0, 0), wait(0)},
		{rec("MPI_Compute", nil), send(1, 0, 8)},
	}
	wantClean(t, verify(t, ranks, Options{ExactBytes: true}))
}

func TestSsendMatchedClean(t *testing.T) {
	ssend := func(destRel, tag, bytes int) *trace.Record {
		return rec("MPI_Ssend", func(r *trace.Record) { r.DestRel, r.Tag, r.Bytes = destRel, tag, bytes })
	}
	ranks := [][]*trace.Record{
		{ssend(1, 0, 64)},
		{recv(1, 0, 64)},
	}
	wantClean(t, verify(t, ranks, Options{ExactBytes: true}))
}

func TestPersistentRequestClean(t *testing.T) {
	sendInit := rec("MPI_Send_init", func(r *trace.Record) { r.DestRel, r.Tag, r.Bytes, r.ReqPool = 1, 0, 128, 0 })
	recvInit := rec("MPI_Recv_init", func(r *trace.Record) { r.SrcRel, r.Tag, r.ReqPool = 1, 0, 1 })
	start := func(pool int) *trace.Record {
		return rec("MPI_Start", func(r *trace.Record) { r.ReqPool = pool })
	}
	free := func(pool int) *trace.Record {
		return rec("MPI_Request_free", func(r *trace.Record) { r.ReqPool = pool })
	}
	var seq []*trace.Record
	seq = append(seq, sendInit, recvInit)
	for i := 0; i < 3; i++ {
		seq = append(seq, start(0), start(1), waitall(0, 1))
	}
	seq = append(seq, free(0), free(1))
	ranks := [][]*trace.Record{seq, seq}
	wantClean(t, verify(t, ranks, Options{ExactBytes: true}))
}

func TestDoubleStartFlagged(t *testing.T) {
	sendInit := rec("MPI_Send_init", func(r *trace.Record) { r.DestRel, r.Tag, r.Bytes, r.ReqPool = 0, 0, 8, 0 })
	start := rec("MPI_Start", func(r *trace.Record) { r.ReqPool = 0 })
	ranks := [][]*trace.Record{{sendInit, start, start.Clone()}}
	d := wantRule(t, verify(t, ranks, Options{}), RuleHandleRequest)
	if !strings.Contains(d.Message, "active") {
		t.Errorf("message %q should report the double start", d.Message)
	}
}

func TestTestPollAmbiguityTolerated(t *testing.T) {
	// A Test-polling loop traces the same terminal whether the flag was
	// true or false; the checker must neither flag the poll nor report the
	// request as leaked.
	testRec := func(pool int) *trace.Record {
		return rec("MPI_Test", func(r *trace.Record) { r.ReqPool = pool })
	}
	ranks := [][]*trace.Record{
		{irecv(1, 0, 0), testRec(0), testRec(0)},
		{send(1, 0, 32), rec("MPI_Compute", nil), rec("MPI_Compute", nil)},
	}
	wantClean(t, verify(t, ranks, Options{ExactBytes: true}))
}

func TestFileLifecycle(t *testing.T) {
	open := rec("MPI_File_open", func(r *trace.Record) { r.FileName = "out.dat"; r.FilePool = 0 })
	writeAll := rec("MPI_File_write_at_all", func(r *trace.Record) { r.Bytes = 4096; r.FilePool = 0 })
	closeF := rec("MPI_File_close", func(r *trace.Record) { r.FilePool = 0 })
	seq := []*trace.Record{open, writeAll, closeF}
	wantClean(t, verify(t, [][]*trace.Record{seq, cloneSeq(seq)}, Options{ExactBytes: true}))

	// Write on a closed file.
	bad := []*trace.Record{open.Clone(), closeF.Clone(), writeAll.Clone()}
	rep := verify(t, [][]*trace.Record{bad, cloneSeq(bad)}, Options{})
	wantRule(t, rep, RuleHandleFile)
}

func cloneSeq(seq []*trace.Record) []*trace.Record {
	out := make([]*trace.Record, len(seq))
	for i, r := range seq {
		out[i] = r.Clone()
	}
	return out
}

func TestMaxDiagnosticsTruncates(t *testing.T) {
	// 8 independent dangling waits with one-diagnostic budget.
	var seq []*trace.Record
	for q := 0; q < 8; q++ {
		seq = append(seq, wait(10+q))
	}
	rep := verify(t, [][]*trace.Record{seq}, Options{MaxDiagnostics: 1})
	if len(rep.Diags) != 1 || rep.Truncated != 7 {
		t.Errorf("got %d diags, %d truncated; want 1 and 7", len(rep.Diags), rep.Truncated)
	}
	if !strings.Contains(rep.Summary(), "truncated") {
		t.Errorf("summary %q should mention truncation", rep.Summary())
	}
}

func TestSummaryClean(t *testing.T) {
	ranks := [][]*trace.Record{
		{barrier(0)},
		{barrier(0)},
	}
	rep := verify(t, ranks, Options{})
	if !strings.Contains(rep.Summary(), "clean") {
		t.Errorf("summary %q should say clean", rep.Summary())
	}
}
