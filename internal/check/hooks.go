package check

import "siesta/internal/trace"

// Hooks receives a callback stream from the abstract machine as it discharges
// the program. The machine's greedy fixpoint executes events in a valid
// topological order of the blocking-dependency graph — a send's Send callback
// always precedes the matching receive's RecvComplete, and every member's
// CollArrive precedes the collective's completion on any member — so a
// listener can fold dependency-sensitive metrics (message matrices under
// communicator splits, per-communicator collective stats, critical-path
// clocks) in a single pass without re-deriving MPI matching. Package statics
// is the intended consumer.
//
// Callbacks fire synchronously on the verifier's goroutine; implementations
// must not retain the members slice or the records beyond the call.
type Hooks interface {
	// Exec fires once per completed event, in each rank's program order,
	// immediately before the machine moves past it. term is the global
	// terminal id, rec the terminal's record.
	Exec(rank, idx, term int, rec *trace.Record)

	// Send fires when a send event posts a message, with source and
	// destination resolved to world ranks. msgID is a machine-global
	// sequential message identity; the matching RecvComplete quotes it.
	// Sends to MPI_PROC_NULL and sends on invalid communicators never fire.
	Send(msgID, src, dst, tag, bytes, term int)

	// RecvComplete fires when rank's event idx observes the completion of a
	// matched receive: at the blocking receive itself (MPI_Recv,
	// MPI_Sendrecv) or at the wait that discharges a nonblocking or
	// persistent receive. Receives that never match never fire.
	RecvComplete(rank, idx, msgID int)

	// CollArrive fires when rank's event idx registers at a collective slot
	// (commID, seq): commID is the communicator-instance identity, members
	// its world-rank membership, and blocking distinguishes blocking
	// collectives from MPI_Ibarrier-family arrivals.
	CollArrive(rank, idx, commID int, members []int, seq int, blocking bool, rec *trace.Record)

	// CollComplete fires once per collective slot, when its last member
	// arrives.
	CollComplete(commID, seq int)
}
