package codegen

import (
	"strings"
	"testing"

	"siesta/internal/apps"
	"siesta/internal/merge"
	"siesta/internal/mpi"
	"siesta/internal/platform"
	"siesta/internal/trace"
)

// buildProgram traces CG at small scale and merges it.
func buildProgram(t *testing.T) (*merge.Program, *trace.Trace) {
	t.Helper()
	spec, err := apps.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := spec.Build(apps.Params{Ranks: 8, Iters: 3, WorkScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(8, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: 8, Interceptor: rec, NoiseSigma: 0.004, Seed: 11})
	if _, err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace("A", "openmpi")
	prog, err := merge.Build(tr, merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, tr
}

func TestGenerateUnscaled(t *testing.T) {
	prog, _ := buildProgram(t)
	gen, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Combos) != len(prog.Clusters) {
		t.Fatalf("one combination per cluster expected: %d vs %d", len(gen.Combos), len(prog.Clusters))
	}
	for i, c := range gen.Combos {
		if !c.Valid() {
			t.Errorf("combo %d violates constraints: %+v", i, c)
		}
		if c.Total() == 0 {
			t.Errorf("combo %d is empty", i)
		}
	}
	if gen.SizeC <= 0 {
		t.Error("SizeC must be positive")
	}
	if gen.Prog != prog {
		t.Error("unscaled generation should not clone the program")
	}
	if gen.Scale != 1 {
		t.Errorf("scale defaulted to %v", gen.Scale)
	}
}

func TestGenerateScaledShrinksComputation(t *testing.T) {
	prog, tr := buildProgram(t)
	gen1, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen10, err := Generate(prog, Options{Scale: 10, CommSamples: CollectCommSamples(tr)})
	if err != nil {
		t.Fatal(err)
	}
	p := platform.A
	for i := range gen1.Combos {
		t1 := gen1.Combos[i].Seconds(p)
		t10 := gen10.Combos[i].Seconds(p)
		if t10 >= t1 {
			t.Errorf("cluster %d: scaled combo (%.2e s) not smaller than unscaled (%.2e s)", i, t10, t1)
		}
		ratio := t1 / t10
		if ratio < 5 || ratio > 20 {
			t.Errorf("cluster %d: shrink ratio %.1f, want ≈10", i, ratio)
		}
	}
}

func TestGenerateScaledShrinksCommunication(t *testing.T) {
	prog, tr := buildProgram(t)
	gen, err := Generate(prog, Options{Scale: 10, CommSamples: CollectCommSamples(tr)})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Prog == prog {
		t.Fatal("scaled generation must clone the program")
	}
	shrunk := false
	for i, r := range gen.Prog.Terminals {
		orig := prog.Terminals[i]
		if r.Func != orig.Func {
			t.Fatal("terminal order changed")
		}
		if blockingFuncs[r.Func] && orig.Bytes > 1024 && r.Bytes < orig.Bytes {
			shrunk = true
		}
		if r.Bytes > orig.Bytes {
			t.Errorf("terminal %d grew: %d -> %d", i, orig.Bytes, r.Bytes)
		}
	}
	if !shrunk {
		t.Error("no blocking communication volume was shrunk")
	}
}

func TestRegression(t *testing.T) {
	samples := []CommSample{
		{Func: "MPI_Send", Bytes: 1000, Dur: 2e-6},
		{Func: "MPI_Send", Bytes: 2000, Dur: 3e-6},
		{Func: "MPI_Send", Bytes: 4000, Dur: 5e-6},
	}
	regs := fitRegressions(samples)
	rg := regs["MPI_Send"]
	if rg.N != 3 {
		t.Fatalf("N = %d", rg.N)
	}
	// Exact fit: T = 1e-6 + 1e-9·bytes.
	if diff := rg.Predict(3000) - 4e-6; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Predict(3000) = %v", rg.Predict(3000))
	}
	// Shrinking by 2: predicted time halves.
	nb := rg.ShrinkBytes(4000, 2)
	if d := rg.Predict(nb) - rg.Predict(4000)/2; d > 1e-7 || d < -1e-7 {
		t.Errorf("shrunk volume %d mispredicts", nb)
	}
	// Degenerate fits fall back to identity.
	one := fitRegressions(samples[:1])["MPI_Send"]
	if one.ShrinkBytes(500, 10) != 500 {
		t.Error("single-sample regression must not shrink")
	}
}

// Shrinking must never turn a real message into an empty one: zero-byte
// transfers are a different message class (eager matching, verification
// semantics), so the clamp floor is 1 byte for any nonzero original.
func TestShrinkBytesNeverReachesZero(t *testing.T) {
	// Steep fit with zero intercept: target volume for large scales
	// rounds to 0 without the clamp.
	rg := Regression{Alpha: 0, Beta: 1e-9, N: 3}
	for _, tc := range []struct {
		bytes int
		scale float64
	}{
		{1, 10}, {4, 1000}, {100, 1e6}, {1 << 20, 1e12},
	} {
		if got := rg.ShrinkBytes(tc.bytes, tc.scale); got < 1 {
			t.Errorf("ShrinkBytes(%d, %g) = %d, want >= 1", tc.bytes, tc.scale, got)
		}
	}
	if got := rg.ShrinkBytes(0, 10); got != 0 {
		t.Errorf("ShrinkBytes(0, 10) = %d, want 0 (empty messages stay empty)", got)
	}
	// Nonzero intercept makes the inverted target negative: still 1.
	rg = Regression{Alpha: 5e-6, Beta: 1e-9, N: 3}
	if got := rg.ShrinkBytes(1000, 100); got < 1 {
		t.Errorf("negative inverted volume: got %d, want >= 1", got)
	}
}

func TestShrinkProgramKeepsNonzeroCounts(t *testing.T) {
	prog, tr := buildProgram(t)
	// Plant a v-collective with small nonzero per-destination counts so an
	// aggressive shrink would round them to zero.
	prog.Terminals = append(prog.Terminals, &trace.Record{
		Func: "MPI_Alltoallv", Bytes: 4096, Counts: []int{1, 1, 4094},
	})
	gen, err := Generate(prog, Options{Scale: 1e6, CommSamples: CollectCommSamples(tr)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range gen.Prog.Terminals {
		orig := prog.Terminals[i]
		if orig.Bytes > 0 && r.Bytes < 1 {
			t.Errorf("terminal %d (%s): %d bytes shrunk to %d", i, r.Func, orig.Bytes, r.Bytes)
		}
		for j := range r.Counts {
			if orig.Counts[j] > 0 && r.Counts[j] < 1 {
				t.Errorf("terminal %d (%s): count[%d] %d shrunk to %d",
					i, r.Func, j, orig.Counts[j], r.Counts[j])
			}
		}
	}
}

func TestCSourceStructure(t *testing.T) {
	prog, _ := buildProgram(t)
	gen, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := gen.CSource()
	for _, want := range []string{
		"#include <mpi.h>",
		"MPI_Init", "MPI_Finalize",
		"MPI_Comm_rank", "comm_pool[0] = MPI_COMM_WORLD",
		"MPI_Sendrecv", "MPI_Allreduce",
		"compute_0", "static void T0", "int main",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C lacks %q", want)
		}
	}
	// Balanced braces: a cheap well-formedness check.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in generated C")
	}
	// One function per terminal and per rule.
	for id := range prog.Terminals {
		if !strings.Contains(src, "static void T"+itoa(id)+"(void)") {
			t.Errorf("terminal %d has no function", id)
		}
	}
	for id := range prog.Rules {
		if !strings.Contains(src, "static void R"+itoa(id)+"(void)") {
			t.Errorf("rule %d has no function", id)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCSourceRankBranches(t *testing.T) {
	// An app with rank-dependent structure (master/worker) must emit rank
	// branch statements.
	rec := trace.NewRecorder(4, trace.Config{})
	w := mpi.NewWorld(mpi.Config{Size: 4, Interceptor: rec, Seed: 1})
	_, err := w.Run(func(r *mpi.Rank) {
		if r.Rank() == 0 {
			for s := 1; s < 4; s++ {
				r.Recv(r.World(), s, 0)
			}
		} else {
			r.Send(r.World(), 0, 0, 64)
		}
		r.Barrier(r.World())
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := merge.Build(rec.Trace("A", "openmpi"), merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := gen.CSource()
	if !strings.Contains(src, "rank ==") && !strings.Contains(src, "rank >=") && !strings.Contains(src, "rank <=") {
		t.Error("rank-dependent program should generate rank conditions")
	}
}

func TestCollectCommSamples(t *testing.T) {
	_, tr := buildProgram(t)
	samples := CollectCommSamples(tr)
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	for _, s := range samples {
		if !blockingFuncs[s.Func] {
			t.Errorf("non-blocking function sampled: %s", s.Func)
		}
		if s.Dur < 0 {
			t.Error("negative duration")
		}
	}
}

func TestSizeCIncludesCombos(t *testing.T) {
	prog, _ := buildProgram(t)
	gen, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.SizeC <= len(prog.Encode()) {
		t.Error("SizeC should include the computation block table")
	}
}
