package codegen

import (
	"strings"
	"testing"

	"siesta/internal/merge"
	"siesta/internal/rankset"
	"siesta/internal/trace"
)

// programWithEveryTerminal constructs a synthetic merged program containing
// one terminal per supported function, so the C emitter's every branch is
// exercised and inspected.
func programWithEveryTerminal() *merge.Program {
	mk := func(f string, mut func(*trace.Record)) *trace.Record {
		r := &trace.Record{
			Func: f, DestRel: trace.NoRank, SrcRel: trace.NoRank,
			Tag: 0, RecvTag: 0, Root: 0, NewCommPool: -1, ReqPool: -1,
		}
		if mut != nil {
			mut(r)
		}
		return r
	}
	terms := []*trace.Record{
		mk("MPI_Compute", func(r *trace.Record) { r.ComputeCluster = 0 }),
		mk("MPI_Send", func(r *trace.Record) { r.DestRel = 1; r.Bytes = 100 }),
		mk("MPI_Ssend", func(r *trace.Record) { r.DestRel = 2; r.Bytes = 200 }),
		mk("MPI_Recv", func(r *trace.Record) { r.SrcRel = trace.Wildcard; r.Tag = trace.Wildcard }),
		mk("MPI_Probe", func(r *trace.Record) { r.SrcRel = 1 }),
		mk("MPI_Iprobe", func(r *trace.Record) { r.SrcRel = 1 }),
		mk("MPI_Isend", func(r *trace.Record) { r.DestRel = 0; r.Bytes = 64; r.ReqPool = 0 }),
		mk("MPI_Irecv", func(r *trace.Record) { r.SrcRel = 3; r.ReqPool = 1 }),
		mk("MPI_Wait", func(r *trace.Record) { r.ReqPool = 0 }),
		mk("MPI_Waitall", func(r *trace.Record) { r.ReqPools = []int{0, 1} }),
		mk("MPI_Waitany", func(r *trace.Record) { r.ReqPool = 1; r.ReqPools = []int{0, 1} }),
		mk("MPI_Test", func(r *trace.Record) { r.ReqPool = 0 }),
		mk("MPI_Testall", func(r *trace.Record) { r.ReqPools = []int{0} }),
		mk("MPI_Send_init", func(r *trace.Record) { r.DestRel = 1; r.Bytes = 128; r.ReqPool = 2 }),
		mk("MPI_Recv_init", func(r *trace.Record) { r.SrcRel = 1; r.ReqPool = 3 }),
		mk("MPI_Start", func(r *trace.Record) { r.ReqPool = 2 }),
		mk("MPI_Request_free", func(r *trace.Record) { r.ReqPool = 2 }),
		mk("MPI_Sendrecv", func(r *trace.Record) { r.DestRel = 1; r.SrcRel = 7; r.Bytes = 99 }),
		mk("MPI_Barrier", nil),
		mk("MPI_Bcast", func(r *trace.Record) { r.Bytes = 10 }),
		mk("MPI_Reduce", func(r *trace.Record) { r.Op = "max"; r.Bytes = 8 }),
		mk("MPI_Allreduce", func(r *trace.Record) { r.Op = "min"; r.Bytes = 8 }),
		mk("MPI_Scan", func(r *trace.Record) { r.Op = "sum"; r.Bytes = 8 }),
		mk("MPI_Exscan", func(r *trace.Record) { r.Op = ""; r.Bytes = 8 }),
		mk("MPI_Reduce_scatter", func(r *trace.Record) { r.Op = "sum"; r.Bytes = 8 }),
		mk("MPI_Gather", func(r *trace.Record) { r.Bytes = 16 }),
		mk("MPI_Gatherv", func(r *trace.Record) { r.Bytes = 16 }),
		mk("MPI_Scatter", func(r *trace.Record) { r.Bytes = 16 }),
		mk("MPI_Allgather", func(r *trace.Record) { r.Bytes = 16 }),
		mk("MPI_Allgatherv", func(r *trace.Record) { r.Bytes = 16 }),
		mk("MPI_Alltoall", func(r *trace.Record) { r.Bytes = 16 }),
		mk("MPI_Alltoallv", func(r *trace.Record) { r.Counts = []int{1, 2, 3, 4} }),
		mk("MPI_Comm_split", func(r *trace.Record) { r.Color = 1; r.Key = 0; r.NewCommPool = 1 }),
		mk("MPI_Comm_dup", func(r *trace.Record) { r.NewCommPool = 2 }),
		mk("MPI_Comm_free", func(r *trace.Record) { r.CommPool = 2 }),
		mk("MPI_File_open", func(r *trace.Record) { r.FileName = "chk.dat"; r.FilePool = 0 }),
		mk("MPI_File_write_at", func(r *trace.Record) { r.Bytes = 4096; r.OffsetRel = 128 }),
		mk("MPI_File_read_at", func(r *trace.Record) { r.Bytes = 4096 }),
		mk("MPI_File_write_at_all", func(r *trace.Record) { r.Bytes = 4096 }),
		mk("MPI_File_read_at_all", func(r *trace.Record) { r.Bytes = 4096 }),
		mk("MPI_File_close", nil),
	}
	body := make([]merge.MainSym, len(terms))
	all := rankset.Range(0, 4)
	for i := range terms {
		ranks := all
		if i%7 == 3 {
			ranks = rankset.New(0, 2) // force some rank branches
		}
		body[i] = merge.MainSym{Sym: merge.Sym{Ref: i, Count: 1 + i%3}, Ranks: ranks}
	}
	cl := &trace.Cluster{N: 1}
	cl.Sum[0], cl.Sum[1] = 1e6, 4e5
	cl.Rep = cl.Sum
	return &merge.Program{
		NumRanks:  4,
		Platform:  "A",
		Impl:      "openmpi",
		Terminals: terms,
		Clusters:  []*trace.Cluster{cl},
		Mains:     []merge.Main{{Ranks: all, Body: body}},
	}
}

func TestCSourceEmitsEveryCallKind(t *testing.T) {
	prog := programWithEveryTerminal()
	gen, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := gen.CSource()
	for _, want := range []string{
		"MPI_Send(", "MPI_Ssend(", "MPI_Recv(", "MPI_Probe(", "MPI_Iprobe(",
		"MPI_Isend(", "MPI_Irecv(", "MPI_Wait(", "MPI_Test(",
		"MPI_Send_init(", "MPI_Recv_init(", "MPI_Start(", "MPI_Request_free(",
		"MPI_Sendrecv(", "MPI_Barrier(", "MPI_Bcast(", "MPI_Reduce(",
		"MPI_Allreduce(", "MPI_Scan(", "MPI_Exscan(", "MPI_Reduce_scatter(",
		"MPI_Gather(", "MPI_Scatter(", "MPI_Allgather(", "MPI_Alltoall(",
		"MPI_Alltoallv(", "MPI_Comm_split(", "MPI_Comm_dup(", "MPI_Comm_free(",
		"MPI_File_open(", "MPI_File_write_at(", "MPI_File_read_at(",
		"MPI_File_write_at_all(", "MPI_File_read_at_all(", "MPI_File_close(",
		"MPI_ANY_SOURCE", "MPI_ANY_TAG", "MPI_MAX", "MPI_MIN", "MPI_SUM",
		"compute_0", "file_pool", "req_pool", "comm_pool",
		"rank ==", "for (long r_",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C lacks %q", want)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
	if strings.Contains(src, "unsupported:") {
		t.Error("emitter fell through to the unsupported branch")
	}
}

func TestRankCond(t *testing.T) {
	cases := []struct {
		in   [][2]int
		want string
	}{
		{nil, "0"},
		{[][2]int{{3, 3}}, "rank == 3"},
		{[][2]int{{0, 5}}, "rank <= 5"},
		{[][2]int{{2, 4}}, "(rank >= 2 && rank <= 4)"},
		{[][2]int{{0, 1}, {5, 5}}, "rank <= 1 || rank == 5"},
	}
	for _, c := range cases {
		if got := rankCond(c.in); got != c.want {
			t.Errorf("rankCond(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRelAndTagExpr(t *testing.T) {
	if relExpr(trace.NoRank) != "MPI_PROC_NULL" || relExpr(trace.Wildcard) != "MPI_ANY_SOURCE" {
		t.Error("sentinel rel expressions wrong")
	}
	if relExpr(0) != "rank" || !strings.Contains(relExpr(3), "+ 3") {
		t.Error("rel offsets wrong")
	}
	if tagExpr(trace.Wildcard) != "MPI_ANY_TAG" || tagExpr(trace.NoRank) != "0" || tagExpr(7) != "7" {
		t.Error("tag expressions wrong")
	}
	if cOp("max") != "MPI_MAX" || cOp("min") != "MPI_MIN" || cOp("") != "MPI_SUM" {
		t.Error("op mapping wrong")
	}
}
