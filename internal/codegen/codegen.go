// Package codegen implements Siesta's code generation (paper §2.7 and
// Algorithm 1). From a merged Program it produces (a) the computation-proxy
// table — one searched block combination per computation cluster, (b) an
// optionally comm-shrunk copy of the program for scaled proxies, (c) the
// generated C source text, and (d) the size_C accounting (exported grammar +
// computation code blocks).
package codegen

import (
	"fmt"
	"math"
	"sort"

	"siesta/internal/blocks"
	"siesta/internal/check"
	"siesta/internal/merge"
	"siesta/internal/perfmodel"
	"siesta/internal/platform"
	"siesta/internal/qp"
	"siesta/internal/trace"
)

// Options controls generation.
type Options struct {
	// Platform is the system the micro-benchmarks run on (where the proxy
	// is generated). Defaults to platform.A.
	Platform *platform.Platform
	// Scale is the shrinking factor; 1 (or 0) disables shrinking, 10 is
	// the paper's Siesta-scaled default.
	Scale float64
	// BenchNoise perturbs the micro-benchmark B matrix like real counter
	// readings would; nil measures exactly.
	BenchNoise *perfmodel.Noise
	// BMatrix, when non-nil, is a pre-measured micro-benchmark matrix and
	// Generate skips its own blocks.MeasureB call. core.Synthesize warms
	// it concurrently with the overlapped simulated runs; the caller must
	// have measured it from the same Platform and BenchNoise state that
	// Generate would have used, so results are byte-identical either way.
	BMatrix *qp.Matrix
	// CommSamples are (function, bytes, duration) observations from the
	// trace, used to fit the blocking-communication regression that
	// drives communication shrinking. Required when Scale > 1.
	CommSamples []CommSample
	// SearchMemo caches computation-proxy QP solves across clusters and
	// (when shared, e.g. the server's jobs) across generations. nil uses
	// the process-global blocks.DefaultMemo; caching never changes the
	// result, only skips resolving targets already solved for this B
	// matrix.
	SearchMemo *blocks.Memo
	// Check is the static verification report for the input program when
	// the caller already ran one (core.Synthesize passes its gate report
	// through). When nil — or when shrinking rewrote the program — Generate
	// re-verifies the program it actually emits. Verification findings
	// never fail generation; the summary is stamped into the C source
	// header instead.
	Check *check.Report
}

// CommSample is one blocking-communication timing observation.
type CommSample struct {
	Func  string
	Bytes int
	Dur   float64
}

// Regression is a least-squares linear fit T(bytes) = Alpha + Beta·bytes of
// one MPI function's execution time against its communication volume.
type Regression struct {
	Alpha, Beta float64
	N           int
}

// Predict evaluates the fit.
func (rg Regression) Predict(bytes int) float64 {
	return rg.Alpha + rg.Beta*float64(bytes)
}

// ShrinkBytes inverts the fit: the volume whose predicted time is the
// original's divided by scale, clamped to [1, bytes]. The lower clamp
// matters: a zero-byte message is a different message class — matching,
// eager-protocol, and verification semantics all distinguish empty from
// non-empty transfers — so shrinking must never erase a real payload.
func (rg Regression) ShrinkBytes(bytes int, scale float64) int {
	if rg.Beta <= 0 || rg.N < 2 || bytes <= 0 {
		return bytes
	}
	target := rg.Predict(bytes) / scale
	nb := (target - rg.Alpha) / rg.Beta
	if nb > float64(bytes) {
		nb = float64(bytes)
	}
	if out := int(math.Round(nb)); out >= 1 {
		return out
	}
	return 1
}

// Generated is the output of code generation: everything needed to run or
// print the proxy-app.
type Generated struct {
	Prog   *merge.Program       // possibly comm-shrunk program
	Combos []blocks.Combination // per computation cluster
	Scale  float64
	// SleepTimes are the per-cluster mean durations, retained so the
	// sleep-replay ablation can run from the same artifact.
	SleepTimes  []float64
	Regressions map[string]Regression
	// SizeC is the exported representation size: encoded program plus the
	// computation code-block table (paper Table 3's size_C).
	SizeC int
	// Check is the static verification report stamped into the C source
	// header; nil only if verification itself failed structurally.
	Check *check.Report
	// GeneratedOn names the platform whose B matrix the search used.
	GeneratedOn string
}

// blockingFuncs are the calls whose duration scales with volume and which
// communication shrinking therefore rewrites. Non-blocking calls "take tiny
// execution time and can be neglected" (paper §2.7).
var blockingFuncs = map[string]bool{
	"MPI_Send": true, "MPI_Recv": true, "MPI_Sendrecv": true,
	"MPI_Isend": true, // transfers expose at Wait once computation shrinks
	"MPI_Bcast": true, "MPI_Reduce": true, "MPI_Allreduce": true,
	"MPI_Gather": true, "MPI_Scatter": true, "MPI_Allgather": true,
	"MPI_Alltoall": true, "MPI_Alltoallv": true, "MPI_Gatherv": true,
	"MPI_Allgatherv": true,
}

// CollectCommSamples gathers blocking-communication timing samples from a
// trace for the shrink regression. Non-blocking calls are excluded: their
// call duration measures only software overhead, not the transfer, so they
// would poison the fit — their volumes are still shrunk (through the
// matching blocking fit) because the transfers they start expose at Wait.
func CollectCommSamples(tr *trace.Trace) []CommSample {
	var out []CommSample
	for _, rt := range tr.Ranks {
		if len(rt.Durs) != len(rt.Events) {
			continue // trace without timing (e.g. decoded from disk)
		}
		for i, id := range rt.Events {
			r := rt.Table[id]
			if blockingFuncs[r.Func] && r.Func != "MPI_Isend" {
				out = append(out, CommSample{Func: r.Func, Bytes: r.Bytes, Dur: rt.Durs[i]})
			}
		}
	}
	return out
}

// fitRegressions computes one linear fit per function, on the *minimum*
// duration observed per (function, volume): call durations in a trace
// include synchronization waits (rendezvous partners, collective
// stragglers), and the minimum isolates the transfer cost the shrink model
// needs. Many traces exercise a function at a single message size (a fixed
// halo width, say), which makes the per-function fit degenerate; those
// functions fall back to a pooled fit over all blocking samples, which spans
// the trace's full volume range.
func fitRegressions(samples []CommSample) map[string]Regression {
	type key struct {
		f string
		b int
	}
	mins := map[key]float64{}
	for _, s := range samples {
		k := key{s.Func, s.Bytes}
		if v, ok := mins[k]; !ok || s.Dur < v {
			mins[k] = s.Dur
		}
	}
	samples = samples[:0:0]
	for k, v := range mins { //maporder:ok — sorted below
		samples = append(samples, CommSample{Func: k.f, Bytes: k.b, Dur: v})
	}
	// The accumulator folds below sum floats, so the fold order — and with
	// it the last ulp of the fitted coefficients — must not depend on map
	// iteration order.
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Func != samples[j].Func {
			return samples[i].Func < samples[j].Func
		}
		return samples[i].Bytes < samples[j].Bytes
	})
	type acc struct {
		n                float64
		sx, sy, sxx, sxy float64
		minx, maxx       float64
	}
	fit := func(a *acc) (Regression, bool) {
		rg := Regression{N: int(a.n)}
		den := a.n*a.sxx - a.sx*a.sx
		// Require genuine volume variance for a meaningful slope.
		if a.n >= 2 && a.maxx > a.minx && den > 1e-30 {
			rg.Beta = (a.n*a.sxy - a.sx*a.sy) / den
			rg.Alpha = (a.sy - rg.Beta*a.sx) / a.n
			if rg.Beta < 0 {
				rg.Beta = 0
				rg.Alpha = a.sy / a.n
			}
			if rg.Alpha < 0 {
				rg.Alpha = 0
			}
			return rg, rg.Beta > 0
		}
		if a.n > 0 {
			rg.Alpha = a.sy / a.n
		}
		return rg, false
	}
	accs := map[string]*acc{}
	var pooled acc
	add := func(a *acc, x, y float64) {
		if a.n == 0 || x < a.minx {
			a.minx = x
		}
		if a.n == 0 || x > a.maxx {
			a.maxx = x
		}
		a.n++
		a.sx += x
		a.sy += y
		a.sxx += x * x
		a.sxy += x * y
	}
	for _, s := range samples {
		a := accs[s.Func]
		if a == nil {
			a = &acc{}
			accs[s.Func] = a
		}
		add(a, float64(s.Bytes), s.Dur)
		add(&pooled, float64(s.Bytes), s.Dur)
	}
	pooledFit, pooledOK := fit(&pooled)
	out := map[string]Regression{}
	for f, a := range accs {
		rg, ok := fit(a)
		if !ok && pooledOK {
			// Keep the function's own intercept scale but borrow the
			// pooled slope: T = mean(T_f) shifted by the pooled β.
			rg = Regression{
				Alpha: maxFloat(0, a.sy/a.n-pooledFit.Beta*a.sx/a.n),
				Beta:  pooledFit.Beta,
				N:     pooledFit.N,
			}
		}
		out[f] = rg
	}
	// Non-blocking sends shrink through the blocking-send fit: the
	// transfer they start is priced the same on the wire.
	if sendRg, ok := out["MPI_Send"]; ok && sendRg.Beta > 0 {
		out["MPI_Isend"] = sendRg
	} else if pooledOK {
		out["MPI_Isend"] = pooledFit
	}
	return out
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Generate runs the full code-generation stage.
func Generate(prog *merge.Program, opts Options) (*Generated, error) {
	if opts.Platform == nil {
		opts.Platform = platform.A
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	g := &Generated{
		Prog:        prog,
		Scale:       opts.Scale,
		GeneratedOn: opts.Platform.Name,
	}

	// Computation proxies: one constrained-QP search per cluster (§2.4),
	// against targets divided by the scaling factor (§2.7).
	bm := opts.BMatrix
	if bm == nil {
		bm = blocks.MeasureB(opts.Platform, opts.BenchNoise)
	}
	g.Combos = make([]blocks.Combination, len(prog.Clusters))
	g.SleepTimes = make([]float64, len(prog.Clusters))
	for i, cl := range prog.Clusters {
		target := cl.Target()
		if opts.Scale != 1 {
			target = target.Scale(1 / opts.Scale)
		}
		combo, err := blocks.CachedSearch(opts.SearchMemo, bm, target)
		if err != nil {
			return nil, fmt.Errorf("codegen: cluster %d: %w", i, err)
		}
		g.Combos[i] = combo
		g.SleepTimes[i] = cl.MeanTime() / opts.Scale
	}

	// Communication shrinking (§2.7): fit blocking-call time against
	// volume and rewrite volumes so each call's predicted time shrinks by
	// the scaling factor.
	if opts.Scale != 1 {
		g.Regressions = fitRegressions(opts.CommSamples)
		g.Prog = shrinkProgram(prog, g.Regressions, opts.Scale)
	}

	// Verification stamp: reuse the caller's report when it still describes
	// the program being emitted; after shrinking, re-verify the rewritten
	// program (lenient byte checking — shrinking changes volumes by design,
	// but must preserve matching structure). Failures here do not abort
	// generation: the report is advisory at this stage and the summary goes
	// into the C source header.
	if opts.Check != nil && g.Prog == prog {
		g.Check = opts.Check
	} else if rep, err := check.Verify(g.Prog, check.Options{}); err == nil {
		g.Check = rep
	}

	g.SizeC = len(g.Prog.Encode()) + len(encodeCombos(g.Combos))
	return g, nil
}

// shrinkProgram clones the program with blocking-communication volumes
// rewritten through the regressions.
func shrinkProgram(p *merge.Program, regs map[string]Regression, scale float64) *merge.Program {
	out := *p
	out.Terminals = make([]*trace.Record, len(p.Terminals))
	for i, r := range p.Terminals {
		if !blockingFuncs[r.Func] {
			out.Terminals[i] = r
			continue
		}
		rg, ok := regs[r.Func]
		if !ok {
			out.Terminals[i] = r
			continue
		}
		c := r.Clone()
		c.Bytes = rg.ShrinkBytes(r.Bytes, scale)
		if len(c.Counts) > 0 {
			// v-collectives: shrink per-destination counts in the
			// same proportion as the total.
			ratio := 0.0
			if r.Bytes > 0 {
				ratio = float64(c.Bytes) / float64(r.Bytes)
			}
			for j := range c.Counts {
				c.Counts[j] = int(math.Round(float64(c.Counts[j]) * ratio))
				if c.Counts[j] < 1 && r.Counts[j] > 0 {
					c.Counts[j] = 1 // like ShrinkBytes: keep nonzero lanes nonzero
				}
			}
		}
		out.Terminals[i] = c
	}
	return &out
}

// encodeCombos serializes the computation code-block table; its size counts
// toward size_C ("the sum of the size of the symbol table and the
// computation code blocks").
func encodeCombos(combos []blocks.Combination) []byte {
	var e trace.Enc
	e.Int(len(combos))
	for _, c := range combos {
		for _, n := range c.Counts {
			e.Varint(n)
		}
	}
	return e.Bytes()
}
