// Package perfmodel is the simulation's stand-in for PAPI and the hardware
// it reads. It maps abstract operation mixes (Kernel) executed on a given
// platform to the six hardware performance counters of the paper's Table 1
// plus a cycle count, and adds deterministic seeded measurement noise so the
// pipeline has to cope with the same imperfection real counters exhibit.
package perfmodel

import (
	"fmt"
	"math"

	"siesta/internal/platform"
)

// Metric indexes the six performance metrics of Table 1.
type Metric int

// The six metrics, in the paper's order.
const (
	INS   Metric = iota // instructions
	CYC                 // cycles
	LST                 // load/store instructions
	L1DCM               // L1 data cache misses
	BRCN                // conditional branches
	MSP                 // mispredicted conditional branches
	NumMetrics
)

// Names of the metrics, indexable by Metric.
var metricNames = [NumMetrics]string{"INS", "CYC", "LST", "L1_DCM", "BR_CN", "MSP"}

func (m Metric) String() string {
	if m < 0 || m >= NumMetrics {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// Counters is one sample of the six hardware counters.
type Counters [NumMetrics]float64

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	for i := range c {
		c[i] += o[i]
	}
}

// Scale multiplies every counter by f and returns the result.
func (c Counters) Scale(f float64) Counters {
	for i := range c {
		c[i] *= f
	}
	return c
}

// IPC reports instructions per cycle.
func (c Counters) IPC() float64 {
	if c[CYC] == 0 {
		return 0
	}
	return c[INS] / c[CYC]
}

// CMR reports the cache miss rate (L1 data misses per load/store).
func (c Counters) CMR() float64 {
	if c[LST] == 0 {
		return 0
	}
	return c[L1DCM] / c[LST]
}

// BMR reports the branch misprediction rate.
func (c Counters) BMR() float64 {
	if c[BRCN] == 0 {
		return 0
	}
	return c[MSP] / c[BRCN]
}

// RelError reports the mean relative error of c against the reference ref
// across the six metrics, skipping metrics whose reference value is zero.
func (c Counters) RelError(ref Counters) float64 {
	var sum float64
	var n int
	for i := range c {
		if ref[i] == 0 {
			continue
		}
		sum += math.Abs(c[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Kernel is an abstract operation mix describing one computation region.
// Applications (package apps) and the predefined proxy code blocks (package
// blocks) both describe their computation this way, so original programs and
// synthesized proxies are measured by the exact same model — cross-platform
// behaviour is emergent rather than baked in.
type Kernel struct {
	IntOps       int64 // simple integer ALU operations
	FPOps        int64 // pipelined floating-point operations (add/mul)
	DivOps       int64 // long-latency divisions, serialized
	Loads        int64 // load instructions
	Stores       int64 // store instructions
	Branches     int64 // well-structured conditional branches (loop exits &c.)
	RandBranches int64 // data-dependent branches, ~50% mispredicted
	MissLines    int64 // cache-line touches guaranteed to miss in L1D
}

// Add returns the element-wise sum of k and o.
func (k Kernel) Add(o Kernel) Kernel {
	return Kernel{
		IntOps:       k.IntOps + o.IntOps,
		FPOps:        k.FPOps + o.FPOps,
		DivOps:       k.DivOps + o.DivOps,
		Loads:        k.Loads + o.Loads,
		Stores:       k.Stores + o.Stores,
		Branches:     k.Branches + o.Branches,
		RandBranches: k.RandBranches + o.RandBranches,
		MissLines:    k.MissLines + o.MissLines,
	}
}

// ScaleInt returns k with every field multiplied by n.
func (k Kernel) ScaleInt(n int64) Kernel {
	return Kernel{
		IntOps:       k.IntOps * n,
		FPOps:        k.FPOps * n,
		DivOps:       k.DivOps * n,
		Loads:        k.Loads * n,
		Stores:       k.Stores * n,
		Branches:     k.Branches * n,
		RandBranches: k.RandBranches * n,
		MissLines:    k.MissLines * n,
	}
}

// IsZero reports whether the kernel performs no work.
func (k Kernel) IsZero() bool { return k == Kernel{} }

// Measure runs the kernel on the platform and returns exact (noise-free)
// counter values. The cycle model is an additive bottleneck model: issue-
// limited base cycles plus serialized division latency, exposed memory
// latency after memory-level-parallelism overlap, and misprediction bubbles.
func Measure(p *platform.Platform, k Kernel) Counters {
	var c Counters
	ins := float64(k.IntOps + k.FPOps + k.DivOps + k.Loads + k.Stores + k.Branches + k.RandBranches)
	c[INS] = ins
	c[LST] = float64(k.Loads + k.Stores)
	c[L1DCM] = float64(k.MissLines)
	c[BRCN] = float64(k.Branches + k.RandBranches)
	msp := float64(k.Branches)*(1-p.PredictorHitRate) + float64(k.RandBranches)*0.5
	c[MSP] = msp

	base := ins / p.IssueWidth
	div := float64(k.DivOps) * p.DivLatency
	mem := float64(k.MissLines) * p.L1MissPenalty * (1 - p.MLPOverlap)
	bra := msp * p.MispredictCost
	c[CYC] = base + div + mem + bra
	return c
}

// Seconds reports the wall-clock seconds the kernel takes on the platform.
func Seconds(p *platform.Platform, k Kernel) float64 {
	return p.CyclesToSeconds(Measure(p, k)[CYC])
}
