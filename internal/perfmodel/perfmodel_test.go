package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"siesta/internal/platform"
)

func TestMeasureBasicIdentities(t *testing.T) {
	k := Kernel{IntOps: 100, FPOps: 50, DivOps: 10, Loads: 40, Stores: 20,
		Branches: 30, RandBranches: 8, MissLines: 5}
	c := Measure(platform.A, k)
	wantINS := float64(100 + 50 + 10 + 40 + 20 + 30 + 8)
	if c[INS] != wantINS {
		t.Errorf("INS = %v, want %v", c[INS], wantINS)
	}
	if c[LST] != 60 {
		t.Errorf("LST = %v, want 60", c[LST])
	}
	if c[L1DCM] != 5 {
		t.Errorf("L1_DCM = %v, want 5", c[L1DCM])
	}
	if c[BRCN] != 38 {
		t.Errorf("BR_CN = %v, want 38", c[BRCN])
	}
	if c[MSP] <= 0 || c[MSP] > c[BRCN] {
		t.Errorf("MSP = %v out of range (BR_CN=%v)", c[MSP], c[BRCN])
	}
	if c[CYC] < c[INS]/platform.A.IssueWidth {
		t.Errorf("CYC = %v below issue-limited floor", c[CYC])
	}
}

func TestMeasureZeroKernel(t *testing.T) {
	c := Measure(platform.A, Kernel{})
	for i := Metric(0); i < NumMetrics; i++ {
		if c[i] != 0 {
			t.Errorf("%v = %v for empty kernel", i, c[i])
		}
	}
}

func TestDivisionsSlowThingsDown(t *testing.T) {
	add := Kernel{IntOps: 1000}
	div := Kernel{DivOps: 1000}
	ca, cd := Measure(platform.A, add), Measure(platform.A, div)
	if cd[CYC] <= ca[CYC] {
		t.Errorf("divisions (%v cyc) should cost more than adds (%v cyc)", cd[CYC], ca[CYC])
	}
	if cd.IPC() >= ca.IPC() {
		t.Errorf("division IPC %v should be below add IPC %v", cd.IPC(), ca.IPC())
	}
}

func TestCacheMissesSlowThingsDown(t *testing.T) {
	hit := Kernel{Loads: 1000, IntOps: 1000}
	miss := Kernel{Loads: 1000, IntOps: 1000, MissLines: 1000}
	if Measure(platform.A, miss)[CYC] <= Measure(platform.A, hit)[CYC] {
		t.Error("misses should add cycles")
	}
}

func TestPlatformSensitivity(t *testing.T) {
	// The same kernel must take longer (in seconds) on the Xeon Phi (B)
	// than on the modern Xeon (A) — the basis of the Fig. 9 experiment.
	k := Kernel{IntOps: 1e6, FPOps: 5e5, Loads: 4e5, Stores: 2e5, Branches: 1e5, MissLines: 1e4}
	ta, tb := Seconds(platform.A, k), Seconds(platform.B, k)
	if tb <= ta {
		t.Errorf("kernel on B (%v s) should be slower than on A (%v s)", tb, ta)
	}
}

func TestKernelAddScale(t *testing.T) {
	a := Kernel{IntOps: 1, FPOps: 2, DivOps: 3, Loads: 4, Stores: 5, Branches: 6, RandBranches: 7, MissLines: 8}
	if got := a.Add(a); got != a.ScaleInt(2) {
		t.Fatalf("Add/ScaleInt mismatch: %+v vs %+v", got, a.ScaleInt(2))
	}
	if !(Kernel{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero is wrong")
	}
}

func TestMeasureLinearity(t *testing.T) {
	// Property: Measure is linear in the kernel — the foundation of the
	// paper's "linear combination of code blocks" formulation.
	f := func(i1, i2, l1, l2, s1, s2 uint16) bool {
		k1 := Kernel{IntOps: int64(i1), Loads: int64(l1), Stores: int64(s1)}
		k2 := Kernel{IntOps: int64(i2), Loads: int64(l2), Stores: int64(s2)}
		c1, c2 := Measure(platform.A, k1), Measure(platform.A, k2)
		sum := Measure(platform.A, k1.Add(k2))
		for m := Metric(0); m < NumMetrics; m++ {
			if math.Abs(sum[m]-(c1[m]+c2[m])) > 1e-6*(1+math.Abs(sum[m])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRates(t *testing.T) {
	c := Counters{}
	c[INS], c[CYC], c[LST], c[L1DCM], c[BRCN], c[MSP] = 100, 50, 40, 4, 20, 2
	if got := c.IPC(); got != 2 {
		t.Errorf("IPC = %v", got)
	}
	if got := c.CMR(); got != 0.1 {
		t.Errorf("CMR = %v", got)
	}
	if got := c.BMR(); got != 0.1 {
		t.Errorf("BMR = %v", got)
	}
	var zero Counters
	if zero.IPC() != 0 || zero.CMR() != 0 || zero.BMR() != 0 {
		t.Error("zero counters should give zero rates, not NaN")
	}
}

func TestRelError(t *testing.T) {
	ref := Counters{}
	ref[INS], ref[CYC] = 100, 200
	c := ref
	if e := c.RelError(ref); e != 0 {
		t.Errorf("self error = %v", e)
	}
	c[INS] = 110 // 10% off on one of two nonzero metrics
	if e := c.RelError(ref); math.Abs(e-0.05) > 1e-12 {
		t.Errorf("RelError = %v, want 0.05", e)
	}
	var zero Counters
	if e := c.RelError(zero); e != 0 {
		t.Errorf("all-zero reference should give 0, got %v", e)
	}
}

func TestCountersAddScale(t *testing.T) {
	a := Counters{1, 2, 3, 4, 5, 6}
	b := a
	b.Add(a)
	if b != a.Scale(2) {
		t.Fatalf("Add/Scale mismatch: %v vs %v", b, a.Scale(2))
	}
}

func TestMetricString(t *testing.T) {
	want := []string{"INS", "CYC", "LST", "L1_DCM", "BR_CN", "MSP"}
	for i, w := range want {
		if Metric(i).String() != w {
			t.Errorf("Metric(%d) = %q, want %q", i, Metric(i), w)
		}
	}
	if Metric(99).String() == "" {
		t.Error("out-of-range metric should still format")
	}
}

func TestNoiseDeterminism(t *testing.T) {
	k := Kernel{IntOps: 1e6, Loads: 3e5, Stores: 1e5, Branches: 1e5, MissLines: 2e3}
	n1 := NewNoise(0.01, 42)
	n2 := NewNoise(0.01, 42)
	c1 := MeasureNoisy(platform.A, k, n1)
	c2 := MeasureNoisy(platform.A, k, n2)
	if c1 != c2 {
		t.Fatal("same seed must give identical noisy measurements")
	}
	n3 := NewNoise(0.01, 43)
	if c3 := MeasureNoisy(platform.A, k, n3); c3 == c1 {
		t.Fatal("different seeds should perturb differently")
	}
}

func TestNoiseLeavesINSExact(t *testing.T) {
	k := Kernel{IntOps: 1e6, Loads: 3e5}
	exact := Measure(platform.A, k)
	noisy := MeasureNoisy(platform.A, k, NewNoise(0.05, 7))
	if noisy[INS] != exact[INS] {
		t.Error("INS should be architecturally exact")
	}
	if noisy[CYC] == exact[CYC] {
		t.Error("CYC should jitter under noise")
	}
}

func TestNoiseMagnitude(t *testing.T) {
	// Average relative deviation should be on the order of sigma.
	k := Kernel{IntOps: 1e6, Loads: 3e5, Stores: 1e5, Branches: 5e4, MissLines: 1e3}
	exact := Measure(platform.A, k)
	n := NewNoise(0.01, 99)
	var dev float64
	const reps = 200
	for i := 0; i < reps; i++ {
		c := MeasureNoisy(platform.A, k, n)
		dev += math.Abs(c[CYC]-exact[CYC]) / exact[CYC]
	}
	dev /= reps
	if dev < 0.001 || dev > 0.05 {
		t.Errorf("mean CYC deviation %v, want around 0.008 for sigma=0.01", dev)
	}
}

func TestNilNoiseIsExact(t *testing.T) {
	k := Kernel{IntOps: 12345, Loads: 678}
	if MeasureNoisy(platform.A, k, nil) != Measure(platform.A, k) {
		t.Fatal("nil noise must measure exactly")
	}
}

func TestJitterFactor(t *testing.T) {
	if JitterFactor(0, 42) != 1 {
		t.Error("zero sigma should be exactly 1")
	}
	if JitterFactor(0.02, 1) != JitterFactor(0.02, 1) {
		t.Error("jitter must be deterministic per seed")
	}
	if JitterFactor(0.02, 1) == JitterFactor(0.02, 2) {
		t.Error("different seeds should jitter differently")
	}
	// Clamped and centred: across many seeds the mean is near 1 and every
	// value stays in [0.5, 1.5].
	sum := 0.0
	const n = 2000
	for seed := uint64(0); seed < n; seed++ {
		f := JitterFactor(0.05, seed)
		if f < 0.5 || f > 1.5 {
			t.Fatalf("jitter %v out of clamp range", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.99 || mean > 1.01 {
		t.Errorf("jitter mean %v should be ~1", mean)
	}
}
