package perfmodel

import (
	"math"

	"siesta/internal/platform"
)

// Noise models the measurement imperfection of real hardware counters: the
// paper notes "the statistics from the performance counter are noisy" and
// clusters similar computation events for exactly that reason. Noise is a
// deterministic hash-based multiplicative jitter so runs are reproducible.
type Noise struct {
	// Sigma is the relative standard deviation of counter readings.
	// Real PAPI counter noise is on the order of a fraction of a percent
	// for stable kernels; 0 disables noise entirely.
	Sigma float64
	// Seed decorrelates independent measurement campaigns.
	Seed uint64

	state uint64 // sample counter, advances per reading
}

// NewNoise returns a noise source with the given relative sigma and seed.
func NewNoise(sigma float64, seed uint64) *Noise {
	return &Noise{Sigma: sigma, Seed: seed}
}

// splitmix64 is the standard 64-bit mixing function; it gives us a
// high-quality deterministic stream without importing math/rand.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// gauss produces a standard normal deviate from two uniform hashes using the
// Box–Muller transform.
func (n *Noise) gauss() float64 {
	n.state++
	u1 := float64(splitmix64(n.Seed^n.state*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
	u2 := float64(splitmix64(n.Seed+n.state*0x2545f4914f6cdd1d)>>11) / float64(1<<53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perturb applies multiplicative jitter to every counter. INS is left exact
// (retired instruction counts are architecturally precise); the
// microarchitectural counters (CYC, L1_DCM, MSP...) jitter independently.
func (n *Noise) Perturb(c Counters) Counters {
	if n == nil || n.Sigma == 0 {
		return c
	}
	for i := Metric(0); i < NumMetrics; i++ {
		if i == INS {
			continue
		}
		f := 1 + n.Sigma*n.gauss()
		if f < 0.5 {
			f = 0.5 // clamp pathological tails
		}
		c[i] *= f
	}
	return c
}

// MeasureNoisy measures the kernel and perturbs the reading. A nil noise
// source yields exact measurements.
func MeasureNoisy(p *platform.Platform, k Kernel, n *Noise) Counters {
	return n.Perturb(Measure(p, k))
}

// JitterFactor derives a deterministic multiplicative factor ≈ N(1, sigma)
// from a seed, clamped to [0.5, 1.5]. The runtime uses it to model run-to-
// run environmental variation (DVFS wobble, network weather): two runs with
// different seeds execute the same program at slightly different speeds,
// exactly like two submissions of the same job on a real cluster.
func JitterFactor(sigma float64, seed uint64) float64 {
	if sigma == 0 {
		return 1
	}
	n := &Noise{Sigma: sigma, Seed: seed}
	f := 1 + sigma*n.gauss()
	if f < 0.5 {
		f = 0.5
	}
	if f > 1.5 {
		f = 1.5
	}
	return f
}
