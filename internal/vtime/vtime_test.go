package vtime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(1.5)
	if got := c.Now(); got != 1.5 {
		t.Fatalf("after Advance(1.5): %v", got)
	}
	c.Advance(-1) // negative durations must be ignored
	if got := c.Now(); got != 1.5 {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.AdvanceTo(2)
	if c.Now() != 2 {
		t.Fatalf("AdvanceTo(2): %v", c.Now())
	}
	c.AdvanceTo(1) // must not rewind
	if c.Now() != 2 {
		t.Fatalf("AdvanceTo(1) rewound clock to %v", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(5)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after reset: %v", c.Now())
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Max(3, 3) != 3 {
		t.Fatal("Max is wrong")
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1).Add(Duration(2))
	if tm != 3 {
		t.Fatalf("Add: %v", tm)
	}
	if d := Time(5).Sub(Time(2)); d != 3 {
		t.Fatalf("Sub: %v", d)
	}
	if Duration(0.25).Seconds() != 0.25 {
		t.Fatal("Seconds conversion")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{1.5, "1.500s"},
		{2.5e-3, "2.500ms"},
		{3.25e-6, "3.250µs"},
		{4e-9, "4.0ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%g).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
	if !strings.Contains(Duration(-1.5).String(), "-1.500") {
		t.Errorf("negative duration formatting: %q", Duration(-1.5).String())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: any sequence of Advance/AdvanceTo never decreases Now.
	f := func(steps []float64) bool {
		var c Clock
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(Duration(s))
			} else {
				c.AdvanceTo(Time(s))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
