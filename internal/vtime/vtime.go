// Package vtime provides the virtual-time primitives used by the simulated
// MPI runtime. Every rank owns a Clock that advances only through modelled
// costs (computation, communication, tracing overhead), never through wall
// time, so whole-"cluster" runs are deterministic and take milliseconds of
// real time regardless of the virtual duration they represent.
package vtime

import (
	"fmt"
	"math"
)

// Time is a point on the virtual timeline, in seconds.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// String formats a duration with an adaptive unit, for reports.
func (d Duration) String() string {
	s := float64(d)
	abs := math.Abs(s)
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.3fs", s)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3fµs", s*1e6)
	default:
		return fmt.Sprintf("%.1fns", s*1e9)
	}
}

// Clock is a monotonically advancing virtual clock owned by a single rank.
// It is not safe for concurrent use; each rank goroutine owns its clock
// exclusively and cross-rank time flows only through message timestamps.
type Clock struct {
	now Time
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost models returning tiny negative values from floating-point error
// cannot move time backwards.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

// AdvanceTo moves the clock to t if t is later than the current time.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero, for reuse across simulation runs.
func (c *Clock) Reset() { c.now = 0 }
