package trace

import (
	"sync"
	"sync/atomic"
)

// Ref-counted buffer pooling for the synthesis hot paths. The pipeline's
// inner loops — simulate/record/encode and the merge stage's per-rank
// grammar scratch — churn through short-lived slices whose lifetimes are
// easy to name but whose allocation pressure dominates profiles at high
// rank counts. Buffers here follow a get()/unref() discipline:
//
//   - GetInts/GetBytes hand out a buffer with one reference and exactly
//     the requested length. Contents are UNSPECIFIED (stale data from the
//     previous user); callers must overwrite before reading.
//   - Ref adds a reference when a second consumer will outlive the first
//     (merge.Build holds one reference per stage that reads a rank's
//     terminal sequence).
//   - Unref drops a reference; the last drop returns the buffer to the
//     pool. Unref after the last reference panics — an ownership bug that
//     must fail loudly rather than corrupt a recycled buffer.
//
// Never retain b.S (or a sub-slice) past the final Unref: the next GetInts
// may hand the same backing array to an unrelated goroutine. Ownership
// rules per call site are catalogued in DESIGN.md §14.

// IntBuf is a pooled, ref-counted []int.
type IntBuf struct {
	S    []int
	refs atomic.Int32
}

// ByteBuf is a pooled, ref-counted []byte.
type ByteBuf struct {
	S    []byte
	refs atomic.Int32
}

var (
	intBufPool  = sync.Pool{New: func() any { return new(IntBuf) }}
	byteBufPool = sync.Pool{New: func() any { return new(ByteBuf) }}
)

// GetInts returns a pooled buffer of length n (unspecified contents) with
// one reference.
func GetInts(n int) *IntBuf {
	b := intBufPool.Get().(*IntBuf)
	b.refs.Store(1)
	if cap(b.S) < n {
		b.S = make([]int, n)
	} else {
		b.S = b.S[:n]
	}
	return b
}

// Ref adds a reference.
func (b *IntBuf) Ref() { b.refs.Add(1) }

// Unref drops a reference, returning the buffer to the pool on the last
// one. Nil-safe so optional buffers can be released unconditionally.
func (b *IntBuf) Unref() {
	if b == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n == 0:
		intBufPool.Put(b)
	case n < 0:
		panic("trace: IntBuf unref after final release")
	}
}

// GetBytes returns a pooled buffer of length n (unspecified contents) with
// one reference.
func GetBytes(n int) *ByteBuf {
	b := byteBufPool.Get().(*ByteBuf)
	b.refs.Store(1)
	if cap(b.S) < n {
		b.S = make([]byte, n)
	} else {
		b.S = b.S[:n]
	}
	return b
}

// Ref adds a reference.
func (b *ByteBuf) Ref() { b.refs.Add(1) }

// Unref drops a reference, returning the buffer to the pool on the last
// one. Nil-safe.
func (b *ByteBuf) Unref() {
	if b == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n == 0:
		byteBufPool.Put(b)
	case n < 0:
		panic("trace: ByteBuf unref after final release")
	}
}
